// Converts core experiment types into the plain-data rows of the privacy-
// audit ledger (obs/audit_ledger.h) and emits them. The obs layer sits below
// core and cannot see DiExperimentConfig/TrialTrace/DiExperimentSummary, so
// this bridge is where those types are flattened into ledger rows.
//
// Call sites (all gated on obs::AuditLedgerEnabled(), all at sequential
// points of the run so row order is deterministic):
//   - RunDiExperiment emits one experiment block per repeated experiment;
//   - the sweep scheduler's sequential results loop does the same per cell;
//   - AuditExperiment emits one audit row per report it produces.

#ifndef DPAUDIT_CORE_LEDGER_BRIDGE_H_
#define DPAUDIT_CORE_LEDGER_BRIDGE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/auditor.h"
#include "core/experiment.h"
#include "core/trace.h"
#include "obs/audit_ledger.h"

namespace dpaudit {

/// Whether the privacy-audit ledger is enabled (DPAUDIT_AUDIT_LEDGER).
/// Re-exported from obs so the rest of core gates on the bridge instead of
/// reaching into obs/audit_ledger.h directly — that header is restricted to
/// its bridge files (see tools/lint/layers.txt).
inline bool LedgerEnabled() { return obs::AuditLedgerEnabled(); }

/// Flattens the first `repetitions` recorded trials of one repeated
/// experiment into a ledger experiment block. `trials` may hold MORE than
/// `repetitions` entries (a cache recording longer than the request); the
/// extras are not emitted, preserving cold/replay row parity. The cumulative
/// LLR and the per-step RDP contribution are derived here, in repetition/
/// step order, so a replayed trace reproduces them bit-identically.
obs::LedgerExperiment BuildLedgerExperiment(
    const TraceFingerprint& fingerprint, const DiExperimentConfig& config,
    const Dataset& d, const Dataset& d_prime, const Dataset* test_set,
    const std::vector<TrialTrace>& trials, size_t repetitions);

/// BuildLedgerExperiment + AppendLedgerExperiment. Callers gate on
/// obs::AuditLedgerEnabled() before collecting trials; this re-checks it so
/// a disabled ledger is always a no-op.
void EmitLedgerExperiment(const TraceFingerprint& fingerprint,
                          const DiExperimentConfig& config, const Dataset& d,
                          const Dataset& d_prime, const Dataset* test_set,
                          const std::vector<TrialTrace>& trials,
                          size_t repetitions);

/// The ledger content digest of a summary's trials — the same digest
/// BuildLedgerExperiment stamps on the experiment block built from the
/// equivalent trial traces, which is what lets an audit row name the
/// experiment it audited without core handing obs any core type.
std::string LedgerDigestOfSummary(const DiExperimentSummary& summary);

/// Emits the audit row for one AuditExperiment call (no-op when the ledger
/// is disabled).
void EmitLedgerAudit(const DiExperimentSummary& summary, double delta,
                     const AuditReport& report);

/// Emits the error row for a sweep cell whose retry budget ran out: the
/// requested vs completed repetition counts, how many trials exhausted the
/// budget, and the first failure's message. Emitted right after the cell's
/// (partial) experiment block by the sweep scheduler's results loop.
void EmitLedgerError(const TraceFingerprint& fingerprint,
                     size_t repetitions_requested,
                     size_t repetitions_completed, size_t trials_failed,
                     const std::string& message);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_LEDGER_BRIDGE_H_
