#include "core/multi_world.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanism.h"
#include "dp/privacy_params.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace dpaudit {

MultiWorldPosterior::MultiWorldPosterior(size_t num_worlds)
    : log_weights_(num_worlds, 0.0) {
  DPAUDIT_CHECK_GE(num_worlds, 2u);
}

MultiWorldPosterior::MultiWorldPosterior(
    const std::vector<double>& prior_weights)
    : log_weights_(prior_weights.size()) {
  DPAUDIT_CHECK_GE(prior_weights.size(), 2u);
  for (size_t i = 0; i < prior_weights.size(); ++i) {
    DPAUDIT_CHECK_GT(prior_weights[i], 0.0) << "prior weights must be > 0";
    log_weights_[i] = std::log(prior_weights[i]);
  }
}

void MultiWorldPosterior::Observe(
    const std::vector<double>& log_likelihoods) {
  DPAUDIT_CHECK_EQ(log_likelihoods.size(), log_weights_.size());
  for (size_t i = 0; i < log_weights_.size(); ++i) {
    log_weights_[i] += log_likelihoods[i];
  }
  // Re-center to keep the weights in a safe numeric range.
  double hi = *std::max_element(log_weights_.begin(), log_weights_.end());
  for (double& w : log_weights_) w -= hi;
  ++observations_;
}

std::vector<double> MultiWorldPosterior::Posterior() const {
  double log_z = LogSumExp(log_weights_);
  std::vector<double> posterior(log_weights_.size());
  for (size_t i = 0; i < log_weights_.size(); ++i) {
    posterior[i] = std::exp(log_weights_[i] - log_z);
  }
  return posterior;
}

double MultiWorldPosterior::Belief(size_t world) const {
  DPAUDIT_CHECK_LT(world, log_weights_.size());
  return Posterior()[world];
}

size_t MultiWorldPosterior::MapEstimate() const {
  size_t best = 0;
  for (size_t i = 1; i < log_weights_.size(); ++i) {
    if (log_weights_[i] > log_weights_[best]) best = i;
  }
  return best;
}

StatusOr<MultiWorldSummary> RunMultiWorldExperiment(
    const Network& architecture, const std::vector<Dataset>& worlds,
    size_t true_world, const MultiWorldExperimentConfig& config) {
  DPAUDIT_RETURN_IF_ERROR(config.dpsgd.Validate());
  if (worlds.size() < 2) {
    return Status::InvalidArgument("need at least two candidate worlds");
  }
  if (true_world >= worlds.size()) {
    return Status::InvalidArgument("true world index out of range");
  }
  for (const Dataset& world : worlds) {
    if (world.empty()) {
      return Status::InvalidArgument("worlds must be non-empty");
    }
    if (world.size() != worlds[0].size()) {
      return Status::InvalidArgument("worlds must have equal record counts");
    }
  }
  if (config.repetitions == 0) {
    return Status::InvalidArgument("repetitions must be > 0");
  }

  const double n = static_cast<double>(worlds[0].size());
  // The lineup generalizes the bounded pair; scale noise to the bounded
  // global bound 2C (any two worlds' sums differ by at most |differing
  // records| * 2C; for the privacy semantics of a lineup the pairwise bound
  // is the relevant reference, as in Lee-Clifton).
  const double sensitivity =
      GlobalClipSensitivity(NeighborMode::kBounded, config.dpsgd.clip_norm);
  const double sigma = config.dpsgd.noise_multiplier * sensitivity;

  std::vector<int> hits(config.repetitions, 0);
  std::vector<double> true_beliefs(config.repetitions, 0.0);
  Rng root(config.seed);
  size_t threads =
      config.threads == 0 ? DefaultThreadCount() : config.threads;

  ThreadPool::ParallelFor(config.repetitions, threads, [&](size_t rep) {
    Rng rng = root.Split(rep);
    Network model = architecture.Clone();
    model.Initialize(rng);
    MultiWorldPosterior posterior(worlds.size());
    GaussianMechanism mechanism(sigma);
    for (size_t step = 0; step < config.dpsgd.epochs; ++step) {
      // Clipped gradient sums of every world at the current weights.
      std::vector<std::vector<float>> sums;
      sums.reserve(worlds.size());
      for (const Dataset& world : worlds) {
        sums.push_back(model.ClippedGradientSum(world.inputs, world.labels,
                                                config.dpsgd.clip_norm));
      }
      std::vector<float> released = sums[true_world];
      mechanism.Perturb(released, rng);
      std::vector<double> log_likelihoods(worlds.size());
      for (size_t w = 0; w < worlds.size(); ++w) {
        log_likelihoods[w] = mechanism.LogDensity(released, sums[w]);
      }
      posterior.Observe(log_likelihoods);
      model.ApplyGradientStep(released, config.dpsgd.learning_rate / n);
    }
    hits[rep] = posterior.MapEstimate() == true_world ? 1 : 0;
    true_beliefs[rep] = posterior.Belief(true_world);
  });

  MultiWorldSummary summary;
  summary.num_worlds = worlds.size();
  size_t total_hits = 0;
  double belief_sum = 0.0;
  double belief_max = 0.0;
  for (size_t rep = 0; rep < config.repetitions; ++rep) {
    total_hits += static_cast<size_t>(hits[rep]);
    belief_sum += true_beliefs[rep];
    belief_max = std::max(belief_max, true_beliefs[rep]);
  }
  summary.identification_rate =
      static_cast<double>(total_hits) /
      static_cast<double>(config.repetitions);
  summary.mean_true_belief =
      belief_sum / static_cast<double>(config.repetitions);
  summary.max_true_belief = belief_max;
  return summary;
}

}  // namespace dpaudit
