// High-level policy API: turn an identifiability requirement into a complete
// DPSGD privacy plan — the "data scientist" workflow of Section 1 packaged
// as one call.

#ifndef DPAUDIT_CORE_POLICY_H_
#define DPAUDIT_CORE_POLICY_H_

#include <cstddef>
#include <string>

#include "dp/privacy_params.h"
#include "util/status.h"

namespace dpaudit {

/// What the requirement constrains.
enum class RequirementKind {
  kMaxPosteriorBelief,       // rho_beta: deniability
  kMaxExpectedAdvantage,     // rho_alpha: expected re-identification
};

/// An identifiability requirement plus training-shape inputs.
struct IdentifiabilityRequirement {
  RequirementKind kind = RequirementKind::kMaxPosteriorBelief;
  double bound = 0.9;    // rho_beta in (0.5, 1) or rho_alpha in (0, 1)
  double delta = 1e-3;   // choose << 1/|D|
  size_t steps = 30;     // k training steps under RDP composition
};

/// Everything needed to configure DPSGD and communicate the guarantee.
struct PrivacyPlan {
  PrivacyParams dp;          // the (epsilon, delta) to spend in total
  double rho_beta = 0.0;     // implied maximum posterior belief
  double rho_alpha = 0.0;    // implied expected advantage (Gaussian)
  double noise_multiplier = 0.0;  // per-step z = sigma / Delta f (RDP)
  size_t steps = 0;

  /// Human-readable summary for reports / logs.
  std::string ToString() const;
};

/// Derives the full plan from a requirement: the binding score determines
/// epsilon (Eq. 10 or Eq. 15), the complementary score is reported, and the
/// per-step noise multiplier comes from RDP calibration over `steps`.
StatusOr<PrivacyPlan> MakePrivacyPlan(
    const IdentifiabilityRequirement& requirement);

/// The reverse direction for auditing reports: given spent (epsilon, delta),
/// what identifiability do we promise?
StatusOr<PrivacyPlan> PlanFromPrivacyParams(const PrivacyParams& params,
                                            size_t steps);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_POLICY_H_
