#include "core/ledger_bridge.h"

#include <algorithm>
#include <cstdio>

#include "data/dataset.h"
#include "dp/privacy_params.h"

namespace dpaudit {

namespace {

std::string DigestHex(uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace

obs::LedgerExperiment BuildLedgerExperiment(
    const TraceFingerprint& fingerprint, const DiExperimentConfig& config,
    const Dataset& d, const Dataset& d_prime, const Dataset* test_set,
    const std::vector<TrialTrace>& trials, size_t repetitions) {
  obs::LedgerExperiment experiment;
  experiment.fingerprint = fingerprint.ToHex();
  experiment.seed = config.seed;
  experiment.repetitions = repetitions;
  experiment.epochs = config.dpsgd.epochs;
  experiment.learning_rate = config.dpsgd.learning_rate;
  experiment.clip_norm = config.dpsgd.clip_norm;
  experiment.noise_multiplier = config.dpsgd.noise_multiplier;
  experiment.sensitivity_mode =
      SensitivityModeToString(config.dpsgd.sensitivity_mode);
  experiment.neighbor_mode = NeighborModeToString(config.dpsgd.neighbor_mode);
  experiment.dataset_digest_d = DigestHex(DatasetDigest(d));
  experiment.dataset_digest_dprime = DigestHex(DatasetDigest(d_prime));
  experiment.dataset_digest_test =
      (test_set != nullptr && !test_set->empty())
          ? DigestHex(DatasetDigest(*test_set))
          : std::string();

  const size_t reps = std::min(repetitions, trials.size());
  obs::LedgerDigest digest;
  experiment.trials.reserve(reps);
  for (size_t rep = 0; rep < reps; ++rep) {
    const TrialTrace& trace = trials[rep];
    if (rep == 0) {
      experiment.steps_per_trial = trace.steps.size();
      experiment.prior_belief_d =
          trace.belief_history.empty() ? 0.5 : trace.belief_history.front();
    }
    obs::LedgerTrial trial;
    trial.rep = rep;
    trial.trained_on_d = trace.trained_on_d;
    trial.adversary_says_d = trace.adversary_says_d;
    trial.final_belief_d = trace.final_belief_d;
    trial.max_belief_d = trace.max_belief_d;
    trial.test_accuracy = trace.test_accuracy;
    trial.steps.reserve(trace.steps.size());
    std::vector<double> sigmas;
    std::vector<double> local_sensitivities;
    sigmas.reserve(trace.steps.size());
    local_sensitivities.reserve(trace.steps.size());
    double llr = 0.0;
    for (size_t i = 0; i < trace.steps.size(); ++i) {
      const StepTraceRecord& record = trace.steps[i];
      obs::LedgerStep step;
      step.step = i;
      step.clip_norm = record.clip_norm;
      step.local_sensitivity = record.local_sensitivity;
      step.sensitivity_used = record.sensitivity_used;
      step.sigma = record.sigma;
      step.log_density_d = record.log_density_d;
      step.log_density_dprime = record.log_density_dprime;
      llr += record.log_density_d - record.log_density_dprime;
      step.llr = llr;
      step.belief_d = record.belief_d;
      step.rdp_eps_alpha2 =
          obs::LedgerRdpAlpha2(record.sigma, record.local_sensitivity);
      trial.steps.push_back(step);
      sigmas.push_back(record.sigma);
      local_sensitivities.push_back(record.local_sensitivity);
    }
    digest.AddTrial(trial.trained_on_d, trial.adversary_says_d,
                    trial.final_belief_d, trial.max_belief_d,
                    trial.test_accuracy, sigmas, local_sensitivities);
    experiment.trials.push_back(std::move(trial));
  }
  experiment.digest = digest.Hex();
  return experiment;
}

void EmitLedgerExperiment(const TraceFingerprint& fingerprint,
                          const DiExperimentConfig& config, const Dataset& d,
                          const Dataset& d_prime, const Dataset* test_set,
                          const std::vector<TrialTrace>& trials,
                          size_t repetitions) {
  if (!obs::AuditLedgerEnabled()) return;
  obs::LedgerExperiment experiment = BuildLedgerExperiment(
      fingerprint, config, d, d_prime, test_set, trials, repetitions);
  obs::AppendLedgerExperiment(&experiment);
}

std::string LedgerDigestOfSummary(const DiExperimentSummary& summary) {
  obs::LedgerDigest digest;
  for (const DiTrialResult& trial : summary.trials) {
    digest.AddTrial(trial.trained_on_d, trial.adversary_says_d,
                    trial.final_belief_d, trial.max_belief_d,
                    trial.test_accuracy, trial.sigmas,
                    trial.local_sensitivities);
  }
  return digest.Hex();
}

void EmitLedgerError(const TraceFingerprint& fingerprint,
                     size_t repetitions_requested,
                     size_t repetitions_completed, size_t trials_failed,
                     const std::string& message) {
  if (!obs::AuditLedgerEnabled()) return;
  obs::LedgerError error;
  error.fingerprint = fingerprint.ToHex();
  error.repetitions_requested = repetitions_requested;
  error.repetitions_completed = repetitions_completed;
  error.trials_failed = trials_failed;
  error.message = message;
  obs::AppendLedgerError(&error);
}

void EmitLedgerAudit(const DiExperimentSummary& summary, double delta,
                     const AuditReport& report) {
  if (!obs::AuditLedgerEnabled()) return;
  obs::LedgerAudit audit;
  audit.digest = LedgerDigestOfSummary(summary);
  audit.delta = delta;
  audit.epsilon_from_sensitivities = report.epsilon_from_sensitivities;
  audit.epsilon_from_belief = report.epsilon_from_belief;
  audit.epsilon_from_advantage = report.epsilon_from_advantage;
  audit.advantage = summary.EmpiricalAdvantage();
  audit.max_belief = summary.MaxBeliefInD();
  obs::AppendLedgerAudit(&audit);
}

}  // namespace dpaudit
