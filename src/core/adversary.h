// The implementable DP adversary A_DI,Gau (Algorithm 1).
//
// A_DI knows both neighboring datasets, the initial weights, the mechanism
// and its parameters, and observes every perturbed gradient release. It acts
// as a naive Bayes classifier over the releases (Eq. 4): per step it scores
// the observed release under the two Gaussian hypotheses centered at the
// clipped gradient sums of D and D', updates its posterior belief (Lemma 1),
// and finally outputs the dataset with the higher belief.
//
// Implemented as a DpSgdStepObserver so a single training run produces both
// the model and the adversary's full belief trajectory.

#ifndef DPAUDIT_CORE_ADVERSARY_H_
#define DPAUDIT_CORE_ADVERSARY_H_

#include <vector>

#include "core/belief.h"
#include "core/dpsgd.h"

namespace dpaudit {

class DiAdversary : public DpSgdStepObserver {
 public:
  /// Uniform prior (the paper's assumption) unless specified.
  explicit DiAdversary(double prior_belief_d = 0.5)
      : tracker_(prior_belief_d) {}

  /// Consumes one release: computes the Gaussian log-likelihood of the
  /// released vector under both hypotheses (one fused pass through
  /// GaussianMechanism::LogDensityPair) and updates the posterior.
  void OnStep(size_t step, const std::vector<float>& sum_d,
              const std::vector<float>& sum_dprime,
              const std::vector<float>& released, double sigma) override;

  /// beta_k(D): the adversary's final belief that training ran on D.
  double FinalBeliefD() const { return tracker_.belief_d(); }

  /// Largest belief in D attained at any step (the auditing statistic of
  /// Section 6.4, Figure 9).
  double MaxBeliefD() const;

  /// beta_0 .. beta_k trajectory.
  const std::vector<double>& BeliefHistory() const {
    return tracker_.history();
  }

  /// The adversary's output b' (Algorithm 1 step 14): true = D.
  bool DecideD() const { return tracker_.DecideD(); }

  /// Per-step log Pr[M(S_D) = r_i] / log Pr[M(S_D') = r_i] — the
  /// released-vs-centers log-likelihood contributions a StepTrace records.
  const std::vector<double>& StepLogDensitiesD() const {
    return log_density_d_;
  }
  const std::vector<double>& StepLogDensitiesDPrime() const {
    return log_density_dprime_;
  }

 private:
  PosteriorBeliefTracker tracker_;
  std::vector<double> log_density_d_;
  std::vector<double> log_density_dprime_;
};

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_ADVERSARY_H_
