#include "core/sweep_journal.h"

#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <utility>

#include "obs/json_util.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace dpaudit {
namespace {

/// FNV-1a over the row prefix; 16 lowercase hex chars, matching the ledger's
/// digest width so `sweep status` output reads uniformly.
uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::string HexDigest(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void AppendNumberArray(const std::string& key,
                       const std::vector<double>& values, std::string* out) {
  out->append(",\"");
  out->append(key);
  out->append("\":[");
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->append(obs::JsonNumber(values[i]));
  }
  out->push_back(']');
}

bool ParseNumberArray(const std::string& line, const std::string& key,
                      std::vector<double>* out) {
  const std::string needle = "\"" + key + "\":[";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  size_t pos = at + needle.size();
  out->clear();
  while (pos < line.size() && line[pos] != ']') {
    const char* start = line.c_str() + pos;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return false;
    out->push_back(value);
    pos = static_cast<size_t>(end - line.c_str());
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  return pos < line.size();  // must have stopped on ']'
}

bool ParseStringArray(const std::string& line, const std::string& key,
                      std::vector<std::string>* out) {
  const std::string needle = "\"" + key + "\":[";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  size_t pos = at + needle.size();
  out->clear();
  while (pos < line.size() && line[pos] != ']') {
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    if (line[pos] != '"') return false;
    std::string value;
    ++pos;
    while (pos < line.size() && line[pos] != '"') {
      char c = line[pos];
      if (c == '\\' && pos + 1 < line.size()) {
        const char next = line[++pos];
        switch (next) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: c = next;  // \" and \\ unescape to themselves
        }
      }
      value.push_back(c);
      ++pos;
    }
    if (pos >= line.size()) return false;
    ++pos;  // closing quote
    out->push_back(std::move(value));
  }
  return pos < line.size();
}

struct CommandLine {
  std::mutex mu;
  bool recorded = false;
  std::string binary;
  std::vector<std::string> args;
};

CommandLine& RecordedCommandLine() {
  static CommandLine cl;
  return cl;
}

constexpr char kDigestNeedle[] = ",\"digest\":\"";

}  // namespace

void RecordCommandLineForJournal(int argc, char* const* argv) {
  CommandLine& cl = RecordedCommandLine();
  std::lock_guard<std::mutex> lock(cl.mu);
  cl.recorded = argc > 0;
  cl.binary = argc > 0 ? argv[0] : "";
  cl.args.clear();
  for (int i = 1; i < argc; ++i) cl.args.emplace_back(argv[i]);
}

std::string EncodeJournalManifestRow(const SweepJournalManifest& manifest) {
  std::string row = "{\"kind\":\"manifest\",\"schema\":";
  row += std::to_string(manifest.schema_version);
  row += ",\"binary\":\"" + obs::JsonEscape(manifest.binary) + "\"";
  row += ",\"args\":[";
  for (size_t i = 0; i < manifest.args.size(); ++i) {
    if (i > 0) row.push_back(',');
    row += "\"" + obs::JsonEscape(manifest.args[i]) + "\"";
  }
  row += "],\"cwd\":\"" + obs::JsonEscape(manifest.cwd) + "\"}";
  return row;
}

std::string EncodeJournalTrialRow(const TraceFingerprint& key, uint64_t rep,
                                  uint64_t seed, const TrialTrace& trial) {
  std::string row;
  // ~32 bytes per double: generous reserve keeps appends allocation-free.
  row.reserve(256 + 32 * (trial.belief_history.size() +
                          7 * trial.steps.size()));
  row += "{\"kind\":\"trial\",\"fp\":\"" + key.ToHex() + "\"";
  row += ",\"rep\":" + std::to_string(rep);
  row += ",\"seed\":" + std::to_string(seed);
  row += std::string(",\"on_d\":") + (trial.trained_on_d ? "true" : "false");
  row += std::string(",\"says_d\":") +
         (trial.adversary_says_d ? "true" : "false");
  row += ",\"final\":" + obs::JsonNumber(trial.final_belief_d);
  row += ",\"max\":" + obs::JsonNumber(trial.max_belief_d);
  row += ",\"acc\":" + obs::JsonNumber(trial.test_accuracy);
  AppendNumberArray("beliefs", trial.belief_history, &row);
  // Steps flattened 7-wide in declaration order; the decoder re-folds.
  std::vector<double> flat;
  flat.reserve(7 * trial.steps.size());
  for (const StepTraceRecord& s : trial.steps) {
    flat.push_back(s.clip_norm);
    flat.push_back(s.local_sensitivity);
    flat.push_back(s.sensitivity_used);
    flat.push_back(s.sigma);
    flat.push_back(s.log_density_d);
    flat.push_back(s.log_density_dprime);
    flat.push_back(s.belief_d);
  }
  AppendNumberArray("steps", flat, &row);
  row += kDigestNeedle;
  row += HexDigest(Fnv1a(row.data(), row.size()));
  row += "\"}";
  return row;
}

bool DecodeJournalTrialRow(const std::string& line, std::string* fp_hex,
                           uint64_t* rep, uint64_t* seed, TrialTrace* trial) {
  const size_t digest_at = line.rfind(kDigestNeedle);
  if (digest_at == std::string::npos) return false;
  std::string digest;
  if (!obs::JsonExtractString(line.substr(digest_at), "digest", &digest)) {
    return false;
  }
  const size_t covered = digest_at + sizeof(kDigestNeedle) - 1;
  if (digest != HexDigest(Fnv1a(line.data(), covered))) return false;
  if (!obs::JsonExtractString(line, "fp", fp_hex) ||
      !obs::JsonExtractUint(line, "rep", rep) ||
      !obs::JsonExtractUint(line, "seed", seed) ||
      !obs::JsonExtractBool(line, "on_d", &trial->trained_on_d) ||
      !obs::JsonExtractBool(line, "says_d", &trial->adversary_says_d) ||
      !obs::JsonExtractNumber(line, "final", &trial->final_belief_d) ||
      !obs::JsonExtractNumber(line, "max", &trial->max_belief_d) ||
      !obs::JsonExtractNumber(line, "acc", &trial->test_accuracy) ||
      !ParseNumberArray(line, "beliefs", &trial->belief_history)) {
    return false;
  }
  std::vector<double> flat;
  if (!ParseNumberArray(line, "steps", &flat) || flat.size() % 7 != 0) {
    return false;
  }
  trial->steps.resize(flat.size() / 7);
  for (size_t i = 0; i < trial->steps.size(); ++i) {
    StepTraceRecord& s = trial->steps[i];
    s.clip_norm = flat[7 * i + 0];
    s.local_sensitivity = flat[7 * i + 1];
    s.sensitivity_used = flat[7 * i + 2];
    s.sigma = flat[7 * i + 3];
    s.log_density_d = flat[7 * i + 4];
    s.log_density_dprime = flat[7 * i + 5];
    s.belief_d = flat[7 * i + 6];
  }
  return true;
}

StatusOr<LoadedSweepJournal> LoadSweepJournal(const std::string& path) {
  StatusOr<AppendLogContents> contents = ReadLogLines(path);
  if (!contents.ok()) return contents.status();
  LoadedSweepJournal loaded;
  loaded.torn_tail = contents->torn_tail;
  loaded.valid_bytes = contents->valid_bytes;
  for (const std::string& line : contents->lines) {
    std::string kind;
    if (!obs::JsonExtractString(line, "kind", &kind)) {
      ++loaded.dropped_rows;
      continue;
    }
    if (kind == "manifest") {
      uint64_t schema = 0;
      obs::JsonExtractUint(line, "schema", &schema);
      loaded.manifest.schema_version = static_cast<uint32_t>(schema);
      obs::JsonExtractString(line, "binary", &loaded.manifest.binary);
      obs::JsonExtractString(line, "cwd", &loaded.manifest.cwd);
      ParseStringArray(line, "args", &loaded.manifest.args);
      loaded.has_manifest = true;
      continue;
    }
    if (kind != "trial") {
      ++loaded.dropped_rows;
      continue;
    }
    std::string fp_hex;
    uint64_t rep = 0;
    uint64_t seed = 0;
    TrialTrace trial;
    if (!DecodeJournalTrialRow(line, &fp_hex, &rep, &seed, &trial)) {
      ++loaded.dropped_rows;
      continue;
    }
    loaded.trials[fp_hex][rep] = std::move(trial);
    ++loaded.trial_rows;
  }
  return loaded;
}

StatusOr<std::unique_ptr<SweepJournal>> SweepJournal::Open(
    const std::string& path) {
  std::unique_ptr<SweepJournal> journal(new SweepJournal());
  journal->path_ = path;
  StatusOr<LoadedSweepJournal> loaded = LoadSweepJournal(path);
  long long truncate_to = -1;
  if (loaded.ok()) {
    journal->loaded_ = std::move(*loaded);
    if (journal->loaded_.torn_tail) {
      DPAUDIT_LOG(WARNING)
          << "sweep journal " << path << " has a torn final line "
          << "(crash signature); truncating to "
          << journal->loaded_.valid_bytes << " bytes and resuming";
      truncate_to = journal->loaded_.valid_bytes;
    }
    if (journal->loaded_.dropped_rows > 0) {
      DPAUDIT_LOG(WARNING) << "sweep journal " << path << ": skipped "
                           << journal->loaded_.dropped_rows
                           << " corrupt row(s)";
    }
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }
  DPAUDIT_RETURN_IF_ERROR(journal->log_.Open(path, truncate_to));
  if (journal->loaded_.valid_bytes == 0 && !journal->loaded_.has_manifest) {
    SweepJournalManifest manifest;
    {
      CommandLine& cl = RecordedCommandLine();
      std::lock_guard<std::mutex> lock(cl.mu);
      manifest.binary = cl.binary;
      manifest.args = cl.args;
    }
    std::error_code ec;
    manifest.cwd = std::filesystem::current_path(ec).string();
    DPAUDIT_RETURN_IF_ERROR(
        journal->log_.Append(EncodeJournalManifestRow(manifest)));
    journal->loaded_.manifest = std::move(manifest);
    journal->loaded_.has_manifest = true;
  }
  return journal;
}

const TrialTrace* SweepJournal::Find(const TraceFingerprint& key,
                                     uint64_t rep) const {
  const auto by_fp = loaded_.trials.find(key.ToHex());
  if (by_fp == loaded_.trials.end()) return nullptr;
  const auto by_rep = by_fp->second.find(rep);
  if (by_rep == by_fp->second.end()) return nullptr;
  return &by_rep->second;
}

void SweepJournal::AppendTrial(const TraceFingerprint& key, uint64_t rep,
                               uint64_t seed, const TrialTrace& trial) {
  if (append_broken_.load(std::memory_order_relaxed)) return;
  Status status = Status::Ok();
  if (fault::FailJournalWrite()) {
    status = Status::Internal("injected journal write failure");
  } else {
    status = log_.Append(EncodeJournalTrialRow(key, rep, seed, trial));
  }
  if (!status.ok()) {
    // Journaling is best-effort: losing it costs crash-safety, not results.
    // Disable after the first failure so a full disk does not log per trial.
    if (!append_broken_.exchange(true, std::memory_order_relaxed)) {
      DPAUDIT_LOG(WARNING) << "sweep journal disabled: " << status.message();
    }
    return;
  }
  fault::MaybeAbortAfterJournalAppend();
}

}  // namespace dpaudit
