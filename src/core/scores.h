// Identifiability scores: the paper's core transformations between DP
// parameters (epsilon, delta) and adversary-relatable quantities.
//
//   rho_beta  — maximum Bayesian posterior belief of the DP adversary A_DI
//               in the presence of a record (Theorem 1): 1 / (1 + e^-eps).
//   rho_alpha — expected membership advantage of A_DI against the Gaussian
//               mechanism (Theorem 2): 2 Phi(eps / (2 sqrt(2 ln(1.25/delta)))) - 1.
//
// Both transformations are invertible (Eqs. 10 and 15), which is how a data
// scientist chooses epsilon from an identifiability requirement; and both
// compose: rho_beta via the summed epsilon, rho_alpha via RDP (Section 5.2).

#ifndef DPAUDIT_CORE_SCORES_H_
#define DPAUDIT_CORE_SCORES_H_

#include <cstddef>

#include "util/status.h"

namespace dpaudit {

/// Maximum posterior belief bound rho_beta = 1 / (1 + e^-eps) (Theorem 1).
/// Under (eps, delta)-DP the bound holds with probability 1 - sum(delta_i).
/// Requires epsilon >= 0; rho_beta is in [0.5, 1).
StatusOr<double> RhoBeta(double epsilon);

/// Inverse (Eq. 10): the total epsilon that may be spent for a desired
/// maximum posterior belief. Requires rho_beta in (0.5, 1).
StatusOr<double> EpsilonForRhoBeta(double rho_beta);

/// Expected membership advantage bound for the Gaussian mechanism
/// (Theorem 2). Requires epsilon > 0 and delta in (0, 1); rho_alpha in (0, 1).
StatusOr<double> RhoAlpha(double epsilon, double delta);

/// Inverse (Eq. 15): epsilon for a chosen expected advantage.
/// Requires rho_alpha in (0, 1) and delta in (0, 1).
StatusOr<double> EpsilonForRhoAlpha(double rho_alpha, double delta);

/// RDP-composed expected advantage (Section 5.2):
/// rho_alpha = 2 Phi(sqrt(eps_RDP / (2 alpha))) - 1, where eps_RDP is the
/// total Renyi epsilon at order alpha. Invariant to how eps_RDP is split
/// across steps. Requires eps_RDP >= 0, alpha > 1.
StatusOr<double> RhoAlphaRdp(double rdp_epsilon, double alpha);

/// Expected advantage of the Bayes-optimal adversary for two unit-covariance
/// Gaussians whose means are `distance` apart in sigma units:
/// 2 Phi(distance / 2) - 1 (Eq. 14). This is the exact (not bounded) value
/// when the factual mean distance is known.
double GaussianAdvantage(double mean_distance_in_sigmas);

/// Generic advantage bound for any eps-DP mechanism (Proposition 2):
/// Adv <= (e^eps - 1) * p_false_positive, capped at e^eps - 1 when the false
/// positive rate is unknown. Requires epsilon >= 0, p in [0, 1].
StatusOr<double> GenericAdvantageBound(double epsilon,
                                       double p_false_positive = 1.0);

/// Advantage (Definition 5) from an empirical success rate: 2 p - 1.
double AdvantageFromSuccessRate(double success_rate);

/// Posterior-belief bound under sequential composition of k identical
/// (eps_i, delta_i) steps: rho_beta(k * eps_i), with failure mass k*delta_i.
/// Used by the composition ablation (Section 5.2). Requires epsilon_i >= 0.
StatusOr<double> RhoBetaSequential(double epsilon_per_step, size_t steps);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_SCORES_H_
