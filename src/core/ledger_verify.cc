#include "core/ledger_verify.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <vector>

#include "core/auditor.h"
#include "core/experiment.h"
#include "obs/json_util.h"
#include "util/math_util.h"

namespace dpaudit {

namespace {

/// Infinity-aware tolerance compare (epsilon_from_advantage is +infinity
/// when every trial won; NaN never legitimately appears but must not slip
/// through as "equal to anything").
bool NearlyEqual(double a, double b, double tolerance) {
  if (a == b) return true;  // covers matching infinities
  return std::abs(a - b) <= tolerance;
}

std::string Spell(double v) { return obs::JsonNumber(v); }

/// Rebuilds the DiExperimentSummary the original run audited, from ledger
/// rows alone.
DiExperimentSummary SummaryFromExperiment(
    const obs::LedgerExperiment& experiment) {
  DiExperimentSummary summary;
  summary.trials.reserve(experiment.trials.size());
  for (const obs::LedgerTrial& trial : experiment.trials) {
    DiTrialResult result;
    result.trained_on_d = trial.trained_on_d;
    result.adversary_says_d = trial.adversary_says_d;
    result.final_belief_d = trial.final_belief_d;
    result.max_belief_d = trial.max_belief_d;
    result.test_accuracy = trial.test_accuracy;
    result.sigmas.reserve(trial.steps.size());
    result.local_sensitivities.reserve(trial.steps.size());
    for (const obs::LedgerStep& step : trial.steps) {
      result.sigmas.push_back(step.sigma);
      result.local_sensitivities.push_back(step.local_sensitivity);
    }
    summary.trials.push_back(std::move(result));
  }
  return summary;
}

Status CheckExperiment(const obs::LedgerExperiment& experiment,
                       double tolerance, std::ostream& report) {
  const std::string where =
      "experiment seq " + std::to_string(experiment.seq);

  // 1. Content digest over the trial rows.
  obs::LedgerDigest digest;
  for (const obs::LedgerTrial& trial : experiment.trials) {
    std::vector<double> sigmas;
    std::vector<double> local_sensitivities;
    sigmas.reserve(trial.steps.size());
    local_sensitivities.reserve(trial.steps.size());
    for (const obs::LedgerStep& step : trial.steps) {
      sigmas.push_back(step.sigma);
      local_sensitivities.push_back(step.local_sensitivity);
    }
    digest.AddTrial(trial.trained_on_d, trial.adversary_says_d,
                    trial.final_belief_d, trial.max_belief_d,
                    trial.test_accuracy, sigmas, local_sensitivities);
  }
  if (digest.Hex() != experiment.digest) {
    return Status::InvalidArgument(where + ": digest mismatch (recomputed " +
                                   digest.Hex() + ", recorded " +
                                   experiment.digest + ")");
  }

  // 2. Belief-trajectory replay (Lemma 1) and per-step RDP contributions.
  const double prior_logit = Logit(experiment.prior_belief_d);
  for (const obs::LedgerTrial& trial : experiment.trials) {
    const std::string trial_where =
        where + " rep " + std::to_string(trial.rep);
    double llr = 0.0;
    double belief = experiment.prior_belief_d;
    double max_belief = experiment.prior_belief_d;
    for (const obs::LedgerStep& step : trial.steps) {
      const std::string step_where =
          trial_where + " step " + std::to_string(step.step);
      llr += step.log_density_d - step.log_density_dprime;
      if (!NearlyEqual(step.llr, llr, tolerance)) {
        return Status::InvalidArgument(
            step_where + ": llr replay mismatch (recomputed " + Spell(llr) +
            ", recorded " + Spell(step.llr) + ")");
      }
      belief = Sigmoid(prior_logit + llr);
      if (!NearlyEqual(step.belief_d, belief, tolerance)) {
        return Status::InvalidArgument(
            step_where + ": belief replay mismatch (recomputed " +
            Spell(belief) + ", recorded " + Spell(step.belief_d) + ")");
      }
      max_belief = std::max(max_belief, belief);
      const double rdp =
          obs::LedgerRdpAlpha2(step.sigma, step.local_sensitivity);
      if (!NearlyEqual(step.rdp_eps_alpha2, rdp, tolerance)) {
        return Status::InvalidArgument(
            step_where + ": rdp_eps_alpha2 mismatch (recomputed " +
            Spell(rdp) + ", recorded " + Spell(step.rdp_eps_alpha2) + ")");
      }
    }
    if (!NearlyEqual(trial.final_belief_d, belief, tolerance)) {
      return Status::InvalidArgument(
          trial_where + ": final_belief_d mismatch (replayed trajectory "
          "ends at " + Spell(belief) + ", recorded " +
          Spell(trial.final_belief_d) + ")");
    }
    if (!NearlyEqual(trial.max_belief_d, max_belief, tolerance)) {
      return Status::InvalidArgument(
          trial_where + ": max_belief_d mismatch (replayed trajectory "
          "peaks at " + Spell(max_belief) + ", recorded " +
          Spell(trial.max_belief_d) + ")");
    }
  }
  report << "experiment seq " << experiment.seq << ": digest "
         << experiment.digest << " ok; " << experiment.trials.size()
         << " trials x " << experiment.steps_per_trial
         << " steps; llr/belief/rdp replay ok\n";
  return Status::Ok();
}

Status CheckAudit(const obs::LedgerAudit& audit,
                  const std::vector<obs::LedgerExperiment>& experiments,
                  double tolerance, std::ostream& report) {
  const std::string where = "audit seq " + std::to_string(audit.seq);
  const obs::LedgerExperiment* experiment = nullptr;
  for (const obs::LedgerExperiment& candidate : experiments) {
    if (candidate.digest == audit.digest) {
      experiment = &candidate;
      break;
    }
  }
  if (experiment == nullptr) {
    return Status::InvalidArgument(where + ": no experiment block with "
                                   "digest " + audit.digest);
  }

  const DiExperimentSummary summary = SummaryFromExperiment(*experiment);

  const double advantage = summary.EmpiricalAdvantage();
  if (!NearlyEqual(audit.advantage, advantage, tolerance)) {
    return Status::InvalidArgument(where + ": advantage mismatch "
                                   "(recomputed " + Spell(advantage) +
                                   ", recorded " + Spell(audit.advantage) +
                                   ")");
  }
  const double max_belief = summary.MaxBeliefInD();
  if (!NearlyEqual(audit.max_belief, max_belief, tolerance)) {
    return Status::InvalidArgument(where + ": max_belief mismatch "
                                   "(recomputed " + Spell(max_belief) +
                                   ", recorded " + Spell(audit.max_belief) +
                                   ")");
  }

  StatusOr<double> eps_sens = EpsilonFromSensitivities(summary, audit.delta);
  if (!eps_sens.ok()) {
    return Status::InvalidArgument(where + ": cannot recompute "
                                   "epsilon_from_sensitivities: " +
                                   eps_sens.status().message());
  }
  if (!NearlyEqual(audit.epsilon_from_sensitivities, *eps_sens, tolerance)) {
    return Status::InvalidArgument(
        where + ": epsilon_from_sensitivities mismatch (recomputed " +
        Spell(*eps_sens) + ", recorded " +
        Spell(audit.epsilon_from_sensitivities) + ")");
  }

  StatusOr<double> eps_belief = EpsilonFromMaxBelief(max_belief);
  if (!eps_belief.ok()) {
    return Status::InvalidArgument(where + ": cannot recompute "
                                   "epsilon_from_belief: " +
                                   eps_belief.status().message());
  }
  if (!NearlyEqual(audit.epsilon_from_belief, *eps_belief, tolerance)) {
    return Status::InvalidArgument(
        where + ": epsilon_from_belief mismatch (recomputed " +
        Spell(*eps_belief) + ", recorded " +
        Spell(audit.epsilon_from_belief) + ")");
  }

  StatusOr<double> eps_adv = EpsilonFromAdvantage(advantage, audit.delta);
  if (!eps_adv.ok()) {
    return Status::InvalidArgument(where + ": cannot recompute "
                                   "epsilon_from_advantage: " +
                                   eps_adv.status().message());
  }
  if (!NearlyEqual(audit.epsilon_from_advantage, *eps_adv, tolerance)) {
    return Status::InvalidArgument(
        where + ": epsilon_from_advantage mismatch (recomputed " +
        Spell(*eps_adv) + ", recorded " +
        Spell(audit.epsilon_from_advantage) + ")");
  }

  report << "audit seq " << audit.seq << ": digest " << audit.digest
         << " -> experiment seq " << experiment->seq
         << "; eps_sens=" << Spell(*eps_sens)
         << " eps_belief=" << Spell(*eps_belief)
         << " eps_adv=" << Spell(*eps_adv) << " all match (tolerance "
         << tolerance << ")\n";
  return Status::Ok();
}

}  // namespace

Status CheckLedger(const obs::LedgerFile& file, double tolerance,
                   std::ostream& report) {
  for (const obs::LedgerExperiment& experiment : file.experiments) {
    DPAUDIT_RETURN_IF_ERROR(CheckExperiment(experiment, tolerance, report));
  }
  for (const obs::LedgerAudit& audit : file.audits) {
    DPAUDIT_RETURN_IF_ERROR(
        CheckAudit(audit, file.experiments, tolerance, report));
  }
  report << "ledger check: " << file.experiments.size() << " experiment(s), "
         << file.audits.size() << " audit(s), all checks passed\n";
  return Status::Ok();
}

Status CheckLedgerFile(const std::string& path, double tolerance,
                       std::ostream& report) {
  StatusOr<obs::LedgerFile> file = obs::LoadLedgerFile(path);
  if (!file.ok()) return file.status();
  return CheckLedger(*file, tolerance, report);
}

}  // namespace dpaudit
