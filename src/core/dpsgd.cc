#include "core/dpsgd.h"

#include <cmath>

#include "core/neighbor_sums.h"
#include "dp/mechanism.h"
#include "dp/sensitivity.h"
#include "nn/gradient_engine.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stats/summary.h"
#include "util/thread_pool.h"

namespace dpaudit {

Status DpSgdConfig::Validate() const {
  if (epochs == 0) return Status::InvalidArgument("epochs must be > 0");
  if (!(learning_rate > 0.0)) {
    return Status::InvalidArgument("learning rate must be > 0");
  }
  if (!(clip_norm > 0.0)) {
    return Status::InvalidArgument("clip norm must be > 0");
  }
  if (!(noise_multiplier > 0.0)) {
    return Status::InvalidArgument("noise multiplier must be > 0");
  }
  if (adaptive_clipping) {
    if (!(clip_quantile > 0.0 && clip_quantile < 1.0)) {
      return Status::InvalidArgument("clip quantile must be in (0, 1)");
    }
    if (!(clip_smoothing > 0.0 && clip_smoothing <= 1.0)) {
      return Status::InvalidArgument("clip smoothing must be in (0, 1]");
    }
    if (per_layer_clipping) {
      return Status::InvalidArgument(
          "adaptive and per-layer clipping cannot be combined");
    }
  }
  return Status::Ok();
}

StatusOr<DpSgdResult> RunDpSgd(const Network& initial, const Dataset& d,
                               const Dataset& d_prime, bool train_on_d,
                               const DpSgdConfig& config, Rng& rng,
                               DpSgdStepObserver* observer) {
  DPAUDIT_RETURN_IF_ERROR(config.Validate());
  if (d.empty()) return Status::InvalidArgument("D must be non-empty");
  if (d_prime.empty()) {
    return Status::InvalidArgument("D' must be non-empty");
  }
  if (config.neighbor_mode == NeighborMode::kBounded &&
      d.size() != d_prime.size()) {
    return Status::InvalidArgument(
        "bounded DP requires |D| == |D'| (one record replaced)");
  }
  if (config.neighbor_mode == NeighborMode::kUnbounded &&
      d.size() != d_prime.size() + 1) {
    return Status::InvalidArgument(
        "unbounded DP requires |D| == |D'| + 1 (one record removed)");
  }

  DpSgdResult result;
  result.model = initial.Clone();
  result.steps.reserve(config.epochs);
  std::unique_ptr<Optimizer> optimizer =
      MakeOptimizer(config.optimizer, config.learning_rate);
  const double n = static_cast<double>(d.size());
  double clip = config.clip_norm;

  // One engine (worker replicas, workspaces, pool) for the whole run; only
  // parameters change between steps. The neighbor relationship between D and
  // D' is analyzed once so every step can share the per-example gradients of
  // the records the two datasets have in common.
  GradientEngine::Options engine_options;
  engine_options.threads =
      config.threads == 0 ? DefaultThreadCount() : config.threads;
  engine_options.batch_lanes = config.batch_lanes;
  GradientEngine engine(result.model, engine_options);
  const NeighborOverlap overlap =
      AnalyzeNeighborOverlap(d, d_prime, config.neighbor_mode);

  // Release and mean-gradient buffers live outside the step loop; each step
  // overwrites them in place, so the steady state allocates nothing per step.
  std::vector<float> released;
  std::vector<float> mean;

  for (size_t step = 0; step < config.epochs; ++step) {
    DPAUDIT_SPAN("train_step");
    DPAUDIT_METRIC_COUNT("dpaudit_train_steps_total", 1);
    // Both hypotheses' clipped gradient sums at the current weights. The
    // adversary can compute these itself (it knows D, D', theta_i); the
    // trainer computes them anyway for noise scaling and hands them to
    // observers to avoid duplicate backprop work. Per-example norms of the
    // actual training data drive adaptive clipping.
    engine.SyncParams(result.model);
    NeighborSums sums = [&] {
      DPAUDIT_SPAN("per_example_gradients");
      return overlap.sharable
                 ? ComputeClippedNeighborSums(engine, d, d_prime, overlap,
                                              config.neighbor_mode, clip,
                                              config.per_layer_clipping)
                 : ComputeClippedNeighborSumsTwoPass(
                       engine, d, d_prime, clip, config.per_layer_clipping);
    }();
    std::vector<double>& train_norms =
        train_on_d ? sums.norms_d : sums.norms_dprime;
    std::vector<float>& sum_d = sums.sum_d;
    std::vector<float>& sum_dprime = sums.sum_dprime;

    DpSgdStepRecord record;
    record.clip_norm = clip;
    record.local_sensitivity = GradientDistance(sum_d, sum_dprime);
    const double global_sensitivity =
        GlobalClipSensitivity(config.neighbor_mode, clip);
    record.sensitivity_used =
        config.sensitivity_mode == SensitivityMode::kGlobal
            ? global_sensitivity
            : record.local_sensitivity;
    if (record.sensitivity_used <= 0.0) {
      // Degenerate: both datasets induce identical sums (possible early in
      // training with dead ReLUs). Fall back to the global bound so the
      // mechanism stays well defined.
      record.sensitivity_used = global_sensitivity;
    }
    record.sigma = config.noise_multiplier * record.sensitivity_used;

    GaussianMechanism mechanism(record.sigma);
    const std::vector<float>& trained_sum = train_on_d ? sum_d : sum_dprime;
    released.assign(trained_sum.begin(), trained_sum.end());
    {
      DPAUDIT_SPAN("mechanism_perturb");
      mechanism.Perturb(released, rng);
    }

    if (observer != nullptr) {
      DPAUDIT_SPAN("adversary");
      observer->OnStep(step, sum_d, sum_dprime, released, record.sigma);
    }

    {
      DPAUDIT_SPAN("optimizer_step");
      // The optimizer consumes the released mean gradient (sum / n).
      mean.resize(released.size());
      for (size_t i = 0; i < released.size(); ++i) {
        mean[i] = static_cast<float>(released[i] / n);
      }
      optimizer->Step(result.model, mean);
    }
    result.steps.push_back(record);

    if (config.adaptive_clipping && !train_norms.empty()) {
      double target = Quantile(train_norms, config.clip_quantile);
      if (target > 0.0) {
        clip = (1.0 - config.clip_smoothing) * clip +
               config.clip_smoothing * target;
      }
    }
  }
  return result;
}

StatusOr<Network> RunNonPrivateSgd(const Network& initial, const Dataset& d,
                                   size_t epochs, double learning_rate,
                                   double clip_norm) {
  if (d.empty()) return Status::InvalidArgument("D must be non-empty");
  if (epochs == 0) return Status::InvalidArgument("epochs must be > 0");
  if (!(learning_rate > 0.0) || !(clip_norm > 0.0)) {
    return Status::InvalidArgument("learning rate and clip norm must be > 0");
  }
  Network model = initial.Clone();
  GradientEngine engine(model, {});
  const double n = static_cast<double>(d.size());
  for (size_t step = 0; step < epochs; ++step) {
    engine.SyncParams(model);
    std::vector<float> sum =
        engine.ClippedGradientSum(d.inputs, d.labels, clip_norm);
    model.ApplyGradientStep(sum, learning_rate / n);
  }
  return model;
}

}  // namespace dpaudit
