#include "core/belief.h"

#include "util/logging.h"
#include "util/math_util.h"

namespace dpaudit {

PosteriorBeliefTracker::PosteriorBeliefTracker(double prior_belief_d) {
  DPAUDIT_CHECK_GT(prior_belief_d, 0.0);
  DPAUDIT_CHECK_LT(prior_belief_d, 1.0);
  prior_logit_ = Logit(prior_belief_d);
  history_.push_back(prior_belief_d);
}

void PosteriorBeliefTracker::Observe(double log_density_d,
                                     double log_density_dprime) {
  llr_ += log_density_d - log_density_dprime;
  history_.push_back(belief_d());
}

double PosteriorBeliefTracker::belief_d() const {
  return Sigmoid(prior_logit_ + llr_);
}

double SingleObservationBelief(double log_density_d,
                               double log_density_dprime) {
  return Sigmoid(log_density_d - log_density_dprime);
}

}  // namespace dpaudit
