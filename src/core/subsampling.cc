#include "core/subsampling.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanism.h"
#include "nn/optimizer.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace dpaudit {

Status SampledDpSgdConfig::Validate() const {
  if (steps == 0) return Status::InvalidArgument("steps must be > 0");
  if (!(learning_rate > 0.0)) {
    return Status::InvalidArgument("learning rate must be > 0");
  }
  if (!(clip_norm > 0.0)) {
    return Status::InvalidArgument("clip norm must be > 0");
  }
  if (!(noise_multiplier > 0.0)) {
    return Status::InvalidArgument("noise multiplier must be > 0");
  }
  if (!(sampling_rate > 0.0 && sampling_rate <= 1.0)) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  return Status::Ok();
}

void SampledDiAdversary::OnStep(size_t /*step*/,
                                const std::vector<float>& common_sum,
                                const std::vector<float>& differing_gradient,
                                const std::vector<float>& released,
                                double sigma, double sampling_rate) {
  GaussianMechanism mechanism(sigma);
  // Under D': release ~ N(S, sigma^2 I).
  double log_p_dprime = mechanism.LogDensity(released, common_sum);
  // Under D: mixture over x1's Poisson inclusion.
  std::vector<float> with_differing = common_sum;
  for (size_t i = 0; i < with_differing.size(); ++i) {
    with_differing[i] += differing_gradient[i];
  }
  double log_p_in = mechanism.LogDensity(released, with_differing);
  double log_p_d = LogAddExp(std::log(sampling_rate) + log_p_in,
                             std::log1p(-sampling_rate) + log_p_dprime);
  if (sampling_rate >= 1.0) log_p_d = log_p_in;
  tracker_.Observe(log_p_d, log_p_dprime);
}

double SampledDiAdversary::MaxBeliefD() const {
  const std::vector<double>& history = tracker_.history();
  return *std::max_element(history.begin(), history.end());
}

StatusOr<SampledDpSgdResult> RunSampledDpSgd(
    const Network& initial, const Dataset& d, size_t differing_index,
    bool train_on_d, const SampledDpSgdConfig& config, Rng& rng,
    SampledStepObserver* observer) {
  DPAUDIT_RETURN_IF_ERROR(config.Validate());
  if (d.size() < 2) {
    return Status::InvalidArgument("need at least two records");
  }
  if (differing_index >= d.size()) {
    return Status::InvalidArgument("differing index out of range");
  }

  SampledDpSgdResult result;
  result.model = initial.Clone();
  result.steps = config.steps;
  std::unique_ptr<Optimizer> optimizer =
      MakeOptimizer(config.optimizer, config.learning_rate);
  // Unbounded sensitivity of the batch sum: one record contributes at most
  // a clipped gradient of norm C.
  const double sigma = config.noise_multiplier * config.clip_norm;
  const double expected_batch =
      config.sampling_rate * static_cast<double>(d.size());
  GaussianMechanism mechanism(sigma);

  for (size_t step = 0; step < config.steps; ++step) {
    // Poisson-sample the common records.
    std::vector<float> common_sum(result.model.NumParams(), 0.0f);
    for (size_t j = 0; j < d.size(); ++j) {
      if (j == differing_index) continue;
      if (!rng.Bernoulli(config.sampling_rate)) continue;
      std::vector<float> g = result.model.ClippedExampleGradient(
          d.inputs[j], d.labels[j], config.clip_norm);
      for (size_t i = 0; i < common_sum.size(); ++i) common_sum[i] += g[i];
    }
    std::vector<float> differing_gradient =
        result.model.ClippedExampleGradient(d.inputs[differing_index],
                                            d.labels[differing_index],
                                            config.clip_norm);
    bool differing_sampled =
        train_on_d && rng.Bernoulli(config.sampling_rate);
    result.differing_sampled.push_back(differing_sampled);

    std::vector<float> released = common_sum;
    if (differing_sampled) {
      for (size_t i = 0; i < released.size(); ++i) {
        released[i] += differing_gradient[i];
      }
    }
    mechanism.Perturb(released, rng);
    result.sigmas.push_back(sigma);

    if (observer != nullptr) {
      observer->OnStep(step, common_sum, differing_gradient, released, sigma,
                       config.sampling_rate);
    }

    // Normalize by the expected batch size (standard DPSGD practice with
    // Poisson sampling: the divisor must not depend on the realized batch).
    std::vector<float> mean = released;
    for (float& g : mean) {
      g = static_cast<float>(g / expected_batch);
    }
    optimizer->Step(result.model, mean);
  }
  return result;
}

double SampledExperimentSummary::SuccessRate(bool trained_on_d) const {
  if (decisions_d.empty()) return 0.0;
  size_t wins = 0;
  for (uint8_t says_d : decisions_d) {
    if ((says_d != 0) == trained_on_d) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(decisions_d.size());
}

double SampledExperimentSummary::EmpiricalAdvantage() const {
  return 2.0 * SuccessRate(true) - 1.0;
}

double SampledExperimentSummary::FractionAboveBelief(double bound) const {
  if (final_beliefs.empty()) return 0.0;
  size_t above = 0;
  for (double b : final_beliefs) {
    if (b > bound) ++above;
  }
  return static_cast<double>(above) /
         static_cast<double>(final_beliefs.size());
}

StatusOr<SampledExperimentSummary> RunSampledDiExperiment(
    const Network& architecture, const Dataset& d, size_t differing_index,
    const SampledDpSgdConfig& config, size_t repetitions, uint64_t seed,
    size_t threads) {
  DPAUDIT_RETURN_IF_ERROR(config.Validate());
  if (repetitions == 0) {
    return Status::InvalidArgument("repetitions must be > 0");
  }
  SampledExperimentSummary summary;
  summary.final_beliefs.resize(repetitions);
  summary.decisions_d.resize(repetitions);
  std::vector<double> max_beliefs(repetitions, 0.0);
  std::vector<Status> trial_status(repetitions, Status::Ok());
  Rng root(seed);
  if (threads == 0) threads = DefaultThreadCount();

  ThreadPool::ParallelFor(repetitions, threads, [&](size_t rep) {
    Rng rng = root.Split(rep);
    Network model = architecture.Clone();
    model.Initialize(rng);
    SampledDiAdversary adversary;
    StatusOr<SampledDpSgdResult> run =
        RunSampledDpSgd(model, d, differing_index, /*train_on_d=*/true,
                        config, rng, &adversary);
    if (!run.ok()) {
      trial_status[rep] = run.status();
      return;
    }
    summary.final_beliefs[rep] = adversary.FinalBeliefD();
    summary.decisions_d[rep] = adversary.DecideD();
    max_beliefs[rep] = adversary.MaxBeliefD();
  });
  for (const Status& st : trial_status) {
    if (!st.ok()) return st;
  }
  summary.max_belief =
      *std::max_element(max_beliefs.begin(), max_beliefs.end());
  return summary;
}

}  // namespace dpaudit
