// RuntimeOptions: the single front door for every process-level knob.
//
// Historically each subsystem read its own DPAUDIT_* environment variable ad
// hoc (thread count in util/thread_pool, lanes in util/env, trace cache in
// core/trace, telemetry in obs/telemetry, sweep mode in bench, ...). This
// header consolidates them into one struct with one documented precedence
// rule:
//
//   CLI flag  >  environment variable  >  built-in default
//
// Binaries call RuntimeOptions::FromEnvAndArgs() first thing in main — it
// starts from the environment, overlays any recognized --flags (stripping
// them from argv), and validates with actionable errors — then
// InitRuntimeOptions() to publish the result process-wide and
// ApplyRuntimeOptions() to push the values down into the layers that cannot
// see core (thread-pool override, batch-lane override, log level, fault
// plan). Libraries read CurrentRuntimeOptions(), which returns the published
// options or, when no binary published any, a fresh read of the environment
// — so tests that setenv/unsetenv between calls keep working unchanged.
//
// The knob table (RuntimeKnobTable) is the single source of truth for flag
// and variable names, defaults, and help text; --help output and the
// docs/OPERATIONS.md migration map are generated from it. Raw getenv calls
// outside this module's typed accessors are banned by the
// dpaudit-raw-getenv lint rule.

#ifndef DPAUDIT_CORE_RUNTIME_OPTIONS_H_
#define DPAUDIT_CORE_RUNTIME_OPTIONS_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace dpaudit {

enum class SweepMode {
  /// One flattened (cell x repetition) grid, dynamic chunked dispatch on the
  /// shared pool. The default.
  kFlattened,
  /// Sequential cells, ParallelFor within each — the pre-scheduler reference
  /// path, kept for A/B benchmarking (DPAUDIT_SWEEP_MODE=percell) and the
  /// bit-identity tests.
  kPerCell,
};

/// One row of the knob table: the CLI flag, the environment variable it
/// overrides, the default, and the help text. --help output is generated
/// from this table, so flags, env vars, and docs cannot drift apart.
struct RuntimeKnob {
  const char* flag;           // "--threads" (value via --threads=N)
  const char* env;            // "DPAUDIT_THREADS", "" when flag-only
  const char* default_value;  // rendered in --help
  const char* help;
};

const std::vector<RuntimeKnob>& RuntimeKnobTable();

struct RuntimeOptions {
  /// Worker threads for parallel regions. 0 = hardware-derived default.
  /// Results are bit-identical for any value (determinism contract).
  size_t threads = 0;

  /// Gradient-engine lane width. -1 = default (kDefaultBatchLanes); 0 =
  /// legacy scalar path. Bit-identical for any value.
  int64_t batch_lanes = -1;

  /// Step-trace cache directory; empty disables the cache.
  std::string trace_cache;

  /// Telemetry exports (profile/events/metrics/ledger) under this directory;
  /// disabled when empty.
  bool telemetry_enabled = false;
  std::string telemetry_dir;

  /// Sweep dispatch mode (core/sweep_scheduler.h).
  SweepMode sweep_mode = SweepMode::kFlattened;

  /// Sweep heartbeat interval in seconds; 0 disables the monitor thread.
  int64_t progress_seconds = 0;

  /// Minimum log level: "INFO" | "WARNING" | "ERROR" (or 0|1|2). Empty keeps
  /// the logging default.
  std::string log_level;

  /// How many times a failed sweep trial is retried before its cell degrades
  /// to a partial-repetition estimate.
  size_t trial_retries = 2;

  /// Base backoff between trial retries, milliseconds (deterministically
  /// jittered per attempt). 0 retries immediately.
  uint64_t retry_backoff_ms = 10;

  /// Sweep checkpoint journal path; empty disables checkpointing. Bench
  /// binaries with telemetry enabled default this to
  /// <telemetry_dir>/<binary>.sweep.jsonl.
  std::string checkpoint;

  /// Deterministic fault-injection spec (util/fault_injection.h); empty
  /// disables injection.
  std::string fault_spec;

  /// Per-cell sweep accounting (replayed/resumed/trained/failed/retried)
  /// through DPAUDIT_LOG. Never touches stdout.
  bool verbose = false;

  /// Set by FromEnvAndArgs when --help was passed; the caller prints
  /// PrintRuntimeOptionsHelp and exits.
  bool help = false;

  /// Environment layer only: every knob from its DPAUDIT_* variable, or its
  /// built-in default. Reads the environment fresh on every call.
  static RuntimeOptions FromEnv();

  /// FromEnv overlaid with recognized --flags, which are stripped from argv
  /// (unrecognized arguments pass through untouched). Returns an actionable
  /// InvalidArgument for malformed values; the surviving options are already
  /// Validate()d.
  static StatusOr<RuntimeOptions> FromEnvAndArgs(int* argc, char** argv);

  /// Range/spelling checks with actionable messages (what was wrong, what
  /// the accepted values are).
  Status Validate() const;
};

/// Publishes `options` as the process-wide configuration returned by
/// CurrentRuntimeOptions(). Call once from main, before spinning up work.
void InitRuntimeOptions(const RuntimeOptions& options);

/// The published options, or RuntimeOptions::FromEnv() when nothing was
/// published (library/test contexts).
RuntimeOptions CurrentRuntimeOptions();

/// Pushes the options into the layers below core that cannot read this
/// header: thread-count and batch-lane overrides (util), the log level
/// (util/logging), and the fault-injection plan (util/fault_injection).
/// Telemetry is NOT started here — callers own that lifecycle (it needs the
/// binary name); see bench/bench_common.h.
Status ApplyRuntimeOptions(const RuntimeOptions& options);

/// --help text generated from RuntimeKnobTable().
void PrintRuntimeOptionsHelp(const std::string& program, std::ostream& os);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_RUNTIME_OPTIONS_H_
