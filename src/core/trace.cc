#include "core/trace.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "core/dpsgd.h"
#include "core/runtime_options.h"
#include "io/serialization.h"
#include "obs/metrics.h"
#include "tensor/tensor.h"
#include "util/logging.h"

namespace dpaudit {
namespace {

// Registry-backed cache counters; references are process-lifetime stable.
obs::Counter& HitCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dpaudit_trace_cache_hits_total");
  return c;
}
obs::Counter& MissCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dpaudit_trace_cache_misses_total");
  return c;
}
obs::Counter& CorruptCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dpaudit_trace_cache_corrupt_total");
  return c;
}
obs::Counter& EvictionCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dpaudit_trace_cache_evictions_total");
  return c;
}

}  // namespace

TraceCacheCounters GetTraceCacheCounters() {
  TraceCacheCounters counters;
  counters.hits = HitCounter().Value();
  counters.misses = MissCounter().Value();
  counters.corrupt = CorruptCounter().Value();
  counters.evictions = EvictionCounter().Value();
  return counters;
}

namespace {

namespace fs = std::filesystem;

constexpr char kTraceSuffix[] = ".dptrace";

// Bump whenever the canonical fingerprint encoding or the trace payload
// schema changes; old cache entries then simply stop matching/parsing.
// v2: repetitions removed from the fingerprint (prefix-extensible traces).
constexpr uint32_t kTraceSchemaVersion = 2;

// Second FNV-1a offset basis (the standard basis with a flipped low byte)
// so hi and lo are independent 64-bit streams over the same bytes.
constexpr uint64_t kFnvSeedHi = 0xcbf29ce4842223a5ULL;

void HashBytes(const std::vector<uint8_t>& bytes, TraceFingerprint* out) {
  out->lo = Fnv1a64(bytes.data(), bytes.size());
  out->hi = Fnv1a64(bytes.data(), bytes.size(), kFnvSeedHi);
}

void PutBool(std::vector<uint8_t>& out, bool b) {
  wire::PutU32(out, b ? 1 : 0);
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  wire::PutU64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void PutDataset(std::vector<uint8_t>& out, const Dataset& dataset) {
  wire::PutU64(out, dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    wire::PutU64(out, dataset.labels[i]);
    const Tensor& x = dataset.inputs[i];
    wire::PutU32(out, static_cast<uint32_t>(x.rank()));
    for (size_t dim : x.shape()) wire::PutU64(out, dim);
    for (float v : x.vec()) wire::PutF32(out, v);
  }
}

}  // namespace

std::string TraceFingerprint::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

StatusOr<TraceFingerprint> TraceFingerprint::FromHex(const std::string& hex) {
  if (hex.size() != 32) {
    return Status::InvalidArgument("fingerprint hex must be 32 characters");
  }
  TraceFingerprint key;
  uint64_t* parts[2] = {&key.hi, &key.lo};
  for (int p = 0; p < 2; ++p) {
    uint64_t v = 0;
    for (int i = 0; i < 16; ++i) {
      char c = hex[16 * p + i];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint64_t>(c - 'A') + 10;
      } else {
        return Status::InvalidArgument("fingerprint hex has non-hex digit");
      }
      v = (v << 4) | digit;
    }
    *parts[p] = v;
  }
  return key;
}

uint64_t DatasetDigest(const Dataset& dataset) {
  std::vector<uint8_t> bytes;
  PutDataset(bytes, dataset);
  return Fnv1a64(bytes.data(), bytes.size());
}

TraceFingerprint FingerprintExperiment(const Network& architecture,
                                       const Dataset& d,
                                       const Dataset& d_prime,
                                       const DiExperimentConfig& config,
                                       const Dataset* test_set) {
  std::vector<uint8_t> bytes;
  wire::PutU32(bytes, kTraceSchemaVersion);

  // DpSgdConfig, field by field. config.dpsgd.threads (and config.threads)
  // are deliberately omitted: the engine's determinism contract makes
  // results identical for any thread count.
  const DpSgdConfig& dpsgd = config.dpsgd;
  wire::PutU64(bytes, dpsgd.epochs);
  wire::PutF64(bytes, dpsgd.learning_rate);
  wire::PutF64(bytes, dpsgd.clip_norm);
  wire::PutF64(bytes, dpsgd.noise_multiplier);
  wire::PutU32(bytes, static_cast<uint32_t>(dpsgd.sensitivity_mode));
  wire::PutU32(bytes, static_cast<uint32_t>(dpsgd.neighbor_mode));
  wire::PutU32(bytes, static_cast<uint32_t>(dpsgd.optimizer));
  PutBool(bytes, dpsgd.adaptive_clipping);
  wire::PutF64(bytes, dpsgd.clip_quantile);
  wire::PutF64(bytes, dpsgd.clip_smoothing);
  PutBool(bytes, dpsgd.per_layer_clipping);

  // Experiment-level knobs. config.repetitions is deliberately omitted:
  // trial r depends only on (seed, r), so a shorter recording is a
  // bit-identical prefix of a longer run and shares its key (the
  // prefix-extensible contract in the header).
  wire::PutU64(bytes, config.seed);
  PutBool(bytes, config.randomize_challenge_bit);
  PutBool(bytes, config.reinitialize_weights);

  // Architecture: structure and current parameters (theta_0 when weights are
  // not reinitialized per trial).
  PutString(bytes, architecture.Describe());
  wire::PutU64(bytes, architecture.NumParams());
  for (float p : architecture.FlatParams()) wire::PutF32(bytes, p);

  // Dataset contents.
  PutDataset(bytes, d);
  PutDataset(bytes, d_prime);
  PutBool(bytes, test_set != nullptr && !test_set->empty());
  if (test_set != nullptr && !test_set->empty()) {
    PutDataset(bytes, *test_set);
  }

  TraceFingerprint key;
  HashBytes(bytes, &key);
  return key;
}

DiTrialResult ToTrialResult(const TrialTrace& trace) {
  DiTrialResult trial;
  trial.trained_on_d = trace.trained_on_d;
  trial.adversary_says_d = trace.adversary_says_d;
  trial.final_belief_d = trace.final_belief_d;
  trial.max_belief_d = trace.max_belief_d;
  trial.test_accuracy = trace.test_accuracy;
  trial.local_sensitivities.reserve(trace.steps.size());
  trial.sigmas.reserve(trace.steps.size());
  for (const StepTraceRecord& step : trace.steps) {
    trial.local_sensitivities.push_back(step.local_sensitivity);
    trial.sigmas.push_back(step.sigma);
  }
  return trial;
}

DiExperimentSummary ExperimentTrace::ToSummary() const {
  return ToSummaryPrefix(trials.size());
}

DiExperimentSummary ExperimentTrace::ToSummaryPrefix(
    size_t repetitions) const {
  DPAUDIT_CHECK(repetitions <= trials.size())
      << "prefix of " << repetitions << " from a trace of " << trials.size();
  DiExperimentSummary summary;
  summary.trials.resize(repetitions);
  for (size_t i = 0; i < repetitions; ++i) {
    summary.trials[i] = ToTrialResult(trials[i]);
  }
  return summary;
}

StatusOr<std::vector<uint8_t>> SerializeTrace(const ExperimentTrace& trace) {
  std::vector<uint8_t> payload;
  wire::PutU32(payload, kTraceSchemaVersion);
  wire::PutU64(payload, trace.fingerprint.hi);
  wire::PutU64(payload, trace.fingerprint.lo);
  wire::PutU64(payload, trace.trials.size());
  for (const TrialTrace& trial : trace.trials) {
    PutBool(payload, trial.trained_on_d);
    PutBool(payload, trial.adversary_says_d);
    wire::PutF64(payload, trial.final_belief_d);
    wire::PutF64(payload, trial.max_belief_d);
    wire::PutF64(payload, trial.test_accuracy);
    wire::PutU64(payload, trial.belief_history.size());
    for (double b : trial.belief_history) wire::PutF64(payload, b);
    wire::PutU64(payload, trial.steps.size());
    for (const StepTraceRecord& step : trial.steps) {
      wire::PutF64(payload, step.clip_norm);
      wire::PutF64(payload, step.local_sensitivity);
      wire::PutF64(payload, step.sensitivity_used);
      wire::PutF64(payload, step.sigma);
      wire::PutF64(payload, step.log_density_d);
      wire::PutF64(payload, step.log_density_dprime);
      wire::PutF64(payload, step.belief_d);
    }
  }
  return FrameBlob(kBlobKindTrace, payload);
}

StatusOr<ExperimentTrace> DeserializeTrace(const std::vector<uint8_t>& bytes) {
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                           UnframeBlob(bytes, kBlobKindTrace));
  wire::Reader reader(payload.data(), payload.size());
  DPAUDIT_ASSIGN_OR_RETURN(uint32_t schema, reader.U32());
  if (schema != kTraceSchemaVersion) {
    return Status::InvalidArgument("unsupported trace schema version");
  }
  ExperimentTrace trace;
  DPAUDIT_ASSIGN_OR_RETURN(trace.fingerprint.hi, reader.U64());
  DPAUDIT_ASSIGN_OR_RETURN(trace.fingerprint.lo, reader.U64());
  DPAUDIT_ASSIGN_OR_RETURN(uint64_t num_trials, reader.U64());
  // Each trial needs at least its fixed-size head; bounds the resize below.
  if (num_trials > payload.size()) {
    return Status::InvalidArgument("trace trial count exceeds payload");
  }
  trace.trials.resize(num_trials);
  for (TrialTrace& trial : trace.trials) {
    DPAUDIT_ASSIGN_OR_RETURN(uint32_t trained, reader.U32());
    DPAUDIT_ASSIGN_OR_RETURN(uint32_t says_d, reader.U32());
    trial.trained_on_d = trained != 0;
    trial.adversary_says_d = says_d != 0;
    DPAUDIT_ASSIGN_OR_RETURN(trial.final_belief_d, reader.F64());
    DPAUDIT_ASSIGN_OR_RETURN(trial.max_belief_d, reader.F64());
    DPAUDIT_ASSIGN_OR_RETURN(trial.test_accuracy, reader.F64());
    DPAUDIT_ASSIGN_OR_RETURN(uint64_t history, reader.U64());
    if (history * 8 > reader.remaining()) {
      return Status::InvalidArgument("trace belief history exceeds payload");
    }
    trial.belief_history.resize(history);
    for (double& b : trial.belief_history) {
      DPAUDIT_ASSIGN_OR_RETURN(b, reader.F64());
    }
    DPAUDIT_ASSIGN_OR_RETURN(uint64_t steps, reader.U64());
    if (steps * 56 > reader.remaining()) {
      return Status::InvalidArgument("trace step count exceeds payload");
    }
    trial.steps.resize(steps);
    for (StepTraceRecord& step : trial.steps) {
      DPAUDIT_ASSIGN_OR_RETURN(step.clip_norm, reader.F64());
      DPAUDIT_ASSIGN_OR_RETURN(step.local_sensitivity, reader.F64());
      DPAUDIT_ASSIGN_OR_RETURN(step.sensitivity_used, reader.F64());
      DPAUDIT_ASSIGN_OR_RETURN(step.sigma, reader.F64());
      DPAUDIT_ASSIGN_OR_RETURN(step.log_density_d, reader.F64());
      DPAUDIT_ASSIGN_OR_RETURN(step.log_density_dprime, reader.F64());
      DPAUDIT_ASSIGN_OR_RETURN(step.belief_d, reader.F64());
    }
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in trace payload");
  }
  return trace;
}

TraceStore::TraceStore(std::string directory)
    : directory_(std::move(directory)) {}

TraceStore* TraceStore::FromEnv() {
  // Latched at first use: --trace-cache/DPAUDIT_TRACE_CACHE through
  // core/runtime_options (CLI flag wins when a binary published options).
  static TraceStore* store = [] {
    std::string dir = CurrentRuntimeOptions().trace_cache;
    return dir.empty() ? nullptr : new TraceStore(dir);
  }();
  return store;
}

std::string TraceStore::PathFor(const TraceFingerprint& key) const {
  return (fs::path(directory_) / (key.ToHex() + kTraceSuffix)).string();
}

StatusOr<ExperimentTrace> TraceStore::Load(const TraceFingerprint& key) const {
  const std::string path = PathFor(key);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    MissCounter().Add();
    return Status::NotFound("no trace cached at " + path);
  }
  StatusOr<std::vector<uint8_t>> bytes = ReadBlobFile(path);
  if (!bytes.ok()) {
    CorruptCounter().Add();
    return bytes.status();
  }
  StatusOr<ExperimentTrace> trace = DeserializeTrace(*bytes);
  if (!trace.ok()) {
    CorruptCounter().Add();
    return trace.status();
  }
  if (trace->fingerprint != key) {
    CorruptCounter().Add();
    return Status::InvalidArgument("trace file " + path +
                                   " holds a different fingerprint");
  }
  HitCounter().Add();
  return trace;
}

Status TraceStore::Save(const ExperimentTrace& trace) const {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::Internal("cannot create trace cache directory " +
                            directory_ + ": " + ec.message());
  }
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, SerializeTrace(trace));
  // Write-then-rename so a crashed writer never leaves a truncated entry
  // under the final name (readers either see the old bytes or the new).
  const std::string path = PathFor(trace.fingerprint);
  const std::string tmp = path + ".tmp";
  DPAUDIT_RETURN_IF_ERROR(WriteBlobFile(tmp, bytes));
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::Internal("cannot publish trace entry " + path);
  }
  return Status::Ok();
}

StatusOr<std::vector<TraceStore::Entry>> TraceStore::List() const {
  std::vector<Entry> entries;
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) return entries;  // absent directory == empty cache
  for (const fs::directory_entry& file : it) {
    const std::string name = file.path().filename().string();
    if (name.size() <= sizeof(kTraceSuffix) - 1 ||
        name.substr(name.size() - (sizeof(kTraceSuffix) - 1)) !=
            kTraceSuffix) {
      continue;
    }
    StatusOr<std::vector<uint8_t>> bytes = ReadBlobFile(file.path().string());
    if (!bytes.ok()) {
      CorruptCounter().Add();
      continue;
    }
    StatusOr<ExperimentTrace> trace = DeserializeTrace(*bytes);
    if (!trace.ok()) {
      CorruptCounter().Add();
      continue;
    }
    Entry entry;
    entry.key = trace->fingerprint.ToHex();
    entry.bytes = bytes->size();
    entry.repetitions = trace->trials.size();
    entry.steps = trace->trials.empty() ? 0 : trace->trials[0].steps.size();
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  return entries;
}

Status TraceStore::Evict(const std::string& key_hex) const {
  DPAUDIT_ASSIGN_OR_RETURN(TraceFingerprint key,
                           TraceFingerprint::FromHex(key_hex));
  const std::string path = PathFor(key);
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::NotFound("no trace cached at " + path);
  }
  EvictionCounter().Add();
  return Status::Ok();
}

StatusOr<size_t> TraceStore::EvictAll() const {
  size_t removed = 0;
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) return removed;
  for (const fs::directory_entry& file : it) {
    const std::string name = file.path().filename().string();
    if (name.size() > sizeof(kTraceSuffix) - 1 &&
        name.substr(name.size() - (sizeof(kTraceSuffix) - 1)) ==
            kTraceSuffix) {
      std::error_code remove_ec;
      if (fs::remove(file.path(), remove_ec) && !remove_ec) {
        EvictionCounter().Add();
        ++removed;
      }
    }
  }
  return removed;
}

}  // namespace dpaudit
