#include "core/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dpaudit {
namespace {

std::string Num(double v, int digits = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace

std::string AuditReportDocument::Verdict() const {
  double target = plan.dp.epsilon;
  double measured = epsilons.epsilon_from_sensitivities;
  if (measured > target * 1.05) {
    return "OVER BUDGET: the factual privacy loss exceeds the target "
           "epsilon — investigate the sensitivity configuration.";
  }
  if (measured > target * 0.9) {
    return "TIGHT: the privacy budget is factually spent; the chosen "
           "epsilon reflects the real risk.";
  }
  return "LOOSE: the factual privacy loss sits below the target — the "
         "mechanism adds more noise than the data requires (utility is "
         "being left on the table).";
}

std::string AuditReportDocument::ToMarkdown() const {
  std::ostringstream os;
  os << "# " << title << "\n\n";
  if (!dataset_description.empty()) {
    os << "Dataset: " << dataset_description << "\n\n";
  }
  os << "## Privacy plan\n\n"
     << "| quantity | value |\n|---|---|\n"
     << "| epsilon (target) | " << Num(plan.dp.epsilon) << " |\n"
     << "| delta | " << Num(plan.dp.delta, 6) << " |\n"
     << "| training steps (k) | " << plan.steps << " |\n"
     << "| noise multiplier z | " << Num(plan.noise_multiplier) << " |\n"
     << "| rho_beta (max posterior belief) | " << Num(plan.rho_beta)
     << " |\n"
     << "| rho_alpha (expected advantage) | " << Num(plan.rho_alpha)
     << " |\n\n";
  os << "## Empirical audit (" << repetitions << " adversarial runs)\n\n"
     << "| statistic | measured | bound |\n|---|---|---|\n"
     << "| membership advantage | " << Num(empirical_advantage) << " | "
     << Num(plan.rho_alpha) << " |\n"
     << "| max posterior belief | " << Num(max_belief) << " | "
     << Num(plan.rho_beta) << " |\n"
     << "| belief-bound violations | " << Num(empirical_delta) << " | "
     << Num(plan.dp.delta, 6) << " |\n\n";
  os << "## Empirical privacy loss\n\n"
     << "| estimator | epsilon' |\n|---|---|\n"
     << "| per-step sensitivities (RDP) | "
     << Num(epsilons.epsilon_from_sensitivities) << " |\n"
     << "| max posterior belief (Eq. 10) | "
     << Num(epsilons.epsilon_from_belief) << " |\n"
     << "| empirical advantage (Eq. 15) | "
     << Num(epsilons.epsilon_from_advantage) << " |\n\n";
  os << "## Verdict\n\n" << Verdict() << "\n";
  return os.str();
}

StatusOr<AuditReportDocument> BuildAuditReport(
    const PrivacyPlan& plan, const DiExperimentSummary& summary,
    const std::string& dataset_description) {
  if (summary.trials.empty()) {
    return Status::InvalidArgument("summary has no trials");
  }
  AuditReportDocument document;
  document.plan = plan;
  document.repetitions = summary.trials.size();
  document.dataset_description = dataset_description;
  document.empirical_advantage = summary.EmpiricalAdvantage();
  document.max_belief = summary.MaxBeliefInD();
  document.empirical_delta = summary.EmpiricalDelta(plan.rho_beta);
  DPAUDIT_ASSIGN_OR_RETURN(document.epsilons,
                           AuditExperiment(summary, plan.dp.delta));
  return document;
}

Status WriteAuditReport(const std::string& path,
                        const AuditReportDocument& document) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << document.ToMarkdown();
  if (!out) return Status::Internal("short write to " + path);
  return Status::Ok();
}

}  // namespace dpaudit
