#include "core/adversary.h"

#include <algorithm>

#include "dp/mechanism.h"
#include "obs/span.h"

namespace dpaudit {

void DiAdversary::OnStep(size_t /*step*/, const std::vector<float>& sum_d,
                         const std::vector<float>& sum_dprime,
                         const std::vector<float>& released, double sigma) {
  GaussianMechanism mechanism(sigma);
  double log_p_d = 0.0;
  double log_p_dprime = 0.0;
  {
    DPAUDIT_SPAN("adversary_llr");
    // The adversary is the observer side of the hypothesis test: it only
    // scores densities of sums the training loop already clipped and
    // perturbed upstream (core/dpsgd.cc), so no clip helper appears here.
    // NOLINTNEXTLINE(dpaudit-mechanism-flow)
    mechanism.LogDensityPair(released, sum_d, sum_dprime, &log_p_d,
                             &log_p_dprime);
  }
  DPAUDIT_SPAN("belief_update");
  log_density_d_.push_back(log_p_d);
  log_density_dprime_.push_back(log_p_dprime);
  tracker_.Observe(log_p_d, log_p_dprime);
}

double DiAdversary::MaxBeliefD() const {
  const std::vector<double>& history = tracker_.history();
  return *std::max_element(history.begin(), history.end());
}

}  // namespace dpaudit
