#include "core/adversary.h"

#include <algorithm>

#include "dp/mechanism.h"

namespace dpaudit {

void DiAdversary::OnStep(size_t /*step*/, const std::vector<float>& sum_d,
                         const std::vector<float>& sum_dprime,
                         const std::vector<float>& released, double sigma) {
  GaussianMechanism mechanism(sigma);
  double log_p_d = mechanism.LogDensity(released, sum_d);
  double log_p_dprime = mechanism.LogDensity(released, sum_dprime);
  tracker_.Observe(log_p_d, log_p_dprime);
}

double DiAdversary::MaxBeliefD() const {
  const std::vector<double>& history = tracker_.history();
  return *std::max_element(history.begin(), history.end());
}

}  // namespace dpaudit
