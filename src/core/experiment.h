// The differential-identifiability experiment Exp^DI (Experiment 2) for
// DPSGD, repeated for statistical stability and fanned out over a thread
// pool. One trial = initialize weights, run DPSGD on the challenger's
// dataset while A_DI observes every release, record the adversary's beliefs
// and decision plus the per-step sensitivities for auditing.

#ifndef DPAUDIT_CORE_EXPERIMENT_H_
#define DPAUDIT_CORE_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "core/dpsgd.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "util/status.h"

namespace dpaudit {

class TraceStore;
struct TrialTrace;

struct DiExperimentConfig {
  DpSgdConfig dpsgd;
  size_t repetitions = 100;
  uint64_t seed = 42;
  size_t threads = 0;  // 0: DefaultThreadCount()
  /// When false (paper's counting scheme, Section 6.2) every trial trains on
  /// D and success means beta_k(D) > 0.5; the Gaussian symmetry makes this
  /// equivalent to the two-sided experiment. When true the challenger flips
  /// a fair coin per trial (the literal Experiment 2).
  bool randomize_challenge_bit = false;
  /// Re-draw theta_0 per trial (fresh model instance per repetition, as in
  /// the paper's "trained 250 times").
  bool reinitialize_weights = true;
  /// Optional step-trace cache (core/trace.h), not owned. When set, a cache
  /// hit for this experiment's content fingerprint replays the recorded
  /// trace — the returned summary (and every epsilon' estimator computed
  /// from it) is bit-identical to a live run — and a miss runs live and
  /// records. Cache failures degrade to a live run, never to an error.
  TraceStore* trace_store = nullptr;
};

struct DiTrialResult {
  bool trained_on_d = true;       // challenger bit b
  bool adversary_says_d = false;  // adversary output b'
  double final_belief_d = 0.5;    // beta_k(D)
  double max_belief_d = 0.5;      // max_i beta_i(D)
  std::vector<double> local_sensitivities;  // per step ||S_D - S_D'||
  std::vector<double> sigmas;               // per step noise std
  double test_accuracy = -1.0;              // -1 when not evaluated

  bool Success() const { return adversary_says_d == trained_on_d; }
};

struct DiExperimentSummary {
  std::vector<DiTrialResult> trials;

  /// Fraction of trials where b' == b.
  double SuccessRate() const;

  /// Empirical Adv^DI (Definition 5): 2 * SuccessRate() - 1.
  double EmpiricalAdvantage() const;

  /// Empirical delta: fraction of trained-on-D trials whose final belief in
  /// D exceeds the bound rho_beta (Section 6.3 / Table 2).
  double EmpiricalDelta(double rho_beta) const;

  /// Final beliefs beta_k(D) over trained-on-D trials (Figure 6).
  std::vector<double> FinalBeliefsInD() const;

  /// Largest belief in D observed across all trials and steps (the beta-hat
  /// of the Section 6.4 epsilon' estimator).
  double MaxBeliefInD() const;

  /// Test accuracies (only for trials where a test set was evaluated).
  std::vector<double> TestAccuracies() const;
};

/// Runs repetition `rep` of the experiment: one weight init, one DPSGD run
/// observed by A_DI, one decision. The result is a pure function of
/// (architecture, d, d_prime, config, rep) — per-trial randomness comes from
/// Rng(config.seed).Split(rep), so it does NOT depend on config.repetitions,
/// on which thread runs the trial, or on how many trials run around it.
/// That independence is what makes flattened sweep scheduling
/// (core/sweep_scheduler.h) and trace prefix reuse (core/trace.h) sound.
/// Fills `*trial`; when `record` is non-null, also fills the step-trace
/// record for the cache. Callers are expected to resolve
/// config.dpsgd.threads (0 means "let RunDpSgd pick") before fanning trials
/// out, so nested parallelism stays within one budget.
Status RunDiTrial(const Network& architecture, const Dataset& d,
                  const Dataset& d_prime, const DiExperimentConfig& config,
                  size_t rep, DiTrialResult* trial, TrialTrace* record,
                  const Dataset* test_set = nullptr);

/// Runs the repeated experiment. `test_set`, when non-null, is evaluated on
/// every trial's final model (Figure 7). Trials are deterministic given
/// `config.seed` regardless of thread count. With a trace store configured,
/// a cached recording with at least config.repetitions trials replays
/// bit-identically; a shorter recording replays as a prefix and only the
/// missing repetitions train live (the extended trace is saved back).
StatusOr<DiExperimentSummary> RunDiExperiment(const Network& architecture,
                                              const Dataset& d,
                                              const Dataset& d_prime,
                                              const DiExperimentConfig& config,
                                              const Dataset* test_set =
                                                  nullptr);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_EXPERIMENT_H_
