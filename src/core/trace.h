// Step-trace record/replay for the Exp^DI harness (Section 6.4 economics).
//
// The paper derives three epsilon' estimators — from per-step sensitivities,
// from posterior beliefs, and from the empirical advantage — out of the SAME
// repeated DPSGD runs, yet each audit consumer historically retrained its
// grid cell from scratch. A StepTrace captures everything those estimators
// (and the figure binaries) read from a run: per repetition and per step the
// clip norm, local and used sensitivity, noise sigma, the released-vs-centers
// log-likelihood contributions, and the belief trajectory, plus the trial's
// final/max beliefs, decision, and test accuracy. A TraceStore persists
// complete traces through io/serialization's checksummed framing, keyed by a
// content fingerprint of the experiment inputs; replaying a trace through
// RunDiExperiment yields a DiExperimentSummary bit-identical to a live run,
// so every downstream Auditor estimator is bit-identical too.
//
// Fingerprint contract: the key hashes the full DpSgdConfig (minus the
// thread count — results are thread-invariant by the gradient engine's
// determinism contract), the experiment seed/challenge flags, the network
// architecture (description, parameter count, and current parameter values,
// which seed theta_0 when reinitialize_weights is false), and content
// digests of D, D', and the optional test set. Any change to any of these
// produces a different key, so a stale cache can never be replayed against
// new inputs.
//
// The repetition count is deliberately NOT part of the key: trial r is a
// pure function of (inputs above, r) via Rng::Split, so a recording with R
// trials is a bit-identical prefix of any run with R' >= R repetitions.
// Traces are therefore prefix-extensible — RunDiExperiment replays the
// cached prefix, trains only the missing tail, and saves the extended
// recording under the same key. Concurrent writers of the same key may race
// recordings of different lengths; Save is atomic (write + rename), every
// length is a valid prefix, and the last rename wins.

#ifndef DPAUDIT_CORE_TRACE_H_
#define DPAUDIT_CORE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/status.h"

namespace dpaudit {

/// 128-bit content fingerprint (two independently seeded FNV-1a streams over
/// the canonical encoding of the experiment inputs).
struct TraceFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  /// 32 lowercase hex characters, hi then lo — the cache file stem.
  std::string ToHex() const;
  static StatusOr<TraceFingerprint> FromHex(const std::string& hex);

  bool operator==(const TraceFingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const TraceFingerprint& other) const {
    return !(*this == other);
  }
};

/// One mechanism release, as both the trainer and the adversary saw it.
struct StepTraceRecord {
  double clip_norm = 0.0;          // C_i in effect at this step
  double local_sensitivity = 0.0;  // ||S_D - S_D'|| at this step
  double sensitivity_used = 0.0;   // Delta f_i that scaled sigma
  double sigma = 0.0;              // noise std (sum space)
  double log_density_d = 0.0;      // log Pr[M(S_D) = r_i]
  double log_density_dprime = 0.0; // log Pr[M(S_D') = r_i]
  double belief_d = 0.5;           // beta_i(D) after this release
};

/// One repetition of Experiment 2.
struct TrialTrace {
  bool trained_on_d = true;
  bool adversary_says_d = false;
  double final_belief_d = 0.5;
  double max_belief_d = 0.5;
  double test_accuracy = -1.0;  // -1 when no test set was evaluated
  std::vector<double> belief_history;  // beta_0 (prior) .. beta_k
  std::vector<StepTraceRecord> steps;
};

/// A complete recorded experiment: everything RunDiExperiment's summary is
/// built from, plus the per-step observables the summary discards.
struct ExperimentTrace {
  TraceFingerprint fingerprint;
  std::vector<TrialTrace> trials;

  /// Reconstructs the DiExperimentSummary a live run would have returned.
  /// All doubles are stored as IEEE-754 bit patterns, so the replayed
  /// summary — and every epsilon' estimator computed from it — is
  /// bit-identical to the recording run.
  DiExperimentSummary ToSummary() const;

  /// ToSummary() restricted to the first `repetitions` trials (which must
  /// not exceed trials.size()): exactly the summary a live run with that
  /// repetition count would have produced, by the prefix property of the
  /// fingerprint contract above.
  DiExperimentSummary ToSummaryPrefix(size_t repetitions) const;
};

/// Reconstructs the DiTrialResult one recorded repetition replays to.
DiTrialResult ToTrialResult(const TrialTrace& trial);

/// Process-wide trace-cache activity, mirrored into the obs metrics registry
/// (dpaudit_trace_cache_{hits,misses,corrupt,evictions}_total). Counted
/// unconditionally — cache events are rare and `dpaudit_cli trace list`
/// reports them without telemetry enabled.
struct TraceCacheCounters {
  uint64_t hits = 0;       // Load() returned a valid entry
  uint64_t misses = 0;     // Load() found no entry
  uint64_t corrupt = 0;    // entries that failed validation (Load or List)
  uint64_t evictions = 0;  // entries removed by Evict/EvictAll
};
TraceCacheCounters GetTraceCacheCounters();

/// Content digest of a dataset (labels, shapes, and float bit patterns).
uint64_t DatasetDigest(const Dataset& dataset);

/// The cache key for RunDiExperiment(architecture, d, d_prime, config,
/// test_set). See the fingerprint contract above.
TraceFingerprint FingerprintExperiment(const Network& architecture,
                                       const Dataset& d,
                                       const Dataset& d_prime,
                                       const DiExperimentConfig& config,
                                       const Dataset* test_set = nullptr);

/// Framed (checksummed, versioned) trace blobs; see io/serialization.h.
StatusOr<std::vector<uint8_t>> SerializeTrace(const ExperimentTrace& trace);
StatusOr<ExperimentTrace> DeserializeTrace(const std::vector<uint8_t>& bytes);

/// Content-addressed on-disk cache of experiment traces: one
/// `<fingerprint>.dptrace` file per experiment under a flat directory.
/// Thread-compatible: distinct experiments write distinct files; concurrent
/// writers of the SAME key write byte-identical content.
class TraceStore {
 public:
  explicit TraceStore(std::string directory);

  /// The process-wide store configured by the DPAUDIT_TRACE_CACHE
  /// environment variable, or nullptr when the variable is unset/empty.
  /// Experiment binaries use this as their default cache.
  static TraceStore* FromEnv();

  const std::string& directory() const { return directory_; }

  /// NotFound when no entry exists; InvalidArgument when the entry exists
  /// but fails validation (truncation, checksum, key mismatch).
  StatusOr<ExperimentTrace> Load(const TraceFingerprint& key) const;

  /// Writes (or atomically overwrites) the entry for trace.fingerprint,
  /// creating the cache directory if needed.
  Status Save(const ExperimentTrace& trace) const;

  struct Entry {
    std::string key;     // fingerprint hex
    uint64_t bytes = 0;  // file size
    size_t repetitions = 0;
    size_t steps = 0;  // steps of the first trial (uniform across trials)
  };

  /// All valid entries, sorted by key. Unreadable/corrupt files are skipped.
  StatusOr<std::vector<Entry>> List() const;

  /// Removes one entry by fingerprint hex; NotFound when absent.
  Status Evict(const std::string& key_hex) const;

  /// Removes every .dptrace entry; returns how many were deleted.
  StatusOr<size_t> EvictAll() const;

  /// The path an entry for `key` lives at.
  std::string PathFor(const TraceFingerprint& key) const;

 private:
  std::string directory_;
};

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_TRACE_H_
