#include "core/sweep_scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/ledger_bridge.h"
#include "core/sweep_journal.h"
#include "core/trace.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace {

// Mutable per-cell state of one flattened sweep. Prep runs under the
// once_flag on whichever thread claims one of the cell's trials first;
// call_once publishes every field it writes to the other trial tasks.
struct CellRun {
  const SweepCell* cell = nullptr;
  TraceStore* store = nullptr;  // effective store (options override applied)

  std::once_flag once;
  Status prep_status = Status::Ok();
  DiExperimentConfig config;  // configured copy, dpsgd.threads resolved
  TraceFingerprint key;
  ExperimentTrace trace;
  bool record = false;   // trace.trials collects this run for Save()
  bool collect = false;  // trace.trials collects live trials (Save/ledger/
                         // journal)
  size_t replayed = 0;   // leading trials replayed from the cache
  size_t resumed = 0;    // trials filled from the checkpoint journal
  std::vector<uint8_t> from_journal;  // per-rep: skip training, journal won
  DiExperimentSummary summary;
  std::vector<Status> trial_status;
  std::atomic<size_t> retried{0};  // extra attempts beyond each first try
  std::atomic<size_t> trials_finished{0};  // heartbeat: cell done detection
};

/// Deterministic per-attempt backoff jitter: splitmix64 over (seed, cell,
/// rep, attempt), so retry timing never depends on wall clock or thread
/// identity (results never depend on timing either way; this just keeps the
/// schedule reproducible for debugging).
uint64_t RetryJitterMs(uint64_t seed, size_t cell, size_t rep, size_t attempt,
                       uint64_t base_ms) {
  uint64_t z = seed ^ (0x9e3779b97f4a7c15ull * (cell + 1)) ^
               (0xbf58476d1ce4e5b9ull * (rep + 1)) ^
               (0x94d049bb133111ebull * attempt);
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return base_ms == 0 ? 0 : z % (base_ms + 1);
}

// --progress/DPAUDIT_PROGRESS (core/runtime_options.h): opt-in sweep
// heartbeat. A single monitor thread wakes every `secs` seconds and reports
// cells/trials done, throughput, and an ETA through DPAUDIT_LOG (stderr), so
// figure stdout stays byte-identical. With the knob unset no thread is
// started and the per-trial cost is two relaxed atomic increments.
class ProgressMonitor {
 public:
  ProgressMonitor(size_t total_cells, size_t total_trials)
      : total_cells_(total_cells), total_trials_(total_trials) {
    const int64_t seconds = CurrentRuntimeOptions().progress_seconds;
    if (seconds <= 0) return;
    interval_ = std::chrono::seconds(seconds);
    start_ns_ = obs::MonotonicNowNs();
    // Not pool work: the heartbeat must fire while the pool is saturated
    // with trials, so it owns a dedicated thread for the sweep's lifetime.
    thread_ = std::thread([this] { Loop(); });  // NOLINT(dpaudit-raw-thread)
  }

  ~ProgressMonitor() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void TrialDone(size_t n = 1) {
    trials_done_.fetch_add(n, std::memory_order_relaxed);
  }
  void CellDone() { cells_done_.fetch_add(1, std::memory_order_relaxed); }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!done_) {
      if (cv_.wait_for(lock, interval_, [this] { return done_; })) break;
      Report();
    }
  }

  void Report() const {
    const uint64_t trials = trials_done_.load(std::memory_order_relaxed);
    const uint64_t cells = cells_done_.load(std::memory_order_relaxed);
    const double elapsed_s =
        static_cast<double>(obs::MonotonicNowNs() - start_ns_) * 1e-9;
    const double rate =
        elapsed_s > 0.0 ? static_cast<double>(trials) / elapsed_s : 0.0;
    const double pct =
        total_trials_ > 0
            ? 100.0 * static_cast<double>(trials) /
                  static_cast<double>(total_trials_)
            : 100.0;
    const double eta_s = rate > 0.0 && trials < total_trials_
                             ? static_cast<double>(total_trials_ - trials) /
                                   rate
                             : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "sweep progress: cells %llu/%zu, trials %llu/%zu "
                  "(%.1f%%), %.2f trials/s, eta %.0f s",
                  static_cast<unsigned long long>(cells), total_cells_,
                  static_cast<unsigned long long>(trials), total_trials_,
                  pct, rate, eta_s);
    DPAUDIT_LOG(INFO) << line;
  }

  const size_t total_cells_;
  const size_t total_trials_;
  std::atomic<uint64_t> trials_done_{0};
  std::atomic<uint64_t> cells_done_{0};
  std::chrono::seconds interval_{0};
  uint64_t start_ns_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;  // NOLINT(dpaudit-raw-thread)
};

// Fills the reps the trace cache did not cover from the checkpoint journal.
// The cache prefix wins where both apply — the bytes are identical either
// way (both are recordings of the same pure trial function), the cache is
// simply already in trace form. Journal-resumed reps keep their summary and
// trace slots exactly as a live run would have produced them, so everything
// downstream (estimators, ledger, Save) is bit-identical.
void ResumeFromJournal(SweepJournal* journal, size_t reps, CellRun* run) {
  if (journal == nullptr) return;
  run->from_journal.assign(reps, 0);
  for (size_t rep = run->replayed; rep < reps; ++rep) {
    const TrialTrace* trial = journal->Find(run->key, rep);
    if (trial == nullptr) continue;
    run->summary.trials[rep] = ToTrialResult(*trial);
    if (run->collect) run->trace.trials[rep] = *trial;
    run->from_journal[rep] = 1;
    ++run->resumed;
  }
  if (run->resumed > 0) {
    DPAUDIT_LOG(INFO) << "sweep journal resumes " << run->resumed << "/"
                      << reps << " repetitions of cell "
                      << run->key.ToHex();
  }
}

// Lazy per-cell setup: deferred calibration, validation, trace-cache probe,
// prefix replay, checkpoint-journal resume. Runs inside the trial task set,
// so a later cell's (often expensive) calibration overlaps earlier cells'
// training instead of serializing the sweep.
void PrepareCell(size_t inner_threads, bool ledger, SweepJournal* journal,
                 CellRun* run) {
  DPAUDIT_SPAN("sweep_cell_prep");
  const SweepCell& cell = *run->cell;
  run->config = cell.config;
  if (cell.configure) {
    Status st = cell.configure(&run->config);
    if (!st.ok()) {
      run->prep_status = st;
      return;
    }
    if (run->config.repetitions != cell.config.repetitions) {
      run->prep_status = Status::InvalidArgument(
          "SweepCell::configure must not change repetitions");
      return;
    }
  }
  Status valid = run->config.dpsgd.Validate();
  if (!valid.ok()) {
    run->prep_status = valid;
    return;
  }
  if (run->config.dpsgd.threads == 0) {
    // The flattened grid saturates the pool with trials, so each trial's
    // gradient engine gets a nested budget of threads/threads = 1.
    run->config.dpsgd.threads = NestedThreadBudget(inner_threads,
                                                   inner_threads);
  }

  const size_t reps = run->config.repetitions;
  run->summary.trials.resize(reps);
  run->trial_status.assign(reps, Status::Ok());

  const bool need_key =
      run->store != nullptr || ledger || journal != nullptr;
  if (need_key) {
    run->key = FingerprintExperiment(*cell.architecture, *cell.d,
                                     *cell.d_prime, run->config,
                                     cell.test_set);
  }
  if (run->store == nullptr) {
    if (ledger || journal != nullptr) {
      // No cache, but the ledger needs the per-step traces of every live
      // trial, and the journal needs them to checkpoint trained trials.
      run->trace.fingerprint = run->key;
      run->trace.trials.resize(reps);
      run->collect = true;
    }
    ResumeFromJournal(journal, reps, run);
    return;
  }
  StatusOr<ExperimentTrace> cached = run->store->Load(run->key);
  if (cached.ok()) {
    run->replayed = std::min(cached->trials.size(), reps);
    if (cached->trials.size() < reps || ledger) {
      // Shorter recording: keep it as the prefix of this run's trace and
      // train only the tail (the prefix-extensible contract, core/trace.h).
      // With the ledger on, a full hit's traces are kept too — the recording
      // may exceed `reps`; it is never truncated or re-saved, and the ledger
      // emits only the first `reps`, matching the cold run byte-for-byte.
      run->trace.trials = std::move(cached->trials);
      if (run->replayed < reps) {
        DPAUDIT_LOG(INFO) << "trace " << run->key.ToHex() << " replays "
                          << run->replayed << "/" << reps
                          << " repetitions; extending";
      }
    }
    const std::vector<TrialTrace>& source =
        run->trace.trials.empty() ? cached->trials : run->trace.trials;
    for (size_t i = 0; i < run->replayed; ++i) {
      run->summary.trials[i] = ToTrialResult(source[i]);
    }
  } else if (cached.status().code() != StatusCode::kNotFound) {
    DPAUDIT_LOG(WARNING) << "ignoring unreadable trace " << run->key.ToHex()
                         << ": " << cached.status().message();
  }
  if (run->replayed < reps) {
    run->trace.fingerprint = run->key;
    run->trace.trials.resize(reps);
    run->record = true;
    run->collect = true;
  }
  ResumeFromJournal(journal, reps, run);
}

void CountSweepMetrics(const SweepStats& stats) {
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_cells_total", stats.cells);
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_trace_full_hits_total",
                       stats.trace_full_hits);
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_trace_prefix_hits_total",
                       stats.trace_prefix_hits);
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_trace_misses_total",
                       stats.trace_misses);
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_trials_replayed_total",
                       stats.trials_replayed);
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_trials_trained_total",
                       stats.trials_trained);
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_trials_resumed_total",
                       stats.trials_resumed);
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_trials_retried_total",
                       stats.trials_retried);
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_trials_failed_total",
                       stats.trials_failed);
  DPAUDIT_METRIC_COUNT("dpaudit_sweep_cells_degraded_total",
                       stats.cells_degraded);
}

TraceStore* EffectiveStore(const SweepOptions& options,
                           const SweepCell& cell) {
  return options.trace_store != nullptr ? options.trace_store
                                        : cell.config.trace_store;
}

std::vector<StatusOr<DiExperimentSummary>> RunSweepPerCell(
    const std::vector<SweepCell>& cells, const SweepOptions& options,
    size_t threads, SweepStats* stats, ProgressMonitor* monitor) {
  std::vector<StatusOr<DiExperimentSummary>> results;
  results.reserve(cells.size());
  for (const SweepCell& cell : cells) {
    DiExperimentConfig config = cell.config;
    if (cell.configure) {
      Status st = cell.configure(&config);
      if (!st.ok()) {
        results.emplace_back(st);
        monitor->CellDone();
        continue;
      }
    }
    config.trace_store = EffectiveStore(options, cell);
    config.threads = threads;
    const TraceCacheCounters before = GetTraceCacheCounters();
    results.push_back(RunDiExperiment(*cell.architecture, *cell.d,
                                      *cell.d_prime, config, cell.test_set));
    monitor->TrialDone(config.repetitions);
    monitor->CellDone();
    if (stats != nullptr && results.back().ok()) {
      const TraceCacheCounters after = GetTraceCacheCounters();
      const bool hit = after.hits > before.hits;
      if (config.trace_store != nullptr) {
        if (hit) {
          ++stats->trace_full_hits;  // full or prefix; per-cell path cannot
                                     // tell without re-probing — close enough
                                     // for the reference mode
        } else {
          ++stats->trace_misses;
        }
      }
    }
  }
  return results;
}

}  // namespace

std::vector<StatusOr<DiExperimentSummary>> RunSweep(
    const std::vector<SweepCell>& cells, const SweepOptions& options,
    SweepStats* stats) {
  DPAUDIT_SPAN("sweep_schedule");
  const size_t threads =
      options.threads == 0 ? DefaultThreadCount() : options.threads;
  SweepStats local;
  local.cells = cells.size();
  const bool ledger = LedgerEnabled();
  size_t total_trials = 0;
  for (const SweepCell& cell : cells) {
    total_trials += cell.config.repetitions;
  }
  ProgressMonitor monitor(cells.size(), total_trials);

  if (options.mode == SweepMode::kPerCell) {
    if (!options.checkpoint.empty()) {
      DPAUDIT_LOG(WARNING)
          << "sweep checkpoint requires the flattened scheduler; percell "
          << "mode runs without crash-safety";
    }
    auto results = RunSweepPerCell(cells, options, threads, &local,
                                   &monitor);
    CountSweepMetrics(local);
    if (stats != nullptr) *stats = local;
    return results;
  }

  // Checkpoint journal: loaded up front so PrepareCell can skip trials a
  // previous (crashed) run of this sweep already trained. Best-effort — a
  // journal that cannot be opened costs crash-safety, never the sweep.
  std::unique_ptr<SweepJournal> journal;
  if (!options.checkpoint.empty()) {
    StatusOr<std::unique_ptr<SweepJournal>> opened =
        SweepJournal::Open(options.checkpoint);
    if (opened.ok()) {
      journal = std::move(*opened);
      if (journal->loaded_trials() > 0) {
        DPAUDIT_LOG(INFO) << "sweep journal " << options.checkpoint
                          << " holds " << journal->loaded_trials()
                          << " completed trial(s)";
      }
    } else {
      DPAUDIT_LOG(WARNING) << "sweep checkpoint disabled: "
                           << opened.status().message();
    }
  }

  // Flattened grid: cell i owns flat indices [offset[i], offset[i] + reps_i).
  // Repetition counts come from the static configs — configure may not
  // change them — so the grid is fully shaped before any cell runs.
  std::vector<CellRun> runs(cells.size());
  std::vector<size_t> offset(cells.size() + 1, 0);
  for (size_t i = 0; i < cells.size(); ++i) {
    runs[i].cell = &cells[i];
    runs[i].store = EffectiveStore(options, cells[i]);
    offset[i + 1] = offset[i] + cells[i].config.repetitions;
  }
  const size_t total = offset.back();
  const size_t retries = options.trial_retries;
  const uint64_t backoff_base_ms = options.retry_backoff_ms;

  ThreadPool::ParallelForChunked(total, threads, /*grain=*/1,
                                 [&](size_t flat) {
    // flat -> (cell, rep). Cells are few; binary search keeps the map O(log).
    const size_t c = static_cast<size_t>(
        std::upper_bound(offset.begin(), offset.end(), flat) -
        offset.begin()) - 1;
    const size_t rep = flat - offset[c];
    CellRun& run = runs[c];
    std::call_once(run.once, [&] {
      PrepareCell(threads, ledger, journal.get(), &run);
    });
    const size_t cell_reps = offset[c + 1] - offset[c];
    const bool resumed =
        !run.from_journal.empty() && run.from_journal[rep] != 0;
    if (!run.prep_status.ok() || rep < run.replayed || resumed) {
      monitor.TrialDone();
      if (run.trials_finished.fetch_add(1, std::memory_order_relaxed) + 1 ==
          cell_reps) {
        monitor.CellDone();
      }
      return;
    }
    // A worker hopping to a different cell than its previous trial is the
    // work-stealing event worth counting: it means dynamic dispatch moved
    // idle capacity across a former cell barrier.
    thread_local const void* last_cell = nullptr;
    if (last_cell != static_cast<const void*>(&run)) {
      if (last_cell != nullptr) {
        DPAUDIT_METRIC_COUNT("dpaudit_sweep_cell_switches_total", 1);
      }
      last_cell = static_cast<const void*>(&run);
    }
    // Failure isolation: a throwing (or fault-injected) trial is retried up
    // to the budget with jittered backoff; the trial is a pure function of
    // (config, seed, rep), so a retry that succeeds is bit-identical to a
    // first attempt that would have. Exhaustion marks the rep failed and the
    // cell degrades in the results loop instead of sinking the sweep.
    Status trial_result = Status::Ok();
    for (size_t attempt = 1;; ++attempt) {
      if (fault::FailTrialAttempt(c, rep)) {
        trial_result = Status::Internal(
            "injected trial fault (cell " + std::to_string(c) + ", rep " +
            std::to_string(rep) + ", attempt " + std::to_string(attempt) +
            ")");
      } else {
        try {
          trial_result = RunDiTrial(
              *run.cell->architecture, *run.cell->d, *run.cell->d_prime,
              run.config, rep, &run.summary.trials[rep],
              run.collect ? &run.trace.trials[rep] : nullptr,
              run.cell->test_set);
        } catch (const std::exception& e) {
          trial_result =
              Status::Internal(std::string("trial threw: ") + e.what());
        } catch (...) {
          trial_result = Status::Internal("trial threw a non-std exception");
        }
      }
      if (trial_result.ok() || attempt > retries) break;
      run.retried.fetch_add(1, std::memory_order_relaxed);
      DPAUDIT_LOG(WARNING) << "sweep trial (cell " << c << ", rep " << rep
                           << ") attempt " << attempt
                           << " failed: " << trial_result.message()
                           << "; retrying ("
                           << (retries - attempt + 1) << " left)";
      const uint64_t backoff_ms =
          backoff_base_ms * attempt +
          RetryJitterMs(run.config.seed, c, rep, attempt, backoff_base_ms);
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<uint64_t>(backoff_ms, 10'000)));
      }
    }
    run.trial_status[rep] = trial_result;
    if (trial_result.ok() && journal != nullptr && run.collect) {
      // Checkpoint the trial the moment it completes, from the worker — rows
      // land in completion order, which resume tolerates by keying on
      // (fingerprint, rep).
      journal->AppendTrial(run.key, rep, run.config.seed,
                           run.trace.trials[rep]);
    }
    monitor.TrialDone();
    if (run.trials_finished.fetch_add(1, std::memory_order_relaxed) + 1 ==
        cell_reps) {
      monitor.CellDone();
    }
  });

  std::vector<StatusOr<DiExperimentSummary>> results;
  results.reserve(cells.size());
  local.per_cell.resize(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    CellRun& run = runs[i];
    if (cells[i].config.repetitions == 0) {
      // Zero-width cells never enter the grid, so prep never ran.
      results.emplace_back(
          Status::InvalidArgument("repetitions must be > 0"));
      continue;
    }
    if (!run.prep_status.ok()) {
      results.emplace_back(run.prep_status);
      continue;
    }
    const size_t reps = run.config.repetitions;
    Status first_failure = Status::Ok();
    size_t failed_reps = 0;
    for (const Status& st : run.trial_status) {
      if (st.ok()) continue;
      if (first_failure.ok()) first_failure = st;
      ++failed_reps;
    }
    SweepCellStats& cell_stats = local.per_cell[i];
    cell_stats.replayed = run.replayed;
    cell_stats.resumed = run.resumed;
    cell_stats.failed = failed_reps;
    cell_stats.retried = run.retried.load(std::memory_order_relaxed);
    cell_stats.trained = reps - run.replayed - run.resumed - failed_reps;
    local.trials_replayed += cell_stats.replayed;
    local.trials_resumed += cell_stats.resumed;
    local.trials_trained += cell_stats.trained;
    local.trials_retried += cell_stats.retried;
    local.trials_failed += cell_stats.failed;
    if (options.verbose) {
      DPAUDIT_LOG(INFO) << "sweep cell " << i << ": replayed "
                        << cell_stats.replayed << ", resumed "
                        << cell_stats.resumed << ", trained "
                        << cell_stats.trained << ", failed "
                        << cell_stats.failed << ", retried "
                        << cell_stats.retried << " (of " << reps
                        << " repetitions)";
    }
    if (failed_reps == reps) {
      // Nothing survived: keep the historical whole-cell error behavior.
      results.emplace_back(first_failure);
      continue;
    }
    const bool degraded = failed_reps > 0;
    if (degraded) {
      // Partial-repetition estimate: compact summary (and trace, so the
      // ledger digest matches the summary the caller audits) down to the
      // surviving reps, preserving repetition order. The trace is NOT saved
      // — a cache entry must be a pure prefix of reps 0..k-1, which a
      // gapped recording is not — and journaled survivors keep their true
      // rep indices, so a re-run retries exactly the failed reps.
      ++local.cells_degraded;
      DPAUDIT_LOG(WARNING) << "sweep cell " << i << " degraded: "
                           << failed_reps << "/" << reps
                           << " repetitions exhausted the retry budget ("
                           << first_failure.message() << ")";
      DiExperimentSummary compact;
      std::vector<TrialTrace> compact_traces;
      compact.trials.reserve(reps - failed_reps);
      if (run.collect) compact_traces.reserve(reps - failed_reps);
      for (size_t rep = 0; rep < reps; ++rep) {
        if (!run.trial_status[rep].ok()) continue;
        compact.trials.push_back(std::move(run.summary.trials[rep]));
        if (run.collect) {
          compact_traces.push_back(std::move(run.trace.trials[rep]));
        }
      }
      if (ledger) {
        EmitLedgerExperiment(run.key, run.config, *cells[i].d,
                             *cells[i].d_prime, cells[i].test_set,
                             compact_traces, compact.trials.size());
        EmitLedgerError(run.key, reps, compact.trials.size(), failed_reps,
                        first_failure.message());
      }
      results.push_back(std::move(compact));
      continue;
    }
    if (run.record) {
      DPAUDIT_SPAN("trace_record");
      Status saved = run.store->Save(run.trace);
      if (!saved.ok()) {
        DPAUDIT_LOG(WARNING) << "cannot cache trace " << run.key.ToHex()
                             << ": " << saved.message();
      }
    }
    if (run.store != nullptr) {
      if (run.replayed == reps) {
        ++local.trace_full_hits;
      } else if (run.replayed > 0) {
        ++local.trace_prefix_hits;
      } else {
        ++local.trace_misses;
      }
    }
    // The sequential results loop is the single emission point: ledger rows
    // appear in cell order regardless of how work stealing interleaved the
    // trials, so the file is byte-stable across thread counts and modes.
    if (ledger) {
      EmitLedgerExperiment(run.key, run.config, *cells[i].d,
                           *cells[i].d_prime, cells[i].test_set,
                           run.trace.trials, reps);
    }
    results.push_back(std::move(run.summary));
  }

  CountSweepMetrics(local);
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace dpaudit
