// Markdown audit report: the artifact a data scientist hands to a privacy
// officer after running the paper's workflow. Collects the plan (chosen
// identifiability bounds and derived DP parameters), the empirical audit
// (advantage, beliefs, the three epsilon' estimates) and a plain-language
// verdict.

#ifndef DPAUDIT_CORE_REPORT_H_
#define DPAUDIT_CORE_REPORT_H_

#include <string>

#include "core/auditor.h"
#include "core/experiment.h"
#include "core/policy.h"
#include "util/status.h"

namespace dpaudit {

struct AuditReportDocument {
  std::string title = "DPSGD identifiability audit";
  PrivacyPlan plan;
  double empirical_advantage = 0.0;
  double max_belief = 0.0;
  double empirical_delta = 0.0;
  AuditReport epsilons;
  size_t repetitions = 0;
  std::string dataset_description;

  /// Renders the report as markdown.
  std::string ToMarkdown() const;

  /// One-line verdict: tight / loose / over budget.
  std::string Verdict() const;
};

/// Assembles the document from a plan and an experiment summary.
StatusOr<AuditReportDocument> BuildAuditReport(
    const PrivacyPlan& plan, const DiExperimentSummary& summary,
    const std::string& dataset_description);

/// Writes the markdown to a file.
Status WriteAuditReport(const std::string& path,
                        const AuditReportDocument& document);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_REPORT_H_
