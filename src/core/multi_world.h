// Differential identifiability over a SET of possible worlds (Lee & Clifton,
// Section 2.3).
//
// The original DI threat model has the adversary compute a posterior over a
// finite set Psi of candidate input datasets given the mechanism outputs;
// Li et al. showed |Psi| = 2 recovers the DP worst case, which is what the
// rest of this library implements. This module provides the general |Psi|
// >= 2 machinery: a posterior tracker over many hypotheses and a DPSGD
// experiment where the adversary must pick the true training dataset out of
// a lineup. Useful for (a) validating the |Psi| = 2 reduction and (b)
// studying how identifiability decays as the adversary's uncertainty grows.

#ifndef DPAUDIT_CORE_MULTI_WORLD_H_
#define DPAUDIT_CORE_MULTI_WORLD_H_

#include <cstdint>
#include <vector>

#include "core/dpsgd.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "util/status.h"

namespace dpaudit {

/// Bayesian posterior over |Psi| hypotheses, updated from per-hypothesis
/// log-likelihoods of each observation. Log-space throughout.
class MultiWorldPosterior {
 public:
  /// Uniform prior over `num_worlds` >= 2 hypotheses.
  explicit MultiWorldPosterior(size_t num_worlds);

  /// Prior from explicit weights (must be positive; normalized internally).
  explicit MultiWorldPosterior(const std::vector<double>& prior_weights);

  size_t num_worlds() const { return log_weights_.size(); }

  /// Records one observation: log Pr[M(Psi_i) = r] for every world i.
  void Observe(const std::vector<double>& log_likelihoods);

  /// Current posterior probabilities (sum to 1).
  std::vector<double> Posterior() const;

  /// Posterior of one world.
  double Belief(size_t world) const;

  /// argmax world (ties resolve to the lowest index).
  size_t MapEstimate() const;

  size_t observations() const { return observations_; }

 private:
  std::vector<double> log_weights_;  // unnormalized log posterior
  size_t observations_ = 0;
};

struct MultiWorldExperimentConfig {
  DpSgdConfig dpsgd;          // neighbor checks are skipped (worlds are free-form)
  size_t repetitions = 50;
  uint64_t seed = 42;
  size_t threads = 0;
};

struct MultiWorldSummary {
  size_t num_worlds = 0;
  /// Fraction of repetitions where the MAP estimate hit the true world.
  double identification_rate = 0.0;
  /// Mean final posterior mass on the true world.
  double mean_true_belief = 0.0;
  /// Largest final posterior on the true world over repetitions.
  double max_true_belief = 0.0;
};

/// Lineup experiment: every repetition trains (DPSGD, Gaussian noise on the
/// clipped gradient sum, sigma = z * Delta f with Delta f = the global clip
/// bound) on worlds[true_world]; the adversary observes each release, scores
/// it under ALL worlds' clipped gradient sums at the tracked weights, and
/// finally names a world. All worlds must have equal record counts (bounded
/// DP lineup).
StatusOr<MultiWorldSummary> RunMultiWorldExperiment(
    const Network& architecture, const std::vector<Dataset>& worlds,
    size_t true_world, const MultiWorldExperimentConfig& config);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_MULTI_WORLD_H_
