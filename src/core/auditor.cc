#include "core/auditor.h"

#include <cmath>
#include <limits>

#include "core/ledger_bridge.h"
#include "core/scores.h"
#include "dp/rdp_accountant.h"
#include "stats/summary.h"
#include "util/math_util.h"

namespace dpaudit {

StatusOr<double> EpsilonFromSensitivities(
    const std::vector<double>& sigmas,
    const std::vector<double>& local_sensitivities, double delta) {
  if (sigmas.size() != local_sensitivities.size()) {
    return Status::InvalidArgument("sigma and sensitivity series differ");
  }
  if (sigmas.empty()) {
    return Status::InvalidArgument("need at least one step");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  RdpAccountant accountant;
  for (size_t i = 0; i < sigmas.size(); ++i) {
    if (!(sigmas[i] > 0.0)) {
      return Status::InvalidArgument("sigma must be > 0 at every step");
    }
    if (local_sensitivities[i] <= 0.0) continue;  // indistinguishable step
    accountant.AddGaussianSteps(sigmas[i] / local_sensitivities[i]);
  }
  if (accountant.steps() == 0) return 0.0;
  return accountant.GetEpsilon(delta);
}

StatusOr<double> EpsilonFromSensitivities(const DiExperimentSummary& summary,
                                          double delta) {
  if (summary.trials.empty()) {
    return Status::InvalidArgument("summary has no trials");
  }
  RunningSummary epsilons;
  for (const DiTrialResult& trial : summary.trials) {
    DPAUDIT_ASSIGN_OR_RETURN(
        double eps, EpsilonFromSensitivities(trial.sigmas,
                                             trial.local_sensitivities,
                                             delta));
    epsilons.Add(eps);
  }
  return epsilons.mean();
}

StatusOr<double> EpsilonFromMaxBelief(double max_belief) {
  if (!(max_belief > 0.0 && max_belief < 1.0)) {
    return Status::InvalidArgument("belief must be in (0, 1)");
  }
  if (max_belief <= 0.5) return 0.0;
  return Logit(max_belief);
}

StatusOr<double> EpsilonFromAdvantage(double advantage, double delta) {
  if (!(advantage <= 1.0)) {
    return Status::InvalidArgument("advantage must be <= 1");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (advantage <= 0.0) return 0.0;
  if (advantage >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return EpsilonForRhoAlpha(advantage, delta);
}

StatusOr<EpsilonInterval> EpsilonIntervalFromWins(size_t wins, size_t trials,
                                                  double delta,
                                                  double z_score) {
  if (trials == 0) return Status::InvalidArgument("trials must be > 0");
  if (wins > trials) {
    return Status::InvalidArgument("wins cannot exceed trials");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  Interval rate = WilsonInterval(wins, trials, z_score);
  EpsilonInterval interval;
  // EpsilonFromAdvantage is monotone in the advantage, so mapping the rate
  // interval endpoints yields the epsilon' interval.
  DPAUDIT_ASSIGN_OR_RETURN(interval.lo,
                           EpsilonFromAdvantage(2.0 * rate.lo - 1.0, delta));
  DPAUDIT_ASSIGN_OR_RETURN(interval.hi,
                           EpsilonFromAdvantage(2.0 * rate.hi - 1.0, delta));
  double advantage =
      2.0 * static_cast<double>(wins) / static_cast<double>(trials) - 1.0;
  DPAUDIT_ASSIGN_OR_RETURN(interval.point,
                           EpsilonFromAdvantage(advantage, delta));
  return interval;
}

StatusOr<EpsilonInterval> EpsilonIntervalFromAdvantage(
    const DiExperimentSummary& summary, double delta) {
  if (summary.trials.empty()) {
    return Status::InvalidArgument("summary has no trials");
  }
  size_t wins = 0;
  for (const DiTrialResult& trial : summary.trials) {
    if (trial.Success()) ++wins;
  }
  return EpsilonIntervalFromWins(wins, summary.trials.size(), delta);
}

StatusOr<AuditReport> AuditExperiment(const DiExperimentSummary& summary,
                                      double delta) {
  AuditReport report;
  DPAUDIT_ASSIGN_OR_RETURN(report.epsilon_from_sensitivities,
                           EpsilonFromSensitivities(summary, delta));
  DPAUDIT_ASSIGN_OR_RETURN(report.epsilon_from_belief,
                           EpsilonFromMaxBelief(summary.MaxBeliefInD()));
  DPAUDIT_ASSIGN_OR_RETURN(
      report.epsilon_from_advantage,
      EpsilonFromAdvantage(summary.EmpiricalAdvantage(), delta));
  // The ledger's audit row links to the experiment block through the trial
  // content digest, so `dpaudit_cli ledger check` can recompute all three
  // estimators from rows alone and verify them against this report.
  if (LedgerEnabled()) {
    EmitLedgerAudit(summary, delta, report);
  }
  return report;
}

}  // namespace dpaudit
