// Minibatch (Poisson-subsampled) DPSGD and the matching DP adversary.
//
// Section 6.1: "In mini-batch gradient descent a number of b records from D
// is sampled for calculating an update ... RDP composition takes sampling
// into consideration." This module implements that regime for UNBOUNDED
// neighbors (D = D' + one record x1, the setting of the subsampled-Gaussian
// RDP analysis):
//
//   - Each step Poisson-samples every record independently with rate q; the
//     mechanism releases the noised sum of the batch's clipped gradients.
//   - The adversary knows the realized batch of COMMON records (worst-case
//     auxiliary knowledge, consistent with the DP adversary's "all but one
//     record" power) but not whether x1 was sampled. Under hypothesis D the
//     release is therefore a two-component Gaussian MIXTURE
//        q * N(S + g1, sigma^2 I) + (1 - q) * N(S, sigma^2 I),
//     under D' it is N(S, sigma^2 I); the belief update uses exactly these
//     densities. This is the distinguishing problem whose Renyi divergence
//     the subsampled accountant bounds, so Theorem 1 applies with the
//     accountant's epsilon.

#ifndef DPAUDIT_CORE_SUBSAMPLING_H_
#define DPAUDIT_CORE_SUBSAMPLING_H_

#include <cstdint>
#include <vector>

#include "core/belief.h"
#include "core/dpsgd.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "util/random.h"
#include "util/status.h"

namespace dpaudit {

struct SampledDpSgdConfig {
  size_t steps = 30;
  double learning_rate = 0.005;
  double clip_norm = 3.0;
  double noise_multiplier = 1.0;  // z = sigma / C (unbounded sensitivity C)
  double sampling_rate = 0.2;     // q in (0, 1]
  OptimizerKind optimizer = OptimizerKind::kSgd;

  Status Validate() const;
};

/// Observer for subsampled releases. `common_sum` is the clipped gradient
/// sum of the sampled COMMON records (those in D'); `differing_gradient` is
/// the clipped gradient of x1 at the current weights; `released` includes
/// x1's contribution iff training ran on D and x1 was sampled this step.
class SampledStepObserver {
 public:
  virtual ~SampledStepObserver() = default;
  virtual void OnStep(size_t step, const std::vector<float>& common_sum,
                      const std::vector<float>& differing_gradient,
                      const std::vector<float>& released, double sigma,
                      double sampling_rate) = 0;
};

/// The DP adversary for the subsampled mechanism: tracks the posterior via
/// the exact mixture likelihood described above.
class SampledDiAdversary : public SampledStepObserver {
 public:
  explicit SampledDiAdversary(double prior_belief_d = 0.5)
      : tracker_(prior_belief_d) {}

  void OnStep(size_t step, const std::vector<float>& common_sum,
              const std::vector<float>& differing_gradient,
              const std::vector<float>& released, double sigma,
              double sampling_rate) override;

  double FinalBeliefD() const { return tracker_.belief_d(); }
  double MaxBeliefD() const;
  const std::vector<double>& BeliefHistory() const {
    return tracker_.history();
  }
  bool DecideD() const { return tracker_.DecideD(); }

 private:
  PosteriorBeliefTracker tracker_;
};

struct SampledDpSgdResult {
  Network model;
  std::vector<double> sigmas;              // per step (constant: z * C)
  std::vector<bool> differing_sampled;     // was x1 in the batch?
  size_t steps = 0;
};

/// Runs subsampled DPSGD. `d` must equal `d_prime` plus exactly one extra
/// record, which must be at index `differing_index` of d (unbounded DP).
/// `train_on_d` is the challenger's bit.
StatusOr<SampledDpSgdResult> RunSampledDpSgd(
    const Network& initial, const Dataset& d, size_t differing_index,
    bool train_on_d, const SampledDpSgdConfig& config, Rng& rng,
    SampledStepObserver* observer = nullptr);

struct SampledExperimentSummary {
  std::vector<double> final_beliefs;  // belief in D per repetition
  // Adversary output per repetition. uint8_t, not bool: repetitions write
  // their slot concurrently, and std::vector<bool> packs eight slots per
  // byte, so neighboring writers would race on the shared word.
  std::vector<uint8_t> decisions_d;
  double max_belief = 0.0;

  double SuccessRate(bool trained_on_d = true) const;
  double EmpiricalAdvantage() const;  // fixed-bit counting, as in Sec. 6.2
  double FractionAboveBelief(double bound) const;
};

/// Repeats the subsampled Exp^DI (always training on D; success means the
/// adversary says D — the paper's counting scheme) with fresh weights and
/// noise per repetition, fanned out over threads deterministically.
StatusOr<SampledExperimentSummary> RunSampledDiExperiment(
    const Network& architecture, const Dataset& d, size_t differing_index,
    const SampledDpSgdConfig& config, size_t repetitions, uint64_t seed,
    size_t threads = 0);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_SUBSAMPLING_H_
