// Differentially private batch gradient descent with per-step observation
// hooks — the training procedure of Section 6.1 / Algorithm 1's environment.
//
// Release convention: at each step the mechanism output is the Gaussian-
// perturbed SUM of clipped per-example gradients,
//   r_i = S_b + N(0, sigma_i^2 I),   S_b = sum_j clip(g_i(x_j), C),
// and the weight update is theta <- theta - (eta / n) * r_i with n = |D|
// fixed. Working in sum space keeps the two hypotheses' output distributions
// equal-covariance Gaussians (the setting of Theorem 2) and makes the
// per-step local sensitivity directly comparable to the clip norm:
//   LS_i = ||S_D - S_D'||, which is the paper's n * ||g_hat(D) - g_hat(D')||.
//
// The trainer always evaluates BOTH neighboring datasets' gradient sums at
// the current weights: the noise scale may depend on the local sensitivity
// (SensitivityMode::kLocalHat), and the DP adversary consumes both sums via
// the StepObserver hook. Which dataset actually drives training is the
// challenger's bit from Experiment 2.

#ifndef DPAUDIT_CORE_DPSGD_H_
#define DPAUDIT_CORE_DPSGD_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "dp/privacy_params.h"
#include "nn/gradient_engine.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "util/random.h"
#include "util/status.h"

namespace dpaudit {

/// Hyperparameters of a DPSGD run (paper Table 1 defaults).
struct DpSgdConfig {
  size_t epochs = 30;            // k; batch GD: one step per epoch
  double learning_rate = 0.005;  // eta, applied to the mean gradient
  double clip_norm = 3.0;        // C
  double noise_multiplier = 1.0; // z = sigma_i / Delta f_i
  SensitivityMode sensitivity_mode = SensitivityMode::kGlobal;
  NeighborMode neighbor_mode = NeighborMode::kBounded;
  /// Update rule fed with the released noisy mean gradient (Section 2.1
  /// allows "a differentially private version of ... Adam or SGD").
  OptimizerKind optimizer = OptimizerKind::kSgd;

  /// Adaptive clipping (Thakkar et al., the paper's Section 7 suggestion):
  /// after each step, move the clip norm toward the `clip_quantile`-th
  /// quantile of the training data's per-example gradient norms with
  /// geometric smoothing `clip_smoothing`. The realized clip-norm series is
  /// part of the mechanism description known to the adversary, and the
  /// per-step global sensitivity scales with the current clip norm, so the
  /// DP accounting stays valid. (The quantile itself is not privatized —
  /// this implements the utility ablation, as noted in DESIGN.md.)
  bool adaptive_clipping = false;
  double clip_quantile = 0.5;
  double clip_smoothing = 0.3;

  /// Per-layer clipping (Section 7's "setting C differently for each
  /// layer"): each layer's per-example gradient slice is clipped to
  /// C / sqrt(L). The whole-gradient norm stays <= C, so global sensitivity
  /// and accounting are unchanged. Incompatible with adaptive_clipping.
  bool per_layer_clipping = false;

  /// Worker threads for per-example gradient computation within a step
  /// (0 = DefaultThreadCount()). Results are bit-identical for any value;
  /// RunDiExperiment lowers this automatically when repetitions already run
  /// in parallel.
  size_t threads = 0;

  /// Lane count for the gradient engine's batched forward/backward path
  /// (kBatchLanesAuto = read DPAUDIT_BATCH_LANES, 0 = scalar path). Results
  /// are bit-identical for any value.
  size_t batch_lanes = GradientEngine::Options::kBatchLanesAuto;

  Status Validate() const;
};

/// Per-step audit trail.
struct DpSgdStepRecord {
  double sigma = 0.0;              // noise std used (sum space)
  double sensitivity_used = 0.0;   // Delta f_i that scaled sigma
  double local_sensitivity = 0.0;  // ||S_D - S_D'|| observed at this step
  double clip_norm = 0.0;          // C_i in effect at this step
};

/// Receives every release as it happens. `sum_d` / `sum_dprime` are the
/// clipped gradient sums under each hypothesis at the current weights;
/// `released` is the perturbed sum the mechanism output; `sigma` its noise.
class DpSgdStepObserver {
 public:
  virtual ~DpSgdStepObserver() = default;
  virtual void OnStep(size_t step, const std::vector<float>& sum_d,
                      const std::vector<float>& sum_dprime,
                      const std::vector<float>& released, double sigma) = 0;
};

struct DpSgdResult {
  Network model;                        // trained network
  std::vector<DpSgdStepRecord> steps;   // one record per update step
};

/// Runs DPSGD. `initial` provides the architecture and theta_0 (known to the
/// adversary); `train_on_d` is the challenger's bit b from Experiment 2
/// (true: gradients come from D; false: from D'). Observers (optional) see
/// every release.
StatusOr<DpSgdResult> RunDpSgd(const Network& initial, const Dataset& d,
                               const Dataset& d_prime, bool train_on_d,
                               const DpSgdConfig& config, Rng& rng,
                               DpSgdStepObserver* observer = nullptr);

/// Non-private baseline: plain batch gradient descent (clipping but no
/// noise), used for utility reference points.
StatusOr<Network> RunNonPrivateSgd(const Network& initial, const Dataset& d,
                                   size_t epochs, double learning_rate,
                                   double clip_norm);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_DPSGD_H_
