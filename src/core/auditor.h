// Auditing DPSGD (Section 6.4): three estimators of the empirical privacy
// loss epsilon' for a trained model, computable from the quantities the
// experiment harness records.
//
//   1. From per-step local sensitivities: the noise actually applied, sigma,
//      corresponds to an effective per-step noise multiplier
//      z_i = sigma_i / LS_i; RDP-composing those gives epsilon' (Figure 8).
//   2. From posterior beliefs: epsilon' = logit(beta-hat) for the maximal
//      observed belief beta-hat (inverse of Theorem 1 / Eq. 10, Figure 9).
//   3. From the empirical advantage: epsilon' via the inverse of Theorem 2
//      (Eq. 15, Figure 10).

#ifndef DPAUDIT_CORE_AUDITOR_H_
#define DPAUDIT_CORE_AUDITOR_H_

#include <vector>

#include "core/experiment.h"
#include "util/status.h"

namespace dpaudit {

/// epsilon' from per-step (sigma_i, LS_i) pairs: builds a heterogeneous RDP
/// accountant with per-step noise multipliers sigma_i / LS_i and converts at
/// the given delta. Steps whose LS_i is zero contribute nothing (the two
/// hypotheses were indistinguishable at that step).
StatusOr<double> EpsilonFromSensitivities(
    const std::vector<double>& sigmas,
    const std::vector<double>& local_sensitivities, double delta);

/// Averaged over many trials: per step, uses that trial's sigma and LS.
/// Returns the mean epsilon' across trials (Figure 8 plots this per target
/// epsilon).
StatusOr<double> EpsilonFromSensitivities(const DiExperimentSummary& summary,
                                          double delta);

/// epsilon' from the maximal observed posterior belief (Eq. 10 inverted).
/// Requires max_belief in (0, 1); beliefs <= 0.5 audit to epsilon' = 0.
StatusOr<double> EpsilonFromMaxBelief(double max_belief);

/// epsilon' from an empirical advantage at the given delta (inverse of
/// Theorem 2). Advantages <= 0 audit to epsilon' = 0; an advantage of 1
/// (every trial won — possible with finitely many repetitions) audits to
/// +infinity, since no finite epsilon permits certain identification.
StatusOr<double> EpsilonFromAdvantage(double advantage, double delta);

/// Bundles the three estimators for one experiment summary.
struct AuditReport {
  double epsilon_from_sensitivities = 0.0;
  double epsilon_from_belief = 0.0;
  double epsilon_from_advantage = 0.0;
};

StatusOr<AuditReport> AuditExperiment(const DiExperimentSummary& summary,
                                      double delta);

/// Confidence interval for the advantage-based estimator: the empirical
/// advantage is 2 * (wins / trials) - 1 with binomial noise, so the Wilson
/// 95% interval on the success rate maps (monotonically, via the inverse of
/// Theorem 2) to an interval on epsilon'. This is the honest way to read a
/// Figure-10-style audit at finite repetitions: "with 95% confidence the
/// factual epsilon lies in [lo, hi]".
struct EpsilonInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  // the point estimate from the observed advantage
};

StatusOr<EpsilonInterval> EpsilonIntervalFromWins(size_t wins, size_t trials,
                                                  double delta,
                                                  double z_score = 1.96);

/// Convenience over an experiment summary.
StatusOr<EpsilonInterval> EpsilonIntervalFromAdvantage(
    const DiExperimentSummary& summary, double delta);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_AUDITOR_H_
