#include "core/policy.h"

#include <sstream>

#include "core/scores.h"
#include "dp/rdp_accountant.h"

namespace dpaudit {

std::string PrivacyPlan::ToString() const {
  std::ostringstream os;
  os << dp.ToString() << " over " << steps << " steps"
     << " | rho_beta <= " << rho_beta << ", rho_alpha <= " << rho_alpha
     << " | per-step noise multiplier z = " << noise_multiplier;
  return os.str();
}

StatusOr<PrivacyPlan> MakePrivacyPlan(
    const IdentifiabilityRequirement& requirement) {
  if (requirement.steps == 0) {
    return Status::InvalidArgument("steps must be > 0");
  }
  PrivacyPlan plan;
  plan.steps = requirement.steps;
  plan.dp.delta = requirement.delta;
  switch (requirement.kind) {
    case RequirementKind::kMaxPosteriorBelief: {
      DPAUDIT_ASSIGN_OR_RETURN(plan.dp.epsilon,
                               EpsilonForRhoBeta(requirement.bound));
      break;
    }
    case RequirementKind::kMaxExpectedAdvantage: {
      DPAUDIT_ASSIGN_OR_RETURN(
          plan.dp.epsilon,
          EpsilonForRhoAlpha(requirement.bound, requirement.delta));
      break;
    }
  }
  DPAUDIT_ASSIGN_OR_RETURN(plan.rho_beta, RhoBeta(plan.dp.epsilon));
  DPAUDIT_ASSIGN_OR_RETURN(plan.rho_alpha,
                           RhoAlpha(plan.dp.epsilon, plan.dp.delta));
  DPAUDIT_ASSIGN_OR_RETURN(
      plan.noise_multiplier,
      NoiseMultiplierForTargetEpsilon(plan.dp.epsilon, plan.dp.delta,
                                      plan.steps));
  return plan;
}

StatusOr<PrivacyPlan> PlanFromPrivacyParams(const PrivacyParams& params,
                                            size_t steps) {
  DPAUDIT_RETURN_IF_ERROR(params.Validate());
  if (params.delta <= 0.0) {
    return Status::InvalidArgument(
        "rho_alpha and RDP calibration require delta > 0");
  }
  if (steps == 0) return Status::InvalidArgument("steps must be > 0");
  PrivacyPlan plan;
  plan.dp = params;
  plan.steps = steps;
  DPAUDIT_ASSIGN_OR_RETURN(plan.rho_beta, RhoBeta(params.epsilon));
  DPAUDIT_ASSIGN_OR_RETURN(plan.rho_alpha,
                           RhoAlpha(params.epsilon, params.delta));
  DPAUDIT_ASSIGN_OR_RETURN(
      plan.noise_multiplier,
      NoiseMultiplierForTargetEpsilon(params.epsilon, params.delta, steps));
  return plan;
}

}  // namespace dpaudit
