#include "core/neighbor_sums.h"

#include <cmath>
#include <cstdint>

#include "nn/network.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace dpaudit {

NeighborOverlap AnalyzeNeighborOverlap(const Dataset& d, const Dataset& d_prime,
                                       NeighborMode mode) {
  NeighborOverlap overlap;
  if (mode == NeighborMode::kBounded) {
    if (d.size() != d_prime.size()) return overlap;
    size_t mismatches = 0;
    for (size_t j = 0; j < d.size(); ++j) {
      if (d.labels[j] != d_prime.labels[j] ||
          !(d.inputs[j] == d_prime.inputs[j])) {
        overlap.diff_index = j;
        if (++mismatches > 1) return overlap;  // sharable stays false
      }
    }
    if (mismatches == 0) overlap.diff_index = 0;
    overlap.sharable = true;
    return overlap;
  }
  // Unbounded: D' must equal D with one record removed. Find the first
  // position where they disagree; everything after it in D' must match D
  // shifted by one.
  if (d.size() != d_prime.size() + 1) return overlap;
  size_t k = d_prime.size();
  for (size_t j = 0; j < d_prime.size(); ++j) {
    if (d.labels[j] != d_prime.labels[j] ||
        !(d.inputs[j] == d_prime.inputs[j])) {
      k = j;
      break;
    }
  }
  for (size_t j = k; j < d_prime.size(); ++j) {
    if (d.labels[j + 1] != d_prime.labels[j] ||
        !(d.inputs[j + 1] == d_prime.inputs[j])) {
      return overlap;
    }
  }
  overlap.diff_index = k;
  overlap.sharable = true;
  return overlap;
}

NeighborSums ComputeClippedNeighborSums(GradientEngine& engine,
                                        const Dataset& d,
                                        const Dataset& d_prime,
                                        const NeighborOverlap& overlap,
                                        NeighborMode mode, double clip_norm,
                                        bool per_layer) {
  DPAUDIT_CHECK(overlap.sharable);
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  const size_t num_params = engine.num_params();
  const std::vector<Network::ParamRange>& ranges = engine.param_ranges();
  const double per_layer_clip =
      per_layer ? clip_norm / std::sqrt(static_cast<double>(ranges.size()))
                : 0.0;

  // Union slot list plus per-slot membership. Bounded inserts d'_k directly
  // after d_k; unbounded's union is D itself.
  const size_t k = overlap.diff_index;
  std::vector<const Tensor*> inputs;
  std::vector<size_t> labels;
  std::vector<uint8_t> in_d;
  std::vector<uint8_t> in_dprime;
  const size_t union_size =
      mode == NeighborMode::kBounded ? d.size() + 1 : d.size();
  inputs.reserve(union_size);
  labels.reserve(union_size);
  in_d.reserve(union_size);
  in_dprime.reserve(union_size);
  for (size_t j = 0; j < d.size(); ++j) {
    inputs.push_back(&d.inputs[j]);
    labels.push_back(d.labels[j]);
    if (mode == NeighborMode::kBounded) {
      in_d.push_back(1);
      in_dprime.push_back(j == k ? 0 : 1);
      if (j == k) {
        inputs.push_back(&d_prime.inputs[k]);
        labels.push_back(d_prime.labels[k]);
        in_d.push_back(0);
        in_dprime.push_back(1);
      }
    } else {
      in_d.push_back(1);
      in_dprime.push_back(j == k ? 0 : 1);
    }
  }

  NeighborSums out;
  out.sum_d.assign(num_params, 0.0f);
  out.sum_dprime.assign(num_params, 0.0f);
  if (!per_layer) {
    out.norms_d.reserve(d.size());
    out.norms_dprime.reserve(d_prime.size());
  }

  auto accumulate = [&](std::vector<float>& sum,
                        const GradientEngine::PerExampleGradView& view) {
    if (per_layer) {
      for (size_t r = 0; r < ranges.size(); ++r) {
        AccumulateScaled(sum.data() + ranges[r].offset,
                         view.grad + ranges[r].offset, ranges[r].size,
                         ClipScale(view.layer_norms[r], per_layer_clip));
      }
    } else {
      AccumulateScaled(sum.data(), view.grad, num_params,
                       ClipScale(view.norm, clip_norm));
    }
  };

  engine.VisitPerExampleGradients(
      inputs, labels,
      per_layer ? GradientEngine::NormMode::kPerLayer
                : GradientEngine::NormMode::kWhole,
      [&](size_t j, const GradientEngine::PerExampleGradView& view) {
        if (in_d[j]) {
          if (!per_layer) out.norms_d.push_back(view.norm);
          accumulate(out.sum_d, view);
        }
        if (in_dprime[j]) {
          if (!per_layer) out.norms_dprime.push_back(view.norm);
          accumulate(out.sum_dprime, view);
        }
      });
  return out;
}

NeighborSums ComputeClippedNeighborSumsTwoPass(GradientEngine& engine,
                                               const Dataset& d,
                                               const Dataset& d_prime,
                                               double clip_norm,
                                               bool per_layer) {
  NeighborSums out;
  if (per_layer) {
    out.sum_d = engine.PerLayerClippedGradientSum(d.inputs, d.labels,
                                                  clip_norm);
    out.sum_dprime = engine.PerLayerClippedGradientSum(
        d_prime.inputs, d_prime.labels, clip_norm);
  } else {
    out.sum_d = engine.ClippedGradientSum(d.inputs, d.labels, clip_norm,
                                          &out.norms_d);
    out.sum_dprime = engine.ClippedGradientSum(d_prime.inputs, d_prime.labels,
                                               clip_norm, &out.norms_dprime);
  }
  return out;
}

}  // namespace dpaudit
