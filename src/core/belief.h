// Bayesian posterior-belief tracking (Definition 4 / Lemma 1).
//
// The adversary A_DI updates its belief in dataset D after each mechanism
// release. Lemma 1 shows the final belief is a function of the product of
// per-step likelihood ratios; we accumulate the log-likelihood-ratio
//   llr_k = sum_i [ log Pr(M_i(D) = r_i) - log Pr(M_i(D') = r_i) ]
// and recover beta_k = sigmoid(llr_k + logit(prior)), which is numerically
// exact where the naive product of thousands-dimensional Gaussian densities
// would under/overflow.

#ifndef DPAUDIT_CORE_BELIEF_H_
#define DPAUDIT_CORE_BELIEF_H_

#include <cstddef>
#include <vector>

namespace dpaudit {

/// Tracks beta_i(D) over a sequence of observed mechanism outputs.
class PosteriorBeliefTracker {
 public:
  /// Starts from the given prior belief in D (the paper assumes 0.5).
  /// Requires prior in (0, 1).
  explicit PosteriorBeliefTracker(double prior_belief_d = 0.5);

  /// Records one release: the log-densities of the observed output under the
  /// D-hypothesis and the D'-hypothesis.
  void Observe(double log_density_d, double log_density_dprime);

  /// Current belief beta_k(D); beta_k(D') is 1 - belief_d().
  double belief_d() const;

  /// Accumulated log-likelihood ratio sum_i (log p_i - log p'_i).
  double log_likelihood_ratio() const { return llr_; }

  /// beta_0, beta_1, ..., beta_k (index i = belief after i observations).
  const std::vector<double>& history() const { return history_; }

  size_t steps() const { return history_.size() - 1; }

  /// The adversary's decision rule (Eq. 4): true = "the mechanism ran on D".
  /// Ties (belief exactly 1/2) favor D', matching a conservative adversary.
  bool DecideD() const { return belief_d() > 0.5; }

 private:
  double prior_logit_;
  double llr_ = 0.0;
  std::vector<double> history_;
};

/// One-shot belief for a single release (the k = 1 case of Lemma 1), used by
/// closed-form analyses: beta = 1 / (1 + exp(log p' - log p)) with uniform
/// priors.
double SingleObservationBelief(double log_density_d,
                               double log_density_dprime);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_BELIEF_H_
