#include "core/experiment.h"

#include <algorithm>

#include "core/adversary.h"
#include "core/ledger_bridge.h"
#include "core/trace.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dpaudit {

double DiExperimentSummary::SuccessRate() const {
  if (trials.empty()) return 0.0;
  size_t wins = 0;
  for (const DiTrialResult& t : trials) {
    if (t.Success()) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(trials.size());
}

double DiExperimentSummary::EmpiricalAdvantage() const {
  return 2.0 * SuccessRate() - 1.0;
}

double DiExperimentSummary::EmpiricalDelta(double rho_beta) const {
  size_t on_d = 0;
  size_t exceeding = 0;
  for (const DiTrialResult& t : trials) {
    if (!t.trained_on_d) continue;
    ++on_d;
    if (t.final_belief_d > rho_beta) ++exceeding;
  }
  if (on_d == 0) return 0.0;
  return static_cast<double>(exceeding) / static_cast<double>(on_d);
}

std::vector<double> DiExperimentSummary::FinalBeliefsInD() const {
  std::vector<double> beliefs;
  for (const DiTrialResult& t : trials) {
    if (t.trained_on_d) beliefs.push_back(t.final_belief_d);
  }
  return beliefs;
}

double DiExperimentSummary::MaxBeliefInD() const {
  double best = 0.0;
  for (const DiTrialResult& t : trials) {
    if (t.trained_on_d) best = std::max(best, t.max_belief_d);
  }
  return best;
}

std::vector<double> DiExperimentSummary::TestAccuracies() const {
  std::vector<double> accuracies;
  for (const DiTrialResult& t : trials) {
    if (t.test_accuracy >= 0.0) accuracies.push_back(t.test_accuracy);
  }
  return accuracies;
}

Status RunDiTrial(const Network& architecture, const Dataset& d,
                  const Dataset& d_prime, const DiExperimentConfig& config,
                  size_t rep, DiTrialResult* trial_out, TrialTrace* record,
                  const Dataset* test_set) {
  // Nests under the scheduling span: pool tasks adopt the scheduling
  // thread's span through the telemetry hooks.
  DPAUDIT_SPAN("repetition");
  DPAUDIT_METRIC_COUNT("dpaudit_repetitions_total", 1);
  Rng rng = Rng(config.seed).Split(rep);
  Network model = architecture.Clone();
  if (config.reinitialize_weights) model.Initialize(rng);

  bool train_on_d =
      config.randomize_challenge_bit ? rng.Bernoulli(0.5) : true;

  DiAdversary adversary;
  StatusOr<DpSgdResult> run = RunDpSgd(model, d, d_prime, train_on_d,
                                       config.dpsgd, rng, &adversary);
  if (!run.ok()) return run.status();

  DiTrialResult& trial = *trial_out;
  trial.trained_on_d = train_on_d;
  trial.adversary_says_d = adversary.DecideD();
  // The adversary tracks belief in D; when training ran on D' its belief in
  // the true dataset is the complement, but we always store belief in D so
  // the Figure 6 distributions are comparable.
  trial.final_belief_d = adversary.FinalBeliefD();
  trial.max_belief_d = adversary.MaxBeliefD();
  trial.local_sensitivities.reserve(run->steps.size());
  trial.sigmas.reserve(run->steps.size());
  for (const DpSgdStepRecord& step : run->steps) {
    trial.local_sensitivities.push_back(step.local_sensitivity);
    trial.sigmas.push_back(step.sigma);
  }
  if (test_set != nullptr && !test_set->empty()) {
    trial.test_accuracy =
        run->model.Accuracy(test_set->inputs, test_set->labels);
  }

  if (record != nullptr) {
    TrialTrace& recorded = *record;
    recorded.trained_on_d = trial.trained_on_d;
    recorded.adversary_says_d = trial.adversary_says_d;
    recorded.final_belief_d = trial.final_belief_d;
    recorded.max_belief_d = trial.max_belief_d;
    recorded.test_accuracy = trial.test_accuracy;
    recorded.belief_history = adversary.BeliefHistory();
    const std::vector<double>& log_d = adversary.StepLogDensitiesD();
    const std::vector<double>& log_dp = adversary.StepLogDensitiesDPrime();
    recorded.steps.resize(run->steps.size());
    for (size_t i = 0; i < run->steps.size(); ++i) {
      StepTraceRecord& step = recorded.steps[i];
      const DpSgdStepRecord& step_record = run->steps[i];
      step.clip_norm = step_record.clip_norm;
      step.local_sensitivity = step_record.local_sensitivity;
      step.sensitivity_used = step_record.sensitivity_used;
      step.sigma = step_record.sigma;
      step.log_density_d = i < log_d.size() ? log_d[i] : 0.0;
      step.log_density_dprime = i < log_dp.size() ? log_dp[i] : 0.0;
      // history[0] is the prior, history[i+1] the belief after step i.
      step.belief_d = i + 1 < recorded.belief_history.size()
                          ? recorded.belief_history[i + 1]
                          : recorded.final_belief_d;
    }
  }
  return Status::Ok();
}

StatusOr<DiExperimentSummary> RunDiExperiment(const Network& architecture,
                                              const Dataset& d,
                                              const Dataset& d_prime,
                                              const DiExperimentConfig& config,
                                              const Dataset* test_set) {
  DPAUDIT_SPAN("di_experiment");
  DPAUDIT_RETURN_IF_ERROR(config.dpsgd.Validate());
  if (config.repetitions == 0) {
    return Status::InvalidArgument("repetitions must be > 0");
  }

  DiExperimentSummary summary;
  summary.trials.resize(config.repetitions);
  ExperimentTrace trace;
  size_t replayed = 0;   // leading trials reused from a cached recording
  bool full_hit = false; // the cache satisfied every repetition

  // The ledger needs the per-step trial traces and the fingerprint even when
  // no cache is configured, so recording is on whenever either consumer is.
  const bool ledger = LedgerEnabled();
  const bool collect = config.trace_store != nullptr || ledger;

  // Record/replay: on a cache hit the recorded trace reconstructs the
  // summary bit-identically (all doubles round-trip as IEEE-754 bit
  // patterns), so the expensive repeated training below is skipped. A
  // recording with fewer trials than requested replays as a prefix — trial
  // results never depend on the total repetition count — and only the tail
  // trains live. Any cache problem degrades to a live run.
  TraceFingerprint trace_key;
  if (collect) {
    trace_key = FingerprintExperiment(architecture, d, d_prime, config,
                                      test_set);
    trace.fingerprint = trace_key;
  }
  if (config.trace_store != nullptr) {
    DPAUDIT_SPAN("trace_replay");
    StatusOr<ExperimentTrace> cached = config.trace_store->Load(trace_key);
    if (cached.ok()) {
      if (cached->trials.size() >= config.repetitions) {
        if (!ledger) return cached->ToSummaryPrefix(config.repetitions);
        // Keep the full recorded traces for ledger emission. The recording
        // may hold MORE trials than requested; it is never truncated or
        // re-saved, and the ledger emits only the first `repetitions` — so
        // a replayed run writes rows byte-identical to the cold run's.
        full_hit = true;
        summary = cached->ToSummaryPrefix(config.repetitions);
        replayed = config.repetitions;
        trace.trials = std::move(cached->trials);
      } else {
        replayed = cached->trials.size();
        trace.trials = std::move(cached->trials);
        for (size_t i = 0; i < replayed; ++i) {
          summary.trials[i] = ToTrialResult(trace.trials[i]);
        }
        DPAUDIT_LOG(INFO) << "trace " << trace_key.ToHex() << " replays "
                          << replayed << "/" << config.repetitions
                          << " repetitions; extending";
      }
    } else if (cached.status().code() != StatusCode::kNotFound) {
      DPAUDIT_LOG(WARNING) << "ignoring unreadable trace "
                           << trace_key.ToHex() << ": "
                           << cached.status().message();
    }
  }
  if (collect && !full_hit) trace.trials.resize(config.repetitions);

  const size_t live = config.repetitions - replayed;
  std::vector<Status> trial_status(live, Status::Ok());
  size_t threads =
      config.threads == 0 ? DefaultThreadCount() : config.threads;

  // Split the thread budget between the two levels of parallelism: outer
  // repetitions get at most `threads` workers, and each repetition's
  // per-example gradient engine gets the remainder, so trials x examples
  // never oversubscribes the budget. An explicit config.dpsgd.threads wins.
  size_t outer = std::min(threads, live);
  DiExperimentConfig trial_config = config;
  if (trial_config.dpsgd.threads == 0) {
    trial_config.dpsgd.threads = NestedThreadBudget(threads, outer);
  }

  // Trials are heavyweight; grain 1 gives the dynamic dispatcher maximal
  // freedom to balance them across the shared pool.
  ThreadPool::ParallelForChunked(live, threads, /*grain=*/1, [&](size_t i) {
    const size_t rep = replayed + i;
    trial_status[i] = RunDiTrial(
        architecture, d, d_prime, trial_config, rep, &summary.trials[rep],
        collect ? &trace.trials[rep] : nullptr, test_set);
  });

  for (const Status& st : trial_status) {
    if (!st.ok()) return st;
  }

  if (config.trace_store != nullptr && !full_hit) {
    DPAUDIT_SPAN("trace_record");
    Status saved = config.trace_store->Save(trace);
    if (!saved.ok()) {
      DPAUDIT_LOG(WARNING) << "cannot cache trace " << trace_key.ToHex()
                           << ": " << saved.message();
    }
  }
  if (ledger) {
    EmitLedgerExperiment(trace_key, config, d, d_prime, test_set,
                         trace.trials, config.repetitions);
  }
  return summary;
}

}  // namespace dpaudit
