#include "core/scores.h"

#include <cmath>

#include "dp/calibration.h"
#include "stats/normal.h"
#include "util/math_util.h"

namespace dpaudit {

StatusOr<double> RhoBeta(double epsilon) {
  if (!(epsilon >= 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be finite and >= 0");
  }
  return Sigmoid(epsilon);
}

StatusOr<double> EpsilonForRhoBeta(double rho_beta) {
  if (!(rho_beta > 0.5 && rho_beta < 1.0)) {
    return Status::InvalidArgument(
        "rho_beta must be in (0.5, 1): 0.5 is the uninformed prior and 1 "
        "is certainty");
  }
  return Logit(rho_beta);
}

StatusOr<double> RhoAlpha(double epsilon, double delta) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be finite and > 0");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  double factor = GaussianCalibrationFactor(delta);  // sqrt(2 ln(1.25/delta))
  return 2.0 * NormalCdf(epsilon / (2.0 * factor)) - 1.0;
}

StatusOr<double> EpsilonForRhoAlpha(double rho_alpha, double delta) {
  if (!(rho_alpha > 0.0 && rho_alpha < 1.0)) {
    return Status::InvalidArgument("rho_alpha must be in (0, 1)");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  double factor = GaussianCalibrationFactor(delta);
  // Exact inverse of Theorem 2: eps = 2 sqrt(2 ln(1.25/delta)) Phi^-1((a+1)/2).
  // (The paper's Eq. 15 prints this without the leading 2; we keep the form
  // consistent with Theorem 2 so RhoAlpha and EpsilonForRhoAlpha round-trip.)
  return 2.0 * factor * NormalQuantile((rho_alpha + 1.0) / 2.0);
}

StatusOr<double> RhoAlphaRdp(double rdp_epsilon, double alpha) {
  if (!(rdp_epsilon >= 0.0)) {
    return Status::InvalidArgument("rdp epsilon must be >= 0");
  }
  if (!(alpha > 1.0)) return Status::InvalidArgument("alpha must be > 1");
  return 2.0 * NormalCdf(std::sqrt(rdp_epsilon / (2.0 * alpha))) - 1.0;
}

double GaussianAdvantage(double mean_distance_in_sigmas) {
  return 2.0 * NormalCdf(mean_distance_in_sigmas / 2.0) - 1.0;
}

StatusOr<double> GenericAdvantageBound(double epsilon,
                                       double p_false_positive) {
  if (!(epsilon >= 0.0)) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  if (!(p_false_positive >= 0.0 && p_false_positive <= 1.0)) {
    return Status::InvalidArgument("false positive rate must be in [0, 1]");
  }
  return (std::exp(epsilon) - 1.0) * p_false_positive;
}

double AdvantageFromSuccessRate(double success_rate) {
  return 2.0 * success_rate - 1.0;
}

StatusOr<double> RhoBetaSequential(double epsilon_per_step, size_t steps) {
  if (!(epsilon_per_step >= 0.0)) {
    return Status::InvalidArgument("per-step epsilon must be >= 0");
  }
  return Sigmoid(epsilon_per_step * static_cast<double>(steps));
}

}  // namespace dpaudit
