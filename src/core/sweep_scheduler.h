// Flattened (cell x repetition) scheduling for audit sweeps.
//
// The paper's headline artifacts (Figures 8-10, Table 2) are sweeps: a grid
// of (epsilon, sensitivity-mode) cells, each repeating Exp^DI dozens of
// times. Running the cells sequentially puts a full barrier at every cell
// boundary — the machine idles behind each cell's slowest trial. RunSweep
// instead flattens the whole grid into one task set of trials dispatched
// dynamically on the shared persistent pool (util/thread_pool.h): trials
// from cell N+1 start the moment workers free up, and per-cell setup
// (deferred calibration, trace-cache probing, prefix replay) runs lazily on
// whichever worker reaches the cell first, overlapped with earlier cells'
// trials.
//
// Determinism: trial r of a cell is a pure function of the cell's inputs and
// r (see RunDiTrial), and results are reduced into per-cell summary slots by
// index, so the returned summaries are bit-identical to running
// RunDiExperiment per cell — for any thread count, any dispatch order, and
// any trace-cache state. SweepMode::kPerCell keeps the sequential reference
// path selectable for A/B benchmarking and differential tests.

#ifndef DPAUDIT_CORE_SWEEP_SCHEDULER_H_
#define DPAUDIT_CORE_SWEEP_SCHEDULER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/experiment.h"
#include "util/status.h"

namespace dpaudit {

class TraceStore;

/// One cell of a sweep grid: which experiment to run, on what data. The
/// pointed-to objects are borrowed and must outlive the RunSweep call.
struct SweepCell {
  const Network* architecture = nullptr;
  const Dataset* d = nullptr;
  const Dataset* d_prime = nullptr;
  const Dataset* test_set = nullptr;  // optional, evaluated per trial

  /// Static part of the experiment config. `repetitions` and `seed` must be
  /// final here: the flattened trial grid is sized (and per-trial seeds are
  /// derived) before `configure` runs.
  DiExperimentConfig config;

  /// Optional deferred setup — typically noise calibration through the RDP
  /// accountant. Runs at most once per cell, on whichever thread reaches the
  /// cell first, overlapped with earlier cells' trials. May adjust anything
  /// in the config except `repetitions` (enforced) and should leave `seed`
  /// alone (changing it forfeits cache hits, not correctness).
  std::function<Status(DiExperimentConfig*)> configure;
};

enum class SweepMode {
  /// One flattened (cell x repetition) grid, dynamic chunked dispatch on the
  /// shared pool. The default.
  kFlattened,
  /// Sequential cells, ParallelFor within each — the pre-scheduler reference
  /// path, kept for A/B benchmarking (DPAUDIT_SWEEP_MODE=percell) and the
  /// bit-identity tests.
  kPerCell,
};

struct SweepOptions {
  size_t threads = 0;  // 0: DefaultThreadCount()
  SweepMode mode = SweepMode::kFlattened;
  /// When set, overrides every cell's config.trace_store — the sweep layer
  /// resolves the store once (e.g. TraceStore::FromEnv()) instead of per
  /// cell. nullptr falls back to each cell's own config.trace_store.
  TraceStore* trace_store = nullptr;
};

/// What one sweep did, for logs and telemetry. Mirrored into the metrics
/// registry as dpaudit_sweep_* counters.
struct SweepStats {
  size_t cells = 0;
  size_t trace_full_hits = 0;    // cells replayed entirely from cache
  size_t trace_prefix_hits = 0;  // cached prefix replayed, tail trained
  size_t trace_misses = 0;       // cells trained from scratch (store set)
  size_t trials_replayed = 0;
  size_t trials_trained = 0;
};

/// Runs every cell and returns its summary (or error) in cell order. The
/// summaries are bit-identical to calling RunDiExperiment per cell with the
/// same configs — for any thread count, either mode, cold or warm cache.
/// `stats`, when non-null, receives the per-sweep cache/trial accounting.
std::vector<StatusOr<DiExperimentSummary>> RunSweep(
    const std::vector<SweepCell>& cells, const SweepOptions& options = {},
    SweepStats* stats = nullptr);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_SWEEP_SCHEDULER_H_
