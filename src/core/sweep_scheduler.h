// Flattened (cell x repetition) scheduling for audit sweeps.
//
// The paper's headline artifacts (Figures 8-10, Table 2) are sweeps: a grid
// of (epsilon, sensitivity-mode) cells, each repeating Exp^DI dozens of
// times. Running the cells sequentially puts a full barrier at every cell
// boundary — the machine idles behind each cell's slowest trial. RunSweep
// instead flattens the whole grid into one task set of trials dispatched
// dynamically on the shared persistent pool (util/thread_pool.h): trials
// from cell N+1 start the moment workers free up, and per-cell setup
// (deferred calibration, trace-cache probing, prefix replay) runs lazily on
// whichever worker reaches the cell first, overlapped with earlier cells'
// trials.
//
// Determinism: trial r of a cell is a pure function of the cell's inputs and
// r (see RunDiTrial), and results are reduced into per-cell summary slots by
// index, so the returned summaries are bit-identical to running
// RunDiExperiment per cell — for any thread count, any dispatch order, and
// any trace-cache state. SweepMode::kPerCell keeps the sequential reference
// path selectable for A/B benchmarking and differential tests.
//
// Crash safety and failure isolation (flattened mode): with
// SweepOptions::checkpoint set, every freshly trained trial is appended to a
// sweep journal (core/sweep_journal.h) the moment it completes, and a
// re-launched sweep replays journaled trials instead of retraining them —
// stdout and ledger bytes are identical to an uninterrupted run. A trial
// that throws (or is failed by fault injection, util/fault_injection.h) is
// retried up to SweepOptions::trial_retries times with jittered backoff; on
// exhaustion the cell degrades to a partial-repetition summary, surfaced in
// SweepStats, the dpaudit_sweep_* metrics, and a ledger `error` row, instead
// of failing the sweep.

#ifndef DPAUDIT_CORE_SWEEP_SCHEDULER_H_
#define DPAUDIT_CORE_SWEEP_SCHEDULER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/runtime_options.h"
#include "util/status.h"

namespace dpaudit {

class TraceStore;

/// One cell of a sweep grid: which experiment to run, on what data. The
/// pointed-to objects are borrowed and must outlive the RunSweep call.
struct SweepCell {
  const Network* architecture = nullptr;
  const Dataset* d = nullptr;
  const Dataset* d_prime = nullptr;
  const Dataset* test_set = nullptr;  // optional, evaluated per trial

  /// Static part of the experiment config. `repetitions` and `seed` must be
  /// final here: the flattened trial grid is sized (and per-trial seeds are
  /// derived) before `configure` runs.
  DiExperimentConfig config;

  /// Optional deferred setup — typically noise calibration through the RDP
  /// accountant. Runs at most once per cell, on whichever thread reaches the
  /// cell first, overlapped with earlier cells' trials. May adjust anything
  /// in the config except `repetitions` (enforced) and should leave `seed`
  /// alone (changing it forfeits cache hits, not correctness).
  std::function<Status(DiExperimentConfig*)> configure;
};

// SweepMode (kFlattened / kPerCell) lives in core/runtime_options.h with the
// rest of the process-level knobs; it is re-exported through this include.

struct SweepOptions {
  size_t threads = 0;  // 0: DefaultThreadCount()
  SweepMode mode = SweepMode::kFlattened;
  /// When set, overrides every cell's config.trace_store — the sweep layer
  /// resolves the store once (e.g. TraceStore::FromEnv()) instead of per
  /// cell. nullptr falls back to each cell's own config.trace_store.
  TraceStore* trace_store = nullptr;
  /// Checkpoint journal path (core/sweep_journal.h); empty disables
  /// checkpointing. Flattened mode only — the per-cell reference path stays
  /// byte-for-byte the historical sequential implementation.
  std::string checkpoint;
  /// How many times a failed trial is re-attempted before it counts as
  /// failed. A cell whose reps partially fail degrades to a partial-
  /// repetition summary instead of erroring the whole sweep; a cell where
  /// every rep fails keeps the historical error behavior.
  size_t trial_retries = 2;
  /// Base backoff between retry attempts, milliseconds, deterministically
  /// jittered per (seed, cell, rep, attempt). 0 retries immediately.
  uint64_t retry_backoff_ms = 10;
  /// Per-cell accounting (replayed/resumed/trained/failed/retried) through
  /// DPAUDIT_LOG. Never touches stdout.
  bool verbose = false;
};

/// Per-cell trial accounting, indexed like the `cells` argument.
struct SweepCellStats {
  size_t replayed = 0;  // from the trace cache
  size_t resumed = 0;   // from the checkpoint journal
  size_t trained = 0;   // trained live this run
  size_t failed = 0;    // exhausted the retry budget
  size_t retried = 0;   // extra attempts beyond each trial's first
};

/// What one sweep did, for logs and telemetry. Mirrored into the metrics
/// registry as dpaudit_sweep_* counters.
struct SweepStats {
  size_t cells = 0;
  size_t trace_full_hits = 0;    // cells replayed entirely from cache
  size_t trace_prefix_hits = 0;  // cached prefix replayed, tail trained
  size_t trace_misses = 0;       // cells trained from scratch (store set)
  size_t trials_replayed = 0;
  size_t trials_trained = 0;
  size_t trials_resumed = 0;  // skipped via the checkpoint journal
  size_t trials_retried = 0;  // retry attempts across all cells
  size_t trials_failed = 0;   // trials that exhausted the retry budget
  size_t cells_degraded = 0;  // cells returned with fewer reps than asked
  std::vector<SweepCellStats> per_cell;  // flattened mode only
};

/// Runs every cell and returns its summary (or error) in cell order. The
/// summaries are bit-identical to calling RunDiExperiment per cell with the
/// same configs — for any thread count, either mode, cold or warm cache.
/// `stats`, when non-null, receives the per-sweep cache/trial accounting.
std::vector<StatusOr<DiExperimentSummary>> RunSweep(
    const std::vector<SweepCell>& cells, const SweepOptions& options = {},
    SweepStats* stats = nullptr);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_SWEEP_SCHEDULER_H_
