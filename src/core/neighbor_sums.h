// Clipped gradient sums over a pair of neighboring datasets, sharing the
// per-example gradients of the records the two datasets have in common.
//
// DPSGD-as-audited-here evaluates BOTH neighbors' clipped gradient sums at
// every step (dpsgd.h explains why). D and D' differ in at most one record,
// so the naive two-pass evaluation backpropagates every shared record twice.
// Sharing computes each shared gradient once and accumulates it into both
// sums, almost halving the per-step backprop work, while keeping both sums
// bit-identical to the two-pass reference:
//
//   Bounded (D' = D with record k replaced): examples are visited in the
//   union order [d_0 .. d_{k-1}, d_k, d'_k, d_{k+1} .. d_{n-1}]. sum_d
//   accumulates every slot except d'_k and sum_dprime every slot except d_k,
//   so each sum receives exactly its dataset's clipped gradients in that
//   dataset's original record order — the same additions in the same order
//   as an independent pass.
//
//   Unbounded (D' = D with record k removed): the union is D itself and
//   sum_dprime simply skips slot k.
//
// When the datasets do not have the expected near-identical structure (the
// overlap analysis fails), callers fall back to the two-pass path.

#ifndef DPAUDIT_CORE_NEIGHBOR_SUMS_H_
#define DPAUDIT_CORE_NEIGHBOR_SUMS_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "dp/privacy_params.h"
#include "nn/gradient_engine.h"

namespace dpaudit {

/// Result of checking whether (d, d_prime) have the one-record-difference
/// structure that gradient sharing requires.
struct NeighborOverlap {
  bool sharable = false;
  /// Bounded: the single differing record index (0 if the datasets are
  /// identical). Unbounded: the index of the record of D missing from D'.
  size_t diff_index = 0;
};

/// Compares the datasets record-by-record. Bounded mode requires equal sizes
/// and at most one differing record; unbounded requires |D| == |D'| + 1 with
/// D' equal to D minus one record. Anything else is not sharable.
NeighborOverlap AnalyzeNeighborOverlap(const Dataset& d, const Dataset& d_prime,
                                       NeighborMode mode);

/// Both neighbors' clipped gradient sums at the engine's current parameters,
/// plus each dataset's per-example pre-clip gradient norm stream (whole-
/// gradient norms; empty in per-layer mode, which clips per layer instead).
struct NeighborSums {
  std::vector<float> sum_d;
  std::vector<float> sum_dprime;
  std::vector<double> norms_d;
  std::vector<double> norms_dprime;
};

/// Shared-gradient evaluation; `overlap` must have sharable == true. Set
/// `per_layer` for per-layer clipping (Network::PerLayerClippedGradientSum
/// semantics). Bit-identical to ComputeClippedNeighborSumsTwoPass.
NeighborSums ComputeClippedNeighborSums(GradientEngine& engine,
                                        const Dataset& d,
                                        const Dataset& d_prime,
                                        const NeighborOverlap& overlap,
                                        NeighborMode mode, double clip_norm,
                                        bool per_layer);

/// Reference path: two independent clipped sums (still parallel across
/// examples via the engine). Used when sharing is not applicable.
NeighborSums ComputeClippedNeighborSumsTwoPass(GradientEngine& engine,
                                               const Dataset& d,
                                               const Dataset& d_prime,
                                               double clip_norm,
                                               bool per_layer);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_NEIGHBOR_SUMS_H_
