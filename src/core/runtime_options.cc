#include "core/runtime_options.h"

#include <cstring>
#include <mutex>
#include <ostream>
#include <string>

#include "util/env.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace {

struct PublishedOptions {
  std::mutex mu;
  bool set = false;
  RuntimeOptions options;
};

PublishedOptions& Published() {
  static PublishedOptions published;
  return published;
}

bool ParseLogLevel(const std::string& value, LogLevel* out) {
  if (value == "INFO" || value == "0") {
    *out = LogLevel::kInfo;
    return true;
  }
  if (value == "WARNING" || value == "1") {
    *out = LogLevel::kWarning;
    return true;
  }
  if (value == "ERROR" || value == "2") {
    *out = LogLevel::kError;
    return true;
  }
  return false;
}

/// strtoll with full-string validation; false on junk so flag errors are
/// reported instead of silently ignored (unlike the forgiving env layer).
bool ParseInt64(const std::string& value, int64_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

}  // namespace

const std::vector<RuntimeKnob>& RuntimeKnobTable() {
  static const std::vector<RuntimeKnob> kKnobs = {
      {"--threads", "DPAUDIT_THREADS", "auto",
       "worker threads for parallel regions (results are bit-identical for "
       "any value); auto = hardware concurrency clamped to [1,16]"},
      {"--lanes", "DPAUDIT_BATCH_LANES", "8",
       "gradient-engine batch lanes, 0 = scalar path (bit-identical for any "
       "value; max 32)"},
      {"--trace-cache", "DPAUDIT_TRACE_CACHE", "(off)",
       "step-trace cache directory; repeated experiments replay recordings "
       "bit-identically instead of retraining"},
      {"--telemetry", "DPAUDIT_TELEMETRY", "(off)",
       "telemetry export directory (profile.txt, events.jsonl, "
       "metrics.prom, ledger.jsonl); stdout stays byte-identical"},
      {"--sweep-mode", "DPAUDIT_SWEEP_MODE", "flattened",
       "sweep dispatch: flattened (one dynamic trial grid) or percell (the "
       "sequential reference path)"},
      {"--progress", "DPAUDIT_PROGRESS", "0",
       "sweep heartbeat interval in seconds through stderr logging; 0 = off"},
      {"--log-level", "DPAUDIT_LOG_LEVEL", "INFO",
       "minimum log level: INFO | WARNING | ERROR (or 0|1|2)"},
      {"--retries", "DPAUDIT_TRIAL_RETRIES", "2",
       "retry budget per sweep trial before the cell degrades to a "
       "partial-repetition estimate (max 100)"},
      {"--retry-backoff-ms", "DPAUDIT_RETRY_BACKOFF_MS", "10",
       "base backoff between trial retries, milliseconds, deterministically "
       "jittered per attempt"},
      {"--checkpoint", "DPAUDIT_SWEEP_CHECKPOINT", "(off)",
       "sweep checkpoint journal path; a re-launched sweep skips trials the "
       "journal already holds (see `dpaudit_cli sweep status|resume`)"},
      {"--fault-inject", "DPAUDIT_FAULT_INJECT", "(off)",
       "deterministic fault-injection spec, e.g. "
       "\"trial=0:1:2;journal-write=3;abort-after-append=5\" "
       "(util/fault_injection.h)"},
      {"--verbose", "DPAUDIT_VERBOSE", "off",
       "per-cell sweep accounting (replayed/resumed/trained/failed/retried) "
       "through stderr logging"},
  };
  return kKnobs;
}

RuntimeOptions RuntimeOptions::FromEnv() {
  RuntimeOptions options;
  const int64_t threads = EnvInt64("DPAUDIT_THREADS", 0);
  options.threads = threads > 0 ? static_cast<size_t>(threads) : 0;
  options.batch_lanes = EnvInt64("DPAUDIT_BATCH_LANES", -1);
  options.trace_cache = EnvString("DPAUDIT_TRACE_CACHE", "");
  options.telemetry_dir = EnvString("DPAUDIT_TELEMETRY", "");
  options.telemetry_enabled = !options.telemetry_dir.empty();
  // Tolerant like the historical SweepModeFromEnv: anything but "percell"
  // (including unset) selects the flattened scheduler. The --sweep-mode flag
  // is strict; see FromEnvAndArgs.
  options.sweep_mode = EnvString("DPAUDIT_SWEEP_MODE", "") == "percell"
                           ? SweepMode::kPerCell
                           : SweepMode::kFlattened;
  options.progress_seconds = EnvInt64("DPAUDIT_PROGRESS", 0);
  options.log_level = EnvString("DPAUDIT_LOG_LEVEL", "");
  const int64_t retries = EnvInt64("DPAUDIT_TRIAL_RETRIES", 2);
  options.trial_retries = retries > 0 ? static_cast<size_t>(retries) : 0;
  const int64_t backoff = EnvInt64("DPAUDIT_RETRY_BACKOFF_MS", 10);
  options.retry_backoff_ms = backoff > 0 ? static_cast<uint64_t>(backoff) : 0;
  options.checkpoint = EnvString("DPAUDIT_SWEEP_CHECKPOINT", "");
  options.fault_spec = EnvString("DPAUDIT_FAULT_INJECT", "");
  options.verbose = EnvInt64("DPAUDIT_VERBOSE", 0) != 0;
  return options;
}

StatusOr<RuntimeOptions> RuntimeOptions::FromEnvAndArgs(int* argc,
                                                        char** argv) {
  RuntimeOptions options = FromEnv();
  int out = 1;
  Status error = Status::Ok();
  auto fail = [&error](const std::string& message) {
    if (error.ok()) error = Status::InvalidArgument(message);
  };
  auto takes_value = [](const std::string& name) {
    for (const RuntimeKnob& knob : RuntimeKnobTable()) {
      if (name == knob.flag) {
        // --verbose is a bare switch; everything else in the table wants a
        // value.
        return name != std::string("--verbose");
      }
    }
    return false;
  };
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else if (takes_value(name) && i + 1 < *argc) {
      // "--threads 4" space form, accepted like the tools' ArgParser.
      value = argv[++i];
      has_value = true;
    }
    bool consumed = true;
    if (name == "--help" || name == "-h") {
      options.help = true;
    } else if (name == "--verbose") {
      options.verbose = !has_value || value != "0";
    } else if (name == "--threads") {
      int64_t threads = 0;
      if (!has_value || !ParseInt64(value, &threads) || threads < 1) {
        fail("--threads needs a positive integer, e.g. --threads=4 (got \"" +
             arg + "\")");
      } else {
        options.threads = static_cast<size_t>(threads);
      }
    } else if (name == "--lanes") {
      int64_t lanes = 0;
      if (!has_value || !ParseInt64(value, &lanes) || lanes < 0) {
        fail("--lanes needs a non-negative integer (0 = scalar path), e.g. "
             "--lanes=8 (got \"" + arg + "\")");
      } else {
        options.batch_lanes = lanes;
      }
    } else if (name == "--trace-cache") {
      if (!has_value || value.empty()) {
        fail("--trace-cache needs a directory, e.g. "
             "--trace-cache=/tmp/dptraces");
      } else {
        options.trace_cache = value;
      }
    } else if (name == "--telemetry") {
      if (!has_value || value.empty()) {
        fail("--telemetry needs a directory, e.g. --telemetry=/tmp/dpaudit");
      } else {
        options.telemetry_enabled = true;
        options.telemetry_dir = value;
      }
    } else if (name == "--sweep-mode") {
      if (value == "flattened") {
        options.sweep_mode = SweepMode::kFlattened;
      } else if (value == "percell") {
        options.sweep_mode = SweepMode::kPerCell;
      } else {
        fail("--sweep-mode must be flattened or percell (got \"" + value +
             "\")");
      }
    } else if (name == "--progress") {
      int64_t seconds = 0;
      if (!has_value || !ParseInt64(value, &seconds) || seconds < 0) {
        fail("--progress needs a non-negative interval in seconds, e.g. "
             "--progress=30 (got \"" + arg + "\")");
      } else {
        options.progress_seconds = seconds;
      }
    } else if (name == "--log-level") {
      LogLevel level;
      if (!has_value || !ParseLogLevel(value, &level)) {
        fail("--log-level must be INFO, WARNING, or ERROR (got \"" + value +
             "\")");
      } else {
        options.log_level = value;
      }
    } else if (name == "--retries") {
      int64_t retries = 0;
      if (!has_value || !ParseInt64(value, &retries) || retries < 0) {
        fail("--retries needs a non-negative integer, e.g. --retries=2 "
             "(got \"" + arg + "\")");
      } else {
        options.trial_retries = static_cast<size_t>(retries);
      }
    } else if (name == "--retry-backoff-ms") {
      int64_t backoff = 0;
      if (!has_value || !ParseInt64(value, &backoff) || backoff < 0) {
        fail("--retry-backoff-ms needs a non-negative integer (got \"" + arg +
             "\")");
      } else {
        options.retry_backoff_ms = static_cast<uint64_t>(backoff);
      }
    } else if (name == "--checkpoint") {
      if (!has_value || value.empty()) {
        fail("--checkpoint needs a journal path, e.g. "
             "--checkpoint=/tmp/fig08.sweep.jsonl");
      } else {
        options.checkpoint = value;
      }
    } else if (name == "--fault-inject") {
      options.fault_spec = value;
    } else {
      consumed = false;
    }
    if (!consumed) argv[out++] = argv[i];
  }
  *argc = out;
  if (!error.ok()) return error;
  Status valid = options.Validate();
  if (!valid.ok()) return valid;
  return options;
}

Status RuntimeOptions::Validate() const {
  if (threads > 256) {
    return Status::InvalidArgument(
        "threads = " + std::to_string(threads) +
        " exceeds the 256-worker cap; pick a value in [1, 256] or 0 for "
        "the hardware default");
  }
  if (batch_lanes > static_cast<int64_t>(kMaxBatchLanes)) {
    return Status::InvalidArgument(
        "batch lanes = " + std::to_string(batch_lanes) +
        " exceeds kMaxBatchLanes = " + std::to_string(kMaxBatchLanes) +
        " (the fixed per-lane accumulator width); pick a value in [0, " +
        std::to_string(kMaxBatchLanes) + "]");
  }
  if (batch_lanes < -1) {
    return Status::InvalidArgument(
        "batch lanes must be >= 0 (0 = scalar path); got " +
        std::to_string(batch_lanes));
  }
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      return Status::InvalidArgument(
          "log level \"" + log_level +
          "\" is not recognized; use INFO, WARNING, or ERROR");
    }
  }
  if (trial_retries > 100) {
    return Status::InvalidArgument(
        "trial retries = " + std::to_string(trial_retries) +
        " is unreasonably large; the budget bounds wasted work per failing "
        "trial — pick a value in [0, 100]");
  }
  if (progress_seconds < 0) {
    return Status::InvalidArgument("progress interval must be >= 0 seconds");
  }
  if (!fault_spec.empty()) {
    Status parsed = fault::ValidateFaultSpec(fault_spec);
    if (!parsed.ok()) return parsed;
  }
  return Status::Ok();
}

void InitRuntimeOptions(const RuntimeOptions& options) {
  PublishedOptions& published = Published();
  std::lock_guard<std::mutex> lock(published.mu);
  published.set = true;
  published.options = options;
}

RuntimeOptions CurrentRuntimeOptions() {
  PublishedOptions& published = Published();
  {
    std::lock_guard<std::mutex> lock(published.mu);
    if (published.set) return published.options;
  }
  return RuntimeOptions::FromEnv();
}

Status ApplyRuntimeOptions(const RuntimeOptions& options) {
  Status valid = options.Validate();
  if (!valid.ok()) return valid;
  SetDefaultThreadCountOverride(options.threads);
  if (options.batch_lanes >= 0) {
    SetBatchLanesOverride(options.batch_lanes);
  }
  if (!options.log_level.empty()) {
    LogLevel level = LogLevel::kInfo;
    ParseLogLevel(options.log_level, &level);  // Validate() vetted it
    SetMinLogLevel(level);
  }
  if (!options.fault_spec.empty()) {
    fault::SetFaultSpec(options.fault_spec);
  }
  return Status::Ok();
}

void PrintRuntimeOptionsHelp(const std::string& program, std::ostream& os) {
  os << "usage: " << program << " [runtime flags]\n\n"
     << "Runtime flags (precedence: CLI flag > environment > default):\n";
  for (const RuntimeKnob& knob : RuntimeKnobTable()) {
    os << "  " << knob.flag << "=<value>";
    for (size_t pad = std::strlen(knob.flag) + 9; pad < 28; ++pad) {
      os << ' ';
    }
    os << knob.help << "\n";
    os << "      env " << knob.env << ", default " << knob.default_value
       << "\n";
  }
  os << "\nEvery flag also accepts its environment variable; the flag wins "
        "when both are set.\n";
}

}  // namespace dpaudit
