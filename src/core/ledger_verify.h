// Ledger-backed epsilon' verification: recomputes everything a privacy-audit
// ledger claims from its rows alone and checks it against what the in-process
// run reported. This is the independent half of the audit story — the ledger
// is evidence, and `dpaudit_cli ledger check` is the examiner that needs no
// access to the original run, only to the same math:
//
//   - the content digest of each experiment block is recomputed from the
//     trial rows (exact match required);
//   - the belief trajectory is replayed per trial from the recorded per-step
//     log densities via Lemma 1 (logit prior + cumulative LLR, sigmoid), and
//     the recorded llr, belief_d, final_belief_d, and max_belief_d must all
//     match — bit-exactly in practice, since %.17g round-trips doubles and
//     the replay performs the same operations in the same order;
//   - each step's rdp_eps_alpha2 must equal LedgerRdpAlpha2(sigma, LS);
//   - for every audit row, the three epsilon' estimators (sensitivity -> RDP
//     accountant, max posterior belief via Eq. 10, empirical advantage via
//     Theorem 2's inverse) are recomputed from the digest-matched experiment
//     block's rows and must agree with the recorded values to `tolerance`.

#ifndef DPAUDIT_CORE_LEDGER_VERIFY_H_
#define DPAUDIT_CORE_LEDGER_VERIFY_H_

#include <iosfwd>
#include <string>

#include "obs/audit_ledger.h"
#include "util/status.h"

namespace dpaudit {

/// Verifies a parsed ledger as described above, writing one summary line per
/// experiment/audit row to `report`. Returns OK when every check passes;
/// InvalidArgument naming the first failing row and field otherwise (the
/// report still covers all rows, so a failure's context is visible).
Status CheckLedger(const obs::LedgerFile& file, double tolerance,
                   std::ostream& report);

/// LoadLedgerFile + CheckLedger (the `dpaudit_cli ledger check` path).
Status CheckLedgerFile(const std::string& path, double tolerance,
                       std::ostream& report);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_LEDGER_VERIFY_H_
