// Sweep checkpoint journal: crash-safe resume for audit sweeps.
//
// A paper-scale sweep (Figures 8-10, Table 2) is hours of (cell x
// repetition) trials; losing the whole grid to one crash at 95% is not
// acceptable for an audit service. The journal is an append-only JSONL file
// (`<binary>.sweep.jsonl`, by default under the telemetry directory) that
// records every freshly trained trial the moment it completes: the cell's
// content fingerprint (the same 128-bit key as the trace cache), the
// repetition index, the seed, and the FULL trial trace — per-step
// observables included — terminated by a line digest. A re-launched sweep
// loads the journal, skips every recorded trial, and recomputes only the
// tail; because the stored doubles round-trip bit-exactly (%.17g), the
// resumed run's stdout AND ledger are byte-identical to an uninterrupted
// run.
//
// Crash model: rows are written through io/append_log (one write + flush
// per line), so a SIGKILL can tear at most the final line. The loader
// detects the torn tail, drops it, and Open() truncates it away before
// appending — the torn trial simply re-runs. Rows are content-addressed by
// (fingerprint, rep), so a stale journal against changed inputs skips
// nothing and is harmless.
//
// Concurrency: trials complete on pool workers in any order; AppendTrial is
// thread-safe and rows may appear in any order. Resume correctness never
// depends on row order.

#ifndef DPAUDIT_CORE_SWEEP_JOURNAL_H_
#define DPAUDIT_CORE_SWEEP_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/trace.h"
#include "io/append_log.h"
#include "util/status.h"

namespace dpaudit {

inline constexpr uint32_t kSweepJournalSchemaVersion = 1;

/// First row of every journal: enough provenance for `dpaudit_cli sweep
/// resume` to re-launch the recorded command.
struct SweepJournalManifest {
  uint32_t schema_version = kSweepJournalSchemaVersion;
  std::string binary;              // argv[0] as originally invoked
  std::vector<std::string> args;   // argv[1..], original (pre-stripping)
  std::string cwd;                 // working directory at journal creation
};

/// A parsed journal: the manifest plus every valid trial row, keyed by
/// (fingerprint hex, repetition). Later duplicates win (a re-run may journal
/// the same trial again; the payloads are bit-identical by determinism).
struct LoadedSweepJournal {
  SweepJournalManifest manifest;
  bool has_manifest = false;
  std::map<std::string, std::map<uint64_t, TrialTrace>> trials;
  size_t trial_rows = 0;     // valid trial rows loaded
  size_t dropped_rows = 0;   // corrupt/undigestible rows skipped
  bool torn_tail = false;    // file ended mid-line (crash signature)
  long long valid_bytes = 0; // offset to truncate to before appending
};

/// Parses the journal at `path` without opening it for writing (the
/// `sweep status` read path). NotFound when the file does not exist.
StatusOr<LoadedSweepJournal> LoadSweepJournal(const std::string& path);

/// Records the process command line for the journal manifest. Binaries call
/// this from main (bench/bench_common.h does it) BEFORE runtime flags are
/// stripped, so `sweep resume` re-executes the exact original invocation.
void RecordCommandLineForJournal(int argc, char* const* argv);

class SweepJournal {
 public:
  /// Opens the journal at `path` for this sweep: loads existing rows
  /// (tolerating and truncating a torn tail), then opens for append. A new
  /// or empty file gets a manifest row first. One journal instance serves
  /// one RunSweep call.
  static StatusOr<std::unique_ptr<SweepJournal>> Open(
      const std::string& path);

  /// The recorded trial for (key, rep), or nullptr. The pointer is stable
  /// for the journal's lifetime.
  const TrialTrace* Find(const TraceFingerprint& key, uint64_t rep) const;

  /// Appends one freshly trained trial. Thread-safe; called from pool
  /// workers as trials complete. A write failure logs once and disables
  /// further appends (crash-safety degrades; the sweep itself continues).
  void AppendTrial(const TraceFingerprint& key, uint64_t rep, uint64_t seed,
                   const TrialTrace& trial);

  size_t loaded_trials() const { return loaded_.trial_rows; }
  const LoadedSweepJournal& loaded() const { return loaded_; }
  const std::string& path() const { return path_; }

 private:
  SweepJournal() = default;

  std::string path_;
  LoadedSweepJournal loaded_;
  AppendLog log_;
  std::atomic<bool> append_broken_{false};
};

// Serialization internals, exposed for tests and `sweep status`.
std::string EncodeJournalManifestRow(const SweepJournalManifest& manifest);
std::string EncodeJournalTrialRow(const TraceFingerprint& key, uint64_t rep,
                                  uint64_t seed, const TrialTrace& trial);
/// Strict row decode (digest verified). False on any mismatch.
bool DecodeJournalTrialRow(const std::string& line, std::string* fp_hex,
                           uint64_t* rep, uint64_t* seed, TrialTrace* trial);

}  // namespace dpaudit

#endif  // DPAUDIT_CORE_SWEEP_JOURNAL_H_
