#include "obs/span.h"

#include <algorithm>
#include <chrono>

namespace dpaudit {
namespace obs {
namespace {

thread_local SpanNode* tls_current_span = nullptr;

// ---------------------------------------------------------------------------
// Raw span event stream (Chrome/Perfetto trace export). Each thread appends
// to its own buffer; a global registry keeps the buffers alive (shared_ptr,
// so a pool thread exiting after a test does not invalidate the snapshot) and
// a process-wide cap bounds memory on long sweeps.

struct SpanEventBuffer {
  std::mutex mu;
  uint32_t tid = 0;
  std::vector<SpanEvent> events;
};

struct SpanEventRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<SpanEventBuffer>> buffers;
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> dropped{0};
};

constexpr uint64_t kMaxSpanEvents = 1u << 20;

SpanEventRegistry& EventRegistry() {
  static SpanEventRegistry* registry = new SpanEventRegistry();
  return *registry;
}

SpanEventBuffer* LocalEventBuffer() {
  thread_local std::shared_ptr<SpanEventBuffer> buffer = [] {
    auto made = std::make_shared<SpanEventBuffer>();
    SpanEventRegistry& registry = EventRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    made->tid = static_cast<uint32_t>(registry.buffers.size());
    registry.buffers.push_back(made);
    return made;
  }();
  return buffer.get();
}

void RecordSpanEvent(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  SpanEventRegistry& registry = EventRegistry();
  if (registry.total.fetch_add(1, std::memory_order_relaxed) >=
      kMaxSpanEvents) {
    registry.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanEventBuffer* buffer = LocalEventBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back({name, start_ns, dur_ns, buffer->tid});
}

}  // namespace

std::vector<SpanEvent> CollectSpanEvents(uint64_t* dropped) {
  SpanEventRegistry& registry = EventRegistry();
  std::vector<std::shared_ptr<SpanEventBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  std::vector<SpanEvent> out;
  for (const std::shared_ptr<SpanEventBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  if (dropped != nullptr) {
    *dropped = registry.dropped.load(std::memory_order_relaxed);
  }
  return out;
}

void ResetSpanEventsForTest() {
  SpanEventRegistry& registry = EventRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::shared_ptr<SpanEventBuffer>& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  registry.total.store(0, std::memory_order_relaxed);
  registry.dropped.store(0, std::memory_order_relaxed);
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SpanContext CurrentSpanContext() { return tls_current_span; }

SpanContext ExchangeSpanContext(SpanContext context) {
  SpanNode* prev = tls_current_span;
  tls_current_span = context;
  return prev;
}

SpanNode* SpanNode::GetOrCreateChild(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<SpanNode>& child : children_) {
    if (child->name_ == name) return child.get();
  }
  children_.push_back(std::make_unique<SpanNode>(name, this));
  return children_.back().get();
}

std::vector<SpanNode*> SpanNode::Children() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanNode*> out;
  out.reserve(children_.size());
  for (const std::unique_ptr<SpanNode>& child : children_) {
    out.push_back(child.get());
  }
  return out;
}

SpanRegistry& SpanRegistry::Global() {
  static SpanRegistry* registry = new SpanRegistry();
  return *registry;
}

namespace {

void CollectInto(const SpanNode* node, const std::string& prefix,
                 size_t depth, std::vector<SpanRegistry::Stat>* out) {
  std::vector<std::pair<SpanRegistry::Stat, SpanNode*>> stats;
  for (SpanNode* child : node->Children()) {
    SpanRegistry::Stat stat;
    stat.path = prefix.empty() ? child->name() : prefix + "/" + child->name();
    stat.depth = depth;
    stat.count = child->count();
    stat.total_ns = child->total_ns();
    uint64_t children_total = 0;
    for (SpanNode* grandchild : child->Children()) {
      children_total += grandchild->total_ns();
    }
    stat.self_ns =
        stat.total_ns > children_total ? stat.total_ns - children_total : 0;
    stats.emplace_back(std::move(stat), child);
  }
  std::stable_sort(stats.begin(), stats.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.self_ns > b.first.self_ns;
                   });
  // Emit each child followed by its subtree so the profile reads as a tree.
  for (auto& [stat, child] : stats) {
    std::string path = stat.path;
    out->push_back(std::move(stat));
    CollectInto(child, path, depth + 1, out);
  }
}

}  // namespace

std::vector<SpanRegistry::Stat> SpanRegistry::Collect() const {
  std::vector<Stat> out;
  CollectInto(&root_, "", 0, &out);
  return out;
}

uint64_t SpanRegistry::RootTotalNs() const {
  uint64_t total = 0;
  for (SpanNode* child : root_.Children()) total += child->total_ns();
  return total;
}

void SpanRegistry::ResetForTest() {
  {
    std::lock_guard<std::mutex> lock(root_.mu_);
    root_.children_.clear();
    root_.total_ns_.store(0, std::memory_order_relaxed);
    root_.count_.store(0, std::memory_order_relaxed);
    tls_current_span = nullptr;
  }
  ResetSpanEventsForTest();
}

void ScopedSpan::Enter(const char* name) {
  SpanNode* parent =
      tls_current_span != nullptr ? tls_current_span
                                  : &SpanRegistry::Global().root();
  node_ = parent->GetOrCreateChild(name);
  prev_ = tls_current_span;
  name_ = name;
  tls_current_span = node_;
  start_ns_ = MonotonicNowNs();
}

void ScopedSpan::Exit() {
  const uint64_t elapsed_ns = MonotonicNowNs() - start_ns_;
  node_->RecordVisit(elapsed_ns);
  RecordSpanEvent(name_, start_ns_, elapsed_ns);
  tls_current_span = prev_;
}

}  // namespace obs
}  // namespace dpaudit
