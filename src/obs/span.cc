#include "obs/span.h"

#include <algorithm>
#include <chrono>

namespace dpaudit {
namespace obs {
namespace {

thread_local SpanNode* tls_current_span = nullptr;

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SpanContext CurrentSpanContext() { return tls_current_span; }

SpanContext ExchangeSpanContext(SpanContext context) {
  SpanNode* prev = tls_current_span;
  tls_current_span = context;
  return prev;
}

SpanNode* SpanNode::GetOrCreateChild(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<SpanNode>& child : children_) {
    if (child->name_ == name) return child.get();
  }
  children_.push_back(std::make_unique<SpanNode>(name, this));
  return children_.back().get();
}

std::vector<SpanNode*> SpanNode::Children() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanNode*> out;
  out.reserve(children_.size());
  for (const std::unique_ptr<SpanNode>& child : children_) {
    out.push_back(child.get());
  }
  return out;
}

SpanRegistry& SpanRegistry::Global() {
  static SpanRegistry* registry = new SpanRegistry();
  return *registry;
}

namespace {

void CollectInto(const SpanNode* node, const std::string& prefix,
                 size_t depth, std::vector<SpanRegistry::Stat>* out) {
  std::vector<std::pair<SpanRegistry::Stat, SpanNode*>> stats;
  for (SpanNode* child : node->Children()) {
    SpanRegistry::Stat stat;
    stat.path = prefix.empty() ? child->name() : prefix + "/" + child->name();
    stat.depth = depth;
    stat.count = child->count();
    stat.total_ns = child->total_ns();
    uint64_t children_total = 0;
    for (SpanNode* grandchild : child->Children()) {
      children_total += grandchild->total_ns();
    }
    stat.self_ns =
        stat.total_ns > children_total ? stat.total_ns - children_total : 0;
    stats.emplace_back(std::move(stat), child);
  }
  std::stable_sort(stats.begin(), stats.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.self_ns > b.first.self_ns;
                   });
  // Emit each child followed by its subtree so the profile reads as a tree.
  for (auto& [stat, child] : stats) {
    std::string path = stat.path;
    out->push_back(std::move(stat));
    CollectInto(child, path, depth + 1, out);
  }
}

}  // namespace

std::vector<SpanRegistry::Stat> SpanRegistry::Collect() const {
  std::vector<Stat> out;
  CollectInto(&root_, "", 0, &out);
  return out;
}

uint64_t SpanRegistry::RootTotalNs() const {
  uint64_t total = 0;
  for (SpanNode* child : root_.Children()) total += child->total_ns();
  return total;
}

void SpanRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(root_.mu_);
  root_.children_.clear();
  root_.total_ns_.store(0, std::memory_order_relaxed);
  root_.count_.store(0, std::memory_order_relaxed);
  tls_current_span = nullptr;
}

void ScopedSpan::Enter(const char* name) {
  SpanNode* parent =
      tls_current_span != nullptr ? tls_current_span
                                  : &SpanRegistry::Global().root();
  node_ = parent->GetOrCreateChild(name);
  prev_ = tls_current_span;
  tls_current_span = node_;
  start_ns_ = MonotonicNowNs();
}

void ScopedSpan::Exit() {
  node_->RecordVisit(MonotonicNowNs() - start_ns_);
  tls_current_span = prev_;
}

}  // namespace obs
}  // namespace dpaudit
