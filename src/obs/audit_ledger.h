// Privacy-audit ledger: an append-only, per-trial record of what the DP
// mechanism actually did, streamed to `<binary>.ledger.jsonl` next to the
// other telemetry exports.
//
// The paper's auditing claim is that epsilon can be re-derived from the
// observables of a run — per-step noise sigma, clip norm C, the observed
// local sensitivity, and the adversary's posterior belief trajectory. The
// ledger makes those observables a durable artifact: for every repeated
// experiment it records a run manifest (schema version, build info), one
// `experiment` row (config fingerprint, seed, mechanism parameters, dataset
// digests, a content digest of the trial rows), then per repetition a
// `trial` row and per mechanism invocation a `step` row, and finally an
// `audit` row with the three epsilon' estimates the in-process auditor
// reported. `dpaudit_cli ledger check` recomputes all three estimators from
// the rows alone and verifies them against the audit rows.
//
// Invariants (mirroring spans/metrics):
//   - disabled (the default): every emission site costs exactly one relaxed
//     atomic load; nothing is allocated or written;
//   - experiment stdout is byte-identical with the ledger on or off — the
//     ledger writes only to its own file;
//   - deterministic bytes: rows derive from trial observables only (never
//     from thread counts, dispatch order, or cache state), doubles print via
//     %.17g, and emission happens at sequential points of the run — so a
//     trace-cache replayed run writes a ledger byte-identical to the cold
//     run that recorded it. Replay parity is itself a check.
//
// Layering: obs sits below core, so the row structs here are plain data;
// core/ledger_bridge.h converts core types into them, and the epsilon'
// recomputation lives in core/ledger_verify.h.

#ifndef DPAUDIT_OBS_AUDIT_LEDGER_H_
#define DPAUDIT_OBS_AUDIT_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace dpaudit {
namespace obs {

/// Bump when row fields or their meaning change; `check` refuses unknown
/// versions rather than mis-verifying.
inline constexpr uint32_t kLedgerSchemaVersion = 1;

namespace internal {
extern std::atomic<bool> g_ledger_enabled;
}  // namespace internal

/// The single branch every emission site is gated on.
inline bool AuditLedgerEnabled() {
  return internal::g_ledger_enabled.load(std::memory_order_relaxed);
}

/// One DP mechanism invocation (one DPSGD release) as the trainer and the
/// adversary observed it.
struct LedgerStep {
  uint64_t step = 0;               // 0-based release index within the trial
  double clip_norm = 0.0;          // C_i in effect at this step
  double local_sensitivity = 0.0;  // ||S_D - S_D'|| observed at this step
  double sensitivity_used = 0.0;   // Delta f_i that scaled sigma
  double sigma = 0.0;              // noise std (sum space)
  double log_density_d = 0.0;      // log Pr[M(S_D) = r_i]
  double log_density_dprime = 0.0; // log Pr[M(S_D') = r_i]
  double llr = 0.0;                // cumulative LLR through this step
  double belief_d = 0.5;           // beta_i(D) after this release
  double rdp_eps_alpha2 = 0.0;     // this step's Gaussian RDP at alpha = 2
};

/// This step's Renyi-DP contribution at the reference order alpha = 2:
/// eps_2 = alpha / (2 z^2) with z = sigma / LS — zero when the hypotheses
/// were indistinguishable (LS = 0) or no noise context exists. Defined once
/// here so the emitter and `check` round identically.
inline double LedgerRdpAlpha2(double sigma, double local_sensitivity) {
  if (!(sigma > 0.0) || !(local_sensitivity > 0.0)) return 0.0;
  const double z = sigma / local_sensitivity;
  return 1.0 / (z * z);
}

/// One repetition of Experiment 2.
struct LedgerTrial {
  uint64_t rep = 0;
  bool trained_on_d = true;       // challenger bit b
  bool adversary_says_d = false;  // adversary output b'
  double final_belief_d = 0.5;
  double max_belief_d = 0.5;
  double test_accuracy = -1.0;  // -1 when no test set was evaluated
  std::vector<LedgerStep> steps;
};

/// One repeated experiment (a sweep cell): the frame the trial/step rows
/// hang off. `digest` is the order-sensitive content digest of the trial
/// observables (LedgerDigest below); audit rows link back through it.
struct LedgerExperiment {
  uint64_t seq = 0;         // emission order within the run (writer-assigned)
  std::string fingerprint;  // trace-cache content fingerprint, 32 hex chars
  std::string digest;       // LedgerDigest of the trials, 16 hex chars
  uint64_t seed = 0;
  uint64_t repetitions = 0;
  uint64_t steps_per_trial = 0;
  double prior_belief_d = 0.5;  // beta_0, the adversary's prior
  // Mechanism parameters the estimators and a human reader need; everything
  // else about the scenario is pinned by `fingerprint`.
  uint64_t epochs = 0;
  double learning_rate = 0.0;
  double clip_norm = 0.0;
  double noise_multiplier = 0.0;
  std::string sensitivity_mode;  // "LS" / "GS"
  std::string neighbor_mode;     // "bounded" / "unbounded"
  std::string dataset_digest_d;       // 16 hex chars
  std::string dataset_digest_dprime;  // 16 hex chars
  std::string dataset_digest_test;    // "" when no test set was evaluated
  std::vector<LedgerTrial> trials;
};

/// The in-process auditor's verdict over one experiment's summary.
struct LedgerAudit {
  uint64_t seq = 0;
  std::string digest;  // LedgerDigest of the audited experiment's trials
  double delta = 0.0;
  double epsilon_from_sensitivities = 0.0;
  double epsilon_from_belief = 0.0;
  double epsilon_from_advantage = 0.0;  // +Infinity when every trial won
  double advantage = 0.0;               // empirical Adv^DI behind estimator 3
  double max_belief = 0.0;              // beta-hat behind estimator 2
};

/// A sweep cell whose retry budget ran out: the experiment row (if any) holds
/// only the repetitions that succeeded, and this row records the shortfall so
/// a consumer can tell a deliberately small cell from a degraded one.
struct LedgerError {
  uint64_t seq = 0;
  std::string fingerprint;  // trace-cache fingerprint of the degraded cell
  uint64_t repetitions_requested = 0;
  uint64_t repetitions_completed = 0;
  uint64_t trials_failed = 0;  // repetitions that exhausted the retry budget
  std::string message;         // first failure's status message
};

/// First row of every ledger file.
struct LedgerManifest {
  uint32_t schema_version = kLedgerSchemaVersion;
  std::string binary;
  std::string simd;
  uint64_t threads = 0;
  uint64_t batch_lanes = 0;
  std::string git_commit;
};

/// A fully parsed `<binary>.ledger.jsonl`.
struct LedgerFile {
  LedgerManifest manifest;
  std::vector<LedgerExperiment> experiments;
  std::vector<LedgerAudit> audits;
  std::vector<LedgerError> errors;
};

/// Order-sensitive FNV-1a content digest of trial observables. Both the
/// emitter (from trial traces) and the auditor (from a DiExperimentSummary)
/// feed trials through AddTrial in repetition order; `check` recomputes the
/// digest from parsed rows the same way, so the three agree byte-for-byte
/// exactly when the underlying observables do.
class LedgerDigest {
 public:
  void AddTrial(bool trained_on_d, bool adversary_says_d,
                double final_belief_d, double max_belief_d,
                double test_accuracy, const std::vector<double>& sigmas,
                const std::vector<double>& local_sensitivities);

  /// 16 lowercase hex characters.
  std::string Hex() const;

 private:
  void Byte(uint8_t b) { hash_ = (hash_ ^ b) * 0x100000001b3ULL; }
  void AddU64(uint64_t v);
  void AddF64(double v);  // IEEE-754 bit pattern, so -0.0 != 0.0

  uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
};

// ---------------------------------------------------------------------------
// Writer. Lifecycle is driven by obs/telemetry: InitTelemetry configures and
// enables the ledger, FlushTelemetry closes it. The output file is opened
// lazily on the first append (an enabled run that never emits an experiment
// writes no ledger file) with the manifest as its first row.

/// Configures the ledger sink and flips the enabled flag. `directory` is
/// created on demand at first append; the file is
/// `<directory>/<manifest.binary>.ledger.jsonl`.
void InitAuditLedger(const LedgerManifest& manifest,
                     const std::string& directory);

/// Flushes and closes the sink (idempotent; no-op when disabled). Appends
/// after the flush are dropped.
void FlushAuditLedger();

/// Appends one experiment block (experiment row, then trial/step rows in
/// order). Assigns and returns the row's `seq`. Thread-safe, but callers
/// emit from sequential points of the run so row order is deterministic.
void AppendLedgerExperiment(LedgerExperiment* experiment);

/// Appends one audit row; assigns `seq` from the same counter.
void AppendLedgerAudit(LedgerAudit* audit);

/// Appends one error row (degraded sweep cell); assigns `seq` likewise.
void AppendLedgerError(LedgerError* error);

/// Test hooks: route the ledger to an explicit path (Open enables, Close
/// flushes, disables, and resets the seq counter so consecutive tests see
/// identical bytes).
void OpenAuditLedgerForTest(const std::string& path);
void CloseAuditLedgerForTest();

// ---------------------------------------------------------------------------
// Serialization (exposed for tests; the writer uses these internally).

void WriteLedgerManifest(std::ostream& os, const LedgerManifest& manifest);
void WriteLedgerExperiment(std::ostream& os,
                           const LedgerExperiment& experiment);
void WriteLedgerAudit(std::ostream& os, const LedgerAudit& audit);
void WriteLedgerError(std::ostream& os, const LedgerError& error);

/// Strict parser: the first row must be a manifest with a supported schema
/// version; trial/step rows must arrive in order under their experiment row
/// and their counts must match the declared repetitions/steps_per_trial.
/// Truncated or malformed input fails with InvalidArgument naming the line.
StatusOr<LedgerFile> ParseLedger(std::istream& in);
StatusOr<LedgerFile> LoadLedgerFile(const std::string& path);

/// Field-by-field comparison for cross-run regression detection. Reports
/// every difference to `report` and returns the number of differing
/// experiment/trial/step/audit fields; manifest differences (binary, build
/// info) are reported as notes but not counted — two machines legitimately
/// differ there while the audit content must not.
size_t DiffLedgers(const LedgerFile& a, const LedgerFile& b,
                   std::ostream& report);

}  // namespace obs
}  // namespace dpaudit

#endif  // DPAUDIT_OBS_AUDIT_LEDGER_H_
