// Telemetry lifecycle: the process-wide enabled flag, run configuration, and
// the end-of-run exporters.
//
// Telemetry is opt-in per process (the --telemetry=<dir> flag or the
// DPAUDIT_TELEMETRY environment variable). When disabled — the default —
// every instrumentation site (DPAUDIT_SPAN, DPAUDIT_METRIC_COUNT, the
// thread-pool task hooks) costs exactly one relaxed atomic load; nothing is
// allocated, timed, or written. When enabled, InitTelemetry installs the
// thread-pool hooks and a log mirror, and FlushTelemetry (registered via
// atexit) writes three exports under the telemetry directory:
//
//   <binary>.profile.txt   hierarchical span profile (also printed to stderr)
//   <binary>.events.jsonl  structured run/span/metric/log events, one per line
//   <binary>.metrics.prom  Prometheus text exposition of the registry
//   <binary>.trace.json    Chrome Trace Event stream (chrome://tracing)
//
// InitTelemetry also arms the privacy-audit ledger (obs/audit_ledger.h),
// which streams `<binary>.ledger.jsonl` into the same directory as the
// experiment emits trials; FlushTelemetry closes it.
//
// Invariant: telemetry never touches the RNG stream, experiment state, or
// any floating-point accumulation order — experiment outputs are
// byte-identical with telemetry on and off (tests/telemetry_identity_test).

#ifndef DPAUDIT_OBS_TELEMETRY_H_
#define DPAUDIT_OBS_TELEMETRY_H_

#include <atomic>
#include <iosfwd>
#include <string>

#include "util/status.h"

namespace dpaudit {
namespace obs {

namespace internal {
extern std::atomic<bool> g_telemetry_enabled;
}  // namespace internal

/// The single branch every instrumentation site is gated on.
inline bool TelemetryEnabled() {
  return internal::g_telemetry_enabled.load(std::memory_order_relaxed);
}

struct TelemetryOptions {
  bool enabled = false;
  /// Directory the end-of-run exports are written to (created on demand).
  std::string directory;
};

/// DPAUDIT_TELEMETRY=<dir> enables telemetry with that export directory.
TelemetryOptions TelemetryOptionsFromEnv();

/// Starts telemetry for this process. `argv0_or_name` is basenamed into the
/// export file prefix and the build_info labels. Always registers the
/// dpaudit_build_info gauge (simd dispatch path, default thread count); when
/// `options.enabled` it additionally flips the enabled flag, installs the
/// thread-pool telemetry hooks and the log mirror, and registers
/// FlushTelemetry via atexit. Safe to call once per process.
void InitTelemetry(const std::string& argv0_or_name,
                   const TelemetryOptions& options);

/// Writes the exports (idempotent; a no-op when telemetry is disabled).
void FlushTelemetry();

/// The SIMD path the runtime dispatch selects on this machine: "avx2" or
/// "scalar".
const char* ActiveSimdDispatch();

/// The git commit the binary was built from (DPAUDIT_GIT_COMMIT, injected by
/// CMake), or "unknown" for out-of-tree builds. Feeds the build_info gauge,
/// the audit-ledger run manifest, and bench provenance.
const char* BuildGitCommit();

/// Registers (or refreshes) the dpaudit_build_info gauge for `binary_name`
/// without starting telemetry. Used by binaries that want the gauge in a
/// scrape but manage the lifecycle themselves (dpaudit_cli metrics).
void RegisterBuildInfo(const std::string& binary_name);

/// Exporters over the current registry state. `wall_ns` of 0 means "unknown"
/// (span coverage is then omitted from the profile header).
void WriteProfileReport(std::ostream& os, uint64_t wall_ns);
void WriteJsonl(std::ostream& os);
void WritePrometheus(std::ostream& os);

/// Chrome Trace Event export of the raw span event stream (`ph:"X"` complete
/// events, microsecond timestamps relative to InitTelemetry), loadable in
/// chrome://tracing and Perfetto. Written as `<binary>.trace.json`.
void WriteTraceJson(std::ostream& os);

/// Re-renders a previously written events.jsonl as a Prometheus exposition
/// (the `dpaudit_cli metrics --from-jsonl` path). Malformed lines fail with
/// InvalidArgument.
Status RenderPrometheusFromJsonl(std::istream& in, std::ostream& out);

/// Test/bench hook: flips the enabled flag and installs/removes the
/// thread-pool hooks without touching files, atexit, or the log mirror.
void EnableTelemetryForTest(bool enabled);

}  // namespace obs
}  // namespace dpaudit

#endif  // DPAUDIT_OBS_TELEMETRY_H_
