// Scoped phase spans: RAII timers that aggregate into a process-wide
// hierarchical profile of the audit pipeline.
//
//   void RunStep() {
//     DPAUDIT_SPAN("dpsgd.step");   // times the enclosing scope
//     ...
//   }
//
// Every enabled span attaches to the calling thread's current span as a
// child (creating the tree node on first use) and accumulates wall time and
// a hit count into it with relaxed atomics, so the same phase executed by
// many threads aggregates into one node. Nesting is by dynamic scope: a span
// opened while another is active becomes its child, including reentrant
// spans (a phase under itself gets its own child node). Work scheduled onto
// a ThreadPool adopts the scheduling thread's span as parent through the
// telemetry hooks in util/thread_pool.h, so profiles stay hierarchical
// across the experiment's fan-out.
//
// When telemetry is disabled a span is one relaxed atomic load; no clock is
// read and no node is touched.

#ifndef DPAUDIT_OBS_SPAN_H_
#define DPAUDIT_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace dpaudit {
namespace obs {

/// One node of the aggregated profile tree. Nodes are created on first use
/// and never destroyed (except ResetForTest), so pointers are stable.
class SpanNode {
 public:
  SpanNode(std::string name, SpanNode* parent)
      : name_(std::move(name)), parent_(parent) {}

  const std::string& name() const { return name_; }
  SpanNode* parent() const { return parent_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }

  void RecordVisit(uint64_t elapsed_ns) {
    total_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Finds or creates the child named `name`. Children are few per node, so
  /// lookup is a linear scan under the node's mutex.
  SpanNode* GetOrCreateChild(const char* name);

  /// Stable snapshot of the child pointers.
  std::vector<SpanNode*> Children() const;

 private:
  friend class SpanRegistry;

  std::string name_;
  SpanNode* parent_;
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> count_{0};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanNode>> children_;
};

/// Opaque handle to a position in the span tree, used to carry the parent
/// span across threads (thread-pool task adoption).
using SpanContext = SpanNode*;

/// The calling thread's current span (nullptr at top level or when telemetry
/// is disabled).
SpanContext CurrentSpanContext();

/// Replaces the calling thread's current span, returning the previous one so
/// the caller can restore it.
SpanContext ExchangeSpanContext(SpanContext context);

/// One completed span instance, kept for the Chrome/Perfetto trace export
/// (telemetry.h WriteTraceJson). Unlike the aggregated SpanNode tree, this
/// is the raw event stream: one record per DPAUDIT_SPAN scope exit. `name`
/// is the static string literal the macro was given, so no copy is made.
struct SpanEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;  // MonotonicNowNs at scope entry
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // dense per-thread id, assigned on a thread's first span
};

/// Snapshot of all span events recorded so far, grouped by tid ascending and
/// in chronological order within a thread. `dropped`, when non-null, receives
/// the number of events discarded after the process-wide cap (the trace stays
/// bounded on long sweeps; the aggregated profile is never capped).
std::vector<SpanEvent> CollectSpanEvents(uint64_t* dropped = nullptr);

/// Clears recorded span events and the drop counter. Per-thread buffers
/// persist (pool threads hold pointers into them across tests); only their
/// contents are cleared.
void ResetSpanEventsForTest();

/// Owns the profile tree root.
class SpanRegistry {
 public:
  static SpanRegistry& Global();

  SpanNode& root() { return root_; }

  struct Stat {
    std::string path;  // "di_experiment/repetition/train_step"
    size_t depth = 0;
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t self_ns = 0;  // total minus children's totals
  };

  /// Preorder traversal of the tree (root excluded); siblings sorted by self
  /// time, descending.
  std::vector<Stat> Collect() const;

  /// Sum of the root's direct children's totals — the profile's coverage
  /// numerator against process wall clock.
  uint64_t RootTotalNs() const;

  /// Drops the whole tree. Only for tests — invalidates SpanNode pointers;
  /// never call with spans in flight.
  void ResetForTest();

 private:
  SpanRegistry() : root_("", nullptr) {}

  SpanNode root_;
};

/// The RAII timer behind DPAUDIT_SPAN. Disabled telemetry short-circuits the
/// constructor after one relaxed atomic load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TelemetryEnabled()) Enter(name);
  }
  ~ScopedSpan() {
    if (node_ != nullptr) Exit();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Enter(const char* name);
  void Exit();

  SpanNode* node_ = nullptr;
  SpanNode* prev_ = nullptr;
  const char* name_ = nullptr;  // static literal, for the event stream
  uint64_t start_ns_ = 0;
};

/// Monotonic clock read in nanoseconds (steady_clock).
uint64_t MonotonicNowNs();

}  // namespace obs
}  // namespace dpaudit

#define DPAUDIT_SPAN_CONCAT_INNER(a, b) a##b
#define DPAUDIT_SPAN_CONCAT(a, b) DPAUDIT_SPAN_CONCAT_INNER(a, b)

/// Times the enclosing scope under the given phase name.
#define DPAUDIT_SPAN(name)                                            \
  ::dpaudit::obs::ScopedSpan DPAUDIT_SPAN_CONCAT(dpaudit_span_,       \
                                                 __COUNTER__)(name)

#endif  // DPAUDIT_OBS_SPAN_H_
