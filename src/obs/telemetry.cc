#include "obs/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/audit_ledger.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace obs {

namespace internal {
std::atomic<bool> g_telemetry_enabled{false};
}  // namespace internal

namespace {

struct TelemetryState {
  std::mutex mu;
  std::string binary_name = "dpaudit";
  std::string directory;
  uint64_t start_ns = 0;
  bool flushed = false;

  struct LogRecord {
    LogLevel level;
    std::string file;
    int line;
    std::string message;
  };
  std::deque<LogRecord> log_buffer;  // capped at kMaxLogRecords
};

constexpr size_t kMaxLogRecords = 1024;

TelemetryState& State() {
  static TelemetryState* state = new TelemetryState();
  return *state;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return base.empty() ? std::string("dpaudit") : base;
}

// ---------------------------------------------------------------------------
// Thread-pool hooks: span-context propagation + queue/execute distributions.

const void* PoolCaptureContext() {
  return static_cast<const void*>(CurrentSpanContext());
}

const void* PoolEnterContext(const void* token) {
  return static_cast<const void*>(ExchangeSpanContext(
      static_cast<SpanContext>(const_cast<void*>(token))));
}

void PoolExitContext(const void* previous) {
  ExchangeSpanContext(
      static_cast<SpanContext>(const_cast<void*>(previous)));
}

void PoolRecordTaskNs(uint64_t queue_ns, uint64_t execute_ns) {
  static DistributionMetric& queue_us =
      MetricsRegistry::Global().GetDistribution("dpaudit_pool_queue_us", 0.0,
                                               1e5, 200);
  static DistributionMetric& execute_us =
      MetricsRegistry::Global().GetDistribution("dpaudit_pool_execute_us",
                                               0.0, 1e6, 200);
  queue_us.Record(static_cast<double>(queue_ns) * 1e-3);
  execute_us.Record(static_cast<double>(execute_ns) * 1e-3);
}

void PoolRecordQueueDepth(size_t depth) {
  static DistributionMetric& queue_depth =
      MetricsRegistry::Global().GetDistribution("dpaudit_pool_queue_depth",
                                                0.0, 4096.0, 128);
  queue_depth.Record(static_cast<double>(depth));
}

constexpr ThreadPoolTelemetryHooks kPoolHooks = {
    &PoolCaptureContext,
    &PoolEnterContext,
    &PoolExitContext,
    &PoolRecordTaskNs,
    &PoolRecordQueueDepth,
};

// ---------------------------------------------------------------------------
// Log mirror: every emitted record lands in a capped buffer for the JSONL
// export.

void TelemetryLogSink(LogLevel level, const char* file, int line,
                      const std::string& message) {
  TelemetryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.log_buffer.size() >= kMaxLogRecords) {
    state.log_buffer.pop_front();
  }
  state.log_buffer.push_back({level, file, line, message});
}

// ---------------------------------------------------------------------------
// Formatting helpers (JsonEscape/FormatDouble come from obs/json_util.h).

char LevelLetterFor(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

/// "dpaudit_build_info{binary="x"}" -> "dpaudit_build_info".
std::string BaseMetricName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

uint64_t ThreadsForBuildInfo() { return DefaultThreadCount(); }

}  // namespace

const char* ActiveSimdDispatch() {
#if defined(DPAUDIT_X86_DISPATCH)
  return HasAvx2() ? "avx2" : "scalar";
#else
  return "scalar";
#endif
}

const char* BuildGitCommit() {
#if defined(DPAUDIT_GIT_COMMIT)
  return DPAUDIT_GIT_COMMIT;
#else
  return "unknown";
#endif
}

TelemetryOptions TelemetryOptionsFromEnv() {
  TelemetryOptions options;
  const std::string dir = EnvString("DPAUDIT_TELEMETRY", "");
  if (!dir.empty()) {
    options.enabled = true;
    options.directory = dir;
  }
  return options;
}

void RegisterBuildInfo(const std::string& binary_name) {
  std::ostringstream name;
  name << "dpaudit_build_info{binary=\"" << binary_name << "\",simd=\""
       << ActiveSimdDispatch() << "\",threads=\"" << ThreadsForBuildInfo()
       << "\",batch_lanes=\"" << BatchLanesFromEnv() << "\",commit=\""
       << BuildGitCommit() << "\"}";
  MetricsRegistry::Global().GetGauge(name.str()).Set(1.0);
}

void InitTelemetry(const std::string& argv0_or_name,
                   const TelemetryOptions& options) {
  TelemetryState& state = State();
  const std::string binary = Basename(argv0_or_name);
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.binary_name = binary;
    state.directory = options.directory;
    state.start_ns = MonotonicNowNs();
  }
  RegisterBuildInfo(binary);
  if (!options.enabled) return;

  SetThreadPoolTelemetryHooks(&kPoolHooks);
  SetLogSink(&TelemetryLogSink);
  LedgerManifest manifest;
  manifest.binary = binary;
  manifest.simd = ActiveSimdDispatch();
  manifest.threads = ThreadsForBuildInfo();
  manifest.batch_lanes = BatchLanesFromEnv();
  manifest.git_commit = BuildGitCommit();
  InitAuditLedger(manifest,
                  options.directory.empty() ? "." : options.directory);
  internal::g_telemetry_enabled.store(true, std::memory_order_relaxed);
  std::atexit(&FlushTelemetry);
  DPAUDIT_LOG(INFO) << "telemetry on: binary=" << binary
                    << " simd=" << ActiveSimdDispatch()
                    << " threads=" << ThreadsForBuildInfo()
                    << " batch_lanes=" << BatchLanesFromEnv() << " dir="
                    << (options.directory.empty() ? "." : options.directory);
}

void EnableTelemetryForTest(bool enabled) {
  internal::g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
  SetThreadPoolTelemetryHooks(enabled ? &kPoolHooks : nullptr);
}

// ---------------------------------------------------------------------------
// Exporters.

void WriteProfileReport(std::ostream& os, uint64_t wall_ns) {
  TelemetryState& state = State();
  std::string binary;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    binary = state.binary_name;
  }
  const std::vector<SpanRegistry::Stat> stats =
      SpanRegistry::Global().Collect();
  const uint64_t covered_ns = SpanRegistry::Global().RootTotalNs();

  os << "== dpaudit profile: " << binary << " ==\n";
  os << "simd=" << ActiveSimdDispatch() << " threads=" << ThreadsForBuildInfo()
     << "\n";
  if (wall_ns > 0) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "wall %.3f s, span coverage %.1f%% of wall\n",
                  static_cast<double>(wall_ns) * 1e-9,
                  100.0 * static_cast<double>(covered_ns) /
                      static_cast<double>(wall_ns));
    os << line;
  }
  if (stats.empty()) {
    os << "(no spans recorded)\n";
    return;
  }

  size_t name_width = 4;  // "span"
  for (const SpanRegistry::Stat& stat : stats) {
    const size_t leaf = stat.path.find_last_of('/');
    const size_t len =
        2 * stat.depth +
        (leaf == std::string::npos ? stat.path.size()
                                   : stat.path.size() - leaf - 1);
    name_width = std::max(name_width, len);
  }

  char header[192];
  std::snprintf(header, sizeof(header), "%-*s %10s %12s %12s %12s\n",
                static_cast<int>(name_width), "span", "count", "total ms",
                "self ms", "avg us");
  os << header;
  for (const SpanRegistry::Stat& stat : stats) {
    const size_t leaf_pos = stat.path.find_last_of('/');
    const std::string leaf =
        leaf_pos == std::string::npos ? stat.path : stat.path.substr(leaf_pos + 1);
    const std::string indented = std::string(2 * stat.depth, ' ') + leaf;
    const double total_ms = static_cast<double>(stat.total_ns) * 1e-6;
    const double self_ms = static_cast<double>(stat.self_ns) * 1e-6;
    const double avg_us =
        stat.count == 0
            ? 0.0
            : static_cast<double>(stat.total_ns) * 1e-3 /
                  static_cast<double>(stat.count);
    char row[256];
    std::snprintf(row, sizeof(row), "%-*s %10llu %12.3f %12.3f %12.3f\n",
                  static_cast<int>(name_width), indented.c_str(),
                  static_cast<unsigned long long>(stat.count), total_ms,
                  self_ms, avg_us);
    os << row;
  }
}

void WriteJsonl(std::ostream& os) {
  TelemetryState& state = State();
  std::string binary;
  uint64_t start_ns;
  std::vector<TelemetryState::LogRecord> logs;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    binary = state.binary_name;
    start_ns = state.start_ns;
    logs.assign(state.log_buffer.begin(), state.log_buffer.end());
  }
  const uint64_t wall_ns =
      start_ns == 0 ? 0 : MonotonicNowNs() - start_ns;

  os << "{\"type\":\"run\",\"binary\":\"" << JsonEscape(binary)
     << "\",\"simd\":\"" << ActiveSimdDispatch()
     << "\",\"threads\":" << ThreadsForBuildInfo()
     << ",\"wall_ns\":" << wall_ns << "}\n";

  for (const SpanRegistry::Stat& stat : SpanRegistry::Global().Collect()) {
    os << "{\"type\":\"span\",\"path\":\"" << JsonEscape(stat.path)
       << "\",\"depth\":" << stat.depth << ",\"count\":" << stat.count
       << ",\"total_ns\":" << stat.total_ns
       << ",\"self_ns\":" << stat.self_ns << "}\n";
  }

  for (const MetricSnapshot& snap : MetricsRegistry::Global().Snapshot()) {
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << "{\"type\":\"counter\",\"name\":\"" << JsonEscape(snap.name)
           << "\",\"value\":" << static_cast<uint64_t>(snap.value) << "}\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        os << "{\"type\":\"gauge\",\"name\":\"" << JsonEscape(snap.name)
           << "\",\"value\":" << FormatDouble(snap.value) << "}\n";
        break;
      case MetricSnapshot::Kind::kDistribution:
        os << "{\"type\":\"distribution\",\"name\":\"" << JsonEscape(snap.name)
           << "\",\"count\":" << snap.summary.count()
           << ",\"mean\":" << FormatDouble(snap.summary.mean())
           << ",\"min\":"
           << FormatDouble(snap.summary.count() == 0 ? 0.0
                                                     : snap.summary.min())
           << ",\"max\":"
           << FormatDouble(snap.summary.count() == 0 ? 0.0
                                                     : snap.summary.max())
           << ",\"p50\":" << FormatDouble(snap.p50)
           << ",\"p90\":" << FormatDouble(snap.p90)
           << ",\"p99\":" << FormatDouble(snap.p99) << "}\n";
        break;
    }
  }

  for (const TelemetryState::LogRecord& record : logs) {
    os << "{\"type\":\"log\",\"level\":\"" << LevelLetterFor(record.level)
       << "\",\"file\":\"" << JsonEscape(record.file)
       << "\",\"line\":" << record.line << ",\"message\":\""
       << JsonEscape(record.message) << "\"}\n";
  }
}

namespace {

/// Emits one metric family: a `# TYPE` line the first time each base name is
/// seen, then the sample line.
void EmitProm(std::ostream& os, std::string* last_base,
              const std::string& name, const char* type,
              const std::string& value) {
  const std::string base = BaseMetricName(name);
  if (base != *last_base) {
    os << "# TYPE " << base << " " << type << "\n";
    *last_base = base;
  }
  os << name << " " << value << "\n";
}

}  // namespace

void WritePrometheus(std::ostream& os) {
  std::string last_base;
  for (const MetricSnapshot& snap : MetricsRegistry::Global().Snapshot()) {
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        EmitProm(os, &last_base, snap.name, "counter",
                 std::to_string(static_cast<uint64_t>(snap.value)));
        break;
      case MetricSnapshot::Kind::kGauge:
        EmitProm(os, &last_base, snap.name, "gauge",
                 FormatDouble(snap.value));
        break;
      case MetricSnapshot::Kind::kDistribution: {
        const std::string base = BaseMetricName(snap.name);
        os << "# TYPE " << base << " summary\n";
        os << base << "{quantile=\"0.5\"} " << FormatDouble(snap.p50) << "\n";
        os << base << "{quantile=\"0.9\"} " << FormatDouble(snap.p90) << "\n";
        os << base << "{quantile=\"0.99\"} " << FormatDouble(snap.p99)
           << "\n";
        os << base << "_sum "
           << FormatDouble(snap.summary.mean() *
                           static_cast<double>(snap.summary.count()))
           << "\n";
        os << base << "_count " << snap.summary.count() << "\n";
        last_base = base;
        break;
      }
    }
  }

  const std::vector<SpanRegistry::Stat> stats =
      SpanRegistry::Global().Collect();
  if (!stats.empty()) {
    os << "# TYPE dpaudit_span_seconds_total counter\n";
    for (const SpanRegistry::Stat& stat : stats) {
      os << "dpaudit_span_seconds_total{path=\"" << stat.path << "\"} "
         << FormatDouble(static_cast<double>(stat.total_ns) * 1e-9) << "\n";
    }
    os << "# TYPE dpaudit_span_count counter\n";
    for (const SpanRegistry::Stat& stat : stats) {
      os << "dpaudit_span_count{path=\"" << stat.path << "\"} " << stat.count
         << "\n";
    }
  }
}

void WriteTraceJson(std::ostream& os) {
  TelemetryState& state = State();
  std::string binary;
  uint64_t start_ns;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    binary = state.binary_name;
    start_ns = state.start_ns;
  }
  uint64_t dropped = 0;
  const std::vector<SpanEvent> events = CollectSpanEvents(&dropped);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Metadata event naming the process; also guarantees a non-empty array.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
     << "\"args\":{\"name\":\"" << JsonEscape(binary) << "\"}}";
  for (const SpanEvent& event : events) {
    const uint64_t rel_ns =
        event.start_ns >= start_ns ? event.start_ns - start_ns : 0;
    os << ",\n{\"name\":\"" << JsonEscape(event.name)
       << "\",\"cat\":\"dpaudit\",\"ph\":\"X\",\"ts\":"
       << FormatDouble(static_cast<double>(rel_ns) * 1e-3)
       << ",\"dur\":" << FormatDouble(static_cast<double>(event.dur_ns) * 1e-3)
       << ",\"pid\":1,\"tid\":" << event.tid << "}";
  }
  os << "]";
  if (dropped > 0) {
    os << ",\"dpaudit_dropped_events\":" << dropped;
  }
  os << "}\n";
}

// ---------------------------------------------------------------------------
// JSONL -> Prometheus re-rendering (dpaudit_cli metrics --from-jsonl).

Status RenderPrometheusFromJsonl(std::istream& in, std::ostream& out) {
  std::ostringstream body;
  std::string last_base;
  std::string line;
  size_t line_no = 0;
  bool saw_any = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string type;
    if (!JsonExtractString(line, "type", &type)) {
      return Status::InvalidArgument("events.jsonl line " +
                                     std::to_string(line_no) +
                                     ": missing \"type\" field");
    }
    saw_any = true;
    const std::string context =
        "events.jsonl line " + std::to_string(line_no) + " (" + type + ")";
    if (type == "run" || type == "log") continue;
    if (type == "counter" || type == "gauge") {
      std::string name;
      double value = 0.0;
      if (!JsonExtractString(line, "name", &name) ||
          !JsonExtractNumber(line, "value", &value)) {
        return Status::InvalidArgument(context + ": missing name/value");
      }
      EmitProm(body, &last_base, name,
               type == "counter" ? "counter" : "gauge", FormatDouble(value));
      continue;
    }
    if (type == "distribution") {
      std::string name;
      double count = 0.0, mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0;
      if (!JsonExtractString(line, "name", &name) ||
          !JsonExtractNumber(line, "count", &count) ||
          !JsonExtractNumber(line, "mean", &mean) ||
          !JsonExtractNumber(line, "p50", &p50) ||
          !JsonExtractNumber(line, "p90", &p90) ||
          !JsonExtractNumber(line, "p99", &p99)) {
        return Status::InvalidArgument(context + ": missing fields");
      }
      const std::string base = BaseMetricName(name);
      body << "# TYPE " << base << " summary\n";
      body << base << "{quantile=\"0.5\"} " << FormatDouble(p50) << "\n";
      body << base << "{quantile=\"0.9\"} " << FormatDouble(p90) << "\n";
      body << base << "{quantile=\"0.99\"} " << FormatDouble(p99) << "\n";
      body << base << "_sum " << FormatDouble(mean * count) << "\n";
      body << base << "_count " << static_cast<uint64_t>(count) << "\n";
      last_base = base;
      continue;
    }
    if (type == "span") {
      std::string path;
      double count = 0.0, total_ns = 0.0;
      if (!JsonExtractString(line, "path", &path) ||
          !JsonExtractNumber(line, "count", &count) ||
          !JsonExtractNumber(line, "total_ns", &total_ns)) {
        return Status::InvalidArgument(context + ": missing fields");
      }
      body << "dpaudit_span_seconds_total{path=\"" << path << "\"} "
           << FormatDouble(total_ns * 1e-9) << "\n";
      body << "dpaudit_span_count{path=\"" << path << "\"} "
           << static_cast<uint64_t>(count) << "\n";
      last_base.clear();
      continue;
    }
    return Status::InvalidArgument(context + ": unknown event type");
  }
  if (!saw_any) {
    return Status::InvalidArgument("events.jsonl is empty");
  }
  out << body.str();
  return Status::Ok();
}

void FlushTelemetry() {
  if (!TelemetryEnabled()) return;
  TelemetryState& state = State();
  std::string binary;
  std::string directory;
  uint64_t start_ns;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.flushed) return;
    state.flushed = true;
    binary = state.binary_name;
    directory = state.directory.empty() ? "." : state.directory;
    start_ns = state.start_ns;
  }
  const uint64_t wall_ns = start_ns == 0 ? 0 : MonotonicNowNs() - start_ns;

  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    DPAUDIT_LOG(ERROR) << "telemetry: cannot create directory " << directory
                       << ": " << ec.message();
    WriteProfileReport(RawLogStream(), wall_ns);
    return;
  }

  const std::string prefix = directory + "/" + binary;
  {
    std::ofstream profile(prefix + ".profile.txt");
    WriteProfileReport(profile, wall_ns);
  }
  {
    std::ofstream events(prefix + ".events.jsonl");
    WriteJsonl(events);
  }
  {
    std::ofstream prom(prefix + ".metrics.prom");
    WritePrometheus(prom);
  }
  {
    std::ofstream trace(prefix + ".trace.json");
    WriteTraceJson(trace);
  }
  FlushAuditLedger();
  // The profile also goes to stderr so interactive runs see it without
  // hunting for the file. Never stdout: experiment output must stay
  // byte-identical with telemetry off.
  WriteProfileReport(RawLogStream(), wall_ns);
  DPAUDIT_LOG(INFO) << "telemetry exports: " << prefix
                    << ".{profile.txt,events.jsonl,metrics.prom,trace.json}";
}

}  // namespace obs
}  // namespace dpaudit
