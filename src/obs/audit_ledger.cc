#include "obs/audit_ledger.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/json_util.h"
#include "util/logging.h"

namespace dpaudit {
namespace obs {

namespace internal {
std::atomic<bool> g_ledger_enabled{false};
}  // namespace internal

// ---------------------------------------------------------------------------
// Content digest.

void LedgerDigest::AddU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) Byte(static_cast<uint8_t>(v >> (8 * i)));
}

void LedgerDigest::AddF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AddU64(bits);
}

void LedgerDigest::AddTrial(bool trained_on_d, bool adversary_says_d,
                            double final_belief_d, double max_belief_d,
                            double test_accuracy,
                            const std::vector<double>& sigmas,
                            const std::vector<double>& local_sensitivities) {
  AddU64(trained_on_d ? 1 : 0);
  AddU64(adversary_says_d ? 1 : 0);
  AddF64(final_belief_d);
  AddF64(max_belief_d);
  AddF64(test_accuracy);
  AddU64(sigmas.size());
  for (double s : sigmas) AddF64(s);
  AddU64(local_sensitivities.size());
  for (double ls : local_sensitivities) AddF64(ls);
}

std::string LedgerDigest::Hex() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash_));
  return buf;
}

// ---------------------------------------------------------------------------
// Serialization.

namespace {

const char* BoolName(bool b) { return b ? "true" : "false"; }

}  // namespace

void WriteLedgerManifest(std::ostream& os, const LedgerManifest& manifest) {
  os << "{\"row\":\"manifest\",\"schema_version\":" << manifest.schema_version
     << ",\"binary\":\"" << JsonEscape(manifest.binary) << "\",\"simd\":\""
     << JsonEscape(manifest.simd) << "\",\"threads\":" << manifest.threads
     << ",\"batch_lanes\":" << manifest.batch_lanes << ",\"git_commit\":\""
     << JsonEscape(manifest.git_commit) << "\"}\n";
}

void WriteLedgerExperiment(std::ostream& os,
                           const LedgerExperiment& experiment) {
  os << "{\"row\":\"experiment\",\"seq\":" << experiment.seq
     << ",\"fingerprint\":\"" << JsonEscape(experiment.fingerprint)
     << "\",\"digest\":\"" << JsonEscape(experiment.digest)
     << "\",\"seed\":" << experiment.seed
     << ",\"repetitions\":" << experiment.repetitions
     << ",\"steps_per_trial\":" << experiment.steps_per_trial
     << ",\"prior_belief_d\":" << JsonNumber(experiment.prior_belief_d)
     << ",\"epochs\":" << experiment.epochs
     << ",\"learning_rate\":" << JsonNumber(experiment.learning_rate)
     << ",\"clip_norm\":" << JsonNumber(experiment.clip_norm)
     << ",\"noise_multiplier\":" << JsonNumber(experiment.noise_multiplier)
     << ",\"sensitivity_mode\":\"" << JsonEscape(experiment.sensitivity_mode)
     << "\",\"neighbor_mode\":\"" << JsonEscape(experiment.neighbor_mode)
     << "\",\"dataset_digest_d\":\"" << JsonEscape(experiment.dataset_digest_d)
     << "\",\"dataset_digest_dprime\":\""
     << JsonEscape(experiment.dataset_digest_dprime)
     << "\",\"dataset_digest_test\":\""
     << JsonEscape(experiment.dataset_digest_test) << "\"}\n";
  for (const LedgerTrial& trial : experiment.trials) {
    os << "{\"row\":\"trial\",\"seq\":" << experiment.seq
       << ",\"rep\":" << trial.rep << ",\"trained_on_d\":"
       << BoolName(trial.trained_on_d) << ",\"adversary_says_d\":"
       << BoolName(trial.adversary_says_d) << ",\"final_belief_d\":"
       << JsonNumber(trial.final_belief_d) << ",\"max_belief_d\":"
       << JsonNumber(trial.max_belief_d) << ",\"test_accuracy\":"
       << JsonNumber(trial.test_accuracy) << "}\n";
    for (const LedgerStep& step : trial.steps) {
      os << "{\"row\":\"step\",\"seq\":" << experiment.seq
         << ",\"rep\":" << trial.rep << ",\"step\":" << step.step
         << ",\"clip_norm\":" << JsonNumber(step.clip_norm)
         << ",\"local_sensitivity\":" << JsonNumber(step.local_sensitivity)
         << ",\"sensitivity_used\":" << JsonNumber(step.sensitivity_used)
         << ",\"sigma\":" << JsonNumber(step.sigma)
         << ",\"log_density_d\":" << JsonNumber(step.log_density_d)
         << ",\"log_density_dprime\":" << JsonNumber(step.log_density_dprime)
         << ",\"llr\":" << JsonNumber(step.llr)
         << ",\"belief_d\":" << JsonNumber(step.belief_d)
         << ",\"rdp_eps_alpha2\":" << JsonNumber(step.rdp_eps_alpha2)
         << "}\n";
    }
  }
}

void WriteLedgerAudit(std::ostream& os, const LedgerAudit& audit) {
  os << "{\"row\":\"audit\",\"seq\":" << audit.seq << ",\"digest\":\""
     << JsonEscape(audit.digest) << "\",\"delta\":" << JsonNumber(audit.delta)
     << ",\"epsilon_from_sensitivities\":"
     << JsonNumber(audit.epsilon_from_sensitivities)
     << ",\"epsilon_from_belief\":" << JsonNumber(audit.epsilon_from_belief)
     << ",\"epsilon_from_advantage\":"
     << JsonNumber(audit.epsilon_from_advantage)
     << ",\"advantage\":" << JsonNumber(audit.advantage)
     << ",\"max_belief\":" << JsonNumber(audit.max_belief) << "}\n";
}

void WriteLedgerError(std::ostream& os, const LedgerError& error) {
  os << "{\"row\":\"error\",\"seq\":" << error.seq << ",\"fingerprint\":\""
     << JsonEscape(error.fingerprint) << "\",\"repetitions_requested\":"
     << error.repetitions_requested << ",\"repetitions_completed\":"
     << error.repetitions_completed << ",\"trials_failed\":"
     << error.trials_failed << ",\"message\":\"" << JsonEscape(error.message)
     << "\"}\n";
}

// ---------------------------------------------------------------------------
// Writer.

namespace {

struct LedgerWriterState {
  std::mutex mu;
  LedgerManifest manifest;
  std::string directory;  // created on demand; empty for the test hook
  std::string path;
  std::ofstream out;
  bool opened = false;
  bool failed = false;
  uint64_t next_seq = 0;
};

LedgerWriterState& WriterState() {
  // Leaked intentionally: appends may race process teardown otherwise.
  static LedgerWriterState* state = new LedgerWriterState();
  return *state;
}

/// Opens the sink lazily, writing the manifest as the first row. Returns
/// false (after logging once) when the file cannot be created; subsequent
/// appends are dropped silently. Caller holds state.mu.
bool EnsureOpenLocked(LedgerWriterState& state) {
  if (state.opened) return true;
  if (state.failed) return false;
  if (!state.directory.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(state.directory, ec);
  }
  state.out.open(state.path, std::ios::out | std::ios::trunc);
  if (!state.out) {
    state.failed = true;
    DPAUDIT_LOG(WARNING) << "audit ledger: cannot open " << state.path
                         << "; ledger rows will be dropped";
    return false;
  }
  state.opened = true;
  WriteLedgerManifest(state.out, state.manifest);
  return true;
}

}  // namespace

void InitAuditLedger(const LedgerManifest& manifest,
                     const std::string& directory) {
  LedgerWriterState& state = WriterState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.manifest = manifest;
  state.directory = directory;
  state.path = directory + "/" + manifest.binary + ".ledger.jsonl";
  state.opened = false;
  state.failed = false;
  state.next_seq = 0;
  internal::g_ledger_enabled.store(true, std::memory_order_relaxed);
}

void AppendLedgerExperiment(LedgerExperiment* experiment) {
  if (!AuditLedgerEnabled()) return;
  LedgerWriterState& state = WriterState();
  std::lock_guard<std::mutex> lock(state.mu);
  experiment->seq = state.next_seq++;
  if (!EnsureOpenLocked(state)) return;
  WriteLedgerExperiment(state.out, *experiment);
  state.out.flush();
}

void AppendLedgerAudit(LedgerAudit* audit) {
  if (!AuditLedgerEnabled()) return;
  LedgerWriterState& state = WriterState();
  std::lock_guard<std::mutex> lock(state.mu);
  audit->seq = state.next_seq++;
  if (!EnsureOpenLocked(state)) return;
  WriteLedgerAudit(state.out, *audit);
  state.out.flush();
}

void AppendLedgerError(LedgerError* error) {
  if (!AuditLedgerEnabled()) return;
  LedgerWriterState& state = WriterState();
  std::lock_guard<std::mutex> lock(state.mu);
  error->seq = state.next_seq++;
  if (!EnsureOpenLocked(state)) return;
  WriteLedgerError(state.out, *error);
  state.out.flush();
}

void FlushAuditLedger() {
  if (!AuditLedgerEnabled()) return;
  LedgerWriterState& state = WriterState();
  std::lock_guard<std::mutex> lock(state.mu);
  internal::g_ledger_enabled.store(false, std::memory_order_relaxed);
  if (state.opened) {
    state.out.flush();
    state.out.close();
    state.opened = false;
  }
}

void OpenAuditLedgerForTest(const std::string& path) {
  LedgerWriterState& state = WriterState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.manifest = LedgerManifest{};
  state.manifest.binary = "test";
  state.manifest.simd = "test";
  state.manifest.threads = 1;
  state.manifest.batch_lanes = 0;
  state.manifest.git_commit = "test";
  state.directory.clear();
  state.path = path;
  state.opened = false;
  state.failed = false;
  state.next_seq = 0;
  internal::g_ledger_enabled.store(true, std::memory_order_relaxed);
}

void CloseAuditLedgerForTest() {
  LedgerWriterState& state = WriterState();
  std::lock_guard<std::mutex> lock(state.mu);
  internal::g_ledger_enabled.store(false, std::memory_order_relaxed);
  if (state.opened) {
    state.out.flush();
    state.out.close();
  }
  state.opened = false;
  state.failed = false;
  state.next_seq = 0;
}

// ---------------------------------------------------------------------------
// Parser.

namespace {

Status LineError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("ledger line " + std::to_string(line_no) +
                                 ": " + what);
}

Status MissingField(size_t line_no, const char* key) {
  return LineError(line_no,
                   std::string("missing or malformed field \"") + key + "\"");
}

}  // namespace

StatusOr<LedgerFile> ParseLedger(std::istream& in) {
  // Local shorthands so each row parser reads as a field list. Each returns
  // from ParseLedger with a line-numbered error when the field is absent.
#define DPAUDIT_LEDGER_REQ(extract, key, dst)                  \
  do {                                                         \
    if (!extract(line, key, dst)) return MissingField(line_no, key); \
  } while (0)

  LedgerFile file;
  bool have_manifest = false;
  // Structural cursor into the experiment block being filled, if any.
  bool in_experiment = false;
  bool in_trial = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) return LineError(line_no, "empty line");
    std::string row;
    if (!JsonExtractString(line, "row", &row)) {
      return MissingField(line_no, "row");
    }
    if (!have_manifest) {
      if (row != "manifest") {
        return LineError(line_no, "first row must be a manifest, got \"" +
                                      row + "\"");
      }
      LedgerManifest& m = file.manifest;
      uint64_t schema = 0;
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "schema_version", &schema);
      if (schema != kLedgerSchemaVersion) {
        return LineError(line_no, "unsupported schema_version " +
                                      std::to_string(schema) + " (expected " +
                                      std::to_string(kLedgerSchemaVersion) +
                                      ")");
      }
      m.schema_version = static_cast<uint32_t>(schema);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "binary", &m.binary);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "simd", &m.simd);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "threads", &m.threads);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "batch_lanes", &m.batch_lanes);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "git_commit", &m.git_commit);
      have_manifest = true;
      continue;
    }
    if (row == "manifest") {
      return LineError(line_no, "duplicate manifest row");
    }
    if (row == "experiment") {
      if (in_experiment) {
        return LineError(line_no,
                         "experiment row before the previous experiment's "
                         "trials completed");
      }
      LedgerExperiment e;
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "seq", &e.seq);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "fingerprint", &e.fingerprint);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "digest", &e.digest);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "seed", &e.seed);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "repetitions", &e.repetitions);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "steps_per_trial",
                         &e.steps_per_trial);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "prior_belief_d",
                         &e.prior_belief_d);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "epochs", &e.epochs);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "learning_rate",
                         &e.learning_rate);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "clip_norm", &e.clip_norm);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "noise_multiplier",
                         &e.noise_multiplier);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "sensitivity_mode",
                         &e.sensitivity_mode);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "neighbor_mode",
                         &e.neighbor_mode);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "dataset_digest_d",
                         &e.dataset_digest_d);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "dataset_digest_dprime",
                         &e.dataset_digest_dprime);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "dataset_digest_test",
                         &e.dataset_digest_test);
      e.trials.reserve(e.repetitions);
      file.experiments.push_back(std::move(e));
      in_experiment = file.experiments.back().repetitions > 0;
      in_trial = false;
      continue;
    }
    if (row == "trial") {
      if (!in_experiment) {
        return LineError(line_no, "trial row outside an experiment block");
      }
      LedgerExperiment& e = file.experiments.back();
      if (in_trial) {
        return LineError(line_no,
                         "trial row before the previous trial's steps "
                         "completed");
      }
      LedgerTrial t;
      uint64_t seq = 0;
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "seq", &seq);
      if (seq != e.seq) {
        return LineError(line_no, "trial row seq " + std::to_string(seq) +
                                      " does not match experiment seq " +
                                      std::to_string(e.seq));
      }
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "rep", &t.rep);
      if (t.rep != e.trials.size()) {
        return LineError(line_no, "trial rows out of order: got rep " +
                                      std::to_string(t.rep) + ", expected " +
                                      std::to_string(e.trials.size()));
      }
      DPAUDIT_LEDGER_REQ(JsonExtractBool, "trained_on_d", &t.trained_on_d);
      DPAUDIT_LEDGER_REQ(JsonExtractBool, "adversary_says_d",
                         &t.adversary_says_d);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "final_belief_d",
                         &t.final_belief_d);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "max_belief_d", &t.max_belief_d);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "test_accuracy",
                         &t.test_accuracy);
      t.steps.reserve(e.steps_per_trial);
      e.trials.push_back(std::move(t));
      in_trial = e.steps_per_trial > 0;
      if (!in_trial && e.trials.size() == e.repetitions) in_experiment = false;
      continue;
    }
    if (row == "step") {
      if (!in_experiment || !in_trial) {
        return LineError(line_no, "step row outside a trial block");
      }
      LedgerExperiment& e = file.experiments.back();
      LedgerTrial& t = e.trials.back();
      LedgerStep s;
      uint64_t seq = 0;
      uint64_t rep = 0;
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "seq", &seq);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "rep", &rep);
      if (seq != e.seq || rep != t.rep) {
        return LineError(line_no, "step row seq/rep does not match the "
                                  "enclosing trial");
      }
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "step", &s.step);
      if (s.step != t.steps.size()) {
        return LineError(line_no, "step rows out of order: got step " +
                                      std::to_string(s.step) + ", expected " +
                                      std::to_string(t.steps.size()));
      }
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "clip_norm", &s.clip_norm);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "local_sensitivity",
                         &s.local_sensitivity);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "sensitivity_used",
                         &s.sensitivity_used);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "sigma", &s.sigma);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "log_density_d",
                         &s.log_density_d);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "log_density_dprime",
                         &s.log_density_dprime);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "llr", &s.llr);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "belief_d", &s.belief_d);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "rdp_eps_alpha2",
                         &s.rdp_eps_alpha2);
      t.steps.push_back(s);
      if (t.steps.size() == e.steps_per_trial) {
        in_trial = false;
        if (e.trials.size() == e.repetitions) in_experiment = false;
      }
      continue;
    }
    if (row == "error") {
      if (in_experiment) {
        return LineError(line_no,
                         "error row inside an unfinished experiment block");
      }
      LedgerError e;
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "seq", &e.seq);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "fingerprint", &e.fingerprint);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "repetitions_requested",
                         &e.repetitions_requested);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "repetitions_completed",
                         &e.repetitions_completed);
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "trials_failed", &e.trials_failed);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "message", &e.message);
      file.errors.push_back(std::move(e));
      continue;
    }
    if (row == "audit") {
      if (in_experiment) {
        return LineError(line_no,
                         "audit row inside an unfinished experiment block");
      }
      LedgerAudit a;
      DPAUDIT_LEDGER_REQ(JsonExtractUint, "seq", &a.seq);
      DPAUDIT_LEDGER_REQ(JsonExtractString, "digest", &a.digest);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "delta", &a.delta);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "epsilon_from_sensitivities",
                         &a.epsilon_from_sensitivities);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "epsilon_from_belief",
                         &a.epsilon_from_belief);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "epsilon_from_advantage",
                         &a.epsilon_from_advantage);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "advantage", &a.advantage);
      DPAUDIT_LEDGER_REQ(JsonExtractNumber, "max_belief", &a.max_belief);
      file.audits.push_back(std::move(a));
      continue;
    }
    return LineError(line_no, "unknown row type \"" + row + "\"");
  }
  if (!have_manifest) {
    return Status::InvalidArgument("ledger is empty: no manifest row");
  }
  if (in_experiment) {
    const LedgerExperiment& e = file.experiments.back();
    return Status::InvalidArgument(
        "ledger truncated after line " + std::to_string(line_no) +
        ": experiment seq " + std::to_string(e.seq) + " has " +
        std::to_string(e.trials.size()) + "/" +
        std::to_string(e.repetitions) + " trials");
  }
  return file;
#undef DPAUDIT_LEDGER_REQ
}

StatusOr<LedgerFile> LoadLedgerFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open ledger file: " + path);
  }
  return ParseLedger(in);
}

// ---------------------------------------------------------------------------
// Diff.

namespace {

/// Compares through the JSON spelling so NaN equals NaN and the tolerance is
/// exactly "same bytes in the file", which is the ledger's parity contract.
bool SameNumber(double a, double b) { return JsonNumber(a) == JsonNumber(b); }

struct DiffReporter {
  std::ostream& os;
  size_t count = 0;

  template <typename T>
  void Field(const std::string& where, const char* key, const T& a,
             const T& b) {
    if (a == b) return;
    ++count;
    os << where << "." << key << ": " << a << " != " << b << "\n";
  }
  void Num(const std::string& where, const char* key, double a, double b) {
    if (SameNumber(a, b)) return;
    ++count;
    os << where << "." << key << ": " << JsonNumber(a) << " != "
       << JsonNumber(b) << "\n";
  }
};

}  // namespace

size_t DiffLedgers(const LedgerFile& a, const LedgerFile& b,
                   std::ostream& report) {
  DiffReporter d{report};
  // Manifest differences are notes, not counted: two builds may legitimately
  // differ in binary/simd/threads while the audit content must not.
  {
    const LedgerManifest& ma = a.manifest;
    const LedgerManifest& mb = b.manifest;
    if (ma.binary != mb.binary || ma.simd != mb.simd ||
        ma.threads != mb.threads || ma.batch_lanes != mb.batch_lanes ||
        ma.git_commit != mb.git_commit ||
        ma.schema_version != mb.schema_version) {
      report << "note: manifests differ (a: binary=" << ma.binary
             << " simd=" << ma.simd << " threads=" << ma.threads
             << " batch_lanes=" << ma.batch_lanes << " commit="
             << ma.git_commit << "; b: binary=" << mb.binary << " simd="
             << mb.simd << " threads=" << mb.threads << " batch_lanes="
             << mb.batch_lanes << " commit=" << mb.git_commit << ")\n";
    }
  }
  if (a.experiments.size() != b.experiments.size()) {
    ++d.count;
    report << "experiment count: " << a.experiments.size() << " != "
           << b.experiments.size() << "\n";
  }
  const size_t ne = std::min(a.experiments.size(), b.experiments.size());
  for (size_t i = 0; i < ne; ++i) {
    const LedgerExperiment& ea = a.experiments[i];
    const LedgerExperiment& eb = b.experiments[i];
    const std::string we = "experiment[" + std::to_string(i) + "]";
    d.Field(we, "seq", ea.seq, eb.seq);
    d.Field(we, "fingerprint", ea.fingerprint, eb.fingerprint);
    d.Field(we, "digest", ea.digest, eb.digest);
    d.Field(we, "seed", ea.seed, eb.seed);
    d.Field(we, "repetitions", ea.repetitions, eb.repetitions);
    d.Field(we, "steps_per_trial", ea.steps_per_trial, eb.steps_per_trial);
    d.Num(we, "prior_belief_d", ea.prior_belief_d, eb.prior_belief_d);
    d.Field(we, "epochs", ea.epochs, eb.epochs);
    d.Num(we, "learning_rate", ea.learning_rate, eb.learning_rate);
    d.Num(we, "clip_norm", ea.clip_norm, eb.clip_norm);
    d.Num(we, "noise_multiplier", ea.noise_multiplier, eb.noise_multiplier);
    d.Field(we, "sensitivity_mode", ea.sensitivity_mode, eb.sensitivity_mode);
    d.Field(we, "neighbor_mode", ea.neighbor_mode, eb.neighbor_mode);
    d.Field(we, "dataset_digest_d", ea.dataset_digest_d, eb.dataset_digest_d);
    d.Field(we, "dataset_digest_dprime", ea.dataset_digest_dprime,
            eb.dataset_digest_dprime);
    d.Field(we, "dataset_digest_test", ea.dataset_digest_test,
            eb.dataset_digest_test);
    const size_t nt = std::min(ea.trials.size(), eb.trials.size());
    if (ea.trials.size() != eb.trials.size()) {
      ++d.count;
      report << we << " trial count: " << ea.trials.size() << " != "
             << eb.trials.size() << "\n";
    }
    for (size_t r = 0; r < nt; ++r) {
      const LedgerTrial& ta = ea.trials[r];
      const LedgerTrial& tb = eb.trials[r];
      const std::string wt = we + ".trial[" + std::to_string(r) + "]";
      d.Field(wt, "trained_on_d", ta.trained_on_d, tb.trained_on_d);
      d.Field(wt, "adversary_says_d", ta.adversary_says_d,
              tb.adversary_says_d);
      d.Num(wt, "final_belief_d", ta.final_belief_d, tb.final_belief_d);
      d.Num(wt, "max_belief_d", ta.max_belief_d, tb.max_belief_d);
      d.Num(wt, "test_accuracy", ta.test_accuracy, tb.test_accuracy);
      const size_t ns = std::min(ta.steps.size(), tb.steps.size());
      if (ta.steps.size() != tb.steps.size()) {
        ++d.count;
        report << wt << " step count: " << ta.steps.size() << " != "
               << tb.steps.size() << "\n";
      }
      for (size_t s = 0; s < ns; ++s) {
        const LedgerStep& sa = ta.steps[s];
        const LedgerStep& sb = tb.steps[s];
        const std::string ws = wt + ".step[" + std::to_string(s) + "]";
        d.Num(ws, "clip_norm", sa.clip_norm, sb.clip_norm);
        d.Num(ws, "local_sensitivity", sa.local_sensitivity,
              sb.local_sensitivity);
        d.Num(ws, "sensitivity_used", sa.sensitivity_used,
              sb.sensitivity_used);
        d.Num(ws, "sigma", sa.sigma, sb.sigma);
        d.Num(ws, "log_density_d", sa.log_density_d, sb.log_density_d);
        d.Num(ws, "log_density_dprime", sa.log_density_dprime,
              sb.log_density_dprime);
        d.Num(ws, "llr", sa.llr, sb.llr);
        d.Num(ws, "belief_d", sa.belief_d, sb.belief_d);
        d.Num(ws, "rdp_eps_alpha2", sa.rdp_eps_alpha2, sb.rdp_eps_alpha2);
      }
    }
  }
  if (a.errors.size() != b.errors.size()) {
    ++d.count;
    report << "error count: " << a.errors.size() << " != " << b.errors.size()
           << "\n";
  }
  const size_t nerr = std::min(a.errors.size(), b.errors.size());
  for (size_t i = 0; i < nerr; ++i) {
    const LedgerError& ra = a.errors[i];
    const LedgerError& rb = b.errors[i];
    const std::string wr = "error[" + std::to_string(i) + "]";
    d.Field(wr, "seq", ra.seq, rb.seq);
    d.Field(wr, "fingerprint", ra.fingerprint, rb.fingerprint);
    d.Field(wr, "repetitions_requested", ra.repetitions_requested,
            rb.repetitions_requested);
    d.Field(wr, "repetitions_completed", ra.repetitions_completed,
            rb.repetitions_completed);
    d.Field(wr, "trials_failed", ra.trials_failed, rb.trials_failed);
    d.Field(wr, "message", ra.message, rb.message);
  }
  if (a.audits.size() != b.audits.size()) {
    ++d.count;
    report << "audit count: " << a.audits.size() << " != " << b.audits.size()
           << "\n";
  }
  const size_t na = std::min(a.audits.size(), b.audits.size());
  for (size_t i = 0; i < na; ++i) {
    const LedgerAudit& aa = a.audits[i];
    const LedgerAudit& ab = b.audits[i];
    const std::string wa = "audit[" + std::to_string(i) + "]";
    d.Field(wa, "seq", aa.seq, ab.seq);
    d.Field(wa, "digest", aa.digest, ab.digest);
    d.Num(wa, "delta", aa.delta, ab.delta);
    d.Num(wa, "epsilon_from_sensitivities", aa.epsilon_from_sensitivities,
          ab.epsilon_from_sensitivities);
    d.Num(wa, "epsilon_from_belief", aa.epsilon_from_belief,
          ab.epsilon_from_belief);
    d.Num(wa, "epsilon_from_advantage", aa.epsilon_from_advantage,
          ab.epsilon_from_advantage);
    d.Num(wa, "advantage", aa.advantage, ab.advantage);
    d.Num(wa, "max_belief", aa.max_belief, ab.max_belief);
  }
  return d.count;
}

}  // namespace obs
}  // namespace dpaudit
