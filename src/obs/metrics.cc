#include "obs/metrics.h"

namespace dpaudit {
namespace obs {

namespace internal {

size_t CurrentStripe() {
  static std::atomic<size_t> next{0};
  thread_local size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

}  // namespace internal

DistributionMetric::DistributionMetric(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), num_bins_(num_bins) {
  cells_.reserve(kMetricStripes);
  for (size_t i = 0; i < kMetricStripes; ++i) {
    cells_.push_back(std::make_unique<Cell>(lo, hi, num_bins));
  }
}

void DistributionMetric::Record(double x) {
  Cell& cell = *cells_[internal::CurrentStripe()];
  std::lock_guard<std::mutex> lock(cell.mu);
  cell.summary.Add(x);
  cell.bins.Add(x);
}

DistributionMetric::Snapshot DistributionMetric::Snap() const {
  Snapshot snap{RunningSummary(), Histogram(lo_, hi_, num_bins_)};
  for (const std::unique_ptr<Cell>& cell : cells_) {
    std::lock_guard<std::mutex> lock(cell->mu);
    snap.summary.Merge(cell->summary);
    snap.bins.MergeFrom(cell->bins);
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

DistributionMetric& MetricsRegistry::GetDistribution(const std::string& name,
                                                     double lo, double hi,
                                                     size_t num_bins) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<DistributionMetric>& slot = distributions_[name];
  if (slot == nullptr) {
    slot = std::make_unique<DistributionMetric>(lo, hi, num_bins);
  }
  return *slot;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + distributions_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snap;
    snap.kind = MetricSnapshot::Kind::kCounter;
    snap.name = name;
    snap.value = static_cast<double>(counter->Value());
    out.push_back(std::move(snap));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snap;
    snap.kind = MetricSnapshot::Kind::kGauge;
    snap.name = name;
    snap.value = gauge->Value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, dist] : distributions_) {
    DistributionMetric::Snapshot merged = dist->Snap();
    MetricSnapshot snap;
    snap.kind = MetricSnapshot::Kind::kDistribution;
    snap.name = name;
    snap.summary = merged.summary;
    if (merged.summary.count() > 0) {
      snap.p50 = merged.bins.ApproxQuantile(0.5);
      snap.p90 = merged.bins.ApproxQuantile(0.9);
      snap.p99 = merged.bins.ApproxQuantile(0.99);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  distributions_.clear();
}

}  // namespace obs
}  // namespace dpaudit
