// Shared JSON formatting/scanning helpers for the obs exporters.
//
// Every obs artifact that speaks JSON — the telemetry events.jsonl, the
// privacy-audit ledger, the Chrome trace export — writes through these so
// the formats agree on escaping and on double round-tripping: FormatDouble
// uses %.17g, which reproduces any IEEE-754 double bit-exactly when parsed
// back, the property the ledger's replay-parity and epsilon'-recomputation
// contracts rest on. The Extract* scanners are the matching readers: they
// only parse JSON this module wrote (flat objects, one per line), not
// arbitrary JSON.

#ifndef DPAUDIT_OBS_JSON_UTIL_H_
#define DPAUDIT_OBS_JSON_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace dpaudit {
namespace obs {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest exact decimal form of a double (%.17g round-trips all doubles).
inline std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// FormatDouble, but non-finite values become the spellings Python's json
/// module (and strtod) accept — "%.17g" would emit bare "inf"/"nan", which
/// no JSON reader takes. The advantage-based epsilon' estimator is genuinely
/// +infinity when every trial succeeds, so ledger rows must survive this.
inline std::string JsonNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "Infinity" : "-Infinity";
  return FormatDouble(v);
}

/// Extracts the string value of `"key":"..."` from a single-line JSON object
/// this module wrote. Returns false when the key is missing.
inline bool JsonExtractString(const std::string& line, const std::string& key,
                              std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::string value;
  for (size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char next = line[++i];
      switch (next) {
        case 'n':
          value += '\n';
          break;
        case 't':
          value += '\t';
          break;
        case 'r':
          value += '\r';
          break;
        default:
          value += next;  // \" \\ and \uXXXX (kept verbatim sans escape)
      }
      continue;
    }
    if (c == '"') {
      *out = std::move(value);
      return true;
    }
    value += c;
  }
  return false;
}

inline bool JsonExtractNumber(const std::string& line, const std::string& key,
                              double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return false;
  *out = value;
  return true;
}

/// Integer variant: strtod would lose precision above 2^53, and the ledger
/// stores 64-bit seeds verbatim.
inline bool JsonExtractUint(const std::string& line, const std::string& key,
                            uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const unsigned long long value = std::strtoull(start, &end, 10);
  if (end == start) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

inline bool JsonExtractBool(const std::string& line, const std::string& key,
                            bool* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const size_t v = at + needle.size();
  if (line.compare(v, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (line.compare(v, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace obs
}  // namespace dpaudit

#endif  // DPAUDIT_OBS_JSON_UTIL_H_
