// Process-wide metrics registry: thread-striped counters, gauges, and
// distribution metrics, aggregated exactly on scrape.
//
// Counters stripe a fixed array of cache-line-padded atomics; an increment is
// one relaxed fetch_add on the calling thread's stripe and a scrape sums the
// stripes, so concurrent increments aggregate exactly (fetch_add never loses
// an update). Distribution metrics pair stats/ Welford summaries with stats/
// histogram binning per stripe and merge them on scrape. Metric objects are
// created once through the registry and never destroyed, so cached
// references stay valid for the process lifetime.
//
// Instrumentation sites on hot paths use DPAUDIT_METRIC_COUNT, which reduces
// to a single relaxed atomic load when telemetry is disabled.

#ifndef DPAUDIT_OBS_METRICS_H_
#define DPAUDIT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace dpaudit {
namespace obs {

/// Number of independent cells each metric stripes its state across. Threads
/// are assigned stripes round-robin on first use.
constexpr size_t kMetricStripes = 16;

namespace internal {
/// This thread's stripe index, assigned once per thread.
size_t CurrentStripe();
}  // namespace internal

/// Monotonic counter. Add() is lock-free; Value() is exact.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    cells_[internal::CurrentStripe()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kMetricStripes];
};

/// Last-write-wins scalar (build info, configuration values).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Value distribution: per-stripe Welford summary (exact count/mean/min/max)
/// plus equal-width histogram bins for quantile estimates, merged on scrape.
class DistributionMetric {
 public:
  DistributionMetric(double lo, double hi, size_t num_bins);
  DistributionMetric(const DistributionMetric&) = delete;
  DistributionMetric& operator=(const DistributionMetric&) = delete;

  void Record(double x);

  struct Snapshot {
    RunningSummary summary;
    Histogram bins;
  };
  Snapshot Snap() const;

 private:
  struct Cell {
    Cell(double lo, double hi, size_t num_bins) : bins(lo, hi, num_bins) {}
    std::mutex mu;
    RunningSummary summary;
    Histogram bins;
  };
  double lo_;
  double hi_;
  size_t num_bins_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// One scraped metric, already aggregated across stripes.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kDistribution };
  Kind kind = Kind::kCounter;
  std::string name;  // may carry {label="..."} suffixes for the exposition
  double value = 0.0;                     // counter / gauge
  RunningSummary summary;                 // distribution
  double p50 = 0.0, p90 = 0.0, p99 = 0.0; // distribution quantile estimates
};

/// The process-wide registry. Get* returns the existing metric for `name` or
/// creates it; references stay valid forever.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  DistributionMetric& GetDistribution(const std::string& name, double lo,
                                      double hi, size_t num_bins);

  /// All metrics, sorted by name (counters, then gauges, then
  /// distributions).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Drops every registered metric. Only for tests — invalidates references.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<DistributionMetric>> distributions_;
};

}  // namespace obs
}  // namespace dpaudit

/// Counts `n` into the named counter when telemetry is enabled; one relaxed
/// atomic load otherwise. The registry lookup happens once per site.
#define DPAUDIT_METRIC_COUNT(name, n)                                     \
  do {                                                                    \
    if (::dpaudit::obs::TelemetryEnabled()) {                             \
      static ::dpaudit::obs::Counter& dpaudit_metric_counter =            \
          ::dpaudit::obs::MetricsRegistry::Global().GetCounter(name);     \
      dpaudit_metric_counter.Add(n);                                      \
    }                                                                     \
  } while (0)

/// Records one sample into a named distribution; same disabled-site cost as
/// DPAUDIT_METRIC_COUNT (one branch on the telemetry flag). The (lo, hi,
/// bins) histogram layout is fixed by the first use of the name.
#define DPAUDIT_METRIC_DISTRIBUTION(name, lo, hi, bins, value)            \
  do {                                                                    \
    if (::dpaudit::obs::TelemetryEnabled()) {                             \
      static ::dpaudit::obs::DistributionMetric& dpaudit_metric_dist =    \
          ::dpaudit::obs::MetricsRegistry::Global().GetDistribution(      \
              name, lo, hi, bins);                                        \
      dpaudit_metric_dist.Record(value);                                  \
    }                                                                     \
  } while (0)

#endif  // DPAUDIT_OBS_METRICS_H_
