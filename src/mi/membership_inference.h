// Membership-inference baseline (Experiment 1, Yeom et al.).
//
// A_MI receives a trained model, one record z, the data distribution Dist and
// the training-set size n — but, unlike A_DI, no per-step gradients and no
// knowledge of the remaining records. The implemented attack is the standard
// loss-threshold adversary: estimate the model's typical loss on fresh
// records drawn from Dist, and declare z a member when its loss falls below
// that threshold (members are fit better than non-members). Proposition 1
// says any such adversary is dominated by A_DI; the ablation bench verifies
// the empirical ordering Adv^MI <= Adv^DI.

#ifndef DPAUDIT_MI_MEMBERSHIP_INFERENCE_H_
#define DPAUDIT_MI_MEMBERSHIP_INFERENCE_H_

#include <cstdint>
#include <functional>

#include "core/dpsgd.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "util/random.h"
#include "util/status.h"

namespace dpaudit {

/// Draws fresh labeled records from the underlying distribution Dist — the
/// adversary's sampling access in Experiment 1.
using DistSampler = std::function<Dataset(size_t count, Rng& rng)>;

/// Loss-threshold MI adversary.
class MiAdversary {
 public:
  /// `probe_count` fresh records are drawn to estimate the non-member loss
  /// level; the decision threshold is `threshold_fraction` of that mean
  /// (members are expected to sit well below the fresh-record mean loss).
  MiAdversary(DistSampler sampler, size_t probe_count = 64,
              double threshold_fraction = 1.0);

  /// Calibrates the threshold against the given model (one-time per model).
  Status Calibrate(Network& model, Rng& rng);

  /// b' = 1 (member) iff loss(model, z) < threshold. Requires Calibrate().
  bool Decide(Network& model, const Tensor& input, size_t label) const;

  double threshold() const { return threshold_; }

 private:
  DistSampler sampler_;
  size_t probe_count_;
  double threshold_fraction_;
  double threshold_ = -1.0;
};

struct MiExperimentConfig {
  DpSgdConfig dpsgd;        // the training mechanism under attack
  size_t train_size = 100;  // n
  size_t trials = 100;      // membership challenges (fresh model each)
  uint64_t seed = 42;
  size_t threads = 0;
};

struct MiExperimentResult {
  double success_rate = 0.0;
  double advantage = 0.0;  // 2 * success_rate - 1
  size_t trials = 0;
};

/// Runs Experiment 1 end to end: per trial, sample D ~ Dist^n, train with
/// DPSGD (trained on D; the neighboring dataset needed by the mechanism's
/// sensitivity bookkeeping is D with one fresh replacement), flip b, give the
/// adversary either a member or a fresh record, and score b' == b.
StatusOr<MiExperimentResult> RunMiExperiment(const Network& architecture,
                                             const DistSampler& sampler,
                                             const MiExperimentConfig& config);

}  // namespace dpaudit

#endif  // DPAUDIT_MI_MEMBERSHIP_INFERENCE_H_
