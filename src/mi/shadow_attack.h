// Shadow-model membership-inference attack (Shokri et al., S&P 2017) — the
// stronger of the two MI baselines the paper contrasts A_DI with.
//
// The adversary trains `shadow_count` shadow models on datasets drawn from
// Dist with the same mechanism as the target, labels each shadow's records
// as member/non-member, extracts per-record features from the shadow's
// predictions (loss, true-class confidence, top confidence, entropy), and
// fits a logistic-regression attack model. Against the target model it
// extracts the same features and thresholds the attack model's output.
//
// Still strictly weaker than A_DI (Proposition 1): the shadow attacker never
// sees per-step gradients and holds no per-record auxiliary knowledge.

#ifndef DPAUDIT_MI_SHADOW_ATTACK_H_
#define DPAUDIT_MI_SHADOW_ATTACK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/dpsgd.h"
#include "mi/membership_inference.h"
#include "nn/network.h"
#include "util/status.h"

namespace dpaudit {

/// Prediction-derived features of one record under one model.
struct AttackFeatures {
  static constexpr size_t kCount = 4;
  double loss;              // cross-entropy at the true label
  double true_confidence;   // softmax probability of the true label
  double top_confidence;    // max softmax probability
  double entropy;           // prediction entropy

  std::array<double, kCount> AsArray() const {
    return {loss, true_confidence, top_confidence, entropy};
  }
};

/// Extracts attack features for (input, label) under `model`.
AttackFeatures ExtractAttackFeatures(Network& model, const Tensor& input,
                                     size_t label);

/// Binary logistic regression over AttackFeatures, trained with gradient
/// descent on standardized features.
class LogisticAttackModel {
 public:
  /// Fits on features with member labels (true = member). Requires at least
  /// one example of each class.
  Status Fit(const std::vector<AttackFeatures>& features,
             const std::vector<bool>& is_member, size_t iterations = 300,
             double learning_rate = 0.5);

  /// P(member | features). Requires Fit().
  double Predict(const AttackFeatures& features) const;

  bool DecideMember(const AttackFeatures& features) const {
    return Predict(features) > 0.5;
  }

  bool fitted() const { return fitted_; }

 private:
  std::array<double, AttackFeatures::kCount> weights_{};
  std::array<double, AttackFeatures::kCount> mean_{};
  std::array<double, AttackFeatures::kCount> scale_{};
  double bias_ = 0.0;
  bool fitted_ = false;
};

struct ShadowAttackConfig {
  DpSgdConfig dpsgd;         // the mechanism under attack
  size_t train_size = 40;    // n, per shadow and for the target
  size_t shadow_count = 6;   // shadow models
  size_t trials = 50;        // membership challenges against fresh targets
  uint64_t seed = 42;
  size_t threads = 0;
};

struct ShadowAttackResult {
  double success_rate = 0.0;
  double advantage = 0.0;
  size_t trials = 0;
};

/// Full experiment: train shadows, fit the attack model, then run
/// Experiment 1 challenges against independently trained target models.
StatusOr<ShadowAttackResult> RunShadowAttackExperiment(
    const Network& architecture, const DistSampler& sampler,
    const ShadowAttackConfig& config);

}  // namespace dpaudit

#endif  // DPAUDIT_MI_SHADOW_ATTACK_H_
