#include "mi/membership_inference.h"

#include <cmath>

#include "stats/summary.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace dpaudit {

MiAdversary::MiAdversary(DistSampler sampler, size_t probe_count,
                         double threshold_fraction)
    : sampler_(std::move(sampler)),
      probe_count_(probe_count),
      threshold_fraction_(threshold_fraction) {
  DPAUDIT_CHECK(sampler_ != nullptr);
  DPAUDIT_CHECK_GT(probe_count_, 0u);
  DPAUDIT_CHECK_GT(threshold_fraction_, 0.0);
}

Status MiAdversary::Calibrate(Network& model, Rng& rng) {
  Dataset probes = sampler_(probe_count_, rng);
  if (probes.empty()) {
    return Status::Internal("distribution sampler returned no records");
  }
  RunningSummary losses;
  for (size_t i = 0; i < probes.size(); ++i) {
    losses.Add(model.ExampleLoss(probes.inputs[i], probes.labels[i]));
  }
  threshold_ = threshold_fraction_ * losses.mean();
  return Status::Ok();
}

bool MiAdversary::Decide(Network& model, const Tensor& input,
                         size_t label) const {
  DPAUDIT_CHECK_GE(threshold_, 0.0) << "Calibrate() before Decide()";
  return model.ExampleLoss(input, label) < threshold_;
}

StatusOr<MiExperimentResult> RunMiExperiment(const Network& architecture,
                                             const DistSampler& sampler,
                                             const MiExperimentConfig& config) {
  DPAUDIT_RETURN_IF_ERROR(config.dpsgd.Validate());
  if (config.trials == 0) return Status::InvalidArgument("trials must be > 0");
  if (config.train_size < 2) {
    return Status::InvalidArgument("train size must be >= 2");
  }

  std::vector<int> outcomes(config.trials, -1);
  std::vector<Status> trial_status(config.trials, Status::Ok());
  Rng root(config.seed);
  size_t threads =
      config.threads == 0 ? DefaultThreadCount() : config.threads;

  ThreadPool::ParallelFor(config.trials, threads, [&](size_t trial) {
    Rng rng = root.Split(trial);
    // Sample D ~ Dist^n and a neighboring D' (one record replaced by a fresh
    // draw) purely so RunDpSgd's sensitivity bookkeeping is well defined;
    // the MI adversary never sees D'.
    Dataset d = sampler(config.train_size, rng);
    Dataset replacement = sampler(1, rng);
    Dataset d_prime = d.WithRecordReplaced(0, replacement.inputs[0],
                                           replacement.labels[0]);

    Network model = architecture.Clone();
    model.Initialize(rng);
    StatusOr<DpSgdResult> run = RunDpSgd(model, d, d_prime,
                                         /*train_on_d=*/true, config.dpsgd,
                                         rng, /*observer=*/nullptr);
    if (!run.ok()) {
      trial_status[trial] = run.status();
      return;
    }

    MiAdversary adversary(sampler);
    Status calibrated = adversary.Calibrate(run->model, rng);
    if (!calibrated.ok()) {
      trial_status[trial] = calibrated;
      return;
    }

    bool b = rng.Bernoulli(0.5);
    Tensor z;
    size_t label;
    if (b) {
      size_t idx = rng.UniformInt(d.size());
      z = d.inputs[idx];
      label = d.labels[idx];
    } else {
      Dataset fresh = sampler(1, rng);
      z = fresh.inputs[0];
      label = fresh.labels[0];
    }
    bool guess = adversary.Decide(run->model, z, label);
    outcomes[trial] = (guess == b) ? 1 : 0;
  });

  for (const Status& st : trial_status) {
    if (!st.ok()) return st;
  }
  MiExperimentResult result;
  result.trials = config.trials;
  size_t wins = 0;
  for (int outcome : outcomes) {
    DPAUDIT_CHECK_GE(outcome, 0);
    wins += static_cast<size_t>(outcome);
  }
  result.success_rate =
      static_cast<double>(wins) / static_cast<double>(config.trials);
  result.advantage = 2.0 * result.success_rate - 1.0;
  return result;
}

}  // namespace dpaudit
