#include "mi/shadow_attack.h"

#include <cmath>

#include "data/dataset.h"
#include "nn/loss.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dpaudit {

AttackFeatures ExtractAttackFeatures(Network& model, const Tensor& input,
                                     size_t label) {
  Tensor logits = model.Forward(input);
  DPAUDIT_CHECK_LT(label, logits.size());
  Tensor probs = SoftmaxProbabilities(logits);
  AttackFeatures features;
  features.loss = SoftmaxCrossEntropy(logits, label).loss;
  features.true_confidence = probs[label];
  double top = 0.0;
  double entropy = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    double p = probs[i];
    top = std::max(top, p);
    if (p > 1e-12) entropy -= p * std::log(p);
  }
  features.top_confidence = top;
  features.entropy = entropy;
  return features;
}

Status LogisticAttackModel::Fit(const std::vector<AttackFeatures>& features,
                                const std::vector<bool>& is_member,
                                size_t iterations, double learning_rate) {
  if (features.size() != is_member.size()) {
    return Status::InvalidArgument("features and labels differ in size");
  }
  size_t members = 0;
  for (bool m : is_member) members += m ? 1 : 0;
  if (members == 0 || members == is_member.size()) {
    return Status::InvalidArgument(
        "attack training set needs both members and non-members");
  }

  // Standardize features so one learning rate fits all dimensions.
  const size_t n = features.size();
  for (size_t f = 0; f < AttackFeatures::kCount; ++f) {
    double mean = 0.0;
    for (const AttackFeatures& x : features) mean += x.AsArray()[f];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (const AttackFeatures& x : features) {
      double d = x.AsArray()[f] - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    mean_[f] = mean;
    scale_[f] = var > 1e-12 ? 1.0 / std::sqrt(var) : 0.0;
  }

  weights_.fill(0.0);
  bias_ = 0.0;
  for (size_t iter = 0; iter < iterations; ++iter) {
    std::array<double, AttackFeatures::kCount> grad{};
    double grad_bias = 0.0;
    for (size_t i = 0; i < n; ++i) {
      std::array<double, AttackFeatures::kCount> x = features[i].AsArray();
      double score = bias_;
      for (size_t f = 0; f < AttackFeatures::kCount; ++f) {
        score += weights_[f] * (x[f] - mean_[f]) * scale_[f];
      }
      double err = Sigmoid(score) - (is_member[i] ? 1.0 : 0.0);
      for (size_t f = 0; f < AttackFeatures::kCount; ++f) {
        grad[f] += err * (x[f] - mean_[f]) * scale_[f];
      }
      grad_bias += err;
    }
    for (size_t f = 0; f < AttackFeatures::kCount; ++f) {
      weights_[f] -= learning_rate * grad[f] / static_cast<double>(n);
    }
    bias_ -= learning_rate * grad_bias / static_cast<double>(n);
  }
  fitted_ = true;
  return Status::Ok();
}

double LogisticAttackModel::Predict(const AttackFeatures& features) const {
  DPAUDIT_CHECK(fitted_) << "Fit() before Predict()";
  std::array<double, AttackFeatures::kCount> x = features.AsArray();
  double score = bias_;
  for (size_t f = 0; f < AttackFeatures::kCount; ++f) {
    score += weights_[f] * (x[f] - mean_[f]) * scale_[f];
  }
  return Sigmoid(score);
}

StatusOr<ShadowAttackResult> RunShadowAttackExperiment(
    const Network& architecture, const DistSampler& sampler,
    const ShadowAttackConfig& config) {
  DPAUDIT_RETURN_IF_ERROR(config.dpsgd.Validate());
  if (config.shadow_count == 0) {
    return Status::InvalidArgument("need at least one shadow model");
  }
  if (config.trials == 0) return Status::InvalidArgument("trials must be > 0");
  if (config.train_size < 2) {
    return Status::InvalidArgument("train size must be >= 2");
  }

  Rng root(config.seed);

  // Phase 1: shadow models. Each contributes its members and an equal
  // number of fresh non-members to the attack training set.
  std::vector<AttackFeatures> attack_features;
  std::vector<bool> attack_labels;
  for (size_t s = 0; s < config.shadow_count; ++s) {
    Rng rng = root.Split(1000 + s);
    Dataset shadow_data = sampler(config.train_size, rng);
    Dataset replacement = sampler(1, rng);
    Dataset neighbor = shadow_data.WithRecordReplaced(
        0, replacement.inputs[0], replacement.labels[0]);
    Network model = architecture.Clone();
    model.Initialize(rng);
    StatusOr<DpSgdResult> run = RunDpSgd(model, shadow_data, neighbor,
                                         /*train_on_d=*/true, config.dpsgd,
                                         rng, /*observer=*/nullptr);
    DPAUDIT_RETURN_IF_ERROR(run.status());
    for (size_t i = 0; i < shadow_data.size(); ++i) {
      attack_features.push_back(ExtractAttackFeatures(
          run->model, shadow_data.inputs[i], shadow_data.labels[i]));
      attack_labels.push_back(true);
    }
    Dataset fresh = sampler(config.train_size, rng);
    for (size_t i = 0; i < fresh.size(); ++i) {
      attack_features.push_back(ExtractAttackFeatures(
          run->model, fresh.inputs[i], fresh.labels[i]));
      attack_labels.push_back(false);
    }
  }

  LogisticAttackModel attack_model;
  DPAUDIT_RETURN_IF_ERROR(attack_model.Fit(attack_features, attack_labels));

  // Phase 2: membership challenges against fresh target models.
  std::vector<int> outcomes(config.trials, -1);
  std::vector<Status> trial_status(config.trials, Status::Ok());
  size_t threads =
      config.threads == 0 ? DefaultThreadCount() : config.threads;
  ThreadPool::ParallelFor(config.trials, threads, [&](size_t trial) {
    Rng rng = root.Split(trial);
    Dataset d = sampler(config.train_size, rng);
    Dataset replacement = sampler(1, rng);
    Dataset neighbor = d.WithRecordReplaced(0, replacement.inputs[0],
                                            replacement.labels[0]);
    Network model = architecture.Clone();
    model.Initialize(rng);
    StatusOr<DpSgdResult> run = RunDpSgd(model, d, neighbor, true,
                                         config.dpsgd, rng, nullptr);
    if (!run.ok()) {
      trial_status[trial] = run.status();
      return;
    }
    bool b = rng.Bernoulli(0.5);
    Tensor z;
    size_t label;
    if (b) {
      size_t idx = rng.UniformInt(d.size());
      z = d.inputs[idx];
      label = d.labels[idx];
    } else {
      Dataset fresh = sampler(1, rng);
      z = fresh.inputs[0];
      label = fresh.labels[0];
    }
    bool guess = attack_model.DecideMember(
        ExtractAttackFeatures(run->model, z, label));
    outcomes[trial] = (guess == b) ? 1 : 0;
  });
  for (const Status& st : trial_status) {
    if (!st.ok()) return st;
  }

  ShadowAttackResult result;
  result.trials = config.trials;
  size_t wins = 0;
  for (int o : outcomes) wins += static_cast<size_t>(o);
  result.success_rate =
      static_cast<double>(wins) / static_cast<double>(config.trials);
  result.advantage = 2.0 * result.success_rate - 1.0;
  return result;
}

}  // namespace dpaudit
