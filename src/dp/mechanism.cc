#include "dp/mechanism.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "stats/normal.h"
#include "util/logging.h"
#include "util/simd.h"

namespace dpaudit {
namespace {

// One increment per public mechanism call that went down the AVX2 (resp.
// scalar) kernel, so a scrape shows which dispatch path actually ran.
void CountDispatch(bool avx2) {
  if (avx2) {
    DPAUDIT_METRIC_COUNT("dpaudit_simd_avx2_calls_total", 1);
  } else {
    DPAUDIT_METRIC_COUNT("dpaudit_simd_scalar_calls_total", 1);
  }
}

// Must match stats/normal.cc so the kernels below reproduce NormalLogPdf's
// arithmetic bit-for-bit.
constexpr double kLogSqrt2Pi = 0.91893853320467274178;  // ln(sqrt(2*pi))

// Gaussians are drawn in chunks of this size into a stack buffer, separating
// the serial, branchy sampling loop from the vectorizable apply loop.
constexpr size_t kNoiseChunk = 512;

// v[i] = float(v[i] + (0.0 + sigma * g[i])) — exactly the arithmetic of the
// per-coordinate v + rng.Gaussian(0.0, sigma) it replaces (the 0.0 add
// preserves the -0.0 -> +0.0 normalization of the original mean add).
void ApplyNoiseScalar(float* v, const double* g, size_t n, double sigma) {
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(v[i] + (0.0 + sigma * g[i]));
  }
}

// One fused pass accumulating both hypotheses' log-densities. The term for
// coordinate i is NormalLogPdf's expression with log(sigma) precomputed:
//   z = (obs - center) / sigma;  t = -0.5 * z * z - kLogSqrt2Pi - log_sigma
// and each accumulator adds its terms strictly left to right, so the sums
// are bit-identical to the original per-coordinate NormalLogPdf loop.
void LogDensityPairScalar(const float* obs, const float* ca, const float* cb,
                          size_t n, double sigma, double log_sigma,
                          double* out_a, double* out_b) {
  double acc_a = 0.0;
  double acc_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double o = static_cast<double>(obs[i]);
    const double za = (o - static_cast<double>(ca[i])) / sigma;
    const double zb = (o - static_cast<double>(cb[i])) / sigma;
    acc_a += -0.5 * za * za - kLogSqrt2Pi - log_sigma;
    acc_b += -0.5 * zb * zb - kLogSqrt2Pi - log_sigma;
  }
  *out_a = acc_a;
  *out_b = acc_b;
}

void LogDensitySingleScalar(const float* obs, const float* c, size_t n,
                            double sigma, double log_sigma, double* out) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double z =
        (static_cast<double>(obs[i]) - static_cast<double>(c[i])) / sigma;
    acc += -0.5 * z * z - kLogSqrt2Pi - log_sigma;
  }
  *out = acc;
}

#if defined(DPAUDIT_X86_DISPATCH)

// FP legality (same rules as the gradient engine's kernels): floats widen to
// double exactly via cvtps_pd, every sub/div/mul/add is an exact-rounded
// intrinsic (AVX2 has no implicit FMA contraction), the four lane terms are
// the same doubles the scalar loop produces, and they are drained into the
// accumulator in ascending coordinate order — the addition order is frozen.

__attribute__((target("avx2"))) void LogDensityPairAvx2(
    const float* obs, const float* ca, const float* cb, size_t n, double sigma,
    double log_sigma, double* out_a, double* out_b) {
  const __m256d vsig = _mm256_set1_pd(sigma);
  const __m256d vmhalf = _mm256_set1_pd(-0.5);
  const __m256d vc = _mm256_set1_pd(kLogSqrt2Pi);
  const __m256d vl = _mm256_set1_pd(log_sigma);
  double acc_a = 0.0;
  double acc_b = 0.0;
  alignas(32) double ta[4];
  alignas(32) double tb[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d o = _mm256_cvtps_pd(_mm_loadu_ps(obs + i));
    const __m256d za = _mm256_div_pd(
        _mm256_sub_pd(o, _mm256_cvtps_pd(_mm_loadu_ps(ca + i))), vsig);
    const __m256d zb = _mm256_div_pd(
        _mm256_sub_pd(o, _mm256_cvtps_pd(_mm_loadu_ps(cb + i))), vsig);
    _mm256_store_pd(
        ta, _mm256_sub_pd(
                _mm256_sub_pd(
                    _mm256_mul_pd(_mm256_mul_pd(vmhalf, za), za), vc),
                vl));
    _mm256_store_pd(
        tb, _mm256_sub_pd(
                _mm256_sub_pd(
                    _mm256_mul_pd(_mm256_mul_pd(vmhalf, zb), zb), vc),
                vl));
    acc_a += ta[0];
    acc_a += ta[1];
    acc_a += ta[2];
    acc_a += ta[3];
    acc_b += tb[0];
    acc_b += tb[1];
    acc_b += tb[2];
    acc_b += tb[3];
  }
  for (; i < n; ++i) {
    const double o = static_cast<double>(obs[i]);
    const double za = (o - static_cast<double>(ca[i])) / sigma;
    const double zb = (o - static_cast<double>(cb[i])) / sigma;
    acc_a += -0.5 * za * za - kLogSqrt2Pi - log_sigma;
    acc_b += -0.5 * zb * zb - kLogSqrt2Pi - log_sigma;
  }
  *out_a = acc_a;
  *out_b = acc_b;
}

__attribute__((target("avx2"))) void LogDensitySingleAvx2(
    const float* obs, const float* c, size_t n, double sigma, double log_sigma,
    double* out) {
  const __m256d vsig = _mm256_set1_pd(sigma);
  const __m256d vmhalf = _mm256_set1_pd(-0.5);
  const __m256d vc = _mm256_set1_pd(kLogSqrt2Pi);
  const __m256d vl = _mm256_set1_pd(log_sigma);
  double acc = 0.0;
  alignas(32) double t[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d o = _mm256_cvtps_pd(_mm_loadu_ps(obs + i));
    const __m256d z = _mm256_div_pd(
        _mm256_sub_pd(o, _mm256_cvtps_pd(_mm_loadu_ps(c + i))), vsig);
    _mm256_store_pd(
        t, _mm256_sub_pd(
               _mm256_sub_pd(_mm256_mul_pd(_mm256_mul_pd(vmhalf, z), z), vc),
               vl));
    acc += t[0];
    acc += t[1];
    acc += t[2];
    acc += t[3];
  }
  for (; i < n; ++i) {
    const double z =
        (static_cast<double>(obs[i]) - static_cast<double>(c[i])) / sigma;
    acc += -0.5 * z * z - kLogSqrt2Pi - log_sigma;
  }
  *out = acc;
}

__attribute__((target("avx2"))) void ApplyNoiseAvx2(float* v, const double* g,
                                                    size_t n, double sigma) {
  const __m256d vs = _mm256_set1_pd(sigma);
  const __m256d vzero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_cvtps_pd(_mm_loadu_ps(v + i));
    const __m256d noise =
        _mm256_add_pd(vzero, _mm256_mul_pd(vs, _mm256_loadu_pd(g + i)));
    _mm_storeu_ps(v + i, _mm256_cvtpd_ps(_mm256_add_pd(x, noise)));
  }
  for (; i < n; ++i) {
    v[i] = static_cast<float>(v[i] + (0.0 + sigma * g[i]));
  }
}

#endif  // DPAUDIT_X86_DISPATCH

void ApplyNoise(float* v, const double* g, size_t n, double sigma) {
#if defined(DPAUDIT_X86_DISPATCH)
  if (HasAvx2()) {
    ApplyNoiseAvx2(v, g, n, sigma);
    return;
  }
#endif
  ApplyNoiseScalar(v, g, n, sigma);
}

}  // namespace

GaussianMechanism::GaussianMechanism(double sigma) : sigma_(sigma) {
  DPAUDIT_CHECK_GT(sigma_, 0.0);
}

StatusOr<GaussianMechanism> GaussianMechanism::Create(double sigma) {
  if (!(sigma > 0.0) || !std::isfinite(sigma)) {
    return Status::InvalidArgument("sigma must be finite and > 0");
  }
  return GaussianMechanism(sigma);
}

void GaussianMechanism::Perturb(std::vector<float>& values, Rng& rng) const {
#if defined(DPAUDIT_X86_DISPATCH)
  CountDispatch(HasAvx2());
#else
  CountDispatch(false);
#endif
  double noise[kNoiseChunk];
  const size_t n = values.size();
  size_t i = 0;
  while (i < n) {
    const size_t m = std::min(kNoiseChunk, n - i);
    rng.FillGaussian(noise, m);
    ApplyNoise(values.data() + i, noise, m, sigma_);
    i += m;
  }
}

void GaussianMechanism::Perturb(std::vector<double>& values, Rng& rng) const {
  double noise[kNoiseChunk];
  const size_t n = values.size();
  size_t i = 0;
  while (i < n) {
    const size_t m = std::min(kNoiseChunk, n - i);
    rng.FillGaussian(noise, m);
    for (size_t j = 0; j < m; ++j) values[i + j] += 0.0 + sigma_ * noise[j];
    i += m;
  }
}

double GaussianMechanism::PerturbScalar(double value, Rng& rng) const {
  return value + rng.Gaussian(0.0, sigma_);
}

double GaussianMechanism::LogDensity(const std::vector<float>& observed,
                                     const std::vector<float>& center) const {
  DPAUDIT_CHECK_EQ(observed.size(), center.size());
  const double log_sigma = std::log(sigma_);
  double log_p = 0.0;
#if defined(DPAUDIT_X86_DISPATCH)
  if (HasAvx2()) {
    CountDispatch(true);
    LogDensitySingleAvx2(observed.data(), center.data(), observed.size(),
                         sigma_, log_sigma, &log_p);
    return log_p;
  }
#endif
  CountDispatch(false);
  LogDensitySingleScalar(observed.data(), center.data(), observed.size(),
                         sigma_, log_sigma, &log_p);
  return log_p;
}

void GaussianMechanism::LogDensityPair(const std::vector<float>& observed,
                                       const std::vector<float>& center_a,
                                       const std::vector<float>& center_b,
                                       double* log_a, double* log_b) const {
  DPAUDIT_CHECK_EQ(observed.size(), center_a.size());
  DPAUDIT_CHECK_EQ(observed.size(), center_b.size());
  const double log_sigma = std::log(sigma_);
#if defined(DPAUDIT_X86_DISPATCH)
  if (HasAvx2()) {
    CountDispatch(true);
    LogDensityPairAvx2(observed.data(), center_a.data(), center_b.data(),
                       observed.size(), sigma_, log_sigma, log_a, log_b);
    return;
  }
#endif
  CountDispatch(false);
  LogDensityPairScalar(observed.data(), center_a.data(), center_b.data(),
                       observed.size(), sigma_, log_sigma, log_a, log_b);
}

double GaussianMechanism::LogDensityScalar(double observed,
                                           double center) const {
  return NormalLogPdf(observed, center, sigma_);
}

LaplaceMechanism::LaplaceMechanism(double scale) : scale_(scale) {
  DPAUDIT_CHECK_GT(scale_, 0.0);
}

StatusOr<LaplaceMechanism> LaplaceMechanism::Create(double scale) {
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    return Status::InvalidArgument("scale must be finite and > 0");
  }
  return LaplaceMechanism(scale);
}

void LaplaceMechanism::Perturb(std::vector<double>& values, Rng& rng) const {
  for (double& v : values) v += rng.Laplace(scale_);
}

double LaplaceMechanism::PerturbScalar(double value, Rng& rng) const {
  return value + rng.Laplace(scale_);
}

double LaplaceMechanism::LogDensityScalar(double observed,
                                          double center) const {
  return -std::fabs(observed - center) / scale_ - std::log(2.0 * scale_);
}

}  // namespace dpaudit
