#include "dp/mechanism.h"

#include <cmath>

#include "stats/normal.h"
#include "util/logging.h"

namespace dpaudit {

GaussianMechanism::GaussianMechanism(double sigma) : sigma_(sigma) {
  DPAUDIT_CHECK_GT(sigma_, 0.0);
}

StatusOr<GaussianMechanism> GaussianMechanism::Create(double sigma) {
  if (!(sigma > 0.0) || !std::isfinite(sigma)) {
    return Status::InvalidArgument("sigma must be finite and > 0");
  }
  return GaussianMechanism(sigma);
}

void GaussianMechanism::Perturb(std::vector<float>& values, Rng& rng) const {
  for (float& v : values) {
    v = static_cast<float>(v + rng.Gaussian(0.0, sigma_));
  }
}

void GaussianMechanism::Perturb(std::vector<double>& values, Rng& rng) const {
  for (double& v : values) v += rng.Gaussian(0.0, sigma_);
}

double GaussianMechanism::PerturbScalar(double value, Rng& rng) const {
  return value + rng.Gaussian(0.0, sigma_);
}

double GaussianMechanism::LogDensity(const std::vector<float>& observed,
                                     const std::vector<float>& center) const {
  DPAUDIT_CHECK_EQ(observed.size(), center.size());
  double log_p = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    log_p += NormalLogPdf(observed[i], center[i], sigma_);
  }
  return log_p;
}

double GaussianMechanism::LogDensityScalar(double observed,
                                           double center) const {
  return NormalLogPdf(observed, center, sigma_);
}

LaplaceMechanism::LaplaceMechanism(double scale) : scale_(scale) {
  DPAUDIT_CHECK_GT(scale_, 0.0);
}

StatusOr<LaplaceMechanism> LaplaceMechanism::Create(double scale) {
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    return Status::InvalidArgument("scale must be finite and > 0");
  }
  return LaplaceMechanism(scale);
}

void LaplaceMechanism::Perturb(std::vector<double>& values, Rng& rng) const {
  for (double& v : values) v += rng.Laplace(scale_);
}

double LaplaceMechanism::PerturbScalar(double value, Rng& rng) const {
  return value + rng.Laplace(scale_);
}

double LaplaceMechanism::LogDensityScalar(double observed,
                                          double center) const {
  return -std::fabs(observed - center) / scale_ - std::log(2.0 * scale_);
}

}  // namespace dpaudit
