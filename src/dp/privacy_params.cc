#include "dp/privacy_params.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace dpaudit {

Status PrivacyParams::Validate() const {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be finite and > 0");
  }
  if (delta < 0.0 || delta >= 1.0 || !std::isfinite(delta)) {
    return Status::InvalidArgument("delta must be in [0, 1)");
  }
  return Status::Ok();
}

std::string PrivacyParams::ToString() const {
  std::ostringstream os;
  os << "(" << epsilon << ", " << delta << ")-DP";
  return os.str();
}

const char* NeighborModeToString(NeighborMode mode) {
  switch (mode) {
    case NeighborMode::kUnbounded:
      return "unbounded";
    case NeighborMode::kBounded:
      return "bounded";
  }
  return "unknown";
}

const char* SensitivityModeToString(SensitivityMode mode) {
  switch (mode) {
    case SensitivityMode::kGlobal:
      return "GS";
    case SensitivityMode::kLocalHat:
      return "LS";
  }
  return "unknown";
}

double GlobalClipSensitivity(NeighborMode mode, double clip_norm) {
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  switch (mode) {
    case NeighborMode::kUnbounded:
      return clip_norm;
    case NeighborMode::kBounded:
      return 2.0 * clip_norm;
  }
  return clip_norm;
}

}  // namespace dpaudit
