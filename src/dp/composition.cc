#include "dp/composition.h"

namespace dpaudit {

PrivacyParams SequentialCompose(const std::vector<PrivacyParams>& steps) {
  PrivacyParams total;
  for (const PrivacyParams& step : steps) {
    total.epsilon += step.epsilon;
    total.delta += step.delta;
  }
  return total;
}

StatusOr<PrivacyParams> SequentialSplit(const PrivacyParams& total,
                                        size_t steps) {
  DPAUDIT_RETURN_IF_ERROR(total.Validate());
  if (steps == 0) return Status::InvalidArgument("steps must be > 0");
  PrivacyParams per_step;
  per_step.epsilon = total.epsilon / static_cast<double>(steps);
  per_step.delta = total.delta / static_cast<double>(steps);
  return per_step;
}

}  // namespace dpaudit
