// (epsilon, delta) privacy parameters and the neighboring-dataset notions.

#ifndef DPAUDIT_DP_PRIVACY_PARAMS_H_
#define DPAUDIT_DP_PRIVACY_PARAMS_H_

#include <string>

#include "util/status.h"

namespace dpaudit {

/// The DP guarantee (Definition 1). epsilon > 0; delta in [0, 1).
struct PrivacyParams {
  double epsilon = 0.0;
  double delta = 0.0;

  /// OK iff the parameters are a valid DP guarantee.
  Status Validate() const;

  std::string ToString() const;
};

/// Whether neighboring datasets differ by presence (unbounded) or by value
/// (bounded) of one record (Section 2.1).
enum class NeighborMode {
  kUnbounded,  // D' = D minus one record
  kBounded,    // D' = D with one record replaced
};

const char* NeighborModeToString(NeighborMode mode);

/// How DPSGD scales its noise (Section 5.1).
enum class SensitivityMode {
  kGlobal,    // Delta f = C (unbounded) or 2C (bounded)
  kLocalHat,  // Delta f = LS-hat from the dataset-sensitivity heuristic
};

const char* SensitivityModeToString(SensitivityMode mode);

/// Global sensitivity of the clipped per-example gradient SUM under the given
/// neighboring notion: removing a record changes the sum by at most C;
/// replacing one can change it by up to 2C (Algorithm 1 discussion).
double GlobalClipSensitivity(NeighborMode mode, double clip_norm);

}  // namespace dpaudit

#endif  // DPAUDIT_DP_PRIVACY_PARAMS_H_
