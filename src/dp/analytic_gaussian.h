// Analytic (exact) Gaussian-mechanism calibration, after Balle & Wang,
// "Improving the Gaussian Mechanism for Differential Privacy" (ICML 2018).
//
// The classic sigma = Df sqrt(2 ln(1.25/delta)) / eps (paper Eq. 1) is a
// sufficient but loose condition, and its derivation only covers eps <= 1.
// The exact characterization is:
//
//   M is (eps, delta)-DP  <=>
//   Phi(Df/(2 sigma) - eps sigma/Df) - e^eps Phi(-Df/(2 sigma) - eps sigma/Df)
//     <= delta.
//
// This module solves that relation in both directions by bisection. The
// library uses the classic calibration wherever it reproduces the paper and
// offers the analytic one as an extension; the ablation tests quantify how
// much noise Eq. 1 wastes.

#ifndef DPAUDIT_DP_ANALYTIC_GAUSSIAN_H_
#define DPAUDIT_DP_ANALYTIC_GAUSSIAN_H_

#include "dp/privacy_params.h"
#include "util/status.h"

namespace dpaudit {

/// The exact delta achieved by the Gaussian mechanism with noise `sigma` at
/// privacy parameter `epsilon` for a query of the given L2 sensitivity.
/// Requires sigma > 0, epsilon >= 0, sensitivity > 0.
StatusOr<double> AnalyticGaussianDelta(double sigma, double epsilon,
                                       double sensitivity);

/// The minimal sigma such that the Gaussian mechanism is (eps, delta)-DP
/// (exact characterization; always <= the classic Eq. 1 sigma).
StatusOr<double> AnalyticGaussianSigma(const PrivacyParams& params,
                                       double sensitivity);

/// The smallest epsilon certified for noise `sigma` at the given delta
/// (exact inverse; always <= the classic Eq. 2 epsilon).
StatusOr<double> AnalyticGaussianEpsilon(double sigma, double delta,
                                         double sensitivity);

}  // namespace dpaudit

#endif  // DPAUDIT_DP_ANALYTIC_GAUSSIAN_H_
