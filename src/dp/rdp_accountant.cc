#include "dp/rdp_accountant.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/math_util.h"

namespace dpaudit {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool IsIntegerOrder(double alpha) {
  return std::fabs(alpha - std::round(alpha)) < 1e-9 && alpha >= 2.0;
}

// ln C(n, k) via lgamma.
double LogBinomial(size_t n, size_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

}  // namespace

double GaussianRdpEpsilon(double alpha, double sigma, double sensitivity) {
  DPAUDIT_CHECK_GT(alpha, 1.0);
  DPAUDIT_CHECK_GT(sigma, 0.0);
  DPAUDIT_CHECK_GT(sensitivity, 0.0);
  double z = sigma / sensitivity;
  return GaussianRdpEpsilonFromNoiseMultiplier(alpha, z);
}

double GaussianRdpEpsilonFromNoiseMultiplier(double alpha,
                                             double noise_multiplier) {
  DPAUDIT_CHECK_GT(alpha, 1.0);
  DPAUDIT_CHECK_GT(noise_multiplier, 0.0);
  return alpha / (2.0 * noise_multiplier * noise_multiplier);
}

std::vector<double> RdpAccountant::DefaultOrders() {
  std::vector<double> orders = {1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0,
                                3.5,  4.0, 4.5,  5.0, 6.0,  7.0, 8.0,
                                9.0,  10.0, 12.0, 14.0, 16.0, 20.0, 24.0,
                                28.0, 32.0, 48.0, 64.0, 128.0, 256.0, 512.0};
  for (double a = 11.0; a < 64.0; a += 1.0) orders.push_back(a);
  return orders;
}

RdpAccountant::RdpAccountant() : RdpAccountant(DefaultOrders()) {}

RdpAccountant::RdpAccountant(std::vector<double> orders)
    : orders_(std::move(orders)), rdp_(orders_.size(), 0.0) {
  DPAUDIT_CHECK(!orders_.empty());
  for (double a : orders_) DPAUDIT_CHECK_GT(a, 1.0);
}

void RdpAccountant::AddGaussianSteps(double noise_multiplier, size_t count) {
  DPAUDIT_CHECK_GT(noise_multiplier, 0.0);
  for (size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += static_cast<double>(count) *
               GaussianRdpEpsilonFromNoiseMultiplier(orders_[i],
                                                     noise_multiplier);
  }
  steps_ += count;
}

double SampledGaussianRdpEpsilon(size_t alpha, double sampling_rate,
                                 double noise_multiplier) {
  DPAUDIT_CHECK_GE(alpha, 2u);
  DPAUDIT_CHECK_GT(sampling_rate, 0.0);
  DPAUDIT_CHECK_LE(sampling_rate, 1.0);
  DPAUDIT_CHECK_GT(noise_multiplier, 0.0);
  if (sampling_rate == 1.0) {
    return GaussianRdpEpsilonFromNoiseMultiplier(static_cast<double>(alpha),
                                                 noise_multiplier);
  }
  const double log_q = std::log(sampling_rate);
  const double log_1mq = std::log1p(-sampling_rate);
  const double z2 = noise_multiplier * noise_multiplier;
  std::vector<double> log_terms;
  log_terms.reserve(alpha + 1);
  for (size_t j = 0; j <= alpha; ++j) {
    double dj = static_cast<double>(j);
    double log_term = LogBinomial(alpha, j) +
                      static_cast<double>(alpha - j) * log_1mq + dj * log_q +
                      dj * (dj - 1.0) / (2.0 * z2);
    log_terms.push_back(log_term);
  }
  double log_moment = LogSumExp(log_terms);
  // The sum is >= 1 (the j=0 and j=1 terms alone give (1-q)^a + a q (1-q)^
  // {a-1} <= 1 but the moment bound is >= 1); numerical cancellation can dip
  // slightly below 0 — clamp so epsilon stays non-negative.
  return std::max(0.0, log_moment) / (static_cast<double>(alpha) - 1.0);
}

void RdpAccountant::AddSampledGaussianSteps(double sampling_rate,
                                            double noise_multiplier,
                                            size_t count) {
  DPAUDIT_CHECK_GT(sampling_rate, 0.0);
  DPAUDIT_CHECK_LE(sampling_rate, 1.0);
  DPAUDIT_CHECK_GT(noise_multiplier, 0.0);
  if (sampling_rate == 1.0) {
    AddGaussianSteps(noise_multiplier, count);
    return;
  }
  for (size_t i = 0; i < orders_.size(); ++i) {
    if (!IsIntegerOrder(orders_[i])) {
      // No subsampled bound at fractional orders: exclude this order from
      // every future conversion (min over orders stays a valid bound).
      rdp_[i] = kInf;
      continue;
    }
    rdp_[i] += static_cast<double>(count) *
               SampledGaussianRdpEpsilon(
                   static_cast<size_t>(std::llround(orders_[i])),
                   sampling_rate, noise_multiplier);
  }
  steps_ += count;
}

void RdpAccountant::AddRdp(const std::vector<double>& rdp_epsilons) {
  DPAUDIT_CHECK_EQ(rdp_epsilons.size(), orders_.size());
  for (size_t i = 0; i < orders_.size(); ++i) {
    DPAUDIT_CHECK_GE(rdp_epsilons[i], 0.0);
    rdp_[i] += rdp_epsilons[i];
  }
  ++steps_;
}

StatusOr<double> RdpAccountant::GetEpsilon(double delta) const {
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < orders_.size(); ++i) {
    double eps = rdp_[i] + std::log(1.0 / delta) / (orders_[i] - 1.0);
    best = std::min(best, eps);
  }
  return best;
}

StatusOr<double> RdpAccountant::GetOptimalOrder(double delta) const {
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  double best = std::numeric_limits<double>::infinity();
  double best_order = orders_[0];
  for (size_t i = 0; i < orders_.size(); ++i) {
    double eps = rdp_[i] + std::log(1.0 / delta) / (orders_[i] - 1.0);
    if (eps < best) {
      best = eps;
      best_order = orders_[i];
    }
  }
  return best_order;
}

StatusOr<double> RdpAccountant::GetDelta(double epsilon) const {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  double best = 1.0;
  for (size_t i = 0; i < orders_.size(); ++i) {
    // Invert eps = rdp + ln(1/delta)/(alpha-1):
    // delta = exp((alpha - 1) * (rdp - eps)).
    double log_delta = (orders_[i] - 1.0) * (rdp_[i] - epsilon);
    best = std::min(best, std::exp(std::min(0.0, log_delta)));
  }
  return best;
}

StatusOr<double> ComposedEpsilonForNoiseMultiplier(double noise_multiplier,
                                                   double delta,
                                                   size_t steps) {
  if (!(noise_multiplier > 0.0)) {
    return Status::InvalidArgument("noise multiplier must be > 0");
  }
  if (steps == 0) return Status::InvalidArgument("steps must be > 0");
  RdpAccountant accountant;
  accountant.AddGaussianSteps(noise_multiplier, steps);
  return accountant.GetEpsilon(delta);
}

StatusOr<double> ComposedEpsilonForSampledNoiseMultiplier(
    double sampling_rate, double noise_multiplier, double delta,
    size_t steps) {
  if (!(sampling_rate > 0.0 && sampling_rate <= 1.0)) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  if (!(noise_multiplier > 0.0)) {
    return Status::InvalidArgument("noise multiplier must be > 0");
  }
  if (steps == 0) return Status::InvalidArgument("steps must be > 0");
  RdpAccountant accountant;
  accountant.AddSampledGaussianSteps(sampling_rate, noise_multiplier, steps);
  return accountant.GetEpsilon(delta);
}

StatusOr<double> SampledNoiseMultiplierForTargetEpsilon(
    double target_epsilon, double delta, size_t steps, double sampling_rate) {
  if (!(target_epsilon > 0.0)) {
    return Status::InvalidArgument("target epsilon must be > 0");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (steps == 0) return Status::InvalidArgument("steps must be > 0");
  if (!(sampling_rate > 0.0 && sampling_rate <= 1.0)) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  auto eps_at = [&](double z) {
    return ComposedEpsilonForSampledNoiseMultiplier(sampling_rate, z, delta,
                                                    steps)
        .value();
  };
  double lo = 1e-3;
  double hi = 1.0;
  size_t guard = 0;
  while (eps_at(hi) > target_epsilon) {
    hi *= 2.0;
    if (++guard > 60) {
      return Status::OutOfRange("target epsilon too small to calibrate");
    }
  }
  guard = 0;
  while (eps_at(lo) < target_epsilon) {
    lo *= 0.5;
    if (++guard > 60) {
      return Status::OutOfRange("target epsilon too large to calibrate");
    }
  }
  for (int iter = 0; iter < 100; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (eps_at(mid) > target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

StatusOr<double> NoiseMultiplierForTargetEpsilon(double target_epsilon,
                                                 double delta, size_t steps) {
  if (!(target_epsilon > 0.0)) {
    return Status::InvalidArgument("target epsilon must be > 0");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (steps == 0) return Status::InvalidArgument("steps must be > 0");
  // Composed epsilon decreases monotonically in z; bracket then bisect.
  double lo = 1e-3;
  double hi = 1.0;
  auto eps_at = [&](double z) {
    return ComposedEpsilonForNoiseMultiplier(z, delta, steps).value();
  };
  size_t guard = 0;
  while (eps_at(hi) > target_epsilon) {
    hi *= 2.0;
    if (++guard > 60) {
      return Status::OutOfRange("target epsilon too small to calibrate");
    }
  }
  guard = 0;
  while (eps_at(lo) < target_epsilon) {
    lo *= 0.5;
    if (++guard > 60) {
      return Status::OutOfRange("target epsilon too large to calibrate");
    }
  }
  for (int iter = 0; iter < 100; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (eps_at(mid) > target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace dpaudit
