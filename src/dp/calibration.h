// Classic Gaussian-mechanism calibration (Dwork & Roth, Theorem A.1):
// sigma > sensitivity * sqrt(2 ln(1.25/delta)) / epsilon   (paper Eq. 1)
// and its inversions. Valid for epsilon <= 1 in the original analysis; the
// paper applies it as the engineering convention for larger epsilon as well
// (tensorflow-privacy does the same), and we follow the paper.

#ifndef DPAUDIT_DP_CALIBRATION_H_
#define DPAUDIT_DP_CALIBRATION_H_

#include "dp/privacy_params.h"
#include "util/status.h"

namespace dpaudit {

/// The noise standard deviation that makes the Gaussian mechanism
/// (epsilon, delta)-DP for a query of the given L2 sensitivity (Eq. 1).
/// Requires epsilon > 0, 0 < delta < 1, sensitivity > 0.
StatusOr<double> GaussianSigma(const PrivacyParams& params,
                               double sensitivity);

/// The epsilon actually guaranteed by noise `sigma` at the given delta and
/// sensitivity (Eq. 2, the rearrangement used for auditing).
StatusOr<double> GaussianEpsilon(double sigma, double delta,
                                 double sensitivity);

/// sqrt(2 ln(1.25/delta)) — the recurring factor in Theorem 2 and Eq. 15.
double GaussianCalibrationFactor(double delta);

/// Laplace-mechanism scale for pure epsilon-DP: sensitivity / epsilon.
StatusOr<double> LaplaceScale(double epsilon, double sensitivity);

}  // namespace dpaudit

#endif  // DPAUDIT_DP_CALIBRATION_H_
