#include "dp/analytic_gaussian.h"

#include <cmath>

#include "stats/normal.h"

namespace dpaudit {
namespace {

// delta(sigma) for fixed epsilon and sensitivity. Strictly decreasing in
// sigma: more noise, smaller privacy failure mass.
double DeltaAt(double sigma, double epsilon, double sensitivity) {
  double a = sensitivity / (2.0 * sigma);
  double b = epsilon * sigma / sensitivity;
  // e^eps * Phi(-a - b) can be large * tiny; combine in log space to avoid
  // overflow for big epsilon.
  double term1 = NormalCdf(a - b);
  double log_phi = std::log(NormalCdf(-a - b));
  double term2 = std::isinf(log_phi) ? 0.0 : std::exp(epsilon + log_phi);
  return std::max(0.0, term1 - term2);
}

}  // namespace

StatusOr<double> AnalyticGaussianDelta(double sigma, double epsilon,
                                       double sensitivity) {
  if (!(sigma > 0.0)) return Status::InvalidArgument("sigma must be > 0");
  if (!(epsilon >= 0.0)) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("sensitivity must be > 0");
  }
  return DeltaAt(sigma, epsilon, sensitivity);
}

StatusOr<double> AnalyticGaussianSigma(const PrivacyParams& params,
                                       double sensitivity) {
  DPAUDIT_RETURN_IF_ERROR(params.Validate());
  if (params.delta <= 0.0) {
    return Status::InvalidArgument(
        "the Gaussian mechanism requires delta > 0");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("sensitivity must be > 0");
  }
  // Bracket: delta(sigma) -> 1/2-ish as sigma -> 0 and -> 0 as sigma -> inf.
  double lo = 1e-6 * sensitivity;
  double hi = sensitivity;
  size_t guard = 0;
  while (DeltaAt(hi, params.epsilon, sensitivity) > params.delta) {
    hi *= 2.0;
    if (++guard > 200) return Status::OutOfRange("sigma bracket failed");
  }
  guard = 0;
  while (DeltaAt(lo, params.epsilon, sensitivity) < params.delta) {
    lo *= 0.5;
    if (++guard > 200) break;  // delta already below target at tiny sigma
  }
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (DeltaAt(mid, params.epsilon, sensitivity) > params.delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;  // smallest sigma found that satisfies the delta constraint
}

StatusOr<double> AnalyticGaussianEpsilon(double sigma, double delta,
                                         double sensitivity) {
  if (!(sigma > 0.0)) return Status::InvalidArgument("sigma must be > 0");
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("sensitivity must be > 0");
  }
  // delta(eps) is strictly decreasing in eps for fixed sigma.
  if (DeltaAt(sigma, 0.0, sensitivity) <= delta) return 0.0;
  double lo = 0.0;
  double hi = 1.0;
  size_t guard = 0;
  while (DeltaAt(sigma, hi, sensitivity) > delta) {
    hi *= 2.0;
    if (++guard > 200) return Status::OutOfRange("epsilon bracket failed");
  }
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (DeltaAt(sigma, mid, sensitivity) > delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace dpaudit
