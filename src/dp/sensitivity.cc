#include "dp/sensitivity.h"

#include <cmath>

#include "util/logging.h"

namespace dpaudit {

double ClipToNorm(std::vector<float>& v, double clip_norm) {
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  double sq = 0.0;
  for (float x : v) sq += static_cast<double>(x) * x;
  double norm = std::sqrt(sq);
  if (norm > clip_norm) {
    float scale = static_cast<float>(clip_norm / norm);
    for (float& x : v) x *= scale;
  }
  return norm;
}

double GradientDistance(const std::vector<float>& a,
                        const std::vector<float>& b) {
  DPAUDIT_CHECK_EQ(a.size(), b.size());
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

}  // namespace dpaudit
