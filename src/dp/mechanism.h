// Differentially private noise mechanisms.
//
// Each mechanism both perturbs query outputs and exposes the log-density of
// an observed output under a hypothesized true value — the quantity the DP
// adversary A_DI needs for its posterior-belief computation (Lemma 1).

#ifndef DPAUDIT_DP_MECHANISM_H_
#define DPAUDIT_DP_MECHANISM_H_

#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace dpaudit {

/// The Gaussian mechanism M(x) = x + N(0, sigma^2 I). The (epsilon, delta)
/// guarantee follows from dp/calibration.h given the query's L2 sensitivity.
class GaussianMechanism {
 public:
  /// Requires sigma > 0. Use GaussianMechanism::Create for Status-based
  /// validation of untrusted input.
  explicit GaussianMechanism(double sigma);

  static StatusOr<GaussianMechanism> Create(double sigma);

  double sigma() const { return sigma_; }

  /// Adds i.i.d. N(0, sigma^2) to each coordinate in place.
  void Perturb(std::vector<float>& values, Rng& rng) const;
  void Perturb(std::vector<double>& values, Rng& rng) const;

  /// Scalar convenience: value + N(0, sigma^2).
  double PerturbScalar(double value, Rng& rng) const;

  /// log Pr[M(center) = observed] for the multidimensional output, i.e. the
  /// sum of per-coordinate Gaussian log-densities. Sizes must match.
  double LogDensity(const std::vector<float>& observed,
                    const std::vector<float>& center) const;
  double LogDensityScalar(double observed, double center) const;

  /// Fused log-likelihood pass: evaluates LogDensity against two hypothesis
  /// centers in a single sweep over `observed` (the DP adversary's per-step
  /// workload, Lemma 1). Bit-identical to two separate LogDensity calls: the
  /// per-coordinate terms use the same exact-rounded double arithmetic and
  /// each accumulator keeps its frozen left-to-right addition order; only
  /// the constant log(sigma) is hoisted out of the loop (std::log is
  /// deterministic, so the hoisted value is the one the scalar loop
  /// recomputes). Runtime-dispatches an AVX2 kernel when available.
  void LogDensityPair(const std::vector<float>& observed,
                      const std::vector<float>& center_a,
                      const std::vector<float>& center_b, double* log_a,
                      double* log_b) const;

 private:
  double sigma_;
};

/// The Laplace mechanism M(x) = x + Lap(scale) per coordinate; epsilon-DP
/// when scale = l1-sensitivity / epsilon. Included for the Lee-Clifton
/// scalar analyses the paper builds on (Section 4.1 proof part (i)).
class LaplaceMechanism {
 public:
  explicit LaplaceMechanism(double scale);

  static StatusOr<LaplaceMechanism> Create(double scale);

  double scale() const { return scale_; }

  void Perturb(std::vector<double>& values, Rng& rng) const;
  double PerturbScalar(double value, Rng& rng) const;

  double LogDensityScalar(double observed, double center) const;

 private:
  double scale_;
};

}  // namespace dpaudit

#endif  // DPAUDIT_DP_MECHANISM_H_
