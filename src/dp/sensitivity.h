// Sensitivity helpers: L2 clipping and gradient-space sensitivities.

#ifndef DPAUDIT_DP_SENSITIVITY_H_
#define DPAUDIT_DP_SENSITIVITY_H_

#include <vector>

namespace dpaudit {

/// Scales `v` to L2 norm at most `clip_norm` (Abadi et al. clipping:
/// v * min(1, C / ||v||)). Returns the pre-clip norm.
double ClipToNorm(std::vector<float>& v, double clip_norm);

/// ||a - b||_2 of two flat gradient vectors (sizes must match). This is the
/// empirical local sensitivity of the clipped-gradient-sum query for a
/// concrete neighboring pair (Definition 3 evaluated at D, D').
double GradientDistance(const std::vector<float>& a,
                        const std::vector<float>& b);

}  // namespace dpaudit

#endif  // DPAUDIT_DP_SENSITIVITY_H_
