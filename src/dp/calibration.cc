#include "dp/calibration.h"

#include <cmath>

#include "util/logging.h"

namespace dpaudit {

double GaussianCalibrationFactor(double delta) {
  DPAUDIT_CHECK_GT(delta, 0.0);
  DPAUDIT_CHECK_LT(delta, 1.0);
  return std::sqrt(2.0 * std::log(1.25 / delta));
}

StatusOr<double> GaussianSigma(const PrivacyParams& params,
                               double sensitivity) {
  DPAUDIT_RETURN_IF_ERROR(params.Validate());
  if (params.delta <= 0.0) {
    return Status::InvalidArgument(
        "the Gaussian mechanism requires delta > 0");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("sensitivity must be > 0");
  }
  return sensitivity * GaussianCalibrationFactor(params.delta) /
         params.epsilon;
}

StatusOr<double> GaussianEpsilon(double sigma, double delta,
                                 double sensitivity) {
  if (!(sigma > 0.0)) return Status::InvalidArgument("sigma must be > 0");
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("sensitivity must be > 0");
  }
  return sensitivity * GaussianCalibrationFactor(delta) / sigma;
}

StatusOr<double> LaplaceScale(double epsilon, double sensitivity) {
  if (!(epsilon > 0.0)) return Status::InvalidArgument("epsilon must be > 0");
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("sensitivity must be > 0");
  }
  return sensitivity / epsilon;
}

}  // namespace dpaudit
