// Renyi-DP accountant for the (non-subsampled) Gaussian mechanism.
//
// Mirrors the mathematics of the tensorflow-privacy accountant the paper
// uses, specialized to batch gradient descent (sampling rate q = 1, Section
// 6.1): each step with noise multiplier z = sigma / sensitivity contributes
// eps_RDP(alpha) = alpha / (2 z^2) (paper Eq. 3 with Delta f normalized out),
// RDP composes additively, and an (alpha, eps_RDP) guarantee converts to
// (eps_RDP + ln(1/delta)/(alpha - 1), delta)-DP (Mironov 2017). The accountant
// tracks a grid of orders and reports the best conversion.

#ifndef DPAUDIT_DP_RDP_ACCOUNTANT_H_
#define DPAUDIT_DP_RDP_ACCOUNTANT_H_

#include <vector>

#include "util/status.h"

namespace dpaudit {

/// Gaussian RDP at one order: alpha * Delta_f^2 / (2 sigma^2) (Eq. 3).
double GaussianRdpEpsilon(double alpha, double sigma, double sensitivity);

/// Same with sensitivity folded into the noise multiplier z = sigma / Df.
double GaussianRdpEpsilonFromNoiseMultiplier(double alpha,
                                             double noise_multiplier);

/// RDP of the Poisson-subsampled Gaussian mechanism (Mironov, Talwar, Zhang
/// 2019) at INTEGER order alpha >= 2, sampling rate q in (0, 1], noise
/// multiplier z > 0:
///   eps(alpha) = ln( sum_{j=0}^{alpha} C(alpha,j) (1-q)^{alpha-j} q^j
///                    exp(j (j-1) / (2 z^2)) ) / (alpha - 1).
/// Computed in log space; reduces to alpha/(2 z^2) at q = 1. This is the
/// bound tensorflow-privacy applies to minibatch DPSGD (Section 6.1's
/// "RDP composition takes sampling into consideration").
double SampledGaussianRdpEpsilon(size_t alpha, double sampling_rate,
                                 double noise_multiplier);

/// Accumulates RDP over a sequence of mechanism invocations and converts to
/// (epsilon, delta)-DP.
class RdpAccountant {
 public:
  /// Uses the tensorflow-privacy default order grid.
  RdpAccountant();

  /// Uses a caller-provided grid of orders; each must be > 1.
  explicit RdpAccountant(std::vector<double> orders);

  static std::vector<double> DefaultOrders();

  /// Records `count` Gaussian steps with the given noise multiplier
  /// z = sigma / sensitivity (> 0).
  void AddGaussianSteps(double noise_multiplier, size_t count = 1);

  /// Records `count` Poisson-subsampled Gaussian steps at sampling rate q.
  /// The subsampled bound is only available at integer orders; non-integer
  /// orders in the grid are excluded (set to +inf) from then on, which keeps
  /// every reported epsilon a valid upper bound.
  void AddSampledGaussianSteps(double sampling_rate, double noise_multiplier,
                               size_t count = 1);

  /// Records one mechanism invocation from explicit per-order RDP values
  /// (parallel to orders()). Used for heterogeneous-noise auditing where each
  /// step has its own effective noise multiplier.
  void AddRdp(const std::vector<double>& rdp_epsilons);

  const std::vector<double>& orders() const { return orders_; }
  const std::vector<double>& accumulated_rdp() const { return rdp_; }
  size_t steps() const { return steps_; }

  /// The smallest epsilon such that the accumulated RDP implies
  /// (epsilon, delta)-DP, minimizing over the order grid.
  StatusOr<double> GetEpsilon(double delta) const;

  /// The order achieving GetEpsilon(delta).
  StatusOr<double> GetOptimalOrder(double delta) const;

  /// The smallest delta such that the accumulated RDP implies
  /// (epsilon, delta)-DP: delta = min_alpha exp((alpha-1)(rdp - epsilon)).
  StatusOr<double> GetDelta(double epsilon) const;

 private:
  std::vector<double> orders_;
  std::vector<double> rdp_;
  size_t steps_ = 0;
};

/// The constant per-step noise multiplier z such that `steps` Gaussian
/// releases compose (via this accountant) to exactly (target_epsilon,
/// delta)-DP. Solved by bisection; this is how the experiments turn a
/// rho_beta-derived total epsilon into the training noise scale.
StatusOr<double> NoiseMultiplierForTargetEpsilon(double target_epsilon,
                                                 double delta, size_t steps);

/// The total epsilon spent by `steps` Gaussian releases at noise multiplier
/// z, at the given delta (convenience wrapper).
StatusOr<double> ComposedEpsilonForNoiseMultiplier(double noise_multiplier,
                                                   double delta, size_t steps);

/// Subsampled variants of the two helpers above, for minibatch DPSGD with
/// Poisson sampling rate q in (0, 1].
StatusOr<double> ComposedEpsilonForSampledNoiseMultiplier(
    double sampling_rate, double noise_multiplier, double delta,
    size_t steps);
StatusOr<double> SampledNoiseMultiplierForTargetEpsilon(
    double target_epsilon, double delta, size_t steps, double sampling_rate);

}  // namespace dpaudit

#endif  // DPAUDIT_DP_RDP_ACCOUNTANT_H_
