// Sequential (basic) composition — the baseline the paper compares RDP
// composition against in Section 5.2.

#ifndef DPAUDIT_DP_COMPOSITION_H_
#define DPAUDIT_DP_COMPOSITION_H_

#include <cstddef>
#include <vector>

#include "dp/privacy_params.h"
#include "util/status.h"

namespace dpaudit {

/// Basic composition: k releases of (eps_i, delta_i)-DP mechanisms give
/// (sum eps_i, sum delta_i)-DP.
PrivacyParams SequentialCompose(const std::vector<PrivacyParams>& steps);

/// Splits a total guarantee evenly over k steps under basic composition:
/// each step gets (eps/k, delta/k).
StatusOr<PrivacyParams> SequentialSplit(const PrivacyParams& total,
                                        size_t steps);

}  // namespace dpaudit

#endif  // DPAUDIT_DP_COMPOSITION_H_
