// Max pooling.

#ifndef DPAUDIT_NN_POOLING_H_
#define DPAUDIT_NN_POOLING_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace dpaudit {

/// 2x2-style max pooling with stride equal to pool size, valid mode (a
/// trailing row/column that does not fill a window is dropped, matching
/// common framework defaults). Input [C, H, W] -> [C, H/p, W/p].
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(size_t pool);

  void ForwardInto(const Tensor& input, Tensor* output) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  bool SupportsBatchLanes() const override { return true; }
  void ForwardBatchInto(const Tensor& input, size_t lanes,
                        Tensor* output) override;
  void BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                         Tensor* grad_input) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<MaxPool2d>(pool_);
  }
  std::string Name() const override;

 private:
  size_t pool_;
  std::vector<size_t> argmax_;  // flat input index chosen per output cell
  std::vector<size_t> input_shape_;
  std::vector<int> off_scratch_;  // plane-relative argmax lanes (AVX2 path)
  // Batched lane state: example-flat argmax per (cell, lane), int32 since
  // the planes here are far below 2^31 elements.
  std::vector<int> lane_argmax_;
  std::vector<size_t> batch_input_shape_;
  size_t batch_lanes_ = 0;
};

}  // namespace dpaudit

#endif  // DPAUDIT_NN_POOLING_H_
