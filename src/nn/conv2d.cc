#include "nn/conv2d.h"

#include <cmath>
#include <sstream>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "tensor/tensor.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/simd.h"

namespace dpaudit {

namespace {

#if defined(DPAUDIT_X86_DISPATCH)

// AVX2 variants of the 3x3 kernels, dispatched at runtime. They use explicit
// mul-then-add intrinsics (never contracted to FMA) and map vector lanes to
// accumulators that are independent in the scalar code, so every accumulator
// sees the same additions in the same order and results are bit-identical to
// the portable path.

// Full forward plane set for a 3x3 kernel. Per output element the additions
// are bias first, then input channels ascending with their taps in (ky, kx)
// order — the same chain as the scalar path; hoisting the nine broadcast
// weights out of the row loop only changes how often they are loaded.
__attribute__((target("avx2"))) void ForwardK3Avx2(
    const float* in, const float* weights, const float* bias, float* out,
    size_t C, size_t F, size_t h, size_t w, size_t oh, size_t ow) {
  for (size_t f = 0; f < F; ++f) {
    float* out_plane = out + f * oh * ow;
    const float bf = bias[f];
    for (size_t i = 0; i < oh * ow; ++i) out_plane[i] = bf;
    for (size_t c = 0; c < C; ++c) {
      const float* in_plane = in + c * h * w;
      const float* kp = weights + (f * C + c) * 9;
      const __m256 k00 = _mm256_set1_ps(kp[0]), k01 = _mm256_set1_ps(kp[1]),
                   k02 = _mm256_set1_ps(kp[2]), k10 = _mm256_set1_ps(kp[3]),
                   k11 = _mm256_set1_ps(kp[4]), k12 = _mm256_set1_ps(kp[5]),
                   k20 = _mm256_set1_ps(kp[6]), k21 = _mm256_set1_ps(kp[7]),
                   k22 = _mm256_set1_ps(kp[8]);
      for (size_t y = 0; y < oh; ++y) {
        const float* r0 = in_plane + y * w;
        const float* r1 = r0 + w;
        const float* r2 = r1 + w;
        float* out_row = out_plane + y * ow;
        size_t x = 0;
        for (; x + 8 <= ow; x += 8) {
          __m256 acc = _mm256_loadu_ps(out_row + x);
          acc = _mm256_add_ps(acc, _mm256_mul_ps(k00, _mm256_loadu_ps(r0 + x)));
          acc = _mm256_add_ps(acc,
                              _mm256_mul_ps(k01, _mm256_loadu_ps(r0 + x + 1)));
          acc = _mm256_add_ps(acc,
                              _mm256_mul_ps(k02, _mm256_loadu_ps(r0 + x + 2)));
          acc = _mm256_add_ps(acc, _mm256_mul_ps(k10, _mm256_loadu_ps(r1 + x)));
          acc = _mm256_add_ps(acc,
                              _mm256_mul_ps(k11, _mm256_loadu_ps(r1 + x + 1)));
          acc = _mm256_add_ps(acc,
                              _mm256_mul_ps(k12, _mm256_loadu_ps(r1 + x + 2)));
          acc = _mm256_add_ps(acc, _mm256_mul_ps(k20, _mm256_loadu_ps(r2 + x)));
          acc = _mm256_add_ps(acc,
                              _mm256_mul_ps(k21, _mm256_loadu_ps(r2 + x + 1)));
          acc = _mm256_add_ps(acc,
                              _mm256_mul_ps(k22, _mm256_loadu_ps(r2 + x + 2)));
          _mm256_storeu_ps(out_row + x, acc);
        }
        for (; x < ow; ++x) {
          float acc = out_row[x];
          acc += kp[0] * r0[x];
          acc += kp[1] * r0[x + 1];
          acc += kp[2] * r0[x + 2];
          acc += kp[3] * r1[x];
          acc += kp[4] * r1[x + 1];
          acc += kp[5] * r1[x + 2];
          acc += kp[6] * r2[x];
          acc += kp[7] * r2[x + 1];
          acc += kp[8] * r2[x + 2];
          out_row[x] = acc;
        }
      }
    }
  }
}

// Widens a float buffer to double (exact, order-preserving). The weight
// gradient kernels below read the widened planes so their inner loops carry
// no float->double converts.
__attribute__((target("avx2"))) void WidenToDoubleAvx2(const float* src,
                                                       double* dst, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_cvtps_pd(_mm_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

// Weight gradients of one (filter, channel) pair from pre-widened planes.
// Lanes 0..2 of each vector hold the three taps of one kernel row; lane 3
// accumulates whatever lies one past the tap window (in-plane data or the
// caller's zero padding) and is discarded, which lets the x loop run the full
// row without an epilogue. Each lane's chain advances in (y, x) order like
// the scalar code.
__attribute__((target("avx2"))) void WgradK3Avx2(const double* g_plane,
                                                 const double* in_plane,
                                                 size_t oh, size_t ow,
                                                 size_t w, float* dw9) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  for (size_t y = 0; y < oh; ++y) {
    const double* g_row = g_plane + y * ow;
    const double* r0 = in_plane + y * w;
    const double* r1 = r0 + w;
    const double* r2 = r1 + w;
    for (size_t x = 0; x < ow; ++x) {
      const __m256d gv = _mm256_broadcast_sd(g_row + x);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(gv, _mm256_loadu_pd(r0 + x)));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(gv, _mm256_loadu_pd(r1 + x)));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(gv, _mm256_loadu_pd(r2 + x)));
    }
  }
  double l0[4], l1[4], l2[4];
  _mm256_storeu_pd(l0, a0);
  _mm256_storeu_pd(l1, a1);
  _mm256_storeu_pd(l2, a2);
  dw9[0] += static_cast<float>(l0[0]);
  dw9[1] += static_cast<float>(l0[1]);
  dw9[2] += static_cast<float>(l0[2]);
  dw9[3] += static_cast<float>(l1[0]);
  dw9[4] += static_cast<float>(l1[1]);
  dw9[5] += static_cast<float>(l1[2]);
  dw9[6] += static_cast<float>(l2[0]);
  dw9[7] += static_cast<float>(l2[1]);
  dw9[8] += static_cast<float>(l2[2]);
}

// Two filters against one input channel per sweep. The 3x3 sums are
// latency-bound on their serial add chains, so interleaving the six
// independent chains of two filters nearly doubles throughput while sharing
// the input loads; each individual chain is unchanged.
__attribute__((target("avx2"))) void WgradK3x2Avx2(
    const double* g_a, const double* g_b, const double* in_plane, size_t oh,
    size_t ow, size_t w, float* dw_a, float* dw_b) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d b0 = _mm256_setzero_pd();
  __m256d b1 = _mm256_setzero_pd();
  __m256d b2 = _mm256_setzero_pd();
  for (size_t y = 0; y < oh; ++y) {
    const double* ga = g_a + y * ow;
    const double* gb = g_b + y * ow;
    const double* r0 = in_plane + y * w;
    const double* r1 = r0 + w;
    const double* r2 = r1 + w;
    for (size_t x = 0; x < ow; ++x) {
      const __m256d ga_v = _mm256_broadcast_sd(ga + x);
      const __m256d gb_v = _mm256_broadcast_sd(gb + x);
      const __m256d v0 = _mm256_loadu_pd(r0 + x);
      const __m256d v1 = _mm256_loadu_pd(r1 + x);
      const __m256d v2 = _mm256_loadu_pd(r2 + x);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(ga_v, v0));
      b0 = _mm256_add_pd(b0, _mm256_mul_pd(gb_v, v0));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(ga_v, v1));
      b1 = _mm256_add_pd(b1, _mm256_mul_pd(gb_v, v1));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(ga_v, v2));
      b2 = _mm256_add_pd(b2, _mm256_mul_pd(gb_v, v2));
    }
  }
  double l[4];
  _mm256_storeu_pd(l, a0);
  dw_a[0] += static_cast<float>(l[0]);
  dw_a[1] += static_cast<float>(l[1]);
  dw_a[2] += static_cast<float>(l[2]);
  _mm256_storeu_pd(l, a1);
  dw_a[3] += static_cast<float>(l[0]);
  dw_a[4] += static_cast<float>(l[1]);
  dw_a[5] += static_cast<float>(l[2]);
  _mm256_storeu_pd(l, a2);
  dw_a[6] += static_cast<float>(l[0]);
  dw_a[7] += static_cast<float>(l[1]);
  dw_a[8] += static_cast<float>(l[2]);
  _mm256_storeu_pd(l, b0);
  dw_b[0] += static_cast<float>(l[0]);
  dw_b[1] += static_cast<float>(l[1]);
  dw_b[2] += static_cast<float>(l[2]);
  _mm256_storeu_pd(l, b1);
  dw_b[3] += static_cast<float>(l[0]);
  dw_b[4] += static_cast<float>(l[1]);
  dw_b[5] += static_cast<float>(l[2]);
  _mm256_storeu_pd(l, b2);
  dw_b[6] += static_cast<float>(l[0]);
  dw_b[7] += static_cast<float>(l[1]);
  dw_b[8] += static_cast<float>(l[2]);
}

// Full grad-input gather for a 3x3 kernel (requires ow >= 3). Per element
// the taps apply in (f, ky, kx) ascending order — the scatter reference's
// traversal with c fixed — with all kx taps of a row fused into one pass.
__attribute__((target("avx2"))) void GradInputK3Avx2(
    const float* g, const float* weights, float* gi, size_t C, size_t F,
    size_t h, size_t w, size_t oh, size_t ow) {
  for (size_t c = 0; c < C; ++c) {
    float* gi_plane = gi + c * h * w;
    for (size_t iy = 0; iy < h; ++iy) {
      float* gi_row = gi_plane + iy * w;
      const size_t ky_lo = iy >= oh ? iy - (oh - 1) : 0;
      const size_t ky_hi = iy < 2 ? iy : 2;
      for (size_t f = 0; f < F; ++f) {
        const float* g_base = g + f * oh * ow;
        const float* kp = weights + (f * C + c) * 9;
        for (size_t ky = ky_lo; ky <= ky_hi; ++ky) {
          const float* g_row = g_base + (iy - ky) * ow;
          const float k0 = kp[ky * 3];
          const float k1 = kp[ky * 3 + 1];
          const float k2 = kp[ky * 3 + 2];
          // Left edge: ix = 0 sees only kx = 0, ix = 1 sees kx = 0, 1.
          gi_row[0] += k0 * g_row[0];
          gi_row[1] += k0 * g_row[1];
          gi_row[1] += k1 * g_row[0];
          const __m256 v0 = _mm256_set1_ps(k0);
          const __m256 v1 = _mm256_set1_ps(k1);
          const __m256 v2 = _mm256_set1_ps(k2);
          size_t ix = 2;
          for (; ix + 8 <= ow; ix += 8) {
            __m256 acc = _mm256_loadu_ps(gi_row + ix);
            acc =
                _mm256_add_ps(acc, _mm256_mul_ps(v0, _mm256_loadu_ps(g_row + ix)));
            acc = _mm256_add_ps(
                acc, _mm256_mul_ps(v1, _mm256_loadu_ps(g_row + ix - 1)));
            acc = _mm256_add_ps(
                acc, _mm256_mul_ps(v2, _mm256_loadu_ps(g_row + ix - 2)));
            _mm256_storeu_ps(gi_row + ix, acc);
          }
          for (; ix < ow; ++ix) {
            float acc = gi_row[ix];
            acc += k0 * g_row[ix];
            acc += k1 * g_row[ix - 1];
            acc += k2 * g_row[ix - 2];
            gi_row[ix] = acc;
          }
          // Right edge: ix = ow sees kx = 1, 2 and ix = ow + 1 only kx = 2.
          gi_row[ow] += k1 * g_row[ow - 1];
          gi_row[ow] += k2 * g_row[ow - 2];
          gi_row[ow + 1] += k2 * g_row[ow - 1];
        }
      }
    }
  }
}

#endif  // DPAUDIT_X86_DISPATCH

// ---- Batched lane kernels --------------------------------------------------
//
// Bodies shared between the portable path (runtime `lanes`, runtime kernel
// size) and the AVX2 wrappers (lanes pinned to 8, kernel pinned to 3 so the
// tap loops fully unroll and each output element's lane vector stays in one
// ymm register across all taps). Lanes are independent examples; per lane the
// addition chains are exactly the scalar ones — forward: bias first, then
// input channels ascending with taps in (ky, kx) order; weight grad: one
// double accumulator per (tap, lane) advanced in (y, x) order; grad input:
// per element taps in (f, ky, kx) ascending order; bias grad: plane in index
// order — so per-lane results are bit-identical.

DPAUDIT_LANE_INLINE void ConvForwardLanesBody(
    const float* __restrict__ in, const float* __restrict__ weights,
    const float* __restrict__ bias, float* __restrict__ out, size_t C,
    size_t F, size_t k, size_t h, size_t w, size_t oh, size_t ow,
    size_t lanes) {
  // Each output element's lane accumulator lives in a local array (one ymm
  // register once `lanes` is pinned to 8) across all channels and taps: one
  // store per element instead of a load+store round trip per tap. The chain
  // is still bias first, then channels ascending with taps in (ky, kx) order.
  for (size_t f = 0; f < F; ++f) {
    float* out_plane = out + f * oh * ow * lanes;
    const float bf = bias[f];
    const float* kf = weights + f * C * k * k;
    for (size_t y = 0; y < oh; ++y) {
      float* out_row = out_plane + y * ow * lanes;
      for (size_t x = 0; x < ow; ++x) {
        float acc[kMaxBatchLanes];
        for (size_t l = 0; l < lanes; ++l) acc[l] = bf;
        for (size_t c = 0; c < C; ++c) {
          const float* in_plane = in + c * h * w * lanes;
          const float* kp = kf + c * k * k;
          for (size_t ky = 0; ky < k; ++ky) {
            const float* iv = in_plane + ((y + ky) * w + x) * lanes;
            const float* krow = kp + ky * k;
            for (size_t kx = 0; kx < k; ++kx) {
              const float kv = krow[kx];
              const float* ivx = iv + kx * lanes;
              for (size_t l = 0; l < lanes; ++l) acc[l] += kv * ivx[l];
            }
          }
        }
        float* ov = out_row + x * lanes;
        for (size_t l = 0; l < lanes; ++l) ov[l] = acc[l];
      }
    }
  }
}

DPAUDIT_LANE_INLINE void ConvBiasGradLanesBody(const float* g, float* dbias,
                                               size_t F, size_t n,
                                               size_t lanes) {
  for (size_t f = 0; f < F; ++f) {
    const float* gp = g + f * n * lanes;
    double acc[kMaxBatchLanes];
    for (size_t l = 0; l < lanes; ++l) acc[l] = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float* gv = gp + i * lanes;
      for (size_t l = 0; l < lanes; ++l) acc[l] += gv[l];
    }
    for (size_t l = 0; l < lanes; ++l) {
      dbias[f * lanes + l] = static_cast<float>(acc[l]);
    }
  }
}

DPAUDIT_LANE_INLINE void ConvWgradLanesBody(
    const float* __restrict__ g, const float* __restrict__ in,
    float* __restrict__ dw, double* __restrict__ wacc, size_t C, size_t F,
    size_t k, size_t h, size_t w, size_t oh, size_t ow, size_t lanes) {
  const size_t kk = k * k;
  for (size_t f = 0; f < F; ++f) {
    const float* g_plane = g + f * oh * ow * lanes;
    for (size_t c = 0; c < C; ++c) {
      const float* in_plane = in + c * h * w * lanes;
      float* dwt = dw + (f * C + c) * kk * lanes;
      if (k == 3) {
        // One kernel row per sweep: the row's three tap accumulator groups
        // (3 * lanes doubles) stay in registers across the whole (y, x)
        // sweep. Each tap's chain still advances in (y, x) order, so the
        // sums match the tap-at-a-time reference bit for bit.
        for (size_t ky = 0; ky < 3; ++ky) {
          double acc[3 * kMaxBatchLanes];
          for (size_t i = 0; i < 3 * lanes; ++i) acc[i] = 0.0;
          for (size_t y = 0; y < oh; ++y) {
            const float* g_row = g_plane + y * ow * lanes;
            const float* in_row = in_plane + (y + ky) * w * lanes;
            for (size_t x = 0; x < ow; ++x) {
              const float* gv = g_row + x * lanes;
              const float* iv = in_row + x * lanes;
              for (size_t kx = 0; kx < 3; ++kx) {
                double* a = acc + kx * lanes;
                const float* ivx = iv + kx * lanes;
                for (size_t l = 0; l < lanes; ++l) {
                  a[l] += static_cast<double>(gv[l]) *
                          static_cast<double>(ivx[l]);
                }
              }
            }
          }
          for (size_t kx = 0; kx < 3; ++kx) {
            for (size_t l = 0; l < lanes; ++l) {
              dwt[(ky * 3 + kx) * lanes + l] =
                  static_cast<float>(acc[kx * lanes + l]);
            }
          }
        }
        continue;
      }
      for (size_t i = 0; i < kk * lanes; ++i) wacc[i] = 0.0;
      for (size_t y = 0; y < oh; ++y) {
        for (size_t x = 0; x < ow; ++x) {
          const float* gv = g_plane + (y * ow + x) * lanes;
          for (size_t ky = 0; ky < k; ++ky) {
            const float* iv = in_plane + ((y + ky) * w + x) * lanes;
            for (size_t kx = 0; kx < k; ++kx) {
              double* a = wacc + (ky * k + kx) * lanes;
              const float* ivx = iv + kx * lanes;
              for (size_t l = 0; l < lanes; ++l) {
                a[l] += static_cast<double>(gv[l]) *
                        static_cast<double>(ivx[l]);
              }
            }
          }
        }
      }
      for (size_t i = 0; i < kk * lanes; ++i) {
        dwt[i] = static_cast<float>(wacc[i]);
      }
    }
  }
}

DPAUDIT_LANE_INLINE void ConvGradInputLanesBody(
    const float* __restrict__ g, const float* __restrict__ weights,
    float* __restrict__ gi, size_t C, size_t F, size_t k, size_t h, size_t w,
    size_t oh, size_t ow, size_t lanes) {
  const size_t kk = k * k;
  // Gather form with the whole per-element tap sum held in a local lane
  // accumulator: one store per input element, taps applied in (f, ky, kx)
  // ascending order — the scatter reference's traversal with c fixed.
  for (size_t c = 0; c < C; ++c) {
    float* gi_plane = gi + c * h * w * lanes;
    for (size_t iy = 0; iy < h; ++iy) {
      float* gi_row = gi_plane + iy * w * lanes;
      const size_t ky_lo = iy >= oh ? iy - (oh - 1) : 0;
      const size_t ky_hi = iy < k - 1 ? iy : k - 1;
      for (size_t ix = 0; ix < w; ++ix) {
        const size_t kx_lo = ix >= ow ? ix - (ow - 1) : 0;
        const size_t kx_hi = ix < k - 1 ? ix : k - 1;
        float acc[kMaxBatchLanes];
        for (size_t l = 0; l < lanes; ++l) acc[l] = 0.0f;
        for (size_t f = 0; f < F; ++f) {
          const float* g_base = g + f * oh * ow * lanes;
          const float* kp = weights + (f * C + c) * kk;
          for (size_t ky = ky_lo; ky <= ky_hi; ++ky) {
            const float* g_row = g_base + (iy - ky) * ow * lanes;
            const float* krow = kp + ky * k;
            for (size_t kx = kx_lo; kx <= kx_hi; ++kx) {
              const float kv = krow[kx];
              const float* gvx = g_row + (ix - kx) * lanes;
              for (size_t l = 0; l < lanes; ++l) acc[l] += kv * gvx[l];
            }
          }
        }
        float* giv = gi_row + ix * lanes;
        for (size_t l = 0; l < lanes; ++l) giv[l] = acc[l];
      }
    }
  }
}

#if defined(DPAUDIT_X86_DISPATCH)
__attribute__((target("avx2"))) void ConvForwardLanes8K3Avx2(
    const float* in, const float* weights, const float* bias, float* out,
    size_t C, size_t F, size_t h, size_t w, size_t oh, size_t ow) {
  ConvForwardLanesBody(in, weights, bias, out, C, F, 3, h, w, oh, ow, 8);
}

__attribute__((target("avx2"))) void ConvBiasGradLanes8Avx2(const float* g,
                                                            float* dbias,
                                                            size_t F,
                                                            size_t n) {
  ConvBiasGradLanesBody(g, dbias, F, n, 8);
}

__attribute__((target("avx2"))) void ConvWgradLanes8K3Avx2(
    const float* g, const float* in, float* dw, double* wacc, size_t C,
    size_t F, size_t h, size_t w, size_t oh, size_t ow) {
  ConvWgradLanesBody(g, in, dw, wacc, C, F, 3, h, w, oh, ow, 8);
}

__attribute__((target("avx2"))) void ConvGradInputLanes8K3Avx2(
    const float* g, const float* weights, float* gi, size_t C, size_t F,
    size_t h, size_t w, size_t oh, size_t ow) {
  ConvGradInputLanesBody(g, weights, gi, C, F, 3, h, w, oh, ow, 8);
}
#endif  // DPAUDIT_X86_DISPATCH

}  // namespace

Conv2d::Conv2d(size_t in_channels, size_t out_channels, size_t kernel)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      dweight_({out_channels, in_channels, kernel, kernel}),
      dbias_({out_channels}) {
  DPAUDIT_CHECK_GT(kernel_, 0u);
}

void Conv2d::Initialize(Rng& rng) {
  double fan_in = static_cast<double>(in_channels_ * kernel_ * kernel_);
  double fan_out = static_cast<double>(out_channels_ * kernel_ * kernel_);
  double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (float& w : weight_.vec()) {
    w = static_cast<float>(rng.Uniform(-limit, limit));
  }
  bias_.Fill(0.0f);
}

// Both passes are restructured for throughput but keep every accumulator's
// addition sequence identical to a tap-at-a-time reference implementation:
// each output (resp. weight-gradient) element receives the same additions in
// the same order, each individually rounded, so results are bit-identical.

void Conv2d::ForwardInto(const Tensor& input, Tensor* output) {
  DPAUDIT_CHECK_EQ(input.rank(), 3u);
  DPAUDIT_CHECK_EQ(input.dim(0), in_channels_);
  const size_t h = input.dim(1);
  const size_t w = input.dim(2);
  DPAUDIT_CHECK_GE(h, kernel_);
  DPAUDIT_CHECK_GE(w, kernel_);
  const size_t oh = h - kernel_ + 1;
  const size_t ow = w - kernel_ + 1;
  last_input_ = &input;
  output->ResizeTo({out_channels_, oh, ow});
  const float* in = input.data();
  const float* weights = weight_.data();
  float* o = output->data();
#if defined(DPAUDIT_X86_DISPATCH)
  if (kernel_ == 3 && HasAvx2()) {
    ForwardK3Avx2(in, weights, bias_.data(), o, in_channels_, out_channels_, h,
                  w, oh, ow);
    return;
  }
#endif
  if (kernel_ == 3) {
    // All 9 taps of each input channel fused per output element: one load
    // and one store of the output per channel instead of nine, and the x
    // loop vectorizes (independent accumulation chains across x).
    for (size_t f = 0; f < out_channels_; ++f) {
      float* out_plane = o + f * oh * ow;
      const float bias = bias_[f];
      for (size_t i = 0; i < oh * ow; ++i) out_plane[i] = bias;
      for (size_t c = 0; c < in_channels_; ++c) {
        const float* in_plane = in + c * h * w;
        const float* kp = weights + (f * in_channels_ + c) * 9;
        const float k00 = kp[0], k01 = kp[1], k02 = kp[2];
        const float k10 = kp[3], k11 = kp[4], k12 = kp[5];
        const float k20 = kp[6], k21 = kp[7], k22 = kp[8];
        for (size_t y = 0; y < oh; ++y) {
          const float* r0 = in_plane + y * w;
          const float* r1 = r0 + w;
          const float* r2 = r1 + w;
          float* out_row = out_plane + y * ow;
          for (size_t x = 0; x < ow; ++x) {
            float acc = out_row[x];
            acc += k00 * r0[x];
            acc += k01 * r0[x + 1];
            acc += k02 * r0[x + 2];
            acc += k10 * r1[x];
            acc += k11 * r1[x + 1];
            acc += k12 * r1[x + 2];
            acc += k20 * r2[x];
            acc += k21 * r2[x + 1];
            acc += k22 * r2[x + 2];
            out_row[x] = acc;
          }
        }
      }
    }
  } else {
    for (size_t f = 0; f < out_channels_; ++f) {
      float* out_plane = o + f * oh * ow;
      const float bias = bias_[f];
      for (size_t y = 0; y < oh; ++y) {
        float* out_row = out_plane + y * ow;
        for (size_t x = 0; x < ow; ++x) out_row[x] = bias;
        for (size_t c = 0; c < in_channels_; ++c) {
          const float* in_plane = in + c * h * w;
          const float* kp = weights + (f * in_channels_ + c) * kernel_ * kernel_;
          for (size_t x = 0; x < ow; ++x) {
            float acc = out_row[x];
            for (size_t ky = 0; ky < kernel_; ++ky) {
              const float* in_row = in_plane + (y + ky) * w + x;
              const float* krow = kp + ky * kernel_;
              for (size_t kx = 0; kx < kernel_; ++kx) {
                acc += krow[kx] * in_row[kx];
              }
            }
            out_row[x] = acc;
          }
        }
      }
    }
  }
}

void Conv2d::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  DPAUDIT_CHECK_EQ(grad_output.rank(), 3u);
  DPAUDIT_CHECK_EQ(grad_output.dim(0), out_channels_);
  DPAUDIT_CHECK(last_input_ != nullptr) << "Backward before Forward";
  const size_t h = last_input_->dim(1);
  const size_t w = last_input_->dim(2);
  const size_t oh = grad_output.dim(1);
  const size_t ow = grad_output.dim(2);
  DPAUDIT_CHECK_EQ(oh, h - kernel_ + 1);
  DPAUDIT_CHECK_EQ(ow, w - kernel_ + 1);
  grad_input->ResizeTo(last_input_->shape());
  grad_input->Fill(0.0f);
  const float* in = last_input_->data();
  const float* g = grad_output.data();
  const float* weights = weight_.data();
  float* dw = dweight_.data();
  float* gi = grad_input->data();
  const size_t kk = kernel_ * kernel_;
#if defined(DPAUDIT_X86_DISPATCH)
  const bool use_avx2 = HasAvx2();
#else
  const bool use_avx2 = false;
#endif

  // Bias gradients: one chain per filter, blocked four filters at a time so
  // the independent chains pipeline in registers instead of serializing on
  // memory round-trips; each chain still adds its plane in index order.
  {
    const size_t n = oh * ow;
    size_t f = 0;
    for (; f + 4 <= out_channels_; f += 4) {
      const float* p0 = g + f * n;
      const float* p1 = p0 + n;
      const float* p2 = p1 + n;
      const float* p3 = p2 + n;
      double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
      for (size_t i = 0; i < n; ++i) {
        a0 += p0[i];
        a1 += p1[i];
        a2 += p2[i];
        a3 += p3[i];
      }
      dbias_[f] += static_cast<float>(a0);
      dbias_[f + 1] += static_cast<float>(a1);
      dbias_[f + 2] += static_cast<float>(a2);
      dbias_[f + 3] += static_cast<float>(a3);
    }
    for (; f < out_channels_; ++f) {
      const float* p = g + f * n;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) acc += p[i];
      dbias_[f] += static_cast<float>(acc);
    }
  }

  // Weight gradients: for each (filter, channel) pair, sweep the output
  // plane once with k*k independent accumulators (one per kernel tap)
  // instead of k*k latency-bound sweeps with one accumulator each.
  if (kernel_ == 3 && use_avx2) {
#if defined(DPAUDIT_X86_DISPATCH)
    // Widen both operand sets to double once; the kernels then run
    // convert-free. The input buffer carries four zero doubles of padding so
    // the 4-wide loads at the last column stay in bounds (their fourth lane
    // is discarded either way).
    in_pd_.resize(in_channels_ * h * w + 4);
    g_pd_.resize(out_channels_ * oh * ow);
    WidenToDoubleAvx2(in, in_pd_.data(), in_channels_ * h * w);
    for (size_t i = 0; i < 4; ++i) in_pd_[in_channels_ * h * w + i] = 0.0;
    WidenToDoubleAvx2(g, g_pd_.data(), out_channels_ * oh * ow);
    size_t f = 0;
    for (; f + 1 < out_channels_; f += 2) {
      for (size_t c = 0; c < in_channels_; ++c) {
        WgradK3x2Avx2(g_pd_.data() + f * oh * ow,
                      g_pd_.data() + (f + 1) * oh * ow, in_pd_.data() + c * h * w,
                      oh, ow, w, dw + (f * in_channels_ + c) * 9,
                      dw + ((f + 1) * in_channels_ + c) * 9);
      }
    }
    if (f < out_channels_) {
      for (size_t c = 0; c < in_channels_; ++c) {
        WgradK3Avx2(g_pd_.data() + f * oh * ow, in_pd_.data() + c * h * w, oh,
                    ow, w, dw + (f * in_channels_ + c) * 9);
      }
    }
#endif
  } else {
    for (size_t f = 0; f < out_channels_; ++f) {
      const float* g_plane = g + f * oh * ow;
      for (size_t c = 0; c < in_channels_; ++c) {
        const float* in_plane = in + c * h * w;
        const size_t kernel_base = (f * in_channels_ + c) * kk;
        if (kernel_ == 3) {
#if defined(__SSE2__)
          // Tap pairs (w00,w01), (w10,w11), (w20,w21) live in SSE registers;
          // each vector lane is one tap's accumulator chain, advanced in the
          // same (y, x) order as the scalar code, so the sums are bit-equal.
          __m128d p0 = _mm_setzero_pd();
          __m128d p1 = _mm_setzero_pd();
          __m128d p2 = _mm_setzero_pd();
          double w02 = 0.0, w12 = 0.0, w22 = 0.0;
          for (size_t y = 0; y < oh; ++y) {
            const float* g_row = g_plane + y * ow;
            const float* r0 = in_plane + y * w;
            const float* r1 = r0 + w;
            const float* r2 = r1 + w;
            for (size_t x = 0; x < ow; ++x) {
              const double go = g_row[x];
              const __m128d gv = _mm_set1_pd(go);
              p0 = _mm_add_pd(
                  p0, _mm_mul_pd(gv, _mm_cvtps_pd(_mm_castsi128_ps(
                                         _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0 + x))))));
              p1 = _mm_add_pd(
                  p1, _mm_mul_pd(gv, _mm_cvtps_pd(_mm_castsi128_ps(
                                         _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r1 + x))))));
              p2 = _mm_add_pd(
                  p2, _mm_mul_pd(gv, _mm_cvtps_pd(_mm_castsi128_ps(
                                         _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r2 + x))))));
              w02 += go * r0[x + 2];
              w12 += go * r1[x + 2];
              w22 += go * r2[x + 2];
            }
          }
          double pr[6];
          _mm_storeu_pd(pr + 0, p0);
          _mm_storeu_pd(pr + 2, p1);
          _mm_storeu_pd(pr + 4, p2);
          dw[kernel_base + 0] += static_cast<float>(pr[0]);
          dw[kernel_base + 1] += static_cast<float>(pr[1]);
          dw[kernel_base + 2] += static_cast<float>(w02);
          dw[kernel_base + 3] += static_cast<float>(pr[2]);
          dw[kernel_base + 4] += static_cast<float>(pr[3]);
          dw[kernel_base + 5] += static_cast<float>(w12);
          dw[kernel_base + 6] += static_cast<float>(pr[4]);
          dw[kernel_base + 7] += static_cast<float>(pr[5]);
          dw[kernel_base + 8] += static_cast<float>(w22);
#else
          double w00 = 0.0, w01 = 0.0, w02 = 0.0;
          double w10 = 0.0, w11 = 0.0, w12 = 0.0;
          double w20 = 0.0, w21 = 0.0, w22 = 0.0;
          for (size_t y = 0; y < oh; ++y) {
            const float* g_row = g_plane + y * ow;
            const float* r0 = in_plane + y * w;
            const float* r1 = r0 + w;
            const float* r2 = r1 + w;
            for (size_t x = 0; x < ow; ++x) {
              const double go = g_row[x];
              w00 += go * r0[x];
              w01 += go * r0[x + 1];
              w02 += go * r0[x + 2];
              w10 += go * r1[x];
              w11 += go * r1[x + 1];
              w12 += go * r1[x + 2];
              w20 += go * r2[x];
              w21 += go * r2[x + 1];
              w22 += go * r2[x + 2];
            }
          }
          dw[kernel_base + 0] += static_cast<float>(w00);
          dw[kernel_base + 1] += static_cast<float>(w01);
          dw[kernel_base + 2] += static_cast<float>(w02);
          dw[kernel_base + 3] += static_cast<float>(w10);
          dw[kernel_base + 4] += static_cast<float>(w11);
          dw[kernel_base + 5] += static_cast<float>(w12);
          dw[kernel_base + 6] += static_cast<float>(w20);
          dw[kernel_base + 7] += static_cast<float>(w21);
          dw[kernel_base + 8] += static_cast<float>(w22);
#endif
        } else {
          wacc_.assign(kk, 0.0);
          for (size_t y = 0; y < oh; ++y) {
            const float* g_row = g_plane + y * ow;
            for (size_t x = 0; x < ow; ++x) {
              const double go = g_row[x];
              for (size_t ky = 0; ky < kernel_; ++ky) {
                const float* in_row = in_plane + (y + ky) * w + x;
                for (size_t kx = 0; kx < kernel_; ++kx) {
                  wacc_[ky * kernel_ + kx] += go * in_row[kx];
                }
              }
            }
          }
          for (size_t t = 0; t < kk; ++t) {
            dw[kernel_base + t] += static_cast<float>(wacc_[t]);
          }
        }
      }
    }
  }

  // Input gradients. The reference order of additions into element
  // gi[c][iy][ix] is the (f, c, ky, kx) scatter traversal; since c is fixed
  // per element, that is "f ascending, then ky, then kx". The gather form
  // below visits taps in exactly that order per element while fusing all kx
  // taps of a row into one x pass (three shifted reads of g instead of three
  // read-modify-write sweeps of gi), which vectorizes.
  if (kernel_ == 3 && ow >= 3 && use_avx2) {
#if defined(DPAUDIT_X86_DISPATCH)
    GradInputK3Avx2(g, weights, gi, in_channels_, out_channels_, h, w, oh, ow);
#endif
  } else if (kernel_ == 3 && ow >= 3) {
    for (size_t c = 0; c < in_channels_; ++c) {
      float* gi_plane = gi + c * h * w;
      for (size_t iy = 0; iy < h; ++iy) {
        float* gi_row = gi_plane + iy * w;
        for (size_t f = 0; f < out_channels_; ++f) {
          const float* g_base = g + f * oh * ow;
          const float* kp = weights + (f * in_channels_ + c) * 9;
          const size_t ky_lo = iy >= oh ? iy - (oh - 1) : 0;
          const size_t ky_hi = iy < 2 ? iy : 2;
          for (size_t ky = ky_lo; ky <= ky_hi; ++ky) {
            const float* g_row = g_base + (iy - ky) * ow;
            const float k0 = kp[ky * 3];
            const float k1 = kp[ky * 3 + 1];
            const float k2 = kp[ky * 3 + 2];
            // Left edge: ix = 0 sees only kx = 0, ix = 1 sees kx = 0, 1.
            gi_row[0] += k0 * g_row[0];
            gi_row[1] += k0 * g_row[1];
            gi_row[1] += k1 * g_row[0];
            for (size_t ix = 2; ix < ow; ++ix) {
              float acc = gi_row[ix];
              acc += k0 * g_row[ix];
              acc += k1 * g_row[ix - 1];
              acc += k2 * g_row[ix - 2];
              gi_row[ix] = acc;
            }
            // Right edge: ix = ow sees kx = 1, 2 and ix = ow + 1 only kx = 2.
            gi_row[ow] += k1 * g_row[ow - 1];
            gi_row[ow] += k2 * g_row[ow - 2];
            gi_row[ow + 1] += k2 * g_row[ow - 1];
          }
        }
      }
    }
  } else {
    for (size_t f = 0; f < out_channels_; ++f) {
      const float* g_plane = g + f * oh * ow;
      for (size_t c = 0; c < in_channels_; ++c) {
        float* gi_plane = gi + c * h * w;
        const size_t kernel_base = (f * in_channels_ + c) * kk;
        for (size_t ky = 0; ky < kernel_; ++ky) {
          for (size_t kx = 0; kx < kernel_; ++kx) {
            const float kval = weights[kernel_base + ky * kernel_ + kx];
            for (size_t y = 0; y < oh; ++y) {
              const float* g_row = g_plane + y * ow;
              float* gi_row = gi_plane + (y + ky) * w + kx;
              for (size_t x = 0; x < ow; ++x) {
                gi_row[x] += g_row[x] * kval;
              }
            }
          }
        }
      }
    }
  }
}

void Conv2d::ForwardBatchInto(const Tensor& input, size_t lanes,
                              Tensor* output) {
  DPAUDIT_CHECK_GT(lanes, 0u);
  DPAUDIT_CHECK_LE(lanes, kMaxBatchLanes);
  DPAUDIT_CHECK_EQ(input.rank(), 4u);  // [C, H, W, lanes]
  DPAUDIT_CHECK_EQ(input.dim(0), in_channels_);
  DPAUDIT_CHECK_EQ(input.dim(3), lanes);
  const size_t h = input.dim(1);
  const size_t w = input.dim(2);
  DPAUDIT_CHECK_GE(h, kernel_);
  DPAUDIT_CHECK_GE(w, kernel_);
  const size_t oh = h - kernel_ + 1;
  const size_t ow = w - kernel_ + 1;
  last_batch_input_ = &input;
  batch_lanes_ = lanes;
  output->ResizeTo({out_channels_, oh, ow, lanes});
#if defined(DPAUDIT_X86_DISPATCH)
  if (lanes == 8 && kernel_ == 3 && HasAvx2()) {
    ConvForwardLanes8K3Avx2(input.data(), weight_.data(), bias_.data(),
                            output->data(), in_channels_, out_channels_, h, w,
                            oh, ow);
    return;
  }
#endif
  ConvForwardLanesBody(input.data(), weight_.data(), bias_.data(),
                       output->data(), in_channels_, out_channels_, kernel_, h,
                       w, oh, ow, lanes);
}

void Conv2d::BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                               Tensor* grad_input) {
  DPAUDIT_CHECK(last_batch_input_ != nullptr) << "Backward before Forward";
  DPAUDIT_CHECK_EQ(lanes, batch_lanes_);
  DPAUDIT_CHECK_EQ(grad_output.rank(), 4u);
  DPAUDIT_CHECK_EQ(grad_output.dim(0), out_channels_);
  DPAUDIT_CHECK_EQ(grad_output.dim(3), lanes);
  const size_t h = last_batch_input_->dim(1);
  const size_t w = last_batch_input_->dim(2);
  const size_t oh = grad_output.dim(1);
  const size_t ow = grad_output.dim(2);
  DPAUDIT_CHECK_EQ(oh, h - kernel_ + 1);
  DPAUDIT_CHECK_EQ(ow, w - kernel_ + 1);
  const size_t kk = kernel_ * kernel_;
  lane_dweight_.resize(out_channels_ * in_channels_ * kk * lanes);
  lane_dbias_.resize(out_channels_ * lanes);
  lane_wacc_.resize(kk * lanes);
  const float* g = grad_output.data();
  const float* in = last_batch_input_->data();
#if defined(DPAUDIT_X86_DISPATCH)
  if (lanes == 8 && HasAvx2()) {
    ConvBiasGradLanes8Avx2(g, lane_dbias_.data(), out_channels_, oh * ow);
    if (kernel_ == 3) {
      ConvWgradLanes8K3Avx2(g, in, lane_dweight_.data(), lane_wacc_.data(),
                            in_channels_, out_channels_, h, w, oh, ow);
      if (grad_input != nullptr) {
        grad_input->ResizeTo(last_batch_input_->shape());
        ConvGradInputLanes8K3Avx2(g, weight_.data(), grad_input->data(),
                                  in_channels_, out_channels_, h, w, oh, ow);
      }
      return;
    }
    ConvWgradLanesBody(g, in, lane_dweight_.data(), lane_wacc_.data(),
                       in_channels_, out_channels_, kernel_, h, w, oh, ow,
                       lanes);
    if (grad_input != nullptr) {
      grad_input->ResizeTo(last_batch_input_->shape());
      ConvGradInputLanesBody(g, weight_.data(), grad_input->data(),
                             in_channels_, out_channels_, kernel_, h, w, oh,
                             ow, lanes);
    }
    return;
  }
#endif
  ConvBiasGradLanesBody(g, lane_dbias_.data(), out_channels_, oh * ow, lanes);
  ConvWgradLanesBody(g, in, lane_dweight_.data(), lane_wacc_.data(),
                     in_channels_, out_channels_, kernel_, h, w, oh, ow,
                     lanes);
  if (grad_input != nullptr) {
    grad_input->ResizeTo(last_batch_input_->shape());
    ConvGradInputLanesBody(g, weight_.data(), grad_input->data(), in_channels_,
                           out_channels_, kernel_, h, w, oh, ow, lanes);
  }
}

void Conv2d::LaneGradsTo(size_t lane, float* dst) const {
  DPAUDIT_CHECK_LT(lane, batch_lanes_);
  const size_t wsize = out_channels_ * in_channels_ * kernel_ * kernel_;
  for (size_t p = 0; p < wsize; ++p) {
    dst[p] = lane_dweight_[p * batch_lanes_ + lane];
  }
  dst += wsize;
  for (size_t p = 0; p < out_channels_; ++p) {
    dst[p] = lane_dbias_[p * batch_lanes_ + lane];
  }
}

std::unique_ptr<Layer> Conv2d::Clone() const {
  auto copy = std::make_unique<Conv2d>(in_channels_, out_channels_, kernel_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

std::string Conv2d::Name() const {
  std::ostringstream os;
  os << "conv2d(" << in_channels_ << "->" << out_channels_ << ", k=" << kernel_
     << ")";
  return os.str();
}

}  // namespace dpaudit
