#include "nn/conv2d.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace dpaudit {

Conv2d::Conv2d(size_t in_channels, size_t out_channels, size_t kernel)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      dweight_({out_channels, in_channels, kernel, kernel}),
      dbias_({out_channels}) {
  DPAUDIT_CHECK_GT(kernel_, 0u);
}

void Conv2d::Initialize(Rng& rng) {
  double fan_in = static_cast<double>(in_channels_ * kernel_ * kernel_);
  double fan_out = static_cast<double>(out_channels_ * kernel_ * kernel_);
  double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (float& w : weight_.vec()) {
    w = static_cast<float>(rng.Uniform(-limit, limit));
  }
  bias_.Fill(0.0f);
}

Tensor Conv2d::Forward(const Tensor& input) {
  DPAUDIT_CHECK_EQ(input.rank(), 3u);
  DPAUDIT_CHECK_EQ(input.dim(0), in_channels_);
  const size_t h = input.dim(1);
  const size_t w = input.dim(2);
  DPAUDIT_CHECK_GE(h, kernel_);
  DPAUDIT_CHECK_GE(w, kernel_);
  const size_t oh = h - kernel_ + 1;
  const size_t ow = w - kernel_ + 1;
  last_input_ = input;
  Tensor out({out_channels_, oh, ow});
  const float* in = input.data();
  const float* weights = weight_.data();
  float* o = out.data();
  for (size_t f = 0; f < out_channels_; ++f) {
    const float bias = bias_[f];
    float* out_plane = o + f * oh * ow;
    for (size_t i = 0; i < oh * ow; ++i) out_plane[i] = bias;
    for (size_t c = 0; c < in_channels_; ++c) {
      const float* in_plane = in + c * h * w;
      const float* kernel_plane =
          weights + (f * in_channels_ + c) * kernel_ * kernel_;
      for (size_t ky = 0; ky < kernel_; ++ky) {
        for (size_t kx = 0; kx < kernel_; ++kx) {
          const float kval = kernel_plane[ky * kernel_ + kx];
          if (kval == 0.0f) continue;
          for (size_t y = 0; y < oh; ++y) {
            const float* in_row = in_plane + (y + ky) * w + kx;
            float* out_row = out_plane + y * ow;
            for (size_t x = 0; x < ow; ++x) {
              out_row[x] += kval * in_row[x];
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  DPAUDIT_CHECK_EQ(grad_output.rank(), 3u);
  DPAUDIT_CHECK_EQ(grad_output.dim(0), out_channels_);
  DPAUDIT_CHECK(!last_input_.empty()) << "Backward before Forward";
  const size_t h = last_input_.dim(1);
  const size_t w = last_input_.dim(2);
  const size_t oh = grad_output.dim(1);
  const size_t ow = grad_output.dim(2);
  DPAUDIT_CHECK_EQ(oh, h - kernel_ + 1);
  DPAUDIT_CHECK_EQ(ow, w - kernel_ + 1);
  Tensor grad_input(last_input_.shape());
  const float* in = last_input_.data();
  const float* g = grad_output.data();
  const float* weights = weight_.data();
  float* dw = dweight_.data();
  float* gi = grad_input.data();
  for (size_t f = 0; f < out_channels_; ++f) {
    const float* g_plane = g + f * oh * ow;
    double bias_grad = 0.0;
    for (size_t i = 0; i < oh * ow; ++i) bias_grad += g_plane[i];
    dbias_[f] += static_cast<float>(bias_grad);
    for (size_t c = 0; c < in_channels_; ++c) {
      const float* in_plane = in + c * h * w;
      float* gi_plane = gi + c * h * w;
      const size_t kernel_base = (f * in_channels_ + c) * kernel_ * kernel_;
      for (size_t ky = 0; ky < kernel_; ++ky) {
        for (size_t kx = 0; kx < kernel_; ++kx) {
          const size_t kidx = kernel_base + ky * kernel_ + kx;
          const float kval = weights[kidx];
          double wgrad = 0.0;
          for (size_t y = 0; y < oh; ++y) {
            const float* g_row = g_plane + y * ow;
            const float* in_row = in_plane + (y + ky) * w + kx;
            float* gi_row = gi_plane + (y + ky) * w + kx;
            for (size_t x = 0; x < ow; ++x) {
              const float go = g_row[x];
              wgrad += static_cast<double>(go) * in_row[x];
              gi_row[x] += go * kval;
            }
          }
          dw[kidx] += static_cast<float>(wgrad);
        }
      }
    }
  }
  return grad_input;
}

std::unique_ptr<Layer> Conv2d::Clone() const {
  auto copy = std::make_unique<Conv2d>(in_channels_, out_channels_, kernel_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

std::string Conv2d::Name() const {
  std::ostringstream os;
  os << "conv2d(" << in_channels_ << "->" << out_channels_ << ", k=" << kernel_
     << ")";
  return os.str();
}

}  // namespace dpaudit
