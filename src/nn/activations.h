// Stateless activation layers.

#ifndef DPAUDIT_NN_ACTIVATIONS_H_
#define DPAUDIT_NN_ACTIVATIONS_H_

#include <memory>
#include <string>

#include "nn/layer.h"

namespace dpaudit {

/// Element-wise max(0, x).
class Relu : public Layer {
 public:
  void ForwardInto(const Tensor& input, Tensor* output) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  // Elementwise, so the lane tensor is just a longer flat array; the scalar
  // kernels apply unchanged and per-lane results are trivially identical.
  bool SupportsBatchLanes() const override { return true; }
  void ForwardBatchInto(const Tensor& input, size_t lanes,
                        Tensor* output) override;
  void BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                         Tensor* grad_input) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Relu>();
  }
  std::string Name() const override { return "relu"; }

 private:
  // Cached pointer to the forward input (see the lifetime contract in
  // layer.h); the caller keeps it alive through backward.
  const Tensor* last_input_ = nullptr;
};

/// Numerically stable softmax over a rank-1 tensor. Only used standalone for
/// inference probabilities; training uses the fused softmax-cross-entropy in
/// nn/loss.h, so Backward here implements the full softmax Jacobian product.
class Softmax : public Layer {
 public:
  void ForwardInto(const Tensor& input, Tensor* output) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Softmax>();
  }
  std::string Name() const override { return "softmax"; }

 private:
  Tensor last_output_;
};

}  // namespace dpaudit

#endif  // DPAUDIT_NN_ACTIVATIONS_H_
