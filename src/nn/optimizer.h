// First-order optimizers over flat parameter vectors.
//
// DPSGD (Section 2.1) is "a differentially private version of an ML
// optimizer such as Adam or SGD": privacy comes from clipping + noising the
// gradient; the optimizer only decides how the noised gradient moves the
// weights. Because the update rule is deterministic given the released
// gradients, the DP adversary can track the weight trajectory for any
// optimizer here.

#ifndef DPAUDIT_NN_OPTIMIZER_H_
#define DPAUDIT_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/network.h"

namespace dpaudit {

/// Stateful update rule. Step() consumes the (mean, possibly noised)
/// gradient for the current iterate and updates the network in place.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update. `gradient` must have NumParams() entries.
  virtual void Step(Network& net, const std::vector<float>& gradient) = 0;

  /// Fresh copy with RESET state (a new training run starts clean).
  virtual std::unique_ptr<Optimizer> Clone() const = 0;

  virtual std::string Name() const = 0;
};

/// Plain SGD: theta <- theta - lr * g.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double learning_rate);
  void Step(Network& net, const std::vector<float>& gradient) override;
  std::unique_ptr<Optimizer> Clone() const override;
  std::string Name() const override { return "sgd"; }

 private:
  double lr_;
};

/// Heavy-ball momentum: v <- mu v + g; theta <- theta - lr v.
class MomentumOptimizer : public Optimizer {
 public:
  MomentumOptimizer(double learning_rate, double momentum = 0.9);
  void Step(Network& net, const std::vector<float>& gradient) override;
  std::unique_ptr<Optimizer> Clone() const override;
  std::string Name() const override { return "momentum"; }

 private:
  double lr_;
  double momentum_;
  std::vector<float> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8);
  void Step(Network& net, const std::vector<float>& gradient) override;
  std::unique_ptr<Optimizer> Clone() const override;
  std::string Name() const override { return "adam"; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  size_t t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

/// Optimizer selection for configs.
enum class OptimizerKind {
  kSgd,
  kMomentum,
  kAdam,
};

const char* OptimizerKindToString(OptimizerKind kind);

/// Factory from a config enum.
std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate);

}  // namespace dpaudit

#endif  // DPAUDIT_NN_OPTIMIZER_H_
