#include "nn/gradient_check.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dpaudit {

GradientCheckResult CheckNetworkGradient(Network& net, const Tensor& input,
                                         size_t label, double step,
                                         size_t stride) {
  DPAUDIT_CHECK_GT(step, 0.0);
  DPAUDIT_CHECK_GT(stride, 0u);
  std::vector<float> analytic = net.PerExampleGradient(input, label);
  std::vector<float> params = net.FlatParams();
  GradientCheckResult result{0.0, 0.0, 0};
  for (size_t i = 0; i < params.size(); i += stride) {
    float original = params[i];
    params[i] = static_cast<float>(original + step);
    net.SetFlatParams(params);
    double loss_plus = net.ExampleLoss(input, label);
    params[i] = static_cast<float>(original - step);
    net.SetFlatParams(params);
    double loss_minus = net.ExampleLoss(input, label);
    params[i] = original;
    double numeric = (loss_plus - loss_minus) / (2.0 * step);
    double abs_err = std::fabs(numeric - analytic[i]);
    // The 1e-3 floor keeps exactly-zero analytic gradients (e.g. a conv bias
    // feeding a normalization layer) from reading as 100% relative error
    // against finite-difference noise.
    double denom = std::max({std::fabs(numeric), std::fabs(
                                static_cast<double>(analytic[i])), 1e-3});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    ++result.params_checked;
  }
  net.SetFlatParams(params);
  return result;
}

}  // namespace dpaudit
