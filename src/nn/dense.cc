#include "nn/dense.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace dpaudit {

Dense::Dense(size_t in_features, size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      dweight_({out_features, in_features}),
      dbias_({out_features}) {
  DPAUDIT_CHECK_GT(in_, 0u);
  DPAUDIT_CHECK_GT(out_, 0u);
}

void Dense::Initialize(Rng& rng) {
  // Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6 / (in + out)).
  double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  for (float& w : weight_.vec()) {
    w = static_cast<float>(rng.Uniform(-limit, limit));
  }
  bias_.Fill(0.0f);
}

Tensor Dense::Forward(const Tensor& input) {
  DPAUDIT_CHECK_EQ(input.size(), in_)
      << "dense expects volume " << in_ << ", got " << input.ShapeString();
  last_input_shape_ = input.shape();
  last_input_ = input;
  last_input_.Reshape({in_});
  Tensor out({out_});
  const float* w = weight_.data();
  const float* x = last_input_.data();
  for (size_t o = 0; o < out_; ++o) {
    double acc = bias_[o];
    const float* wrow = w + o * in_;
    for (size_t i = 0; i < in_; ++i) acc += static_cast<double>(wrow[i]) * x[i];
    out[o] = static_cast<float>(acc);
  }
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  DPAUDIT_CHECK_EQ(grad_output.size(), out_);
  DPAUDIT_CHECK_EQ(last_input_.size(), in_) << "Backward before Forward";
  const float* g = grad_output.data();
  const float* x = last_input_.data();
  const float* w = weight_.data();
  float* dw = dweight_.data();
  float* db = dbias_.data();
  Tensor grad_input({in_});
  float* gx = grad_input.data();
  for (size_t o = 0; o < out_; ++o) {
    float go = g[o];
    db[o] += go;
    float* dwrow = dw + o * in_;
    const float* wrow = w + o * in_;
    for (size_t i = 0; i < in_; ++i) {
      dwrow[i] += go * x[i];
      gx[i] += go * wrow[i];
    }
  }
  grad_input.Reshape(last_input_shape_);
  return grad_input;
}

std::unique_ptr<Layer> Dense::Clone() const {
  auto copy = std::make_unique<Dense>(in_, out_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

std::string Dense::Name() const {
  std::ostringstream os;
  os << "dense(" << in_ << "->" << out_ << ")";
  return os.str();
}

}  // namespace dpaudit
