#include "nn/dense.h"

#include <cmath>
#include <sstream>

#include "tensor/tensor.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/simd.h"

namespace dpaudit {
namespace {

// ---- Batched lane kernels --------------------------------------------------
//
// One body per direction, shared between the portable path (runtime `lanes`)
// and the AVX2 wrappers (lanes pinned to 8 so the lane loops vectorize to one
// ymm register each). Lanes are independent examples, so vectorizing across
// them reorders nothing: every lane's accumulation chain is the same
// bias-first, ascending-i chain the scalar path runs, hence bit-identical
// outputs.

DPAUDIT_LANE_INLINE void DenseForwardLanesBody(const float* w, const float* b,
                                               const float* x, float* out,
                                               size_t in, size_t out_features,
                                               size_t lanes) {
  for (size_t o = 0; o < out_features; ++o) {
    const float* wrow = w + o * in;
    double acc[kMaxBatchLanes];
    for (size_t l = 0; l < lanes; ++l) acc[l] = b[o];
    for (size_t i = 0; i < in; ++i) {
      const double wi = wrow[i];
      const float* xl = x + i * lanes;
      for (size_t l = 0; l < lanes; ++l) {
        acc[l] += wi * static_cast<double>(xl[l]);
      }
    }
    float* ol = out + o * lanes;
    for (size_t l = 0; l < lanes; ++l) ol[l] = static_cast<float>(acc[l]);
  }
}

DPAUDIT_LANE_INLINE void DenseBackwardLanesBody(
    const float* __restrict__ w, const float* __restrict__ g,
    const float* __restrict__ x, float* __restrict__ dw,
    float* __restrict__ db, float* __restrict__ gx, size_t in,
    size_t out_features, size_t lanes) {
  // dw and db are pure per-(o, i) products — no accumulation chain to
  // preserve. The local copy of the output-gradient lanes keeps the streaming
  // dw store loop free of reloads.
  for (size_t o = 0; o < out_features; ++o) {
    const float* gol = g + o * lanes;
    float go[kMaxBatchLanes];
    for (size_t l = 0; l < lanes; ++l) go[l] = gol[l];
    float* dbl = db + o * lanes;
    for (size_t l = 0; l < lanes; ++l) dbl[l] = go[l];
    const float* xl = x;
    float* dwl = dw + o * in * lanes;
    for (size_t i = 0; i < in; ++i, xl += lanes, dwl += lanes) {
      for (size_t l = 0; l < lanes; ++l) dwl[l] = go[l] * xl[l];
    }
  }
  if (gx == nullptr) return;
  // grad-input: each element's lane accumulator stays in registers across
  // the o loop, summing in ascending output order — the scalar chain.
  for (size_t i = 0; i < in; ++i) {
    float acc[kMaxBatchLanes];
    for (size_t l = 0; l < lanes; ++l) acc[l] = 0.0f;
    for (size_t o = 0; o < out_features; ++o) {
      const float wv = w[o * in + i];
      const float* gol = g + o * lanes;
      for (size_t l = 0; l < lanes; ++l) acc[l] += gol[l] * wv;
    }
    float* gxl = gx + i * lanes;
    for (size_t l = 0; l < lanes; ++l) gxl[l] = acc[l];
  }
}

#if defined(DPAUDIT_X86_DISPATCH)
__attribute__((target("avx2"))) void DenseForwardLanes8Avx2(
    const float* w, const float* b, const float* x, float* out, size_t in,
    size_t out_features) {
  DenseForwardLanesBody(w, b, x, out, in, out_features, 8);
}

// Hand-vectorized: one ymm per lane group, explicit mul-then-add (no FMA
// contraction). dw and db are pure products; each gx element's accumulator
// sums in ascending output order — the scalar chain — so results are
// bit-identical. Intrinsics because the autovectorizer scalarizes this body.
__attribute__((target("avx2"))) void DenseBackwardLanes8Avx2(
    const float* w, const float* g, const float* x, float* dw, float* db,
    float* gx, size_t in, size_t out_features) {
  for (size_t o = 0; o < out_features; ++o) {
    const __m256 go = _mm256_loadu_ps(g + o * 8);
    _mm256_storeu_ps(db + o * 8, go);
    float* dwrow = dw + o * in * 8;
    for (size_t i = 0; i < in; ++i) {
      _mm256_storeu_ps(dwrow + i * 8,
                       _mm256_mul_ps(go, _mm256_loadu_ps(x + i * 8)));
    }
  }
  if (gx == nullptr) return;
  for (size_t i = 0; i < in; ++i) {
    __m256 acc = _mm256_setzero_ps();
    for (size_t o = 0; o < out_features; ++o) {
      acc = _mm256_add_ps(acc,
                          _mm256_mul_ps(_mm256_loadu_ps(g + o * 8),
                                        _mm256_broadcast_ss(w + o * in + i)));
    }
    _mm256_storeu_ps(gx + i * 8, acc);
  }
}
#endif  // DPAUDIT_X86_DISPATCH

}  // namespace

Dense::Dense(size_t in_features, size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      dweight_({out_features, in_features}),
      dbias_({out_features}) {
  DPAUDIT_CHECK_GT(in_, 0u);
  DPAUDIT_CHECK_GT(out_, 0u);
}

void Dense::Initialize(Rng& rng) {
  // Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6 / (in + out)).
  double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  for (float& w : weight_.vec()) {
    w = static_cast<float>(rng.Uniform(-limit, limit));
  }
  bias_.Fill(0.0f);
}

void Dense::ForwardInto(const Tensor& input, Tensor* output) {
  DPAUDIT_CHECK_EQ(input.size(), in_)
      << "dense expects volume " << in_ << ", got " << input.ShapeString();
  last_input_ = &input;
  output->ResizeTo({out_});
  const float* w = weight_.data();
  const float* x = input.data();
  float* out = output->data();
  // Eight outputs per pass: eight independent dot-product chains hide the
  // FP-add latency of a single serial accumulation. Each chain still sums
  // its products in ascending input order, so every output is bit-identical
  // to the one-row-at-a-time loop.
  size_t o = 0;
  for (; o + 8 <= out_; o += 8) {
    const float* w0 = w + o * in_;
    const float* w1 = w0 + in_;
    const float* w2 = w1 + in_;
    const float* w3 = w2 + in_;
    const float* w4 = w3 + in_;
    const float* w5 = w4 + in_;
    const float* w6 = w5 + in_;
    const float* w7 = w6 + in_;
    double a0 = bias_[o], a1 = bias_[o + 1], a2 = bias_[o + 2];
    double a3 = bias_[o + 3], a4 = bias_[o + 4], a5 = bias_[o + 5];
    double a6 = bias_[o + 6], a7 = bias_[o + 7];
    for (size_t i = 0; i < in_; ++i) {
      const double xi = x[i];
      a0 += w0[i] * xi;
      a1 += w1[i] * xi;
      a2 += w2[i] * xi;
      a3 += w3[i] * xi;
      a4 += w4[i] * xi;
      a5 += w5[i] * xi;
      a6 += w6[i] * xi;
      a7 += w7[i] * xi;
    }
    out[o] = static_cast<float>(a0);
    out[o + 1] = static_cast<float>(a1);
    out[o + 2] = static_cast<float>(a2);
    out[o + 3] = static_cast<float>(a3);
    out[o + 4] = static_cast<float>(a4);
    out[o + 5] = static_cast<float>(a5);
    out[o + 6] = static_cast<float>(a6);
    out[o + 7] = static_cast<float>(a7);
  }
  for (; o < out_; ++o) {
    double acc = bias_[o];
    const float* wrow = w + o * in_;
    for (size_t i = 0; i < in_; ++i) acc += static_cast<double>(wrow[i]) * x[i];
    out[o] = static_cast<float>(acc);
  }
}

void Dense::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  DPAUDIT_CHECK_EQ(grad_output.size(), out_);
  DPAUDIT_CHECK(last_input_ != nullptr) << "Backward before Forward";
  DPAUDIT_CHECK_EQ(last_input_->size(), in_);
  const float* g = grad_output.data();
  const float* x = last_input_->data();
  const float* w = weight_.data();
  float* dw = dweight_.data();
  float* db = dbias_.data();
  grad_input->ResizeTo(last_input_->shape());
  float* gx = grad_input->data();
  for (size_t i = 0; i < in_; ++i) gx[i] = 0.0f;
  for (size_t o = 0; o < out_; ++o) {
    float go = g[o];
    db[o] += go;
    float* dwrow = dw + o * in_;
    const float* wrow = w + o * in_;
    for (size_t i = 0; i < in_; ++i) {
      dwrow[i] += go * x[i];
      gx[i] += go * wrow[i];
    }
  }
}

void Dense::ForwardBatchInto(const Tensor& input, size_t lanes,
                             Tensor* output) {
  DPAUDIT_CHECK_GT(lanes, 0u);
  DPAUDIT_CHECK_LE(lanes, kMaxBatchLanes);
  DPAUDIT_CHECK_EQ(input.size(), in_ * lanes)
      << "dense expects lane volume " << in_ * lanes << ", got "
      << input.ShapeString();
  last_batch_input_ = &input;
  batch_lanes_ = lanes;
  output->ResizeTo({out_, lanes});
#if defined(DPAUDIT_X86_DISPATCH)
  if (lanes == 8 && HasAvx2()) {
    DenseForwardLanes8Avx2(weight_.data(), bias_.data(), input.data(),
                           output->data(), in_, out_);
    return;
  }
#endif
  DenseForwardLanesBody(weight_.data(), bias_.data(), input.data(),
                        output->data(), in_, out_, lanes);
}

void Dense::BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                              Tensor* grad_input) {
  DPAUDIT_CHECK(last_batch_input_ != nullptr) << "Backward before Forward";
  DPAUDIT_CHECK_EQ(lanes, batch_lanes_);
  DPAUDIT_CHECK_EQ(grad_output.size(), out_ * lanes);
  lane_dweight_.resize(out_ * in_ * lanes);
  lane_dbias_.resize(out_ * lanes);
  float* gx = nullptr;
  if (grad_input != nullptr) {
    grad_input->ResizeTo(last_batch_input_->shape());
    gx = grad_input->data();
  }
#if defined(DPAUDIT_X86_DISPATCH)
  if (lanes == 8 && HasAvx2()) {
    DenseBackwardLanes8Avx2(weight_.data(), grad_output.data(),
                            last_batch_input_->data(), lane_dweight_.data(),
                            lane_dbias_.data(), gx, in_, out_);
    return;
  }
#endif
  DenseBackwardLanesBody(weight_.data(), grad_output.data(),
                         last_batch_input_->data(), lane_dweight_.data(),
                         lane_dbias_.data(), gx, in_, out_, lanes);
}

void Dense::LaneGradsTo(size_t lane, float* dst) const {
  DPAUDIT_CHECK_LT(lane, batch_lanes_);
  const size_t wsize = out_ * in_;
  for (size_t p = 0; p < wsize; ++p) {
    dst[p] = lane_dweight_[p * batch_lanes_ + lane];
  }
  dst += wsize;
  for (size_t p = 0; p < out_; ++p) {
    dst[p] = lane_dbias_[p * batch_lanes_ + lane];
  }
}

std::unique_ptr<Layer> Dense::Clone() const {
  auto copy = std::make_unique<Dense>(in_, out_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

std::string Dense::Name() const {
  std::ostringstream os;
  os << "dense(" << in_ << "->" << out_ << ")";
  return os.str();
}

}  // namespace dpaudit
