#include "nn/dense.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace dpaudit {

Dense::Dense(size_t in_features, size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      dweight_({out_features, in_features}),
      dbias_({out_features}) {
  DPAUDIT_CHECK_GT(in_, 0u);
  DPAUDIT_CHECK_GT(out_, 0u);
}

void Dense::Initialize(Rng& rng) {
  // Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6 / (in + out)).
  double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  for (float& w : weight_.vec()) {
    w = static_cast<float>(rng.Uniform(-limit, limit));
  }
  bias_.Fill(0.0f);
}

void Dense::ForwardInto(const Tensor& input, Tensor* output) {
  DPAUDIT_CHECK_EQ(input.size(), in_)
      << "dense expects volume " << in_ << ", got " << input.ShapeString();
  last_input_shape_ = input.shape();
  last_input_ = input;
  output->ResizeTo({out_});
  const float* w = weight_.data();
  const float* x = input.data();
  float* out = output->data();
  // Eight outputs per pass: eight independent dot-product chains hide the
  // FP-add latency of a single serial accumulation. Each chain still sums
  // its products in ascending input order, so every output is bit-identical
  // to the one-row-at-a-time loop.
  size_t o = 0;
  for (; o + 8 <= out_; o += 8) {
    const float* w0 = w + o * in_;
    const float* w1 = w0 + in_;
    const float* w2 = w1 + in_;
    const float* w3 = w2 + in_;
    const float* w4 = w3 + in_;
    const float* w5 = w4 + in_;
    const float* w6 = w5 + in_;
    const float* w7 = w6 + in_;
    double a0 = bias_[o], a1 = bias_[o + 1], a2 = bias_[o + 2];
    double a3 = bias_[o + 3], a4 = bias_[o + 4], a5 = bias_[o + 5];
    double a6 = bias_[o + 6], a7 = bias_[o + 7];
    for (size_t i = 0; i < in_; ++i) {
      const double xi = x[i];
      a0 += w0[i] * xi;
      a1 += w1[i] * xi;
      a2 += w2[i] * xi;
      a3 += w3[i] * xi;
      a4 += w4[i] * xi;
      a5 += w5[i] * xi;
      a6 += w6[i] * xi;
      a7 += w7[i] * xi;
    }
    out[o] = static_cast<float>(a0);
    out[o + 1] = static_cast<float>(a1);
    out[o + 2] = static_cast<float>(a2);
    out[o + 3] = static_cast<float>(a3);
    out[o + 4] = static_cast<float>(a4);
    out[o + 5] = static_cast<float>(a5);
    out[o + 6] = static_cast<float>(a6);
    out[o + 7] = static_cast<float>(a7);
  }
  for (; o < out_; ++o) {
    double acc = bias_[o];
    const float* wrow = w + o * in_;
    for (size_t i = 0; i < in_; ++i) acc += static_cast<double>(wrow[i]) * x[i];
    out[o] = static_cast<float>(acc);
  }
}

void Dense::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  DPAUDIT_CHECK_EQ(grad_output.size(), out_);
  DPAUDIT_CHECK_EQ(last_input_.size(), in_) << "Backward before Forward";
  const float* g = grad_output.data();
  const float* x = last_input_.data();
  const float* w = weight_.data();
  float* dw = dweight_.data();
  float* db = dbias_.data();
  grad_input->ResizeTo(last_input_shape_);
  float* gx = grad_input->data();
  for (size_t i = 0; i < in_; ++i) gx[i] = 0.0f;
  for (size_t o = 0; o < out_; ++o) {
    float go = g[o];
    db[o] += go;
    float* dwrow = dw + o * in_;
    const float* wrow = w + o * in_;
    for (size_t i = 0; i < in_; ++i) {
      dwrow[i] += go * x[i];
      gx[i] += go * wrow[i];
    }
  }
}

std::unique_ptr<Layer> Dense::Clone() const {
  auto copy = std::make_unique<Dense>(in_, out_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

std::string Dense::Name() const {
  std::ostringstream os;
  os << "dense(" << in_ << "->" << out_ << ")";
  return os.str();
}

}  // namespace dpaudit
