// Layer interface for the small neural-network library behind DPSGD.
//
// Layers process ONE example at a time (no batch dimension). This makes
// per-example gradients — the quantity DPSGD clips — the natural output of a
// single backward pass, at the cost of vectorization we do not need for the
// paper's dataset sizes (|D| <= 1000, nets with a few thousand parameters).

#ifndef DPAUDIT_NN_LAYER_H_
#define DPAUDIT_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"

namespace dpaudit {

/// Abstract differentiable layer. Backward() must be called after Forward()
/// on the same example; parameter gradients accumulate across calls until
/// ZeroGrads().
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for one example.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Given dLoss/dOutput for the example last passed through Forward(),
  /// accumulates dLoss/dParams into the gradient tensors and returns
  /// dLoss/dInput.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Learnable parameter tensors (possibly empty). Pointers remain valid for
  /// the lifetime of the layer.
  virtual std::vector<Tensor*> Params() { return {}; }

  /// Gradient tensors, parallel to Params().
  virtual std::vector<Tensor*> Grads() { return {}; }

  /// Resets accumulated parameter gradients to zero.
  void ZeroGrads() {
    for (Tensor* g : Grads()) g->Fill(0.0f);
  }

  /// Draws initial parameter values; default is a no-op for stateless layers.
  virtual void Initialize(Rng&) {}

  /// Deep copy, including current parameter values.
  virtual std::unique_ptr<Layer> Clone() const = 0;

  /// Short layer name for diagnostics, e.g. "dense(128->100)".
  virtual std::string Name() const = 0;
};

}  // namespace dpaudit

#endif  // DPAUDIT_NN_LAYER_H_
