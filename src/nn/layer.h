// Layer interface for the small neural-network library behind DPSGD.
//
// Layers process ONE example at a time through ForwardInto/BackwardInto (no
// batch dimension). This makes per-example gradients — the quantity DPSGD
// clips — the natural output of a single backward pass. For throughput,
// layers may additionally implement the *batched lane* entry points
// (ForwardBatchInto/BackwardBatchInto), which push `lanes` independent
// examples through the layer at once in structure-of-arrays form: a lane
// tensor has the example's shape plus a trailing [lanes] dimension, so
// element e of lane l lives at data[e * lanes + l]. Each lane keeps its own
// accumulator and sums in the same ascending order as the scalar path, so
// per-lane results are bit-identical to per-example ForwardInto/BackwardInto
// for any lane count.

#ifndef DPAUDIT_NN_LAYER_H_
#define DPAUDIT_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/random.h"

namespace dpaudit {

/// Abstract differentiable layer. Backward must be called after Forward on
/// the same example; parameter gradients accumulate across calls until
/// ZeroGrads().
///
/// Layers implement the Into forms, which write into caller-provided output
/// tensors and reuse their storage: once shapes have stabilized (after the
/// first example), a forward/backward pass performs no heap allocation. The
/// output tensor must not alias the input tensor.
///
/// Input lifetime: the `input` tensor passed to ForwardInto (and the lane
/// tensor passed to ForwardBatchInto) must remain valid and unmodified until
/// the matching backward call. Layers cache a pointer to it instead of
/// copying; Network's GradientWorkspace keeps every layer's input alive
/// through the backward sweep.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for one example into `*output` (resized as
  /// needed; must not alias `input`).
  virtual void ForwardInto(const Tensor& input, Tensor* output) = 0;

  /// Given dLoss/dOutput for the example last passed through the forward
  /// pass, accumulates dLoss/dParams into the gradient tensors and writes
  /// dLoss/dInput into `*grad_input` (must not alias `grad_output`).
  virtual void BackwardInto(const Tensor& grad_output, Tensor* grad_input) = 0;

  /// True when the layer implements the batched lane entry points below.
  virtual bool SupportsBatchLanes() const { return false; }

  /// Computes the layer output for `lanes` examples packed in lane-SoA form
  /// (input shape = example shape + [lanes]) into `*output` (lane-SoA, must
  /// not alias `input`). Lane l's output is bit-identical to ForwardInto on
  /// lane l's example alone.
  virtual void ForwardBatchInto(const Tensor& input, size_t lanes,
                                Tensor* output) {
    (void)input;
    (void)lanes;
    (void)output;
    DPAUDIT_CHECK(false) << Name() << " does not implement batch lanes";
  }

  /// Batched counterpart of BackwardInto over the lane pack last passed
  /// through ForwardBatchInto. Per-lane parameter gradients are stored in
  /// the layer's lane buffers (read back via LaneGradsTo), NOT accumulated
  /// into Grads(). A null `grad_input` skips computing dLoss/dInput — legal
  /// only for the first layer of a network, where it would be discarded.
  virtual void BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                                 Tensor* grad_input) {
    (void)grad_output;
    (void)lanes;
    (void)grad_input;
    DPAUDIT_CHECK(false) << Name() << " does not implement batch lanes";
  }

  /// Copies lane `lane`'s parameter gradients from the last
  /// BackwardBatchInto into `dst`, flattened in Grads() order. Writes
  /// nothing for parameterless layers.
  virtual void LaneGradsTo(size_t lane, float* dst) const {
    (void)lane;
    (void)dst;
  }

  /// Allocating conveniences over the Into forms. The caller owns `input`
  /// and must keep it alive until any subsequent Backward (see the input
  /// lifetime note above).
  Tensor Forward(const Tensor& input) {
    Tensor output;
    ForwardInto(input, &output);
    return output;
  }
  Tensor Backward(const Tensor& grad_output) {
    Tensor grad_input;
    BackwardInto(grad_output, &grad_input);
    return grad_input;
  }

  /// Learnable parameter tensors (possibly empty). Pointers remain valid for
  /// the lifetime of the layer.
  virtual std::vector<Tensor*> Params() { return {}; }

  /// Gradient tensors, parallel to Params().
  virtual std::vector<Tensor*> Grads() { return {}; }

  /// Resets accumulated parameter gradients to zero.
  void ZeroGrads() {
    for (Tensor* g : Grads()) g->Fill(0.0f);
  }

  /// Draws initial parameter values; default is a no-op for stateless layers.
  virtual void Initialize(Rng&) {}

  /// Deep copy, including current parameter values.
  virtual std::unique_ptr<Layer> Clone() const = 0;

  /// Short layer name for diagnostics, e.g. "dense(128->100)".
  virtual std::string Name() const = 0;
};

}  // namespace dpaudit

#endif  // DPAUDIT_NN_LAYER_H_
