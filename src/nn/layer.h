// Layer interface for the small neural-network library behind DPSGD.
//
// Layers process ONE example at a time (no batch dimension). This makes
// per-example gradients — the quantity DPSGD clips — the natural output of a
// single backward pass, at the cost of vectorization we do not need for the
// paper's dataset sizes (|D| <= 1000, nets with a few thousand parameters).

#ifndef DPAUDIT_NN_LAYER_H_
#define DPAUDIT_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"

namespace dpaudit {

/// Abstract differentiable layer. Backward must be called after Forward on
/// the same example; parameter gradients accumulate across calls until
/// ZeroGrads().
///
/// Layers implement the Into forms, which write into caller-provided output
/// tensors and reuse their storage: once shapes have stabilized (after the
/// first example), a forward/backward pass performs no heap allocation. The
/// output tensor must not alias the input tensor.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for one example into `*output` (resized as
  /// needed; must not alias `input`).
  virtual void ForwardInto(const Tensor& input, Tensor* output) = 0;

  /// Given dLoss/dOutput for the example last passed through the forward
  /// pass, accumulates dLoss/dParams into the gradient tensors and writes
  /// dLoss/dInput into `*grad_input` (must not alias `grad_output`).
  virtual void BackwardInto(const Tensor& grad_output, Tensor* grad_input) = 0;

  /// Allocating conveniences over the Into forms.
  Tensor Forward(const Tensor& input) {
    Tensor output;
    ForwardInto(input, &output);
    return output;
  }
  Tensor Backward(const Tensor& grad_output) {
    Tensor grad_input;
    BackwardInto(grad_output, &grad_input);
    return grad_input;
  }

  /// Learnable parameter tensors (possibly empty). Pointers remain valid for
  /// the lifetime of the layer.
  virtual std::vector<Tensor*> Params() { return {}; }

  /// Gradient tensors, parallel to Params().
  virtual std::vector<Tensor*> Grads() { return {}; }

  /// Resets accumulated parameter gradients to zero.
  void ZeroGrads() {
    for (Tensor* g : Grads()) g->Fill(0.0f);
  }

  /// Draws initial parameter values; default is a no-op for stateless layers.
  virtual void Initialize(Rng&) {}

  /// Deep copy, including current parameter values.
  virtual std::unique_ptr<Layer> Clone() const = 0;

  /// Short layer name for diagnostics, e.g. "dense(128->100)".
  virtual std::string Name() const = 0;
};

}  // namespace dpaudit

#endif  // DPAUDIT_NN_LAYER_H_
