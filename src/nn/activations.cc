#include "nn/activations.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/simd.h"

namespace dpaudit {

namespace {

#if defined(DPAUDIT_X86_DISPATCH)

// Pure selects, no arithmetic, so the vector forms are trivially
// bit-identical; the point is replacing a data-dependent branch per element
// (which mispredicts heavily on real activations) with branchless masks.

__attribute__((target("avx2"))) void ReluForwardAvx2(const float* in,
                                                     float* out, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(in + i);
    // x where x > 0, +0.0 otherwise (NaN compares false, like the scalar).
    _mm256_storeu_ps(out + i,
                     _mm256_and_ps(_mm256_cmp_ps(x, zero, _CMP_GT_OQ), x));
  }
  for (; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

__attribute__((target("avx2"))) void ReluBackwardAvx2(const float* x,
                                                      const float* g,
                                                      float* gi, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 gv = _mm256_loadu_ps(g + i);
    // +0.0 where x <= 0, g otherwise; x = NaN compares false and takes g,
    // matching the scalar `x <= 0 ? 0 : g`.
    _mm256_storeu_ps(
        gi + i,
        _mm256_andnot_ps(_mm256_cmp_ps(xv, zero, _CMP_LE_OQ), gv));
  }
  for (; i < n; ++i) gi[i] = x[i] <= 0.0f ? 0.0f : g[i];
}

#endif  // DPAUDIT_X86_DISPATCH

}  // namespace

void Relu::ForwardInto(const Tensor& input, Tensor* output) {
  last_input_ = &input;
  output->ResizeTo(input.shape());
  const float* in = input.data();
  float* out = output->data();
  const size_t n = input.size();
#if defined(DPAUDIT_X86_DISPATCH)
  if (HasAvx2()) {
    ReluForwardAvx2(in, out, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

void Relu::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  DPAUDIT_CHECK(last_input_ != nullptr) << "Backward before Forward";
  DPAUDIT_CHECK_EQ(grad_output.size(), last_input_->size());
  grad_input->ResizeTo(grad_output.shape());
  const float* g = grad_output.data();
  const float* x = last_input_->data();
  float* gi = grad_input->data();
  const size_t n = grad_output.size();
#if defined(DPAUDIT_X86_DISPATCH)
  if (HasAvx2()) {
    ReluBackwardAvx2(x, g, gi, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) gi[i] = x[i] <= 0.0f ? 0.0f : g[i];
}

void Relu::ForwardBatchInto(const Tensor& input, size_t lanes,
                            Tensor* output) {
  DPAUDIT_CHECK_GT(lanes, 0u);
  DPAUDIT_CHECK_EQ(input.size() % lanes, 0u);
  // The lane dimension is innermost and max(0, x) is elementwise, so the
  // scalar path over the packed storage computes exactly the per-lane values.
  ForwardInto(input, output);
}

void Relu::BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                             Tensor* grad_input) {
  DPAUDIT_CHECK_GT(lanes, 0u);
  if (grad_input == nullptr) return;  // no parameters, nothing else to do
  BackwardInto(grad_output, grad_input);
}

void Softmax::ForwardInto(const Tensor& input, Tensor* output) {
  *output = input;
  float hi = *std::max_element(output->vec().begin(), output->vec().end());
  double sum = 0.0;
  for (float& x : output->vec()) {
    x = std::exp(x - hi);
    sum += x;
  }
  for (float& x : output->vec()) x = static_cast<float>(x / sum);
  last_output_ = *output;
}

void Softmax::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  DPAUDIT_CHECK_EQ(grad_output.size(), last_output_.size());
  // dL/dx_i = s_i * (g_i - sum_j g_j s_j).
  double weighted = 0.0;
  for (size_t j = 0; j < grad_output.size(); ++j) {
    weighted += static_cast<double>(grad_output[j]) * last_output_[j];
  }
  grad_input->ResizeTo(grad_output.shape());
  for (size_t i = 0; i < grad_output.size(); ++i) {
    (*grad_input)[i] = static_cast<float>(
        last_output_[i] * (static_cast<double>(grad_output[i]) - weighted));
  }
}

}  // namespace dpaudit
