#include "nn/activations.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dpaudit {

Tensor Relu::Forward(const Tensor& input) {
  last_input_ = input;
  Tensor out = input;
  for (float& x : out.vec()) x = std::max(0.0f, x);
  return out;
}

Tensor Relu::Backward(const Tensor& grad_output) {
  DPAUDIT_CHECK_EQ(grad_output.size(), last_input_.size());
  Tensor grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    if (last_input_[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}

Tensor Softmax::Forward(const Tensor& input) {
  Tensor out = input;
  float hi = *std::max_element(out.vec().begin(), out.vec().end());
  double sum = 0.0;
  for (float& x : out.vec()) {
    x = std::exp(x - hi);
    sum += x;
  }
  for (float& x : out.vec()) x = static_cast<float>(x / sum);
  last_output_ = out;
  return out;
}

Tensor Softmax::Backward(const Tensor& grad_output) {
  DPAUDIT_CHECK_EQ(grad_output.size(), last_output_.size());
  // dL/dx_i = s_i * (g_i - sum_j g_j s_j).
  double weighted = 0.0;
  for (size_t j = 0; j < grad_output.size(); ++j) {
    weighted += static_cast<double>(grad_output[j]) * last_output_[j];
  }
  Tensor grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    grad[i] = static_cast<float>(
        last_output_[i] * (static_cast<double>(grad_output[i]) - weighted));
  }
  return grad;
}

}  // namespace dpaudit
