#include "nn/gradient_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace dpaudit {

namespace {

/// True when every input tensor shares inputs[0]'s shape — the precondition
/// for packing them into one lane tensor.
bool HomogeneousShapes(const std::vector<const Tensor*>& inputs) {
  if (inputs.empty()) return true;
  const std::vector<size_t>& shape = inputs[0]->shape();
  for (size_t j = 1; j < inputs.size(); ++j) {
    if (inputs[j]->shape() != shape) return false;
  }
  return true;
}

}  // namespace

GradientEngine::GradientEngine(const Network& architecture, Options options)
    : threads_(options.threads == 0 ? DefaultThreadCount() : options.threads),
      chunk_(std::max<size_t>(1, options.chunk)),
      lanes_(options.batch_lanes == Options::kBatchLanesAuto
                 ? BatchLanesFromEnv()
                 : std::min(options.batch_lanes, kMaxBatchLanes)),
      num_params_(architecture.NumParams()),
      ranges_(architecture.LayerParamRanges()) {
  // A lane count of 1 is just the scalar pass with pack/unpack overhead.
  if (lanes_ == 1 || !architecture.SupportsBatchLanes()) lanes_ = 0;
  // Chunks always hold whole packs so ragged packs only appear at the end of
  // a wave or the dataset (raggedness cannot affect results either way).
  if (lanes_ > 0) {
    chunk_ = ((std::max(chunk_, lanes_) + lanes_ - 1) / lanes_) * lanes_;
  }
  replicas_.reserve(threads_);
  for (size_t t = 0; t < threads_; ++t) {
    replicas_.push_back(architecture.Clone());
  }
  workspaces_.resize(threads_);
  slots_.resize(threads_ == 1 ? std::max<size_t>(1, lanes_)
                              : threads_ * chunk_);
  pack_inputs_.resize(threads_);
  pack_labels_.resize(threads_);
  pack_dsts_.resize(threads_);
  pad_grads_.resize(threads_);
  // Worker-affine state (per-worker model replicas and workspaces indexed by
  // worker id) needs a dedicated pool with a stable width; the shared pool's
  // width is a process-global setting. One pool per engine, reused across
  // every wave of the training run — not per-call churn.
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(threads_);  // NOLINT(dpaudit-raw-pool)
  }
}

void GradientEngine::SyncParams(const Network& source) {
  std::vector<float> flat = source.FlatParams();
  DPAUDIT_CHECK_EQ(flat.size(), num_params_);
  for (Network& replica : replicas_) replica.SetFlatParams(flat);
}

void GradientEngine::FillNorms(NormMode mode, Slot* slot) {
  if (mode == NormMode::kWhole) {
    slot->norm = L2Norm(slot->grad.data(), num_params_);
  } else {
    slot->layer_norms.resize(ranges_.size());
    for (size_t r = 0; r < ranges_.size(); ++r) {
      slot->layer_norms[r] =
          L2Norm(slot->grad.data() + ranges_[r].offset, ranges_[r].size);
    }
  }
}

void GradientEngine::ComputeSlot(size_t worker, const Tensor& input,
                                 size_t label, NormMode mode, Slot* slot) {
  slot->grad.resize(num_params_);
  replicas_[worker].PerExampleGradientTo(input, label, &workspaces_[worker],
                                         slot->grad.data());
  FillNorms(mode, slot);
}

void GradientEngine::ComputePack(size_t worker,
                                 const std::vector<const Tensor*>& inputs,
                                 const size_t* labels, size_t begin_j,
                                 size_t count, NormMode mode, Slot* slots) {
  DPAUDIT_METRIC_DISTRIBUTION("dpaudit_gradient_engine_lane_fill", 0.0, 1.0,
                              16,
                              static_cast<double>(count) /
                                  static_cast<double>(lanes_));
  // A ragged pack must not run the lane kernels at its own width: the fast
  // wrappers pin the lane count, and the runtime-width fallback is slower
  // than the scalar path. Instead, a mostly-full tail is padded to the full
  // width with copies of its last example (a full-width pack costs less than
  // `count` scalar passes once count exceeds ~lanes/2), and a mostly-empty
  // tail runs the scalar path example by example. Padded lanes scatter into
  // a discard buffer; lanes never interact, so the real lanes' gradients are
  // bit-identical regardless of which route runs.
  if (count * 2 <= lanes_) {
    for (size_t l = 0; l < count; ++l) {
      ComputeSlot(worker, *inputs[begin_j + l], labels[begin_j + l], mode,
                  &slots[l]);
    }
    return;
  }
  std::vector<const Tensor*>& pack_in = pack_inputs_[worker];
  std::vector<float*>& pack_dst = pack_dsts_[worker];
  pack_in.resize(lanes_);
  pack_dst.resize(lanes_);
  for (size_t l = 0; l < count; ++l) {
    pack_in[l] = inputs[begin_j + l];
    slots[l].grad.resize(num_params_);
    pack_dst[l] = slots[l].grad.data();
  }
  const size_t* pack_labels = labels + begin_j;
  if (count < lanes_) {
    std::vector<size_t>& padded = pack_labels_[worker];
    padded.assign(labels + begin_j, labels + begin_j + count);
    padded.resize(lanes_, padded[count - 1]);
    pack_labels = padded.data();
    std::vector<float>& discard = pad_grads_[worker];
    discard.resize(num_params_);
    for (size_t l = count; l < lanes_; ++l) {
      pack_in[l] = pack_in[count - 1];
      pack_dst[l] = discard.data();
    }
  }
  replicas_[worker].PerExampleGradientBatchTo(pack_in.data(), pack_labels,
                                              lanes_, &workspaces_[worker],
                                              pack_dst.data());
  for (size_t l = 0; l < count; ++l) FillNorms(mode, &slots[l]);
}

void GradientEngine::VisitPerExampleGradients(
    const std::vector<const Tensor*>& inputs, const std::vector<size_t>& labels,
    NormMode mode,
    const std::function<void(size_t, const PerExampleGradView&)>& visit) {
  DPAUDIT_CHECK_EQ(inputs.size(), labels.size());
  const size_t n = inputs.size();
  DPAUDIT_METRIC_COUNT("dpaudit_per_example_gradients_total", n);
  // The lane path packs same-shaped examples; a heterogeneous call (never
  // the case for the paper's fixed-shape datasets) falls back to the scalar
  // path, which is bit-identical anyway.
  const bool use_lanes = lanes_ > 0 && HomogeneousShapes(inputs);
  if (threads_ == 1) {
    if (use_lanes) {
      for (size_t j = 0; j < n; j += lanes_) {
        const size_t count = std::min(lanes_, n - j);
        ComputePack(0, inputs, labels.data(), j, count, mode, slots_.data());
        for (size_t l = 0; l < count; ++l) {
          const Slot& slot = slots_[l];
          PerExampleGradView view{slot.grad.data(), slot.norm,
                                  mode == NormMode::kPerLayer
                                      ? slot.layer_norms.data()
                                      : nullptr};
          visit(j + l, view);
        }
      }
      return;
    }
    Slot& slot = slots_[0];
    for (size_t j = 0; j < n; ++j) {
      ComputeSlot(0, *inputs[j], labels[j], mode, &slot);
      PerExampleGradView view{slot.grad.data(), slot.norm,
                              mode == NormMode::kPerLayer
                                  ? slot.layer_norms.data()
                                  : nullptr};
      visit(j, view);
    }
    return;
  }
  // Waves of threads * chunk examples: workers claim fixed-size chunks from
  // an atomic cursor and fill the wave's slots, then the calling thread
  // visits the wave in example order. The work-claiming schedule balances
  // load but cannot affect results: gradients are computed independently per
  // example and only the ordered visitation reduces them.
  const size_t wave = slots_.size();
  for (size_t begin = 0; begin < n; begin += wave) {
    const size_t end = std::min(n, begin + wave);
    std::atomic<size_t> next{begin};
    for (size_t t = 0; t < threads_; ++t) {
      pool_->Schedule([this, t, begin, end, mode, use_lanes, &next, &inputs,
                       &labels] {
        for (;;) {
          const size_t chunk_begin = next.fetch_add(chunk_);
          if (chunk_begin >= end) return;
          const size_t chunk_end = std::min(end, chunk_begin + chunk_);
          if (use_lanes) {
            // Chunk size is a multiple of lanes_, so ragged packs only occur
            // against the wave/dataset tail at chunk_end.
            for (size_t j = chunk_begin; j < chunk_end; j += lanes_) {
              const size_t count = std::min(lanes_, chunk_end - j);
              ComputePack(t, inputs, labels.data(), j, count, mode,
                          &slots_[j - begin]);
            }
          } else {
            for (size_t j = chunk_begin; j < chunk_end; ++j) {
              ComputeSlot(t, *inputs[j], labels[j], mode,
                          &slots_[j - begin]);
            }
          }
        }
      });
    }
    pool_->Wait();
    for (size_t j = begin; j < end; ++j) {
      const Slot& slot = slots_[j - begin];
      PerExampleGradView view{slot.grad.data(), slot.norm,
                              mode == NormMode::kPerLayer
                                  ? slot.layer_norms.data()
                                  : nullptr};
      visit(j, view);
    }
  }
}

void GradientEngine::VisitPerExampleGradients(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    NormMode mode,
    const std::function<void(size_t, const PerExampleGradView&)>& visit) {
  std::vector<const Tensor*> ptrs(inputs.size());
  for (size_t j = 0; j < inputs.size(); ++j) ptrs[j] = &inputs[j];
  VisitPerExampleGradients(ptrs, labels, mode, visit);
}

std::vector<float> GradientEngine::ClippedGradientSum(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    double clip_norm, std::vector<double>* per_example_norms) {
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  std::vector<float> sum(num_params_, 0.0f);
  if (per_example_norms != nullptr) per_example_norms->clear();
  VisitPerExampleGradients(
      inputs, labels, NormMode::kWhole,
      [&](size_t, const PerExampleGradView& view) {
        if (per_example_norms != nullptr) {
          per_example_norms->push_back(view.norm);
        }
        AccumulateScaled(sum.data(), view.grad, num_params_,
                         ClipScale(view.norm, clip_norm));
      });
  return sum;
}

std::vector<float> GradientEngine::PerLayerClippedGradientSum(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    double clip_norm) {
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  DPAUDIT_CHECK(!ranges_.empty());
  const double per_layer_clip =
      clip_norm / std::sqrt(static_cast<double>(ranges_.size()));
  std::vector<float> sum(num_params_, 0.0f);
  VisitPerExampleGradients(
      inputs, labels, NormMode::kPerLayer,
      [&](size_t, const PerExampleGradView& view) {
        for (size_t r = 0; r < ranges_.size(); ++r) {
          AccumulateScaled(sum.data() + ranges_[r].offset,
                           view.grad + ranges_[r].offset, ranges_[r].size,
                           ClipScale(view.layer_norms[r], per_layer_clip));
        }
      });
  return sum;
}

}  // namespace dpaudit
