#include "nn/gradient_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace dpaudit {

GradientEngine::GradientEngine(const Network& architecture, Options options)
    : threads_(options.threads == 0 ? DefaultThreadCount() : options.threads),
      chunk_(std::max<size_t>(1, options.chunk)),
      num_params_(architecture.NumParams()),
      ranges_(architecture.LayerParamRanges()) {
  replicas_.reserve(threads_);
  for (size_t t = 0; t < threads_; ++t) {
    replicas_.push_back(architecture.Clone());
  }
  workspaces_.resize(threads_);
  slots_.resize(threads_ == 1 ? 1 : threads_ * chunk_);
  // Worker-affine state (per-worker model replicas and workspaces indexed by
  // worker id) needs a dedicated pool with a stable width; the shared pool's
  // width is a process-global setting. One pool per engine, reused across
  // every wave of the training run — not per-call churn.
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(threads_);  // NOLINT(dpaudit-raw-pool)
  }
}

void GradientEngine::SyncParams(const Network& source) {
  std::vector<float> flat = source.FlatParams();
  DPAUDIT_CHECK_EQ(flat.size(), num_params_);
  for (Network& replica : replicas_) replica.SetFlatParams(flat);
}

void GradientEngine::ComputeSlot(size_t worker, const Tensor& input,
                                 size_t label, NormMode mode, Slot* slot) {
  slot->grad.resize(num_params_);
  replicas_[worker].PerExampleGradientTo(input, label, &workspaces_[worker],
                                         slot->grad.data());
  if (mode == NormMode::kWhole) {
    slot->norm = L2Norm(slot->grad.data(), num_params_);
  } else {
    slot->layer_norms.resize(ranges_.size());
    for (size_t r = 0; r < ranges_.size(); ++r) {
      slot->layer_norms[r] =
          L2Norm(slot->grad.data() + ranges_[r].offset, ranges_[r].size);
    }
  }
}

void GradientEngine::VisitPerExampleGradients(
    const std::vector<const Tensor*>& inputs, const std::vector<size_t>& labels,
    NormMode mode,
    const std::function<void(size_t, const PerExampleGradView&)>& visit) {
  DPAUDIT_CHECK_EQ(inputs.size(), labels.size());
  const size_t n = inputs.size();
  DPAUDIT_METRIC_COUNT("dpaudit_per_example_gradients_total", n);
  if (threads_ == 1) {
    Slot& slot = slots_[0];
    for (size_t j = 0; j < n; ++j) {
      ComputeSlot(0, *inputs[j], labels[j], mode, &slot);
      PerExampleGradView view{slot.grad.data(), slot.norm,
                              mode == NormMode::kPerLayer
                                  ? slot.layer_norms.data()
                                  : nullptr};
      visit(j, view);
    }
    return;
  }
  // Waves of threads * chunk examples: workers claim fixed-size chunks from
  // an atomic cursor and fill the wave's slots, then the calling thread
  // visits the wave in example order. The work-claiming schedule balances
  // load but cannot affect results: gradients are computed independently per
  // example and only the ordered visitation reduces them.
  const size_t wave = slots_.size();
  for (size_t begin = 0; begin < n; begin += wave) {
    const size_t end = std::min(n, begin + wave);
    std::atomic<size_t> next{begin};
    for (size_t t = 0; t < threads_; ++t) {
      pool_->Schedule([this, t, begin, end, mode, &next, &inputs, &labels] {
        for (;;) {
          const size_t chunk_begin = next.fetch_add(chunk_);
          if (chunk_begin >= end) return;
          const size_t chunk_end = std::min(end, chunk_begin + chunk_);
          for (size_t j = chunk_begin; j < chunk_end; ++j) {
            ComputeSlot(t, *inputs[j], labels[j], mode,
                        &slots_[j - begin]);
          }
        }
      });
    }
    pool_->Wait();
    for (size_t j = begin; j < end; ++j) {
      const Slot& slot = slots_[j - begin];
      PerExampleGradView view{slot.grad.data(), slot.norm,
                              mode == NormMode::kPerLayer
                                  ? slot.layer_norms.data()
                                  : nullptr};
      visit(j, view);
    }
  }
}

void GradientEngine::VisitPerExampleGradients(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    NormMode mode,
    const std::function<void(size_t, const PerExampleGradView&)>& visit) {
  std::vector<const Tensor*> ptrs(inputs.size());
  for (size_t j = 0; j < inputs.size(); ++j) ptrs[j] = &inputs[j];
  VisitPerExampleGradients(ptrs, labels, mode, visit);
}

std::vector<float> GradientEngine::ClippedGradientSum(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    double clip_norm, std::vector<double>* per_example_norms) {
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  std::vector<float> sum(num_params_, 0.0f);
  if (per_example_norms != nullptr) per_example_norms->clear();
  VisitPerExampleGradients(
      inputs, labels, NormMode::kWhole,
      [&](size_t, const PerExampleGradView& view) {
        if (per_example_norms != nullptr) {
          per_example_norms->push_back(view.norm);
        }
        AccumulateScaled(sum.data(), view.grad, num_params_,
                         ClipScale(view.norm, clip_norm));
      });
  return sum;
}

std::vector<float> GradientEngine::PerLayerClippedGradientSum(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    double clip_norm) {
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  DPAUDIT_CHECK(!ranges_.empty());
  const double per_layer_clip =
      clip_norm / std::sqrt(static_cast<double>(ranges_.size()));
  std::vector<float> sum(num_params_, 0.0f);
  VisitPerExampleGradients(
      inputs, labels, NormMode::kPerLayer,
      [&](size_t, const PerExampleGradView& view) {
        for (size_t r = 0; r < ranges_.size(); ++r) {
          AccumulateScaled(sum.data() + ranges_[r].offset,
                           view.grad + ranges_[r].offset, ranges_[r].size,
                           ClipScale(view.layer_norms[r], per_layer_clip));
        }
      });
  return sum;
}

}  // namespace dpaudit
