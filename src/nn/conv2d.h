// 2D convolution (valid padding, stride 1).

#ifndef DPAUDIT_NN_CONV2D_H_
#define DPAUDIT_NN_CONV2D_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace dpaudit {

/// Convolves a [C, H, W] input with `filters` kernels of size
/// [C, kernel, kernel], producing [F, H-k+1, W-k+1]. Direct (non-im2col)
/// loops: the paper's nets are small enough that clarity wins.
class Conv2d : public Layer {
 public:
  Conv2d(size_t in_channels, size_t out_channels, size_t kernel);

  void ForwardInto(const Tensor& input, Tensor* output) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  bool SupportsBatchLanes() const override { return true; }
  void ForwardBatchInto(const Tensor& input, size_t lanes,
                        Tensor* output) override;
  void BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                         Tensor* grad_input) override;
  void LaneGradsTo(size_t lane, float* dst) const override;
  std::vector<Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Grads() override { return {&dweight_, &dbias_}; }
  void Initialize(Rng& rng) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override;

 private:
  size_t in_channels_;
  size_t out_channels_;
  size_t kernel_;
  Tensor weight_;   // [F, C, k, k]
  Tensor bias_;     // [F]
  Tensor dweight_;
  Tensor dbias_;
  // Cached pointer to the forward input (see the lifetime contract in
  // layer.h); the caller keeps it alive through backward.
  const Tensor* last_input_ = nullptr;  // [C, H, W]
  // Backward-pass accumulators for the generic (non-3x3) kernel path, kept
  // as a member so steady-state passes do not allocate.
  std::vector<double> wacc_;
  // Double-widened copies of the input and grad-output planes for the AVX2
  // weight-gradient kernels (widening is exact, so sums are unchanged).
  std::vector<double> in_pd_;
  std::vector<double> g_pd_;
  // Batched lane state: per-lane parameter gradients in lane-SoA form plus
  // the tap-accumulator scratch for the lane weight-gradient pass.
  const Tensor* last_batch_input_ = nullptr;  // [C, H, W, lanes]
  size_t batch_lanes_ = 0;
  std::vector<float> lane_dweight_;  // [F * C * k * k, lanes]
  std::vector<float> lane_dbias_;    // [F, lanes]
  std::vector<double> lane_wacc_;    // [k * k, lanes]
};

}  // namespace dpaudit

#endif  // DPAUDIT_NN_CONV2D_H_
