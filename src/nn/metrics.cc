#include "nn/metrics.h"

#include <sstream>

#include "util/logging.h"

namespace dpaudit {

ConfusionMatrix::ConfusionMatrix(size_t num_classes)
    : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {
  DPAUDIT_CHECK_GT(num_classes_, 0u);
}

void ConfusionMatrix::Record(size_t true_class, size_t predicted_class) {
  DPAUDIT_CHECK_LT(true_class, num_classes_);
  DPAUDIT_CHECK_LT(predicted_class, num_classes_);
  ++counts_[true_class * num_classes_ + predicted_class];
  ++total_;
}

size_t ConfusionMatrix::count(size_t true_class,
                              size_t predicted_class) const {
  DPAUDIT_CHECK_LT(true_class, num_classes_);
  DPAUDIT_CHECK_LT(predicted_class, num_classes_);
  return counts_[true_class * num_classes_ + predicted_class];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t correct = 0;
  for (size_t c = 0; c < num_classes_; ++c) {
    correct += counts_[c * num_classes_ + c];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Recall(size_t cls) const {
  DPAUDIT_CHECK_LT(cls, num_classes_);
  size_t occurrences = 0;
  for (size_t p = 0; p < num_classes_; ++p) {
    occurrences += counts_[cls * num_classes_ + p];
  }
  if (occurrences == 0) return 0.0;
  return static_cast<double>(counts_[cls * num_classes_ + cls]) /
         static_cast<double>(occurrences);
}

double ConfusionMatrix::Precision(size_t cls) const {
  DPAUDIT_CHECK_LT(cls, num_classes_);
  size_t predictions = 0;
  for (size_t t = 0; t < num_classes_; ++t) {
    predictions += counts_[t * num_classes_ + cls];
  }
  if (predictions == 0) return 0.0;
  return static_cast<double>(counts_[cls * num_classes_ + cls]) /
         static_cast<double>(predictions);
}

double ConfusionMatrix::F1(size_t cls) const {
  double p = Precision(cls);
  double r = Recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::MacroF1() const {
  double sum = 0.0;
  size_t present = 0;
  for (size_t cls = 0; cls < num_classes_; ++cls) {
    size_t occurrences = 0;
    for (size_t p = 0; p < num_classes_; ++p) {
      occurrences += counts_[cls * num_classes_ + p];
    }
    if (occurrences == 0) continue;
    sum += F1(cls);
    ++present;
  }
  if (present == 0) return 0.0;
  return sum / static_cast<double>(present);
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream os;
  os << "true\\pred";
  for (size_t p = 0; p < num_classes_; ++p) os << "\t" << p;
  os << "\n";
  for (size_t t = 0; t < num_classes_; ++t) {
    os << t;
    for (size_t p = 0; p < num_classes_; ++p) {
      os << "\t" << counts_[t * num_classes_ + p];
    }
    os << "\n";
  }
  return os.str();
}

ConfusionMatrix EvaluateConfusion(Network& model,
                                  const std::vector<Tensor>& inputs,
                                  const std::vector<size_t>& labels,
                                  size_t num_classes) {
  DPAUDIT_CHECK_EQ(inputs.size(), labels.size());
  ConfusionMatrix matrix(num_classes);
  for (size_t i = 0; i < inputs.size(); ++i) {
    matrix.Record(labels[i], model.Predict(inputs[i]));
  }
  return matrix;
}

}  // namespace dpaudit
