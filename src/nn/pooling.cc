#include "nn/pooling.h"

#include <sstream>

#include "util/logging.h"

namespace dpaudit {

MaxPool2d::MaxPool2d(size_t pool) : pool_(pool) {
  DPAUDIT_CHECK_GT(pool_, 0u);
}

Tensor MaxPool2d::Forward(const Tensor& input) {
  DPAUDIT_CHECK_EQ(input.rank(), 3u);
  size_t c = input.dim(0);
  size_t h = input.dim(1);
  size_t w = input.dim(2);
  DPAUDIT_CHECK_GE(h, pool_);
  DPAUDIT_CHECK_GE(w, pool_);
  size_t oh = h / pool_;
  size_t ow = w / pool_;
  input_shape_ = input.shape();
  Tensor out({c, oh, ow});
  argmax_.assign(c * oh * ow, 0);
  const float* in = input.data();
  float* o = out.data();
  size_t out_idx = 0;
  for (size_t ch = 0; ch < c; ++ch) {
    const float* plane = in + ch * h * w;
    for (size_t y = 0; y < oh; ++y) {
      for (size_t x = 0; x < ow; ++x) {
        size_t base = y * pool_ * w + x * pool_;
        float best = plane[base];
        size_t best_off = base;
        for (size_t py = 0; py < pool_; ++py) {
          const float* row = plane + base + py * w;
          for (size_t px = 0; px < pool_; ++px) {
            if (row[px] > best) {
              best = row[px];
              best_off = base + py * w + px;
            }
          }
        }
        o[out_idx] = best;
        argmax_[out_idx++] = ch * h * w + best_off;
      }
    }
  }
  return out;
}

Tensor MaxPool2d::Backward(const Tensor& grad_output) {
  DPAUDIT_CHECK_EQ(grad_output.size(), argmax_.size())
      << "Backward before Forward, or shape changed";
  Tensor grad_input(input_shape_);
  for (size_t i = 0; i < argmax_.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

std::string MaxPool2d::Name() const {
  std::ostringstream os;
  os << "maxpool(" << pool_ << "x" << pool_ << ")";
  return os.str();
}

}  // namespace dpaudit
