#include "nn/pooling.h"

#include <sstream>

#include "tensor/tensor.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/simd.h"

namespace dpaudit {

namespace {

#if defined(DPAUDIT_X86_DISPATCH)

// 2x2/stride-2 pooling over one pair of input rows, eight output columns per
// iteration; requires ow >= 8. A ragged tail is covered by re-running the
// window over the last eight columns — pooling is a pure function of the
// input, so recomputed outputs and argmaxes are identical to the first pass.
// The four candidates are compared in the same (py, px) order as the scalar
// code with strict greater-than, so ties resolve to the same argmax.
// best_off lanes hold plane-relative offsets as int32 (planes in this
// codebase are far below 2^31 elements).
__attribute__((target("avx2"))) void MaxPool2RowAvx2(
    const float* row0, const float* row1, int base_off, int w, float* out_row,
    int* off_row, size_t ow) {
  size_t x = 0;
  while (true) {
    const float* p0 = row0 + 2 * x;
    const float* p1 = row1 + 2 * x;
    // Deinterleave 16 consecutive floats into even (px=0) and odd (px=1)
    // column candidates for 8 outputs.
    const __m256 a0 = _mm256_loadu_ps(p0);
    const __m256 a1 = _mm256_loadu_ps(p0 + 8);
    const __m256 b0 = _mm256_loadu_ps(p1);
    const __m256 b1 = _mm256_loadu_ps(p1 + 8);
    const __m256 r0e = _mm256_castpd_ps(_mm256_permute4x64_pd(
        _mm256_castps_pd(_mm256_shuffle_ps(a0, a1, _MM_SHUFFLE(2, 0, 2, 0))),
        _MM_SHUFFLE(3, 1, 2, 0)));
    const __m256 r0o = _mm256_castpd_ps(_mm256_permute4x64_pd(
        _mm256_castps_pd(_mm256_shuffle_ps(a0, a1, _MM_SHUFFLE(3, 1, 3, 1))),
        _MM_SHUFFLE(3, 1, 2, 0)));
    const __m256 r1e = _mm256_castpd_ps(_mm256_permute4x64_pd(
        _mm256_castps_pd(_mm256_shuffle_ps(b0, b1, _MM_SHUFFLE(2, 0, 2, 0))),
        _MM_SHUFFLE(3, 1, 2, 0)));
    const __m256 r1o = _mm256_castpd_ps(_mm256_permute4x64_pd(
        _mm256_castps_pd(_mm256_shuffle_ps(b0, b1, _MM_SHUFFLE(3, 1, 3, 1))),
        _MM_SHUFFLE(3, 1, 2, 0)));
    const __m256i off_base = _mm256_add_epi32(
        _mm256_set1_epi32(base_off + 2 * static_cast<int>(x)),
        _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14));
    __m256 best = r0e;
    __m256i best_off = off_base;
    __m256 mask = _mm256_cmp_ps(r0o, best, _CMP_GT_OQ);
    best = _mm256_blendv_ps(best, r0o, mask);
    best_off = _mm256_blendv_epi8(
        best_off, _mm256_add_epi32(off_base, _mm256_set1_epi32(1)),
        _mm256_castps_si256(mask));
    const __m256i off_row1 = _mm256_add_epi32(off_base, _mm256_set1_epi32(w));
    mask = _mm256_cmp_ps(r1e, best, _CMP_GT_OQ);
    best = _mm256_blendv_ps(best, r1e, mask);
    best_off = _mm256_blendv_epi8(best_off, off_row1,
                                  _mm256_castps_si256(mask));
    mask = _mm256_cmp_ps(r1o, best, _CMP_GT_OQ);
    best = _mm256_blendv_ps(best, r1o, mask);
    best_off = _mm256_blendv_epi8(
        best_off, _mm256_add_epi32(off_row1, _mm256_set1_epi32(1)),
        _mm256_castps_si256(mask));
    _mm256_storeu_ps(out_row + x, best);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(off_row + x), best_off);
    if (x + 8 >= ow) break;
    x = (x + 16 <= ow) ? x + 8 : ow - 8;
  }
}

// Four output columns per iteration for rows with 4 <= ow < 8, same scheme
// as the 8-wide version (overlapped tail, strict-greater candidate order).
__attribute__((target("avx2"))) void MaxPool2Row4Avx2(
    const float* row0, const float* row1, int base_off, int w, float* out_row,
    int* off_row, size_t ow) {
  size_t x = 0;
  while (true) {
    const float* p0 = row0 + 2 * x;
    const float* p1 = row1 + 2 * x;
    const __m128 a0 = _mm_loadu_ps(p0);
    const __m128 a1 = _mm_loadu_ps(p0 + 4);
    const __m128 b0 = _mm_loadu_ps(p1);
    const __m128 b1 = _mm_loadu_ps(p1 + 4);
    const __m128 r0e = _mm_shuffle_ps(a0, a1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 r0o = _mm_shuffle_ps(a0, a1, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128 r1e = _mm_shuffle_ps(b0, b1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 r1o = _mm_shuffle_ps(b0, b1, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128i off_base =
        _mm_add_epi32(_mm_set1_epi32(base_off + 2 * static_cast<int>(x)),
                      _mm_setr_epi32(0, 2, 4, 6));
    __m128 best = r0e;
    __m128i best_off = off_base;
    __m128 mask = _mm_cmp_ps(r0o, best, _CMP_GT_OQ);
    best = _mm_blendv_ps(best, r0o, mask);
    best_off = _mm_blendv_epi8(best_off,
                               _mm_add_epi32(off_base, _mm_set1_epi32(1)),
                               _mm_castps_si128(mask));
    const __m128i off_row1 = _mm_add_epi32(off_base, _mm_set1_epi32(w));
    mask = _mm_cmp_ps(r1e, best, _CMP_GT_OQ);
    best = _mm_blendv_ps(best, r1e, mask);
    best_off = _mm_blendv_epi8(best_off, off_row1, _mm_castps_si128(mask));
    mask = _mm_cmp_ps(r1o, best, _CMP_GT_OQ);
    best = _mm_blendv_ps(best, r1o, mask);
    best_off = _mm_blendv_epi8(best_off,
                               _mm_add_epi32(off_row1, _mm_set1_epi32(1)),
                               _mm_castps_si128(mask));
    _mm_storeu_ps(out_row + x, best);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(off_row + x), best_off);
    if (x + 4 >= ow) break;
    x = (x + 8 <= ow) ? x + 4 : ow - 4;
  }
}

#endif  // DPAUDIT_X86_DISPATCH

// ---- Batched lane kernel ---------------------------------------------------
//
// One body shared between the portable path (runtime `lanes`) and the AVX2
// wrapper (lanes pinned to 8). Candidates are visited in the same (py, px)
// order as the scalar loop with the same strict greater-than, expressed as
// branchless selects so the compiler can vectorize across lanes; ties
// therefore resolve to the same argmax as the scalar path.

DPAUDIT_LANE_INLINE void MaxPoolForwardLanesBody(
    const float* __restrict__ in, float* __restrict__ out,
    int* __restrict__ argmax, size_t c, size_t h, size_t w, size_t pool,
    size_t oh, size_t ow, size_t lanes) {
  size_t cell = 0;
  for (size_t ch = 0; ch < c; ++ch) {
    const float* plane = in + ch * h * w * lanes;
    const int plane_base = static_cast<int>(ch * h * w);
    for (size_t y = 0; y < oh; ++y) {
      for (size_t x = 0; x < ow; ++x, ++cell) {
        const size_t base = y * pool * w + x * pool;
        float best[kMaxBatchLanes];
        int boff[kMaxBatchLanes];
        const float* first = plane + base * lanes;
        for (size_t l = 0; l < lanes; ++l) {
          best[l] = first[l];
          boff[l] = static_cast<int>(base);
        }
        for (size_t py = 0; py < pool; ++py) {
          for (size_t px = 0; px < pool; ++px) {
            const size_t off = base + py * w + px;
            const float* cand = plane + off * lanes;
            for (size_t l = 0; l < lanes; ++l) {
              const bool take = cand[l] > best[l];
              best[l] = take ? cand[l] : best[l];
              boff[l] = take ? static_cast<int>(off) : boff[l];
            }
          }
        }
        float* ov = out + cell * lanes;
        int* av = argmax + cell * lanes;
        for (size_t l = 0; l < lanes; ++l) {
          ov[l] = best[l];
          av[l] = plane_base + boff[l];
        }
      }
    }
  }
}

#if defined(DPAUDIT_X86_DISPATCH)
// Hand-vectorized: one ymm of lane values plus one of lane argmaxes per
// output element, candidates blended in the body's (py, px) order with the
// same strict greater-than (false on NaN, like the scalar compare), so
// values and tie-breaks match the portable body exactly. Written with
// intrinsics because the mixed float/int selects defeat the autovectorizer.
__attribute__((target("avx2"))) void MaxPoolForwardLanes8Avx2(
    const float* in, float* out, int* argmax, size_t c, size_t h, size_t w,
    size_t pool, size_t oh, size_t ow) {
  size_t cell = 0;
  for (size_t ch = 0; ch < c; ++ch) {
    const float* plane = in + ch * h * w * 8;
    const __m256i plane_base = _mm256_set1_epi32(static_cast<int>(ch * h * w));
    for (size_t y = 0; y < oh; ++y) {
      for (size_t x = 0; x < ow; ++x, ++cell) {
        const size_t base = y * pool * w + x * pool;
        __m256 best = _mm256_loadu_ps(plane + base * 8);
        __m256i boff = _mm256_set1_epi32(static_cast<int>(base));
        for (size_t py = 0; py < pool; ++py) {
          for (size_t px = 0; px < pool; ++px) {
            const size_t off = base + py * w + px;
            const __m256 cand = _mm256_loadu_ps(plane + off * 8);
            const __m256 take = _mm256_cmp_ps(cand, best, _CMP_GT_OQ);
            best = _mm256_blendv_ps(best, cand, take);
            boff = _mm256_blendv_epi8(boff,
                                      _mm256_set1_epi32(static_cast<int>(off)),
                                      _mm256_castps_si256(take));
          }
        }
        _mm256_storeu_ps(out + cell * 8, best);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(argmax + cell * 8),
                            _mm256_add_epi32(plane_base, boff));
      }
    }
  }
}
#endif  // DPAUDIT_X86_DISPATCH

}  // namespace

MaxPool2d::MaxPool2d(size_t pool) : pool_(pool) {
  DPAUDIT_CHECK_GT(pool_, 0u);
}

void MaxPool2d::ForwardInto(const Tensor& input, Tensor* output) {
  DPAUDIT_CHECK_EQ(input.rank(), 3u);
  size_t c = input.dim(0);
  size_t h = input.dim(1);
  size_t w = input.dim(2);
  DPAUDIT_CHECK_GE(h, pool_);
  DPAUDIT_CHECK_GE(w, pool_);
  size_t oh = h / pool_;
  size_t ow = w / pool_;
  input_shape_ = input.shape();
  output->ResizeTo({c, oh, ow});
  argmax_.assign(c * oh * ow, 0);
  const float* in = input.data();
  float* o = output->data();
#if defined(DPAUDIT_X86_DISPATCH)
  if (pool_ == 2 && ow >= 4 && HasAvx2()) {
    off_scratch_.resize(ow);
    size_t out_idx = 0;
    for (size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + ch * h * w;
      const size_t plane_base = ch * h * w;
      for (size_t y = 0; y < oh; ++y) {
        const float* row0 = plane + 2 * y * w;
        const float* row1 = row0 + w;
        if (ow >= 8) {
          MaxPool2RowAvx2(row0, row1, static_cast<int>(2 * y * w),
                          static_cast<int>(w), o + out_idx,
                          off_scratch_.data(), ow);
        } else {
          MaxPool2Row4Avx2(row0, row1, static_cast<int>(2 * y * w),
                           static_cast<int>(w), o + out_idx,
                           off_scratch_.data(), ow);
        }
        for (size_t x = 0; x < ow; ++x) {
          argmax_[out_idx + x] =
              plane_base + static_cast<size_t>(off_scratch_[x]);
        }
        out_idx += ow;
      }
    }
    return;
  }
#endif
  size_t out_idx = 0;
  for (size_t ch = 0; ch < c; ++ch) {
    const float* plane = in + ch * h * w;
    for (size_t y = 0; y < oh; ++y) {
      for (size_t x = 0; x < ow; ++x) {
        size_t base = y * pool_ * w + x * pool_;
        float best = plane[base];
        size_t best_off = base;
        for (size_t py = 0; py < pool_; ++py) {
          const float* row = plane + base + py * w;
          for (size_t px = 0; px < pool_; ++px) {
            if (row[px] > best) {
              best = row[px];
              best_off = base + py * w + px;
            }
          }
        }
        o[out_idx] = best;
        argmax_[out_idx++] = ch * h * w + best_off;
      }
    }
  }
}

void MaxPool2d::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  DPAUDIT_CHECK_EQ(grad_output.size(), argmax_.size())
      << "Backward before Forward, or shape changed";
  grad_input->ResizeTo(input_shape_);
  grad_input->Fill(0.0f);
  const float* g = grad_output.data();
  float* gi = grad_input->data();
  for (size_t i = 0; i < argmax_.size(); ++i) {
    gi[argmax_[i]] += g[i];
  }
}

void MaxPool2d::ForwardBatchInto(const Tensor& input, size_t lanes,
                                 Tensor* output) {
  DPAUDIT_CHECK_GT(lanes, 0u);
  DPAUDIT_CHECK_LE(lanes, kMaxBatchLanes);
  DPAUDIT_CHECK_EQ(input.rank(), 4u);  // [C, H, W, lanes]
  DPAUDIT_CHECK_EQ(input.dim(3), lanes);
  const size_t c = input.dim(0);
  const size_t h = input.dim(1);
  const size_t w = input.dim(2);
  DPAUDIT_CHECK_GE(h, pool_);
  DPAUDIT_CHECK_GE(w, pool_);
  const size_t oh = h / pool_;
  const size_t ow = w / pool_;
  batch_input_shape_ = input.shape();
  batch_lanes_ = lanes;
  output->ResizeTo({c, oh, ow, lanes});
  lane_argmax_.resize(c * oh * ow * lanes);
#if defined(DPAUDIT_X86_DISPATCH)
  if (lanes == 8 && HasAvx2()) {
    MaxPoolForwardLanes8Avx2(input.data(), output->data(), lane_argmax_.data(),
                             c, h, w, pool_, oh, ow);
    return;
  }
#endif
  MaxPoolForwardLanesBody(input.data(), output->data(), lane_argmax_.data(),
                          c, h, w, pool_, oh, ow, lanes);
}

void MaxPool2d::BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                                  Tensor* grad_input) {
  if (grad_input == nullptr) return;  // no parameters, nothing else to do
  DPAUDIT_CHECK_EQ(lanes, batch_lanes_);
  DPAUDIT_CHECK_EQ(grad_output.size(), lane_argmax_.size())
      << "Backward before Forward, or shape changed";
  grad_input->ResizeTo(batch_input_shape_);
  grad_input->Fill(0.0f);
  const float* g = grad_output.data();
  float* gi = grad_input->data();
  const size_t cells = lane_argmax_.size() / lanes;
  for (size_t i = 0; i < cells; ++i) {
    const float* gv = g + i * lanes;
    const int* av = lane_argmax_.data() + i * lanes;
    for (size_t l = 0; l < lanes; ++l) {
      gi[static_cast<size_t>(av[l]) * lanes + l] += gv[l];
    }
  }
}

std::string MaxPool2d::Name() const {
  std::ostringstream os;
  os << "maxpool(" << pool_ << "x" << pool_ << ")";
  return os.str();
}

}  // namespace dpaudit
