#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dpaudit {

Tensor SoftmaxProbabilities(const Tensor& logits) {
  DPAUDIT_CHECK_GT(logits.size(), 0u);
  Tensor probs = logits;
  float hi = *std::max_element(probs.vec().begin(), probs.vec().end());
  double sum = 0.0;
  for (float& x : probs.vec()) {
    x = std::exp(x - hi);
    sum += x;
  }
  for (float& x : probs.vec()) x = static_cast<float>(x / sum);
  return probs;
}

double SoftmaxCrossEntropyInto(const Tensor& logits, size_t label,
                               Tensor* grad_logits) {
  DPAUDIT_CHECK_LT(label, logits.size());
  float hi = *std::max_element(logits.vec().begin(), logits.vec().end());
  double sum = 0.0;
  for (float x : logits.vec()) sum += std::exp(static_cast<double>(x) - hi);
  double log_z = hi + std::log(sum);
  grad_logits->ResizeTo(logits.shape());
  float* grad = grad_logits->data();
  for (size_t i = 0; i < logits.size(); ++i) {
    double p = std::exp(static_cast<double>(logits[i]) - log_z);
    grad[i] = static_cast<float>(p - (i == label ? 1.0 : 0.0));
  }
  return log_z - logits[label];
}

LossResult SoftmaxCrossEntropy(const Tensor& logits, size_t label) {
  LossResult result;
  result.loss = SoftmaxCrossEntropyInto(logits, label, &result.grad_logits);
  return result;
}

}  // namespace dpaudit
