#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dpaudit {

Tensor SoftmaxProbabilities(const Tensor& logits) {
  DPAUDIT_CHECK_GT(logits.size(), 0u);
  Tensor probs = logits;
  float hi = *std::max_element(probs.vec().begin(), probs.vec().end());
  double sum = 0.0;
  for (float& x : probs.vec()) {
    x = std::exp(x - hi);
    sum += x;
  }
  for (float& x : probs.vec()) x = static_cast<float>(x / sum);
  return probs;
}

double SoftmaxCrossEntropyInto(const Tensor& logits, size_t label,
                               Tensor* grad_logits) {
  DPAUDIT_CHECK_LT(label, logits.size());
  float hi = *std::max_element(logits.vec().begin(), logits.vec().end());
  double sum = 0.0;
  for (float x : logits.vec()) sum += std::exp(static_cast<double>(x) - hi);
  double log_z = hi + std::log(sum);
  grad_logits->ResizeTo(logits.shape());
  float* grad = grad_logits->data();
  for (size_t i = 0; i < logits.size(); ++i) {
    double p = std::exp(static_cast<double>(logits[i]) - log_z);
    grad[i] = static_cast<float>(p - (i == label ? 1.0 : 0.0));
  }
  return log_z - logits[label];
}

void SoftmaxCrossEntropyBatchInto(const Tensor& logits, const size_t* labels,
                                  size_t lanes, Tensor* grad_logits,
                                  double* losses) {
  DPAUDIT_CHECK_GT(lanes, 0u);
  DPAUDIT_CHECK_EQ(logits.size() % lanes, 0u);
  const size_t classes = logits.size() / lanes;
  DPAUDIT_CHECK_GT(classes, 0u);
  grad_logits->ResizeTo(logits.shape());
  const float* x = logits.data();
  float* grad = grad_logits->data();
  // Classes are tiny (10 here), so a plain per-lane loop costs nothing; what
  // matters is running the exact scalar chain per lane.
  for (size_t l = 0; l < lanes; ++l) {
    const size_t label = labels[l];
    DPAUDIT_CHECK_LT(label, classes);
    float hi = x[l];
    for (size_t i = 1; i < classes; ++i) {
      const float v = x[i * lanes + l];
      if (v > hi) hi = v;
    }
    double sum = 0.0;
    for (size_t i = 0; i < classes; ++i) {
      sum += std::exp(static_cast<double>(x[i * lanes + l]) - hi);
    }
    const double log_z = hi + std::log(sum);
    for (size_t i = 0; i < classes; ++i) {
      const double p =
          std::exp(static_cast<double>(x[i * lanes + l]) - log_z);
      grad[i * lanes + l] =
          static_cast<float>(p - (i == label ? 1.0 : 0.0));
    }
    if (losses != nullptr) losses[l] = log_z - x[label * lanes + l];
  }
}

LossResult SoftmaxCrossEntropy(const Tensor& logits, size_t label) {
  LossResult result;
  result.loss = SoftmaxCrossEntropyInto(logits, label, &result.grad_logits);
  return result;
}

}  // namespace dpaudit
