#include "nn/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace dpaudit {

SgdOptimizer::SgdOptimizer(double learning_rate) : lr_(learning_rate) {
  DPAUDIT_CHECK_GT(lr_, 0.0);
}

void SgdOptimizer::Step(Network& net, const std::vector<float>& gradient) {
  net.ApplyGradientStep(gradient, lr_);
}

std::unique_ptr<Optimizer> SgdOptimizer::Clone() const {
  return std::make_unique<SgdOptimizer>(lr_);
}

MomentumOptimizer::MomentumOptimizer(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  DPAUDIT_CHECK_GT(lr_, 0.0);
  DPAUDIT_CHECK_GE(momentum_, 0.0);
  DPAUDIT_CHECK_LT(momentum_, 1.0);
}

void MomentumOptimizer::Step(Network& net,
                             const std::vector<float>& gradient) {
  if (velocity_.empty()) velocity_.assign(gradient.size(), 0.0f);
  DPAUDIT_CHECK_EQ(velocity_.size(), gradient.size());
  for (size_t i = 0; i < gradient.size(); ++i) {
    velocity_[i] =
        static_cast<float>(momentum_ * velocity_[i] + gradient[i]);
  }
  net.ApplyGradientStep(velocity_, lr_);
}

std::unique_ptr<Optimizer> MomentumOptimizer::Clone() const {
  return std::make_unique<MomentumOptimizer>(lr_, momentum_);
}

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1, double beta2,
                             double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  DPAUDIT_CHECK_GT(lr_, 0.0);
  DPAUDIT_CHECK_GE(beta1_, 0.0);
  DPAUDIT_CHECK_LT(beta1_, 1.0);
  DPAUDIT_CHECK_GE(beta2_, 0.0);
  DPAUDIT_CHECK_LT(beta2_, 1.0);
  DPAUDIT_CHECK_GT(epsilon_, 0.0);
}

void AdamOptimizer::Step(Network& net, const std::vector<float>& gradient) {
  if (m_.empty()) {
    m_.assign(gradient.size(), 0.0);
    v_.assign(gradient.size(), 0.0);
  }
  DPAUDIT_CHECK_EQ(m_.size(), gradient.size());
  ++t_;
  double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  std::vector<float> update(gradient.size());
  for (size_t i = 0; i < gradient.size(); ++i) {
    double g = gradient[i];
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * g;
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * g * g;
    double m_hat = m_[i] / bias1;
    double v_hat = v_[i] / bias2;
    update[i] = static_cast<float>(m_hat / (std::sqrt(v_hat) + epsilon_));
  }
  net.ApplyGradientStep(update, lr_);
}

std::unique_ptr<Optimizer> AdamOptimizer::Clone() const {
  return std::make_unique<AdamOptimizer>(lr_, beta1_, beta2_, epsilon_);
}

const char* OptimizerKindToString(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return "sgd";
    case OptimizerKind::kMomentum:
      return "momentum";
    case OptimizerKind::kAdam:
      return "adam";
  }
  return "unknown";
}

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>(learning_rate);
    case OptimizerKind::kMomentum:
      return std::make_unique<MomentumOptimizer>(learning_rate);
    case OptimizerKind::kAdam:
      return std::make_unique<AdamOptimizer>(learning_rate);
  }
  return std::make_unique<SgdOptimizer>(learning_rate);
}

}  // namespace dpaudit
