// Classification quality metrics beyond plain accuracy, for the utility-side
// reporting of the experiments (Figure 7 and the examples).

#ifndef DPAUDIT_NN_METRICS_H_
#define DPAUDIT_NN_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "nn/network.h"
#include "tensor/tensor.h"

namespace dpaudit {

/// Row-major confusion matrix: entry (true_class, predicted_class).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t num_classes);

  void Record(size_t true_class, size_t predicted_class);

  size_t num_classes() const { return num_classes_; }
  size_t count(size_t true_class, size_t predicted_class) const;
  size_t total() const { return total_; }

  /// Overall accuracy (0 when empty).
  double Accuracy() const;

  /// Recall of one class: TP / (TP + FN); 0 when the class never occurs.
  double Recall(size_t cls) const;

  /// Precision of one class: TP / (TP + FP); 0 when never predicted.
  double Precision(size_t cls) const;

  /// F1 of one class (harmonic mean of precision and recall).
  double F1(size_t cls) const;

  /// Unweighted mean of per-class F1 over classes that occur.
  double MacroF1() const;

  /// Multi-line text rendering (small matrices only).
  std::string ToString() const;

 private:
  size_t num_classes_;
  size_t total_ = 0;
  std::vector<size_t> counts_;  // num_classes x num_classes
};

/// Runs `model` over the dataset and tallies a confusion matrix with
/// `num_classes` classes (labels must be < num_classes).
ConfusionMatrix EvaluateConfusion(Network& model,
                                  const std::vector<Tensor>& inputs,
                                  const std::vector<size_t>& labels,
                                  size_t num_classes);

}  // namespace dpaudit

#endif  // DPAUDIT_NN_METRICS_H_
