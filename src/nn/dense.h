// Fully connected layer.

#ifndef DPAUDIT_NN_DENSE_H_
#define DPAUDIT_NN_DENSE_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace dpaudit {

/// y = W x + b with W of shape [out, in]. Accepts any input tensor whose
/// volume equals `in` (flattens implicitly), so a conv feature map can feed a
/// dense head without an explicit flatten layer.
class Dense : public Layer {
 public:
  Dense(size_t in_features, size_t out_features);

  void ForwardInto(const Tensor& input, Tensor* output) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  bool SupportsBatchLanes() const override { return true; }
  void ForwardBatchInto(const Tensor& input, size_t lanes,
                        Tensor* output) override;
  void BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                         Tensor* grad_input) override;
  void LaneGradsTo(size_t lane, float* dst) const override;
  std::vector<Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Grads() override { return {&dweight_, &dbias_}; }
  void Initialize(Rng& rng) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override;

  size_t in_features() const { return in_; }
  size_t out_features() const { return out_; }

 private:
  size_t in_;
  size_t out_;
  Tensor weight_;   // [out, in]
  Tensor bias_;     // [out]
  Tensor dweight_;  // [out, in]
  Tensor dbias_;    // [out]
  // Cached pointer to the forward input (see the lifetime contract in
  // layer.h); the caller keeps it alive through backward.
  const Tensor* last_input_ = nullptr;
  // Batched lane state: per-lane parameter gradients in lane-SoA form.
  const Tensor* last_batch_input_ = nullptr;
  size_t batch_lanes_ = 0;
  std::vector<float> lane_dweight_;  // [out * in, lanes]
  std::vector<float> lane_dbias_;    // [out, lanes]
};

}  // namespace dpaudit

#endif  // DPAUDIT_NN_DENSE_H_
