#include "nn/channel_norm.h"

#include <cmath>
#include <sstream>

#include "tensor/tensor.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/simd.h"

namespace dpaudit {

namespace {

#if defined(DPAUDIT_X86_DISPATCH)

// The normalize and grad-input passes are elementwise (no accumulation
// chains), so running four elements per iteration performs exactly the same
// double-precision operations per element as the scalar code and the results
// are bit-identical. Explicit mul/add intrinsics are never FMA-contracted.

__attribute__((target("avx2"))) void NormalizeChannelAvx2(
    const float* xc, double mean, double inv_std, float gamma, float beta,
    float* nh, float* o, size_t m) {
  const __m256d vm = _mm256_set1_pd(mean);
  const __m256d vs = _mm256_set1_pd(inv_std);
  const __m256d vg = _mm256_set1_pd(static_cast<double>(gamma));
  const __m256d vb = _mm256_set1_pd(static_cast<double>(beta));
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256d x = _mm256_cvtps_pd(_mm_loadu_ps(xc + i));
    const __m256d xhat = _mm256_mul_pd(_mm256_sub_pd(x, vm), vs);
    _mm_storeu_ps(nh + i, _mm256_cvtpd_ps(xhat));
    _mm_storeu_ps(o + i,
                  _mm256_cvtpd_ps(_mm256_add_pd(_mm256_mul_pd(vg, xhat), vb)));
  }
  for (; i < m; ++i) {
    double xhat = (xc[i] - mean) * inv_std;
    nh[i] = static_cast<float>(xhat);
    o[i] = static_cast<float>(gamma * xhat + beta);
  }
}

__attribute__((target("avx2"))) void GradInputChannelAvx2(
    const float* gc, const float* xh, double md, double sum_g, double sum_gx,
    double scale, float* gx, size_t m) {
  const __m256d vmd = _mm256_set1_pd(md);
  const __m256d vsg = _mm256_set1_pd(sum_g);
  const __m256d vsgx = _mm256_set1_pd(sum_gx);
  const __m256d vscale = _mm256_set1_pd(scale);
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256d gv = _mm256_cvtps_pd(_mm_loadu_ps(gc + i));
    const __m256d xv = _mm256_cvtps_pd(_mm_loadu_ps(xh + i));
    const __m256d t = _mm256_sub_pd(_mm256_sub_pd(_mm256_mul_pd(vmd, gv), vsg),
                                    _mm256_mul_pd(xv, vsgx));
    _mm_storeu_ps(gx + i, _mm256_cvtpd_ps(_mm256_mul_pd(vscale, t)));
  }
  for (; i < m; ++i) {
    gx[i] = static_cast<float>(
        scale * (md * gc[i] - sum_g - static_cast<double>(xh[i]) * sum_gx));
  }
}

#endif  // DPAUDIT_X86_DISPATCH

// ---- Batched lane kernels --------------------------------------------------
//
// Bodies shared between the portable path (runtime `lanes`) and the AVX2
// wrappers (lanes pinned to 8). Each (channel, lane) pair keeps its own
// double accumulator chain advancing in ascending spatial order — the exact
// chains the scalar passes run — so statistics, normalized values, and
// gradients are bit-identical per lane.

DPAUDIT_LANE_INLINE void ChannelNormForwardLanesBody(
    const float* in, const float* gamma, const float* beta, double epsilon,
    float* nh, float* o, double* mean, double* inv_std, size_t channels,
    size_t m, size_t lanes) {
  for (size_t c = 0; c < channels; ++c) {
    const float* p = in + c * m * lanes;
    double* mc = mean + c * lanes;
    double* sc = inv_std + c * lanes;
    double acc[kMaxBatchLanes];
    for (size_t l = 0; l < lanes; ++l) acc[l] = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const float* pv = p + i * lanes;
      for (size_t l = 0; l < lanes; ++l) acc[l] += pv[l];
    }
    for (size_t l = 0; l < lanes; ++l) mc[l] = acc[l] / static_cast<double>(m);
    double vacc[kMaxBatchLanes];
    for (size_t l = 0; l < lanes; ++l) vacc[l] = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const float* pv = p + i * lanes;
      for (size_t l = 0; l < lanes; ++l) {
        const double d = pv[l] - mc[l];
        vacc[l] += d * d;
      }
    }
    for (size_t l = 0; l < lanes; ++l) {
      const double var = vacc[l] / static_cast<double>(m);
      sc[l] = 1.0 / std::sqrt(var + epsilon);
    }
    const float gcf = gamma[c];
    const float bcf = beta[c];
    float* nhc = nh + c * m * lanes;
    float* oc = o + c * m * lanes;
    for (size_t i = 0; i < m; ++i) {
      const float* pv = p + i * lanes;
      float* nv = nhc + i * lanes;
      float* ov = oc + i * lanes;
      for (size_t l = 0; l < lanes; ++l) {
        const double xhat = (pv[l] - mc[l]) * sc[l];
        nv[l] = static_cast<float>(xhat);
        ov[l] = static_cast<float>(gcf * xhat + bcf);
      }
    }
  }
}

DPAUDIT_LANE_INLINE void ChannelNormBackwardLanesBody(
    const float* g, const float* nh, const float* gamma,
    const double* inv_std, float* dgamma, float* dbeta, float* gx,
    size_t channels, size_t m, size_t lanes) {
  for (size_t c = 0; c < channels; ++c) {
    const float* gc = g + c * m * lanes;
    const float* xc = nh + c * m * lanes;
    double s[kMaxBatchLanes];
    double t[kMaxBatchLanes];
    for (size_t l = 0; l < lanes; ++l) {
      s[l] = 0.0;
      t[l] = 0.0;
    }
    for (size_t i = 0; i < m; ++i) {
      const float* gv = gc + i * lanes;
      const float* xv = xc + i * lanes;
      for (size_t l = 0; l < lanes; ++l) {
        s[l] += gv[l];
        t[l] += static_cast<double>(gv[l]) * xv[l];
      }
    }
    for (size_t l = 0; l < lanes; ++l) {
      dbeta[c * lanes + l] = static_cast<float>(s[l]);
      dgamma[c * lanes + l] = static_cast<float>(t[l]);
    }
    if (gx == nullptr) continue;
    const float gcf = gamma[c];
    const double md = static_cast<double>(m);
    double scale[kMaxBatchLanes];
    for (size_t l = 0; l < lanes; ++l) {
      scale[l] = gcf * inv_std[c * lanes + l] / md;
    }
    float* gxc = gx + c * m * lanes;
    for (size_t i = 0; i < m; ++i) {
      const float* gv = gc + i * lanes;
      const float* xv = xc + i * lanes;
      float* gxv = gxc + i * lanes;
      for (size_t l = 0; l < lanes; ++l) {
        gxv[l] = static_cast<float>(scale[l] *
                                    (md * gv[l] - s[l] - xv[l] * t[l]));
      }
    }
  }
}

#if defined(DPAUDIT_X86_DISPATCH)
__attribute__((target("avx2"))) void ChannelNormForwardLanes8Avx2(
    const float* in, const float* gamma, const float* beta, double epsilon,
    float* nh, float* o, double* mean, double* inv_std, size_t channels,
    size_t m) {
  ChannelNormForwardLanesBody(in, gamma, beta, epsilon, nh, o, mean, inv_std,
                              channels, m, 8);
}

// Hand-vectorized: the eight lanes split into two 4-wide double halves, each
// lane keeping its own sum chains advancing in ascending spatial order and
// the grad-input pass transcribing the scalar expression operation for
// operation (explicit mul/sub, never FMA-contracted), so every lane is
// bit-identical to the portable body. Intrinsics because the float->double
// widening defeats the autovectorizer here.
__attribute__((target("avx2"))) void ChannelNormBackwardLanes8Avx2(
    const float* g, const float* nh, const float* gamma,
    const double* inv_std, float* dgamma, float* dbeta, float* gx,
    size_t channels, size_t m) {
  for (size_t c = 0; c < channels; ++c) {
    const float* gc = g + c * m * 8;
    const float* xc = nh + c * m * 8;
    __m256d s_lo = _mm256_setzero_pd();
    __m256d s_hi = _mm256_setzero_pd();
    __m256d t_lo = _mm256_setzero_pd();
    __m256d t_hi = _mm256_setzero_pd();
    for (size_t i = 0; i < m; ++i) {
      const __m256d gv_lo = _mm256_cvtps_pd(_mm_loadu_ps(gc + i * 8));
      const __m256d gv_hi = _mm256_cvtps_pd(_mm_loadu_ps(gc + i * 8 + 4));
      const __m256d xv_lo = _mm256_cvtps_pd(_mm_loadu_ps(xc + i * 8));
      const __m256d xv_hi = _mm256_cvtps_pd(_mm_loadu_ps(xc + i * 8 + 4));
      s_lo = _mm256_add_pd(s_lo, gv_lo);
      s_hi = _mm256_add_pd(s_hi, gv_hi);
      t_lo = _mm256_add_pd(t_lo, _mm256_mul_pd(gv_lo, xv_lo));
      t_hi = _mm256_add_pd(t_hi, _mm256_mul_pd(gv_hi, xv_hi));
    }
    _mm_storeu_ps(dbeta + c * 8, _mm256_cvtpd_ps(s_lo));
    _mm_storeu_ps(dbeta + c * 8 + 4, _mm256_cvtpd_ps(s_hi));
    _mm_storeu_ps(dgamma + c * 8, _mm256_cvtpd_ps(t_lo));
    _mm_storeu_ps(dgamma + c * 8 + 4, _mm256_cvtpd_ps(t_hi));
    if (gx == nullptr) continue;
    const __m256d vg = _mm256_set1_pd(static_cast<double>(gamma[c]));
    const __m256d vmd = _mm256_set1_pd(static_cast<double>(m));
    const __m256d scale_lo = _mm256_div_pd(
        _mm256_mul_pd(vg, _mm256_loadu_pd(inv_std + c * 8)), vmd);
    const __m256d scale_hi = _mm256_div_pd(
        _mm256_mul_pd(vg, _mm256_loadu_pd(inv_std + c * 8 + 4)), vmd);
    float* gxc = gx + c * m * 8;
    for (size_t i = 0; i < m; ++i) {
      const __m256d gv_lo = _mm256_cvtps_pd(_mm_loadu_ps(gc + i * 8));
      const __m256d gv_hi = _mm256_cvtps_pd(_mm_loadu_ps(gc + i * 8 + 4));
      const __m256d xv_lo = _mm256_cvtps_pd(_mm_loadu_ps(xc + i * 8));
      const __m256d xv_hi = _mm256_cvtps_pd(_mm_loadu_ps(xc + i * 8 + 4));
      const __m256d r_lo = _mm256_mul_pd(
          scale_lo,
          _mm256_sub_pd(_mm256_sub_pd(_mm256_mul_pd(vmd, gv_lo), s_lo),
                        _mm256_mul_pd(xv_lo, t_lo)));
      const __m256d r_hi = _mm256_mul_pd(
          scale_hi,
          _mm256_sub_pd(_mm256_sub_pd(_mm256_mul_pd(vmd, gv_hi), s_hi),
                        _mm256_mul_pd(xv_hi, t_hi)));
      _mm_storeu_ps(gxc + i * 8, _mm256_cvtpd_ps(r_lo));
      _mm_storeu_ps(gxc + i * 8 + 4, _mm256_cvtpd_ps(r_hi));
    }
  }
}
#endif  // DPAUDIT_X86_DISPATCH

}  // namespace

ChannelNorm::ChannelNorm(size_t channels, double epsilon)
    : channels_(channels),
      epsilon_(epsilon),
      gamma_({channels}),
      beta_({channels}),
      dgamma_({channels}),
      dbeta_({channels}) {
  gamma_.Fill(1.0f);
  beta_.Fill(0.0f);
}

void ChannelNorm::ForwardInto(const Tensor& input, Tensor* output) {
  DPAUDIT_CHECK_EQ(input.rank(), 3u);
  DPAUDIT_CHECK_EQ(input.dim(0), channels_);
  size_t m = input.dim(1) * input.dim(2);
  DPAUDIT_CHECK_GT(m, 1u) << "channel norm needs > 1 value per channel";
  normalized_.ResizeTo(input.shape());
  inv_std_.assign(channels_, 0.0);
  mean_.assign(channels_, 0.0);
  var_.assign(channels_, 0.0);
  output->ResizeTo(input.shape());
  const float* in = input.data();
  float* nh = normalized_.data();
  float* o = output->data();
  // Mean and variance passes keep one accumulator chain per channel, blocked
  // four channels at a time so the chains live in registers instead of
  // bouncing through memory; each chain still adds its elements in index
  // order, so the sums are bit-identical to the naive loop.
  {
    size_t c = 0;
    for (; c + 4 <= channels_; c += 4) {
      const float* p0 = in + c * m;
      const float* p1 = p0 + m;
      const float* p2 = p1 + m;
      const float* p3 = p2 + m;
      double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
      for (size_t i = 0; i < m; ++i) {
        a0 += p0[i];
        a1 += p1[i];
        a2 += p2[i];
        a3 += p3[i];
      }
      mean_[c] = a0;
      mean_[c + 1] = a1;
      mean_[c + 2] = a2;
      mean_[c + 3] = a3;
    }
    for (; c < channels_; ++c) {
      const float* p = in + c * m;
      double acc = 0.0;
      for (size_t i = 0; i < m; ++i) acc += p[i];
      mean_[c] = acc;
    }
  }
  for (size_t c = 0; c < channels_; ++c) mean_[c] /= static_cast<double>(m);
  {
    size_t c = 0;
    for (; c + 4 <= channels_; c += 4) {
      const float* p0 = in + c * m;
      const float* p1 = p0 + m;
      const float* p2 = p1 + m;
      const float* p3 = p2 + m;
      const double m0 = mean_[c], m1 = mean_[c + 1];
      const double m2 = mean_[c + 2], m3 = mean_[c + 3];
      double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
      for (size_t i = 0; i < m; ++i) {
        double d0 = p0[i] - m0;
        double d1 = p1[i] - m1;
        double d2 = p2[i] - m2;
        double d3 = p3[i] - m3;
        a0 += d0 * d0;
        a1 += d1 * d1;
        a2 += d2 * d2;
        a3 += d3 * d3;
      }
      var_[c] = a0;
      var_[c + 1] = a1;
      var_[c + 2] = a2;
      var_[c + 3] = a3;
    }
    for (; c < channels_; ++c) {
      const float* p = in + c * m;
      const double mc = mean_[c];
      double acc = 0.0;
      for (size_t i = 0; i < m; ++i) {
        double d = p[i] - mc;
        acc += d * d;
      }
      var_[c] = acc;
    }
  }
#if defined(DPAUDIT_X86_DISPATCH)
  const bool use_avx2 = HasAvx2();
#else
  const bool use_avx2 = false;
#endif
  for (size_t c = 0; c < channels_; ++c) {
    double var = var_[c] / static_cast<double>(m);
    double inv_std = 1.0 / std::sqrt(var + epsilon_);
    inv_std_[c] = inv_std;
    double mean = mean_[c];
    const float* xc = in + c * m;
    float g = gamma_[c];
    float b = beta_[c];
    if (use_avx2) {
#if defined(DPAUDIT_X86_DISPATCH)
      NormalizeChannelAvx2(xc, mean, inv_std, g, b, nh + c * m, o + c * m, m);
#endif
    } else {
      for (size_t i = 0; i < m; ++i) {
        double xhat = (xc[i] - mean) * inv_std;
        nh[c * m + i] = static_cast<float>(xhat);
        o[c * m + i] = static_cast<float>(g * xhat + b);
      }
    }
  }
}

void ChannelNorm::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  DPAUDIT_CHECK(grad_output.shape() == normalized_.shape())
      << "Backward before Forward, or shape changed";
  size_t m = grad_output.dim(1) * grad_output.dim(2);
  grad_input->ResizeTo(grad_output.shape());
  const float* g = grad_output.data();
  const float* nh = normalized_.data();
  float* gx = grad_input->data();
  sum_g_.assign(channels_, 0.0);
  sum_gx_.assign(channels_, 0.0);
  // Same register-blocked chains as the forward statistics passes.
  {
    size_t c = 0;
    for (; c + 2 <= channels_; c += 2) {
      const float* g0 = g + c * m;
      const float* g1 = g0 + m;
      const float* x0 = nh + c * m;
      const float* x1 = x0 + m;
      double s0 = 0.0, s1 = 0.0, t0 = 0.0, t1 = 0.0;
      for (size_t i = 0; i < m; ++i) {
        s0 += g0[i];
        s1 += g1[i];
        t0 += static_cast<double>(g0[i]) * x0[i];
        t1 += static_cast<double>(g1[i]) * x1[i];
      }
      sum_g_[c] = s0;
      sum_g_[c + 1] = s1;
      sum_gx_[c] = t0;
      sum_gx_[c + 1] = t1;
    }
    for (; c < channels_; ++c) {
      const float* gc = g + c * m;
      const float* xc = nh + c * m;
      double s = 0.0, t = 0.0;
      for (size_t i = 0; i < m; ++i) {
        s += gc[i];
        t += static_cast<double>(gc[i]) * xc[i];
      }
      sum_g_[c] = s;
      sum_gx_[c] = t;
    }
  }
#if defined(DPAUDIT_X86_DISPATCH)
  const bool use_avx2 = HasAvx2();
#else
  const bool use_avx2 = false;
#endif
  for (size_t c = 0; c < channels_; ++c) {
    const float* gc = g + c * m;
    const float* xh = nh + c * m;
    double sum_g = sum_g_[c];
    double sum_gx = sum_gx_[c];
    dbeta_[c] += static_cast<float>(sum_g);
    dgamma_[c] += static_cast<float>(sum_gx);
    // dL/dx = gamma * inv_std / m * (m*g - sum(g) - x_hat * sum(g*x_hat)).
    double scale = gamma_[c] * inv_std_[c] / static_cast<double>(m);
    if (use_avx2) {
#if defined(DPAUDIT_X86_DISPATCH)
      GradInputChannelAvx2(gc, xh, static_cast<double>(m), sum_g, sum_gx,
                           scale, gx + c * m, m);
#endif
    } else {
      for (size_t i = 0; i < m; ++i) {
        gx[c * m + i] = static_cast<float>(
            scale * (static_cast<double>(m) * gc[i] - sum_g - xh[i] * sum_gx));
      }
    }
  }
}

void ChannelNorm::ForwardBatchInto(const Tensor& input, size_t lanes,
                                   Tensor* output) {
  DPAUDIT_CHECK_GT(lanes, 0u);
  DPAUDIT_CHECK_LE(lanes, kMaxBatchLanes);
  DPAUDIT_CHECK_EQ(input.rank(), 4u);  // [C, H, W, lanes]
  DPAUDIT_CHECK_EQ(input.dim(0), channels_);
  DPAUDIT_CHECK_EQ(input.dim(3), lanes);
  const size_t m = input.dim(1) * input.dim(2);
  DPAUDIT_CHECK_GT(m, 1u) << "channel norm needs > 1 value per channel";
  batch_lanes_ = lanes;
  lane_normalized_.ResizeTo(input.shape());
  lane_mean_.resize(channels_ * lanes);
  lane_inv_std_.resize(channels_ * lanes);
  output->ResizeTo(input.shape());
#if defined(DPAUDIT_X86_DISPATCH)
  if (lanes == 8 && HasAvx2()) {
    ChannelNormForwardLanes8Avx2(input.data(), gamma_.data(), beta_.data(),
                                 epsilon_, lane_normalized_.data(),
                                 output->data(), lane_mean_.data(),
                                 lane_inv_std_.data(), channels_, m);
    return;
  }
#endif
  ChannelNormForwardLanesBody(input.data(), gamma_.data(), beta_.data(),
                              epsilon_, lane_normalized_.data(),
                              output->data(), lane_mean_.data(),
                              lane_inv_std_.data(), channels_, m, lanes);
}

void ChannelNorm::BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                                    Tensor* grad_input) {
  DPAUDIT_CHECK_EQ(lanes, batch_lanes_);
  DPAUDIT_CHECK(grad_output.shape() == lane_normalized_.shape())
      << "Backward before Forward, or shape changed";
  const size_t m = grad_output.dim(1) * grad_output.dim(2);
  lane_dgamma_.resize(channels_ * lanes);
  lane_dbeta_.resize(channels_ * lanes);
  float* gx = nullptr;
  if (grad_input != nullptr) {
    grad_input->ResizeTo(grad_output.shape());
    gx = grad_input->data();
  }
#if defined(DPAUDIT_X86_DISPATCH)
  if (lanes == 8 && HasAvx2()) {
    ChannelNormBackwardLanes8Avx2(grad_output.data(), lane_normalized_.data(),
                                  gamma_.data(), lane_inv_std_.data(),
                                  lane_dgamma_.data(), lane_dbeta_.data(), gx,
                                  channels_, m);
    return;
  }
#endif
  ChannelNormBackwardLanesBody(grad_output.data(), lane_normalized_.data(),
                               gamma_.data(), lane_inv_std_.data(),
                               lane_dgamma_.data(), lane_dbeta_.data(), gx,
                               channels_, m, lanes);
}

void ChannelNorm::LaneGradsTo(size_t lane, float* dst) const {
  DPAUDIT_CHECK_LT(lane, batch_lanes_);
  for (size_t c = 0; c < channels_; ++c) {
    dst[c] = lane_dgamma_[c * batch_lanes_ + lane];
  }
  dst += channels_;
  for (size_t c = 0; c < channels_; ++c) {
    dst[c] = lane_dbeta_[c * batch_lanes_ + lane];
  }
}

std::unique_ptr<Layer> ChannelNorm::Clone() const {
  auto copy = std::make_unique<ChannelNorm>(channels_, epsilon_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  return copy;
}

std::string ChannelNorm::Name() const {
  std::ostringstream os;
  os << "channel_norm(" << channels_ << ")";
  return os.str();
}

}  // namespace dpaudit
