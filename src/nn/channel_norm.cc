#include "nn/channel_norm.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace dpaudit {

ChannelNorm::ChannelNorm(size_t channels, double epsilon)
    : channels_(channels),
      epsilon_(epsilon),
      gamma_({channels}),
      beta_({channels}),
      dgamma_({channels}),
      dbeta_({channels}) {
  gamma_.Fill(1.0f);
  beta_.Fill(0.0f);
}

Tensor ChannelNorm::Forward(const Tensor& input) {
  DPAUDIT_CHECK_EQ(input.rank(), 3u);
  DPAUDIT_CHECK_EQ(input.dim(0), channels_);
  size_t m = input.dim(1) * input.dim(2);
  DPAUDIT_CHECK_GT(m, 1u) << "channel norm needs > 1 value per channel";
  normalized_ = Tensor(input.shape());
  inv_std_.assign(channels_, 0.0);
  Tensor out(input.shape());
  const float* in = input.data();
  float* nh = normalized_.data();
  float* o = out.data();
  for (size_t c = 0; c < channels_; ++c) {
    const float* xc = in + c * m;
    double mean = 0.0;
    for (size_t i = 0; i < m; ++i) mean += xc[i];
    mean /= static_cast<double>(m);
    double var = 0.0;
    for (size_t i = 0; i < m; ++i) {
      double d = xc[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(m);
    double inv_std = 1.0 / std::sqrt(var + epsilon_);
    inv_std_[c] = inv_std;
    float g = gamma_[c];
    float b = beta_[c];
    for (size_t i = 0; i < m; ++i) {
      double xhat = (xc[i] - mean) * inv_std;
      nh[c * m + i] = static_cast<float>(xhat);
      o[c * m + i] = static_cast<float>(g * xhat + b);
    }
  }
  return out;
}

Tensor ChannelNorm::Backward(const Tensor& grad_output) {
  DPAUDIT_CHECK(grad_output.shape() == normalized_.shape())
      << "Backward before Forward, or shape changed";
  size_t m = grad_output.dim(1) * grad_output.dim(2);
  Tensor grad_input(grad_output.shape());
  const float* g = grad_output.data();
  const float* nh = normalized_.data();
  float* gx = grad_input.data();
  for (size_t c = 0; c < channels_; ++c) {
    const float* gc = g + c * m;
    const float* xh = nh + c * m;
    double sum_g = 0.0;
    double sum_gx = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum_g += gc[i];
      sum_gx += static_cast<double>(gc[i]) * xh[i];
    }
    dbeta_[c] += static_cast<float>(sum_g);
    dgamma_[c] += static_cast<float>(sum_gx);
    // dL/dx = gamma * inv_std / m * (m*g - sum(g) - x_hat * sum(g*x_hat)).
    double scale = gamma_[c] * inv_std_[c] / static_cast<double>(m);
    for (size_t i = 0; i < m; ++i) {
      gx[c * m + i] = static_cast<float>(
          scale * (static_cast<double>(m) * gc[i] - sum_g - xh[i] * sum_gx));
    }
  }
  return grad_input;
}

std::unique_ptr<Layer> ChannelNorm::Clone() const {
  auto copy = std::make_unique<ChannelNorm>(channels_, epsilon_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  return copy;
}

std::string ChannelNorm::Name() const {
  std::ostringstream os;
  os << "channel_norm(" << channels_ << ")";
  return os.str();
}

}  // namespace dpaudit
