#include "nn/network.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/activations.h"
#include "nn/channel_norm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace dpaudit {

Network& Network::Add(std::unique_ptr<Layer> layer) {
  DPAUDIT_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

void Network::Initialize(Rng& rng) {
  for (auto& layer : layers_) layer->Initialize(rng);
}

Network Network::Clone() const {
  Network copy;
  for (const auto& layer : layers_) copy.Add(layer->Clone());
  return copy;
}

size_t Network::NumParams() const {
  size_t n = 0;
  for (const auto& layer : layers_) {
    for (const Tensor* p : const_cast<Layer&>(*layer).Params()) {
      n += p->size();
    }
  }
  return n;
}

Tensor Network::Forward(const Tensor& input) {
  Tensor activation = input;
  for (auto& layer : layers_) activation = layer->Forward(activation);
  return activation;
}

double Network::ExampleLoss(const Tensor& input, size_t label) {
  Tensor logits = Forward(input);
  return SoftmaxCrossEntropy(logits, label).loss;
}

size_t Network::Predict(const Tensor& input) {
  Tensor logits = Forward(input);
  DPAUDIT_CHECK_GT(logits.size(), 0u);
  size_t best = 0;
  for (size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = i;
  }
  return best;
}

double Network::Accuracy(const std::vector<Tensor>& inputs,
                         const std::vector<size_t>& labels) {
  DPAUDIT_CHECK_EQ(inputs.size(), labels.size());
  DPAUDIT_CHECK(!inputs.empty());
  size_t correct = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (Predict(inputs[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

void Network::ZeroGrads() {
  for (auto& layer : layers_) layer->ZeroGrads();
}

void Network::FlatGradsTo(float* dst) const {
  for (const auto& layer : layers_) {
    for (Tensor* g : const_cast<Layer&>(*layer).Grads()) {
      std::copy(g->data(), g->data() + g->size(), dst);
      dst += g->size();
    }
  }
}

double Network::PerExampleGradientTo(const Tensor& input, size_t label,
                                     GradientWorkspace* ws, float* dst) {
  ZeroGrads();
  // Forward with one activation buffer per layer: every layer's input stays
  // alive and unmodified through the backward sweep, so layers cache
  // pointers to their inputs instead of deep-copying them (layer.h lifetime
  // contract).
  ws->acts.resize(layers_.size());
  const Tensor* cur = &input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->ForwardInto(*cur, &ws->acts[i]);
    cur = &ws->acts[i];
  }
  double loss = SoftmaxCrossEntropyInto(*cur, label, &ws->grad_a);
  const Tensor* gcur = &ws->grad_a;
  Tensor* gnext = &ws->grad_b;
  Tensor* gspare = &ws->grad_a;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    (*it)->BackwardInto(*gcur, gnext);
    gcur = gnext;
    std::swap(gnext, gspare);
  }
  FlatGradsTo(dst);
  return loss;
}

bool Network::SupportsBatchLanes() const {
  if (layers_.empty()) return false;
  for (const auto& layer : layers_) {
    if (!layer->SupportsBatchLanes()) return false;
  }
  return true;
}

void Network::PerExampleGradientBatchTo(const Tensor* const* inputs,
                                        const size_t* labels, size_t lanes,
                                        GradientWorkspace* ws,
                                        float* const* dsts) {
  DPAUDIT_CHECK_GT(lanes, 0u);
  DPAUDIT_CHECK(!layers_.empty());
  PackLanes(inputs, lanes, &ws->lane_input);
  ws->lane_acts.resize(layers_.size());
  const Tensor* cur = &ws->lane_input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->ForwardBatchInto(*cur, lanes, &ws->lane_acts[i]);
    cur = &ws->lane_acts[i];
  }
  SoftmaxCrossEntropyBatchInto(*cur, labels, lanes, &ws->grad_a);
  const Tensor* gcur = &ws->grad_a;
  Tensor* gnext = &ws->grad_b;
  Tensor* gspare = &ws->grad_a;
  for (size_t i = layers_.size(); i-- > 0;) {
    // Layer 0's input gradient would be discarded; skip computing it.
    layers_[i]->BackwardBatchInto(*gcur, lanes, i == 0 ? nullptr : gnext);
    if (i == 0) break;
    gcur = gnext;
    std::swap(gnext, gspare);
  }
  if (ws->layer_param_sizes.size() != layers_.size()) {
    ws->layer_param_sizes.assign(layers_.size(), 0);
    for (size_t i = 0; i < layers_.size(); ++i) {
      for (const Tensor* p : layers_[i]->Params()) {
        ws->layer_param_sizes[i] += p->size();
      }
    }
  }
  for (size_t l = 0; l < lanes; ++l) {
    float* dst = dsts[l];
    for (size_t i = 0; i < layers_.size(); ++i) {
      layers_[i]->LaneGradsTo(l, dst);
      dst += ws->layer_param_sizes[i];
    }
  }
}

double Network::PerExampleGradientInto(const Tensor& input, size_t label,
                                       GradientWorkspace* ws) {
  ws->grad.resize(NumParams());
  return PerExampleGradientTo(input, label, ws, ws->grad.data());
}

std::vector<float> Network::PerExampleGradient(const Tensor& input,
                                               size_t label) {
  PerExampleGradientInto(input, label, &scratch_);
  return scratch_.grad;
}

std::vector<float> Network::ClippedExampleGradient(const Tensor& input,
                                                   size_t label,
                                                   double clip_norm) {
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  std::vector<float> grad = PerExampleGradient(input, label);
  double scale = ClipScale(L2Norm(grad.data(), grad.size()), clip_norm);
  if (scale < 1.0) {
    const float fscale = static_cast<float>(scale);
    for (float& g : grad) g *= fscale;
  }
  return grad;
}

std::vector<float> Network::ClippedGradientSum(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    double clip_norm, std::vector<double>* per_example_norms) {
  DPAUDIT_CHECK_EQ(inputs.size(), labels.size());
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  std::vector<float> sum(NumParams(), 0.0f);
  if (per_example_norms != nullptr) per_example_norms->clear();
  for (size_t j = 0; j < inputs.size(); ++j) {
    PerExampleGradientInto(inputs[j], labels[j], &scratch_);
    const float* grad = scratch_.grad.data();
    double norm = L2Norm(grad, scratch_.grad.size());
    if (per_example_norms != nullptr) per_example_norms->push_back(norm);
    AccumulateScaled(sum.data(), grad, sum.size(), ClipScale(norm, clip_norm));
  }
  return sum;
}

std::vector<Network::ParamRange> Network::LayerParamRanges() const {
  std::vector<ParamRange> ranges;
  size_t offset = 0;
  for (const auto& layer : layers_) {
    size_t layer_size = 0;
    for (Tensor* p : const_cast<Layer&>(*layer).Params()) {
      layer_size += p->size();
    }
    if (layer_size > 0) ranges.push_back({offset, layer_size});
    offset += layer_size;
  }
  return ranges;
}

std::vector<float> Network::PerLayerClippedGradientSum(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    double clip_norm) {
  DPAUDIT_CHECK_EQ(inputs.size(), labels.size());
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  std::vector<ParamRange> ranges = LayerParamRanges();
  DPAUDIT_CHECK(!ranges.empty());
  double per_layer_clip =
      clip_norm / std::sqrt(static_cast<double>(ranges.size()));
  std::vector<float> sum(NumParams(), 0.0f);
  for (size_t j = 0; j < inputs.size(); ++j) {
    PerExampleGradientInto(inputs[j], labels[j], &scratch_);
    const float* grad = scratch_.grad.data();
    for (const ParamRange& range : ranges) {
      double norm = L2Norm(grad + range.offset, range.size);
      AccumulateScaled(sum.data() + range.offset, grad + range.offset,
                       range.size, ClipScale(norm, per_layer_clip));
    }
  }
  return sum;
}

std::vector<float> Network::FlatParams() const {
  std::vector<float> flat;
  flat.reserve(NumParams());
  for (const auto& layer : layers_) {
    for (Tensor* p : const_cast<Layer&>(*layer).Params()) {
      flat.insert(flat.end(), p->vec().begin(), p->vec().end());
    }
  }
  return flat;
}

void Network::SetFlatParams(const std::vector<float>& flat) {
  DPAUDIT_CHECK_EQ(flat.size(), NumParams());
  size_t offset = 0;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Params()) {
      std::copy(flat.begin() + offset, flat.begin() + offset + p->size(),
                p->vec().begin());
      offset += p->size();
    }
  }
}

void Network::ApplyGradientStep(const std::vector<float>& flat_gradient,
                                double lr) {
  DPAUDIT_CHECK_EQ(flat_gradient.size(), NumParams());
  size_t offset = 0;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Params()) {
      float* data = p->data();
      for (size_t i = 0; i < p->size(); ++i) {
        data[i] -= static_cast<float>(lr * flat_gradient[offset + i]);
      }
      offset += p->size();
    }
  }
}

std::string Network::Describe() const {
  std::ostringstream os;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) os << " -> ";
    os << layers_[i]->Name();
  }
  return os.str();
}

Network BuildMnistNetwork(size_t image_size, size_t conv1_filters,
                          size_t conv2_filters, size_t num_classes) {
  DPAUDIT_CHECK_GE(image_size, 12u);
  Network net;
  net.Add(std::make_unique<Conv2d>(1, conv1_filters, 3));
  net.Add(std::make_unique<ChannelNorm>(conv1_filters));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<MaxPool2d>(2));
  net.Add(std::make_unique<Conv2d>(conv1_filters, conv2_filters, 3));
  net.Add(std::make_unique<ChannelNorm>(conv2_filters));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<MaxPool2d>(2));
  size_t s1 = (image_size - 2) / 2;  // after conv1 + pool
  size_t s2 = (s1 - 2) / 2;          // after conv2 + pool
  net.Add(std::make_unique<Dense>(conv2_filters * s2 * s2, num_classes));
  return net;
}

Network BuildPurchaseNetwork(size_t input_features, size_t hidden_units,
                             size_t num_classes) {
  Network net;
  net.Add(std::make_unique<Dense>(input_features, hidden_units));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(hidden_units, num_classes));
  return net;
}

}  // namespace dpaudit
