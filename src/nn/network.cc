#include "nn/network.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/activations.h"
#include "nn/channel_norm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "util/logging.h"

namespace dpaudit {

Network& Network::Add(std::unique_ptr<Layer> layer) {
  DPAUDIT_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

void Network::Initialize(Rng& rng) {
  for (auto& layer : layers_) layer->Initialize(rng);
}

Network Network::Clone() const {
  Network copy;
  for (const auto& layer : layers_) copy.Add(layer->Clone());
  return copy;
}

size_t Network::NumParams() const {
  size_t n = 0;
  for (const auto& layer : layers_) {
    for (const Tensor* p : const_cast<Layer&>(*layer).Params()) {
      n += p->size();
    }
  }
  return n;
}

Tensor Network::Forward(const Tensor& input) {
  Tensor activation = input;
  for (auto& layer : layers_) activation = layer->Forward(activation);
  return activation;
}

double Network::ExampleLoss(const Tensor& input, size_t label) {
  Tensor logits = Forward(input);
  return SoftmaxCrossEntropy(logits, label).loss;
}

size_t Network::Predict(const Tensor& input) {
  Tensor logits = Forward(input);
  DPAUDIT_CHECK_GT(logits.size(), 0u);
  size_t best = 0;
  for (size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = i;
  }
  return best;
}

double Network::Accuracy(const std::vector<Tensor>& inputs,
                         const std::vector<size_t>& labels) {
  DPAUDIT_CHECK_EQ(inputs.size(), labels.size());
  DPAUDIT_CHECK(!inputs.empty());
  size_t correct = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (Predict(inputs[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

void Network::Backward(const Tensor& grad_logits) {
  Tensor grad = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
}

void Network::ZeroGrads() {
  for (auto& layer : layers_) layer->ZeroGrads();
}

std::vector<float> Network::FlatGrads() const {
  std::vector<float> flat;
  flat.reserve(NumParams());
  for (const auto& layer : layers_) {
    for (Tensor* g : const_cast<Layer&>(*layer).Grads()) {
      flat.insert(flat.end(), g->vec().begin(), g->vec().end());
    }
  }
  return flat;
}

std::vector<float> Network::PerExampleGradient(const Tensor& input,
                                               size_t label) {
  ZeroGrads();
  Tensor logits = Forward(input);
  LossResult loss = SoftmaxCrossEntropy(logits, label);
  Backward(loss.grad_logits);
  return FlatGrads();
}

std::vector<float> Network::ClippedExampleGradient(const Tensor& input,
                                                   size_t label,
                                                   double clip_norm) {
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  std::vector<float> grad = PerExampleGradient(input, label);
  double sq = 0.0;
  for (float g : grad) sq += static_cast<double>(g) * g;
  double norm = std::sqrt(sq);
  if (norm > clip_norm) {
    float scale = static_cast<float>(clip_norm / norm);
    for (float& g : grad) g *= scale;
  }
  return grad;
}

std::vector<float> Network::ClippedGradientSum(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    double clip_norm, std::vector<double>* per_example_norms) {
  DPAUDIT_CHECK_EQ(inputs.size(), labels.size());
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  std::vector<float> sum(NumParams(), 0.0f);
  if (per_example_norms != nullptr) per_example_norms->clear();
  for (size_t j = 0; j < inputs.size(); ++j) {
    std::vector<float> grad = PerExampleGradient(inputs[j], labels[j]);
    double sq = 0.0;
    for (float g : grad) sq += static_cast<double>(g) * g;
    double norm = std::sqrt(sq);
    if (per_example_norms != nullptr) per_example_norms->push_back(norm);
    double scale = norm > clip_norm ? clip_norm / norm : 1.0;
    for (size_t i = 0; i < sum.size(); ++i) {
      sum[i] += static_cast<float>(scale * grad[i]);
    }
  }
  return sum;
}

std::vector<Network::ParamRange> Network::LayerParamRanges() const {
  std::vector<ParamRange> ranges;
  size_t offset = 0;
  for (const auto& layer : layers_) {
    size_t layer_size = 0;
    for (Tensor* p : const_cast<Layer&>(*layer).Params()) {
      layer_size += p->size();
    }
    if (layer_size > 0) ranges.push_back({offset, layer_size});
    offset += layer_size;
  }
  return ranges;
}

std::vector<float> Network::PerLayerClippedGradientSum(
    const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
    double clip_norm) {
  DPAUDIT_CHECK_EQ(inputs.size(), labels.size());
  DPAUDIT_CHECK_GT(clip_norm, 0.0);
  std::vector<ParamRange> ranges = LayerParamRanges();
  DPAUDIT_CHECK(!ranges.empty());
  double per_layer_clip =
      clip_norm / std::sqrt(static_cast<double>(ranges.size()));
  std::vector<float> sum(NumParams(), 0.0f);
  for (size_t j = 0; j < inputs.size(); ++j) {
    std::vector<float> grad = PerExampleGradient(inputs[j], labels[j]);
    for (const ParamRange& range : ranges) {
      double sq = 0.0;
      for (size_t i = range.offset; i < range.offset + range.size; ++i) {
        sq += static_cast<double>(grad[i]) * grad[i];
      }
      double norm = std::sqrt(sq);
      double scale = norm > per_layer_clip ? per_layer_clip / norm : 1.0;
      for (size_t i = range.offset; i < range.offset + range.size; ++i) {
        sum[i] += static_cast<float>(scale * grad[i]);
      }
    }
  }
  return sum;
}

std::vector<float> Network::FlatParams() const {
  std::vector<float> flat;
  flat.reserve(NumParams());
  for (const auto& layer : layers_) {
    for (Tensor* p : const_cast<Layer&>(*layer).Params()) {
      flat.insert(flat.end(), p->vec().begin(), p->vec().end());
    }
  }
  return flat;
}

void Network::SetFlatParams(const std::vector<float>& flat) {
  DPAUDIT_CHECK_EQ(flat.size(), NumParams());
  size_t offset = 0;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Params()) {
      std::copy(flat.begin() + offset, flat.begin() + offset + p->size(),
                p->vec().begin());
      offset += p->size();
    }
  }
}

void Network::ApplyGradientStep(const std::vector<float>& flat_gradient,
                                double lr) {
  DPAUDIT_CHECK_EQ(flat_gradient.size(), NumParams());
  size_t offset = 0;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Params()) {
      float* data = p->data();
      for (size_t i = 0; i < p->size(); ++i) {
        data[i] -= static_cast<float>(lr * flat_gradient[offset + i]);
      }
      offset += p->size();
    }
  }
}

std::string Network::Describe() const {
  std::ostringstream os;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) os << " -> ";
    os << layers_[i]->Name();
  }
  return os.str();
}

Network BuildMnistNetwork(size_t image_size, size_t conv1_filters,
                          size_t conv2_filters, size_t num_classes) {
  DPAUDIT_CHECK_GE(image_size, 12u);
  Network net;
  net.Add(std::make_unique<Conv2d>(1, conv1_filters, 3));
  net.Add(std::make_unique<ChannelNorm>(conv1_filters));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<MaxPool2d>(2));
  net.Add(std::make_unique<Conv2d>(conv1_filters, conv2_filters, 3));
  net.Add(std::make_unique<ChannelNorm>(conv2_filters));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<MaxPool2d>(2));
  size_t s1 = (image_size - 2) / 2;  // after conv1 + pool
  size_t s2 = (s1 - 2) / 2;          // after conv2 + pool
  net.Add(std::make_unique<Dense>(conv2_filters * s2 * s2, num_classes));
  return net;
}

Network BuildPurchaseNetwork(size_t input_features, size_t hidden_units,
                             size_t num_classes) {
  Network net;
  net.Add(std::make_unique<Dense>(input_features, hidden_units));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(hidden_units, num_classes));
  return net;
}

}  // namespace dpaudit
