// Batched, parallel per-example gradient engine.
//
// DPSGD needs, at every step, the clipped per-example gradient of every
// record at the current weights. The engine computes those gradients across a
// fixed set of worker replicas (each worker owns a deep copy of the network
// plus a reusable GradientWorkspace, so workers never share layer caches and
// the steady state performs no per-example heap allocation) and hands them to
// the caller ON THE CALLING THREAD in ascending example order.
//
// Determinism contract: a per-example gradient depends only on the parameters
// and the example, never on which worker computes it or in what order, and
// every reduction (norms, clipped sums) happens sequentially in example order
// on the calling thread. Results are therefore bit-identical for any thread
// count, including the sequential reference implementation in Network.
//
// The batched lane path (DPAUDIT_BATCH_LANES, default 8) extends the same
// contract to lane packs: workers claim a pack of up to B same-shaped
// examples and push them through the layers' lane-SoA entry points, where
// each lane keeps its own accumulators advancing in the scalar path's
// ascending order. A lane's gradient therefore never depends on its pack
// mates, the pack width, or ragged tail packs — bit-identical to the scalar
// path for any B and thread count.

#ifndef DPAUDIT_NN_GRADIENT_ENGINE_H_
#define DPAUDIT_NN_GRADIENT_ENGINE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "nn/network.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace dpaudit {

class GradientEngine {
 public:
  struct Options {
    /// Sentinel for batch_lanes: resolve from DPAUDIT_BATCH_LANES.
    static constexpr size_t kBatchLanesAuto = static_cast<size_t>(-1);

    /// Worker count; 0 means DefaultThreadCount(). With one worker the
    /// engine runs inline on the calling thread with a single slot buffer.
    size_t threads = 0;
    /// Examples claimed per unit of scheduled work. Parallel mode buffers
    /// threads * chunk flat gradients at a time. Raised to batch_lanes when
    /// smaller, so chunks always hold whole packs.
    size_t chunk = 16;
    /// Lane count for the batched forward/backward path: 0 selects the
    /// legacy one-example-at-a-time path, kBatchLanesAuto reads
    /// DPAUDIT_BATCH_LANES (default 8). Clamped to kMaxBatchLanes; forced
    /// to 0 when the architecture has a layer without lane support.
    /// Bit-identical results either way.
    size_t batch_lanes = kBatchLanesAuto;
  };

  /// Which norms the workers precompute alongside each gradient. Norm chains
  /// are long serial double accumulations, so they are evaluated on the
  /// workers (where they parallelize across examples) rather than in the
  /// visitor.
  enum class NormMode {
    kWhole,     // pre-clip L2 norm of the whole flat gradient
    kPerLayer,  // one norm per parameterized layer (LayerParamRanges order)
  };

  /// What a visitor sees for one example.
  struct PerExampleGradView {
    const float* grad;          // flat gradient, num_params() floats
    double norm;                // whole-gradient norm (NormMode::kWhole)
    const double* layer_norms;  // per-range norms (NormMode::kPerLayer)
  };

  explicit GradientEngine(const Network& architecture)
      : GradientEngine(architecture, Options()) {}
  GradientEngine(const Network& architecture, Options options);

  GradientEngine(const GradientEngine&) = delete;
  GradientEngine& operator=(const GradientEngine&) = delete;

  size_t num_params() const { return num_params_; }
  size_t threads() const { return threads_; }
  /// Effective lane count after env resolution and architecture gating
  /// (0 = scalar path).
  size_t batch_lanes() const { return lanes_; }
  const std::vector<Network::ParamRange>& param_ranges() const {
    return ranges_;
  }

  /// Copies `source`'s parameters into every worker replica. Call once per
  /// training step, before computing gradients at the new weights.
  void SyncParams(const Network& source);

  /// Computes the per-example gradient of every (inputs[j], labels[j]) and
  /// invokes visit(j, view) on the calling thread in ascending j. The view's
  /// pointers are only valid during that invocation.
  void VisitPerExampleGradients(
      const std::vector<const Tensor*>& inputs,
      const std::vector<size_t>& labels, NormMode mode,
      const std::function<void(size_t, const PerExampleGradView&)>& visit);

  void VisitPerExampleGradients(
      const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
      NormMode mode,
      const std::function<void(size_t, const PerExampleGradView&)>& visit);

  /// Drop-in equivalents of the Network methods of the same names,
  /// bit-identical to them for any thread count.
  std::vector<float> ClippedGradientSum(
      const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
      double clip_norm, std::vector<double>* per_example_norms = nullptr);

  std::vector<float> PerLayerClippedGradientSum(
      const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
      double clip_norm);

 private:
  struct Slot {
    std::vector<float> grad;
    double norm = 0.0;
    std::vector<double> layer_norms;
  };

  /// Fills `slot`'s norm fields from its already-computed flat gradient.
  void FillNorms(NormMode mode, Slot* slot);

  /// Computes example j's gradient and norms into `slot` using worker w's
  /// replica and workspace.
  void ComputeSlot(size_t worker, const Tensor& input, size_t label,
                   NormMode mode, Slot* slot);

  /// Computes the gradients of examples [begin_j, begin_j + count) as one
  /// lane pack into slots[0..count), norms included. `count` may be ragged
  /// (< lanes_) at chunk and dataset tails: a mostly-full tail is padded to
  /// the full lane width with copies of its last example (padded lanes land
  /// in a scratch gradient and are discarded — lanes are independent, so the
  /// real lanes are untouched), while a mostly-empty tail runs the scalar
  /// path. Bit-identical either way; the split only picks the cheaper route.
  void ComputePack(size_t worker, const std::vector<const Tensor*>& inputs,
                   const size_t* labels, size_t begin_j, size_t count,
                   NormMode mode, Slot* slots);

  size_t threads_;
  size_t chunk_;
  size_t lanes_;  // 0 = scalar path
  size_t num_params_;
  std::vector<Network::ParamRange> ranges_;
  std::vector<Network> replicas_;             // one per worker
  std::vector<GradientWorkspace> workspaces_; // one per worker
  std::vector<Slot> slots_;                   // threads * chunk wave buffers
  // Per-worker pack argument scratch (input pointers, labels, destination
  // pointers, and the discard gradient that padded lanes scatter into),
  // reused across packs so steady state stays allocation-free.
  std::vector<std::vector<const Tensor*>> pack_inputs_;
  std::vector<std::vector<size_t>> pack_labels_;
  std::vector<std::vector<float*>> pack_dsts_;
  std::vector<std::vector<float>> pad_grads_;
  std::unique_ptr<ThreadPool> pool_;          // absent when threads_ == 1
};

}  // namespace dpaudit

#endif  // DPAUDIT_NN_GRADIENT_ENGINE_H_
