// Fused softmax + cross-entropy loss.

#ifndef DPAUDIT_NN_LOSS_H_
#define DPAUDIT_NN_LOSS_H_

#include <cstddef>

#include "tensor/tensor.h"

namespace dpaudit {

struct LossResult {
  double loss;         // -log softmax(logits)[label]
  Tensor grad_logits;  // softmax(logits) - onehot(label)
};

/// Computes cross-entropy of softmax(logits) against `label` and its exact
/// gradient with respect to the logits. Requires 0 <= label < logits.size().
/// Numerically stable via the log-sum-exp trick.
LossResult SoftmaxCrossEntropy(const Tensor& logits, size_t label);

/// Allocation-free form: writes the logit gradient into `*grad_logits`
/// (resized as needed, storage reused) and returns the loss. `grad_logits`
/// must not alias `logits`.
double SoftmaxCrossEntropyInto(const Tensor& logits, size_t label,
                               Tensor* grad_logits);

/// Batched lane form over a [classes, lanes] logits tensor (lane-SoA, as
/// produced by the batched layer path): computes each lane's loss gradient
/// with exactly the chain SoftmaxCrossEntropyInto runs on that lane's logits
/// alone — max first, then exp-sum in ascending class order — so gradients
/// are bit-identical per lane. `labels` holds one label per lane. When
/// `losses` is non-null it receives the per-lane losses.
void SoftmaxCrossEntropyBatchInto(const Tensor& logits, const size_t* labels,
                                  size_t lanes, Tensor* grad_logits,
                                  double* losses = nullptr);

/// Softmax probabilities of a rank-1 logits tensor (stable).
Tensor SoftmaxProbabilities(const Tensor& logits);

}  // namespace dpaudit

#endif  // DPAUDIT_NN_LOSS_H_
