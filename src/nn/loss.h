// Fused softmax + cross-entropy loss.

#ifndef DPAUDIT_NN_LOSS_H_
#define DPAUDIT_NN_LOSS_H_

#include <cstddef>

#include "tensor/tensor.h"

namespace dpaudit {

struct LossResult {
  double loss;         // -log softmax(logits)[label]
  Tensor grad_logits;  // softmax(logits) - onehot(label)
};

/// Computes cross-entropy of softmax(logits) against `label` and its exact
/// gradient with respect to the logits. Requires 0 <= label < logits.size().
/// Numerically stable via the log-sum-exp trick.
LossResult SoftmaxCrossEntropy(const Tensor& logits, size_t label);

/// Allocation-free form: writes the logit gradient into `*grad_logits`
/// (resized as needed, storage reused) and returns the loss. `grad_logits`
/// must not alias `logits`.
double SoftmaxCrossEntropyInto(const Tensor& logits, size_t label,
                               Tensor* grad_logits);

/// Softmax probabilities of a rank-1 logits tensor (stable).
Tensor SoftmaxProbabilities(const Tensor& logits);

}  // namespace dpaudit

#endif  // DPAUDIT_NN_LOSS_H_
