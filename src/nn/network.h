// Sequential network container with the per-example-gradient operations that
// DPSGD and the DP adversary need: flattened parameter access, per-example
// clipped gradients, and clipped batch-gradient sums.

#ifndef DPAUDIT_NN_NETWORK_H_
#define DPAUDIT_NN_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace dpaudit {

/// Reusable scratch buffers for one forward/backward pass. After the first
/// example has sized the buffers, a per-example gradient computation performs
/// no heap allocation. Each concurrent computation needs its own workspace
/// (and its own Network replica, since layers cache activations).
///
/// Activations are kept one-buffer-per-layer (not ping-ponged): layer i's
/// input — `acts[i-1]`, or the caller's input tensor for layer 0 — stays
/// valid and unmodified through the backward sweep, which is what lets
/// layers cache a pointer to their input instead of deep-copying it (see the
/// lifetime contract in layer.h).
struct GradientWorkspace {
  std::vector<Tensor> acts;  // forward output of each layer (scalar path)
  Tensor grad_a, grad_b;     // backward gradient ping-pong buffers
  std::vector<float> grad;   // flat per-example gradient (NumParams floats)
  // Batched lane path: the packed lane input, per-layer lane activations,
  // and the cached per-layer flat parameter counts used to slice lane
  // gradients back out per example.
  Tensor lane_input;
  std::vector<Tensor> lane_acts;
  std::vector<size_t> layer_param_sizes;
};

/// A stack of layers ending in logits (the softmax is fused into the loss).
/// Move-only (layers hold state); use Clone() for deep copies.
class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Appends a layer; returns *this for builder-style chaining.
  Network& Add(std::unique_ptr<Layer> layer);

  /// Draws initial parameters for every layer.
  void Initialize(Rng& rng);

  /// Deep copy including current parameter values.
  Network Clone() const;

  size_t num_layers() const { return layers_.size(); }
  const Layer& layer(size_t i) const { return *layers_[i]; }

  /// Total number of scalar parameters.
  size_t NumParams() const;

  /// Runs the example through all layers and returns the logits.
  Tensor Forward(const Tensor& input);

  /// Cross-entropy loss of one example (no gradient side effects beyond the
  /// layer forward caches).
  double ExampleLoss(const Tensor& input, size_t label);

  /// argmax class for one example.
  size_t Predict(const Tensor& input);

  /// Fraction of (inputs[i], labels[i]) classified correctly.
  double Accuracy(const std::vector<Tensor>& inputs,
                  const std::vector<size_t>& labels);

  /// Gradient of the cross-entropy loss of ONE example with respect to all
  /// parameters, flattened in layer order. Does not disturb accumulated
  /// layer gradients beyond overwriting them.
  std::vector<float> PerExampleGradient(const Tensor& input, size_t label);

  /// Allocation-free form of PerExampleGradient: runs the pass through the
  /// workspace buffers, leaves the flat gradient in `ws->grad`, and returns
  /// the example loss.
  double PerExampleGradientInto(const Tensor& input, size_t label,
                                GradientWorkspace* ws);

  /// Like PerExampleGradientInto but writes the flat gradient into `dst`
  /// (NumParams floats) instead of `ws->grad`, for callers that own the
  /// destination buffer (e.g. the parallel gradient engine's slots).
  double PerExampleGradientTo(const Tensor& input, size_t label,
                              GradientWorkspace* ws, float* dst);

  /// True when every layer implements the batched lane entry points, i.e.
  /// PerExampleGradientBatchTo may be used on this architecture.
  bool SupportsBatchLanes() const;

  /// Batched form of PerExampleGradientTo: packs `lanes` same-shaped
  /// examples into one lane-SoA pass through the whole stack and writes lane
  /// l's flat gradient into `dsts[l]` (NumParams floats each). Each lane's
  /// gradient is bit-identical to PerExampleGradientTo on that example
  /// alone, for any lane count. Requires SupportsBatchLanes().
  void PerExampleGradientBatchTo(const Tensor* const* inputs,
                                 const size_t* labels, size_t lanes,
                                 GradientWorkspace* ws, float* const* dsts);

  /// Sum over the given examples of per-example gradients clipped to L2 norm
  /// `clip_norm` (Abadi et al.): g_j * min(1, C / ||g_j||). Returns the flat
  /// sum; if `per_example_norms` is non-null it receives each pre-clip norm.
  std::vector<float> ClippedGradientSum(
      const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
      double clip_norm, std::vector<double>* per_example_norms = nullptr);

  /// Clipped gradient of a single example: g * min(1, C / ||g||).
  std::vector<float> ClippedExampleGradient(const Tensor& input, size_t label,
                                            double clip_norm);

  /// Per-layer clipping (Thakkar et al., the paper's Section 7 remark about
  /// "setting C differently for each layer"): each parameterized layer's
  /// slice of the per-example gradient is clipped to C / sqrt(L) where L is
  /// the number of parameterized layers, so the whole clipped gradient still
  /// has norm at most C and the global sensitivity analysis is unchanged.
  std::vector<float> PerLayerClippedGradientSum(
      const std::vector<Tensor>& inputs, const std::vector<size_t>& labels,
      double clip_norm);

  /// Flat [offset, size) ranges of each parameterized layer within the
  /// flattened parameter/gradient vectors (layers without parameters are
  /// omitted).
  struct ParamRange {
    size_t offset;
    size_t size;
  };
  std::vector<ParamRange> LayerParamRanges() const;

  /// Current parameters flattened in layer order.
  std::vector<float> FlatParams() const;

  /// Overwrites all parameters from a flat vector (size must match).
  void SetFlatParams(const std::vector<float>& flat);

  /// theta <- theta - lr * flat_gradient. Size must equal NumParams().
  void ApplyGradientStep(const std::vector<float>& flat_gradient, double lr);

  /// "conv2d(1->4, k=3) -> relu -> ..." summary.
  std::string Describe() const;

 private:
  void ZeroGrads();

  /// Copies the accumulated layer gradients, flattened in layer order, into
  /// `dst` (NumParams floats).
  void FlatGradsTo(float* dst) const;

  std::vector<std::unique_ptr<Layer>> layers_;
  /// Scratch for the sequential per-example-gradient entry points; lets the
  /// public convenience methods run allocation-free at steady state.
  GradientWorkspace scratch_;
};

/// The paper's MNIST architecture (Section 6.2): two 3x3 conv blocks with
/// normalization and 2x2 max pooling, then a 10-way softmax head. Filter
/// counts (4, 8) are chosen small for CPU experiment throughput; the paper
/// does not specify them.
Network BuildMnistNetwork(size_t image_size = 28, size_t conv1_filters = 4,
                          size_t conv2_filters = 8, size_t num_classes = 10);

/// The paper's Purchase-100 architecture (Section 6.2): 600-d input, one
/// 128-unit ReLU hidden layer, 100-way softmax head.
Network BuildPurchaseNetwork(size_t input_features = 600,
                             size_t hidden_units = 128,
                             size_t num_classes = 100);

}  // namespace dpaudit

#endif  // DPAUDIT_NN_NETWORK_H_
