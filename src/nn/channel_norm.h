// Per-example channel normalization with learned scale and shift.
//
// The paper's MNIST network uses batch normalization. Batch normalization
// couples examples within a batch, which makes "the per-example gradient" —
// the quantity DPSGD clips — ill-defined. Following standard practice in the
// DP-SGD literature (replace BN with group/instance normalization), we
// normalize each example's channels over their spatial extent using that
// example's own statistics. The learned per-channel affine (gamma, beta)
// parameters and the regularizing effect are preserved; examples stay
// independent, so per-example clipping is exact. Recorded as a substitution
// in DESIGN.md.

#ifndef DPAUDIT_NN_CHANNEL_NORM_H_
#define DPAUDIT_NN_CHANNEL_NORM_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace dpaudit {

/// Instance normalization: for input [C, H, W], each channel c is normalized
/// to zero mean / unit variance over its H*W values, then scaled by gamma_c
/// and shifted by beta_c.
class ChannelNorm : public Layer {
 public:
  explicit ChannelNorm(size_t channels, double epsilon = 1e-5);

  void ForwardInto(const Tensor& input, Tensor* output) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  bool SupportsBatchLanes() const override { return true; }
  void ForwardBatchInto(const Tensor& input, size_t lanes,
                        Tensor* output) override;
  void BackwardBatchInto(const Tensor& grad_output, size_t lanes,
                         Tensor* grad_input) override;
  void LaneGradsTo(size_t lane, float* dst) const override;
  std::vector<Tensor*> Params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> Grads() override { return {&dgamma_, &dbeta_}; }
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override;

 private:
  size_t channels_;
  double epsilon_;
  Tensor gamma_;  // [C]
  Tensor beta_;   // [C]
  Tensor dgamma_;
  Tensor dbeta_;
  // Forward-pass cache for Backward.
  Tensor normalized_;            // x_hat, same shape as input
  std::vector<double> inv_std_;  // per channel
  // Per-channel accumulators for the statistics passes. Channels are
  // accumulated interleaved (all channels advance one spatial position per
  // iteration) so the C independent summation chains overlap in the FP
  // pipeline; each chain still adds its values in ascending spatial order.
  std::vector<double> mean_;
  std::vector<double> var_;
  std::vector<double> sum_g_;
  std::vector<double> sum_gx_;
  // Batched lane state: per-(channel, lane) statistics and per-lane
  // parameter gradients, all lane-SoA.
  Tensor lane_normalized_;
  std::vector<double> lane_mean_;     // [C, lanes]
  std::vector<double> lane_inv_std_;  // [C, lanes]
  std::vector<float> lane_dgamma_;    // [C, lanes]
  std::vector<float> lane_dbeta_;     // [C, lanes]
  size_t batch_lanes_ = 0;
};

}  // namespace dpaudit

#endif  // DPAUDIT_NN_CHANNEL_NORM_H_
