// Finite-difference gradient verification used by the test suite.

#ifndef DPAUDIT_NN_GRADIENT_CHECK_H_
#define DPAUDIT_NN_GRADIENT_CHECK_H_

#include <cstddef>

#include "nn/network.h"
#include "tensor/tensor.h"

namespace dpaudit {

struct GradientCheckResult {
  double max_abs_error;   // worst |analytic - numeric| over checked params
  double max_rel_error;   // worst relative error over checked params
  size_t params_checked;
};

/// Compares the analytic per-example gradient of `net` on (input, label) to a
/// central-difference approximation. `stride` subsamples parameters (check
/// every stride-th) to keep O(P) forward passes affordable in tests.
GradientCheckResult CheckNetworkGradient(Network& net, const Tensor& input,
                                         size_t label, double step = 1e-3,
                                         size_t stride = 1);

}  // namespace dpaudit

#endif  // DPAUDIT_NN_GRADIENT_CHECK_H_
