#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace dpaudit {
namespace {

size_t Volume(const std::vector<size_t>& shape) {
  size_t v = 1;
  for (size_t d : shape) {
    DPAUDIT_CHECK_GT(d, 0u) << "zero extent in tensor shape";
    v *= d;
  }
  return v;
}

}  // namespace

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(Volume(shape_), 0.0f) {}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  DPAUDIT_CHECK_EQ(Volume(shape_), data_.size());
}

void Tensor::ResizeTo(const std::vector<size_t>& shape) {
  if (shape_ == shape) return;
  shape_ = shape;
  data_.resize(Volume(shape_));
}

void Tensor::ResizeTo(std::initializer_list<size_t> shape) {
  if (shape_.size() == shape.size() &&
      std::equal(shape.begin(), shape.end(), shape_.begin())) {
    return;
  }
  shape_.assign(shape.begin(), shape.end());
  data_.resize(Volume(shape_));
}

Tensor Tensor::Full(std::vector<size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

size_t Tensor::Offset2(size_t i, size_t j) const {
  DPAUDIT_CHECK_EQ(rank(), 2u);
  DPAUDIT_CHECK_LT(i, shape_[0]);
  DPAUDIT_CHECK_LT(j, shape_[1]);
  return i * shape_[1] + j;
}

size_t Tensor::Offset3(size_t i, size_t j, size_t k) const {
  DPAUDIT_CHECK_EQ(rank(), 3u);
  DPAUDIT_CHECK_LT(i, shape_[0]);
  DPAUDIT_CHECK_LT(j, shape_[1]);
  DPAUDIT_CHECK_LT(k, shape_[2]);
  return (i * shape_[1] + j) * shape_[2] + k;
}

size_t Tensor::Offset4(size_t i, size_t j, size_t k, size_t l) const {
  DPAUDIT_CHECK_EQ(rank(), 4u);
  DPAUDIT_CHECK_LT(i, shape_[0]);
  DPAUDIT_CHECK_LT(j, shape_[1]);
  DPAUDIT_CHECK_LT(k, shape_[2]);
  DPAUDIT_CHECK_LT(l, shape_[3]);
  return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float& Tensor::At(size_t i, size_t j) { return data_[Offset2(i, j)]; }
float Tensor::At(size_t i, size_t j) const { return data_[Offset2(i, j)]; }
float& Tensor::At(size_t i, size_t j, size_t k) {
  return data_[Offset3(i, j, k)];
}
float Tensor::At(size_t i, size_t j, size_t k) const {
  return data_[Offset3(i, j, k)];
}
float& Tensor::At(size_t i, size_t j, size_t k, size_t l) {
  return data_[Offset4(i, j, k, l)];
}
float Tensor::At(size_t i, size_t j, size_t k, size_t l) const {
  return data_[Offset4(i, j, k, l)];
}

void Tensor::Reshape(std::vector<size_t> shape) {
  DPAUDIT_CHECK_EQ(Volume(shape), data_.size());
  shape_ = std::move(shape);
}

void Tensor::Fill(float value) {
  for (float& x : data_) x = value;
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  DPAUDIT_CHECK(shape_ == other.shape_)
      << "Axpy shape mismatch: " << ShapeString() << " vs "
      << other.ShapeString();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::Scale(float alpha) {
  for (float& x : data_) x *= alpha;
}

double Tensor::L2Norm() const {
  double sq = 0.0;
  for (float x : data_) sq += static_cast<double>(x) * x;
  return std::sqrt(sq);
}

double Tensor::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

Tensor Add(const Tensor& a, const Tensor& b) {
  DPAUDIT_CHECK(a.shape() == b.shape());
  Tensor out = a;
  out.Axpy(1.0f, b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  DPAUDIT_CHECK(a.shape() == b.shape());
  Tensor out = a;
  out.Axpy(-1.0f, b);
  return out;
}

double Dot(const Tensor& a, const Tensor& b) {
  DPAUDIT_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(pa[i]) * pb[i];
  }
  return s;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DPAUDIT_CHECK_EQ(a.rank(), 2u);
  DPAUDIT_CHECK_EQ(b.rank(), 2u);
  DPAUDIT_CHECK_EQ(a.dim(1), b.dim(0));
  size_t m = a.dim(0);
  size_t k = a.dim(1);
  size_t n = b.dim(1);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // i-k-j loop order keeps the inner loop contiguous over both b and out.
  for (size_t i = 0; i < m; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  DPAUDIT_CHECK_EQ(a.rank(), 2u);
  size_t m = a.dim(0);
  size_t n = a.dim(1);
  Tensor out({n, m});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out.At(j, i) = a.At(i, j);
  }
  return out;
}

void PackLanes(const Tensor* const* examples, size_t lanes, Tensor* packed) {
  DPAUDIT_CHECK_GT(lanes, 0u);
  const Tensor& first = *examples[0];
  std::vector<size_t> shape = first.shape();
  for (size_t l = 1; l < lanes; ++l) {
    DPAUDIT_CHECK(examples[l]->shape() == shape)
        << "lane " << l << " shape " << examples[l]->ShapeString()
        << " != " << first.ShapeString();
  }
  shape.push_back(lanes);
  packed->ResizeTo(shape);
  const size_t elems = first.size();
  float* out = packed->data();
  for (size_t l = 0; l < lanes; ++l) {
    const float* in = examples[l]->data();
    for (size_t e = 0; e < elems; ++e) out[e * lanes + l] = in[e];
  }
}

void UnpackLane(const Tensor& packed, size_t lane, Tensor* example) {
  DPAUDIT_CHECK_GE(packed.rank(), 2u);
  const size_t lanes = packed.dim(packed.rank() - 1);
  DPAUDIT_CHECK_LT(lane, lanes);
  std::vector<size_t> shape = packed.shape();
  shape.pop_back();
  example->ResizeTo(shape);
  const size_t elems = example->size();
  const float* in = packed.data();
  float* out = example->data();
  for (size_t e = 0; e < elems; ++e) out[e] = in[e * lanes + lane];
}

}  // namespace dpaudit
