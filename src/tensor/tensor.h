// A small dense row-major float tensor. This is the numeric substrate for the
// neural-network layers in src/nn; it deliberately supports only what DPSGD
// training needs (no broadcasting, no views onto strided storage).

#ifndef DPAUDIT_TENSOR_TENSOR_H_
#define DPAUDIT_TENSOR_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/logging.h"

namespace dpaudit {

/// Dense row-major tensor of floats with up to 4 dimensions in practice
/// (N, C, H, W for images; rank 1/2 for dense layers). Value-semantic.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. Every extent must be > 0.
  explicit Tensor(std::vector<size_t> shape);

  /// Tensor with explicit contents; `data.size()` must equal the shape volume.
  Tensor(std::vector<size_t> shape, std::vector<float> data);

  static Tensor Zeros(std::vector<size_t> shape) { return Tensor(shape); }
  static Tensor Full(std::vector<size_t> shape, float value);

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t dim(size_t i) const {
    DPAUDIT_CHECK_LT(i, shape_.size());
    return shape_[i];
  }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](size_t i) {
    DPAUDIT_CHECK_LT(i, data_.size());
    return data_[i];
  }
  float operator[](size_t i) const {
    DPAUDIT_CHECK_LT(i, data_.size());
    return data_[i];
  }

  /// Indexed access for rank 2/3/4; bounds-checked.
  float& At(size_t i, size_t j);
  float At(size_t i, size_t j) const;
  float& At(size_t i, size_t j, size_t k);
  float At(size_t i, size_t j, size_t k) const;
  float& At(size_t i, size_t j, size_t k, size_t l);
  float At(size_t i, size_t j, size_t k, size_t l) const;

  /// Reinterprets the storage under a new shape with the same volume.
  void Reshape(std::vector<size_t> shape);

  /// Changes the shape, growing or shrinking the storage as needed. Existing
  /// capacity is reused, so repeated ResizeTo calls with stable shapes do not
  /// allocate. Newly exposed elements are unspecified; contents are NOT
  /// cleared (call Fill(0) when zeros are required).
  void ResizeTo(const std::vector<size_t>& shape);
  void ResizeTo(std::initializer_list<size_t> shape);

  void Fill(float value);

  /// this += alpha * other. Shapes must match.
  void Axpy(float alpha, const Tensor& other);

  /// this *= alpha.
  void Scale(float alpha);

  /// Euclidean norm of the flattened contents.
  double L2Norm() const;

  /// Sum of all entries (double accumulation).
  double Sum() const;

  /// "[2, 3, 4]"-style shape string for diagnostics.
  std::string ShapeString() const;

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  size_t Offset2(size_t i, size_t j) const;
  size_t Offset3(size_t i, size_t j, size_t k) const;
  size_t Offset4(size_t i, size_t j, size_t k, size_t l) const;

  std::vector<size_t> shape_;
  std::vector<float> data_;
};

/// Element-wise a + b; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);

/// Element-wise a - b; shapes must match.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Dot product of flattened tensors; sizes must match.
double Dot(const Tensor& a, const Tensor& b);

/// Matrix product of rank-2 tensors: [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Packs `lanes` same-shaped example tensors into one lane-SoA tensor of
/// shape [example shape..., lanes], where element e of lane l lands at
/// data[e * lanes + l]. This is the memory layout the batched-lane layer
/// entry points (Layer::ForwardBatchInto) consume: the lane dimension is
/// innermost, so vectorizing across lanes touches contiguous memory.
void PackLanes(const Tensor* const* examples, size_t lanes, Tensor* packed);

/// Extracts lane `lane` of a lane-SoA tensor produced by PackLanes (or by a
/// batched layer) into `example`, dropping the trailing lane dimension.
void UnpackLane(const Tensor& packed, size_t lane, Tensor* example);

}  // namespace dpaudit

#endif  // DPAUDIT_TENSOR_TENSOR_H_
