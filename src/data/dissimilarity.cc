#include "data/dissimilarity.h"

#include <cmath>

#include "util/logging.h"

namespace dpaudit {

double HammingDistance(const Tensor& a, const Tensor& b) {
  DPAUDIT_CHECK_EQ(a.size(), b.size());
  size_t differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    bool bit_a = a[i] >= 0.5f;
    bool bit_b = b[i] >= 0.5f;
    if (bit_a != bit_b) ++differing;
  }
  return static_cast<double>(differing);
}

double Ssim(const Tensor& a, const Tensor& b) {
  DPAUDIT_CHECK_EQ(a.size(), b.size());
  DPAUDIT_CHECK_GT(a.size(), 1u);
  constexpr double kC1 = 0.01 * 0.01;  // (k1 * L)^2 with L = 1
  constexpr double kC2 = 0.03 * 0.03;  // (k2 * L)^2 with L = 1
  double n = static_cast<double>(a.size());
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double var_a = 0.0;
  double var_b = 0.0;
  double cov = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = a[i] - mean_a;
    double db = b[i] - mean_b;
    var_a += da * da;
    var_b += db * db;
    cov += da * db;
  }
  var_a /= n - 1.0;
  var_b /= n - 1.0;
  cov /= n - 1.0;
  double numerator = (2.0 * mean_a * mean_b + kC1) * (2.0 * cov + kC2);
  double denominator =
      (mean_a * mean_a + mean_b * mean_b + kC1) * (var_a + var_b + kC2);
  return numerator / denominator;
}

double NegativeSsim(const Tensor& a, const Tensor& b) { return -Ssim(a, b); }

double L2Dissimilarity(const Tensor& a, const Tensor& b) {
  DPAUDIT_CHECK_EQ(a.size(), b.size());
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

}  // namespace dpaudit
