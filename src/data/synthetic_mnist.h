// Synthetic stand-in for MNIST (see DESIGN.md, substitutions).
//
// Generates 28x28 grayscale digit images by rendering seven-segment-style
// stroke templates with anti-aliased lines, then applying per-sample affine
// jitter (shift / scale / rotation) and pixel noise. The generator preserves
// the properties the paper's experiments rely on: ten classes, pixels in
// [0, 1], high intra-class structural similarity, and heterogeneous pairwise
// SSIM across records so that dataset sensitivity (Definition 6) has a
// meaningful maximizer and minimizer.

#ifndef DPAUDIT_DATA_SYNTHETIC_MNIST_H_
#define DPAUDIT_DATA_SYNTHETIC_MNIST_H_

#include <cstddef>

#include "data/dataset.h"
#include "util/random.h"

namespace dpaudit {

struct SyntheticMnistConfig {
  size_t image_size = 28;
  double stroke_width = 1.3;   // Gaussian falloff width of strokes, pixels
  double jitter_pixels = 1.5;  // max |translation| per axis
  double jitter_scale = 0.12;  // relative scale perturbation
  double jitter_rotate = 0.15; // max |rotation| in radians
  double pixel_noise = 0.05;   // additive Gaussian pixel noise std
};

/// Renders one digit image with per-sample jitter; digit in [0, 9].
/// Output tensor shape is [1, image_size, image_size], values in [0, 1].
Tensor RenderSyntheticDigit(size_t digit, const SyntheticMnistConfig& config,
                            Rng& rng);

/// Generates `count` labeled digit images with labels cycling round-robin
/// through the classes (balanced) in randomized order.
Dataset GenerateSyntheticMnist(size_t count, const SyntheticMnistConfig& config,
                               Rng& rng);

}  // namespace dpaudit

#endif  // DPAUDIT_DATA_SYNTHETIC_MNIST_H_
