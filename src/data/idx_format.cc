#include "data/idx_format.h"

#include <fstream>

#include "tensor/tensor.h"

namespace dpaudit {
namespace {

constexpr uint8_t kUnsignedByteType = 0x08;

uint32_t ReadBigEndian32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

void AppendBigEndian32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

}  // namespace

StatusOr<IdxData> ParseIdx(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4) {
    return Status::InvalidArgument("IDX stream shorter than its magic");
  }
  if (bytes[0] != 0 || bytes[1] != 0) {
    return Status::InvalidArgument("bad IDX magic (leading bytes non-zero)");
  }
  if (bytes[2] != kUnsignedByteType) {
    return Status::Unimplemented(
        "only unsigned-byte IDX payloads (dtype 0x08) are supported");
  }
  size_t ndim = bytes[3];
  if (ndim == 0 || ndim > 4) {
    return Status::InvalidArgument("IDX rank must be in [1, 4]");
  }
  if (bytes.size() < 4 + 4 * ndim) {
    return Status::InvalidArgument("IDX stream truncated in header");
  }
  IdxData data;
  uint64_t volume = 1;
  for (size_t i = 0; i < ndim; ++i) {
    uint32_t extent = ReadBigEndian32(bytes.data() + 4 + 4 * i);
    if (extent == 0) return Status::InvalidArgument("zero IDX extent");
    data.dims.push_back(extent);
    volume *= extent;
    if (volume > (1ull << 32)) {
      return Status::OutOfRange("IDX volume implausibly large");
    }
  }
  size_t header = 4 + 4 * ndim;
  if (bytes.size() != header + volume) {
    return Status::InvalidArgument(
        "IDX payload size does not match header dims");
  }
  data.values.assign(bytes.begin() + static_cast<long>(header), bytes.end());
  return data;
}

StatusOr<std::vector<uint8_t>> SerializeIdx(const IdxData& data) {
  if (data.dims.empty() || data.dims.size() > 4) {
    return Status::InvalidArgument("IDX rank must be in [1, 4]");
  }
  uint64_t volume = 1;
  for (uint32_t d : data.dims) {
    if (d == 0) return Status::InvalidArgument("zero IDX extent");
    volume *= d;
  }
  if (volume != data.values.size()) {
    return Status::InvalidArgument("values do not fill the declared dims");
  }
  std::vector<uint8_t> out;
  out.reserve(4 + 4 * data.dims.size() + data.values.size());
  out.push_back(0);
  out.push_back(0);
  out.push_back(kUnsignedByteType);
  out.push_back(static_cast<uint8_t>(data.dims.size()));
  for (uint32_t d : data.dims) AppendBigEndian32(out, d);
  out.insert(out.end(), data.values.begin(), data.values.end());
  return out;
}

StatusOr<IdxData> ReadIdxFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return ParseIdx(bytes);
}

Status WriteIdxFile(const std::string& path, const IdxData& data) {
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, SerializeIdx(data));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::Ok();
}

StatusOr<Dataset> IdxToDataset(const IdxData& images, const IdxData& labels,
                               size_t limit) {
  if (images.dims.size() != 3) {
    return Status::InvalidArgument("images IDX must be rank 3");
  }
  if (labels.dims.size() != 1) {
    return Status::InvalidArgument("labels IDX must be rank 1");
  }
  if (images.dims[0] != labels.dims[0]) {
    return Status::InvalidArgument("image and label counts differ");
  }
  size_t count = images.dims[0];
  if (limit > 0) count = std::min(count, limit);
  size_t rows = images.dims[1];
  size_t cols = images.dims[2];
  Dataset data;
  data.inputs.reserve(count);
  data.labels.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Tensor image({1, rows, cols});
    const uint8_t* src = images.values.data() + i * rows * cols;
    for (size_t p = 0; p < rows * cols; ++p) {
      image[p] = static_cast<float>(src[p]) / 255.0f;
    }
    data.Add(std::move(image), labels.values[i]);
  }
  return data;
}

StatusOr<Dataset> LoadIdxDataset(const std::string& images_path,
                                 const std::string& labels_path,
                                 size_t limit) {
  DPAUDIT_ASSIGN_OR_RETURN(IdxData images, ReadIdxFile(images_path));
  DPAUDIT_ASSIGN_OR_RETURN(IdxData labels, ReadIdxFile(labels_path));
  return IdxToDataset(images, labels, limit);
}

}  // namespace dpaudit
