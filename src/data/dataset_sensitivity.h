// Dataset sensitivity (Definition 6): choosing the neighboring dataset D'
// whose differing record is maximally dissimilar to D in data space, as a
// proxy for the gradient-space local sensitivity LS_g (Section 5.1).

#ifndef DPAUDIT_DATA_DATASET_SENSITIVITY_H_
#define DPAUDIT_DATA_DATASET_SENSITIVITY_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "data/dissimilarity.h"
#include "util/status.h"

namespace dpaudit {

/// A candidate bounded-DP substitution: replace D[index_in_d] with
/// pool[index_in_pool]; `dissimilarity` is d(x1, x2).
struct BoundedCandidate {
  size_t index_in_d;
  size_t index_in_pool;
  double dissimilarity;
};

/// A candidate unbounded-DP removal: remove D[index_in_d];
/// `dissimilarity` is sum_{x2 in D \ x1} d(x1, x2) (paper Eq. 16).
struct UnboundedCandidate {
  size_t index_in_d;
  double dissimilarity;
};

/// All |D| x |pool| substitution candidates sorted by descending
/// dissimilarity. The first entry realizes DS(D) (Definition 6); taking the
/// first / last few gives the max/min choices of D' used in Figure 4.
/// Requires non-empty D and pool.
StatusOr<std::vector<BoundedCandidate>> RankBoundedCandidates(
    const Dataset& d, const Dataset& pool, const DissimilarityFn& dissim);

/// All |D| removal candidates sorted by descending aggregate dissimilarity
/// (the unbounded extension of Definition 6). Requires |D| >= 2.
StatusOr<std::vector<UnboundedCandidate>> RankUnboundedCandidates(
    const Dataset& d, const DissimilarityFn& dissim);

/// Builds the bounded neighbor D-hat' for a candidate: D with the record
/// replaced by the pool record.
Dataset MakeBoundedNeighbor(const Dataset& d, const Dataset& pool,
                            const BoundedCandidate& candidate);

/// Builds the unbounded neighbor: D with the record removed.
Dataset MakeUnboundedNeighbor(const Dataset& d,
                              const UnboundedCandidate& candidate);

/// DS(D) under bounded DP: the maximal pairwise dissimilarity (Definition 6).
StatusOr<double> DatasetSensitivity(const Dataset& d, const Dataset& pool,
                                    const DissimilarityFn& dissim);

}  // namespace dpaudit

#endif  // DPAUDIT_DATA_DATASET_SENSITIVITY_H_
