#include "data/dataset.h"

#include <algorithm>

#include "util/logging.h"

namespace dpaudit {

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out;
  out.inputs.reserve(indices.size());
  out.labels.reserve(indices.size());
  for (size_t idx : indices) {
    DPAUDIT_CHECK_LT(idx, size());
    out.inputs.push_back(inputs[idx]);
    out.labels.push_back(labels[idx]);
  }
  return out;
}

Dataset Dataset::WithRecordRemoved(size_t index) const {
  DPAUDIT_CHECK_LT(index, size());
  Dataset out;
  out.inputs.reserve(size() - 1);
  out.labels.reserve(size() - 1);
  for (size_t i = 0; i < size(); ++i) {
    if (i == index) continue;
    out.inputs.push_back(inputs[i]);
    out.labels.push_back(labels[i]);
  }
  return out;
}

Dataset Dataset::WithRecordReplaced(size_t index, Tensor input,
                                    size_t label) const {
  DPAUDIT_CHECK_LT(index, size());
  Dataset out = *this;
  out.inputs[index] = std::move(input);
  out.labels[index] = label;
  return out;
}

Dataset Dataset::SampleSplit(size_t count, Rng& rng,
                             Dataset* remainder) const {
  DPAUDIT_CHECK_LE(count, size());
  std::vector<size_t> perm = rng.Permutation(size());
  std::vector<size_t> taken(perm.begin(), perm.begin() + count);
  if (remainder != nullptr) {
    std::vector<size_t> rest(perm.begin() + count, perm.end());
    std::sort(rest.begin(), rest.end());
    *remainder = Subset(rest);
  }
  std::sort(taken.begin(), taken.end());
  return Subset(taken);
}

}  // namespace dpaudit
