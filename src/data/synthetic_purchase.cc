#include "data/synthetic_purchase.h"

#include "tensor/tensor.h"
#include "util/logging.h"

namespace dpaudit {

SyntheticPurchaseGenerator::SyntheticPurchaseGenerator(
    const SyntheticPurchaseConfig& config, uint64_t prototype_seed)
    : config_(config) {
  DPAUDIT_CHECK_GT(config_.num_features, 0u);
  DPAUDIT_CHECK_GT(config_.num_classes, 0u);
  Rng rng(prototype_seed);
  prototypes_.resize(config_.num_classes);
  for (auto& prototype : prototypes_) {
    prototype.resize(config_.num_features);
    for (size_t f = 0; f < config_.num_features; ++f) {
      prototype[f] = rng.Bernoulli(config_.prototype_density);
    }
  }
}

Tensor SyntheticPurchaseGenerator::Sample(size_t label, Rng& rng) const {
  DPAUDIT_CHECK_LT(label, config_.num_classes);
  Tensor record({config_.num_features});
  const std::vector<bool>& prototype = prototypes_[label];
  for (size_t f = 0; f < config_.num_features; ++f) {
    bool bit = prototype[f];
    if (rng.Bernoulli(config_.flip_probability)) bit = !bit;
    record[f] = bit ? 1.0f : 0.0f;
  }
  return record;
}

Dataset SyntheticPurchaseGenerator::Generate(size_t count, Rng& rng) const {
  Dataset data;
  data.inputs.reserve(count);
  data.labels.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t label = i % config_.num_classes;
    data.Add(Sample(label, rng), label);
  }
  std::vector<size_t> perm = rng.Permutation(count);
  return data.Subset(perm);
}

}  // namespace dpaudit
