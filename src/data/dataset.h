// Dataset container and neighboring-dataset constructors.

#ifndef DPAUDIT_DATA_DATASET_H_
#define DPAUDIT_DATA_DATASET_H_

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"

namespace dpaudit {

/// A labeled dataset. Inputs and labels are parallel vectors.
struct Dataset {
  std::vector<Tensor> inputs;
  std::vector<size_t> labels;

  size_t size() const { return inputs.size(); }
  bool empty() const { return inputs.empty(); }

  void Add(Tensor input, size_t label) {
    inputs.push_back(std::move(input));
    labels.push_back(label);
  }

  /// The records at the given indices, in order.
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Unbounded-DP neighbor: this dataset with record `index` removed.
  Dataset WithRecordRemoved(size_t index) const;

  /// Bounded-DP neighbor: this dataset with record `index` replaced by
  /// (input, label).
  Dataset WithRecordReplaced(size_t index, Tensor input, size_t label) const;

  /// Splits off `count` records chosen uniformly at random (without
  /// replacement) into the returned dataset; the rest stay behind in
  /// `remainder` if non-null.
  Dataset SampleSplit(size_t count, Rng& rng, Dataset* remainder) const;
};

}  // namespace dpaudit

#endif  // DPAUDIT_DATA_DATASET_H_
