// Reader/writer for the IDX file format used by the original MNIST
// distribution (http://yann.lecun.com/exdb/mnist/).
//
// The paper evaluates on real MNIST; this environment has no network access,
// so the experiments run on the synthetic generator (DESIGN.md §2). This
// module closes the gap for downstream users: drop the four unzipped MNIST
// files next to a binary and LoadIdxDataset() yields a Dataset byte-for-byte
// compatible with the rest of the library. The writer exists so tests can
// round-trip the format without real files.
//
// Format: big-endian magic [0x00 0x00 <dtype> <ndim>], then ndim uint32
// extents, then row-major payload. Only dtype 0x08 (unsigned byte) is
// supported — that is what MNIST uses.

#ifndef DPAUDIT_DATA_IDX_FORMAT_H_
#define DPAUDIT_DATA_IDX_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace dpaudit {

/// An IDX tensor of unsigned bytes.
struct IdxData {
  std::vector<uint32_t> dims;
  std::vector<uint8_t> values;  // row-major, product(dims) entries
};

/// Parses an IDX byte stream.
StatusOr<IdxData> ParseIdx(const std::vector<uint8_t>& bytes);

/// Serializes to the IDX byte format.
StatusOr<std::vector<uint8_t>> SerializeIdx(const IdxData& data);

/// Reads an IDX file from disk.
StatusOr<IdxData> ReadIdxFile(const std::string& path);

/// Writes an IDX file to disk.
Status WriteIdxFile(const std::string& path, const IdxData& data);

/// Combines an images file (ndim = 3: [count, rows, cols]) and a labels file
/// (ndim = 1: [count]) into a Dataset with [1, rows, cols] float inputs
/// scaled to [0, 1]. Counts must agree; `limit` (0 = all) truncates.
StatusOr<Dataset> IdxToDataset(const IdxData& images, const IdxData& labels,
                               size_t limit = 0);

/// Convenience: load e.g. ("train-images-idx3-ubyte", "train-labels-idx1-
/// ubyte") from disk into a Dataset.
StatusOr<Dataset> LoadIdxDataset(const std::string& images_path,
                                 const std::string& labels_path,
                                 size_t limit = 0);

}  // namespace dpaudit

#endif  // DPAUDIT_DATA_IDX_FORMAT_H_
