#include "data/synthetic_mnist.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace dpaudit {
namespace {

struct Stroke {
  double x0, y0, x1, y1;  // unit coordinates, origin top-left
};

// Seven-segment layout in unit coordinates, with two vertical segments per
// side split at mid-height:
//   A: top bar        G: middle bar      D: bottom bar
//   F: top-left       B: top-right
//   E: bottom-left    C: bottom-right
constexpr Stroke kA{0.25, 0.15, 0.75, 0.15};
constexpr Stroke kB{0.75, 0.15, 0.75, 0.50};
constexpr Stroke kC{0.75, 0.50, 0.75, 0.85};
constexpr Stroke kD{0.25, 0.85, 0.75, 0.85};
constexpr Stroke kE{0.25, 0.50, 0.25, 0.85};
constexpr Stroke kF{0.25, 0.15, 0.25, 0.50};
constexpr Stroke kG{0.25, 0.50, 0.75, 0.50};

// Per-digit segment sets.
const std::vector<Stroke>& DigitStrokes(size_t digit) {
  static const std::vector<Stroke> kDigits[10] = {
      /*0*/ {kA, kB, kC, kD, kE, kF},
      /*1*/ {kB, kC},
      /*2*/ {kA, kB, kG, kE, kD},
      /*3*/ {kA, kB, kG, kC, kD},
      /*4*/ {kF, kG, kB, kC},
      /*5*/ {kA, kF, kG, kC, kD},
      /*6*/ {kA, kF, kG, kE, kC, kD},
      /*7*/ {kA, kB, kC},
      /*8*/ {kA, kB, kC, kD, kE, kF, kG},
      /*9*/ {kA, kB, kC, kD, kF, kG},
  };
  DPAUDIT_CHECK_LT(digit, 10u);
  return kDigits[digit];
}

// Squared distance from point p to segment (a, b).
double PointSegmentDistSq(double px, double py, double ax, double ay,
                          double bx, double by) {
  double vx = bx - ax;
  double vy = by - ay;
  double wx = px - ax;
  double wy = py - ay;
  double len_sq = vx * vx + vy * vy;
  double t = len_sq > 0.0 ? Clamp((wx * vx + wy * vy) / len_sq, 0.0, 1.0)
                          : 0.0;
  double dx = px - (ax + t * vx);
  double dy = py - (ay + t * vy);
  return dx * dx + dy * dy;
}

}  // namespace

Tensor RenderSyntheticDigit(size_t digit, const SyntheticMnistConfig& config,
                            Rng& rng) {
  DPAUDIT_CHECK_LT(digit, 10u);
  size_t s = config.image_size;
  DPAUDIT_CHECK_GE(s, 8u);
  // Per-sample affine jitter.
  double shift_x = rng.Uniform(-config.jitter_pixels, config.jitter_pixels);
  double shift_y = rng.Uniform(-config.jitter_pixels, config.jitter_pixels);
  double scale = 1.0 + rng.Uniform(-config.jitter_scale, config.jitter_scale);
  double angle = rng.Uniform(-config.jitter_rotate, config.jitter_rotate);
  double cos_a = std::cos(angle);
  double sin_a = std::sin(angle);
  double center = static_cast<double>(s) / 2.0;

  // Transform strokes from unit coordinates into jittered pixel coordinates.
  std::vector<Stroke> strokes;
  for (const Stroke& base : DigitStrokes(digit)) {
    auto map = [&](double ux, double uy, double& px, double& py) {
      // Center at origin, scale to pixels, rotate, then translate.
      double cx = (ux - 0.5) * static_cast<double>(s) * scale;
      double cy = (uy - 0.5) * static_cast<double>(s) * scale;
      px = center + cos_a * cx - sin_a * cy + shift_x;
      py = center + sin_a * cx + cos_a * cy + shift_y;
    };
    Stroke t{};
    map(base.x0, base.y0, t.x0, t.y0);
    map(base.x1, base.y1, t.x1, t.y1);
    strokes.push_back(t);
  }

  Tensor image({1, s, s});
  double two_w_sq = 2.0 * config.stroke_width * config.stroke_width;
  for (size_t y = 0; y < s; ++y) {
    for (size_t x = 0; x < s; ++x) {
      double px = static_cast<double>(x) + 0.5;
      double py = static_cast<double>(y) + 0.5;
      double intensity = 0.0;
      for (const Stroke& st : strokes) {
        double d_sq = PointSegmentDistSq(px, py, st.x0, st.y0, st.x1, st.y1);
        intensity = std::max(intensity, std::exp(-d_sq / two_w_sq));
      }
      if (config.pixel_noise > 0.0) {
        intensity += rng.Gaussian(0.0, config.pixel_noise);
      }
      image.At(0, y, x) = static_cast<float>(Clamp(intensity, 0.0, 1.0));
    }
  }
  return image;
}

Dataset GenerateSyntheticMnist(size_t count,
                               const SyntheticMnistConfig& config, Rng& rng) {
  Dataset data;
  data.inputs.reserve(count);
  data.labels.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t digit = i % 10;
    data.Add(RenderSyntheticDigit(digit, config, rng), digit);
  }
  // Shuffle so class order carries no information.
  std::vector<size_t> perm = rng.Permutation(count);
  return data.Subset(perm);
}

}  // namespace dpaudit
