#include "data/dataset_sensitivity.h"

#include <algorithm>

#include "util/logging.h"

namespace dpaudit {

StatusOr<std::vector<BoundedCandidate>> RankBoundedCandidates(
    const Dataset& d, const Dataset& pool, const DissimilarityFn& dissim) {
  if (d.empty()) return Status::InvalidArgument("D must be non-empty");
  if (pool.empty()) {
    return Status::InvalidArgument("candidate pool must be non-empty");
  }
  std::vector<BoundedCandidate> candidates;
  candidates.reserve(d.size() * pool.size());
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < pool.size(); ++j) {
      candidates.push_back({i, j, dissim(d.inputs[i], pool.inputs[j])});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const BoundedCandidate& a, const BoundedCandidate& b) {
                     return a.dissimilarity > b.dissimilarity;
                   });
  return candidates;
}

StatusOr<std::vector<UnboundedCandidate>> RankUnboundedCandidates(
    const Dataset& d, const DissimilarityFn& dissim) {
  if (d.size() < 2) {
    return Status::InvalidArgument("D must have at least two records");
  }
  // Aggregate dissimilarity of each record against the rest (Eq. 16).
  std::vector<UnboundedCandidate> candidates(d.size());
  for (size_t i = 0; i < d.size(); ++i) candidates[i] = {i, 0.0};
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = i + 1; j < d.size(); ++j) {
      double dis = dissim(d.inputs[i], d.inputs[j]);
      candidates[i].dissimilarity += dis;
      candidates[j].dissimilarity += dis;
    }
  }
  std::stable_sort(
      candidates.begin(), candidates.end(),
      [](const UnboundedCandidate& a, const UnboundedCandidate& b) {
        return a.dissimilarity > b.dissimilarity;
      });
  return candidates;
}

Dataset MakeBoundedNeighbor(const Dataset& d, const Dataset& pool,
                            const BoundedCandidate& candidate) {
  DPAUDIT_CHECK_LT(candidate.index_in_d, d.size());
  DPAUDIT_CHECK_LT(candidate.index_in_pool, pool.size());
  return d.WithRecordReplaced(candidate.index_in_d,
                              pool.inputs[candidate.index_in_pool],
                              pool.labels[candidate.index_in_pool]);
}

Dataset MakeUnboundedNeighbor(const Dataset& d,
                              const UnboundedCandidate& candidate) {
  return d.WithRecordRemoved(candidate.index_in_d);
}

StatusOr<double> DatasetSensitivity(const Dataset& d, const Dataset& pool,
                                    const DissimilarityFn& dissim) {
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<BoundedCandidate> ranked,
                           RankBoundedCandidates(d, pool, dissim));
  return ranked.front().dissimilarity;
}

}  // namespace dpaudit
