// Synthetic stand-in for the Purchase-100 dataset (see DESIGN.md).
//
// Shokri et al.'s Purchase-100 consists of 600 binary purchase-history
// features clustered into 100 shopper styles that serve as class labels. We
// generate the same structure directly: 100 latent Bernoulli prototypes over
// 600 items, with per-record bit flips, which preserves the binary feature
// space and Hamming-dissimilarity structure the paper's dataset-sensitivity
// heuristic exploits.

#ifndef DPAUDIT_DATA_SYNTHETIC_PURCHASE_H_
#define DPAUDIT_DATA_SYNTHETIC_PURCHASE_H_

#include <cstddef>

#include "data/dataset.h"
#include "util/random.h"

namespace dpaudit {

struct SyntheticPurchaseConfig {
  size_t num_features = 600;
  size_t num_classes = 100;
  double prototype_density = 0.2;  // P(prototype bit = 1)
  double flip_probability = 0.05;  // per-bit noise around the prototype
};

/// Generator holding the latent class prototypes, so that repeated draws come
/// from a fixed "distribution" (the Dist of Experiments 1 and 2).
class SyntheticPurchaseGenerator {
 public:
  SyntheticPurchaseGenerator(const SyntheticPurchaseConfig& config,
                             uint64_t prototype_seed);

  /// Draws one record of class `label`; shape [num_features], values 0/1.
  Tensor Sample(size_t label, Rng& rng) const;

  /// Draws `count` records with balanced classes in randomized order.
  Dataset Generate(size_t count, Rng& rng) const;

  const SyntheticPurchaseConfig& config() const { return config_; }

 private:
  SyntheticPurchaseConfig config_;
  std::vector<std::vector<bool>> prototypes_;  // [class][feature]
};

}  // namespace dpaudit

#endif  // DPAUDIT_DATA_SYNTHETIC_PURCHASE_H_
