// Dissimilarity measures for the dataset-sensitivity heuristic (Section 6.2):
// Hamming distance for binary records (Purchase-100) and negative SSIM for
// images (MNIST), plus L2 as a generic fallback.

#ifndef DPAUDIT_DATA_DISSIMILARITY_H_
#define DPAUDIT_DATA_DISSIMILARITY_H_

#include <functional>

#include "tensor/tensor.h"

namespace dpaudit {

/// A symmetric record-level dissimilarity; larger means more different.
using DissimilarityFn = std::function<double(const Tensor&, const Tensor&)>;

/// Number of positions where the binarized (>= 0.5) values differ.
/// Sizes must match.
double HammingDistance(const Tensor& a, const Tensor& b);

/// Structural similarity index over the whole image (global statistics
/// variant with the standard constants C1 = (0.01 L)^2, C2 = (0.03 L)^2,
/// L = 1 for [0,1] images). Returns a value in [-1, 1]; 1 means identical
/// structure. Sizes must match.
double Ssim(const Tensor& a, const Tensor& b);

/// The paper's image dissimilarity: -SSIM (most dissimilar pair maximizes
/// this).
double NegativeSsim(const Tensor& a, const Tensor& b);

/// Euclidean distance between flattened records.
double L2Dissimilarity(const Tensor& a, const Tensor& b);

}  // namespace dpaudit

#endif  // DPAUDIT_DATA_DISSIMILARITY_H_
