// Deterministic fault injection for crash-safety and retry testing.
//
// The sweep scheduler's failure-isolation and checkpoint/resume machinery
// (core/sweep_scheduler.h, core/sweep_journal.h) needs reproducible
// failures: a trial that throws on its first k attempts, a journal write
// that fails, a SIGKILL-style process abort between two appends. This module
// turns a compact spec string into those events, deterministically — the
// same spec against the same run injects the same faults, so chaos tests
// byte-diff their output against fault-free runs.
//
// Spec grammar (clauses separated by ';', all counters process-wide):
//
//   trial=<cell>:<rep>:<n>     fail the first n attempts of trial (cell,
//                              rep); `*` wildcards cell and/or rep, so
//                              trial=*:*:1 fails every trial's first attempt
//   journal-write=<n>          the n-th journal append (1-based) fails with
//                              an injected IO error
//   abort-after-append=<n>     _Exit(137) immediately after the n-th
//                              successful journal append — a SIGKILL-style
//                              crash point: no atexit, no flush, no ledger
//
// The plan comes from the DPAUDIT_FAULT_INJECT environment variable (or the
// --fault-inject flag via core/runtime_options, which pushes it down with
// SetFaultSpec). With no spec installed every probe is one relaxed atomic
// load.

#ifndef DPAUDIT_UTIL_FAULT_INJECTION_H_
#define DPAUDIT_UTIL_FAULT_INJECTION_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace dpaudit {
namespace fault {

/// Parses `spec` and installs it as the process-wide plan (replacing any
/// previous plan and resetting every counter). An empty spec uninstalls.
/// Invalid clauses return InvalidArgument naming the clause; the previous
/// plan stays installed.
Status SetFaultSpec(const std::string& spec);

/// Parse-only check, for option validation.
Status ValidateFaultSpec(const std::string& spec);

/// True when a plan is installed (directly or lazily from the
/// DPAUDIT_FAULT_INJECT environment variable on first probe).
bool FaultInjectionEnabled();

/// Should this attempt of trial (cell, rep) fail? Counts attempts per
/// (cell, rep) internally; thread-safe.
bool FailTrialAttempt(size_t cell, size_t rep);

/// Should this journal append fail? Counts appends internally.
bool FailJournalWrite();

/// Crash point: _Exit(137) when the configured number of successful journal
/// appends has been reached. Call after each append.
void MaybeAbortAfterJournalAppend();

/// Test hook: uninstalls the plan and resets all counters. The next probe
/// re-latches from DPAUDIT_FAULT_INJECT, so tests unset it first.
void ClearFaultSpecForTest();

}  // namespace fault
}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_FAULT_INJECTION_H_
