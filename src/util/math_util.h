// Scalar numeric helpers shared across the library.

#ifndef DPAUDIT_UTIL_MATH_UTIL_H_
#define DPAUDIT_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <vector>

namespace dpaudit {

inline constexpr double kPi = 3.14159265358979323846;

/// log(exp(a) + exp(b)) without overflow.
inline double LogAddExp(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  double hi = std::max(a, b);
  double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

/// log(sum_i exp(x_i)) without overflow. Returns -inf for an empty input.
double LogSumExp(const std::vector<double>& xs);

/// Logistic sigmoid 1 / (1 + e^{-x}), stable for large |x|.
inline double Sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

/// Inverse of Sigmoid: ln(p / (1 - p)). Requires p in (0, 1).
inline double Logit(double p) { return std::log(p) - std::log1p(-p); }

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

/// True if |a - b| <= atol + rtol * max(|a|, |b|).
inline bool AlmostEqual(double a, double b, double rtol = 1e-9,
                        double atol = 1e-12) {
  return std::fabs(a - b) <=
         atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

/// Sum with Kahan compensation; deterministic and accurate for long series.
double KahanSum(const std::vector<double>& xs);

/// Euclidean norm of a vector. The float overloads accumulate in double with
/// a single left-to-right chain, so every caller (sequential or parallel)
/// produces bit-identical norms for the same data.
double L2Norm(const std::vector<float>& v);
double L2Norm(const std::vector<double>& v);
double L2Norm(const float* v, size_t n);

/// The DPSGD clip factor min(1, C / ||g||) applied to a per-example gradient
/// with pre-clip norm `norm` (Abadi et al.). Shared by every clipping path so
/// the scale arithmetic is identical everywhere.
inline double ClipScale(double norm, double clip_norm) {
  return norm > clip_norm ? clip_norm / norm : 1.0;
}

/// sum[i] += float(scale * g[i]) for i in [0, n) — the clipped-gradient
/// accumulation step of DPSGD, kept in one place so the sequential reference,
/// the parallel engine, and the neighbor-sharing path round identically.
void AccumulateScaled(float* sum, const float* g, size_t n, double scale);

/// Euclidean distance ||a - b||; requires equal sizes.
double L2Distance(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_MATH_UTIL_H_
