// Environment-variable overrides for experiment binaries.
//
// Every bench default is chosen for a fast run; the paper-scale settings are
// reachable through DPAUDIT_REPS, DPAUDIT_TRIALS, DPAUDIT_SEED, etc.

#ifndef DPAUDIT_UTIL_ENV_H_
#define DPAUDIT_UTIL_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace dpaudit {

/// Reads an integer environment variable, falling back to `fallback` when the
/// variable is unset or unparsable.
inline int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

/// Reads a string environment variable with a fallback (used for paths such
/// as DPAUDIT_TRACE_CACHE).
inline std::string EnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::string(raw);
}

/// Reads a double environment variable with a fallback.
inline double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_ENV_H_
