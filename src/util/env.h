// Environment-variable overrides for experiment binaries.
//
// Every bench default is chosen for a fast run; the paper-scale settings are
// reachable through DPAUDIT_REPS, DPAUDIT_TRIALS, DPAUDIT_SEED, etc.

#ifndef DPAUDIT_UTIL_ENV_H_
#define DPAUDIT_UTIL_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace dpaudit {

/// Reads an integer environment variable, falling back to `fallback` when the
/// variable is unset or unparsable.
inline int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

/// Default and maximum lane counts for the gradient engine's batched path
/// (nn/gradient_engine.h). Defined here, next to the env parsing, so obs/
/// can label build_info with the effective lane width without depending on
/// nn/. 8 lanes = one AVX2 float vector; the cap bounds the fixed-size
/// per-lane accumulator arrays in the layer kernels.
inline constexpr size_t kDefaultBatchLanes = 8;
inline constexpr size_t kMaxBatchLanes = 32;

/// DPAUDIT_BATCH_LANES: how many examples the gradient engine packs into one
/// forward/backward pass (0 = legacy one-example-at-a-time path). Results
/// are bit-identical for any value; this only trades memory for throughput.
/// Clamped to [0, kMaxBatchLanes].
inline size_t BatchLanesFromEnv() {
  int64_t lanes = EnvInt64("DPAUDIT_BATCH_LANES",
                           static_cast<int64_t>(kDefaultBatchLanes));
  if (lanes < 0) lanes = 0;
  if (lanes > static_cast<int64_t>(kMaxBatchLanes)) {
    lanes = static_cast<int64_t>(kMaxBatchLanes);
  }
  return static_cast<size_t>(lanes);
}

/// Reads a string environment variable with a fallback (used for paths such
/// as DPAUDIT_TRACE_CACHE).
inline std::string EnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::string(raw);
}

/// Reads a double environment variable with a fallback.
inline double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_ENV_H_
