// Environment-variable overrides for experiment binaries.
//
// Every bench default is chosen for a fast run; the paper-scale settings are
// reachable through DPAUDIT_REPS, DPAUDIT_TRIALS, DPAUDIT_SEED, etc.

#ifndef DPAUDIT_UTIL_ENV_H_
#define DPAUDIT_UTIL_ENV_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace dpaudit {

/// Reads an integer environment variable, falling back to `fallback` when the
/// variable is unset or unparsable.
inline int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);  // NOLINT(dpaudit-raw-getenv)
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

/// Default and maximum lane counts for the gradient engine's batched path
/// (nn/gradient_engine.h). Defined here, next to the env parsing, so obs/
/// can label build_info with the effective lane width without depending on
/// nn/. 8 lanes = one AVX2 float vector; the cap bounds the fixed-size
/// per-lane accumulator arrays in the layer kernels.
inline constexpr size_t kDefaultBatchLanes = 8;
inline constexpr size_t kMaxBatchLanes = 32;

/// Process-wide lane override installed by core/runtime_options when the
/// --lanes flag (or an explicit RuntimeOptions) is applied; -1 means unset
/// and BatchLanesFromEnv falls through to the environment. Lives here —
/// not in nn/ — because obs/telemetry labels build_info with the effective
/// lane width and may not depend on nn/.
inline std::atomic<int64_t>& BatchLanesOverrideStorage() {
  static std::atomic<int64_t> lanes{-1};
  return lanes;
}

/// Installs (value >= 0) or clears (value < 0) the lane override. Takes
/// precedence over DPAUDIT_BATCH_LANES in BatchLanesFromEnv.
inline void SetBatchLanesOverride(int64_t value) {
  BatchLanesOverrideStorage().store(value < 0 ? -1 : value,
                                    std::memory_order_relaxed);
}

/// DPAUDIT_BATCH_LANES: how many examples the gradient engine packs into one
/// forward/backward pass (0 = legacy one-example-at-a-time path). Results
/// are bit-identical for any value; this only trades memory for throughput.
/// Clamped to [0, kMaxBatchLanes]. A SetBatchLanesOverride value (the
/// --lanes flag) takes precedence over the environment.
inline size_t BatchLanesFromEnv() {
  int64_t lanes =
      BatchLanesOverrideStorage().load(std::memory_order_relaxed);
  if (lanes < 0) {
    lanes = EnvInt64("DPAUDIT_BATCH_LANES",
                     static_cast<int64_t>(kDefaultBatchLanes));
  }
  if (lanes < 0) lanes = 0;
  if (lanes > static_cast<int64_t>(kMaxBatchLanes)) {
    lanes = static_cast<int64_t>(kMaxBatchLanes);
  }
  return static_cast<size_t>(lanes);
}

/// Reads a string environment variable with a fallback (used for paths such
/// as DPAUDIT_TRACE_CACHE).
inline std::string EnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);  // NOLINT(dpaudit-raw-getenv)
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::string(raw);
}

/// Reads a double environment variable with a fallback.
inline double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);  // NOLINT(dpaudit-raw-getenv)
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_ENV_H_
