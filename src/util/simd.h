// Runtime SIMD dispatch support for the x86-64 kernels.
//
// DPAUDIT_X86_DISPATCH is defined when the compiler can build AVX2 code paths
// behind __attribute__((target("avx2"))) regardless of the baseline -march.
// Callers check HasAvx2() at runtime so the default build stays portable.

#ifndef DPAUDIT_UTIL_SIMD_H_
#define DPAUDIT_UTIL_SIMD_H_

// Forces a shared kernel body into its target("avx2") wrapper so the
// compiler constant-propagates the wrapper's literal lane count and
// auto-vectorizes the lane loops. The batched-lane kernels in nn/ are
// written once as always-inline bodies with a runtime `lanes` parameter and
// instantiated twice: a portable call and an AVX2 call with lanes pinned
// to the vector width.
#if defined(__GNUC__)
#define DPAUDIT_LANE_INLINE inline __attribute__((always_inline))
#else
#define DPAUDIT_LANE_INLINE inline
#endif

#if defined(__x86_64__) && defined(__GNUC__)
#define DPAUDIT_X86_DISPATCH 1
#include <immintrin.h>

namespace dpaudit {

inline bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

}  // namespace dpaudit

#endif  // __x86_64__ && __GNUC__

#endif  // DPAUDIT_UTIL_SIMD_H_
