#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "util/env.h"
#include "util/logging.h"

namespace dpaudit {
namespace {

std::atomic<const ThreadPoolTelemetryHooks*> g_pool_hooks{nullptr};

uint64_t PoolNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void SetThreadPoolTelemetryHooks(const ThreadPoolTelemetryHooks* hooks) {
  g_pool_hooks.store(hooks, std::memory_order_release);
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  DPAUDIT_CHECK(fn != nullptr);
  Task task;
  task.fn = std::move(fn);
  task.hooks = g_pool_hooks.load(std::memory_order_acquire);
  if (task.hooks != nullptr) {
    task.context = task.hooks->capture_context();
    task.enqueue_ns = PoolNowNs();
  }
  const ThreadPoolTelemetryHooks* hooks = task.hooks;
  size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    DPAUDIT_CHECK(!shutting_down_) << "Schedule() after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
    depth = queue_.size();
  }
  work_available_.notify_one();
  if (hooks != nullptr && hooks->record_queue_depth != nullptr) {
    hooks->record_queue_depth(depth);
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (task.hooks != nullptr) {
      const uint64_t start_ns = PoolNowNs();
      const void* previous = task.hooks->enter_context(task.context);
      task.fn();
      task.hooks->exit_context(previous);
      const uint64_t end_ns = PoolNowNs();
      task.hooks->record_task_ns(start_ns - task.enqueue_ns,
                                 end_ns - start_ns);
    } else {
      task.fn();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

// Shared state of one ParallelFor region. Held by shared_ptr: a runner task
// that wakes after the region completed (every chunk already claimed) only
// touches the atomic cursor and returns, so the caller may leave the region
// while late runners still hold a reference.
struct ParallelForState {
  std::function<void(size_t)> fn;
  size_t n = 0;
  size_t grain = 1;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done;
  size_t completed = 0;  // guarded by mu
};

// Self-scheduling loop: claim `grain` consecutive indices from the shared
// cursor, run them, repeat until the range is exhausted. Both the pool
// runners and the calling thread execute this, so the region always makes
// progress even when every pool worker is busy elsewhere (nested regions).
void DrainParallelFor(const std::shared_ptr<ParallelForState>& state) {
  for (;;) {
    const size_t begin =
        state->next.fetch_add(state->grain, std::memory_order_relaxed);
    if (begin >= state->n) return;
    const size_t end = std::min(state->n, begin + state->grain);
    for (size_t i = begin; i < end; ++i) state->fn(i);
    std::lock_guard<std::mutex> lock(state->mu);
    state->completed += end - begin;
    if (state->completed == state->n) state->done.notify_all();
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t n, size_t num_threads,
                             const std::function<void(size_t)>& fn) {
  ParallelForChunked(n, num_threads, /*grain=*/0, fn);
}

void ThreadPool::ParallelForChunked(size_t n, size_t num_threads, size_t grain,
                                    const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = SharedThreadPool();
  auto state = std::make_shared<ParallelForState>();
  state->fn = fn;
  state->n = n;
  const size_t width = std::min(num_threads, n);
  // Auto grain: ~4 chunks per participant balances cursor traffic against
  // tail imbalance for cheap bodies; callers with heavyweight bodies pass 1.
  state->grain = grain > 0 ? grain : std::max<size_t>(1, n / (4 * width));
  // The caller drains chunks too, so schedule one runner fewer than the
  // width; extra runners beyond the pool size would only queue up behind
  // each other.
  const size_t runners = std::min(width - 1, pool.num_threads());
  for (size_t r = 0; r < runners; ++r) {
    pool.Schedule([state] { DrainParallelFor(state); });
  }
  DrainParallelFor(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->completed == state->n; });
}

ThreadPool& SharedThreadPool() {
  // Meyers singleton: constructed at first parallel region, joined at static
  // destruction (a leaked pool would trip LeakSanitizer and leave detached
  // threads racing static teardown under TSan).
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

namespace {

std::atomic<size_t>& ThreadCountOverrideStorage() {
  static std::atomic<size_t> value{0};
  return value;
}

}  // namespace

void SetDefaultThreadCountOverride(size_t value) {
  ThreadCountOverrideStorage().store(value, std::memory_order_relaxed);
}

size_t DefaultThreadCount() {
  // Precedence: explicit override (the --threads flag, pushed down by
  // core/runtime_options) > DPAUDIT_THREADS > hardware-derived default. The
  // env read stays per-call so tests can setenv/unsetenv between regions;
  // CI forces >1 on single-core runners so sanitizer jobs exercise real
  // concurrency, and operators pin it down on shared machines.
  const size_t override_value =
      ThreadCountOverrideStorage().load(std::memory_order_relaxed);
  if (override_value > 0) return std::min<size_t>(256, override_value);
  const int64_t forced = EnvInt64("DPAUDIT_THREADS", 0);
  if (forced > 0) {
    return std::min<size_t>(256, static_cast<size_t>(forced));
  }
  unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) hc = 4;
  return std::min<size_t>(16, std::max<size_t>(1, hc));
}

size_t NestedThreadBudget(size_t total_threads, size_t outer_tasks) {
  if (outer_tasks == 0) return std::max<size_t>(1, total_threads);
  return std::max<size_t>(1, total_threads / outer_tasks);
}

}  // namespace dpaudit
