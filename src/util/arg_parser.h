// Minimal command-line flag parser for the tools/ binaries.
//
// Accepts "--key value" and "--key=value"; everything before the first
// "--flag" is a positional argument (e.g. a subcommand). Typed getters
// return Status on parse failure, and unconsumed flags can be rejected so
// typos surface instead of being ignored.

#ifndef DPAUDIT_UTIL_ARG_PARSER_H_
#define DPAUDIT_UTIL_ARG_PARSER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace dpaudit {

class ArgParser {
 public:
  /// Parses argv; returns InvalidArgument for malformed input such as a
  /// flag without a value or a repeated flag.
  static StatusOr<ArgParser> Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const;

  /// Typed getters; the flag is marked consumed on success.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  StatusOr<double> GetDouble(const std::string& key, double fallback) const;
  StatusOr<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  StatusOr<bool> GetBool(const std::string& key, bool fallback) const;

  /// Non-OK if any parsed flag was never consumed by a getter (typo guard).
  Status CheckAllConsumed() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
  mutable std::set<std::string> consumed_;
};

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_ARG_PARSER_H_
