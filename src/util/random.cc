#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace dpaudit {

void Rng::FillGaussian(double* out, size_t n) {
  // A plain loop over the member distribution: std::normal_distribution is
  // stateful (the polar method caches its second variate), so the batched
  // stream matches repeated Gaussian() calls exactly. Separating the serial,
  // branchy sampling loop from the caller's apply loop is where the batching
  // speedup comes from.
  for (size_t i = 0; i < n; ++i) out[i] = normal_(engine_);
}

double Rng::Laplace(double scale) {
  DPAUDIT_CHECK_GE(scale, 0.0);
  // Inverse CDF: u ~ Uniform(-1/2, 1/2), x = -scale * sgn(u) * ln(1 - 2|u|).
  double u = Uniform() - 0.5;
  double sign = u < 0.0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  // Fisher-Yates.
  for (size_t i = n; i > 1; --i) {
    size_t j = UniformInt(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DPAUDIT_CHECK_LE(k, n);
  std::vector<size_t> perm = Permutation(n);
  perm.resize(k);
  return perm;
}

}  // namespace dpaudit
