// Status and StatusOr: exception-free error propagation for dpaudit.
//
// Library APIs that can fail return Status (or StatusOr<T> when a value is
// produced). Internal invariant violations use the CHECK macros from
// util/logging.h instead. The design follows the RocksDB/Abseil convention:
// a Status is cheap to construct and copy, carries a code plus a free-form
// message, and must be inspected by the caller (`ok()`), never thrown.

#ifndef DPAUDIT_UTIL_STATUS_H_
#define DPAUDIT_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace dpaudit {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
  kUnimplemented = 6,
};

/// Returns a short human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Value-semantic, cheap to copy.
class Status {
 public:
  /// Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or a non-OK Status explaining why there is none.
/// Accessing the value of a non-OK StatusOr aborts the process (see
/// util/logging.h); callers must test `ok()` first unless failure is a bug.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from error Status, mirroring absl::StatusOr, so
  /// `return value;` and `return Status::InvalidArgument(...);` both work.
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : data_(std::move(status)) {  // NOLINT
    DieIfOk();
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    DieIfNotOk();
    return std::get<T>(data_);
  }
  T& value() & {
    DieIfNotOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    DieIfNotOk();
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void DieIfNotOk() const;
  void DieIfOk() const;

  std::variant<Status, T> data_;
};

namespace internal_status {
[[noreturn]] void DieStatus(const char* what, const std::string& detail);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::DieIfNotOk() const {
  if (!ok()) {
    internal_status::DieStatus("StatusOr::value() on error status",
                               std::get<Status>(data_).ToString());
  }
}

template <typename T>
void StatusOr<T>::DieIfOk() const {
  if (std::holds_alternative<Status>(data_) &&
      std::get<Status>(data_).ok()) {
    internal_status::DieStatus("StatusOr constructed from OK status",
                               "an OK StatusOr must carry a value");
  }
}

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define DPAUDIT_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::dpaudit::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates `rexpr` (a StatusOr expression); on error returns its status,
/// otherwise move-assigns the value into `lhs`.
#define DPAUDIT_ASSIGN_OR_RETURN(lhs, rexpr)         \
  DPAUDIT_ASSIGN_OR_RETURN_IMPL_(                    \
      DPAUDIT_STATUS_CONCAT_(_status_or, __LINE__), lhs, rexpr)

#define DPAUDIT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define DPAUDIT_STATUS_CONCAT_(a, b) DPAUDIT_STATUS_CONCAT_IMPL_(a, b)
#define DPAUDIT_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_STATUS_H_
