// Deterministic random-number generation for experiments.
//
// Every experiment in dpaudit takes an explicit seed; repetitions derive
// independent child generators with Split(), so results are reproducible
// regardless of thread scheduling.

#ifndef DPAUDIT_UTIL_RANDOM_H_
#define DPAUDIT_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace dpaudit {

/// A seeded pseudo-random generator wrapping std::mt19937_64 with the
/// distributions used across the library. Copyable; copies evolve
/// independently from the copied state.
class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_material_(seed), engine_(Mix(seed)) {}

  /// Derives a child generator whose stream is independent of both this
  /// generator's future output and of children with other indices. Used to
  /// fan experiment repetitions out to worker threads deterministically.
  Rng Split(uint64_t index) const {
    return Rng(Mix(seed_material_ ^ (0x9e3779b97f4a7c15ULL * (index + 1))));
  }

  /// Uniform in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. The distribution object is a
  /// member whose parameters are updated only when `n` changes, so tight
  /// loops (Fisher-Yates, rejection sampling) skip re-construction; the draw
  /// stream is identical to a fresh distribution per call.
  uint64_t UniformInt(uint64_t n) {
    if (int_dist_.b() != n - 1) {
      int_dist_.param(
          std::uniform_int_distribution<uint64_t>::param_type(0, n - 1));
    }
    return int_dist_(engine_);
  }

  /// Standard normal draw.
  double Gaussian() { return normal_(engine_); }

  /// Fills out[0..n) with standard normal draws. The stream is identical to n
  /// repeated Gaussian() calls — same engine state, same values in the same
  /// order — so batched consumers (GaussianMechanism::Perturb) stay
  /// bit-identical to per-coordinate sampling.
  void FillGaussian(double* out, size_t n);

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Gaussian(double mean, double sigma) {
    return mean + sigma * Gaussian();
  }

  /// Laplace(0, scale) draw via inverse-CDF sampling.
  double Laplace(double scale);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p) { return Uniform() < p; }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n);

  /// k distinct indices sampled uniformly from {0, ..., n-1}, k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  // SplitMix64 finalizer: decorrelates sequential seeds.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  uint64_t seed_material_;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_int_distribution<uint64_t> int_dist_{0, 0};
};

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_RANDOM_H_
