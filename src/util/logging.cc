#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dpaudit {
namespace internal_logging {

LogMessageFatal::~LogMessageFatal() {
  std::fprintf(stderr, "[dpaudit fatal] %s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace dpaudit
