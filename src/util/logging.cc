#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/env.h"

namespace dpaudit {
namespace {

int LevelFromEnv() {
  const std::string raw = EnvString("DPAUDIT_LOG_LEVEL", "");
  if (raw == "WARNING" || raw == "1") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (raw == "ERROR" || raw == "2") {
    return static_cast<int>(LogLevel::kError);
  }
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int>& MinLevelStorage() {
  static std::atomic<int> level{LevelFromEnv()};
  return level;
}

std::atomic<LogSink>& SinkStorage() {
  static std::atomic<LogSink> sink{nullptr};
  return sink;
}

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

// file paths in __FILE__ can be long; keep the last two components.
const char* ShortFileName(const char* file) {
  const char* last = file;
  const char* prev = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      prev = last;
      last = p + 1;
    }
  }
  return prev;
}

}  // namespace

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      MinLevelStorage().load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  MinLevelStorage().store(static_cast<int>(level),
                          std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  SinkStorage().store(sink, std::memory_order_relaxed);
}

std::ostream& RawLogStream() { return std::cerr; }

namespace internal_logging {

LogMessageFatal::~LogMessageFatal() {
  std::fprintf(stderr, "[dpaudit fatal] %s\n", stream_.str().c_str());
  std::abort();
}

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "[dpaudit %c] %s:%d %s\n", LevelLetter(level_),
               ShortFileName(file_), line_, message.c_str());
  LogSink sink = SinkStorage().load(std::memory_order_relaxed);
  if (sink != nullptr) sink(level_, file_, line_, message);
}

}  // namespace internal_logging
}  // namespace dpaudit
