// Logging and CHECK macros.
//
// CHECK-family macros guard internal invariants: they abort the process with a
// file:line message on violation and are active in all build types. They are
// for programmer errors; recoverable conditions use Status (util/status.h).
//
// DPAUDIT_LOG(severity) is non-fatal leveled logging for runtime diagnostics
// (cache fallbacks, degraded modes, startup banners):
//
//   DPAUDIT_LOG(WARNING) << "ignoring unreadable trace " << key;
//
// Messages below the runtime threshold are filtered before any streaming
// work happens. The threshold defaults to INFO and is configurable through
// the DPAUDIT_LOG_LEVEL environment variable (INFO, WARNING, ERROR, or 0-2)
// or SetMinLogLevel(). Output goes to stderr as "[dpaudit I] file:line msg";
// an optional process-wide sink (SetLogSink) additionally receives every
// emitted record — obs/telemetry mirrors records into its JSONL event
// export through it.

#ifndef DPAUDIT_UTIL_LOGGING_H_
#define DPAUDIT_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace dpaudit {

enum class LogLevel : int {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
};

/// Messages strictly below the returned level are suppressed.
LogLevel MinLogLevel();

/// Overrides the threshold (and whatever DPAUDIT_LOG_LEVEL said).
void SetMinLogLevel(LogLevel level);

inline bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(MinLogLevel());
}

/// Additional observer of emitted (post-filter) log records; nullptr to
/// remove. The sink runs after the stderr write, on the logging thread.
using LogSink = void (*)(LogLevel level, const char* file, int line,
                         const std::string& message);
void SetLogSink(LogSink sink);

/// The raw stderr-backed stream for intentionally unformatted multi-line
/// output (profile reports, banners). Unlike DPAUDIT_LOG it applies no
/// level filter, record prefix, or sink mirroring — single-line diagnostics
/// belong in DPAUDIT_LOG. This accessor exists so library code never names
/// std::cerr directly (enforced by the dpaudit-cerr lint rule); never
/// stdout-backed, because experiment stdout is a byte-stable artifact.
std::ostream& RawLogStream();

namespace internal_logging {

// Accumulates the failure message; aborts in the destructor, i.e. at the end
// of the full expression that streamed into it.
class LogMessageFatal {
 public:
  LogMessageFatal(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }
  [[noreturn]] ~LogMessageFatal();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Accumulates one non-fatal record; the destructor writes it to stderr and
// the installed sink.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level)
      : file_(file), line_(line), level_(level) {}
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  LogLevel level_;
  std::ostringstream stream_;
};

// operator& has lower precedence than << but higher than ?:, which lets the
// CHECK macro swallow a trailing stream chain and still yield void.
struct Voidify {
  void operator&(std::ostream&) {}
};

// Targets of the DPAUDIT_LOG(severity) token paste.
constexpr LogLevel kLogINFO = LogLevel::kInfo;
constexpr LogLevel kLogWARNING = LogLevel::kWarning;
constexpr LogLevel kLogERROR = LogLevel::kError;

}  // namespace internal_logging

#define DPAUDIT_CHECK(cond)                                      \
  (cond) ? (void)0                                               \
         : ::dpaudit::internal_logging::Voidify() &              \
               ::dpaudit::internal_logging::LogMessageFatal(     \
                   __FILE__, __LINE__, #cond)                    \
                   .stream()

#define DPAUDIT_CHECK_OP(op, a, b) DPAUDIT_CHECK((a)op(b))
#define DPAUDIT_CHECK_EQ(a, b) DPAUDIT_CHECK_OP(==, a, b)
#define DPAUDIT_CHECK_NE(a, b) DPAUDIT_CHECK_OP(!=, a, b)
#define DPAUDIT_CHECK_LT(a, b) DPAUDIT_CHECK_OP(<, a, b)
#define DPAUDIT_CHECK_LE(a, b) DPAUDIT_CHECK_OP(<=, a, b)
#define DPAUDIT_CHECK_GT(a, b) DPAUDIT_CHECK_OP(>, a, b)
#define DPAUDIT_CHECK_GE(a, b) DPAUDIT_CHECK_OP(>=, a, b)

/// CHECKs that a Status expression is OK.
#define DPAUDIT_CHECK_OK(expr)                                   \
  do {                                                           \
    const auto _st = (expr);                                     \
    DPAUDIT_CHECK(_st.ok()) << _st.ToString();                   \
  } while (0)

/// Non-fatal leveled logging, filtered before the stream chain evaluates.
/// `severity` is INFO, WARNING, or ERROR.
#define DPAUDIT_LOG(severity)                                              \
  (!::dpaudit::LogLevelEnabled(                                            \
      ::dpaudit::internal_logging::kLog##severity))                        \
      ? (void)0                                                            \
      : ::dpaudit::internal_logging::Voidify() &                           \
            ::dpaudit::internal_logging::LogMessage(                       \
                __FILE__, __LINE__,                                        \
                ::dpaudit::internal_logging::kLog##severity)               \
                .stream()

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_LOGGING_H_
