// Minimal logging and CHECK macros.
//
// CHECK-family macros guard internal invariants: they abort the process with a
// file:line message on violation and are active in all build types. They are
// for programmer errors; recoverable conditions use Status (util/status.h).

#ifndef DPAUDIT_UTIL_LOGGING_H_
#define DPAUDIT_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace dpaudit {
namespace internal_logging {

// Accumulates the failure message; aborts in the destructor, i.e. at the end
// of the full expression that streamed into it.
class LogMessageFatal {
 public:
  LogMessageFatal(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }
  [[noreturn]] ~LogMessageFatal();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// operator& has lower precedence than << but higher than ?:, which lets the
// CHECK macro swallow a trailing stream chain and still yield void.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define DPAUDIT_CHECK(cond)                                      \
  (cond) ? (void)0                                               \
         : ::dpaudit::internal_logging::Voidify() &              \
               ::dpaudit::internal_logging::LogMessageFatal(     \
                   __FILE__, __LINE__, #cond)                    \
                   .stream()

#define DPAUDIT_CHECK_OP(op, a, b) DPAUDIT_CHECK((a)op(b))
#define DPAUDIT_CHECK_EQ(a, b) DPAUDIT_CHECK_OP(==, a, b)
#define DPAUDIT_CHECK_NE(a, b) DPAUDIT_CHECK_OP(!=, a, b)
#define DPAUDIT_CHECK_LT(a, b) DPAUDIT_CHECK_OP(<, a, b)
#define DPAUDIT_CHECK_LE(a, b) DPAUDIT_CHECK_OP(<=, a, b)
#define DPAUDIT_CHECK_GT(a, b) DPAUDIT_CHECK_OP(>, a, b)
#define DPAUDIT_CHECK_GE(a, b) DPAUDIT_CHECK_OP(>=, a, b)

/// CHECKs that a Status expression is OK.
#define DPAUDIT_CHECK_OK(expr)                                   \
  do {                                                           \
    const auto _st = (expr);                                     \
    DPAUDIT_CHECK(_st.ok()) << _st.ToString();                   \
  } while (0)

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_LOGGING_H_
