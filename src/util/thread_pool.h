// Fixed-size worker pool used to fan out independent experiment repetitions.
//
// Determinism contract: callers pass per-task seeds derived via Rng::Split, so
// results do not depend on which worker executes which task.

#ifndef DPAUDIT_UTIL_THREAD_POOL_H_
#define DPAUDIT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dpaudit {

/// A minimal thread pool. Schedule() enqueues work; the destructor drains the
/// queue and joins all workers. Not copyable or movable.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues `fn` for execution on some worker.
  void Schedule(std::function<void()> fn);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// `fn` must be safe to invoke concurrently for distinct i.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Number of workers to use by default: hardware concurrency clamped to
/// [1, 16] so experiment binaries behave on small containers.
size_t DefaultThreadCount();

/// Thread budget for each inner parallel region when `outer_tasks` of them
/// run concurrently under a total budget of `total_threads`: total / outer,
/// at least 1. Keeps nested parallelism (experiment repetitions on the
/// outside, per-example gradients on the inside) from oversubscribing the
/// machine.
size_t NestedThreadBudget(size_t total_threads, size_t outer_tasks);

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_THREAD_POOL_H_
