// Fixed-size worker pool used to fan out independent experiment repetitions.
//
// Determinism contract: callers pass per-task seeds derived via Rng::Split, so
// results do not depend on which worker executes which task.

#ifndef DPAUDIT_UTIL_THREAD_POOL_H_
#define DPAUDIT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dpaudit {

/// Telemetry hooks shared by every pool: queue/execute timing plus span-
/// context propagation from the scheduling thread to the worker (so profile
/// spans opened inside pool tasks nest under the scheduler's span — see
/// obs/span.h). Installed process-wide by obs/telemetry when telemetry is
/// enabled; with no hooks installed the pool pays one relaxed atomic load
/// per task. The hook pointer seen at Schedule() time travels with the task,
/// so a task is either fully instrumented or not at all.
struct ThreadPoolTelemetryHooks {
  /// Called on the scheduling thread; the token travels with the task.
  const void* (*capture_context)();
  /// Bracket task execution on the worker; enter returns the worker's
  /// previous context, which the pool passes back to exit.
  const void* (*enter_context)(const void* token);
  void (*exit_context)(const void* previous);
  /// Called on the worker after each task with its queue-wait and execution
  /// time in nanoseconds.
  void (*record_task_ns)(uint64_t queue_ns, uint64_t execute_ns);
  /// Called on the scheduling thread right after each enqueue with the queue
  /// length it observed (the task itself included), so exports can show how
  /// far ahead of the workers the schedulers run.
  void (*record_queue_depth)(size_t depth);
};

/// Installs (or, with nullptr, removes) the process-wide hooks. The struct
/// must outlive every pool task scheduled while it is installed.
void SetThreadPoolTelemetryHooks(const ThreadPoolTelemetryHooks* hooks);

/// A minimal thread pool. Schedule() enqueues work; the destructor drains the
/// queue and joins all workers. Not copyable or movable.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues `fn` for execution on some worker.
  void Schedule(std::function<void()> fn);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) and waits for completion. `fn` must be safe
  /// to invoke concurrently for distinct i.
  ///
  /// Dispatches dynamically sized chunks of the index range on the shared
  /// persistent pool (SharedThreadPool()) instead of spawning a pool per
  /// call; `num_threads` caps how many workers participate in THIS loop, not
  /// how many threads exist. The calling thread claims chunks alongside the
  /// workers, which (a) removes one scheduled task of latency and (b) makes
  /// nested calls — a ParallelFor issued from inside a pool task — deadlock
  /// free: the inner caller can always drain its own range even when every
  /// worker is busy. num_threads <= 1 (or n == 1) runs inline, in order, on
  /// the caller.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& fn);

  /// ParallelFor with an explicit chunk size: workers repeatedly claim
  /// `grain` consecutive indices from a shared cursor (work stealing in the
  /// self-scheduling sense — an idle worker takes the next chunk no matter
  /// which conceptual "cell" it belongs to). grain = 0 picks a default that
  /// amortizes the cursor contention for cheap bodies; heavyweight bodies
  /// (experiment trials) should pass grain = 1 for maximal balance.
  static void ParallelForChunked(size_t n, size_t num_threads, size_t grain,
                                 const std::function<void(size_t)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
    const ThreadPoolTelemetryHooks* hooks = nullptr;  // seen at Schedule()
    const void* context = nullptr;                    // captured span context
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<Task> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// The process-wide persistent pool every ParallelFor (and the sweep
/// scheduler, core/sweep_scheduler.h) dispatches on. Created on first use
/// with DefaultThreadCount() workers — so DPAUDIT_THREADS is read once, at
/// the first parallel region — and torn down at static destruction, joining
/// all workers (no leaked threads under LeakSanitizer). Do not construct
/// ThreadPool directly outside util/ (enforced by the dpaudit-raw-pool lint
/// rule); schedule through this instance so the process never pays per-call
/// thread spawn/join and never oversubscribes the machine with rival pools.
ThreadPool& SharedThreadPool();

/// Number of workers to use by default: hardware concurrency clamped to
/// [1, 16] so experiment binaries behave on small containers. The
/// DPAUDIT_THREADS environment variable (clamped to [1, 256]) overrides the
/// hardware-derived value — results are bit-identical for any thread count,
/// so this only trades wall clock for parallelism (and lets sanitizer CI
/// force real concurrency on small runners).
size_t DefaultThreadCount();

/// Installs (value > 0) or clears (0) a process-wide thread-count override
/// that takes precedence over DPAUDIT_THREADS in DefaultThreadCount. Applied
/// by core/runtime_options when the --threads flag (or an explicit
/// RuntimeOptions) is in effect. Install it BEFORE the first parallel
/// region: SharedThreadPool() sizes itself once, at first use.
void SetDefaultThreadCountOverride(size_t value);

/// Thread budget for each inner parallel region when `outer_tasks` of them
/// run concurrently under a total budget of `total_threads`: total / outer,
/// at least 1. Keeps nested parallelism (experiment repetitions on the
/// outside, per-example gradients on the inside) from oversubscribing the
/// machine.
size_t NestedThreadBudget(size_t total_threads, size_t outer_tasks);

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_THREAD_POOL_H_
