#include "util/math_util.h"

#include <limits>

#include "util/logging.h"

namespace dpaudit {

double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double hi = *std::max_element(xs.begin(), xs.end());
  if (std::isinf(hi)) return hi;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - hi);
  return hi + std::log(sum);
}

double KahanSum(const std::vector<double>& xs) {
  double sum = 0.0;
  double carry = 0.0;
  for (double x : xs) {
    double y = x - carry;
    double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double L2Norm(const std::vector<float>& v) {
  return L2Norm(v.data(), v.size());
}

double L2Norm(const float* v, size_t n) {
  double sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sq += static_cast<double>(v[i]) * v[i];
  }
  return std::sqrt(sq);
}

void AccumulateScaled(float* sum, const float* g, size_t n, double scale) {
  for (size_t i = 0; i < n; ++i) {
    sum[i] += static_cast<float>(scale * g[i]);
  }
}

double L2Norm(const std::vector<double>& v) {
  double sq = 0.0;
  for (double x : v) sq += x * x;
  return std::sqrt(sq);
}

double L2Distance(const std::vector<float>& a, const std::vector<float>& b) {
  DPAUDIT_CHECK_EQ(a.size(), b.size());
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

}  // namespace dpaudit
