#include "util/arg_parser.h"

#include <cstdlib>

namespace dpaudit {

StatusOr<ArgParser> ArgParser::Parse(int argc, const char* const* argv) {
  ArgParser parser;
  bool seen_flag = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      seen_flag = true;
      std::string key;
      std::string value;
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        key = arg.substr(2, eq - 2);
        value = arg.substr(eq + 1);
      } else {
        key = arg.substr(2);
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + key + " needs a value");
        }
        value = argv[++i];
      }
      if (key.empty()) return Status::InvalidArgument("empty flag name");
      if (parser.flags_.count(key) > 0) {
        return Status::InvalidArgument("flag --" + key + " repeated");
      }
      parser.flags_[key] = value;
    } else {
      if (seen_flag) {
        return Status::InvalidArgument(
            "positional argument '" + arg + "' after flags");
      }
      parser.positional_.push_back(arg);
    }
  }
  return parser;
}

bool ArgParser::Has(const std::string& key) const {
  return flags_.count(key) > 0;
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  consumed_.insert(key);
  return it->second;
}

StatusOr<double> ArgParser::GetDouble(const std::string& key,
                                      double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  consumed_.insert(key);
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + key + " expects a number, got '" +
                                   it->second + "'");
  }
  return value;
}

StatusOr<int64_t> ArgParser::GetInt(const std::string& key,
                                    int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  consumed_.insert(key);
  char* end = nullptr;
  long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + key + " expects an integer, got '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(value);
}

StatusOr<bool> ArgParser::GetBool(const std::string& key,
                                  bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  consumed_.insert(key);
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("--" + key + " expects true/false, got '" +
                                 v + "'");
}

Status ArgParser::CheckAllConsumed() const {
  for (const auto& [key, value] : flags_) {
    if (consumed_.count(key) == 0) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
  }
  return Status::Ok();
}

}  // namespace dpaudit
