// Tabular output for experiment binaries: aligned text for the console and
// optional CSV mirroring, so every bench reproduces a paper table/figure as
// both a human-readable block and machine-readable rows.

#ifndef DPAUDIT_UTIL_TABLE_WRITER_H_
#define DPAUDIT_UTIL_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace dpaudit {

/// Collects rows of string cells and renders them either as an aligned text
/// table or as CSV. Cell helpers format doubles with a fixed precision.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends one row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `digits` significant decimal places.
  static std::string Cell(double value, int digits = 4);
  static std::string Cell(int value);
  static std::string Cell(size_t value);

  /// Writes an aligned, boxed text table.
  void RenderText(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting needed for our numeric cells).
  void RenderCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpaudit

#endif  // DPAUDIT_UTIL_TABLE_WRITER_H_
