#include "util/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "util/env.h"
#include "util/logging.h"

namespace dpaudit {
namespace fault {
namespace {

constexpr size_t kWildcard = static_cast<size_t>(-1);

struct TrialClause {
  size_t cell = kWildcard;  // kWildcard matches any cell
  size_t rep = kWildcard;
  size_t fail_first_n = 0;  // attempts 1..n of a matching trial fail
};

struct Plan {
  std::vector<TrialClause> trials;
  size_t journal_write_n = 0;      // 0 = never; else the n-th write fails
  size_t abort_after_append = 0;   // 0 = never; else _Exit after n appends
};

struct State {
  std::mutex mu;
  bool initialized = false;  // plan latched (from spec or env)
  Plan plan;
  std::map<std::pair<size_t, size_t>, size_t> attempts;  // (cell,rep) -> n
  size_t journal_writes = 0;
  size_t journal_appends = 0;
};

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

State& GetState() {
  static State state;
  return state;
}

/// Parses "<cell-or-*>:<rep-or-*>:<n>".
bool ParseTrialClause(const std::string& body, TrialClause* out) {
  const size_t colon1 = body.find(':');
  if (colon1 == std::string::npos) return false;
  const size_t colon2 = body.find(':', colon1 + 1);
  if (colon2 == std::string::npos) return false;
  auto field = [&body](size_t begin, size_t end, size_t* value) {
    const std::string token = body.substr(begin, end - begin);
    if (token == "*") {
      *value = kWildcard;
      return true;
    }
    if (token.empty()) return false;
    char* tail = nullptr;
    const unsigned long long parsed =
        std::strtoull(token.c_str(), &tail, 10);
    if (tail == token.c_str() || *tail != '\0') return false;
    *value = static_cast<size_t>(parsed);
    return true;
  };
  size_t count = 0;
  if (!field(0, colon1, &out->cell)) return false;
  if (!field(colon1 + 1, colon2, &out->rep)) return false;
  if (!field(colon2 + 1, body.size(), &count) || count == kWildcard) {
    return false;
  }
  out->fail_first_n = count;
  return true;
}

bool ParseCount(const std::string& body, size_t* out) {
  if (body.empty()) return false;
  char* tail = nullptr;
  const unsigned long long parsed = std::strtoull(body.c_str(), &tail, 10);
  if (tail == body.c_str() || *tail != '\0' || parsed == 0) return false;
  *out = static_cast<size_t>(parsed);
  return true;
}

StatusOr<Plan> ParseSpec(const std::string& spec) {
  Plan plan;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(begin, end - begin);
    begin = end + 1;
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    const std::string key =
        eq == std::string::npos ? clause : clause.substr(0, eq);
    const std::string body =
        eq == std::string::npos ? std::string() : clause.substr(eq + 1);
    if (key == "trial") {
      TrialClause trial;
      if (!ParseTrialClause(body, &trial)) {
        return Status::InvalidArgument(
            "fault clause \"" + clause +
            "\": trial needs <cell|*>:<rep|*>:<n>, e.g. trial=0:1:2");
      }
      plan.trials.push_back(trial);
    } else if (key == "journal-write") {
      if (!ParseCount(body, &plan.journal_write_n)) {
        return Status::InvalidArgument(
            "fault clause \"" + clause +
            "\": journal-write needs a positive count, e.g. "
            "journal-write=3");
      }
    } else if (key == "abort-after-append") {
      if (!ParseCount(body, &plan.abort_after_append)) {
        return Status::InvalidArgument(
            "fault clause \"" + clause +
            "\": abort-after-append needs a positive count, e.g. "
            "abort-after-append=5");
      }
    } else {
      return Status::InvalidArgument(
          "unknown fault clause \"" + clause +
          "\"; known: trial=c:r:n, journal-write=n, abort-after-append=n");
    }
  }
  return plan;
}

/// Latches the plan from the environment the first time any probe runs in a
/// process that never called SetFaultSpec.
void EnsureInitializedLocked(State* state) {
  if (state->initialized) return;
  state->initialized = true;
  const std::string spec = EnvString("DPAUDIT_FAULT_INJECT", "");
  if (spec.empty()) return;
  StatusOr<Plan> plan = ParseSpec(spec);
  if (!plan.ok()) {
    DPAUDIT_LOG(WARNING) << "ignoring invalid DPAUDIT_FAULT_INJECT: "
                         << plan.status().message();
    return;
  }
  state->plan = std::move(*plan);
  const bool active = !state->plan.trials.empty() ||
                      state->plan.journal_write_n > 0 ||
                      state->plan.abort_after_append > 0;
  EnabledFlag().store(active, std::memory_order_relaxed);
}

}  // namespace

Status SetFaultSpec(const std::string& spec) {
  StatusOr<Plan> plan = spec.empty() ? StatusOr<Plan>(Plan{})
                                     : ParseSpec(spec);
  if (!plan.ok()) return plan.status();
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.initialized = true;
  state.plan = std::move(*plan);
  state.attempts.clear();
  state.journal_writes = 0;
  state.journal_appends = 0;
  const bool active = !state.plan.trials.empty() ||
                      state.plan.journal_write_n > 0 ||
                      state.plan.abort_after_append > 0;
  EnabledFlag().store(active, std::memory_order_relaxed);
  return Status::Ok();
}

Status ValidateFaultSpec(const std::string& spec) {
  if (spec.empty()) return Status::Ok();
  return ParseSpec(spec).status();
}

bool FaultInjectionEnabled() {
  State& state = GetState();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    EnsureInitializedLocked(&state);
  }
  return EnabledFlag().load(std::memory_order_relaxed);
}

bool FailTrialAttempt(size_t cell, size_t rep) {
  if (!FaultInjectionEnabled()) return false;
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  const size_t attempt = ++state.attempts[{cell, rep}];  // 1-based
  for (const TrialClause& clause : state.plan.trials) {
    if (clause.cell != kWildcard && clause.cell != cell) continue;
    if (clause.rep != kWildcard && clause.rep != rep) continue;
    if (attempt <= clause.fail_first_n) return true;
  }
  return false;
}

bool FailJournalWrite() {
  if (!FaultInjectionEnabled()) return false;
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.plan.journal_write_n == 0) return false;
  return ++state.journal_writes == state.plan.journal_write_n;
}

void MaybeAbortAfterJournalAppend() {
  if (!FaultInjectionEnabled()) return;
  State& state = GetState();
  bool abort_now = false;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.plan.abort_after_append == 0) return;
    abort_now = ++state.journal_appends == state.plan.abort_after_append;
  }
  if (abort_now) {
    DPAUDIT_LOG(WARNING) << "fault injection: aborting process after "
                         << "journal append (SIGKILL-style crash point)";
    // _Exit skips atexit — no telemetry flush, no ledger close, no stdio
    // flush: the closest portable stand-in for a kill -9 mid-sweep.
    std::_Exit(137);
  }
}

void ClearFaultSpecForTest() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.initialized = false;  // the next probe re-latches from the env
  state.plan = Plan{};
  state.attempts.clear();
  state.journal_writes = 0;
  state.journal_appends = 0;
  EnabledFlag().store(false, std::memory_order_relaxed);
}

}  // namespace fault
}  // namespace dpaudit
