#include "util/table_writer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "util/logging.h"

namespace dpaudit {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DPAUDIT_CHECK(!header_.empty());
}

void TableWriter::AddRow(std::vector<std::string> cells) {
  DPAUDIT_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Cell(double value, int digits) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string TableWriter::Cell(int value) { return std::to_string(value); }
std::string TableWriter::Cell(size_t value) { return std::to_string(value); }

void TableWriter::RenderText(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << "\n";
  };
  auto write_rule = [&] {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  write_rule();
  write_row(header_);
  write_rule();
  for (const auto& row : rows_) write_row(row);
  write_rule();
}

void TableWriter::RenderCsv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace dpaudit
