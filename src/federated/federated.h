// Federated-averaging substrate (Sections 6.1 and 7 motivate A_DI through
// federated learning, where every participant observes the per-round model
// updates).
//
// Clients hold disjoint shards; each round every client sends the clipped
// per-example gradient sum of its shard at the current global weights, the
// server adds Gaussian noise calibrated to the round's sensitivity, applies
// the update, and broadcasts the new weights. One client is the victim: its
// shard is either D_v or the neighboring D_v'. A curious participant (who,
// per the DP threat model, may know every record except the differing one)
// runs the DiAdversary against the stream of released aggregates.

#ifndef DPAUDIT_FEDERATED_FEDERATED_H_
#define DPAUDIT_FEDERATED_FEDERATED_H_

#include <cstdint>
#include <vector>

#include "core/dpsgd.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "util/status.h"

namespace dpaudit {

struct FederatedConfig {
  size_t rounds = 30;
  double learning_rate = 0.005;
  double clip_norm = 3.0;
  double noise_multiplier = 1.0;  // z = sigma / Delta f
  NeighborMode neighbor_mode = NeighborMode::kBounded;
  SensitivityMode sensitivity_mode = SensitivityMode::kGlobal;

  Status Validate() const;
};

struct FederatedResult {
  Network model;                       // final global model
  std::vector<double> beliefs;         // adversary belief in D_v per round
  bool adversary_says_victim_d = false;
  std::vector<double> local_sensitivities;  // per round ||S(D_v) - S(D_v')||
};

/// Runs federated training. `client_shards` are the honest clients' data;
/// `victim_d` / `victim_d_prime` are the two hypotheses for the victim's
/// shard, of which `victim_has_d` selects the real one. The adversary
/// observes every aggregate release.
StatusOr<FederatedResult> RunFederatedTraining(
    const Network& architecture, const std::vector<Dataset>& client_shards,
    const Dataset& victim_d, const Dataset& victim_d_prime,
    bool victim_has_d, const FederatedConfig& config, Rng& rng);

}  // namespace dpaudit

#endif  // DPAUDIT_FEDERATED_FEDERATED_H_
