#include "federated/federated.h"

#include "core/adversary.h"
#include "dp/mechanism.h"
#include "dp/privacy_params.h"
#include "dp/sensitivity.h"

namespace dpaudit {

Status FederatedConfig::Validate() const {
  if (rounds == 0) return Status::InvalidArgument("rounds must be > 0");
  if (!(learning_rate > 0.0)) {
    return Status::InvalidArgument("learning rate must be > 0");
  }
  if (!(clip_norm > 0.0)) {
    return Status::InvalidArgument("clip norm must be > 0");
  }
  if (!(noise_multiplier > 0.0)) {
    return Status::InvalidArgument("noise multiplier must be > 0");
  }
  return Status::Ok();
}

StatusOr<FederatedResult> RunFederatedTraining(
    const Network& architecture, const std::vector<Dataset>& client_shards,
    const Dataset& victim_d, const Dataset& victim_d_prime,
    bool victim_has_d, const FederatedConfig& config, Rng& rng) {
  DPAUDIT_RETURN_IF_ERROR(config.Validate());
  if (victim_d.empty() || victim_d_prime.empty()) {
    return Status::InvalidArgument("victim shards must be non-empty");
  }
  for (const Dataset& shard : client_shards) {
    if (shard.empty()) {
      return Status::InvalidArgument("client shards must be non-empty");
    }
  }

  FederatedResult result;
  result.model = architecture.Clone();
  DiAdversary adversary;
  const double global_sensitivity =
      GlobalClipSensitivity(config.neighbor_mode, config.clip_norm);

  size_t total_records = victim_d.size();
  for (const Dataset& shard : client_shards) total_records += shard.size();
  const double n = static_cast<double>(total_records);

  for (size_t round = 0; round < config.rounds; ++round) {
    // Honest clients' contribution is identical under both hypotheses.
    std::vector<float> honest_sum(result.model.NumParams(), 0.0f);
    for (const Dataset& shard : client_shards) {
      std::vector<float> shard_sum = result.model.ClippedGradientSum(
          shard.inputs, shard.labels, config.clip_norm);
      for (size_t i = 0; i < honest_sum.size(); ++i) {
        honest_sum[i] += shard_sum[i];
      }
    }

    std::vector<float> victim_sum_d = result.model.ClippedGradientSum(
        victim_d.inputs, victim_d.labels, config.clip_norm);
    std::vector<float> victim_sum_dprime = result.model.ClippedGradientSum(
        victim_d_prime.inputs, victim_d_prime.labels, config.clip_norm);

    std::vector<float> sum_d = honest_sum;
    std::vector<float> sum_dprime = honest_sum;
    for (size_t i = 0; i < honest_sum.size(); ++i) {
      sum_d[i] += victim_sum_d[i];
      sum_dprime[i] += victim_sum_dprime[i];
    }

    double local_sensitivity = GradientDistance(sum_d, sum_dprime);
    result.local_sensitivities.push_back(local_sensitivity);
    double sensitivity_used =
        config.sensitivity_mode == SensitivityMode::kGlobal
            ? global_sensitivity
            : (local_sensitivity > 0.0 ? local_sensitivity
                                       : global_sensitivity);
    double sigma = config.noise_multiplier * sensitivity_used;

    GaussianMechanism mechanism(sigma);
    std::vector<float> released = victim_has_d ? sum_d : sum_dprime;
    mechanism.Perturb(released, rng);

    adversary.OnStep(round, sum_d, sum_dprime, released, sigma);
    result.model.ApplyGradientStep(released, config.learning_rate / n);
  }

  result.beliefs = adversary.BeliefHistory();
  result.adversary_says_victim_d = adversary.DecideD();
  return result;
}

}  // namespace dpaudit
