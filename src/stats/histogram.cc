#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace dpaudit {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  DPAUDIT_CHECK_GT(num_bins, 0u);
  DPAUDIT_CHECK_LT(lo, hi);
  width_ = (hi - lo) / static_cast<double>(num_bins);
}

void Histogram::Add(double x) {
  double pos = (x - lo_) / width_;
  long bin = static_cast<long>(std::floor(pos));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double Histogram::bin_center(size_t i) const {
  DPAUDIT_CHECK_LT(i, counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::bin_fraction(size_t i) const {
  DPAUDIT_CHECK_LT(i, counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

void Histogram::MergeFrom(const Histogram& other) {
  DPAUDIT_CHECK_EQ(counts_.size(), other.counts_.size());
  DPAUDIT_CHECK_EQ(lo_, other.lo_);
  DPAUDIT_CHECK_EQ(hi_, other.hi_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::ApproxQuantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double within =
          (target - cumulative) / static_cast<double>(counts_[i]);
      const double bin_lo = lo_ + static_cast<double>(i) * width_;
      return bin_lo + std::clamp(within, 0.0, 1.0) * width_;
    }
    cumulative = next;
  }
  return hi_;
}

void Histogram::RenderText(std::ostream& os, size_t max_bar) const {
  size_t peak = 0;
  for (size_t c : counts_) peak = std::max(peak, c);
  for (size_t i = 0; i < counts_.size(); ++i) {
    double bin_lo = lo_ + static_cast<double>(i) * width_;
    double bin_hi = bin_lo + width_;
    size_t bar = peak == 0 ? 0 : counts_[i] * max_bar / peak;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "[%9.4f, %9.4f) %6zu  ", bin_lo, bin_hi,
                  counts_[i]);
    os << buf << std::string(bar, '#') << "\n";
  }
}

}  // namespace dpaudit
