// Fixed-bin histogram used to report the belief / sensitivity / accuracy
// distributions of Figures 4-7 as text.

#ifndef DPAUDIT_STATS_HISTOGRAM_H_
#define DPAUDIT_STATS_HISTOGRAM_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dpaudit {

/// Equal-width histogram over [lo, hi] with `num_bins` bins. Values outside
/// the range clamp into the first / last bin so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_bins);

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t total() const { return total_; }
  size_t num_bins() const { return counts_.size(); }
  size_t bin_count(size_t i) const { return counts_[i]; }

  /// Center of bin i.
  double bin_center(size_t i) const;

  /// Fraction of mass in bin i (0 when empty).
  double bin_fraction(size_t i) const;

  /// Renders `[lo, hi) count  ###...` bars, one line per bin, scaled so the
  /// largest bin gets `max_bar` characters.
  void RenderText(std::ostream& os, size_t max_bar = 50) const;

  /// Adds `other`'s bin counts into this histogram. The two must have been
  /// constructed with identical lo/hi/num_bins (CHECKed); used to merge
  /// per-thread shards into one distribution.
  void MergeFrom(const Histogram& other);

  /// Value at quantile q in [0, 1], interpolated linearly within the bin
  /// that crosses the target rank. Returns lo() for an empty histogram.
  /// Accuracy is limited by the bin width, as with any fixed-bin sketch.
  double ApproxQuantile(double q) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace dpaudit

#endif  // DPAUDIT_STATS_HISTOGRAM_H_
