// Standard normal distribution: density, log-density, CDF Phi, and quantile
// Phi^{-1}. These are the numeric workhorses behind the rho_alpha score
// (Theorem 2), the Gaussian mechanism likelihoods (Lemma 1), and the
// advantage-based epsilon' estimator (Section 6.4).

#ifndef DPAUDIT_STATS_NORMAL_H_
#define DPAUDIT_STATS_NORMAL_H_

namespace dpaudit {

/// Density of N(0, 1) at x.
double NormalPdf(double x);

/// Density of N(mean, stddev^2) at x. Requires stddev > 0.
double NormalPdf(double x, double mean, double stddev);

/// Log-density of N(mean, stddev^2) at x. Requires stddev > 0. Stable for
/// values far in the tails where NormalPdf underflows to zero.
double NormalLogPdf(double x, double mean, double stddev);

/// Phi(x) = P(Z <= x) for Z ~ N(0, 1). Accurate in both tails (erfc-based).
double NormalCdf(double x);

/// CDF of N(mean, stddev^2) at x. Requires stddev > 0.
double NormalCdf(double x, double mean, double stddev);

/// Phi^{-1}(p) for p in (0, 1). Acklam's rational approximation refined with
/// one Halley step, giving ~1e-15 relative accuracy across the open interval.
/// Returns -inf / +inf at p = 0 / 1.
double NormalQuantile(double p);

}  // namespace dpaudit

#endif  // DPAUDIT_STATS_NORMAL_H_
