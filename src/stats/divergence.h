// Divergence estimators between mechanism output distributions.
//
// The RDP accountant asserts bounds on the Renyi divergence between M(D) and
// M(D'). These helpers make that claim empirically checkable: closed forms
// for the Gaussian case and Monte Carlo estimators that only need log
// densities and samples — the same interface the adversary uses.

#ifndef DPAUDIT_STATS_DIVERGENCE_H_
#define DPAUDIT_STATS_DIVERGENCE_H_

#include <functional>
#include <vector>

#include "util/status.h"

namespace dpaudit {

/// Renyi divergence of order alpha between two Gaussians with equal stddev:
/// D_alpha(N(mu1, s^2) || N(mu2, s^2)) = alpha (mu1 - mu2)^2 / (2 s^2).
/// Requires alpha > 1, stddev > 0.
double GaussianRenyiDivergence(double alpha, double mean1, double mean2,
                               double stddev);

/// KL divergence (the alpha -> 1 limit): (mu1 - mu2)^2 / (2 s^2).
double GaussianKlDivergence(double mean1, double mean2, double stddev);

/// Log-density of a distribution at a sample point.
using LogDensityFn = std::function<double(double)>;

/// Monte Carlo estimate of D_alpha(P || Q) from samples of P:
///   D_alpha = ln( mean_i exp((alpha - 1) * (logP(x_i) - logQ(x_i))) )
///             / (alpha - 1),
/// computed stably in log space. Requires alpha > 1 and at least one sample.
StatusOr<double> EstimateRenyiDivergence(double alpha,
                                         const std::vector<double>& samples_p,
                                         const LogDensityFn& log_p,
                                         const LogDensityFn& log_q);

/// Monte Carlo estimate of KL(P || Q) = mean_i (logP(x_i) - logQ(x_i)).
StatusOr<double> EstimateKlDivergence(const std::vector<double>& samples_p,
                                      const LogDensityFn& log_p,
                                      const LogDensityFn& log_q);

}  // namespace dpaudit

#endif  // DPAUDIT_STATS_DIVERGENCE_H_
