#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dpaudit {

void RunningSummary::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningSummary::Merge(const RunningSummary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningSummary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningSummary::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  DPAUDIT_CHECK(!values.empty());
  DPAUDIT_CHECK_GE(q, 0.0);
  DPAUDIT_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Mean(const std::vector<double>& values) {
  DPAUDIT_CHECK(!values.empty());
  RunningSummary s;
  for (double v : values) s.Add(v);
  return s.mean();
}

double StdDev(const std::vector<double>& values) {
  RunningSummary s;
  for (double v : values) s.Add(v);
  return s.stddev();
}

double FractionAbove(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  size_t n = 0;
  for (double v : values) {
    if (v > threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

Interval WilsonInterval(size_t successes, size_t trials, double z) {
  DPAUDIT_CHECK_GT(trials, 0u);
  DPAUDIT_CHECK_LE(successes, trials);
  double n = static_cast<double>(trials);
  double p = static_cast<double>(successes) / n;
  double z2 = z * z;
  double denom = 1.0 + z2 / n;
  double center = (p + z2 / (2.0 * n)) / denom;
  double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

}  // namespace dpaudit
