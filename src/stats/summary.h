// Streaming and batch summary statistics for experiment outputs.

#ifndef DPAUDIT_STATS_SUMMARY_H_
#define DPAUDIT_STATS_SUMMARY_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace dpaudit {

/// Welford's online algorithm: numerically stable running mean / variance,
/// plus min and max. Mergeable so per-thread accumulators can be combined.
class RunningSummary {
 public:
  void Add(double x);

  /// Merges another summary into this one (parallel reduction).
  void Merge(const RunningSummary& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// The q-quantile (q in [0, 1]) of `values` by linear interpolation between
/// order statistics. Copies and sorts internally; requires non-empty input.
double Quantile(std::vector<double> values, double q);

/// Mean of `values`; requires non-empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// Fraction of values strictly greater than `threshold`.
double FractionAbove(const std::vector<double>& values, double threshold);

/// Wilson score interval for a binomial proportion: given `successes` out of
/// `trials`, returns [lo, hi] covering the true rate with ~95% confidence
/// (z = 1.96). Requires trials > 0.
struct Interval {
  double lo;
  double hi;
};
Interval WilsonInterval(size_t successes, size_t trials, double z = 1.96);

}  // namespace dpaudit

#endif  // DPAUDIT_STATS_SUMMARY_H_
