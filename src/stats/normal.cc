#include "stats/normal.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/math_util.h"

namespace dpaudit {
namespace {

constexpr double kSqrt2 = 1.4142135623730950488;
constexpr double kLogSqrt2Pi = 0.91893853320467274178;  // ln(sqrt(2*pi))

// Coefficients for Acklam's inverse-normal approximation.
constexpr double kA[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                         -2.759285104469687e+02, 1.383577518672690e+02,
                         -3.066479806614716e+01, 2.506628277459239e+00};
constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                         -1.556989798598866e+02, 6.680131188771972e+01,
                         -1.328068155288572e+01};
constexpr double kC[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                         -2.400758277161838e+00, -2.549732539343734e+00,
                         4.374664141464968e+00, 2.938163982698783e+00};
constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                         2.445134137142996e+00, 3.754408661907416e+00};

double AcklamQuantile(double p) {
  constexpr double kPLow = 0.02425;
  constexpr double kPHigh = 1.0 - kPLow;
  if (p < kPLow) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
            kC[5]) /
           ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }
  if (p <= kPHigh) {
    double q = p - 0.5;
    double r = q * q;
    return (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
            kA[5]) *
           q /
           (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
            1.0);
  }
  double q = std::sqrt(-2.0 * std::log1p(-p));
  return -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
           kC[5]) /
         ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
}

}  // namespace

double NormalPdf(double x) {
  return std::exp(-0.5 * x * x - kLogSqrt2Pi);
}

double NormalPdf(double x, double mean, double stddev) {
  DPAUDIT_CHECK_GT(stddev, 0.0);
  double z = (x - mean) / stddev;
  return NormalPdf(z) / stddev;
}

double NormalLogPdf(double x, double mean, double stddev) {
  DPAUDIT_CHECK_GT(stddev, 0.0);
  double z = (x - mean) / stddev;
  return -0.5 * z * z - kLogSqrt2Pi - std::log(stddev);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double NormalCdf(double x, double mean, double stddev) {
  DPAUDIT_CHECK_GT(stddev, 0.0);
  return NormalCdf((x - mean) / stddev);
}

double NormalQuantile(double p) {
  DPAUDIT_CHECK_GE(p, 0.0);
  DPAUDIT_CHECK_LE(p, 1.0);
  if (p == 0.0) return -std::numeric_limits<double>::infinity();
  if (p == 1.0) return std::numeric_limits<double>::infinity();
  double x = AcklamQuantile(p);
  // One Halley refinement step against the exact CDF pushes the error from
  // ~1e-9 down to machine precision.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace dpaudit
