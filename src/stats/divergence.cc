#include "stats/divergence.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace dpaudit {

double GaussianRenyiDivergence(double alpha, double mean1, double mean2,
                               double stddev) {
  DPAUDIT_CHECK_GT(alpha, 1.0);
  DPAUDIT_CHECK_GT(stddev, 0.0);
  double d = mean1 - mean2;
  return alpha * d * d / (2.0 * stddev * stddev);
}

double GaussianKlDivergence(double mean1, double mean2, double stddev) {
  DPAUDIT_CHECK_GT(stddev, 0.0);
  double d = mean1 - mean2;
  return d * d / (2.0 * stddev * stddev);
}

StatusOr<double> EstimateRenyiDivergence(double alpha,
                                         const std::vector<double>& samples_p,
                                         const LogDensityFn& log_p,
                                         const LogDensityFn& log_q) {
  if (!(alpha > 1.0)) return Status::InvalidArgument("alpha must be > 1");
  if (samples_p.empty()) {
    return Status::InvalidArgument("need at least one sample");
  }
  std::vector<double> log_terms;
  log_terms.reserve(samples_p.size());
  for (double x : samples_p) {
    log_terms.push_back((alpha - 1.0) * (log_p(x) - log_q(x)));
  }
  double log_mean =
      LogSumExp(log_terms) - std::log(static_cast<double>(samples_p.size()));
  return log_mean / (alpha - 1.0);
}

StatusOr<double> EstimateKlDivergence(const std::vector<double>& samples_p,
                                      const LogDensityFn& log_p,
                                      const LogDensityFn& log_q) {
  if (samples_p.empty()) {
    return Status::InvalidArgument("need at least one sample");
  }
  double sum = 0.0;
  for (double x : samples_p) sum += log_p(x) - log_q(x);
  return sum / static_cast<double>(samples_p.size());
}

}  // namespace dpaudit
