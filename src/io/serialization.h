// Binary serialization for model weights and datasets.
//
// Enables the auditing workflow on persisted artifacts: train somewhere,
// save the weights, audit later (examples/ and tools/ use this). The format
// is deliberately simple and versioned:
//
//   header:  magic "DPAU" | u32 version | u32 kind | u64 payload bytes
//   payload: kind-specific, little-endian
//   footer:  u64 FNV-1a checksum of the payload
//
// Weights are stored as a flat float vector; loading requires a Network of
// identical parameter count (the architecture is code, not data — matching
// the library's Network design).

#ifndef DPAUDIT_IO_SERIALIZATION_H_
#define DPAUDIT_IO_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/network.h"
#include "util/status.h"

namespace dpaudit {

/// Serializes the network's current parameters.
StatusOr<std::vector<uint8_t>> SerializeWeights(const Network& net);

/// Restores parameters into `net`; its NumParams() must match the blob.
Status DeserializeWeights(const std::vector<uint8_t>& bytes, Network& net);

/// Serializes a dataset (shapes, labels, float payloads).
StatusOr<std::vector<uint8_t>> SerializeDataset(const Dataset& dataset);

StatusOr<Dataset> DeserializeDataset(const std::vector<uint8_t>& bytes);

/// File convenience wrappers.
Status SaveWeights(const std::string& path, const Network& net);
Status LoadWeights(const std::string& path, Network& net);
Status SaveDataset(const std::string& path, const Dataset& dataset);
StatusOr<Dataset> LoadDataset(const std::string& path);

/// FNV-1a 64-bit hash (exposed for tests).
uint64_t Fnv1a64(const uint8_t* data, size_t size);

}  // namespace dpaudit

#endif  // DPAUDIT_IO_SERIALIZATION_H_
