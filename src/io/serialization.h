// Binary serialization for model weights, datasets, and experiment traces.
//
// Enables the auditing workflow on persisted artifacts: train somewhere,
// save the weights, audit later (examples/ and tools/ use this); the trace
// cache (core/trace.h) persists whole experiment summaries the same way.
// The format is deliberately simple and versioned:
//
//   header:  magic "DPAU" | u32 version | u32 kind | u64 payload bytes
//   payload: kind-specific, little-endian
//   footer:  u64 FNV-1a checksum of the payload
//
// Weights are stored as a flat float vector; loading requires a Network of
// identical parameter count (the architecture is code, not data — matching
// the library's Network design).
//
// The `wire` namespace exposes the primitive encode/decode helpers and the
// frame/checksum layer so other modules (core/trace) can define new blob
// kinds without duplicating the bounds-checked cursor logic. Doubles are
// stored as IEEE-754 bit patterns, so round-trips are exact.

#ifndef DPAUDIT_IO_SERIALIZATION_H_
#define DPAUDIT_IO_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/network.h"
#include "util/status.h"

namespace dpaudit {

/// Registered payload kinds for the framed blob format.
inline constexpr uint32_t kBlobKindWeights = 1;
inline constexpr uint32_t kBlobKindDataset = 2;
inline constexpr uint32_t kBlobKindTrace = 3;

namespace wire {

/// Little-endian primitive appenders. Floats/doubles are written as their
/// IEEE-754 bit patterns (exact round-trip).
void PutU32(std::vector<uint8_t>& out, uint32_t v);
void PutU64(std::vector<uint8_t>& out, uint64_t v);
void PutF32(std::vector<uint8_t>& out, float f);
void PutF64(std::vector<uint8_t>& out, double d);

/// Cursor-based reader with bounds checking; every accessor fails with
/// InvalidArgument instead of reading past the end.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  StatusOr<uint32_t> U32();
  StatusOr<uint64_t> U64();
  StatusOr<float> F32();
  StatusOr<double> F64();

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace wire

/// Wraps a payload in the magic/version/kind/size header and FNV-1a footer.
std::vector<uint8_t> FrameBlob(uint32_t kind,
                               const std::vector<uint8_t>& payload);

/// Validates the frame (magic, version, declared kind, size, checksum) and
/// returns the payload. A flipped payload byte fails the checksum.
StatusOr<std::vector<uint8_t>> UnframeBlob(const std::vector<uint8_t>& bytes,
                                           uint32_t expected_kind);

/// Whole-file helpers for framed blobs.
Status WriteBlobFile(const std::string& path,
                     const std::vector<uint8_t>& bytes);
StatusOr<std::vector<uint8_t>> ReadBlobFile(const std::string& path);

/// Serializes the network's current parameters.
StatusOr<std::vector<uint8_t>> SerializeWeights(const Network& net);

/// Restores parameters into `net`; its NumParams() must match the blob.
Status DeserializeWeights(const std::vector<uint8_t>& bytes, Network& net);

/// Serializes a dataset (shapes, labels, float payloads).
StatusOr<std::vector<uint8_t>> SerializeDataset(const Dataset& dataset);

StatusOr<Dataset> DeserializeDataset(const std::vector<uint8_t>& bytes);

/// File convenience wrappers.
Status SaveWeights(const std::string& path, const Network& net);
Status LoadWeights(const std::string& path, Network& net);
Status SaveDataset(const std::string& path, const Dataset& dataset);
StatusOr<Dataset> LoadDataset(const std::string& path);

/// FNV-1a 64-bit hash (exposed for tests and content fingerprints). The
/// seeded overload chains incremental hashing: pass the previous digest as
/// `seed` to extend it.
uint64_t Fnv1a64(const uint8_t* data, size_t size);
uint64_t Fnv1a64(const uint8_t* data, size_t size, uint64_t seed);

}  // namespace dpaudit

#endif  // DPAUDIT_IO_SERIALIZATION_H_
