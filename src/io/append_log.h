// Crash-safe append-only line log.
//
// The sweep checkpoint journal (core/sweep_journal.h) needs JSONL appends
// that survive a SIGKILL mid-run: a reader must see every fully written line
// intact and at most one torn line at the end of the file. AppendLog
// guarantees that by writing each line (payload + '\n') with a single
// buffered write under a mutex followed by an fflush — concurrent writers
// never interleave partial lines, and a crash can only truncate the final
// line, which ReadLogLines detects and reports so the journal loader can
// drop it and resume cleanly.

#ifndef DPAUDIT_IO_APPEND_LOG_H_
#define DPAUDIT_IO_APPEND_LOG_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace dpaudit {

class AppendLog {
 public:
  AppendLog() = default;
  ~AppendLog() { Close(); }

  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Opens `path` for appending, creating parent directories and the file on
  /// demand. `truncate_to` >= 0 first truncates the file to that byte size —
  /// the journal loader passes the offset after the last valid line so a
  /// torn tail from a crash is cut before new rows land behind it.
  Status Open(const std::string& path, long long truncate_to = -1);

  /// Appends `line` + '\n' as one write and flushes. Thread-safe; lines from
  /// concurrent writers never interleave. `line` must not contain '\n'.
  Status Append(const std::string& line);

  /// Flushes and closes (idempotent).
  void Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Result of reading an append log: every complete line (without the
/// terminating '\n'), plus whether the file ended in a torn line (no final
/// newline) and the byte offset where that torn tail starts — the size to
/// truncate to before appending again.
struct AppendLogContents {
  std::vector<std::string> lines;
  bool torn_tail = false;
  long long valid_bytes = 0;  // offset just past the last complete line
};

/// Reads `path`. NotFound when the file does not exist.
StatusOr<AppendLogContents> ReadLogLines(const std::string& path);

}  // namespace dpaudit

#endif  // DPAUDIT_IO_APPEND_LOG_H_
