#include "io/serialization.h"

#include <cstring>
#include <fstream>

#include "tensor/tensor.h"

namespace dpaudit {
namespace {

constexpr uint8_t kMagic[4] = {'D', 'P', 'A', 'U'};
constexpr uint32_t kVersion = 1;

}  // namespace

namespace wire {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutF32(std::vector<uint8_t>& out, float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  PutU32(out, bits);
}

void PutF64(std::vector<uint8_t>& out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  PutU64(out, bits);
}

StatusOr<uint32_t> Reader::U32() {
  if (pos_ + 4 > size_) return Status::InvalidArgument("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> Reader::U64() {
  if (pos_ + 8 > size_) return Status::InvalidArgument("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

StatusOr<float> Reader::F32() {
  DPAUDIT_ASSIGN_OR_RETURN(uint32_t bits, U32());
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

StatusOr<double> Reader::F64() {
  DPAUDIT_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace wire

std::vector<uint8_t> FrameBlob(uint32_t kind,
                               const std::vector<uint8_t>& payload) {
  // Seeding the vector from the magic range (instead of insert-into-empty)
  // sidesteps a GCC 12 -Wstringop-overflow false positive at -O3.
  std::vector<uint8_t> out(kMagic, kMagic + 4);
  out.reserve(payload.size() + 32);
  wire::PutU32(out, kVersion);
  wire::PutU32(out, kind);
  wire::PutU64(out, payload.size());
  // The emptiness guard also sidesteps a GCC 12 -Wstringop-overflow false
  // positive on inserting an empty range.
  if (!payload.empty()) {
    out.insert(out.end(), payload.begin(), payload.end());
  }
  wire::PutU64(out, Fnv1a64(payload.data(), payload.size()));
  return out;
}

StatusOr<std::vector<uint8_t>> UnframeBlob(const std::vector<uint8_t>& bytes,
                                           uint32_t expected_kind) {
  if (bytes.size() < 28) {
    return Status::InvalidArgument("blob shorter than its frame");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic (not a dpaudit blob)");
  }
  wire::Reader reader(bytes.data() + 4, bytes.size() - 4);
  DPAUDIT_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported blob version");
  }
  DPAUDIT_ASSIGN_OR_RETURN(uint32_t kind, reader.U32());
  if (kind != expected_kind) {
    return Status::InvalidArgument("blob holds a different artifact kind");
  }
  DPAUDIT_ASSIGN_OR_RETURN(uint64_t payload_size, reader.U64());
  if (bytes.size() != 4 + reader.pos() + payload_size + 8) {
    return Status::InvalidArgument("frame size mismatch");
  }
  const uint8_t* payload = bytes.data() + 4 + reader.pos();
  std::vector<uint8_t> out(payload, payload + payload_size);
  wire::Reader footer(payload + payload_size, 8);
  DPAUDIT_ASSIGN_OR_RETURN(uint64_t checksum, footer.U64());
  if (checksum != Fnv1a64(out.data(), out.size())) {
    return Status::InvalidArgument("checksum mismatch (corrupted blob)");
  }
  return out;
}

Status WriteBlobFile(const std::string& path,
                     const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> ReadBlobFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  return Fnv1a64(data, size, 0xcbf29ce484222325ULL);
}

uint64_t Fnv1a64(const uint8_t* data, size_t size, uint64_t seed) {
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

StatusOr<std::vector<uint8_t>> SerializeWeights(const Network& net) {
  std::vector<float> params = net.FlatParams();
  std::vector<uint8_t> payload;
  payload.reserve(8 + 4 * params.size());
  wire::PutU64(payload, params.size());
  for (float p : params) wire::PutF32(payload, p);
  return FrameBlob(kBlobKindWeights, payload);
}

Status DeserializeWeights(const std::vector<uint8_t>& bytes, Network& net) {
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                           UnframeBlob(bytes, kBlobKindWeights));
  wire::Reader reader(payload.data(), payload.size());
  DPAUDIT_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  if (count != net.NumParams()) {
    return Status::FailedPrecondition(
        "weight blob holds " + std::to_string(count) +
        " parameters, network expects " + std::to_string(net.NumParams()));
  }
  std::vector<float> params;
  params.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DPAUDIT_ASSIGN_OR_RETURN(float p, reader.F32());
    params.push_back(p);
  }
  net.SetFlatParams(params);
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> SerializeDataset(const Dataset& dataset) {
  std::vector<uint8_t> payload;
  wire::PutU64(payload, dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Tensor& x = dataset.inputs[i];
    wire::PutU64(payload, dataset.labels[i]);
    wire::PutU32(payload, static_cast<uint32_t>(x.rank()));
    for (size_t dim : x.shape()) wire::PutU64(payload, dim);
    for (float v : x.vec()) wire::PutF32(payload, v);
  }
  return FrameBlob(kBlobKindDataset, payload);
}

StatusOr<Dataset> DeserializeDataset(const std::vector<uint8_t>& bytes) {
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                           UnframeBlob(bytes, kBlobKindDataset));
  wire::Reader reader(payload.data(), payload.size());
  DPAUDIT_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  Dataset dataset;
  dataset.inputs.reserve(count);
  dataset.labels.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DPAUDIT_ASSIGN_OR_RETURN(uint64_t label, reader.U64());
    DPAUDIT_ASSIGN_OR_RETURN(uint32_t rank, reader.U32());
    if (rank == 0 || rank > 4) {
      return Status::InvalidArgument("record rank out of range");
    }
    std::vector<size_t> shape;
    uint64_t volume = 1;
    for (uint32_t r = 0; r < rank; ++r) {
      DPAUDIT_ASSIGN_OR_RETURN(uint64_t dim, reader.U64());
      if (dim == 0) return Status::InvalidArgument("zero extent");
      shape.push_back(dim);
      volume *= dim;
      if (volume > (1ull << 30)) {
        return Status::OutOfRange("record implausibly large");
      }
    }
    std::vector<float> values;
    values.reserve(volume);
    for (uint64_t v = 0; v < volume; ++v) {
      DPAUDIT_ASSIGN_OR_RETURN(float f, reader.F32());
      values.push_back(f);
    }
    dataset.Add(Tensor(shape, std::move(values)), label);
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in dataset payload");
  }
  return dataset;
}

Status SaveWeights(const std::string& path, const Network& net) {
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, SerializeWeights(net));
  return WriteBlobFile(path, bytes);
}

Status LoadWeights(const std::string& path, Network& net) {
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadBlobFile(path));
  return DeserializeWeights(bytes, net);
}

Status SaveDataset(const std::string& path, const Dataset& dataset) {
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           SerializeDataset(dataset));
  return WriteBlobFile(path, bytes);
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  DPAUDIT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadBlobFile(path));
  return DeserializeDataset(bytes);
}

}  // namespace dpaudit
