#include "io/append_log.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

namespace dpaudit {

Status AppendLog::Open(const std::string& path, long long truncate_to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("append log already open: " + path_);
  }
  const std::filesystem::path fs_path(path);
  std::error_code ec;
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    if (ec) {
      return Status::Internal("cannot create " +
                              fs_path.parent_path().string() + ": " +
                              ec.message());
    }
  }
  if (truncate_to >= 0 && std::filesystem::exists(fs_path, ec)) {
    std::filesystem::resize_file(
        fs_path, static_cast<uintmax_t>(truncate_to), ec);
    if (ec) {
      return Status::Internal("cannot truncate " + path + " to " +
                              std::to_string(truncate_to) + " bytes: " +
                              ec.message());
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open " + path + " for append: " +
                            std::strerror(errno));
  }
  path_ = path;
  return Status::Ok();
}

Status AppendLog::Append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("append log is closed");
  }
  // One buffered write for payload + newline: stdio's internal lock makes
  // the fwrite atomic with respect to other writers of this FILE, and the
  // flush bounds what a crash can lose to the current line.
  std::string record = line;
  record.push_back('\n');
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::Internal("short write to " + path_ + ": " +
                            std::strerror(errno));
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("cannot flush " + path_ + ": " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void AppendLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
}

StatusOr<AppendLogContents> ReadLogLines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no append log at " + path);
  }
  AppendLogContents contents;
  std::string buffer;
  char chunk[1 << 16];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    buffer.append(chunk, static_cast<size_t>(in.gcount()));
  }
  size_t begin = 0;
  while (begin < buffer.size()) {
    const size_t end = buffer.find('\n', begin);
    if (end == std::string::npos) {
      contents.torn_tail = true;  // crash mid-append: drop the tail
      break;
    }
    contents.lines.push_back(buffer.substr(begin, end - begin));
    begin = end + 1;
  }
  contents.valid_bytes = static_cast<long long>(
      contents.torn_tail ? begin : buffer.size());
  return contents;
}

}  // namespace dpaudit
