// choose_epsilon: translate legal / societal identifiability requirements
// into DP parameters — the paper's core use case (Section 1).
//
// Given a maximum tolerable posterior belief (deniability) or expected
// re-identification advantage, prints the corresponding epsilon, the
// complementary score, and the per-step Gaussian noise multiplier for a
// k-step DPSGD run under RDP composition.
//
//   ./choose_epsilon [k] [delta]   (defaults: k = 30, delta = 1e-3)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/scores.h"
#include "dp/rdp_accountant.h"
#include "util/table_writer.h"

using namespace dpaudit;

int main(int argc, char** argv) {
  size_t k = argc > 1 ? static_cast<size_t>(std::strtol(argv[1], nullptr, 10)) : 30;
  double delta = argc > 2 ? std::strtod(argv[2], nullptr) : 1e-3;

  std::printf("policy table: identifiability -> DP parameters "
              "(k = %zu steps, delta = %g)\n\n",
              k, delta);

  // From deniability requirements (rho_beta).
  TableWriter from_beta({"max posterior belief", "epsilon (Eq. 10)",
                         "implied rho_alpha", "noise multiplier z"});
  for (double rho_beta : {0.55, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95, 0.99}) {
    double epsilon = *EpsilonForRhoBeta(rho_beta);
    double z = *NoiseMultiplierForTargetEpsilon(epsilon, delta, k);
    from_beta.AddRow({TableWriter::Cell(rho_beta, 2),
                      TableWriter::Cell(epsilon, 3),
                      TableWriter::Cell(*RhoAlpha(epsilon, delta), 3),
                      TableWriter::Cell(z, 3)});
  }
  std::printf("choosing by deniability (rho_beta):\n");
  from_beta.RenderText(std::cout);

  // From expected-advantage requirements (rho_alpha).
  TableWriter from_alpha({"max expected advantage", "epsilon (Eq. 15)",
                          "implied rho_beta", "noise multiplier z"});
  for (double rho_alpha : {0.01, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    double epsilon = *EpsilonForRhoAlpha(rho_alpha, delta);
    double z = *NoiseMultiplierForTargetEpsilon(epsilon, delta, k);
    from_alpha.AddRow({TableWriter::Cell(rho_alpha, 2),
                       TableWriter::Cell(epsilon, 3),
                       TableWriter::Cell(*RhoBeta(epsilon), 3),
                       TableWriter::Cell(z, 3)});
  }
  std::printf("\nchoosing by expected re-identification advantage "
              "(rho_alpha):\n");
  from_alpha.RenderText(std::cout);

  std::printf("\nreading the table: a requirement of rho_beta <= 0.9 means "
              "the strongest DP adversary\n"
              "(knowing all records but one, observing every gradient) can "
              "never be more than 90%%\n"
              "certain a given record was used; spend at most the listed "
              "epsilon.\n");
  return 0;
}
