// federated_audit: the deployment scenario the paper motivates A_DI with
// (Sections 6.1, 7) — federated learning, where every participant observes
// the per-round aggregate updates.
//
// A victim client's shard either contains a particular record (D_v) or has
// it replaced (D_v'). An honest-but-curious participant with DP-adversary
// knowledge runs the posterior-belief attack against the released updates,
// once with weak noise and once with noise calibrated to rho_beta = 0.9.
//
//   ./federated_audit [rounds]   (default 30)

#include <cstdio>
#include <cstdlib>

#include "core/scores.h"
#include "data/dataset_sensitivity.h"
#include "data/synthetic_purchase.h"
#include "dp/privacy_params.h"
#include "dp/rdp_accountant.h"
#include "federated/federated.h"
#include "nn/network.h"

using namespace dpaudit;

int main(int argc, char** argv) {
  size_t rounds = argc > 1 ? static_cast<size_t>(std::strtol(argv[1], nullptr, 10)) : 30;
  const double delta = 0.01;

  SyntheticPurchaseConfig data_config;
  data_config.num_classes = 30;
  SyntheticPurchaseGenerator generator(data_config, 31);
  Rng rng(37);

  // Three honest clients plus the victim.
  std::vector<Dataset> shards = {generator.Generate(15, rng),
                                 generator.Generate(15, rng),
                                 generator.Generate(15, rng)};
  Dataset pool = generator.Generate(30, rng);
  Dataset victim_d = generator.Generate(15, rng);
  auto candidates = RankBoundedCandidates(victim_d, pool, HammingDistance);
  Dataset victim_d_prime =
      MakeBoundedNeighbor(victim_d, pool, candidates->front());

  Network architecture =
      BuildPurchaseNetwork(data_config.num_features, 48,
                           data_config.num_classes);
  Rng init_rng(41);
  architecture.Initialize(init_rng);

  struct Setting {
    const char* label;
    double noise_multiplier;
  };
  const double eps_for_09 = *EpsilonForRhoBeta(0.9);
  Setting settings[] = {
      {"weak noise (z = 0.05)", 0.05},
      {"rho_beta = 0.9 calibration",
       *NoiseMultiplierForTargetEpsilon(eps_for_09, delta, rounds)},
  };

  std::printf("federated learning: 3 honest clients + 1 victim, %zu "
              "rounds\n\n",
              rounds);
  for (const Setting& setting : settings) {
    FederatedConfig config;
    config.rounds = rounds;
    config.learning_rate = 0.005;
    config.clip_norm = 3.0;
    config.noise_multiplier = setting.noise_multiplier;
    config.sensitivity_mode = SensitivityMode::kLocalHat;
    Rng run_rng(43);
    auto result = RunFederatedTraining(architecture, shards, victim_d,
                                       victim_d_prime, /*victim_has_d=*/true,
                                       config, run_rng);
    if (!result.ok()) {
      std::fprintf(stderr, "federated run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s (z = %.3f):\n", setting.label,
                setting.noise_multiplier);
    std::printf("  adversary belief in D_v per round:");
    for (size_t i = 0; i < result->beliefs.size(); i += 5) {
      std::printf(" %.3f", result->beliefs[i]);
    }
    std::printf(" ... final %.3f\n", result->beliefs.back());
    std::printf("  adversary identifies the record: %s\n\n",
                result->adversary_says_victim_d ? "YES (privacy breach)"
                                                : "no");
  }
  std::printf("takeaway: without DP calibration a curious participant "
              "identifies the victim's record\n"
              "from the aggregate updates alone; calibrating to rho_beta = "
              "0.9 keeps its certainty bounded.\n");
  return 0;
}
