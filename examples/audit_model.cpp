// audit_model: full auditing workflow on the Purchase-100-like task
// (Section 6.4) — train at a target epsilon under both sensitivity modes
// and report how much of the privacy budget was factually spent.
//
//   ./audit_model [epsilon] [reps]   (defaults: 2.2, 20)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/auditor.h"
#include "core/experiment.h"
#include "data/dataset_sensitivity.h"
#include "data/synthetic_purchase.h"
#include "dp/privacy_params.h"
#include "dp/rdp_accountant.h"
#include "nn/metrics.h"
#include "nn/network.h"
#include "util/table_writer.h"

using namespace dpaudit;

int main(int argc, char** argv) {
  double epsilon = argc > 1 ? std::strtod(argv[1], nullptr) : 2.2;
  size_t reps = argc > 2 ? static_cast<size_t>(std::strtol(argv[2], nullptr, 10)) : 20;
  const size_t epochs = 30;
  const size_t n = 40;
  const double delta = 0.01;

  // Build the task: binary purchase baskets with Hamming dissimilarity.
  SyntheticPurchaseConfig data_config;
  data_config.num_classes = 30;
  SyntheticPurchaseGenerator generator(data_config, 11);
  Rng rng(13);
  Dataset all = generator.Generate(2 * n, rng);
  Dataset pool;
  Dataset d = all.SampleSplit(n, rng, &pool);
  Dataset test = generator.Generate(n, rng);
  auto candidates = RankBoundedCandidates(d, pool, HammingDistance);
  Dataset d_prime = MakeBoundedNeighbor(d, pool, candidates->front());
  Network architecture =
      BuildPurchaseNetwork(data_config.num_features, 48,
                           data_config.num_classes);

  double z = *NoiseMultiplierForTargetEpsilon(epsilon, delta, epochs);
  std::printf("auditing DPSGD at target epsilon = %.2f (delta = %.3f, "
              "k = %zu, z = %.3f, %zu repetitions)\n\n",
              epsilon, delta, epochs, z, reps);

  TableWriter table({"Delta f", "Adv^DI,Gau", "max beta_k",
                     "eps' (sens.)", "eps' (belief)", "eps' (adv.)",
                     "verdict"});
  for (SensitivityMode mode :
       {SensitivityMode::kLocalHat, SensitivityMode::kGlobal}) {
    DiExperimentConfig config;
    config.dpsgd.epochs = epochs;
    config.dpsgd.learning_rate = 0.005;
    config.dpsgd.clip_norm = 3.0;
    config.dpsgd.noise_multiplier = z;
    config.dpsgd.sensitivity_mode = mode;
    config.dpsgd.neighbor_mode = NeighborMode::kBounded;
    config.repetitions = reps;
    config.seed = 21;
    auto summary = RunDiExperiment(architecture, d, d_prime, config);
    if (!summary.ok()) {
      std::cerr << "experiment failed: " << summary.status() << "\n";
      return 1;
    }
    auto report = AuditExperiment(*summary, delta);
    double eps_sens = report->epsilon_from_sensitivities;
    const char* verdict = eps_sens > 0.9 * epsilon
                              ? "tight: budget factually spent"
                              : "loose: utility left on the table";
    table.AddRow({SensitivityModeToString(mode),
                  TableWriter::Cell(summary->EmpiricalAdvantage(), 3),
                  TableWriter::Cell(summary->MaxBeliefInD(), 3),
                  TableWriter::Cell(eps_sens, 3),
                  TableWriter::Cell(report->epsilon_from_belief, 3),
                  TableWriter::Cell(report->epsilon_from_advantage, 3),
                  verdict});
  }
  table.RenderText(std::cout);

  // Utility of one concrete trained model under the local-sensitivity plan.
  {
    DpSgdConfig train_config;
    train_config.epochs = epochs;
    train_config.learning_rate = 0.005;
    train_config.clip_norm = 3.0;
    train_config.noise_multiplier = z;
    train_config.sensitivity_mode = SensitivityMode::kLocalHat;
    Rng train_rng(47);
    Network init = architecture.Clone();
    init.Initialize(train_rng);
    auto trained = RunDpSgd(init, d, d_prime, /*train_on_d=*/true,
                            train_config, train_rng);
    if (trained.ok()) {
      ConfusionMatrix confusion = EvaluateConfusion(
          trained->model, test.inputs, test.labels, data_config.num_classes);
      std::printf("\nutility of one LS-trained model: test accuracy %.3f, "
                  "macro F1 %.3f (%zu classes)\n",
                  confusion.Accuracy(), confusion.MacroF1(),
                  confusion.num_classes());
    }
  }

  std::printf("\ninterpretation: with Delta f = LS the perturbation matches "
              "the factual worst-case\n"
              "gradient difference, so eps' reaches the target; with the "
              "global clip bound 2C the\n"
              "mechanism over-noises and eps' (hence the factual risk) "
              "stays below target.\n");
  return 0;
}
