// lineup_demo: differential identifiability beyond the two-world DP setting
// (Lee & Clifton's original formulation, Section 2.3 of the paper).
//
// A hospital publishes a DPSGD-trained model. An investigator knows the
// training data was one of |Psi| candidate rosters differing in which
// patient participated. How confidently can the DP adversary pick the true
// roster from the released gradient trail, and how does DP calibration
// change that?
//
//   ./lineup_demo [num_worlds]   (default 5)

#include <cstdio>
#include <cstdlib>

#include "core/multi_world.h"
#include "core/scores.h"
#include "data/dataset_sensitivity.h"
#include "data/synthetic_purchase.h"
#include "dp/rdp_accountant.h"
#include "nn/network.h"

using namespace dpaudit;

int main(int argc, char** argv) {
  size_t num_worlds =
      argc > 1 ? static_cast<size_t>(std::strtol(argv[1], nullptr, 10)) : 5;
  if (num_worlds < 2) num_worlds = 2;
  const size_t n = 24;
  const size_t epochs = 20;
  const double delta = 1.0 / static_cast<double>(n);

  SyntheticPurchaseConfig config;
  config.num_classes = 20;
  SyntheticPurchaseGenerator generator(config, 5);
  Rng rng(9);
  Dataset all = generator.Generate(2 * n, rng);
  Dataset pool;
  Dataset base = all.SampleSplit(n, rng, &pool);

  // Candidate rosters: the base roster plus variants where patient 0 is
  // replaced by successively different pool members.
  auto ranked = RankBoundedCandidates(base, pool, HammingDistance);
  std::vector<Dataset> worlds;
  worlds.push_back(base);
  for (size_t w = 1; w < num_worlds; ++w) {
    size_t pick = (w - 1) * (ranked->size() / num_worlds);
    worlds.push_back(MakeBoundedNeighbor(base, pool, (*ranked)[pick]));
  }
  Network architecture =
      BuildPurchaseNetwork(config.num_features, 32, config.num_classes);

  std::printf("lineup of %zu candidate rosters, |D| = %zu, k = %zu steps\n\n",
              num_worlds, n, epochs);

  struct Setting {
    const char* label;
    double z;
  };
  const double calibrated = *NoiseMultiplierForTargetEpsilon(
      *EpsilonForRhoBeta(0.9), delta, epochs);
  const Setting settings[] = {
      {"no meaningful DP (z = 0.1)", 0.1},
      {"calibrated to rho_beta = 0.9", calibrated},
  };
  for (const Setting& setting : settings) {
    MultiWorldExperimentConfig experiment;
    experiment.dpsgd.epochs = epochs;
    experiment.dpsgd.learning_rate = 0.005;
    experiment.dpsgd.clip_norm = 3.0;
    experiment.dpsgd.noise_multiplier = setting.z;
    experiment.repetitions = 15;
    experiment.seed = 77;
    auto summary = RunMultiWorldExperiment(architecture, worlds,
                                           /*true_world=*/0, experiment);
    if (!summary.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   summary.status().ToString().c_str());
      return 1;
    }
    std::printf("%s:\n", setting.label);
    std::printf("  identification rate : %.2f (chance %.2f)\n",
                summary->identification_rate,
                1.0 / static_cast<double>(num_worlds));
    std::printf("  mean belief in truth: %.3f\n", summary->mean_true_belief);
    std::printf("  max belief in truth : %.3f\n\n", summary->max_true_belief);
  }
  std::printf("takeaway: without calibration the investigator names the "
              "roster almost every time;\nwith rho_beta = 0.9 noise the "
              "posterior flattens toward uniform over the lineup.\n");
  return 0;
}
