// Quickstart: choose epsilon from an identifiability requirement, train a
// model with DPSGD, and audit the empirical privacy loss with the
// implemented DP adversary.
//
//   ./quickstart [rho_beta]   (default 0.9)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/auditor.h"
#include "core/experiment.h"
#include "core/scores.h"
#include "data/dataset_sensitivity.h"
#include "data/synthetic_mnist.h"
#include "dp/privacy_params.h"
#include "dp/rdp_accountant.h"
#include "nn/network.h"

using namespace dpaudit;

int main(int argc, char** argv) {
  // 1. The data scientist's input: "an adversary must never be more than
  //    90% certain that any individual's record was in the training data".
  double rho_beta = argc > 1 ? std::strtod(argv[1], nullptr) : 0.9;
  const size_t epochs = 30;

  StatusOr<double> epsilon = EpsilonForRhoBeta(rho_beta);
  if (!epsilon.ok()) {
    std::cerr << "invalid rho_beta: " << epsilon.status() << "\n";
    return 1;
  }

  // 2. Build a small image-classification task. delta ~ 1/|D|.
  const size_t n = 30;
  const double delta = 1.0 / static_cast<double>(n);
  Rng rng(7);
  SyntheticMnistConfig data_config;
  Dataset all = GenerateSyntheticMnist(2 * n, data_config, rng);
  Dataset pool;
  Dataset d = all.SampleSplit(n, rng, &pool);

  // 3. Identify the worst-case neighboring dataset D' via the dataset
  //    sensitivity heuristic (Definition 6) with SSIM dissimilarity.
  auto candidates = RankBoundedCandidates(d, pool, NegativeSsim);
  Dataset d_prime = MakeBoundedNeighbor(d, pool, candidates->front());

  // 4. Calibrate the per-step noise through the RDP accountant so the
  //    30-step composition spends exactly epsilon.
  double z = *NoiseMultiplierForTargetEpsilon(*epsilon, delta, epochs);

  std::printf("identifiability bound rho_beta = %.3f\n", rho_beta);
  std::printf("  -> total epsilon             = %.3f (Eq. 10)\n", *epsilon);
  std::printf("  -> rho_alpha (Theorem 2)     = %.3f\n",
              *RhoAlpha(*epsilon, delta));
  std::printf("  -> per-step noise multiplier = %.3f (RDP, k = %zu)\n", z,
              epochs);

  // 5. Train with DPSGD while the DP adversary A_DI watches every release,
  //    repeated for statistical stability.
  DiExperimentConfig config;
  config.dpsgd.epochs = epochs;
  config.dpsgd.learning_rate = 0.005;
  config.dpsgd.clip_norm = 3.0;
  config.dpsgd.noise_multiplier = z;
  config.dpsgd.sensitivity_mode = SensitivityMode::kLocalHat;
  config.dpsgd.neighbor_mode = NeighborMode::kBounded;
  config.repetitions = 20;
  config.seed = 42;

  Network architecture = BuildMnistNetwork(data_config.image_size, 4, 8);
  auto summary = RunDiExperiment(architecture, d, d_prime, config);
  if (!summary.ok()) {
    std::cerr << "experiment failed: " << summary.status() << "\n";
    return 1;
  }

  // 6. Audit: three estimates of the empirical privacy loss epsilon'.
  auto report = AuditExperiment(*summary, delta);
  std::printf("\naudit over %zu training runs:\n", summary->trials.size());
  std::printf("  empirical advantage          = %.3f (target rho_alpha "
              "%.3f)\n",
              summary->EmpiricalAdvantage(), *RhoAlpha(*epsilon, delta));
  std::printf("  max posterior belief         = %.3f (bound rho_beta "
              "%.3f)\n",
              summary->MaxBeliefInD(), rho_beta);
  std::printf("  eps' from sensitivities      = %.3f\n",
              report->epsilon_from_sensitivities);
  std::printf("  eps' from max belief         = %.3f\n",
              report->epsilon_from_belief);
  std::printf("  eps' from advantage          = %.3f\n",
              report->epsilon_from_advantage);
  std::printf("  target epsilon               = %.3f\n", *epsilon);
  std::printf("\nfraction of runs exceeding rho_beta: %.3f (must stay near "
              "delta = %.3f)\n",
              summary->EmpiricalDelta(rho_beta), delta);
  return 0;
}
