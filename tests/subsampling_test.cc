#include "core/subsampling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/adversary.h"
#include "core/scores.h"
#include "dp/rdp_accountant.h"
#include "nn/optimizer.h"
#include "tests/test_helpers.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::TinyNetwork;

// ---------- subsampled RDP accountant ----------

TEST(SampledGaussianRdpTest, ReducesToGaussianAtFullSampling) {
  for (size_t alpha : {2, 4, 16}) {
    EXPECT_NEAR(SampledGaussianRdpEpsilon(alpha, 1.0, 1.3),
                GaussianRdpEpsilonFromNoiseMultiplier(
                    static_cast<double>(alpha), 1.3),
                1e-12);
  }
}

TEST(SampledGaussianRdpTest, AmplificationBySubsampling) {
  // q < 1 must cost strictly less than q = 1 at every integer order.
  for (size_t alpha : {2, 3, 8, 32}) {
    double full = SampledGaussianRdpEpsilon(alpha, 1.0, 1.5);
    double half = SampledGaussianRdpEpsilon(alpha, 0.5, 1.5);
    double tenth = SampledGaussianRdpEpsilon(alpha, 0.1, 1.5);
    EXPECT_LT(half, full);
    EXPECT_LT(tenth, half);
    EXPECT_GE(tenth, 0.0);
  }
}

TEST(SampledGaussianRdpTest, MatchesManualAlphaTwoComputation) {
  // alpha = 2: eps = ln((1-q)^2 + 2q(1-q) + q^2 e^{1/z^2}).
  const double q = 0.3;
  const double z = 1.7;
  double manual = std::log((1 - q) * (1 - q) + 2 * q * (1 - q) +
                           q * q * std::exp(1.0 / (z * z)));
  EXPECT_NEAR(SampledGaussianRdpEpsilon(2, q, z), manual, 1e-12);
}

TEST(SampledGaussianRdpTest, SmallQScalesQuadratically) {
  // For small q the leading term is ~ alpha q^2 / z^2-ish: quartering q
  // should shrink eps by roughly 16x.
  double e1 = SampledGaussianRdpEpsilon(4, 0.04, 2.0);
  double e2 = SampledGaussianRdpEpsilon(4, 0.01, 2.0);
  EXPECT_NEAR(e1 / e2, 16.0, 3.0);
}

TEST(RdpAccountantTest, SampledStepsExcludeFractionalOrders) {
  RdpAccountant accountant;
  accountant.AddSampledGaussianSteps(0.2, 1.5, 10);
  // Conversion still works (integer orders remain finite).
  auto eps = accountant.GetEpsilon(1e-5);
  ASSERT_TRUE(eps.ok());
  EXPECT_TRUE(std::isfinite(*eps));
  // The optimal order must be an integer.
  double order = *accountant.GetOptimalOrder(1e-5);
  EXPECT_NEAR(order, std::round(order), 1e-9);
}

TEST(RdpAccountantTest, SubsamplingSavesEpsilonOverFullBatch) {
  const double delta = 1e-5;
  RdpAccountant full;
  full.AddGaussianSteps(1.5, 100);
  RdpAccountant sampled;
  sampled.AddSampledGaussianSteps(0.1, 1.5, 100);
  EXPECT_LT(*sampled.GetEpsilon(delta), *full.GetEpsilon(delta));
}

TEST(SampledCalibrationTest, BisectionHitsTarget) {
  const double target = 2.2;
  const double delta = 1e-4;
  const size_t steps = 50;
  const double q = 0.25;
  auto z = SampledNoiseMultiplierForTargetEpsilon(target, delta, steps, q);
  ASSERT_TRUE(z.ok()) << z.status();
  double achieved =
      *ComposedEpsilonForSampledNoiseMultiplier(q, *z, delta, steps);
  EXPECT_NEAR(achieved, target, 1e-5 * target);
  // Subsampling lets the same budget run with less noise than full batch.
  double z_full = *NoiseMultiplierForTargetEpsilon(target, delta, steps);
  EXPECT_LT(*z, z_full);
}

TEST(SampledCalibrationTest, RejectsInvalid) {
  EXPECT_FALSE(
      SampledNoiseMultiplierForTargetEpsilon(1.0, 1e-4, 10, 0.0).ok());
  EXPECT_FALSE(
      SampledNoiseMultiplierForTargetEpsilon(1.0, 1e-4, 10, 1.5).ok());
  EXPECT_FALSE(
      ComposedEpsilonForSampledNoiseMultiplier(0.5, 0.0, 1e-4, 10).ok());
}

// ---------- subsampled DPSGD + mixture adversary ----------

SampledDpSgdConfig FastSampledConfig() {
  SampledDpSgdConfig config;
  config.steps = 8;
  config.learning_rate = 0.05;
  config.clip_norm = 1.0;
  config.noise_multiplier = 1.0;
  config.sampling_rate = 0.4;
  return config;
}

TEST(SampledDpSgdTest, ConfigValidation) {
  EXPECT_TRUE(FastSampledConfig().Validate().ok());
  SampledDpSgdConfig bad = FastSampledConfig();
  bad.sampling_rate = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad.sampling_rate = 1.2;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SampledDpSgdTest, RunsAndRecordsSampling) {
  Rng rng(1);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(12, rng);
  Rng run_rng(2);
  auto result = RunSampledDpSgd(net, d, /*differing_index=*/0,
                                /*train_on_d=*/true, FastSampledConfig(),
                                run_rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->differing_sampled.size(), 8u);
  EXPECT_EQ(result->sigmas.size(), 8u);
  for (double s : result->sigmas) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(SampledDpSgdTest, DifferingNeverSampledWhenTrainingOnDPrime) {
  Rng rng(3);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(12, rng);
  Rng run_rng(4);
  auto result = RunSampledDpSgd(net, d, 0, /*train_on_d=*/false,
                                FastSampledConfig(), run_rng);
  ASSERT_TRUE(result.ok());
  for (bool sampled : result->differing_sampled) EXPECT_FALSE(sampled);
}

TEST(SampledDpSgdTest, RejectsBadArguments) {
  Rng rng(5);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(4, rng);
  Rng run_rng(6);
  EXPECT_FALSE(
      RunSampledDpSgd(net, d, 99, true, FastSampledConfig(), run_rng).ok());
  Dataset tiny = BlobDataset(1, rng);
  EXPECT_FALSE(
      RunSampledDpSgd(net, tiny, 0, true, FastSampledConfig(), run_rng)
          .ok());
}

TEST(SampledDiAdversaryTest, MixtureBeliefMovesTowardTruth) {
  // Strong signal, deterministic evidence: released exactly at S + g1 with
  // small noise must push belief toward D; released at S toward D' (though
  // less decisively, since under D the record might simply not have been
  // sampled).
  SampledDiAdversary toward_d;
  std::vector<float> s = {0.0f, 0.0f};
  std::vector<float> g1 = {2.0f, 2.0f};
  toward_d.OnStep(0, s, g1, {2.0f, 2.0f}, /*sigma=*/0.2,
                  /*sampling_rate=*/0.5);
  EXPECT_GT(toward_d.FinalBeliefD(), 0.9);

  SampledDiAdversary toward_dprime;
  toward_dprime.OnStep(0, s, g1, {0.0f, 0.0f}, 0.2, 0.5);
  EXPECT_LT(toward_dprime.FinalBeliefD(), 0.5);
  // But bounded below: belief cannot drop past (1-q) prior odds ratio.
  EXPECT_GT(toward_dprime.FinalBeliefD(), 0.2);
}

TEST(SampledDiAdversaryTest, BeliefAgainstDBoundedByMissProbability) {
  // Under the mixture, log p_D >= log(1-q) + log p_D', so one observation
  // can push the belief no lower than sigmoid(log(1-q)) = (1-q)/(2-q).
  const double q = 0.3;
  SampledDiAdversary adversary;
  adversary.OnStep(0, {0.0f}, {5.0f}, {0.0f}, 0.1, q);
  double floor = (1.0 - q) / (2.0 - q);
  EXPECT_GE(adversary.FinalBeliefD(), floor - 1e-9);
  EXPECT_NEAR(adversary.FinalBeliefD(), floor, 0.01);
}

TEST(SampledDiAdversaryTest, FullSamplingMatchesBinaryAdversary) {
  // At q = 1 the mixture collapses: the sampled adversary must produce the
  // same belief as the two-hypothesis tracker on the same evidence.
  std::vector<float> s = {0.5f, -0.25f};
  std::vector<float> g1 = {1.0f, 0.5f};
  std::vector<float> released = {1.2f, 0.1f};
  const double sigma = 0.8;

  SampledDiAdversary sampled;
  sampled.OnStep(0, s, g1, released, sigma, /*sampling_rate=*/1.0);

  std::vector<float> with = s;
  for (size_t i = 0; i < with.size(); ++i) with[i] += g1[i];
  DiAdversary binary;
  binary.OnStep(0, with, s, released, sigma);

  EXPECT_NEAR(sampled.FinalBeliefD(), binary.FinalBeliefD(), 1e-12);
}

TEST(SampledDpSgdTest, OptimizerChoiceIsHonored) {
  Rng rng(31);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(10, rng);
  SampledDpSgdConfig config = FastSampledConfig();
  auto run = [&](OptimizerKind kind) {
    SampledDpSgdConfig c = config;
    c.optimizer = kind;
    Rng run_rng(32);
    auto result = RunSampledDpSgd(net, d, 0, true, c, run_rng);
    EXPECT_TRUE(result.ok());
    return result->model.FlatParams();
  };
  EXPECT_NE(run(OptimizerKind::kSgd), run(OptimizerKind::kAdam));
  EXPECT_EQ(run(OptimizerKind::kAdam), run(OptimizerKind::kAdam));
}

TEST(SampledExperimentTest, BeliefBoundHoldsUnderSubsampledAccounting) {
  Rng rng(7);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(12, rng);
  const double rho_beta = 0.9;
  const double delta = 0.05;
  SampledDpSgdConfig config = FastSampledConfig();
  config.steps = 10;
  double epsilon = *EpsilonForRhoBeta(rho_beta);
  config.noise_multiplier = *SampledNoiseMultiplierForTargetEpsilon(
      epsilon, delta, config.steps, config.sampling_rate);
  auto summary =
      RunSampledDiExperiment(net, d, 0, config, /*repetitions=*/200,
                             /*seed=*/11);
  ASSERT_TRUE(summary.ok()) << summary.status();
  // Theorem 1 with the subsampled accountant's epsilon: violations of the
  // belief bound are rare (delta-scale; allow 3x sampling slack).
  EXPECT_LE(summary->FractionAboveBelief(rho_beta), 3.0 * delta);
}

TEST(SampledExperimentTest, LowerSamplingRateLowersAdvantage) {
  Rng rng(8);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(12, rng);
  SampledDpSgdConfig config = FastSampledConfig();
  config.noise_multiplier = 0.5;  // weak noise: sampling does the protecting
  config.sampling_rate = 1.0;
  auto full = RunSampledDiExperiment(net, d, 0, config, 120, 13);
  config.sampling_rate = 0.1;
  auto sparse = RunSampledDiExperiment(net, d, 0, config, 120, 13);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sparse.ok());
  EXPECT_GT(full->EmpiricalAdvantage(),
            sparse->EmpiricalAdvantage() + 0.05);
}

TEST(SampledExperimentTest, DeterministicAcrossThreadCounts) {
  Rng rng(9);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(8, rng);
  SampledDpSgdConfig config = FastSampledConfig();
  config.steps = 4;
  auto serial = RunSampledDiExperiment(net, d, 0, config, 12, 17, 1);
  auto parallel = RunSampledDiExperiment(net, d, 0, config, 12, 17, 8);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->final_beliefs, parallel->final_beliefs);
  EXPECT_EQ(serial->decisions_d, parallel->decisions_d);
}

// Regression test: decisions_d used to be std::vector<bool>, whose bit
// packing made the per-repetition slot writes in RunSampledDiExperiment race
// on shared words (ThreadSanitizer report; neighboring repetitions could
// lose each other's decisions). The element type must stay byte-addressable
// so concurrent writes to distinct slots are safe; this hammers exactly that
// write pattern and fails under TSan (and statistically without it) if the
// packed type comes back.
TEST(SampledExperimentTest, ConcurrentDecisionSlotWritesAreLossless) {
  constexpr size_t kSlots = 4096;
  for (int round = 0; round < 4; ++round) {
    SampledExperimentSummary summary;
    summary.decisions_d.assign(kSlots, 0);
    ThreadPool::ParallelFor(kSlots, 8, [&summary](size_t i) {
      summary.decisions_d[i] = 1;
    });
    size_t written = 0;
    for (uint8_t d : summary.decisions_d) written += d;
    ASSERT_EQ(written, kSlots) << "lost concurrent slot writes";
  }
}

}  // namespace
}  // namespace dpaudit
