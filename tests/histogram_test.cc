#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dpaudit {
namespace {

TEST(HistogramTest, BinsValues) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);   // bin 0
  h.Add(0.3);   // bin 1
  h.Add(0.3);   // bin 1
  h.Add(0.99);  // bin 3
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(5.0);
  h.Add(1.0);  // exactly hi clamps into last bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, CentersAndFractions) {
  Histogram h(0.0, 2.0, 2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.0);  // empty histogram
  h.AddAll({0.1, 0.2, 1.5, 1.6});
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1), 0.5);
}

TEST(HistogramTest, RenderTextContainsBars) {
  Histogram h(0.0, 1.0, 2);
  h.AddAll({0.1, 0.1, 0.9});
  std::ostringstream os;
  h.RenderText(os, 10);
  std::string text = os.str();
  EXPECT_NE(text.find("##########"), std::string::npos);  // peak bin
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(HistogramDeathTest, InvalidConstructionDies) {
  EXPECT_DEATH(Histogram(1.0, 0.0, 4), "CHECK failed");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "CHECK failed");
}

TEST(HistogramTest, MergeFromAddsCounts) {
  Histogram a(0.0, 1.0, 4);
  a.AddAll({0.1, 0.3});
  Histogram b(0.0, 1.0, 4);
  b.AddAll({0.3, 0.9});
  a.MergeFrom(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bin_count(0), 1u);
  EXPECT_EQ(a.bin_count(1), 2u);
  EXPECT_EQ(a.bin_count(3), 1u);
  EXPECT_EQ(b.total(), 2u);  // source unchanged
}

TEST(HistogramDeathTest, MergeFromRejectsMismatchedShape) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 2.0, 4);
  EXPECT_DEATH(a.MergeFrom(b), "CHECK failed");
  Histogram c(0.0, 1.0, 8);
  EXPECT_DEATH(a.MergeFrom(c), "CHECK failed");
}

TEST(HistogramTest, ApproxQuantileInterpolatesWithinBin) {
  // 100 values uniform over [0, 1): the q-quantile estimate should track q.
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.Add((i + 0.5) / 100.0);
  EXPECT_NEAR(h.ApproxQuantile(0.5), 0.5, 0.1);
  EXPECT_NEAR(h.ApproxQuantile(0.9), 0.9, 0.1);
  EXPECT_LE(h.ApproxQuantile(0.1), h.ApproxQuantile(0.9));
}

TEST(HistogramTest, ApproxQuantileEdgeCases) {
  Histogram empty(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(empty.ApproxQuantile(0.5), 0.0);  // lo() for empty
  Histogram point(0.0, 1.0, 4);
  point.Add(0.6);  // single value lands in bin [0.5, 0.75)
  double q = point.ApproxQuantile(0.5);
  EXPECT_GE(q, 0.5);
  EXPECT_LE(q, 0.75);
}

}  // namespace
}  // namespace dpaudit
