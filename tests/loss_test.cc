#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dpaudit {
namespace {

TEST(SoftmaxProbabilitiesTest, UniformLogits) {
  Tensor p = SoftmaxProbabilities(Tensor({4}, {1.0f, 1.0f, 1.0f, 1.0f}));
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(p[i], 0.25, 1e-6);
}

TEST(SoftmaxProbabilitiesTest, InvariantToShift) {
  Tensor a = SoftmaxProbabilities(Tensor({3}, {1.0f, 2.0f, 3.0f}));
  Tensor b = SoftmaxProbabilities(Tensor({3}, {101.0f, 102.0f, 103.0f}));
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(SoftmaxCrossEntropyTest, KnownValue) {
  // Uniform logits over 10 classes: loss = ln(10).
  Tensor logits({10});
  LossResult r = SoftmaxCrossEntropy(logits, 3);
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectHasLowLoss) {
  Tensor logits({3}, {10.0f, -10.0f, -10.0f});
  EXPECT_LT(SoftmaxCrossEntropy(logits, 0).loss, 1e-4);
  EXPECT_GT(SoftmaxCrossEntropy(logits, 1).loss, 10.0);
}

TEST(SoftmaxCrossEntropyTest, GradientIsProbsMinusOneHot) {
  Tensor logits({3}, {1.0f, 2.0f, 0.5f});
  Tensor probs = SoftmaxProbabilities(logits);
  LossResult r = SoftmaxCrossEntropy(logits, 1);
  EXPECT_NEAR(r.grad_logits[0], probs[0], 1e-6);
  EXPECT_NEAR(r.grad_logits[1], probs[1] - 1.0, 1e-6);
  EXPECT_NEAR(r.grad_logits[2], probs[2], 1e-6);
}

TEST(SoftmaxCrossEntropyTest, GradientSumsToZero) {
  Tensor logits({5}, {0.3f, -1.2f, 2.0f, 0.0f, 1.1f});
  LossResult r = SoftmaxCrossEntropy(logits, 4);
  double sum = 0.0;
  for (size_t i = 0; i < 5; ++i) sum += r.grad_logits[i];
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, NumericGradientAgrees) {
  Tensor logits({4}, {0.2f, -0.5f, 1.5f, 0.1f});
  LossResult r = SoftmaxCrossEntropy(logits, 2);
  const double h = 1e-4;
  for (size_t i = 0; i < 4; ++i) {
    Tensor plus = logits;
    plus[i] += static_cast<float>(h);
    Tensor minus = logits;
    minus[i] -= static_cast<float>(h);
    double numeric = (SoftmaxCrossEntropy(plus, 2).loss -
                      SoftmaxCrossEntropy(minus, 2).loss) /
                     (2.0 * h);
    EXPECT_NEAR(r.grad_logits[i], numeric, 1e-4);
  }
}

TEST(SoftmaxCrossEntropyTest, StableForExtremeLogits) {
  Tensor logits({2}, {1000.0f, -1000.0f});
  LossResult r = SoftmaxCrossEntropy(logits, 1);
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, 2000.0, 1.0);
}

}  // namespace
}  // namespace dpaudit
