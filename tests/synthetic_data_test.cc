#include <gtest/gtest.h>

#include <set>

#include "data/dissimilarity.h"
#include "data/synthetic_mnist.h"
#include "data/synthetic_purchase.h"
#include "stats/summary.h"

namespace dpaudit {
namespace {

// ---------- synthetic MNIST ----------

TEST(SyntheticMnistTest, ShapeAndRange) {
  SyntheticMnistConfig config;
  Rng rng(1);
  Tensor image = RenderSyntheticDigit(7, config, rng);
  ASSERT_EQ(image.rank(), 3u);
  EXPECT_EQ(image.dim(0), 1u);
  EXPECT_EQ(image.dim(1), 28u);
  EXPECT_EQ(image.dim(2), 28u);
  for (float v : image.vec()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticMnistTest, DigitsHaveInk) {
  SyntheticMnistConfig config;
  Rng rng(2);
  for (size_t digit = 0; digit < 10; ++digit) {
    Tensor image = RenderSyntheticDigit(digit, config, rng);
    EXPECT_GT(image.Sum(), 5.0) << "digit " << digit << " rendered blank";
  }
}

TEST(SyntheticMnistTest, DeterministicGivenSeed) {
  SyntheticMnistConfig config;
  Rng a(3);
  Rng b(3);
  Tensor x = RenderSyntheticDigit(4, config, a);
  Tensor y = RenderSyntheticDigit(4, config, b);
  EXPECT_TRUE(x == y);
}

TEST(SyntheticMnistTest, JitterMakesSamplesDiffer) {
  SyntheticMnistConfig config;
  Rng rng(4);
  Tensor x = RenderSyntheticDigit(4, config, rng);
  Tensor y = RenderSyntheticDigit(4, config, rng);
  EXPECT_FALSE(x == y);
  // Still structurally similar: same digit class.
  EXPECT_GT(Ssim(x, y), 0.3);
}

TEST(SyntheticMnistTest, IntraClassMoreSimilarThanInterClass) {
  SyntheticMnistConfig config;
  Rng rng(5);
  RunningSummary intra;
  RunningSummary inter;
  for (int rep = 0; rep < 20; ++rep) {
    Tensor one_a = RenderSyntheticDigit(1, config, rng);
    Tensor one_b = RenderSyntheticDigit(1, config, rng);
    Tensor eight = RenderSyntheticDigit(8, config, rng);
    intra.Add(Ssim(one_a, one_b));
    inter.Add(Ssim(one_a, eight));
  }
  EXPECT_GT(intra.mean(), inter.mean());
}

TEST(SyntheticMnistTest, GenerateIsBalancedAndShuffled) {
  SyntheticMnistConfig config;
  Rng rng(6);
  Dataset data = GenerateSyntheticMnist(100, config, rng);
  ASSERT_EQ(data.size(), 100u);
  std::vector<size_t> counts(10, 0);
  for (size_t label : data.labels) {
    ASSERT_LT(label, 10u);
    ++counts[label];
  }
  for (size_t c : counts) EXPECT_EQ(c, 10u);
  // Shuffled: the first ten labels should not be 0..9 in order.
  bool in_order = true;
  for (size_t i = 0; i < 10; ++i) {
    if (data.labels[i] != i) in_order = false;
  }
  EXPECT_FALSE(in_order);
}

// ---------- synthetic Purchase-100 ----------

TEST(SyntheticPurchaseTest, BinaryFeatures) {
  SyntheticPurchaseGenerator generator(SyntheticPurchaseConfig{}, 11);
  Rng rng(7);
  Tensor record = generator.Sample(42, rng);
  ASSERT_EQ(record.size(), 600u);
  for (float v : record.vec()) {
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
}

TEST(SyntheticPurchaseTest, PrototypesFixedBySeed) {
  SyntheticPurchaseConfig config;
  SyntheticPurchaseGenerator g1(config, 11);
  SyntheticPurchaseGenerator g2(config, 11);
  Rng a(8);
  Rng b(8);
  EXPECT_TRUE(g1.Sample(5, a) == g2.Sample(5, b));
}

TEST(SyntheticPurchaseTest, IntraClassCloserInHamming) {
  SyntheticPurchaseGenerator generator(SyntheticPurchaseConfig{}, 11);
  Rng rng(9);
  RunningSummary intra;
  RunningSummary inter;
  for (int rep = 0; rep < 20; ++rep) {
    Tensor a1 = generator.Sample(3, rng);
    Tensor a2 = generator.Sample(3, rng);
    Tensor b = generator.Sample(60, rng);
    intra.Add(HammingDistance(a1, a2));
    inter.Add(HammingDistance(a1, b));
  }
  EXPECT_LT(intra.mean(), inter.mean());
}

TEST(SyntheticPurchaseTest, GenerateBalancedOverHundredClasses) {
  SyntheticPurchaseGenerator generator(SyntheticPurchaseConfig{}, 11);
  Rng rng(10);
  Dataset data = generator.Generate(200, rng);
  ASSERT_EQ(data.size(), 200u);
  std::vector<size_t> counts(100, 0);
  for (size_t label : data.labels) {
    ASSERT_LT(label, 100u);
    ++counts[label];
  }
  for (size_t c : counts) EXPECT_EQ(c, 2u);
}

TEST(SyntheticPurchaseTest, FlipProbabilityControlsNoise) {
  SyntheticPurchaseConfig clean;
  clean.flip_probability = 0.0;
  SyntheticPurchaseGenerator generator(clean, 11);
  Rng rng(12);
  Tensor a = generator.Sample(7, rng);
  Tensor b = generator.Sample(7, rng);
  EXPECT_DOUBLE_EQ(HammingDistance(a, b), 0.0);  // exact prototype copies
}

}  // namespace
}  // namespace dpaudit
