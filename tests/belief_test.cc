#include "core/belief.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/scores.h"
#include "util/random.h"

namespace dpaudit {
namespace {

TEST(BeliefTrackerTest, StartsAtPrior) {
  PosteriorBeliefTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.belief_d(), 0.5);
  EXPECT_EQ(tracker.steps(), 0u);
  EXPECT_EQ(tracker.history().size(), 1u);
  PosteriorBeliefTracker biased(0.8);
  EXPECT_NEAR(biased.belief_d(), 0.8, 1e-12);
}

TEST(BeliefTrackerTest, EvidenceForDRaisesBelief) {
  PosteriorBeliefTracker tracker;
  tracker.Observe(/*log_density_d=*/-1.0, /*log_density_dprime=*/-2.0);
  EXPECT_GT(tracker.belief_d(), 0.5);
  EXPECT_TRUE(tracker.DecideD());
}

TEST(BeliefTrackerTest, EvidenceAgainstDLowersBelief) {
  PosteriorBeliefTracker tracker;
  tracker.Observe(-3.0, -1.0);
  EXPECT_LT(tracker.belief_d(), 0.5);
  EXPECT_FALSE(tracker.DecideD());
}

TEST(BeliefTrackerTest, EqualEvidenceIsNeutral) {
  PosteriorBeliefTracker tracker;
  tracker.Observe(-1.5, -1.5);
  EXPECT_DOUBLE_EQ(tracker.belief_d(), 0.5);
}

TEST(BeliefTrackerTest, HistoryGrowsPerObservation) {
  PosteriorBeliefTracker tracker;
  for (int i = 0; i < 5; ++i) tracker.Observe(-1.0, -1.1);
  EXPECT_EQ(tracker.steps(), 5u);
  EXPECT_EQ(tracker.history().size(), 6u);
  // Monotone when every observation favors D.
  for (size_t i = 1; i < tracker.history().size(); ++i) {
    EXPECT_GT(tracker.history()[i], tracker.history()[i - 1]);
  }
}

// Lemma 1: the tracker's sequential update must equal the direct product
// formula beta_k = 1 / (1 + prod p'_i / prod p_i).
TEST(BeliefTrackerTest, MatchesLemmaOneProductForm) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    PosteriorBeliefTracker tracker;
    double log_prod_p = 0.0;
    double log_prod_pprime = 0.0;
    int k = 1 + static_cast<int>(rng.UniformInt(10));
    for (int i = 0; i < k; ++i) {
      double lp = -rng.Uniform(0.0, 5.0);
      double lpp = -rng.Uniform(0.0, 5.0);
      tracker.Observe(lp, lpp);
      log_prod_p += lp;
      log_prod_pprime += lpp;
    }
    double direct =
        1.0 / (1.0 + std::exp(log_prod_pprime - log_prod_p));
    EXPECT_NEAR(tracker.belief_d(), direct, 1e-12);
  }
}

// Theorem 1: if every per-step log-likelihood ratio is bounded by eps_i (the
// eps-DP guarantee), the belief never exceeds rho_beta(sum eps_i).
TEST(BeliefTrackerTest, RespectsTheoremOneBound) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    PosteriorBeliefTracker tracker;
    double total_eps = 0.0;
    int k = 1 + static_cast<int>(rng.UniformInt(30));
    for (int i = 0; i < k; ++i) {
      double eps_i = rng.Uniform(0.0, 0.3);
      total_eps += eps_i;
      // Worst case: the ratio saturates the DP bound.
      tracker.Observe(eps_i, 0.0);
    }
    double bound = *RhoBeta(total_eps);
    EXPECT_LE(tracker.belief_d(), bound + 1e-12);
  }
}

TEST(BeliefTrackerTest, NonUniformPriorShiftsDecision) {
  PosteriorBeliefTracker skeptic(0.01);
  skeptic.Observe(-1.0, -2.0);  // one unit of evidence for D
  EXPECT_LT(skeptic.belief_d(), 0.5);  // prior dominates
  for (int i = 0; i < 10; ++i) skeptic.Observe(-1.0, -2.0);
  EXPECT_GT(skeptic.belief_d(), 0.5);  // evidence eventually wins
}

TEST(BeliefTrackerTest, ExtremeEvidenceSaturatesWithoutNan) {
  PosteriorBeliefTracker tracker;
  tracker.Observe(0.0, -1e6);
  EXPECT_NEAR(tracker.belief_d(), 1.0, 1e-12);
  tracker.Observe(-1e7, 0.0);
  EXPECT_NEAR(tracker.belief_d(), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(tracker.belief_d()));
}

TEST(SingleObservationBeliefTest, MatchesTrackerSingleStep) {
  PosteriorBeliefTracker tracker;
  tracker.Observe(-1.2, -3.4);
  EXPECT_NEAR(SingleObservationBelief(-1.2, -3.4), tracker.belief_d(),
              1e-12);
}

TEST(BeliefTrackerDeathTest, InvalidPriorDies) {
  EXPECT_DEATH(PosteriorBeliefTracker(0.0), "CHECK failed");
  EXPECT_DEATH(PosteriorBeliefTracker(1.0), "CHECK failed");
}

}  // namespace
}  // namespace dpaudit
