#include "util/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dpaudit {
namespace {

TEST(LogAddExpTest, MatchesDirectComputationInSafeRange) {
  EXPECT_NEAR(LogAddExp(0.0, 0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogAddExp(1.0, 2.0), std::log(std::exp(1.0) + std::exp(2.0)),
              1e-12);
}

TEST(LogAddExpTest, HandlesExtremeMagnitudes) {
  // exp(1000) overflows double, but logaddexp must not.
  EXPECT_NEAR(LogAddExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogAddExp(1000.0, -1000.0), 1000.0, 1e-9);
}

TEST(LogAddExpTest, NegativeInfinityIsIdentity) {
  double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(LogAddExp(ninf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(LogAddExp(3.0, ninf), 3.0);
}

TEST(LogSumExpTest, EmptyIsNegativeInfinity) {
  EXPECT_TRUE(std::isinf(LogSumExp({})));
  EXPECT_LT(LogSumExp({}), 0.0);
}

TEST(LogSumExpTest, MatchesPairwise) {
  std::vector<double> xs = {0.5, -1.0, 2.0, 0.0};
  double direct = 0.0;
  for (double x : xs) direct += std::exp(x);
  EXPECT_NEAR(LogSumExp(xs), std::log(direct), 1e-12);
}

class SigmoidLogitTest : public ::testing::TestWithParam<double> {};

TEST_P(SigmoidLogitTest, RoundTrip) {
  double x = GetParam();
  EXPECT_NEAR(Logit(Sigmoid(x)), x, 1e-9 * std::max(1.0, std::fabs(x)));
}

INSTANTIATE_TEST_SUITE_P(Range, SigmoidLogitTest,
                         ::testing::Values(-10.0, -2.2, -0.1, 0.0, 0.1, 1.1,
                                           2.2, 4.6, 10.0));

TEST(SigmoidLogitTest, RoundTripDegradesGracefullyNearSaturation) {
  // At |x| = 30, Sigmoid is within 1e-13 of 1 and the round trip loses
  // precision but must stay within ~0.1% — enough for belief tracking.
  EXPECT_NEAR(Logit(Sigmoid(30.0)), 30.0, 0.05);
  EXPECT_NEAR(Logit(Sigmoid(-30.0)), -30.0, 0.05);
}

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.2), 0.9002495, 1e-6);  // rho_beta = 0.9 at eps = 2.2
  EXPECT_NEAR(Sigmoid(-2.2), 1.0 - 0.9002495, 1e-6);
}

TEST(SigmoidTest, SaturatesWithoutNan) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(ClampTest, Clamps) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.25, 0.0, 1.0), 0.25);
}

TEST(AlmostEqualTest, Tolerances) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1e10, 1e10 * (1 + 1e-10)));
}

TEST(KahanSumTest, AccurateForIllConditionedSeries) {
  // 1 followed by 1e8 copies of 1e-8 sums to 2 exactly in exact arithmetic.
  std::vector<double> xs;
  xs.push_back(1.0);
  for (int i = 0; i < 10000000; ++i) xs.push_back(1e-7);
  EXPECT_NEAR(KahanSum(xs), 2.0, 1e-9);
}

TEST(L2NormTest, KnownValues) {
  EXPECT_DOUBLE_EQ(L2Norm(std::vector<float>{3.0f, 4.0f}), 5.0);
  EXPECT_DOUBLE_EQ(L2Norm(std::vector<double>{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(L2Norm(std::vector<float>{}), 0.0);
}

TEST(L2DistanceTest, KnownValues) {
  std::vector<float> a = {1.0f, 2.0f, 2.0f};
  std::vector<float> b = {1.0f, 0.0f, 0.0f};
  EXPECT_NEAR(L2Distance(a, b), std::sqrt(8.0), 1e-12);
  EXPECT_DOUBLE_EQ(L2Distance(a, a), 0.0);
}

}  // namespace
}  // namespace dpaudit
