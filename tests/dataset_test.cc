#include "data/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace dpaudit {
namespace {

Dataset ThreeRecords() {
  Dataset d;
  d.Add(Tensor({2}, {0.0f, 0.0f}), 0);
  d.Add(Tensor({2}, {1.0f, 1.0f}), 1);
  d.Add(Tensor({2}, {2.0f, 2.0f}), 2);
  return d;
}

TEST(DatasetTest, AddAndSize) {
  Dataset d = ThreeRecords();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.labels[1], 1u);
  EXPECT_TRUE(Dataset{}.empty());
}

TEST(DatasetTest, SubsetPreservesOrder) {
  Dataset d = ThreeRecords();
  Dataset s = d.Subset({2, 0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.labels[0], 2u);
  EXPECT_EQ(s.labels[1], 0u);
  EXPECT_EQ(s.inputs[0][0], 2.0f);
}

TEST(DatasetTest, WithRecordRemovedIsUnboundedNeighbor) {
  Dataset d = ThreeRecords();
  Dataset n = d.WithRecordRemoved(1);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n.labels[0], 0u);
  EXPECT_EQ(n.labels[1], 2u);
  // Original untouched.
  EXPECT_EQ(d.size(), 3u);
}

TEST(DatasetTest, WithRecordReplacedIsBoundedNeighbor) {
  Dataset d = ThreeRecords();
  Dataset n = d.WithRecordReplaced(0, Tensor({2}, {9.0f, 9.0f}), 7);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n.labels[0], 7u);
  EXPECT_EQ(n.inputs[0][0], 9.0f);
  EXPECT_EQ(d.labels[0], 0u);
}

TEST(DatasetTest, SampleSplitPartitions) {
  Dataset d;
  for (size_t i = 0; i < 10; ++i) d.Add(Tensor({1}, {float(i)}), i);
  Rng rng(5);
  Dataset rest;
  Dataset taken = d.SampleSplit(4, rng, &rest);
  EXPECT_EQ(taken.size(), 4u);
  EXPECT_EQ(rest.size(), 6u);
  std::set<size_t> all;
  for (size_t l : taken.labels) all.insert(l);
  for (size_t l : rest.labels) all.insert(l);
  EXPECT_EQ(all.size(), 10u);  // disjoint cover
}

TEST(DatasetTest, SampleSplitWithoutRemainder) {
  Dataset d = ThreeRecords();
  Rng rng(6);
  Dataset taken = d.SampleSplit(2, rng, nullptr);
  EXPECT_EQ(taken.size(), 2u);
}

TEST(DatasetDeathTest, OutOfRangeDies) {
  Dataset d = ThreeRecords();
  EXPECT_DEATH((void)d.WithRecordRemoved(3), "CHECK failed");
  EXPECT_DEATH((void)d.Subset({5}), "CHECK failed");
}

}  // namespace
}  // namespace dpaudit
