#include "mi/shadow_attack.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::TinyNetwork;

DistSampler BlobSampler() {
  return [](size_t count, Rng& rng) { return BlobDataset(count, rng); };
}

TEST(ExtractAttackFeaturesTest, FeaturesAreConsistent) {
  Rng rng(1);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(3, rng);
  AttackFeatures f = ExtractAttackFeatures(net, d.inputs[0], d.labels[0]);
  EXPECT_GT(f.loss, 0.0);
  EXPECT_GT(f.true_confidence, 0.0);
  EXPECT_LE(f.true_confidence, f.top_confidence + 1e-9);
  EXPECT_GE(f.entropy, 0.0);
  EXPECT_LE(f.entropy, std::log(3.0) + 1e-6);  // 3 classes
  // loss = -log(true_confidence).
  EXPECT_NEAR(f.loss, -std::log(f.true_confidence), 1e-5);
}

TEST(LogisticAttackModelTest, LearnsASeparableRule) {
  // Members: low loss; non-members: high loss.
  std::vector<AttackFeatures> features;
  std::vector<bool> labels;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    AttackFeatures f{};
    bool member = i % 2 == 0;
    f.loss = member ? rng.Uniform(0.0, 0.5) : rng.Uniform(1.5, 3.0);
    f.true_confidence = std::exp(-f.loss);
    f.top_confidence = f.true_confidence;
    f.entropy = f.loss;
    features.push_back(f);
    labels.push_back(member);
  }
  LogisticAttackModel model;
  ASSERT_TRUE(model.Fit(features, labels).ok());
  size_t correct = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    if (model.DecideMember(features[i]) == labels[i]) ++correct;
  }
  EXPECT_GT(correct, 95u);
}

TEST(LogisticAttackModelTest, PredictsProbabilities) {
  std::vector<AttackFeatures> features(4);
  features[0].loss = 0.1;
  features[1].loss = 0.2;
  features[2].loss = 2.0;
  features[3].loss = 2.5;
  std::vector<bool> labels = {true, true, false, false};
  LogisticAttackModel model;
  ASSERT_TRUE(model.Fit(features, labels).ok());
  for (const AttackFeatures& f : features) {
    double p = model.Predict(f);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_GT(model.Predict(features[0]), model.Predict(features[3]));
}

TEST(LogisticAttackModelTest, RejectsDegenerateTrainingSets) {
  LogisticAttackModel model;
  std::vector<AttackFeatures> features(3);
  EXPECT_FALSE(model.Fit(features, {true, true, true}).ok());
  EXPECT_FALSE(model.Fit(features, {false, false, false}).ok());
  EXPECT_FALSE(model.Fit(features, {true, false}).ok());  // size mismatch
  EXPECT_FALSE(model.fitted());
}

TEST(LogisticAttackModelDeathTest, PredictBeforeFitDies) {
  LogisticAttackModel model;
  EXPECT_DEATH((void)model.Predict(AttackFeatures{}), "Fit");
}

TEST(ShadowAttackExperimentTest, RunsEndToEnd) {
  ShadowAttackConfig config;
  config.dpsgd.epochs = 5;
  config.dpsgd.learning_rate = 0.1;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 1.0;
  config.train_size = 10;
  config.shadow_count = 3;
  config.trials = 16;
  config.seed = 5;
  auto result = RunShadowAttackExperiment(TinyNetwork(), BlobSampler(),
                                          config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->trials, 16u);
  EXPECT_GE(result->success_rate, 0.0);
  EXPECT_LE(result->success_rate, 1.0);
}

TEST(ShadowAttackExperimentTest, RejectsInvalidConfig) {
  ShadowAttackConfig config;
  config.shadow_count = 0;
  EXPECT_FALSE(
      RunShadowAttackExperiment(TinyNetwork(), BlobSampler(), config).ok());
  config.shadow_count = 2;
  config.trials = 0;
  EXPECT_FALSE(
      RunShadowAttackExperiment(TinyNetwork(), BlobSampler(), config).ok());
  config.trials = 4;
  config.train_size = 1;
  EXPECT_FALSE(
      RunShadowAttackExperiment(TinyNetwork(), BlobSampler(), config).ok());
}

TEST(ShadowAttackExperimentTest, DeterministicGivenSeed) {
  ShadowAttackConfig config;
  config.dpsgd.epochs = 3;
  config.dpsgd.learning_rate = 0.1;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 1.0;
  config.train_size = 8;
  config.shadow_count = 2;
  config.trials = 8;
  config.seed = 9;
  auto a = RunShadowAttackExperiment(TinyNetwork(), BlobSampler(), config);
  auto b = RunShadowAttackExperiment(TinyNetwork(), BlobSampler(), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->success_rate, b->success_rate);
}

}  // namespace
}  // namespace dpaudit
