#include "federated/federated.h"

#include <gtest/gtest.h>

#include "dp/privacy_params.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

struct FedFixture {
  FedFixture() : rng(1), net(TinyNetwork()) {
    net.Initialize(rng);
    shards = {BlobDataset(6, rng), BlobDataset(6, rng)};
    victim_d = BlobDataset(6, rng);
    victim_d_prime = ExtremeBoundedNeighbor(victim_d, 7.0f);
  }
  Rng rng;
  Network net;
  std::vector<Dataset> shards;
  Dataset victim_d;
  Dataset victim_d_prime;
};

FederatedConfig FastFedConfig() {
  FederatedConfig config;
  config.rounds = 5;
  config.learning_rate = 0.05;
  config.clip_norm = 1.0;
  config.noise_multiplier = 1.0;
  return config;
}

TEST(FederatedConfigTest, Validation) {
  EXPECT_TRUE(FastFedConfig().Validate().ok());
  FederatedConfig bad = FastFedConfig();
  bad.rounds = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastFedConfig();
  bad.noise_multiplier = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(FederatedTest, RunsAndRecordsBeliefTrajectory) {
  FedFixture f;
  Rng run_rng(2);
  auto result = RunFederatedTraining(f.net, f.shards, f.victim_d,
                                     f.victim_d_prime, /*victim_has_d=*/true,
                                     FastFedConfig(), run_rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->beliefs.size(), 6u);  // prior + 5 rounds
  EXPECT_EQ(result->local_sensitivities.size(), 5u);
  EXPECT_NE(result->model.FlatParams(), f.net.FlatParams());
}

TEST(FederatedTest, AdversaryWinsAtLowNoise) {
  FedFixture f;
  FederatedConfig config = FastFedConfig();
  config.rounds = 8;
  config.noise_multiplier = 0.05;
  config.sensitivity_mode = SensitivityMode::kLocalHat;
  Rng run_a(3);
  auto with_d = RunFederatedTraining(f.net, f.shards, f.victim_d,
                                     f.victim_d_prime, true, config, run_a);
  ASSERT_TRUE(with_d.ok());
  EXPECT_TRUE(with_d->adversary_says_victim_d);
  Rng run_b(4);
  auto with_dprime = RunFederatedTraining(f.net, f.shards, f.victim_d,
                                          f.victim_d_prime, false, config,
                                          run_b);
  ASSERT_TRUE(with_dprime.ok());
  EXPECT_FALSE(with_dprime->adversary_says_victim_d);
}

TEST(FederatedTest, HighNoiseProtectsVictim) {
  FedFixture f;
  FederatedConfig config = FastFedConfig();
  config.noise_multiplier = 100.0;
  Rng run_rng(5);
  auto result = RunFederatedTraining(f.net, f.shards, f.victim_d,
                                     f.victim_d_prime, true, config, run_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->beliefs.back(), 0.5, 0.25);
}

TEST(FederatedTest, WorksWithNoHonestClients) {
  // Degenerate case: the victim is the only participant; reduces to
  // centralized DPSGD.
  FedFixture f;
  Rng run_rng(6);
  auto result = RunFederatedTraining(f.net, {}, f.victim_d, f.victim_d_prime,
                                     true, FastFedConfig(), run_rng);
  ASSERT_TRUE(result.ok());
}

TEST(FederatedTest, DeterministicGivenSeed) {
  FedFixture f;
  Rng a(11);
  Rng b(11);
  auto first = RunFederatedTraining(f.net, f.shards, f.victim_d,
                                    f.victim_d_prime, true, FastFedConfig(),
                                    a);
  auto second = RunFederatedTraining(f.net, f.shards, f.victim_d,
                                     f.victim_d_prime, true, FastFedConfig(),
                                     b);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->beliefs, second->beliefs);
  EXPECT_EQ(first->model.FlatParams(), second->model.FlatParams());
}

TEST(FederatedTest, LocalSensitivityModeScalesNoise) {
  FedFixture f;
  FederatedConfig config = FastFedConfig();
  config.sensitivity_mode = SensitivityMode::kLocalHat;
  Rng run_rng(12);
  auto result = RunFederatedTraining(f.net, f.shards, f.victim_d,
                                     f.victim_d_prime, true, config,
                                     run_rng);
  ASSERT_TRUE(result.ok());
  // LS in the federated aggregate equals the victim-side gradient delta and
  // must respect the bounded global cap.
  for (double ls : result->local_sensitivities) {
    EXPECT_GE(ls, 0.0);
    EXPECT_LE(ls, 2.0 * config.clip_norm + 1e-6);
  }
}

TEST(FederatedTest, HonestClientsDoNotChangeTheHypothesisGap) {
  // The belief dynamics depend on S(D_v) - S(D_v') only; honest clients add
  // identical mass under both hypotheses. With the same seed and noise, the
  // adversary's decision should match the no-honest-client run in
  // distribution — here we just check both runs produce valid beliefs and
  // the gap (local sensitivity) is identical at step 0 where weights match.
  FedFixture f;
  Rng a(13);
  Rng b(13);
  auto with_honest = RunFederatedTraining(f.net, f.shards, f.victim_d,
                                          f.victim_d_prime, true,
                                          FastFedConfig(), a);
  auto without = RunFederatedTraining(f.net, {}, f.victim_d,
                                      f.victim_d_prime, true, FastFedConfig(),
                                      b);
  ASSERT_TRUE(with_honest.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_NEAR(with_honest->local_sensitivities[0],
              without->local_sensitivities[0], 1e-6);
}

TEST(FederatedTest, RejectsEmptyShards) {
  FedFixture f;
  Rng run_rng(7);
  Dataset empty;
  EXPECT_FALSE(RunFederatedTraining(f.net, {empty}, f.victim_d,
                                    f.victim_d_prime, true, FastFedConfig(),
                                    run_rng)
                   .ok());
  EXPECT_FALSE(RunFederatedTraining(f.net, f.shards, empty, f.victim_d_prime,
                                    true, FastFedConfig(), run_rng)
                   .ok());
}

}  // namespace
}  // namespace dpaudit
