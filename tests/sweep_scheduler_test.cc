// Determinism and cache tests for the flattened sweep scheduler: the
// flattened (cell x repetition) dispatch must produce bit-identical
// AuditSweepRow vectors vs the sequential per-cell reference path, for any
// DPAUDIT_THREADS, cold and warm trace cache.

#include "core/sweep_scheduler.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_audit_sweep.h"
#include "core/trace.h"
#include "dp/privacy_params.h"

namespace dpaudit {
namespace {

/// Fresh per-test cache directory under gtest's temp dir.
class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const std::string& name)
      : path_(::testing::TempDir() + "/dpaudit_sweep_" + name) {
    std::filesystem::remove_all(path_);
  }
  ~ScopedCacheDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

bench::BenchParams TinyParams() {
  bench::BenchParams params;
  params.reps = 8;
  params.mnist_n = 8;
  params.purchase_n = 8;
  params.epochs = 3;
  params.seed = 42;
  return params;
}

void ExpectRowsBitIdentical(const std::vector<bench::AuditSweepRow>& expected,
                            const std::vector<bench::AuditSweepRow>& got) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    const bench::AuditSweepRow& a = expected[i];
    const bench::AuditSweepRow& b = got[i];
    EXPECT_EQ(a.dataset, b.dataset) << "row " << i;
    EXPECT_EQ(a.target_epsilon, b.target_epsilon) << "row " << i;
    EXPECT_EQ(a.sensitivity, b.sensitivity) << "row " << i;
    // Bit-identity: exact double equality on every estimator, no tolerance.
    EXPECT_EQ(a.report.epsilon_from_sensitivities,
              b.report.epsilon_from_sensitivities)
        << "row " << i;
    EXPECT_EQ(a.report.epsilon_from_belief, b.report.epsilon_from_belief)
        << "row " << i;
    EXPECT_EQ(a.report.epsilon_from_advantage,
              b.report.epsilon_from_advantage)
        << "row " << i;
    EXPECT_EQ(a.advantage, b.advantage) << "row " << i;
    EXPECT_EQ(a.repetitions, b.repetitions) << "row " << i;
    EXPECT_EQ(a.wins, b.wins) << "row " << i;
  }
}

class SweepSchedulerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // TraceStore::FromEnv() latches on first use; every test here passes
    // explicit stores, and the mode comes in explicitly too.
    unsetenv("DPAUDIT_TRACE_CACHE");
    unsetenv("DPAUDIT_SWEEP_MODE");
  }
  void TearDown() override { unsetenv("DPAUDIT_THREADS"); }
};

TEST_F(SweepSchedulerTest, FlattenedMatchesSequentialAcrossThreadsAndCache) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);

  // Reference: the sequential per-cell path, single-threaded, no cache.
  setenv("DPAUDIT_THREADS", "1", 1);
  std::vector<bench::AuditSweepRow> reference = bench::RunAuditSweep(
      params, task, /*reps_override=*/4, /*store=*/nullptr,
      SweepMode::kPerCell);
  ASSERT_EQ(reference.size(), 8u);  // 4 epsilons x {LS, GS}

  for (const char* threads : {"1", "4", "13"}) {
    SCOPED_TRACE(std::string("DPAUDIT_THREADS=") + threads);
    setenv("DPAUDIT_THREADS", threads, 1);
    ScopedCacheDir cache(std::string("threads_") + threads);
    TraceStore store(cache.path());

    // Cold cache: every cell trains through the flattened grid.
    std::vector<bench::AuditSweepRow> cold = bench::RunAuditSweep(
        params, task, /*reps_override=*/4, &store, SweepMode::kFlattened);
    ExpectRowsBitIdentical(reference, cold);

    // Warm cache: every cell replays.
    std::vector<bench::AuditSweepRow> warm = bench::RunAuditSweep(
        params, task, /*reps_override=*/4, &store, SweepMode::kFlattened);
    ExpectRowsBitIdentical(reference, warm);

    // The sequential path reads the scheduler's recordings compatibly.
    std::vector<bench::AuditSweepRow> percell = bench::RunAuditSweep(
        params, task, /*reps_override=*/4, &store, SweepMode::kPerCell);
    ExpectRowsBitIdentical(reference, percell);
  }
}

TEST_F(SweepSchedulerTest, FlattenedSweepExtendsCachedPrefixes) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  setenv("DPAUDIT_THREADS", "4", 1);
  ScopedCacheDir cache("prefix");
  TraceStore store(cache.path());

  // Record 3 repetitions per cell, then ask for 6: the cached prefixes
  // replay and only the tails train (prefix-extensible traces).
  bench::RunAuditSweep(params, task, /*reps_override=*/3, &store,
                       SweepMode::kFlattened);
  std::vector<bench::AuditSweepRow> extended = bench::RunAuditSweep(
      params, task, /*reps_override=*/6, &store, SweepMode::kFlattened);

  setenv("DPAUDIT_THREADS", "1", 1);
  std::vector<bench::AuditSweepRow> reference = bench::RunAuditSweep(
      params, task, /*reps_override=*/6, /*store=*/nullptr,
      SweepMode::kPerCell);
  ExpectRowsBitIdentical(reference, extended);
}

TEST_F(SweepSchedulerTest, ReportsCacheOutcomesInStats) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  setenv("DPAUDIT_THREADS", "4", 1);
  ScopedCacheDir cache("stats");
  TraceStore store(cache.path());

  auto make_cell = [&](double epsilon) {
    SweepCell cell;
    cell.architecture = &task.architecture;
    cell.d = &task.d;
    cell.d_prime = &task.d_prime_bounded;
    cell.config = bench::MakeScenarioConfig(params, task, epsilon,
                                            SensitivityMode::kLocalHat,
                                            NeighborMode::kBounded);
    cell.config.repetitions = 2;
    return cell;
  };
  std::vector<SweepCell> cells = {make_cell(1.1), make_cell(2.2)};
  SweepOptions options;
  options.trace_store = &store;

  SweepStats stats;
  auto cold = RunSweep(cells, options, &stats);
  ASSERT_TRUE(cold[0].ok());
  ASSERT_TRUE(cold[1].ok());
  EXPECT_EQ(stats.cells, 2u);
  EXPECT_EQ(stats.trace_misses, 2u);
  EXPECT_EQ(stats.trials_trained, 4u);
  EXPECT_EQ(stats.trials_replayed, 0u);

  auto warm = RunSweep(cells, options, &stats);
  ASSERT_TRUE(warm[0].ok());
  EXPECT_EQ(stats.trace_full_hits, 2u);
  EXPECT_EQ(stats.trials_replayed, 4u);
  EXPECT_EQ(stats.trials_trained, 0u);

  // Raising the repetition count turns both into prefix hits.
  cells[0].config.repetitions = 3;
  cells[1].config.repetitions = 3;
  auto bigger = RunSweep(cells, options, &stats);
  ASSERT_TRUE(bigger[0].ok());
  EXPECT_EQ(stats.trace_prefix_hits, 2u);
  EXPECT_EQ(stats.trials_replayed, 4u);
  EXPECT_EQ(stats.trials_trained, 2u);
}

TEST_F(SweepSchedulerTest, SurfacesPerCellErrors) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  setenv("DPAUDIT_THREADS", "4", 1);

  SweepCell good;
  good.architecture = &task.architecture;
  good.d = &task.d;
  good.d_prime = &task.d_prime_bounded;
  good.config = bench::MakeScenarioConfig(params, task, 1.1,
                                          SensitivityMode::kLocalHat,
                                          NeighborMode::kBounded);
  good.config.repetitions = 2;

  SweepCell bad_configure = good;
  bad_configure.configure = [](DiExperimentConfig*) {
    return Status::InvalidArgument("calibration failed");
  };

  SweepCell mutates_reps = good;
  mutates_reps.configure = [](DiExperimentConfig* config) {
    config->repetitions += 1;
    return Status::Ok();
  };

  SweepCell zero_reps = good;
  zero_reps.config.repetitions = 0;

  std::vector<SweepCell> cells = {good, bad_configure, mutates_reps,
                                  zero_reps};
  auto results = RunSweep(cells);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok()) << results[0].status();
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[2].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[3].status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dpaudit
