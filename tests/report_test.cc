#include "core/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace dpaudit {
namespace {

PrivacyPlan TestPlan() {
  IdentifiabilityRequirement requirement;
  requirement.bound = 0.9;
  requirement.delta = 0.001;
  requirement.steps = 30;
  return *MakePrivacyPlan(requirement);
}

DiExperimentSummary TestSummary(double belief) {
  DiExperimentSummary summary;
  DiTrialResult win;
  win.trained_on_d = true;
  win.adversary_says_d = true;
  win.final_belief_d = belief;
  win.max_belief_d = belief;
  win.sigmas = {1.0, 1.0};
  win.local_sensitivities = {0.5, 0.5};
  DiTrialResult loss = win;
  loss.adversary_says_d = false;
  loss.final_belief_d = 0.4;
  loss.max_belief_d = 0.55;
  summary.trials = {win, win, win, loss};
  return summary;
}

TEST(BuildAuditReportTest, PopulatesEveryField) {
  auto report = BuildAuditReport(TestPlan(), TestSummary(0.7), "unit blob");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->repetitions, 4u);
  EXPECT_DOUBLE_EQ(report->empirical_advantage, 0.5);
  EXPECT_DOUBLE_EQ(report->max_belief, 0.7);
  EXPECT_DOUBLE_EQ(report->empirical_delta, 0.0);
  EXPECT_GT(report->epsilons.epsilon_from_sensitivities, 0.0);
  EXPECT_EQ(report->dataset_description, "unit blob");
}

TEST(BuildAuditReportTest, RejectsEmptySummary) {
  DiExperimentSummary empty;
  EXPECT_FALSE(BuildAuditReport(TestPlan(), empty, "x").ok());
}

TEST(AuditReportDocumentTest, MarkdownContainsSections) {
  auto report = BuildAuditReport(TestPlan(), TestSummary(0.7), "blob data");
  ASSERT_TRUE(report.ok());
  std::string md = report->ToMarkdown();
  EXPECT_NE(md.find("# DPSGD identifiability audit"), std::string::npos);
  EXPECT_NE(md.find("## Privacy plan"), std::string::npos);
  EXPECT_NE(md.find("## Empirical audit"), std::string::npos);
  EXPECT_NE(md.find("## Empirical privacy loss"), std::string::npos);
  EXPECT_NE(md.find("## Verdict"), std::string::npos);
  EXPECT_NE(md.find("blob data"), std::string::npos);
  EXPECT_NE(md.find("rho_beta"), std::string::npos);
}

TEST(AuditReportDocumentTest, VerdictCategories) {
  AuditReportDocument document;
  document.plan = TestPlan();
  document.epsilons.epsilon_from_sensitivities = document.plan.dp.epsilon;
  EXPECT_NE(document.Verdict().find("TIGHT"), std::string::npos);
  document.epsilons.epsilon_from_sensitivities =
      0.3 * document.plan.dp.epsilon;
  EXPECT_NE(document.Verdict().find("LOOSE"), std::string::npos);
  document.epsilons.epsilon_from_sensitivities =
      1.5 * document.plan.dp.epsilon;
  EXPECT_NE(document.Verdict().find("OVER BUDGET"), std::string::npos);
}

TEST(WriteAuditReportTest, WritesFile) {
  auto report = BuildAuditReport(TestPlan(), TestSummary(0.6), "file test");
  ASSERT_TRUE(report.ok());
  std::string path = ::testing::TempDir() + "/dpaudit_report_test.md";
  ASSERT_TRUE(WriteAuditReport(path, *report).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("## Verdict"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpaudit
