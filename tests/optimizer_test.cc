#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::TinyNetwork;

std::vector<float> ConstantGradient(size_t n, float value) {
  return std::vector<float>(n, value);
}

TEST(SgdOptimizerTest, MatchesApplyGradientStep) {
  Rng rng(1);
  Network a = TinyNetwork();
  a.Initialize(rng);
  Network b = a.Clone();
  std::vector<float> grad = ConstantGradient(a.NumParams(), 0.5f);
  SgdOptimizer sgd(0.1);
  sgd.Step(a, grad);
  b.ApplyGradientStep(grad, 0.1);
  EXPECT_EQ(a.FlatParams(), b.FlatParams());
}

TEST(MomentumOptimizerTest, AcceleratesAlongConstantGradient) {
  Rng rng(2);
  Network net = TinyNetwork();
  net.Initialize(rng);
  std::vector<float> start = net.FlatParams();
  std::vector<float> grad = ConstantGradient(net.NumParams(), 1.0f);
  MomentumOptimizer momentum(0.1, 0.9);
  momentum.Step(net, grad);
  std::vector<float> after1 = net.FlatParams();
  momentum.Step(net, grad);
  std::vector<float> after2 = net.FlatParams();
  // First step: lr * 1; second step: lr * (1 + mu) > first.
  double step1 = std::fabs(after1[0] - start[0]);
  double step2 = std::fabs(after2[0] - after1[0]);
  EXPECT_NEAR(step1, 0.1, 1e-6);
  EXPECT_NEAR(step2, 0.1 * 1.9, 1e-6);
}

TEST(AdamOptimizerTest, FirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step is ~lr regardless of the
  // gradient magnitude.
  Rng rng(3);
  Network net = TinyNetwork();
  net.Initialize(rng);
  std::vector<float> start = net.FlatParams();
  AdamOptimizer adam(0.01);
  adam.Step(net, ConstantGradient(net.NumParams(), 123.0f));
  std::vector<float> after = net.FlatParams();
  EXPECT_NEAR(std::fabs(after[0] - start[0]), 0.01, 1e-4);
}

TEST(AdamOptimizerTest, StepDirectionFollowsGradientSign) {
  Rng rng(4);
  Network net = TinyNetwork();
  net.Initialize(rng);
  std::vector<float> start = net.FlatParams();
  std::vector<float> grad(net.NumParams(), 0.0f);
  grad[0] = 2.0f;
  grad[1] = -2.0f;
  AdamOptimizer adam(0.05);
  adam.Step(net, grad);
  std::vector<float> after = net.FlatParams();
  EXPECT_LT(after[0], start[0]);  // positive gradient: parameter decreases
  EXPECT_GT(after[1], start[1]);
  EXPECT_FLOAT_EQ(after[2], start[2]);  // zero gradient: untouched
}

TEST(OptimizerCloneTest, CloneResetsState) {
  Rng rng(5);
  Network net = TinyNetwork();
  net.Initialize(rng);
  MomentumOptimizer momentum(0.1, 0.9);
  momentum.Step(net, ConstantGradient(net.NumParams(), 1.0f));
  // A clone starts with zero velocity: its first step is lr-sized again.
  Network fresh = TinyNetwork();
  fresh.Initialize(rng);
  std::vector<float> start = fresh.FlatParams();
  std::unique_ptr<Optimizer> clone = momentum.Clone();
  clone->Step(fresh, ConstantGradient(fresh.NumParams(), 1.0f));
  EXPECT_NEAR(std::fabs(fresh.FlatParams()[0] - start[0]), 0.1, 1e-6);
}

TEST(OptimizerFactoryTest, MakesEveryKind) {
  EXPECT_EQ(MakeOptimizer(OptimizerKind::kSgd, 0.1)->Name(), "sgd");
  EXPECT_EQ(MakeOptimizer(OptimizerKind::kMomentum, 0.1)->Name(),
            "momentum");
  EXPECT_EQ(MakeOptimizer(OptimizerKind::kAdam, 0.1)->Name(), "adam");
  EXPECT_STREQ(OptimizerKindToString(OptimizerKind::kAdam), "adam");
}

class OptimizerConvergenceTest
    : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerConvergenceTest, ReducesLossOnBlobs) {
  Rng rng(6);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(15, rng);
  double lr = GetParam() == OptimizerKind::kAdam ? 0.05 : 0.3;
  std::unique_ptr<Optimizer> optimizer = MakeOptimizer(GetParam(), lr);
  auto total_loss = [&] {
    double loss = 0.0;
    for (size_t i = 0; i < d.size(); ++i) {
      loss += net.ExampleLoss(d.inputs[i], d.labels[i]);
    }
    return loss;
  };
  double before = total_loss();
  for (int step = 0; step < 60; ++step) {
    std::vector<float> sum = net.ClippedGradientSum(d.inputs, d.labels, 10.0);
    for (float& g : sum) g /= static_cast<float>(d.size());
    optimizer->Step(net, sum);
  }
  EXPECT_LT(total_loss(), 0.5 * before);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OptimizerConvergenceTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kMomentum,
                                           OptimizerKind::kAdam));

TEST(OptimizerDeathTest, InvalidHyperparametersDie) {
  EXPECT_DEATH(SgdOptimizer(0.0), "CHECK failed");
  EXPECT_DEATH(MomentumOptimizer(0.1, 1.0), "CHECK failed");
  EXPECT_DEATH(AdamOptimizer(0.1, 0.9, 0.999, 0.0), "CHECK failed");
}

}  // namespace
}  // namespace dpaudit
