// End-to-end properties of the full pipeline: choose an identifiability
// bound, calibrate noise through the RDP accountant, run the repeated Exp^DI
// with the implemented adversary, and verify the paper's claims hold within
// sampling error.

#include <gtest/gtest.h>

#include <cmath>

#include "core/auditor.h"
#include "core/experiment.h"
#include "core/scores.h"
#include "dp/privacy_params.h"
#include "dp/rdp_accountant.h"
#include "mi/membership_inference.h"
#include "stats/normal.h"
#include "stats/summary.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

struct Pipeline {
  Pipeline() : rng(1), net(TinyNetwork()) {
    net.Initialize(rng);
    d = BlobDataset(9, rng);
    d_prime = ExtremeBoundedNeighbor(d, 6.0f);
  }
  Rng rng;
  Network net;
  Dataset d;
  Dataset d_prime;
};

// The exact expected advantage of the Bayes adversary when noise is scaled
// to the realized local sensitivity at every step: each step contributes a
// mean separation of exactly 1/z sigmas, k steps stack orthogonally in the
// product space, so Adv = 2 Phi(sqrt(k) / (2 z)) - 1.
TEST(IntegrationTest, LocalSensitivityAdvantageMatchesTheoryExactly) {
  Pipeline p;
  const double z = 2.0;
  const size_t k = 6;
  DiExperimentConfig config;
  config.dpsgd.epochs = k;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = z;
  config.dpsgd.sensitivity_mode = SensitivityMode::kLocalHat;
  config.repetitions = 400;
  config.seed = 17;
  auto summary = RunDiExperiment(p.net, p.d, p.d_prime, config);
  ASSERT_TRUE(summary.ok());
  double expected =
      2.0 * NormalCdf(std::sqrt(static_cast<double>(k)) / (2.0 * z)) - 1.0;
  // Binomial standard error on the success rate is ~0.025 at 400 trials;
  // the advantage doubles it.
  EXPECT_NEAR(summary->EmpiricalAdvantage(), expected, 0.11);
}

// When noise is scaled to the loose global sensitivity 2C but the factual
// gradient difference is much smaller, the adversary's advantage falls well
// short of the rho_alpha bound — the paper's core "GS is not tight" claim.
TEST(IntegrationTest, GlobalSensitivityLeavesSlack) {
  Pipeline p;
  const double z = 1.0;
  const size_t k = 6;
  DiExperimentConfig base;
  base.dpsgd.epochs = k;
  base.dpsgd.learning_rate = 0.05;
  base.dpsgd.clip_norm = 1.0;
  base.dpsgd.noise_multiplier = z;
  base.repetitions = 200;
  base.seed = 23;

  DiExperimentConfig gs = base;
  gs.dpsgd.sensitivity_mode = SensitivityMode::kGlobal;
  gs.dpsgd.neighbor_mode = NeighborMode::kBounded;
  DiExperimentConfig ls = base;
  ls.dpsgd.sensitivity_mode = SensitivityMode::kLocalHat;
  ls.dpsgd.neighbor_mode = NeighborMode::kBounded;

  auto gs_summary = RunDiExperiment(p.net, p.d, p.d_prime, gs);
  auto ls_summary = RunDiExperiment(p.net, p.d, p.d_prime, ls);
  ASSERT_TRUE(gs_summary.ok());
  ASSERT_TRUE(ls_summary.ok());
  EXPECT_LT(gs_summary->EmpiricalAdvantage(),
            ls_summary->EmpiricalAdvantage());
}

// Theorem 1 as an empirical statement: with noise scaled to the true local
// sensitivity and a total epsilon derived from rho_beta, the fraction of
// runs whose final belief exceeds rho_beta stays near delta.
TEST(IntegrationTest, BeliefBoundViolatedOnlyWithProbabilityDelta) {
  Pipeline p;
  const double rho_beta = 0.9;
  const double delta = 0.05;
  const size_t k = 6;
  double epsilon = *EpsilonForRhoBeta(rho_beta);
  double z = *NoiseMultiplierForTargetEpsilon(epsilon, delta, k);
  DiExperimentConfig config;
  config.dpsgd.epochs = k;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = z;
  config.dpsgd.sensitivity_mode = SensitivityMode::kLocalHat;
  config.repetitions = 300;
  config.seed = 31;
  auto summary = RunDiExperiment(p.net, p.d, p.d_prime, config);
  ASSERT_TRUE(summary.ok());
  // The RDP-calibrated bound is conservative, so the violation rate should
  // sit at or below delta (allow 3x for sampling noise at 300 trials).
  EXPECT_LE(summary->EmpiricalDelta(rho_beta), 3.0 * delta);
  // And the mechanism is not absurdly overcautious: beliefs do move.
  RunningSummary beliefs;
  for (double b : summary->FinalBeliefsInD()) beliefs.Add(b);
  EXPECT_GT(beliefs.max(), 0.55);
}

// Auditing: with LS-scaled noise the sensitivity-based epsilon' equals the
// target epsilon; with GS-scaled noise it falls below (Figure 8's shape).
TEST(IntegrationTest, AuditRecoversTargetEpsilonUnderLocalSensitivity) {
  Pipeline p;
  const double target_eps = 2.2;
  const double delta = 0.01;
  const size_t k = 6;
  double z = *NoiseMultiplierForTargetEpsilon(target_eps, delta, k);

  DiExperimentConfig config;
  config.dpsgd.epochs = k;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = z;
  config.dpsgd.sensitivity_mode = SensitivityMode::kLocalHat;
  config.repetitions = 20;
  config.seed = 41;
  auto ls_summary = RunDiExperiment(p.net, p.d, p.d_prime, config);
  ASSERT_TRUE(ls_summary.ok());
  double eps_ls = *EpsilonFromSensitivities(*ls_summary, delta);
  EXPECT_NEAR(eps_ls, target_eps, 1e-6);

  config.dpsgd.sensitivity_mode = SensitivityMode::kGlobal;
  auto gs_summary = RunDiExperiment(p.net, p.d, p.d_prime, config);
  ASSERT_TRUE(gs_summary.ok());
  double eps_gs = *EpsilonFromSensitivities(*gs_summary, delta);
  EXPECT_LT(eps_gs, target_eps);
}

// Proposition 1, empirically: the DI adversary's advantage dominates the MI
// adversary's under the same mechanism parameters.
TEST(IntegrationTest, DiAdversaryDominatesMiAdversary) {
  Pipeline p;
  DpSgdConfig mechanism;
  mechanism.epochs = 6;
  mechanism.learning_rate = 0.1;
  mechanism.clip_norm = 1.0;
  mechanism.noise_multiplier = 0.3;  // weak privacy: attacks can succeed
  mechanism.sensitivity_mode = SensitivityMode::kLocalHat;

  DiExperimentConfig di;
  di.dpsgd = mechanism;
  di.repetitions = 100;
  di.seed = 51;
  auto di_summary = RunDiExperiment(p.net, p.d, p.d_prime, di);
  ASSERT_TRUE(di_summary.ok());

  MiExperimentConfig mi;
  mi.dpsgd = mechanism;
  mi.train_size = 9;
  mi.trials = 100;
  mi.seed = 51;
  DistSampler sampler = [](size_t count, Rng& rng) {
    return BlobDataset(count, rng);
  };
  auto mi_result = RunMiExperiment(TinyNetwork(), sampler, mi);
  ASSERT_TRUE(mi_result.ok());

  EXPECT_GE(di_summary->EmpiricalAdvantage(),
            mi_result->advantage - 0.15);  // slack for sampling error
  EXPECT_GT(di_summary->EmpiricalAdvantage(), 0.5);  // DI nearly certain
}

// Utility ordering (Figure 7's shape): training with noise scaled to the
// loose bounded GS (2C every step) hurts accuracy at least as much as
// noise scaled to the factual local sensitivity.
TEST(IntegrationTest, LocalSensitivityPreservesMoreUtility) {
  Pipeline p;
  Rng test_rng(61);
  Dataset test = BlobDataset(30, test_rng);
  DiExperimentConfig base;
  base.dpsgd.epochs = 10;
  base.dpsgd.learning_rate = 0.3;
  base.dpsgd.clip_norm = 1.0;
  base.dpsgd.noise_multiplier = 1.0;
  base.repetitions = 30;
  base.seed = 71;

  DiExperimentConfig ls = base;
  ls.dpsgd.sensitivity_mode = SensitivityMode::kLocalHat;
  DiExperimentConfig gs = base;
  gs.dpsgd.sensitivity_mode = SensitivityMode::kGlobal;
  gs.dpsgd.neighbor_mode = NeighborMode::kBounded;

  auto ls_summary = RunDiExperiment(p.net, p.d, p.d_prime, ls, &test);
  auto gs_summary = RunDiExperiment(p.net, p.d, p.d_prime, gs, &test);
  ASSERT_TRUE(ls_summary.ok());
  ASSERT_TRUE(gs_summary.ok());
  double ls_acc = Mean(ls_summary->TestAccuracies());
  double gs_acc = Mean(gs_summary->TestAccuracies());
  EXPECT_GE(ls_acc, gs_acc - 0.05);
}

}  // namespace
}  // namespace dpaudit
