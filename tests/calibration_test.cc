#include "dp/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dpaudit {
namespace {

TEST(CalibrationFactorTest, KnownValues) {
  // sqrt(2 ln(1.25/0.001)) = sqrt(2 * ln(1250)).
  EXPECT_NEAR(GaussianCalibrationFactor(0.001),
              std::sqrt(2.0 * std::log(1250.0)), 1e-12);
  EXPECT_NEAR(GaussianCalibrationFactor(0.01),
              std::sqrt(2.0 * std::log(125.0)), 1e-12);
}

TEST(GaussianSigmaTest, MatchesEquationOne) {
  PrivacyParams params{2.2, 0.001};
  StatusOr<double> sigma = GaussianSigma(params, 3.0);
  ASSERT_TRUE(sigma.ok());
  EXPECT_NEAR(*sigma, 3.0 * GaussianCalibrationFactor(0.001) / 2.2, 1e-12);
}

TEST(GaussianSigmaTest, ScalesLinearlyWithSensitivity) {
  PrivacyParams params{1.0, 0.01};
  double s1 = *GaussianSigma(params, 1.0);
  double s3 = *GaussianSigma(params, 3.0);
  EXPECT_NEAR(s3, 3.0 * s1, 1e-12);
}

TEST(GaussianSigmaTest, MoreNoiseForStrongerGuarantee) {
  double weak = *GaussianSigma(PrivacyParams{4.6, 0.001}, 1.0);
  double strong = *GaussianSigma(PrivacyParams{0.08, 0.001}, 1.0);
  EXPECT_GT(strong, weak);
}

TEST(GaussianSigmaTest, RejectsInvalidInputs) {
  EXPECT_FALSE(GaussianSigma(PrivacyParams{0.0, 0.001}, 1.0).ok());
  EXPECT_FALSE(GaussianSigma(PrivacyParams{1.0, 0.0}, 1.0).ok());  // pure DP
  EXPECT_FALSE(GaussianSigma(PrivacyParams{1.0, 0.001}, 0.0).ok());
  EXPECT_FALSE(GaussianSigma(PrivacyParams{1.0, 0.001}, -1.0).ok());
}

class SigmaEpsilonRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SigmaEpsilonRoundTrip, EquationTwoInvertsEquationOne) {
  auto [epsilon, delta, sensitivity] = GetParam();
  double sigma = *GaussianSigma(PrivacyParams{epsilon, delta}, sensitivity);
  double recovered = *GaussianEpsilon(sigma, delta, sensitivity);
  EXPECT_NEAR(recovered, epsilon, 1e-9 * epsilon);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SigmaEpsilonRoundTrip,
    ::testing::Combine(::testing::Values(0.08, 1.1, 2.2, 4.6),
                       ::testing::Values(0.001, 0.01, 1e-6),
                       ::testing::Values(1.0, 3.0, 6.0)));

TEST(GaussianEpsilonTest, RejectsInvalidInputs) {
  EXPECT_FALSE(GaussianEpsilon(0.0, 0.001, 1.0).ok());
  EXPECT_FALSE(GaussianEpsilon(1.0, 1.0, 1.0).ok());
  EXPECT_FALSE(GaussianEpsilon(1.0, 0.001, 0.0).ok());
}

TEST(LaplaceScaleTest, Basics) {
  EXPECT_DOUBLE_EQ(*LaplaceScale(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(*LaplaceScale(0.5, 3.0), 6.0);
  EXPECT_FALSE(LaplaceScale(0.0, 1.0).ok());
  EXPECT_FALSE(LaplaceScale(1.0, 0.0).ok());
}

}  // namespace
}  // namespace dpaudit
