#include "mi/membership_inference.h"

#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::kClasses;
using testing_helpers::kFeatures;
using testing_helpers::TinyNetwork;

DistSampler BlobSampler() {
  return [](size_t count, Rng& rng) { return BlobDataset(count, rng); };
}

TEST(MiAdversaryTest, CalibrationSetsThreshold) {
  Rng rng(1);
  Network net = TinyNetwork();
  net.Initialize(rng);
  MiAdversary adversary(BlobSampler(), /*probe_count=*/16);
  ASSERT_TRUE(adversary.Calibrate(net, rng).ok());
  EXPECT_GT(adversary.threshold(), 0.0);
}

TEST(MiAdversaryTest, DecideComparesLossToThreshold) {
  Rng rng(2);
  Network net = TinyNetwork();
  net.Initialize(rng);
  MiAdversary adversary(BlobSampler(), 16);
  ASSERT_TRUE(adversary.Calibrate(net, rng).ok());
  // A record the model classifies confidently (low loss) reads as a member.
  // Train briefly on one record to push its loss down.
  Dataset one = BlobDataset(1, rng);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> g = net.PerExampleGradient(one.inputs[0],
                                                  one.labels[0]);
    net.ApplyGradientStep(g, 0.2);
  }
  EXPECT_TRUE(adversary.Decide(net, one.inputs[0], one.labels[0]));
}

TEST(MiAdversaryDeathTest, DecideBeforeCalibrateDies) {
  Rng rng(3);
  Network net = TinyNetwork();
  net.Initialize(rng);
  MiAdversary adversary(BlobSampler());
  Tensor x({kFeatures});
  EXPECT_DEATH((void)adversary.Decide(net, x, 0), "Calibrate");
}

TEST(MiExperimentTest, RunsAndReportsSaneNumbers) {
  MiExperimentConfig config;
  config.dpsgd.epochs = 5;
  config.dpsgd.learning_rate = 0.1;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 1.0;
  config.train_size = 12;
  config.trials = 20;
  config.seed = 7;
  auto result = RunMiExperiment(TinyNetwork(), BlobSampler(), config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->trials, 20u);
  EXPECT_GE(result->success_rate, 0.0);
  EXPECT_LE(result->success_rate, 1.0);
  EXPECT_NEAR(result->advantage, 2.0 * result->success_rate - 1.0, 1e-12);
}

TEST(MiExperimentTest, RejectsInvalidConfig) {
  MiExperimentConfig config;
  config.trials = 0;
  EXPECT_FALSE(RunMiExperiment(TinyNetwork(), BlobSampler(), config).ok());
  config.trials = 2;
  config.train_size = 1;
  EXPECT_FALSE(RunMiExperiment(TinyNetwork(), BlobSampler(), config).ok());
}

TEST(MiExperimentTest, DeterministicGivenSeed) {
  MiExperimentConfig config;
  config.dpsgd.epochs = 3;
  config.dpsgd.learning_rate = 0.1;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 1.0;
  config.train_size = 8;
  config.trials = 10;
  config.seed = 11;
  auto a = RunMiExperiment(TinyNetwork(), BlobSampler(), config);
  auto b = RunMiExperiment(TinyNetwork(), BlobSampler(), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->success_rate, b->success_rate);
}

}  // namespace
}  // namespace dpaudit
