#include "data/dissimilarity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace dpaudit {
namespace {

TEST(HammingDistanceTest, CountsDifferingBits) {
  Tensor a({4}, {0.0f, 1.0f, 1.0f, 0.0f});
  Tensor b({4}, {0.0f, 0.0f, 1.0f, 1.0f});
  EXPECT_DOUBLE_EQ(HammingDistance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(HammingDistance(a, a), 0.0);
}

TEST(HammingDistanceTest, BinarizesAtHalf) {
  Tensor a({2}, {0.4f, 0.6f});
  Tensor b({2}, {0.0f, 1.0f});
  EXPECT_DOUBLE_EQ(HammingDistance(a, b), 0.0);
}

TEST(HammingDistanceTest, Symmetric) {
  Rng rng(1);
  Tensor a({20});
  Tensor b({20});
  for (size_t i = 0; i < 20; ++i) {
    a[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    b[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  EXPECT_DOUBLE_EQ(HammingDistance(a, b), HammingDistance(b, a));
}

TEST(SsimTest, IdenticalImagesScoreOne) {
  Rng rng(2);
  Tensor img({1, 8, 8});
  for (float& v : img.vec()) v = static_cast<float>(rng.Uniform());
  EXPECT_NEAR(Ssim(img, img), 1.0, 1e-9);
}

TEST(SsimTest, SymmetricAndBounded) {
  Rng rng(3);
  Tensor a({1, 8, 8});
  Tensor b({1, 8, 8});
  for (float& v : a.vec()) v = static_cast<float>(rng.Uniform());
  for (float& v : b.vec()) v = static_cast<float>(rng.Uniform());
  double s = Ssim(a, b);
  EXPECT_NEAR(s, Ssim(b, a), 1e-12);
  EXPECT_GE(s, -1.0 - 1e-9);
  EXPECT_LE(s, 1.0 + 1e-9);
}

TEST(SsimTest, AnticorrelatedImagesScoreNegative) {
  Tensor a({1, 2, 8});
  Tensor b({1, 2, 8});
  for (size_t i = 0; i < a.size(); ++i) {
    float v = (i % 2 == 0) ? 1.0f : 0.0f;
    a[i] = v;
    b[i] = 1.0f - v;
  }
  EXPECT_LT(Ssim(a, b), 0.0);
}

TEST(SsimTest, DegradesWithNoise) {
  Rng rng(4);
  Tensor base({1, 8, 8});
  for (float& v : base.vec()) v = static_cast<float>(rng.Uniform());
  Tensor slightly = base;
  Tensor heavily = base;
  for (size_t i = 0; i < base.size(); ++i) {
    slightly[i] += static_cast<float>(rng.Gaussian(0.0, 0.02));
    heavily[i] += static_cast<float>(rng.Gaussian(0.0, 0.5));
  }
  EXPECT_GT(Ssim(base, slightly), Ssim(base, heavily));
}

TEST(NegativeSsimTest, IsNegationOfSsim) {
  Rng rng(5);
  Tensor a({1, 4, 4});
  Tensor b({1, 4, 4});
  for (float& v : a.vec()) v = static_cast<float>(rng.Uniform());
  for (float& v : b.vec()) v = static_cast<float>(rng.Uniform());
  EXPECT_DOUBLE_EQ(NegativeSsim(a, b), -Ssim(a, b));
}

TEST(L2DissimilarityTest, KnownValues) {
  Tensor a({2}, {0.0f, 3.0f});
  Tensor b({2}, {4.0f, 0.0f});
  EXPECT_DOUBLE_EQ(L2Dissimilarity(a, b), 5.0);
  EXPECT_DOUBLE_EQ(L2Dissimilarity(a, a), 0.0);
}

TEST(DissimilarityDeathTest, SizeMismatchDies) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_DEATH((void)HammingDistance(a, b), "CHECK failed");
  EXPECT_DEATH((void)L2Dissimilarity(a, b), "CHECK failed");
}

}  // namespace
}  // namespace dpaudit
