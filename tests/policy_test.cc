#include "core/policy.h"

#include <gtest/gtest.h>

#include "dp/rdp_accountant.h"

namespace dpaudit {
namespace {

TEST(MakePrivacyPlanTest, FromPosteriorBelief) {
  IdentifiabilityRequirement req;
  req.kind = RequirementKind::kMaxPosteriorBelief;
  req.bound = 0.9;
  req.delta = 0.001;
  req.steps = 30;
  auto plan = MakePrivacyPlan(req);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NEAR(plan->dp.epsilon, 2.1972, 1e-3);  // Table 1 row
  EXPECT_NEAR(plan->rho_beta, 0.9, 1e-9);
  EXPECT_NEAR(plan->rho_alpha, 0.229, 0.002);
  EXPECT_EQ(plan->steps, 30u);
  // The plan's noise multiplier must spend exactly epsilon over 30 steps.
  double achieved = *ComposedEpsilonForNoiseMultiplier(
      plan->noise_multiplier, req.delta, req.steps);
  EXPECT_NEAR(achieved, plan->dp.epsilon, 1e-5);
}

TEST(MakePrivacyPlanTest, FromExpectedAdvantage) {
  IdentifiabilityRequirement req;
  req.kind = RequirementKind::kMaxExpectedAdvantage;
  req.bound = 0.229;
  req.delta = 0.001;
  req.steps = 30;
  auto plan = MakePrivacyPlan(req);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->dp.epsilon, 2.2, 0.01);
  EXPECT_NEAR(plan->rho_alpha, 0.229, 1e-6);
  EXPECT_NEAR(plan->rho_beta, 0.9, 0.001);
}

TEST(MakePrivacyPlanTest, StricterRequirementMeansMoreNoise) {
  IdentifiabilityRequirement strict;
  strict.bound = 0.6;
  IdentifiabilityRequirement lax;
  lax.bound = 0.99;
  auto strict_plan = MakePrivacyPlan(strict);
  auto lax_plan = MakePrivacyPlan(lax);
  ASSERT_TRUE(strict_plan.ok());
  ASSERT_TRUE(lax_plan.ok());
  EXPECT_LT(strict_plan->dp.epsilon, lax_plan->dp.epsilon);
  EXPECT_GT(strict_plan->noise_multiplier, lax_plan->noise_multiplier);
}

TEST(MakePrivacyPlanTest, RejectsInvalid) {
  IdentifiabilityRequirement req;
  req.bound = 0.4;  // below coin flip
  EXPECT_FALSE(MakePrivacyPlan(req).ok());
  req.bound = 0.9;
  req.steps = 0;
  EXPECT_FALSE(MakePrivacyPlan(req).ok());
  req.steps = 30;
  req.delta = 0.0;
  EXPECT_FALSE(MakePrivacyPlan(req).ok());
}

TEST(PlanFromPrivacyParamsTest, RoundTripsWithMakePlan) {
  IdentifiabilityRequirement req;
  req.bound = 0.9;
  req.delta = 0.001;
  req.steps = 30;
  auto forward = MakePrivacyPlan(req);
  ASSERT_TRUE(forward.ok());
  auto reverse = PlanFromPrivacyParams(forward->dp, 30);
  ASSERT_TRUE(reverse.ok());
  EXPECT_NEAR(reverse->rho_beta, 0.9, 1e-9);
  EXPECT_NEAR(reverse->noise_multiplier, forward->noise_multiplier, 1e-9);
}

TEST(PlanFromPrivacyParamsTest, RejectsPureDp) {
  EXPECT_FALSE(PlanFromPrivacyParams({1.0, 0.0}, 30).ok());
}

TEST(PrivacyPlanTest, ToStringMentionsEverything) {
  IdentifiabilityRequirement req;
  req.bound = 0.9;
  auto plan = MakePrivacyPlan(req);
  ASSERT_TRUE(plan.ok());
  std::string s = plan->ToString();
  EXPECT_NE(s.find("rho_beta"), std::string::npos);
  EXPECT_NE(s.find("rho_alpha"), std::string::npos);
  EXPECT_NE(s.find("noise multiplier"), std::string::npos);
  EXPECT_NE(s.find("30 steps"), std::string::npos);
}

}  // namespace
}  // namespace dpaudit
