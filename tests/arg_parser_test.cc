#include "util/arg_parser.h"

#include <gtest/gtest.h>

namespace dpaudit {
namespace {

StatusOr<ArgParser> ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgParser::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, PositionalAndFlags) {
  auto args = ParseArgs({"experiment", "--epsilon", "2.2", "--reps=50"});
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args->positional().size(), 1u);
  EXPECT_EQ(args->positional()[0], "experiment");
  EXPECT_TRUE(args->Has("epsilon"));
  EXPECT_TRUE(args->Has("reps"));
  EXPECT_DOUBLE_EQ(*args->GetDouble("epsilon", 0.0), 2.2);
  EXPECT_EQ(*args->GetInt("reps", 0), 50);
}

TEST(ArgParserTest, Fallbacks) {
  auto args = ParseArgs({"cmd"});
  ASSERT_TRUE(args.ok());
  EXPECT_DOUBLE_EQ(*args->GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(*args->GetInt("missing", 7), 7);
  EXPECT_EQ(args->GetString("missing", "x"), "x");
  EXPECT_TRUE(*args->GetBool("missing", true));
}

TEST(ArgParserTest, BoolParsing) {
  auto args = ParseArgs({"--a", "true", "--b=0", "--c", "yes", "--d", "maybe"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(*args->GetBool("a", false));
  EXPECT_FALSE(*args->GetBool("b", true));
  EXPECT_TRUE(*args->GetBool("c", false));
  EXPECT_FALSE(args->GetBool("d", false).ok());
}

TEST(ArgParserTest, MalformedInputs) {
  EXPECT_FALSE(ParseArgs({"--dangling"}).ok());  // flag without value
  EXPECT_FALSE(ParseArgs({"--x", "1", "--x", "2"}).ok());  // repeated
  EXPECT_FALSE(ParseArgs({"--x", "1", "positional"}).ok());  // after flags
  EXPECT_FALSE(ParseArgs({"--=v"}).ok());  // empty name
}

TEST(ArgParserTest, TypeErrors) {
  auto args = ParseArgs({"--num", "abc", "--int", "1.5"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->GetDouble("num", 0.0).ok());
  EXPECT_FALSE(args->GetInt("int", 0).ok());
}

TEST(ArgParserTest, UnconsumedFlagDetection) {
  auto args = ParseArgs({"--used", "1", "--typo", "2"});
  ASSERT_TRUE(args.ok());
  (void)*args->GetInt("used", 0);
  Status status = args->CheckAllConsumed();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("typo"), std::string::npos);
  (void)*args->GetInt("typo", 0);
  EXPECT_TRUE(args->CheckAllConsumed().ok());
}

TEST(ArgParserTest, EqualsFormWithEmptyValue) {
  auto args = ParseArgs({"--name="});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("name", "zz"), "");
}

}  // namespace
}  // namespace dpaudit
