#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace dpaudit {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitIsDeterministicAndIndependentOfParentUse) {
  Rng parent1(7);
  Rng parent2(7);
  // Consuming numbers from one parent must not change its children.
  for (int i = 0; i < 10; ++i) (void)parent1.Uniform();
  Rng child1 = parent1.Split(3);
  Rng child2 = parent2.Split(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child1.Uniform(), child2.Uniform());
  }
}

TEST(RngTest, SplitChildrenAreDistinct) {
  Rng parent(7);
  Rng a = parent.Split(0);
  Rng b = parent.Split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, FillGaussianMatchesRepeatedDraws) {
  // The batched fill must consume the engine identically to repeated
  // Gaussian() calls — same values, same order — so code that switches to
  // FillGaussian reproduces historical noise streams bit-for-bit. Odd sizes
  // matter: std::normal_distribution generates pairs and caches one variate.
  for (size_t n : {size_t{1}, size_t{7}, size_t{64}, size_t{513}}) {
    Rng scalar_rng(123);
    Rng batch_rng(123);
    std::vector<double> expected(n);
    for (double& v : expected) v = scalar_rng.Gaussian();
    std::vector<double> batched(n);
    batch_rng.FillGaussian(batched.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batched[i], expected[i]) << "n=" << n << " i=" << i;
    }
    // And the engines stay in lockstep afterwards.
    EXPECT_EQ(batch_rng.Gaussian(), scalar_rng.Gaussian());
  }
}

TEST(RngTest, UniformIntCachedDistributionTracksRangeChanges) {
  // UniformInt reuses its distribution object between calls and only updates
  // the parameters when the range changes; interleaved ranges must each stay
  // within their own bound and cover it.
  Rng rng(31);
  std::set<uint64_t> seen_small;
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
    uint64_t small = rng.UniformInt(3);
    EXPECT_LT(small, 3u);
    seen_small.insert(small);
    EXPECT_LT(rng.UniformInt(10), 10u);
    EXPECT_EQ(rng.UniformInt(1), 0u);
  }
  EXPECT_EQ(seen_small.size(), 3u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, LaplaceMoments) {
  Rng rng(19);
  const int n = 100000;
  const double scale = 1.5;
  double sum = 0.0;
  double sum_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Laplace(scale);
    sum += x;
    sum_abs += std::fabs(x);
  }
  // Laplace(0, b): mean 0, E|X| = b.
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_abs / n, scale, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class PermutationTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PermutationTest, IsAPermutation) {
  size_t n = GetParam();
  Rng rng(29 + n);
  std::vector<size_t> perm = rng.Permutation(n);
  ASSERT_EQ(perm.size(), n);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
}

TEST_P(PermutationTest, SampleWithoutReplacementIsDistinct) {
  size_t n = GetParam();
  if (n == 0) return;
  size_t k = n / 2 + 1 > n ? n : n / 2 + 1;
  Rng rng(31 + n);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(n, k);
  ASSERT_EQ(sample.size(), k);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), k);
  for (size_t idx : sample) EXPECT_LT(idx, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationTest,
                         ::testing::Values(0, 1, 2, 5, 17, 100, 1000));

TEST(RngTest, PermutationIsShuffled) {
  Rng rng(37);
  std::vector<size_t> perm = rng.Permutation(100);
  size_t fixed_points = 0;
  for (size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  // Expected ~1 fixed point for a uniform permutation.
  EXPECT_LT(fixed_points, 10u);
}

}  // namespace
}  // namespace dpaudit
