#include "core/scores.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/rdp_accountant.h"

namespace dpaudit {
namespace {

// ---------- rho_beta (Theorem 1 / Eq. 10) ----------

TEST(RhoBetaTest, PaperTableOneValues) {
  // Table 1 lists (rho_beta, epsilon) pairs; check both datasets' rows.
  EXPECT_NEAR(*RhoBeta(0.08), 0.52, 0.005);
  EXPECT_NEAR(*RhoBeta(0.12), 0.53, 0.005);
  EXPECT_NEAR(*RhoBeta(1.1), 0.75, 0.005);
  EXPECT_NEAR(*RhoBeta(2.2), 0.90, 0.005);
  EXPECT_NEAR(*RhoBeta(4.6), 0.99, 0.005);
}

TEST(RhoBetaTest, ZeroEpsilonIsCoinFlip) {
  EXPECT_DOUBLE_EQ(*RhoBeta(0.0), 0.5);
}

TEST(RhoBetaTest, MonotonicIncreasing) {
  double prev = 0.0;
  for (double eps : {0.01, 0.1, 1.0, 2.0, 5.0, 10.0}) {
    double rb = *RhoBeta(eps);
    EXPECT_GT(rb, prev);
    prev = rb;
  }
}

TEST(RhoBetaTest, RejectsInvalid) {
  EXPECT_FALSE(RhoBeta(-0.1).ok());
  EXPECT_FALSE(RhoBeta(std::nan("")).ok());
}

TEST(EpsilonForRhoBetaTest, RejectsOutOfRange) {
  EXPECT_FALSE(EpsilonForRhoBeta(0.5).ok());
  EXPECT_FALSE(EpsilonForRhoBeta(0.3).ok());
  EXPECT_FALSE(EpsilonForRhoBeta(1.0).ok());
}

class RhoBetaRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(RhoBetaRoundTrip, InverseIsExact) {
  double eps = GetParam();
  double rho = *RhoBeta(eps);
  EXPECT_NEAR(*EpsilonForRhoBeta(rho), eps, 1e-9 * std::max(1.0, eps));
}

INSTANTIATE_TEST_SUITE_P(EpsilonGrid, RhoBetaRoundTrip,
                         ::testing::Values(0.08, 0.12, 0.5, 1.1, 2.2, 4.6,
                                           8.0));

// ---------- rho_alpha (Theorem 2 / Eq. 15) ----------

TEST(RhoAlphaTest, PaperTableOneValuesMnist) {
  // MNIST rows: delta = 0.001.
  EXPECT_NEAR(*RhoAlpha(0.08, 0.001), 0.008, 0.002);
  EXPECT_NEAR(*RhoAlpha(1.1, 0.001), 0.12, 0.005);
  EXPECT_NEAR(*RhoAlpha(2.2, 0.001), 0.23, 0.005);
  EXPECT_NEAR(*RhoAlpha(4.6, 0.001), 0.46, 0.005);
}

TEST(RhoAlphaTest, PaperTableOneValuesPurchase) {
  // Purchase-100 rows: delta = 0.01.
  EXPECT_NEAR(*RhoAlpha(0.12, 0.01), 0.015, 0.003);
  EXPECT_NEAR(*RhoAlpha(1.1, 0.01), 0.14, 0.005);
  EXPECT_NEAR(*RhoAlpha(2.2, 0.01), 0.28, 0.005);
  EXPECT_NEAR(*RhoAlpha(4.6, 0.01), 0.54, 0.005);
}

TEST(RhoAlphaTest, IncreasesWithEpsilonAndDelta) {
  EXPECT_LT(*RhoAlpha(1.0, 1e-6), *RhoAlpha(2.0, 1e-6));
  // Larger delta -> smaller calibration factor -> larger advantage.
  EXPECT_LT(*RhoAlpha(1.0, 1e-6), *RhoAlpha(1.0, 1e-2));
}

TEST(RhoAlphaTest, RejectsInvalid) {
  EXPECT_FALSE(RhoAlpha(0.0, 0.001).ok());
  EXPECT_FALSE(RhoAlpha(1.0, 0.0).ok());
  EXPECT_FALSE(RhoAlpha(1.0, 1.0).ok());
}

class RhoAlphaRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RhoAlphaRoundTrip, InverseIsExact) {
  auto [eps, delta] = GetParam();
  double rho = *RhoAlpha(eps, delta);
  EXPECT_NEAR(*EpsilonForRhoAlpha(rho, delta), eps,
              1e-7 * std::max(1.0, eps));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RhoAlphaRoundTrip,
    ::testing::Combine(::testing::Values(0.08, 1.1, 2.2, 4.6),
                       ::testing::Values(0.001, 0.01, 1e-6)));

// ---------- RDP-composed rho_alpha (Section 5.2) ----------

TEST(RhoAlphaRdpTest, InvariantToSplittingAcrossSteps) {
  // k steps at eps_i compose to the same rho_alpha as one step at k * eps_i.
  const double alpha = 8.0;
  const double eps_i = 0.05;
  const size_t k = 30;
  double composed = *RhoAlphaRdp(static_cast<double>(k) * eps_i, alpha);
  double single = *RhoAlphaRdp(static_cast<double>(k) * eps_i, alpha);
  EXPECT_DOUBLE_EQ(composed, single);
  // And splitting differently changes nothing as long as the total matches.
  EXPECT_NEAR(*RhoAlphaRdp(1.5, alpha),
              *RhoAlphaRdp(0.5 + 0.5 + 0.5, alpha), 1e-12);
}

TEST(RhoAlphaRdpTest, ZeroBudgetMeansNoAdvantage) {
  EXPECT_DOUBLE_EQ(*RhoAlphaRdp(0.0, 2.0), 0.0);
}

TEST(RhoAlphaRdpTest, MatchesGaussianAdvantageForSingleRelease) {
  // One Gaussian release with noise multiplier z: eps_RDP(alpha) =
  // alpha/(2z^2), and the Bayes advantage is 2 Phi(1/(2z)) - 1. The RDP form
  // 2 Phi(sqrt(eps_RDP / (2 alpha))) - 1 must agree for every alpha.
  const double z = 1.7;
  double direct = GaussianAdvantage(1.0 / z);
  for (double alpha : {1.5, 2.0, 8.0, 64.0}) {
    double rdp_eps = GaussianRdpEpsilonFromNoiseMultiplier(alpha, z);
    EXPECT_NEAR(*RhoAlphaRdp(rdp_eps, alpha), direct, 1e-12);
  }
}

TEST(RhoAlphaRdpTest, RejectsInvalid) {
  EXPECT_FALSE(RhoAlphaRdp(-1.0, 2.0).ok());
  EXPECT_FALSE(RhoAlphaRdp(1.0, 1.0).ok());
}

// ---------- generic bounds and helpers ----------

TEST(GaussianAdvantageTest, KnownValues) {
  EXPECT_DOUBLE_EQ(GaussianAdvantage(0.0), 0.0);
  // Means 2 sigma apart: 2 Phi(1) - 1 ~ 0.6827 (the 68% rule).
  EXPECT_NEAR(GaussianAdvantage(2.0), 0.6827, 0.0005);
}

TEST(GenericAdvantageBoundTest, PropositionTwoShape) {
  // Adv <= (e^eps - 1) * Pr[A=1 | b=0].
  EXPECT_NEAR(*GenericAdvantageBound(1.0, 0.1),
              (std::exp(1.0) - 1.0) * 0.1, 1e-12);
  EXPECT_NEAR(*GenericAdvantageBound(1.0), std::exp(1.0) - 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(*GenericAdvantageBound(0.0, 0.5), 0.0);
}

TEST(GenericAdvantageBoundTest, LooserThanGaussianBound) {
  // The paper's motivation for Theorem 2: the generic bound is far above the
  // Gaussian-specific expected advantage.
  double generic = *GenericAdvantageBound(2.2);
  double gaussian = *RhoAlpha(2.2, 0.001);
  EXPECT_GT(generic, 10.0 * gaussian);
}

TEST(AdvantageFromSuccessRateTest, Linear) {
  EXPECT_DOUBLE_EQ(AdvantageFromSuccessRate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(AdvantageFromSuccessRate(1.0), 1.0);
  EXPECT_DOUBLE_EQ(AdvantageFromSuccessRate(0.0), -1.0);
  EXPECT_DOUBLE_EQ(AdvantageFromSuccessRate(0.615), 0.23);
}

TEST(RhoBetaSequentialTest, MatchesRhoBetaOfSum) {
  EXPECT_NEAR(*RhoBetaSequential(0.1, 22), *RhoBeta(2.2), 1e-12);
  EXPECT_DOUBLE_EQ(*RhoBetaSequential(0.0, 100), 0.5);
}

}  // namespace
}  // namespace dpaudit
