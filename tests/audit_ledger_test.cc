// Tests for the privacy-audit ledger's serialization layer: row round-trips
// (including non-finite and full-precision doubles), the writer API's seq
// assignment and enable/disable flag, the parser's structural rejections
// (missing manifest, schema mismatch, malformed fields, truncation), and
// the field-by-field diff.

#include "obs/audit_ledger.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace dpaudit {
namespace obs {
namespace {

LedgerManifest TestManifest() {
  LedgerManifest manifest;
  manifest.binary = "audit_ledger_test";
  manifest.simd = "scalar";
  manifest.threads = 3;
  manifest.batch_lanes = 8;
  manifest.git_commit = "abc1234";
  return manifest;
}

LedgerStep MakeStep(uint64_t index) {
  LedgerStep step;
  step.step = index;
  step.clip_norm = 3.0;
  step.local_sensitivity = 0.1 + 0.01 * static_cast<double>(index);
  step.sensitivity_used = step.local_sensitivity;
  step.sigma = 1.5;
  step.log_density_d = -1.25 - 0.3 * static_cast<double>(index);
  step.log_density_dprime = -1.5;
  step.llr = step.log_density_d - step.log_density_dprime;
  step.belief_d = 0.51 + 0.001 * static_cast<double>(index);
  step.rdp_eps_alpha2 = LedgerRdpAlpha2(step.sigma, step.local_sensitivity);
  return step;
}

LedgerExperiment MakeExperiment(uint64_t seq) {
  LedgerExperiment experiment;
  experiment.seq = seq;
  experiment.fingerprint = "0123456789abcdef0123456789abcdef";
  experiment.seed = 0xdeadbeefcafef00dULL;  // exercises 64-bit parsing
  experiment.repetitions = 2;
  experiment.steps_per_trial = 2;
  experiment.prior_belief_d = 0.5;
  experiment.epochs = 2;
  experiment.learning_rate = 0.005;  // not exactly representable: %.17g path
  experiment.clip_norm = 3.0;
  experiment.noise_multiplier = 1.4142135623730951;
  experiment.sensitivity_mode = "LS";
  experiment.neighbor_mode = "bounded";
  experiment.dataset_digest_d = "1111111111111111";
  experiment.dataset_digest_dprime = "2222222222222222";
  experiment.dataset_digest_test = "";
  LedgerDigest digest;
  for (uint64_t rep = 0; rep < experiment.repetitions; ++rep) {
    LedgerTrial trial;
    trial.rep = rep;
    trial.trained_on_d = rep % 2 == 0;
    trial.adversary_says_d = true;
    trial.final_belief_d = 0.6 + 0.01 * static_cast<double>(rep);
    trial.max_belief_d = trial.final_belief_d;
    trial.test_accuracy = -1.0;
    std::vector<double> sigmas;
    std::vector<double> local_sensitivities;
    for (uint64_t s = 0; s < experiment.steps_per_trial; ++s) {
      trial.steps.push_back(MakeStep(s));
      sigmas.push_back(trial.steps.back().sigma);
      local_sensitivities.push_back(trial.steps.back().local_sensitivity);
    }
    digest.AddTrial(trial.trained_on_d, trial.adversary_says_d,
                    trial.final_belief_d, trial.max_belief_d,
                    trial.test_accuracy, sigmas, local_sensitivities);
    experiment.trials.push_back(std::move(trial));
  }
  experiment.digest = digest.Hex();
  return experiment;
}

LedgerAudit MakeAudit(uint64_t seq, const std::string& digest) {
  LedgerAudit audit;
  audit.seq = seq;
  audit.digest = digest;
  audit.delta = 1e-3;
  audit.epsilon_from_sensitivities = 2.2000000000000006;
  audit.epsilon_from_belief = 0.40546510810816438;
  audit.epsilon_from_advantage = std::numeric_limits<double>::infinity();
  audit.advantage = 1.0;
  audit.max_belief = 0.6;
  return audit;
}

std::string SerializeTestLedger() {
  std::ostringstream out;
  WriteLedgerManifest(out, TestManifest());
  LedgerExperiment experiment = MakeExperiment(0);
  WriteLedgerExperiment(out, experiment);
  WriteLedgerAudit(out, MakeAudit(1, experiment.digest));
  return out.str();
}

StatusOr<LedgerFile> ParseString(const std::string& text) {
  std::istringstream in(text);
  return ParseLedger(in);
}

TEST(LedgerRoundTrip, PreservesEveryField) {
  StatusOr<LedgerFile> parsed = ParseString(SerializeTestLedger());
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  const LedgerManifest& manifest = parsed->manifest;
  EXPECT_EQ(manifest.schema_version, kLedgerSchemaVersion);
  EXPECT_EQ(manifest.binary, "audit_ledger_test");
  EXPECT_EQ(manifest.simd, "scalar");
  EXPECT_EQ(manifest.threads, 3u);
  EXPECT_EQ(manifest.batch_lanes, 8u);
  EXPECT_EQ(manifest.git_commit, "abc1234");

  ASSERT_EQ(parsed->experiments.size(), 1u);
  const LedgerExperiment expected = MakeExperiment(0);
  const LedgerExperiment& experiment = parsed->experiments[0];
  EXPECT_EQ(experiment.seq, expected.seq);
  EXPECT_EQ(experiment.fingerprint, expected.fingerprint);
  EXPECT_EQ(experiment.digest, expected.digest);
  EXPECT_EQ(experiment.seed, expected.seed);
  EXPECT_EQ(experiment.repetitions, expected.repetitions);
  EXPECT_EQ(experiment.steps_per_trial, expected.steps_per_trial);
  // %.17g must round-trip doubles bit-exactly, including 0.005.
  EXPECT_EQ(experiment.prior_belief_d, expected.prior_belief_d);
  EXPECT_EQ(experiment.learning_rate, expected.learning_rate);
  EXPECT_EQ(experiment.noise_multiplier, expected.noise_multiplier);
  EXPECT_EQ(experiment.sensitivity_mode, expected.sensitivity_mode);
  EXPECT_EQ(experiment.neighbor_mode, expected.neighbor_mode);
  EXPECT_EQ(experiment.dataset_digest_d, expected.dataset_digest_d);
  EXPECT_EQ(experiment.dataset_digest_dprime,
            expected.dataset_digest_dprime);
  EXPECT_EQ(experiment.dataset_digest_test, expected.dataset_digest_test);

  ASSERT_EQ(experiment.trials.size(), expected.trials.size());
  for (size_t rep = 0; rep < expected.trials.size(); ++rep) {
    const LedgerTrial& trial = experiment.trials[rep];
    const LedgerTrial& want = expected.trials[rep];
    EXPECT_EQ(trial.rep, want.rep);
    EXPECT_EQ(trial.trained_on_d, want.trained_on_d);
    EXPECT_EQ(trial.adversary_says_d, want.adversary_says_d);
    EXPECT_EQ(trial.final_belief_d, want.final_belief_d);
    EXPECT_EQ(trial.max_belief_d, want.max_belief_d);
    EXPECT_EQ(trial.test_accuracy, want.test_accuracy);
    ASSERT_EQ(trial.steps.size(), want.steps.size());
    for (size_t s = 0; s < want.steps.size(); ++s) {
      EXPECT_EQ(trial.steps[s].step, want.steps[s].step);
      EXPECT_EQ(trial.steps[s].clip_norm, want.steps[s].clip_norm);
      EXPECT_EQ(trial.steps[s].local_sensitivity,
                want.steps[s].local_sensitivity);
      EXPECT_EQ(trial.steps[s].sensitivity_used,
                want.steps[s].sensitivity_used);
      EXPECT_EQ(trial.steps[s].sigma, want.steps[s].sigma);
      EXPECT_EQ(trial.steps[s].log_density_d, want.steps[s].log_density_d);
      EXPECT_EQ(trial.steps[s].log_density_dprime,
                want.steps[s].log_density_dprime);
      EXPECT_EQ(trial.steps[s].llr, want.steps[s].llr);
      EXPECT_EQ(trial.steps[s].belief_d, want.steps[s].belief_d);
      EXPECT_EQ(trial.steps[s].rdp_eps_alpha2,
                want.steps[s].rdp_eps_alpha2);
    }
  }

  // The audit row's +Infinity spelling must survive the round trip.
  ASSERT_EQ(parsed->audits.size(), 1u);
  const LedgerAudit& audit = parsed->audits[0];
  EXPECT_EQ(audit.seq, 1u);
  EXPECT_EQ(audit.digest, expected.digest);
  EXPECT_EQ(audit.delta, 1e-3);
  EXPECT_EQ(audit.epsilon_from_sensitivities, 2.2000000000000006);
  EXPECT_TRUE(std::isinf(audit.epsilon_from_advantage));
  EXPECT_GT(audit.epsilon_from_advantage, 0.0);
}

TEST(LedgerWriter, AssignsSequenceNumbersAndTogglesEnableFlag) {
  const std::string path =
      ::testing::TempDir() + "/audit_ledger_writer_test.ledger.jsonl";
  EXPECT_FALSE(AuditLedgerEnabled());
  OpenAuditLedgerForTest(path);
  EXPECT_TRUE(AuditLedgerEnabled());

  LedgerExperiment first = MakeExperiment(0);
  LedgerExperiment second = MakeExperiment(0);
  AppendLedgerExperiment(&first);
  LedgerAudit audit = MakeAudit(0, first.digest);
  AppendLedgerAudit(&audit);
  AppendLedgerExperiment(&second);
  EXPECT_EQ(first.seq, 0u);
  EXPECT_EQ(audit.seq, 1u);
  EXPECT_EQ(second.seq, 2u);

  CloseAuditLedgerForTest();
  EXPECT_FALSE(AuditLedgerEnabled());

  StatusOr<LedgerFile> loaded = LoadLedgerFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->manifest.binary, "test");
  ASSERT_EQ(loaded->experiments.size(), 2u);
  EXPECT_EQ(loaded->experiments[0].seq, 0u);
  EXPECT_EQ(loaded->experiments[1].seq, 2u);
  ASSERT_EQ(loaded->audits.size(), 1u);
  EXPECT_EQ(loaded->audits[0].seq, 1u);
  std::remove(path.c_str());
}

TEST(LedgerParser, RejectsFileNotStartingWithManifest) {
  std::ostringstream out;
  WriteLedgerExperiment(out, MakeExperiment(0));
  StatusOr<LedgerFile> parsed = ParseString(out.str());
  EXPECT_FALSE(parsed.ok());
}

TEST(LedgerParser, RejectsSchemaVersionMismatch) {
  std::string text = SerializeTestLedger();
  const std::string needle = "\"schema_version\":1";
  const size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"schema_version\":999");
  StatusOr<LedgerFile> parsed = ParseString(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("schema"), std::string::npos)
      << parsed.status();
}

TEST(LedgerParser, RejectsMalformedField) {
  std::string text = SerializeTestLedger();
  const std::string needle = "\"final_belief_d\":";
  const size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"final_belief_x\":");
  StatusOr<LedgerFile> parsed = ParseString(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("final_belief_d"),
            std::string::npos)
      << parsed.status();
}

TEST(LedgerParser, RejectsTruncatedExperimentBlock) {
  const std::string text = SerializeTestLedger();
  // Drop everything from the last trial row on: the experiment block is now
  // incomplete and the parser must say so rather than return a short file.
  const size_t cut = text.rfind("{\"row\":\"trial\"");
  ASSERT_NE(cut, std::string::npos);
  StatusOr<LedgerFile> parsed = ParseString(text.substr(0, cut));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("truncated"), std::string::npos)
      << parsed.status();
}

TEST(LedgerParser, RejectsEmptyLines) {
  std::string text = SerializeTestLedger();
  const size_t first_newline = text.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  text.insert(first_newline + 1, "\n");
  EXPECT_FALSE(ParseString(text).ok());
}

TEST(LedgerDiffTest, IdenticalLedgersHaveNoDifferences) {
  StatusOr<LedgerFile> a = ParseString(SerializeTestLedger());
  StatusOr<LedgerFile> b = ParseString(SerializeTestLedger());
  ASSERT_TRUE(a.ok() && b.ok());
  std::ostringstream report;
  EXPECT_EQ(DiffLedgers(*a, *b, report), 0u);
}

TEST(LedgerDiffTest, CountsAndNamesFieldDifferences) {
  StatusOr<LedgerFile> a = ParseString(SerializeTestLedger());
  StatusOr<LedgerFile> b = ParseString(SerializeTestLedger());
  ASSERT_TRUE(a.ok() && b.ok());
  b->experiments[0].trials[1].final_belief_d += 0.25;
  b->audits[0].delta = 1e-4;
  std::ostringstream report;
  EXPECT_EQ(DiffLedgers(*a, *b, report), 2u);
  EXPECT_NE(report.str().find("final_belief_d"), std::string::npos)
      << report.str();
  EXPECT_NE(report.str().find("delta"), std::string::npos) << report.str();
}

}  // namespace
}  // namespace obs
}  // namespace dpaudit
