#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace dpaudit {
namespace {

TEST(RunningSummaryTest, EmptySummary) {
  RunningSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningSummaryTest, KnownMoments) {
  RunningSummary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningSummaryTest, SingleValue) {
  RunningSummary s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningSummaryTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningSummary whole;
  RunningSummary left;
  RunningSummary right;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Gaussian(1.0, 2.0);
    whole.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningSummaryTest, MergeWithEmpty) {
  RunningSummary a;
  a.Add(1.0);
  a.Add(2.0);
  RunningSummary empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningSummary b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 5.0);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.99), 7.0);
}

TEST(MeanStdDevTest, Basics) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 1.0);
  EXPECT_DOUBLE_EQ(StdDev({42.0}), 0.0);
}

TEST(FractionAboveTest, CountsStrictly) {
  std::vector<double> xs = {0.1, 0.5, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(FractionAbove(xs, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(FractionAbove(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(FractionAbove({}, 0.0), 0.0);
}

TEST(WilsonIntervalTest, CoversPointEstimate) {
  Interval ci = WilsonInterval(30, 100);
  EXPECT_LT(ci.lo, 0.3);
  EXPECT_GT(ci.hi, 0.3);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(WilsonIntervalTest, ExtremesStayInUnitInterval) {
  Interval zero = WilsonInterval(0, 50);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  Interval all = WilsonInterval(50, 50);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
}

TEST(WilsonIntervalTest, ShrinksWithSampleSize) {
  Interval small = WilsonInterval(5, 10);
  Interval large = WilsonInterval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

}  // namespace
}  // namespace dpaudit
