// Cross-module property sweeps: monotonicity and consistency relations that
// must hold across the whole parameter space the experiments use.

#include <gtest/gtest.h>

#include <cmath>

#include "core/scores.h"
#include "dp/analytic_gaussian.h"
#include "dp/calibration.h"
#include "dp/mechanism.h"
#include "dp/rdp_accountant.h"
#include "util/random.h"

namespace dpaudit {
namespace {

constexpr double kEpsilons[] = {0.05, 0.08, 0.12, 0.5, 1.1, 2.2, 4.6, 8.0};
constexpr double kDeltas[] = {1e-2, 1e-3, 1e-5, 1e-8};

class DeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeltaSweep, RhoAlphaStrictlyIncreasesInEpsilon) {
  double delta = GetParam();
  double prev = 0.0;
  for (double eps : kEpsilons) {
    double rho = *RhoAlpha(eps, delta);
    EXPECT_GT(rho, prev) << "eps=" << eps;
    EXPECT_LT(rho, 1.0);
    prev = rho;
  }
}

TEST_P(DeltaSweep, RhoAlphaConsistentWithGaussianAdvantage) {
  // Theorem 2's bound is the Bayes advantage at mean distance eps / F
  // sigmas, F = sqrt(2 ln(1.25/delta)).
  double delta = GetParam();
  double factor = GaussianCalibrationFactor(delta);
  for (double eps : kEpsilons) {
    EXPECT_NEAR(*RhoAlpha(eps, delta), GaussianAdvantage(eps / factor),
                1e-12);
  }
}

TEST_P(DeltaSweep, CalibrationNoiseDecreasesInEpsilon) {
  double delta = GetParam();
  double prev = 1e18;
  for (double eps : kEpsilons) {
    double sigma = *GaussianSigma({eps, delta}, 1.0);
    EXPECT_LT(sigma, prev);
    prev = sigma;
  }
}

TEST_P(DeltaSweep, AccountantNoiseMultiplierDecreasesInTargetEpsilon) {
  double delta = GetParam();
  double prev = 1e18;
  for (double eps : kEpsilons) {
    double z = *NoiseMultiplierForTargetEpsilon(eps, delta, 30);
    EXPECT_LT(z, prev) << "eps=" << eps;
    prev = z;
  }
}

TEST_P(DeltaSweep, ClassicCalibrationSoundInsideItsValidityDomain) {
  // Eq. 1's derivation covers eps <= 1; there the classic sigma must
  // satisfy the exact characterization (with slack — that is its
  // looseness), so the analytic sigma is never larger.
  double delta = GetParam();
  for (double eps : kEpsilons) {
    if (eps > 1.0) continue;
    double classic = *GaussianSigma({eps, delta}, 1.0);
    EXPECT_LE(*AnalyticGaussianDelta(classic, eps, 1.0), delta * 1.0001);
    EXPECT_LE(*AnalyticGaussianSigma({eps, delta}, 1.0), classic * 1.0001);
  }
}

TEST(CalibrationValidityTest, ClassicUnderNoisesOutsideItsDomain) {
  // Outside eps <= 1 the paper's Eq. 1 can FAIL to provide (eps, delta)-DP
  // (Balle & Wang 2018): at eps = 8, delta = 0.01 the classic sigma is
  // smaller than the exact requirement, and the exact delta it achieves
  // exceeds the target. The analytic module detects this.
  double classic = *GaussianSigma({8.0, 0.01}, 1.0);
  double required = *AnalyticGaussianSigma({8.0, 0.01}, 1.0);
  EXPECT_LT(classic, required);
  EXPECT_GT(*AnalyticGaussianDelta(classic, 8.0, 1.0), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweep, ::testing::ValuesIn(kDeltas));

class EpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonSweep, RhoAlphaIncreasesInDelta) {
  double eps = GetParam();
  double prev = 1.0;
  // kDeltas is descending, so rho_alpha must descend too.
  for (double delta : kDeltas) {
    double rho = *RhoAlpha(eps, delta);
    EXPECT_LT(rho, prev) << "delta=" << delta;
    prev = rho;
  }
}

TEST_P(EpsilonSweep, AccountantEpsilonDecreasesInDelta) {
  double target = GetParam();
  // Fixed noise from the strictest delta; certified epsilon must shrink as
  // delta is relaxed.
  double z = *NoiseMultiplierForTargetEpsilon(target, kDeltas[3], 30);
  double prev = 0.0;
  for (double delta : kDeltas) {  // descending deltas
    double eps = *ComposedEpsilonForNoiseMultiplier(z, delta, 30);
    EXPECT_GT(eps, prev) << "delta=" << delta;
    prev = eps;
  }
}

TEST_P(EpsilonSweep, RhoBetaRhoAlphaOrdering) {
  // Both scores grow with epsilon and rho_alpha (an advantage in [0,1])
  // stays below 2*rho_beta - 1 + 1 trivially; the meaningful relation:
  // the generic Prop. 2 bound dominates the Gaussian-specific rho_alpha.
  double eps = GetParam();
  for (double delta : kDeltas) {
    double generic = *GenericAdvantageBound(eps);
    EXPECT_GE(generic, *RhoAlpha(eps, delta));
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonSweep,
                         ::testing::ValuesIn(kEpsilons));

class LaplaceEpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceEpsilonSweep, LogLikelihoodRatioBoundedByEpsilonEverywhere) {
  double eps = GetParam();
  LaplaceMechanism mechanism(*LaplaceScale(eps, 1.0));
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(-20.0, 21.0);
    double llr = mechanism.LogDensityScalar(x, 0.0) -
                 mechanism.LogDensityScalar(x, 1.0);
    EXPECT_LE(std::fabs(llr), eps + 1e-9);
  }
}

TEST_P(LaplaceEpsilonSweep, BeliefNeverExceedsRhoBeta) {
  double eps = GetParam();
  LaplaceMechanism mechanism(*LaplaceScale(eps, 1.0));
  double bound = *RhoBeta(eps);
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    double x = mechanism.PerturbScalar(0.0, rng);
    double llr = mechanism.LogDensityScalar(x, 0.0) -
                 mechanism.LogDensityScalar(x, 1.0);
    double belief = 1.0 / (1.0 + std::exp(-llr));
    EXPECT_LE(belief, bound + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, LaplaceEpsilonSweep,
                         ::testing::Values(0.1, 0.5, 1.1, 2.2, 4.6));

class SamplingRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(SamplingRateSweep, SubsampledEpsilonBelowFullBatch) {
  double q = GetParam();
  const double z = 1.5;
  const double delta = 1e-5;
  double sampled =
      *ComposedEpsilonForSampledNoiseMultiplier(q, z, delta, 30);
  double full = *ComposedEpsilonForNoiseMultiplier(z, delta, 30);
  EXPECT_LE(sampled, full * 1.0001);
  EXPECT_GE(sampled, 0.0);
}

TEST_P(SamplingRateSweep, SubsampledRdpMonotoneInOrder) {
  double q = GetParam();
  double prev = 0.0;
  for (size_t alpha : {2, 4, 8, 16, 32}) {
    double eps = SampledGaussianRdpEpsilon(alpha, q, 1.5);
    EXPECT_GE(eps, prev * 0.999) << "alpha=" << alpha;
    prev = eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplingRateSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.9, 1.0));

// Round-trip chain across the whole stack: requirement -> epsilon -> noise
// -> accountant -> epsilon -> score.
class FullChainSweep : public ::testing::TestWithParam<double> {};

TEST_P(FullChainSweep, RequirementSurvivesTheRoundTrip) {
  double rho_beta = GetParam();
  const double delta = 1e-3;
  const size_t k = 30;
  double eps = *EpsilonForRhoBeta(rho_beta);
  double z = *NoiseMultiplierForTargetEpsilon(eps, delta, k);
  double eps_back = *ComposedEpsilonForNoiseMultiplier(z, delta, k);
  double rho_back = *RhoBeta(eps_back);
  EXPECT_NEAR(rho_back, rho_beta, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, FullChainSweep,
                         ::testing::Values(0.52, 0.6, 0.75, 0.9, 0.99));

}  // namespace
}  // namespace dpaudit
