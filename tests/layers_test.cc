#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/channel_norm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/gradient_check.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "util/random.h"

namespace dpaudit {
namespace {

TEST(DenseTest, ForwardKnownValues) {
  Dense dense(2, 2);
  // W = [[1, 2], [3, 4]], b = [0.5, -0.5].
  std::vector<Tensor*> params = dense.Params();
  *params[0] = Tensor({2, 2}, {1, 2, 3, 4});
  *params[1] = Tensor({2}, {0.5f, -0.5f});
  Tensor y = dense.Forward(Tensor({2}, {1.0f, 1.0f}));
  EXPECT_FLOAT_EQ(y[0], 3.5f);
  EXPECT_FLOAT_EQ(y[1], 6.5f);
}

TEST(DenseTest, FlattensInputImplicitly) {
  Dense dense(6, 2);
  Rng rng(1);
  dense.Initialize(rng);
  Tensor image({1, 2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = dense.Forward(image);
  EXPECT_EQ(y.size(), 2u);
  // Backward must return the input's original shape.
  Tensor gx = dense.Backward(Tensor({2}, {1.0f, 0.0f}));
  EXPECT_EQ(gx.shape(), image.shape());
}

TEST(DenseTest, InitializationBounds) {
  Dense dense(50, 30);
  Rng rng(2);
  dense.Initialize(rng);
  double limit = std::sqrt(6.0 / 80.0);
  for (float w : dense.Params()[0]->vec()) {
    EXPECT_GE(w, -limit);
    EXPECT_LE(w, limit);
  }
  for (float b : dense.Params()[1]->vec()) EXPECT_EQ(b, 0.0f);
}

TEST(ReluTest, ForwardBackward) {
  Relu relu;
  // Named input: the layer.h lifetime contract requires the forward input to
  // outlive the backward call (layers cache a pointer to it).
  Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  Tensor g = relu.Backward(Tensor({4}, {1.0f, 1.0f, 1.0f, 1.0f}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);  // blocked: input < 0
  EXPECT_FLOAT_EQ(g[1], 0.0f);  // blocked at exactly 0
  EXPECT_FLOAT_EQ(g[2], 1.0f);
}

TEST(SoftmaxTest, SumsToOneAndOrders) {
  Softmax softmax;
  Tensor p = softmax.Forward(Tensor({3}, {1.0f, 2.0f, 3.0f}));
  double sum = 0.0;
  for (size_t i = 0; i < 3; ++i) sum += p[i];
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Softmax softmax;
  Tensor p = softmax.Forward(Tensor({2}, {1000.0f, 1001.0f}));
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-6);
}

TEST(Conv2dTest, ForwardKnownValues) {
  Conv2d conv(1, 1, 2);
  // Kernel [[1, 0], [0, 1]] (trace filter), bias 1.
  *conv.Params()[0] = Tensor({1, 1, 2, 2}, {1, 0, 0, 1});
  *conv.Params()[1] = Tensor({1}, {1.0f});
  Tensor x({1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv.Forward(x);
  ASSERT_EQ(y.dim(1), 2u);
  EXPECT_FLOAT_EQ(y.At(0, 0, 0), 1 + 5 + 1);
  EXPECT_FLOAT_EQ(y.At(0, 0, 1), 2 + 6 + 1);
  EXPECT_FLOAT_EQ(y.At(0, 1, 1), 5 + 9 + 1);
}

TEST(MaxPoolTest, ForwardPicksMaxima) {
  MaxPool2d pool(2);
  Tensor x({1, 4, 4}, {1, 2,  3,  4,
                       5, 6,  7,  8,
                       9, 10, 11, 12,
                       13, 14, 15, 16});
  Tensor y = pool.Forward(x);
  ASSERT_EQ(y.dim(1), 2u);
  EXPECT_FLOAT_EQ(y.At(0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(y.At(0, 0, 1), 8.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1, 0), 14.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1, 1), 16.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x({1, 2, 2}, {1, 9, 3, 4});
  (void)pool.Forward(x);
  Tensor g = pool.Backward(Tensor({1, 1, 1}, {5.0f}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 5.0f);  // argmax position
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(MaxPoolTest, DropsTrailingRowsInValidMode) {
  MaxPool2d pool(2);
  Tensor x({1, 5, 5});
  Tensor y = pool.Forward(x);
  EXPECT_EQ(y.dim(1), 2u);
  EXPECT_EQ(y.dim(2), 2u);
}

TEST(ChannelNormTest, NormalizesPerChannel) {
  ChannelNorm norm(2);
  Tensor x({2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = norm.Forward(x);
  for (size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (size_t i = 0; i < 4; ++i) mean += y.At(c, i / 2, i % 2);
    EXPECT_NEAR(mean / 4.0, 0.0, 1e-5);
    double var = 0.0;
    for (size_t i = 0; i < 4; ++i) {
      double v = y.At(c, i / 2, i % 2);
      var += v * v;
    }
    EXPECT_NEAR(var / 4.0, 1.0, 1e-3);
  }
}

TEST(ChannelNormTest, GammaBetaApply) {
  ChannelNorm norm(1);
  *norm.Params()[0] = Tensor({1}, {2.0f});  // gamma
  *norm.Params()[1] = Tensor({1}, {1.0f});  // beta
  Tensor x({1, 1, 2}, {0.0f, 1.0f});
  Tensor y = norm.Forward(x);
  // Normalized values are -1 and +1 (up to epsilon), so outputs ~ -1 and 3.
  EXPECT_NEAR(y[0], -1.0, 2e-2);
  EXPECT_NEAR(y[1], 3.0, 2e-2);
}

TEST(LayerCloneTest, ClonePreservesParamsButDecouples) {
  Dense dense(3, 2);
  Rng rng(3);
  dense.Initialize(rng);
  std::unique_ptr<Layer> clone = dense.Clone();
  EXPECT_EQ(*clone->Params()[0], *dense.Params()[0]);
  // Mutating the clone must not touch the original.
  (*clone->Params()[0])[0] += 1.0f;
  EXPECT_NE((*clone->Params()[0])[0], (*dense.Params()[0])[0]);
}

// Gradient checks: build a one-layer (plus head) network around each layer
// type and compare analytic vs numeric gradients.

TEST(GradientCheckTest, DenseNetwork) {
  Network net;
  net.Add(std::make_unique<Dense>(6, 4));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(4, 3));
  Rng rng(7);
  net.Initialize(rng);
  Tensor x({6}, {0.5f, -0.2f, 0.3f, 0.9f, -0.7f, 0.1f});
  GradientCheckResult result = CheckNetworkGradient(net, x, 1);
  EXPECT_LT(result.max_rel_error, 5e-2);
  EXPECT_LT(result.max_abs_error, 1e-2);
}

TEST(GradientCheckTest, ConvPoolNetwork) {
  Network net;
  net.Add(std::make_unique<Conv2d>(1, 2, 3));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<MaxPool2d>(2));
  net.Add(std::make_unique<Dense>(2 * 3 * 3, 3));
  Rng rng(8);
  net.Initialize(rng);
  Rng data_rng(9);
  Tensor x({1, 8, 8});
  for (float& v : x.vec()) v = static_cast<float>(data_rng.Uniform());
  GradientCheckResult result = CheckNetworkGradient(net, x, 2);
  EXPECT_LT(result.max_rel_error, 5e-2);
}

TEST(GradientCheckTest, ChannelNormNetwork) {
  Network net;
  net.Add(std::make_unique<Conv2d>(1, 2, 3));
  net.Add(std::make_unique<ChannelNorm>(2));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(2 * 6 * 6, 3));
  Rng rng(10);
  net.Initialize(rng);
  Rng data_rng(11);
  Tensor x({1, 8, 8});
  for (float& v : x.vec()) v = static_cast<float>(data_rng.Uniform());
  GradientCheckResult result = CheckNetworkGradient(net, x, 0, 1e-3, 3);
  EXPECT_LT(result.max_rel_error, 8e-2);
}

}  // namespace
}  // namespace dpaudit
