#include "core/dpsgd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

DpSgdConfig FastConfig() {
  DpSgdConfig config;
  config.epochs = 5;
  config.learning_rate = 0.05;
  config.clip_norm = 1.0;
  config.noise_multiplier = 1.0;
  return config;
}

TEST(DpSgdConfigTest, Validation) {
  EXPECT_TRUE(FastConfig().Validate().ok());
  DpSgdConfig bad = FastConfig();
  bad.epochs = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastConfig();
  bad.learning_rate = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastConfig();
  bad.clip_norm = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastConfig();
  bad.noise_multiplier = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(DpSgdTest, RejectsMismatchedNeighborSizes) {
  Rng rng(1);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(10, rng);
  DpSgdConfig config = FastConfig();
  config.neighbor_mode = NeighborMode::kBounded;
  // Bounded requires equal sizes.
  Dataset smaller = d.WithRecordRemoved(0);
  Rng run_rng(2);
  EXPECT_FALSE(RunDpSgd(net, d, smaller, true, config, run_rng).ok());
  // Unbounded requires |D'| = |D| - 1.
  config.neighbor_mode = NeighborMode::kUnbounded;
  EXPECT_FALSE(RunDpSgd(net, d, d, true, config, run_rng).ok());
  EXPECT_TRUE(RunDpSgd(net, d, smaller, true, config, run_rng).ok());
}

TEST(DpSgdTest, ProducesOneRecordPerEpoch) {
  Rng rng(3);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  Rng run_rng(4);
  auto result = RunDpSgd(net, d, d_prime, true, FastConfig(), run_rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->steps.size(), 5u);
  for (const DpSgdStepRecord& step : result->steps) {
    EXPECT_GT(step.sigma, 0.0);
    EXPECT_GT(step.sensitivity_used, 0.0);
    EXPECT_GE(step.local_sensitivity, 0.0);
  }
}

TEST(DpSgdTest, GlobalSensitivityMatchesNeighborMode) {
  Rng rng(5);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  DpSgdConfig config = FastConfig();
  config.sensitivity_mode = SensitivityMode::kGlobal;
  config.neighbor_mode = NeighborMode::kBounded;
  Rng run_rng(6);
  auto bounded = RunDpSgd(net, d, d_prime, true, config, run_rng);
  ASSERT_TRUE(bounded.ok());
  for (const auto& step : bounded->steps) {
    EXPECT_DOUBLE_EQ(step.sensitivity_used, 2.0 * config.clip_norm);
    EXPECT_DOUBLE_EQ(step.sigma,
                     config.noise_multiplier * 2.0 * config.clip_norm);
  }
  config.neighbor_mode = NeighborMode::kUnbounded;
  Dataset removed = d.WithRecordRemoved(0);
  auto unbounded = RunDpSgd(net, d, removed, true, config, run_rng);
  ASSERT_TRUE(unbounded.ok());
  for (const auto& step : unbounded->steps) {
    EXPECT_DOUBLE_EQ(step.sensitivity_used, config.clip_norm);
  }
}

TEST(DpSgdTest, LocalSensitivityScalesNoisePerStep) {
  Rng rng(7);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  DpSgdConfig config = FastConfig();
  config.sensitivity_mode = SensitivityMode::kLocalHat;
  Rng run_rng(8);
  auto result = RunDpSgd(net, d, d_prime, true, config, run_rng);
  ASSERT_TRUE(result.ok());
  for (const auto& step : result->steps) {
    if (step.local_sensitivity > 0.0) {
      EXPECT_DOUBLE_EQ(step.sensitivity_used, step.local_sensitivity);
      EXPECT_NEAR(step.sigma,
                  config.noise_multiplier * step.local_sensitivity, 1e-12);
    }
  }
}

TEST(DpSgdTest, LocalSensitivityBoundedByGlobal) {
  // ||S_D - S_D'|| <= 2C for bounded neighbors (triangle inequality on two
  // clipped per-example gradients).
  Rng rng(9);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  DpSgdConfig config = FastConfig();
  config.neighbor_mode = NeighborMode::kBounded;
  Rng run_rng(10);
  auto result = RunDpSgd(net, d, d_prime, true, config, run_rng);
  ASSERT_TRUE(result.ok());
  for (const auto& step : result->steps) {
    EXPECT_LE(step.local_sensitivity, 2.0 * config.clip_norm + 1e-6);
  }
}

TEST(DpSgdTest, DeterministicGivenSeed) {
  Rng rng(11);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  Rng run_a(12);
  Rng run_b(12);
  auto a = RunDpSgd(net, d, d_prime, true, FastConfig(), run_a);
  auto b = RunDpSgd(net, d, d_prime, true, FastConfig(), run_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->model.FlatParams(), b->model.FlatParams());
  for (size_t i = 0; i < a->steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->steps[i].local_sensitivity,
                     b->steps[i].local_sensitivity);
  }
}

class RecordingObserver : public DpSgdStepObserver {
 public:
  void OnStep(size_t step, const std::vector<float>& sum_d,
              const std::vector<float>& sum_dprime,
              const std::vector<float>& released, double sigma) override {
    steps_seen.push_back(step);
    last_dims = {sum_d.size(), sum_dprime.size(), released.size()};
    sigmas.push_back(sigma);
  }
  std::vector<size_t> steps_seen;
  std::vector<size_t> last_dims;
  std::vector<double> sigmas;
};

TEST(DpSgdTest, ObserverSeesEveryStepWithFullVectors) {
  Rng rng(13);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  RecordingObserver observer;
  Rng run_rng(14);
  auto result =
      RunDpSgd(net, d, d_prime, true, FastConfig(), run_rng, &observer);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(observer.steps_seen.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(observer.steps_seen[i], i);
  for (size_t dim : observer.last_dims) EXPECT_EQ(dim, net.NumParams());
  for (size_t i = 0; i < observer.sigmas.size(); ++i) {
    EXPECT_DOUBLE_EQ(observer.sigmas[i], result->steps[i].sigma);
  }
}

TEST(DpSgdTest, TrainingMovesParameters) {
  Rng rng(15);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  std::vector<float> before = net.FlatParams();
  Rng run_rng(16);
  auto result = RunDpSgd(net, d, d_prime, true, FastConfig(), run_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->model.FlatParams(), before);
  // The input network is untouched (trainer clones).
  EXPECT_EQ(net.FlatParams(), before);
}

TEST(NonPrivateSgdTest, LearnsTheBlobs) {
  Rng rng(17);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(30, rng);
  auto trained = RunNonPrivateSgd(net, d, /*epochs=*/150,
                                  /*learning_rate=*/0.5, /*clip_norm=*/5.0);
  ASSERT_TRUE(trained.ok());
  double acc_before = net.Accuracy(d.inputs, d.labels);
  double acc_after = trained->Accuracy(d.inputs, d.labels);
  EXPECT_GT(acc_after, acc_before);
  EXPECT_GT(acc_after, 0.8);
}

TEST(DpSgdTest, OptimizerChoiceChangesTrajectoryDeterministically) {
  Rng rng(19);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  DpSgdConfig config = FastConfig();
  auto run = [&](OptimizerKind kind, uint64_t seed) {
    DpSgdConfig c = config;
    c.optimizer = kind;
    Rng run_rng(seed);
    auto result = RunDpSgd(net, d, d_prime, true, c, run_rng);
    EXPECT_TRUE(result.ok());
    return result->model.FlatParams();
  };
  // Same seed, different optimizers: different final weights.
  EXPECT_NE(run(OptimizerKind::kSgd, 7), run(OptimizerKind::kAdam, 7));
  EXPECT_NE(run(OptimizerKind::kSgd, 7), run(OptimizerKind::kMomentum, 7));
  // Same optimizer, same seed: identical.
  EXPECT_EQ(run(OptimizerKind::kAdam, 7), run(OptimizerKind::kAdam, 7));
}

TEST(DpSgdTest, AdaptiveClippingTracksGradientNorms) {
  Rng rng(20);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  DpSgdConfig config = FastConfig();
  config.epochs = 10;
  config.clip_norm = 50.0;  // start far above the factual norms
  config.adaptive_clipping = true;
  config.clip_smoothing = 0.5;
  Rng run_rng(21);
  auto result = RunDpSgd(net, d, d_prime, true, config, run_rng);
  ASSERT_TRUE(result.ok());
  // The clip norm must fall from the inflated start toward the data's
  // actual per-example gradient norms (well under 50).
  EXPECT_DOUBLE_EQ(result->steps.front().clip_norm, 50.0);
  EXPECT_LT(result->steps.back().clip_norm, 25.0);
  // And it must stay positive.
  for (const auto& step : result->steps) EXPECT_GT(step.clip_norm, 0.0);
}

TEST(DpSgdTest, AdaptiveClippingScalesNoiseWithCurrentClip) {
  Rng rng(22);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  DpSgdConfig config = FastConfig();
  config.epochs = 8;
  config.clip_norm = 50.0;
  config.adaptive_clipping = true;
  config.sensitivity_mode = SensitivityMode::kGlobal;
  config.neighbor_mode = NeighborMode::kBounded;
  Rng run_rng(23);
  auto result = RunDpSgd(net, d, d_prime, true, config, run_rng);
  ASSERT_TRUE(result.ok());
  for (const auto& step : result->steps) {
    EXPECT_DOUBLE_EQ(step.sensitivity_used, 2.0 * step.clip_norm);
    EXPECT_DOUBLE_EQ(step.sigma,
                     config.noise_multiplier * 2.0 * step.clip_norm);
  }
}

TEST(DpSgdTest, PerLayerClippingRunsAndDiffersFromFlat) {
  Rng rng(24);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  DpSgdConfig config = FastConfig();
  config.clip_norm = 0.1;  // aggressive so the clipping style matters
  auto run = [&](bool per_layer, uint64_t seed) {
    DpSgdConfig c = config;
    c.per_layer_clipping = per_layer;
    Rng run_rng(seed);
    auto result = RunDpSgd(net, d, d_prime, true, c, run_rng);
    EXPECT_TRUE(result.ok());
    return result->model.FlatParams();
  };
  EXPECT_NE(run(true, 7), run(false, 7));
  EXPECT_EQ(run(true, 7), run(true, 7));
}

TEST(DpSgdTest, PerLayerClippingKeepsLocalSensitivityWithinGlobal) {
  Rng rng(25);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 5.0f);
  DpSgdConfig config = FastConfig();
  config.per_layer_clipping = true;
  config.neighbor_mode = NeighborMode::kBounded;
  Rng run_rng(26);
  auto result = RunDpSgd(net, d, d_prime, true, config, run_rng);
  ASSERT_TRUE(result.ok());
  for (const auto& step : result->steps) {
    EXPECT_LE(step.local_sensitivity, 2.0 * config.clip_norm + 1e-6);
  }
}

TEST(DpSgdTest, PerLayerAndAdaptiveClippingConflict) {
  DpSgdConfig config = FastConfig();
  config.per_layer_clipping = true;
  config.adaptive_clipping = true;
  EXPECT_FALSE(config.Validate().ok());
  config.adaptive_clipping = false;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(DpSgdTest, AdaptiveClippingConfigValidation) {
  DpSgdConfig config = FastConfig();
  config.adaptive_clipping = true;
  config.clip_quantile = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.clip_quantile = 0.5;
  config.clip_smoothing = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.clip_smoothing = 1.0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(NonPrivateSgdTest, RejectsInvalid) {
  Rng rng(18);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(6, rng);
  Dataset empty;
  EXPECT_FALSE(RunNonPrivateSgd(net, empty, 1, 0.1, 1.0).ok());
  EXPECT_FALSE(RunNonPrivateSgd(net, d, 0, 0.1, 1.0).ok());
  EXPECT_FALSE(RunNonPrivateSgd(net, d, 1, 0.0, 1.0).ok());
}

}  // namespace
}  // namespace dpaudit
