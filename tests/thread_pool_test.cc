#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/random.h"

namespace dpaudit {
namespace {

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  pool.Wait();  // nothing scheduled
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ThreadPool::ParallelFor(1000, 8,
                          [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoOp) {
  ThreadPool::ParallelFor(0, 8, [](size_t) { FAIL(); });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(10, 1, [&order](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, SeededFanOutIsThreadCountInvariant) {
  // The determinism contract: per-index results derived from Split(i) do not
  // depend on the number of workers.
  auto run = [](size_t threads) {
    Rng root(99);
    std::vector<double> out(64);
    ThreadPool::ParallelFor(64, threads, [&](size_t i) {
      Rng rng = root.Split(i);
      out[i] = rng.Gaussian();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(DefaultThreadCountTest, Bounded) {
  size_t n = DefaultThreadCount();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

}  // namespace
}  // namespace dpaudit
