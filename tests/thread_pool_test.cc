#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/random.h"

namespace dpaudit {
namespace {

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  pool.Wait();  // nothing scheduled
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ThreadPool::ParallelFor(1000, 8,
                          [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoOp) {
  ThreadPool::ParallelFor(0, 8, [](size_t) { FAIL(); });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(10, 1, [&order](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, SeededFanOutIsThreadCountInvariant) {
  // The determinism contract: per-index results derived from Split(i) do not
  // depend on the number of workers.
  auto run = [](size_t threads) {
    Rng root(99);
    std::vector<double> out(64);
    ThreadPool::ParallelFor(64, threads, [&](size_t i) {
      Rng rng = root.Split(i);
      out[i] = rng.Gaussian();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelForTest, ChunkedCoversEveryIndexExactlyOnce) {
  // Any grain — including auto (0) and grain > n — claims each index once.
  for (size_t grain : {size_t{0}, size_t{1}, size_t{7}, size_t{2000}}) {
    std::vector<std::atomic<int>> hits(1000);
    ThreadPool::ParallelForChunked(1000, 8, grain, [&hits](size_t i) {
      hits[i].fetch_add(1);
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ParallelForTest, NestedParallelForCompletes) {
  // Inner regions issued from pool workers drain on the same shared pool
  // without deadlock: the calling thread claims chunks itself, so progress
  // never depends on a free worker.
  std::atomic<int> count{0};
  ThreadPool::ParallelFor(8, 4, [&count](size_t) {
    ThreadPool::ParallelFor(16, 4, [&count](size_t) {
      count.fetch_add(1);
    });
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ParallelForTest, ConcurrentRegionsShareOnePool) {
  // Independent threads each running their own ParallelFor interleave their
  // chunks on the one shared pool and all complete.
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&total] {
      ThreadPool::ParallelFor(100, 4, [&total](size_t) {
        total.fetch_add(1);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 400);
}

TEST(SharedThreadPoolTest, IsProcessWideSingleton) {
  ThreadPool& a = SharedThreadPool();
  ThreadPool& b = SharedThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(DefaultThreadCountTest, Bounded) {
  size_t n = DefaultThreadCount();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

}  // namespace
}  // namespace dpaudit
