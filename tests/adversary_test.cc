#include "core/adversary.h"

#include <gtest/gtest.h>

#include "dp/privacy_params.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

TEST(DiAdversaryTest, StartsUndecided) {
  DiAdversary adversary;
  EXPECT_DOUBLE_EQ(adversary.FinalBeliefD(), 0.5);
  EXPECT_DOUBLE_EQ(adversary.MaxBeliefD(), 0.5);
}

TEST(DiAdversaryTest, BelievesDWhenReleaseIsNearSumD) {
  DiAdversary adversary;
  std::vector<float> sum_d = {1.0f, 1.0f};
  std::vector<float> sum_dprime = {-1.0f, -1.0f};
  std::vector<float> released = {0.9f, 1.1f};  // clearly near D
  adversary.OnStep(0, sum_d, sum_dprime, released, /*sigma=*/0.5);
  EXPECT_GT(adversary.FinalBeliefD(), 0.9);
  EXPECT_TRUE(adversary.DecideD());
}

TEST(DiAdversaryTest, BelievesDPrimeWhenReleaseIsNearSumDPrime) {
  DiAdversary adversary;
  adversary.OnStep(0, {1.0f, 1.0f}, {-1.0f, -1.0f}, {-0.9f, -1.1f}, 0.5);
  EXPECT_LT(adversary.FinalBeliefD(), 0.1);
  EXPECT_FALSE(adversary.DecideD());
}

TEST(DiAdversaryTest, HugeNoiseLeavesBeliefNearHalf) {
  DiAdversary adversary;
  adversary.OnStep(0, {1.0f}, {-1.0f}, {0.3f}, /*sigma=*/1e6);
  EXPECT_NEAR(adversary.FinalBeliefD(), 0.5, 1e-3);
}

TEST(DiAdversaryTest, EvidenceAccumulatesOverSteps) {
  DiAdversary adversary;
  // Each step weakly favors D; the posterior compounds (Lemma 1).
  double prev = 0.5;
  for (int i = 0; i < 10; ++i) {
    adversary.OnStep(i, {1.0f}, {-1.0f}, {0.4f}, /*sigma=*/3.0);
    EXPECT_GT(adversary.FinalBeliefD(), prev);
    prev = adversary.FinalBeliefD();
  }
  EXPECT_EQ(adversary.BeliefHistory().size(), 11u);
}

TEST(DiAdversaryTest, MaxBeliefTracksPeakNotFinal) {
  DiAdversary adversary;
  adversary.OnStep(0, {1.0f}, {-1.0f}, {2.0f}, 1.0);   // strong pro-D
  double peak = adversary.FinalBeliefD();
  adversary.OnStep(1, {1.0f}, {-1.0f}, {-0.5f}, 1.0);  // contradicting
  EXPECT_LT(adversary.FinalBeliefD(), peak);
  EXPECT_DOUBLE_EQ(adversary.MaxBeliefD(), peak);
}

TEST(DiAdversaryIntegrationTest, IdentifiesTrainingDatasetAtLowNoise) {
  Rng rng(1);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 8.0f);
  DpSgdConfig config;
  config.epochs = 10;
  config.learning_rate = 0.05;
  config.clip_norm = 1.0;
  config.noise_multiplier = 0.05;  // nearly noiseless: adversary should win
  config.sensitivity_mode = SensitivityMode::kLocalHat;

  // Trained on D -> adversary says D.
  {
    DiAdversary adversary;
    Rng run_rng(2);
    auto result = RunDpSgd(net, d, d_prime, /*train_on_d=*/true, config,
                           run_rng, &adversary);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(adversary.DecideD());
    EXPECT_GT(adversary.FinalBeliefD(), 0.95);
  }
  // Trained on D' -> adversary says D'.
  {
    DiAdversary adversary;
    Rng run_rng(3);
    auto result = RunDpSgd(net, d, d_prime, /*train_on_d=*/false, config,
                           run_rng, &adversary);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(adversary.DecideD());
    EXPECT_LT(adversary.FinalBeliefD(), 0.05);
  }
}

TEST(DiAdversaryIntegrationTest, HighNoiseKeepsPlausibleDeniability) {
  Rng rng(4);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 8.0f);
  DpSgdConfig config;
  config.epochs = 10;
  config.learning_rate = 0.05;
  config.clip_norm = 1.0;
  config.noise_multiplier = 50.0;  // drowning noise
  DiAdversary adversary;
  Rng run_rng(5);
  auto result =
      RunDpSgd(net, d, d_prime, true, config, run_rng, &adversary);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(adversary.FinalBeliefD(), 0.5, 0.2);
}

}  // namespace
}  // namespace dpaudit
