#include "nn/metrics.h"

#include <gtest/gtest.h>

#include <memory>

#include "nn/dense.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::TinyNetwork;

TEST(ConfusionMatrixTest, RecordsAndCounts) {
  ConfusionMatrix m(3);
  m.Record(0, 0);
  m.Record(0, 1);
  m.Record(1, 1);
  m.Record(2, 2);
  EXPECT_EQ(m.total(), 4u);
  EXPECT_EQ(m.count(0, 0), 1u);
  EXPECT_EQ(m.count(0, 1), 1u);
  EXPECT_EQ(m.count(1, 0), 0u);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.75);
}

TEST(ConfusionMatrixTest, EmptyMatrixSafeDefaults) {
  ConfusionMatrix m(2);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(0), 0.0);
  EXPECT_DOUBLE_EQ(m.Precision(0), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(0), 0.0);
  EXPECT_DOUBLE_EQ(m.MacroF1(), 0.0);
}

TEST(ConfusionMatrixTest, PrecisionRecallF1) {
  // class 0: TP=2, FN=1 (predicted 1), FP=1 (true 1 predicted 0).
  ConfusionMatrix m(2);
  m.Record(0, 0);
  m.Record(0, 0);
  m.Record(0, 1);
  m.Record(1, 0);
  m.Record(1, 1);
  EXPECT_DOUBLE_EQ(m.Recall(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Precision(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.F1(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Recall(1), 0.5);
  EXPECT_DOUBLE_EQ(m.Precision(1), 0.5);
}

TEST(ConfusionMatrixTest, MacroF1SkipsAbsentClasses) {
  ConfusionMatrix m(3);
  m.Record(0, 0);
  m.Record(1, 1);
  // Class 2 never occurs: macro F1 averages over classes 0 and 1 only.
  EXPECT_DOUBLE_EQ(m.MacroF1(), 1.0);
}

TEST(ConfusionMatrixTest, PerfectAndWorstClassifiers) {
  ConfusionMatrix perfect(2);
  perfect.Record(0, 0);
  perfect.Record(1, 1);
  EXPECT_DOUBLE_EQ(perfect.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(perfect.MacroF1(), 1.0);
  ConfusionMatrix worst(2);
  worst.Record(0, 1);
  worst.Record(1, 0);
  EXPECT_DOUBLE_EQ(worst.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(worst.MacroF1(), 0.0);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  ConfusionMatrix m(2);
  m.Record(0, 1);
  std::string s = m.ToString();
  EXPECT_NE(s.find("true\\pred"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(ConfusionMatrixDeathTest, OutOfRangeDies) {
  ConfusionMatrix m(2);
  EXPECT_DEATH(m.Record(2, 0), "CHECK failed");
  EXPECT_DEATH((void)m.count(0, 2), "CHECK failed");
}

TEST(EvaluateConfusionTest, MatchesAccuracy) {
  // Identity-weight network: prediction = argmax coordinate.
  Network net;
  auto dense = std::make_unique<Dense>(2, 2);
  *dense->Params()[0] = Tensor({2, 2}, {1, 0, 0, 1});
  *dense->Params()[1] = Tensor({2});
  net.Add(std::move(dense));
  std::vector<Tensor> inputs = {Tensor({2}, {3.0f, 1.0f}),
                                Tensor({2}, {1.0f, 3.0f}),
                                Tensor({2}, {2.0f, 0.0f})};
  std::vector<size_t> labels = {0, 1, 1};
  ConfusionMatrix m = EvaluateConfusion(net, inputs, labels, 2);
  EXPECT_EQ(m.total(), 3u);
  EXPECT_NEAR(m.Accuracy(), net.Accuracy(inputs, labels), 1e-12);
  EXPECT_EQ(m.count(1, 0), 1u);  // the third example is misclassified
}

}  // namespace
}  // namespace dpaudit
