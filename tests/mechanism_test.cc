#include "dp/mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/normal.h"
#include "stats/summary.h"
#include "util/random.h"

namespace dpaudit {
namespace {

TEST(GaussianMechanismTest, CreateValidates) {
  EXPECT_TRUE(GaussianMechanism::Create(1.0).ok());
  EXPECT_FALSE(GaussianMechanism::Create(0.0).ok());
  EXPECT_FALSE(GaussianMechanism::Create(-1.0).ok());
  EXPECT_FALSE(GaussianMechanism::Create(std::nan("")).ok());
}

TEST(GaussianMechanismTest, PerturbationMoments) {
  GaussianMechanism mechanism(2.0);
  Rng rng(1);
  RunningSummary noise;
  for (int i = 0; i < 50000; ++i) {
    noise.Add(mechanism.PerturbScalar(5.0, rng) - 5.0);
  }
  EXPECT_NEAR(noise.mean(), 0.0, 0.05);
  EXPECT_NEAR(noise.stddev(), 2.0, 0.05);
}

TEST(GaussianMechanismTest, PerturbVectorChangesEveryCoordinate) {
  GaussianMechanism mechanism(1.0);
  Rng rng(2);
  std::vector<float> values(100, 0.0f);
  mechanism.Perturb(values, rng);
  int zeros = 0;
  for (float v : values) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_EQ(zeros, 0);
}

TEST(GaussianMechanismTest, LogDensityMatchesNormalLogPdfSum) {
  GaussianMechanism mechanism(1.5);
  std::vector<float> observed = {0.1f, -0.7f, 2.0f};
  std::vector<float> center = {0.0f, 0.0f, 1.0f};
  double expected = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    expected += NormalLogPdf(observed[i], center[i], 1.5);
  }
  EXPECT_NEAR(mechanism.LogDensity(observed, center), expected, 1e-12);
}

TEST(GaussianMechanismTest, LogDensityHigherNearCenter) {
  GaussianMechanism mechanism(1.0);
  std::vector<float> observed = {1.0f, 1.0f};
  EXPECT_GT(mechanism.LogDensity(observed, {1.0f, 1.0f}),
            mechanism.LogDensity(observed, {3.0f, 3.0f}));
}

TEST(GaussianMechanismTest, PerturbMatchesPerCoordinateSampling) {
  // The chunked/vectorized Perturb must reproduce the historical
  // per-coordinate loop bit-for-bit: same noise stream (FillGaussian ==
  // repeated Gaussian()) and same arithmetic
  // v = float(v + (0.0 + sigma * g)). Sizes straddle the internal chunk
  // length and the AVX2 lane width, including odd tails.
  const double sigma = 1.7;
  GaussianMechanism mechanism(sigma);
  for (size_t n : {size_t{1}, size_t{5}, size_t{512}, size_t{1031}}) {
    std::vector<float> values(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = 0.25f * static_cast<float>(i % 17) - 1.0f;
    }
    std::vector<float> expected = values;
    Rng reference_rng(321);
    for (float& v : expected) {
      v = static_cast<float>(v + reference_rng.Gaussian(0.0, sigma));
    }
    Rng rng(321);
    mechanism.Perturb(values, rng);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(values[i], expected[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(GaussianMechanismTest, PerturbDoubleMatchesPerCoordinateSampling) {
  const double sigma = 0.9;
  GaussianMechanism mechanism(sigma);
  std::vector<double> values(777);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.125 * static_cast<double>(i % 11);
  }
  std::vector<double> expected = values;
  Rng reference_rng(77);
  for (double& v : expected) v += reference_rng.Gaussian(0.0, sigma);
  Rng rng(77);
  mechanism.Perturb(values, rng);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], expected[i]) << "i=" << i;
  }
}

TEST(GaussianMechanismTest, LogDensityPairMatchesTwoSingleCalls) {
  // The fused pass must be EXACTLY the two separate sums (frozen
  // per-accumulator addition order), not merely close: the auditor's
  // epsilon' estimates are required to be bit-identical either way.
  GaussianMechanism mechanism(1.3);
  Rng rng(9);
  for (size_t n : {size_t{1}, size_t{3}, size_t{8}, size_t{257}}) {
    std::vector<float> observed(n);
    std::vector<float> center_a(n);
    std::vector<float> center_b(n);
    for (size_t i = 0; i < n; ++i) {
      observed[i] = static_cast<float>(rng.Gaussian());
      center_a[i] = static_cast<float>(0.5 * rng.Gaussian());
      center_b[i] = static_cast<float>(0.5 * rng.Gaussian());
    }
    double log_a = 0.0;
    double log_b = 0.0;
    mechanism.LogDensityPair(observed, center_a, center_b, &log_a, &log_b);
    EXPECT_EQ(log_a, mechanism.LogDensity(observed, center_a)) << "n=" << n;
    EXPECT_EQ(log_b, mechanism.LogDensity(observed, center_b)) << "n=" << n;
  }
}

// Statistical check of the DP inequality for the scalar Gaussian mechanism:
// the likelihood ratio p(x|0) / p(x|1) must be <= e^eps except on a set of
// probability <= delta (the classic analysis). We verify the tail mass where
// the ratio exceeds e^eps is below delta for sigma from Eq. 1.
TEST(GaussianMechanismTest, DpInequalityHoldsAtCalibratedSigma) {
  const double eps = 1.0;
  const double delta = 1e-5;
  const double sensitivity = 1.0;
  const double sigma =
      sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / eps;
  // Ratio exceeds e^eps when x > sigma^2 eps / Df + Df / 2 (for means 0, -Df
  // ordering); the mass of N(0, sigma^2) beyond that point must be < delta.
  double threshold = sigma * sigma * eps / sensitivity - sensitivity / 2.0;
  double tail = 1.0 - NormalCdf(threshold / sigma);
  EXPECT_LT(tail, delta);
}

TEST(LaplaceMechanismTest, CreateValidates) {
  EXPECT_TRUE(LaplaceMechanism::Create(0.5).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(0.0).ok());
}

TEST(LaplaceMechanismTest, PerturbationMoments) {
  LaplaceMechanism mechanism(1.5);
  Rng rng(3);
  RunningSummary noise;
  for (int i = 0; i < 50000; ++i) {
    noise.Add(mechanism.PerturbScalar(0.0, rng));
  }
  EXPECT_NEAR(noise.mean(), 0.0, 0.05);
  // Var of Laplace(b) is 2 b^2.
  EXPECT_NEAR(noise.variance(), 2.0 * 1.5 * 1.5, 0.15);
}

TEST(LaplaceMechanismTest, LogDensityMatchesClosedForm) {
  LaplaceMechanism mechanism(2.0);
  EXPECT_NEAR(mechanism.LogDensityScalar(1.0, 0.0),
              -0.5 - std::log(4.0), 1e-12);
}

TEST(LaplaceMechanismTest, LikelihoodRatioBoundedByEpsilon) {
  // For the Laplace mechanism at scale Df/eps the log-likelihood ratio
  // between neighboring centers is bounded by eps everywhere.
  const double eps = 0.7;
  const double sensitivity = 1.0;
  LaplaceMechanism mechanism(sensitivity / eps);
  for (double x : {-10.0, -1.0, 0.0, 0.3, 0.9, 1.5, 10.0}) {
    double llr = mechanism.LogDensityScalar(x, 0.0) -
                 mechanism.LogDensityScalar(x, sensitivity);
    EXPECT_LE(std::fabs(llr), eps + 1e-12);
  }
}

}  // namespace
}  // namespace dpaudit
