#include "stats/divergence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/rdp_accountant.h"
#include "stats/normal.h"
#include "util/random.h"

namespace dpaudit {
namespace {

TEST(GaussianRenyiDivergenceTest, ClosedForm) {
  // D_alpha = alpha d^2 / (2 s^2).
  EXPECT_DOUBLE_EQ(GaussianRenyiDivergence(2.0, 0.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(GaussianRenyiDivergence(4.0, 0.0, 3.0, 2.0),
                   4.0 * 9.0 / 8.0);
  EXPECT_DOUBLE_EQ(GaussianRenyiDivergence(2.0, 1.0, 1.0, 1.0), 0.0);
}

TEST(GaussianRenyiDivergenceTest, MatchesAccountantPerStepEpsilon) {
  // The accountant's per-step eps_RDP(alpha) IS the Renyi divergence between
  // N(0, sigma^2) and N(Df, sigma^2) with z = sigma / Df.
  const double z = 1.7;
  for (double alpha : {1.5, 2.0, 8.0}) {
    EXPECT_NEAR(GaussianRenyiDivergence(alpha, 0.0, 1.0, z),
                GaussianRdpEpsilonFromNoiseMultiplier(alpha, z), 1e-12);
  }
}

TEST(GaussianKlDivergenceTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(GaussianKlDivergence(0.0, 2.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(GaussianKlDivergence(5.0, 5.0, 3.0), 0.0);
}

TEST(EstimateRenyiDivergenceTest, ConvergesToClosedForm) {
  const double alpha = 2.0;
  const double mean_p = 0.0;
  const double mean_q = 1.0;
  const double sigma = 2.0;
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) {
    samples.push_back(rng.Gaussian(mean_p, sigma));
  }
  auto log_p = [&](double x) { return NormalLogPdf(x, mean_p, sigma); };
  auto log_q = [&](double x) { return NormalLogPdf(x, mean_q, sigma); };
  auto estimate = EstimateRenyiDivergence(alpha, samples, log_p, log_q);
  ASSERT_TRUE(estimate.ok());
  double exact = GaussianRenyiDivergence(alpha, mean_p, mean_q, sigma);
  EXPECT_NEAR(*estimate, exact, 0.02);
}

TEST(EstimateKlDivergenceTest, ConvergesToClosedForm) {
  const double sigma = 1.5;
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.Gaussian(0, sigma));
  auto log_p = [&](double x) { return NormalLogPdf(x, 0.0, sigma); };
  auto log_q = [&](double x) { return NormalLogPdf(x, 1.0, sigma); };
  auto estimate = EstimateKlDivergence(samples, log_p, log_q);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, GaussianKlDivergence(0.0, 1.0, sigma), 0.01);
}

TEST(EstimateRenyiDivergenceTest, ZeroForIdenticalDistributions) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.Gaussian());
  auto log_p = [](double x) { return NormalLogPdf(x, 0.0, 1.0); };
  auto estimate = EstimateRenyiDivergence(2.0, samples, log_p, log_p);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, 0.0, 1e-12);
}

TEST(EstimateRenyiDivergenceTest, RejectsBadInput) {
  auto log_p = [](double) { return 0.0; };
  EXPECT_FALSE(EstimateRenyiDivergence(1.0, {0.0}, log_p, log_p).ok());
  EXPECT_FALSE(EstimateRenyiDivergence(2.0, {}, log_p, log_p).ok());
  EXPECT_FALSE(EstimateKlDivergence({}, log_p, log_p).ok());
}

// The empirical claim behind the accountant: the measured Renyi divergence
// between the two output distributions of a calibrated Gaussian mechanism
// never exceeds the accountant's per-step budget.
class AccountantSoundness : public ::testing::TestWithParam<double> {};

TEST_P(AccountantSoundness, MeasuredDivergenceWithinBudget) {
  const double alpha = GetParam();
  const double z = 1.3;
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.Gaussian(0.0, z));
  auto log_p = [&](double x) { return NormalLogPdf(x, 0.0, z); };
  auto log_q = [&](double x) { return NormalLogPdf(x, 1.0, z); };
  double measured =
      *EstimateRenyiDivergence(alpha, samples, log_p, log_q);
  double budget = GaussianRdpEpsilonFromNoiseMultiplier(alpha, z);
  EXPECT_LE(measured, budget * 1.1 + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Orders, AccountantSoundness,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace dpaudit
