#include "util/status.h"

#include <gtest/gtest.h>

namespace dpaudit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad epsilon");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad epsilon");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::NotFound("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ValueOnErrorDies) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_DEATH({ (void)v.value(); }, "boom");
}

TEST(StatusOrTest, OkStatusConstructionDies) {
  EXPECT_DEATH({ StatusOr<int> v = Status::Ok(); (void)v; },
               "OK StatusOr must carry a value");
}

StatusOr<double> HalveIfPositive(double x) {
  if (x <= 0) return Status::InvalidArgument("non-positive");
  return x / 2.0;
}

Status UseMacros(double x, double* out) {
  DPAUDIT_ASSIGN_OR_RETURN(double half, HalveIfPositive(x));
  DPAUDIT_RETURN_IF_ERROR(Status::Ok());
  *out = half;
  return Status::Ok();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesValue) {
  double out = 0.0;
  ASSERT_TRUE(UseMacros(8.0, &out).ok());
  EXPECT_DOUBLE_EQ(out, 4.0);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  double out = 0.0;
  Status s = UseMacros(-1.0, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(out, 0.0);
}

}  // namespace
}  // namespace dpaudit
