// Deterministic fault injection: spec parsing, wildcard matching, per-trial
// attempt counting, journal-write counters, and plan replacement semantics.
// The abort-after-append crash point is exercised end to end by the CI chaos
// job (it _Exit(137)s the process, so it cannot run inside gtest).

#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dpaudit {
namespace fault {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("DPAUDIT_FAULT_INJECT");
    ClearFaultSpecForTest();
  }
  void TearDown() override { ClearFaultSpecForTest(); }
};

TEST_F(FaultInjectionTest, DisabledByDefault) {
  EXPECT_FALSE(FaultInjectionEnabled());
  EXPECT_FALSE(FailTrialAttempt(0, 0));
  EXPECT_FALSE(FailJournalWrite());
}

TEST_F(FaultInjectionTest, TrialClauseFailsTheFirstNAttempts) {
  ASSERT_TRUE(SetFaultSpec("trial=0:1:2").ok());
  EXPECT_TRUE(FaultInjectionEnabled());
  EXPECT_TRUE(FailTrialAttempt(0, 1));   // attempt 1
  EXPECT_TRUE(FailTrialAttempt(0, 1));   // attempt 2
  EXPECT_FALSE(FailTrialAttempt(0, 1));  // attempt 3 succeeds
  // Other trials are untouched.
  EXPECT_FALSE(FailTrialAttempt(0, 0));
  EXPECT_FALSE(FailTrialAttempt(1, 1));
}

TEST_F(FaultInjectionTest, WildcardsMatchEveryCellAndRep) {
  ASSERT_TRUE(SetFaultSpec("trial=*:*:1").ok());
  for (size_t cell = 0; cell < 3; ++cell) {
    for (size_t rep = 0; rep < 3; ++rep) {
      EXPECT_TRUE(FailTrialAttempt(cell, rep)) << cell << ":" << rep;
      EXPECT_FALSE(FailTrialAttempt(cell, rep)) << cell << ":" << rep;
    }
  }
}

TEST_F(FaultInjectionTest, CellWildcardWithFixedRep) {
  ASSERT_TRUE(SetFaultSpec("trial=*:2:1").ok());
  EXPECT_TRUE(FailTrialAttempt(0, 2));
  EXPECT_TRUE(FailTrialAttempt(5, 2));
  EXPECT_FALSE(FailTrialAttempt(0, 1));
}

TEST_F(FaultInjectionTest, JournalWriteClauseFailsTheNthAppend) {
  ASSERT_TRUE(SetFaultSpec("journal-write=2").ok());
  EXPECT_FALSE(FailJournalWrite());  // append 1
  EXPECT_TRUE(FailJournalWrite());   // append 2 fails
  EXPECT_FALSE(FailJournalWrite());  // append 3
}

TEST_F(FaultInjectionTest, ClausesCompose) {
  ASSERT_TRUE(SetFaultSpec("trial=0:0:1;journal-write=1").ok());
  EXPECT_TRUE(FailTrialAttempt(0, 0));
  EXPECT_FALSE(FailTrialAttempt(0, 0));
  EXPECT_TRUE(FailJournalWrite());
  EXPECT_FALSE(FailJournalWrite());
}

TEST_F(FaultInjectionTest, ReinstallingResetsCounters) {
  ASSERT_TRUE(SetFaultSpec("trial=0:0:1").ok());
  EXPECT_TRUE(FailTrialAttempt(0, 0));
  EXPECT_FALSE(FailTrialAttempt(0, 0));
  ASSERT_TRUE(SetFaultSpec("trial=0:0:1").ok());
  EXPECT_TRUE(FailTrialAttempt(0, 0));  // counter restarted
}

TEST_F(FaultInjectionTest, InvalidSpecsAreRejectedAndKeepThePreviousPlan) {
  ASSERT_TRUE(SetFaultSpec("trial=0:0:5").ok());
  for (const char* bad :
       {"bogus", "trial=", "trial=1:2", "trial=a:b:c", "journal-write=",
        "journal-write=x", "abort-after-append=", "unknown=1"}) {
    EXPECT_FALSE(SetFaultSpec(bad).ok()) << bad;
    EXPECT_FALSE(ValidateFaultSpec(bad).ok()) << bad;
  }
  // The old plan survived every rejected install.
  EXPECT_TRUE(FaultInjectionEnabled());
  EXPECT_TRUE(FailTrialAttempt(0, 0));
}

TEST_F(FaultInjectionTest, ValidateDoesNotInstall) {
  ASSERT_TRUE(ValidateFaultSpec("trial=*:*:1").ok());
  EXPECT_FALSE(FaultInjectionEnabled());
  EXPECT_FALSE(FailTrialAttempt(0, 0));
}

TEST_F(FaultInjectionTest, EmptySpecUninstalls) {
  ASSERT_TRUE(SetFaultSpec("trial=*:*:1").ok());
  ASSERT_TRUE(SetFaultSpec("").ok());
  EXPECT_FALSE(FaultInjectionEnabled());
  EXPECT_FALSE(FailTrialAttempt(0, 0));
}

TEST_F(FaultInjectionTest, EnvironmentLatchInstallsLazily) {
  setenv("DPAUDIT_FAULT_INJECT", "trial=3:0:1", 1);
  ClearFaultSpecForTest();  // reset, then the next probe re-reads the env
  EXPECT_TRUE(FailTrialAttempt(3, 0));
  EXPECT_FALSE(FailTrialAttempt(3, 0));
  unsetenv("DPAUDIT_FAULT_INJECT");
  ClearFaultSpecForTest();
  EXPECT_FALSE(FailTrialAttempt(3, 0));
}

}  // namespace
}  // namespace fault
}  // namespace dpaudit
