#include "core/multi_world.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/belief.h"
#include "tensor/tensor.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

TEST(MultiWorldPosteriorTest, StartsUniform) {
  MultiWorldPosterior posterior(4);
  std::vector<double> p = posterior.Posterior();
  ASSERT_EQ(p.size(), 4u);
  for (double pi : p) EXPECT_NEAR(pi, 0.25, 1e-12);
  EXPECT_EQ(posterior.observations(), 0u);
}

TEST(MultiWorldPosteriorTest, ExplicitPriorNormalizes) {
  MultiWorldPosterior posterior(std::vector<double>{1.0, 3.0});
  EXPECT_NEAR(posterior.Belief(0), 0.25, 1e-12);
  EXPECT_NEAR(posterior.Belief(1), 0.75, 1e-12);
}

TEST(MultiWorldPosteriorTest, BayesUpdateKnownValue) {
  MultiWorldPosterior posterior(2);
  // Likelihood ratio e^1 in favor of world 0.
  posterior.Observe({0.0, -1.0});
  EXPECT_NEAR(posterior.Belief(0), 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
  EXPECT_EQ(posterior.MapEstimate(), 0u);
}

TEST(MultiWorldPosteriorTest, TwoWorldsMatchesBinaryTracker) {
  MultiWorldPosterior multi(2);
  PosteriorBeliefTracker binary;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    double lp0 = -rng.Uniform(0.0, 4.0);
    double lp1 = -rng.Uniform(0.0, 4.0);
    multi.Observe({lp0, lp1});
    binary.Observe(lp0, lp1);
  }
  EXPECT_NEAR(multi.Belief(0), binary.belief_d(), 1e-9);
}

TEST(MultiWorldPosteriorTest, PosteriorSumsToOneUnderExtremeEvidence) {
  MultiWorldPosterior posterior(3);
  posterior.Observe({-1e6, 0.0, -2e6});
  std::vector<double> p = posterior.Posterior();
  double sum = 0.0;
  for (double pi : p) {
    EXPECT_FALSE(std::isnan(pi));
    sum += pi;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(posterior.MapEstimate(), 1u);
}

TEST(MultiWorldPosteriorDeathTest, InvalidConstruction) {
  EXPECT_DEATH(MultiWorldPosterior(1), "CHECK failed");
  EXPECT_DEATH(MultiWorldPosterior(std::vector<double>{1.0, 0.0}),
               "prior weights");
}

// Worlds must differ in gradient DIRECTION, not just magnitude (clipping
// erases magnitude): world w's differing record activates a distinct
// coordinate block and carries a distinct label.
std::vector<Dataset> MakeLineup(size_t num_worlds, Rng& rng) {
  Dataset base = BlobDataset(9, rng);
  std::vector<Dataset> worlds;
  worlds.push_back(base);
  for (size_t w = 1; w < num_worlds; ++w) {
    Tensor x({testing_helpers::kFeatures});
    for (size_t j = 0; j < x.size(); ++j) {
      x[j] = (j % num_worlds == w) ? 6.0f : -2.0f;
    }
    worlds.push_back(base.WithRecordReplaced(
        0, std::move(x), w % testing_helpers::kClasses));
  }
  return worlds;
}

TEST(MultiWorldExperimentTest, IdentifiesTrueWorldAtLowNoise) {
  Rng rng(2);
  Network net = TinyNetwork();
  net.Initialize(rng);
  std::vector<Dataset> worlds = MakeLineup(4, rng);
  MultiWorldExperimentConfig config;
  config.dpsgd.epochs = 8;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 0.05;
  config.repetitions = 20;
  config.seed = 3;
  auto summary = RunMultiWorldExperiment(net, worlds, /*true_world=*/2,
                                         config);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->num_worlds, 4u);
  EXPECT_GT(summary->identification_rate, 0.9);
  EXPECT_GT(summary->mean_true_belief, 0.9);
}

TEST(MultiWorldExperimentTest, HighNoiseKeepsLineupAmbiguous) {
  Rng rng(4);
  Network net = TinyNetwork();
  net.Initialize(rng);
  std::vector<Dataset> worlds = MakeLineup(4, rng);
  MultiWorldExperimentConfig config;
  config.dpsgd.epochs = 8;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 50.0;
  config.repetitions = 40;
  config.seed = 5;
  auto summary = RunMultiWorldExperiment(net, worlds, 0, config);
  ASSERT_TRUE(summary.ok());
  // Near-chance identification (1/4) and diluted beliefs.
  EXPECT_LT(summary->identification_rate, 0.6);
  EXPECT_LT(summary->mean_true_belief, 0.5);
}

TEST(MultiWorldExperimentTest, MoreWorldsDiluteTheBelief) {
  Rng rng(6);
  Network net = TinyNetwork();
  net.Initialize(rng);
  std::vector<Dataset> worlds = MakeLineup(8, rng);
  MultiWorldExperimentConfig config;
  config.dpsgd.epochs = 6;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 8.0;
  config.repetitions = 30;
  config.seed = 7;
  std::vector<Dataset> two(worlds.begin(), worlds.begin() + 2);
  auto small = RunMultiWorldExperiment(net, two, 0, config);
  auto large = RunMultiWorldExperiment(net, worlds, 0, config);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(small->mean_true_belief, large->mean_true_belief);
}

TEST(MultiWorldExperimentTest, RejectsInvalid) {
  Rng rng(8);
  Network net = TinyNetwork();
  net.Initialize(rng);
  std::vector<Dataset> worlds = MakeLineup(2, rng);
  MultiWorldExperimentConfig config;
  config.dpsgd.epochs = 2;
  EXPECT_FALSE(RunMultiWorldExperiment(net, {worlds[0]}, 0, config).ok());
  EXPECT_FALSE(RunMultiWorldExperiment(net, worlds, 5, config).ok());
  std::vector<Dataset> uneven = worlds;
  uneven[1] = uneven[1].WithRecordRemoved(0);
  EXPECT_FALSE(RunMultiWorldExperiment(net, uneven, 0, config).ok());
}

}  // namespace
}  // namespace dpaudit
