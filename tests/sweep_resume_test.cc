// Crash-safe sweep resume and failure isolation: a sweep re-launched against
// its checkpoint journal skips completed trials and reproduces the
// uninterrupted run bit-for-bit; trials failed under the retry budget change
// nothing; trials failed over the budget degrade their cell to a
// partial-repetition estimate instead of sinking the sweep.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/sweep_scheduler.h"
#include "dp/privacy_params.h"
#include "io/append_log.h"
#include "util/fault_injection.h"

namespace dpaudit {
namespace {

/// Fresh per-test journal directory under gtest's temp dir.
class ScopedJournalDir {
 public:
  explicit ScopedJournalDir(const std::string& name)
      : path_(::testing::TempDir() + "/dpaudit_resume_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedJournalDir() { std::filesystem::remove_all(path_); }
  std::string Journal() const { return path_ + "/run.sweep.jsonl"; }

 private:
  std::string path_;
};

bench::BenchParams TinyParams() {
  bench::BenchParams params;
  params.reps = 8;
  params.mnist_n = 8;
  params.purchase_n = 8;
  params.epochs = 3;
  params.seed = 42;
  return params;
}

void ExpectTrialsBitIdentical(const DiExperimentSummary& expected,
                              const DiExperimentSummary& got) {
  ASSERT_EQ(got.trials.size(), expected.trials.size());
  for (size_t i = 0; i < expected.trials.size(); ++i) {
    const DiTrialResult& a = expected.trials[i];
    const DiTrialResult& b = got.trials[i];
    EXPECT_EQ(a.trained_on_d, b.trained_on_d) << "trial " << i;
    EXPECT_EQ(a.adversary_says_d, b.adversary_says_d) << "trial " << i;
    // Bit-identity: exact double equality, no tolerance.
    EXPECT_EQ(a.final_belief_d, b.final_belief_d) << "trial " << i;
    EXPECT_EQ(a.max_belief_d, b.max_belief_d) << "trial " << i;
    EXPECT_EQ(a.test_accuracy, b.test_accuracy) << "trial " << i;
    EXPECT_EQ(a.local_sensitivities, b.local_sensitivities) << "trial " << i;
    EXPECT_EQ(a.sigmas, b.sigmas) << "trial " << i;
  }
}

class SweepResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    unsetenv("DPAUDIT_TRACE_CACHE");
    unsetenv("DPAUDIT_SWEEP_MODE");
    unsetenv("DPAUDIT_SWEEP_CHECKPOINT");
  }
  void SetUp() override {
    unsetenv("DPAUDIT_FAULT_INJECT");
    fault::ClearFaultSpecForTest();
  }
  void TearDown() override {
    unsetenv("DPAUDIT_THREADS");
    fault::ClearFaultSpecForTest();
  }

  /// Two-cell sweep over the tiny MNIST task, 3 repetitions each.
  std::vector<SweepCell> MakeCells(const bench::Task& task,
                                   const bench::BenchParams& params) {
    auto make_cell = [&](double epsilon) {
      SweepCell cell;
      cell.architecture = &task.architecture;
      cell.d = &task.d;
      cell.d_prime = &task.d_prime_bounded;
      cell.config = bench::MakeScenarioConfig(params, task, epsilon,
                                              SensitivityMode::kLocalHat,
                                              NeighborMode::kBounded);
      cell.config.repetitions = 3;
      return cell;
    };
    return {make_cell(1.1), make_cell(2.2)};
  }
};

TEST_F(SweepResumeTest, SecondRunResumesEveryTrialFromTheJournal) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  std::vector<SweepCell> cells = MakeCells(task, params);
  ScopedJournalDir dir("full");

  SweepOptions options;
  options.checkpoint = dir.Journal();
  SweepStats first_stats;
  auto first = RunSweep(cells, options, &first_stats);
  ASSERT_TRUE(first[0].ok()) << first[0].status();
  ASSERT_TRUE(first[1].ok()) << first[1].status();
  EXPECT_EQ(first_stats.trials_trained, 6u);
  EXPECT_EQ(first_stats.trials_resumed, 0u);

  SweepStats second_stats;
  auto second = RunSweep(cells, options, &second_stats);
  ASSERT_TRUE(second[0].ok());
  ASSERT_TRUE(second[1].ok());
  EXPECT_EQ(second_stats.trials_resumed, 6u);
  EXPECT_EQ(second_stats.trials_trained, 0u);
  EXPECT_EQ(second_stats.trials_failed, 0u);
  ASSERT_EQ(second_stats.per_cell.size(), 2u);
  EXPECT_EQ(second_stats.per_cell[0].resumed, 3u);
  EXPECT_EQ(second_stats.per_cell[1].resumed, 3u);
  ExpectTrialsBitIdentical(*first[0], *second[0]);
  ExpectTrialsBitIdentical(*first[1], *second[1]);
}

TEST_F(SweepResumeTest, PartialJournalResumesOnlyTheCompletedTrials) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  std::vector<SweepCell> cells = MakeCells(task, params);
  ScopedJournalDir dir("partial");

  SweepOptions options;
  options.checkpoint = dir.Journal();
  auto reference = RunSweep(cells, options);
  ASSERT_TRUE(reference[0].ok());
  ASSERT_TRUE(reference[1].ok());

  // Simulate a crash after two trials: keep the manifest and the first two
  // trial rows, drop the rest (AppendTrial fsyncs per line, so a real kill
  // leaves exactly a prefix of rows plus at most one torn tail).
  StatusOr<AppendLogContents> contents = ReadLogLines(dir.Journal());
  ASSERT_TRUE(contents.ok());
  std::vector<std::string> kept;
  size_t trial_rows = 0;
  for (const std::string& line : contents->lines) {
    const bool is_trial = line.find("\"kind\":\"trial\"") != std::string::npos;
    if (is_trial && ++trial_rows > 2) continue;
    kept.push_back(line);
  }
  ASSERT_EQ(trial_rows, 6u);
  {
    std::FILE* f = std::fopen(dir.Journal().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (const std::string& line : kept) {
      std::fwrite(line.data(), 1, line.size(), f);
      std::fwrite("\n", 1, 1, f);
    }
    std::fclose(f);
  }

  SweepStats stats;
  auto resumed = RunSweep(cells, options, &stats);
  ASSERT_TRUE(resumed[0].ok());
  ASSERT_TRUE(resumed[1].ok());
  EXPECT_EQ(stats.trials_resumed, 2u);
  EXPECT_EQ(stats.trials_trained, 4u);
  ExpectTrialsBitIdentical(*reference[0], *resumed[0]);
  ExpectTrialsBitIdentical(*reference[1], *resumed[1]);
}

TEST_F(SweepResumeTest, FailuresUnderTheRetryBudgetChangeNothing) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  std::vector<SweepCell> cells = MakeCells(task, params);

  auto reference = RunSweep(cells);
  ASSERT_TRUE(reference[0].ok());
  ASSERT_TRUE(reference[1].ok());

  // Every trial's first attempt fails; the budget allows 2 retries, so every
  // trial succeeds on attempt 2 with bit-identical results.
  ASSERT_TRUE(fault::SetFaultSpec("trial=*:*:1").ok());
  SweepOptions options;
  options.trial_retries = 2;
  options.retry_backoff_ms = 0;
  SweepStats stats;
  auto retried = RunSweep(cells, options, &stats);
  ASSERT_TRUE(retried[0].ok()) << retried[0].status();
  ASSERT_TRUE(retried[1].ok());
  EXPECT_EQ(stats.trials_retried, 6u);
  EXPECT_EQ(stats.trials_failed, 0u);
  EXPECT_EQ(stats.cells_degraded, 0u);
  ExpectTrialsBitIdentical(*reference[0], *retried[0]);
  ExpectTrialsBitIdentical(*reference[1], *retried[1]);
}

TEST_F(SweepResumeTest, ExhaustedRetriesDegradeTheCellNotTheSweep) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  std::vector<SweepCell> cells = MakeCells(task, params);

  // (cell 0, rep 1) fails 3 times; the budget allows 1 retry = 2 attempts.
  ASSERT_TRUE(fault::SetFaultSpec("trial=0:1:3").ok());
  SweepOptions options;
  options.trial_retries = 1;
  options.retry_backoff_ms = 0;
  SweepStats stats;
  auto results = RunSweep(cells, options, &stats);
  ASSERT_TRUE(results[0].ok()) << results[0].status();  // degraded, not error
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(results[0]->trials.size(), 2u);  // reps 0 and 2 survive, in order
  EXPECT_EQ(results[1]->trials.size(), 3u);
  EXPECT_EQ(stats.trials_failed, 1u);
  EXPECT_EQ(stats.trials_retried, 1u);
  EXPECT_EQ(stats.cells_degraded, 1u);
  ASSERT_EQ(stats.per_cell.size(), 2u);
  EXPECT_EQ(stats.per_cell[0].failed, 1u);
  EXPECT_EQ(stats.per_cell[0].trained, 2u);
  EXPECT_EQ(stats.per_cell[1].failed, 0u);
}

TEST_F(SweepResumeTest, ResumeAfterDegradationRetrainsOnlyTheFailedRep) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  std::vector<SweepCell> cells = MakeCells(task, params);
  ScopedJournalDir dir("degraded");

  auto reference = RunSweep(cells);
  ASSERT_TRUE(reference[0].ok());
  ASSERT_TRUE(reference[1].ok());

  // First run: (cell 0, rep 1) exhausts the budget; the 5 surviving trials
  // are journaled under their true rep indices.
  ASSERT_TRUE(fault::SetFaultSpec("trial=0:1:3").ok());
  SweepOptions options;
  options.checkpoint = dir.Journal();
  options.trial_retries = 0;
  options.retry_backoff_ms = 0;
  SweepStats degraded_stats;
  auto degraded = RunSweep(cells, options, &degraded_stats);
  ASSERT_TRUE(degraded[0].ok());
  EXPECT_EQ(degraded[0]->trials.size(), 2u);
  EXPECT_EQ(degraded_stats.trials_failed, 1u);

  // Second run, fault gone: exactly the failed rep retrains, the rest resume
  // from the journal, and the full summary matches the never-faulted run.
  fault::ClearFaultSpecForTest();
  SweepStats resumed_stats;
  auto resumed = RunSweep(cells, options, &resumed_stats);
  ASSERT_TRUE(resumed[0].ok());
  ASSERT_TRUE(resumed[1].ok());
  EXPECT_EQ(resumed_stats.trials_resumed, 5u);
  EXPECT_EQ(resumed_stats.trials_trained, 1u);
  EXPECT_EQ(resumed_stats.trials_failed, 0u);
  ExpectTrialsBitIdentical(*reference[0], *resumed[0]);
  ExpectTrialsBitIdentical(*reference[1], *resumed[1]);
}

TEST_F(SweepResumeTest, CellWhereEveryRepFailsKeepsTheErrorBehavior) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  std::vector<SweepCell> cells = MakeCells(task, params);

  ASSERT_TRUE(fault::SetFaultSpec("trial=0:*:5").ok());
  SweepOptions options;
  options.trial_retries = 0;
  options.retry_backoff_ms = 0;
  SweepStats stats;
  auto results = RunSweep(cells, options, &stats);
  EXPECT_EQ(results[0].status().code(), StatusCode::kInternal);
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(results[1]->trials.size(), 3u);
  EXPECT_EQ(stats.trials_failed, 3u);
  EXPECT_EQ(stats.cells_degraded, 0u);  // a dead cell is an error, not
                                        // a degrade
  ASSERT_EQ(stats.per_cell.size(), 2u);
  EXPECT_EQ(stats.per_cell[0].failed, 3u);
}

TEST_F(SweepResumeTest, ResumeIsThreadCountIndependent) {
  bench::BenchParams params = TinyParams();
  bench::Task task = bench::MakeMnistTask(params);
  std::vector<SweepCell> cells = MakeCells(task, params);
  ScopedJournalDir dir("threads");

  SweepOptions seed_options;
  seed_options.checkpoint = dir.Journal();
  seed_options.threads = 1;
  auto reference = RunSweep(cells, seed_options);
  ASSERT_TRUE(reference[0].ok());
  ASSERT_TRUE(reference[1].ok());

  for (const size_t threads : {size_t{4}, size_t{13}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SweepOptions options;
    options.checkpoint = dir.Journal();
    options.threads = threads;
    SweepStats stats;
    auto resumed = RunSweep(cells, options, &stats);
    ASSERT_TRUE(resumed[0].ok());
    ASSERT_TRUE(resumed[1].ok());
    EXPECT_EQ(stats.trials_resumed, 6u);
    EXPECT_EQ(stats.trials_trained, 0u);
    ExpectTrialsBitIdentical(*reference[0], *resumed[0]);
    ExpectTrialsBitIdentical(*reference[1], *resumed[1]);
  }
}

}  // namespace
}  // namespace dpaudit
