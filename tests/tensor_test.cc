#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dpaudit {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ConstructFromData) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(0, 1), 2.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_EQ(t.At(1, 1), 4.0f);
}

TEST(TensorTest, FullFill) {
  Tensor t = Tensor::Full({3}, 2.5f);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5f);
  t.Fill(-1.0f);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], -1.0f);
}

TEST(TensorTest, RowMajorLayoutRank3And4) {
  Tensor t3({2, 3, 4});
  t3.At(1, 2, 3) = 9.0f;
  EXPECT_EQ(t3[(1 * 3 + 2) * 4 + 3], 9.0f);
  Tensor t4({2, 2, 2, 2});
  t4.At(1, 0, 1, 0) = 5.0f;
  EXPECT_EQ(t4[((1 * 2 + 0) * 2 + 1) * 2 + 0], 5.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  t.Reshape({3, 2});
  EXPECT_EQ(t.At(2, 1), 5.0f);
  EXPECT_EQ(t.At(0, 1), 1.0f);
}

TEST(TensorDeathTest, ReshapeVolumeMismatchDies) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "CHECK failed");
}

TEST(TensorDeathTest, OutOfBoundsAccessDies) {
  Tensor t({2, 2});
  EXPECT_DEATH((void)t.At(2, 0), "CHECK failed");
  EXPECT_DEATH((void)t[4], "CHECK failed");
}

TEST(TensorDeathTest, ZeroExtentDies) {
  EXPECT_DEATH(Tensor({2, 0}), "zero extent");
}

TEST(TensorTest, AxpyAndScale) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.Axpy(0.5f, b);
  EXPECT_EQ(a[0], 6.0f);
  EXPECT_EQ(a[2], 18.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a[0], 12.0f);
}

TEST(TensorTest, NormAndSum) {
  Tensor t({2}, {3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(t.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(t.Sum(), 7.0);
}

TEST(TensorTest, AddSubDot) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 5});
  Tensor sum = Add(a, b);
  EXPECT_EQ(sum[0], 4.0f);
  EXPECT_EQ(sum[1], 7.0f);
  Tensor diff = Sub(b, a);
  EXPECT_EQ(diff[0], 2.0f);
  EXPECT_EQ(diff[1], 3.0f);
  EXPECT_DOUBLE_EQ(Dot(a, b), 13.0);
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.rank(), 2u);
  EXPECT_EQ(c.dim(0), 2u);
  EXPECT_EQ(c.dim(1), 2u);
  EXPECT_EQ(c.At(0, 0), 58.0f);
  EXPECT_EQ(c.At(0, 1), 64.0f);
  EXPECT_EQ(c.At(1, 0), 139.0f);
  EXPECT_EQ(c.At(1, 1), 154.0f);
}

TEST(TensorTest, MatMulIdentity) {
  Tensor eye({3, 3}, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  Tensor a({3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_TRUE(MatMul(eye, a) == a);
  EXPECT_TRUE(MatMul(a, eye) == a);
}

TEST(TensorTest, TransposeInvolution) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor at = Transpose(a);
  EXPECT_EQ(at.dim(0), 3u);
  EXPECT_EQ(at.At(2, 1), 6.0f);
  EXPECT_TRUE(Transpose(at) == a);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3, 4}).ShapeString(), "[2, 3, 4]");
  EXPECT_EQ(Tensor({5}).ShapeString(), "[5]");
}

}  // namespace
}  // namespace dpaudit
