# Runs dpaudit_lint --format=sarif over the real tree and validates the
# output with python's strict JSON parser — the same artifact CI uploads.
# Invoked by the lint_sarif_parses ctest with -DLINT_BIN/-DSOURCE_DIR/
# -DPYTHON/-DOUT.

execute_process(
  COMMAND ${LINT_BIN} --root ${SOURCE_DIR} --format=sarif
  OUTPUT_FILE ${OUT}
  RESULT_VARIABLE lint_result)
# Exit 0 (clean) and 1 (findings) both produce a full SARIF document; only
# 2 (usage / I/O error) is a failure.
if(lint_result GREATER 1)
  message(FATAL_ERROR "dpaudit_lint --format=sarif failed: ${lint_result}")
endif()

execute_process(
  COMMAND ${PYTHON} -m json.tool ${OUT}
  OUTPUT_QUIET
  RESULT_VARIABLE json_result)
if(NOT json_result EQUAL 0)
  message(FATAL_ERROR "SARIF output is not valid JSON (see ${OUT})")
endif()
