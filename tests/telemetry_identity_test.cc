// The telemetry determinism contract: instrumenting the pipeline must not
// perturb a single bit of experiment output. Telemetry reads only the
// monotonic clock and its own atomics — never the RNG stream or any
// floating-point accumulation order — so a fig09-style experiment must
// produce EXACTLY the same trials with telemetry on and off.

#include <sstream>
#include <vector>

#include "core/experiment.h"
#include "dp/privacy_params.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "tests/test_helpers.h"
#include "util/logging.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

DiExperimentConfig SmallAuditConfig() {
  // Shaped like one fig09 grid cell: multi-step DPSGD, parallel
  // repetitions, local-hat sensitivity so the sigma schedule is data
  // dependent.
  DiExperimentConfig config;
  config.dpsgd.epochs = 6;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 0.8;
  config.dpsgd.sensitivity_mode = SensitivityMode::kLocalHat;
  config.repetitions = 12;
  config.threads = 4;
  config.seed = 1234;
  return config;
}

DiExperimentSummary RunOnce(bool telemetry) {
  obs::EnableTelemetryForTest(telemetry);
  Rng rng(7);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(9, rng);
  Dataset d_prime = ExtremeBoundedNeighbor(d, 6.0f);
  auto summary = RunDiExperiment(net, d, d_prime, SmallAuditConfig());
  obs::EnableTelemetryForTest(false);
  DPAUDIT_CHECK_OK(summary.status());
  return *summary;
}

void ExpectBitIdentical(const DiExperimentSummary& a,
                        const DiExperimentSummary& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (size_t i = 0; i < a.trials.size(); ++i) {
    const DiTrialResult& x = a.trials[i];
    const DiTrialResult& y = b.trials[i];
    EXPECT_EQ(x.trained_on_d, y.trained_on_d) << "trial " << i;
    EXPECT_EQ(x.adversary_says_d, y.adversary_says_d) << "trial " << i;
    // Exact double equality, not near: the contract is bit identity.
    EXPECT_EQ(x.final_belief_d, y.final_belief_d) << "trial " << i;
    EXPECT_EQ(x.max_belief_d, y.max_belief_d) << "trial " << i;
    ASSERT_EQ(x.local_sensitivities.size(), y.local_sensitivities.size());
    for (size_t s = 0; s < x.local_sensitivities.size(); ++s) {
      EXPECT_EQ(x.local_sensitivities[s], y.local_sensitivities[s])
          << "trial " << i << " step " << s;
      EXPECT_EQ(x.sigmas[s], y.sigmas[s]) << "trial " << i << " step " << s;
    }
  }
}

class TelemetryIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SpanRegistry::Global().ResetForTest();
    obs::MetricsRegistry::Global().ResetForTest();
  }
  void TearDown() override {
    obs::EnableTelemetryForTest(false);
    obs::SpanRegistry::Global().ResetForTest();
    obs::MetricsRegistry::Global().ResetForTest();
  }
};

TEST_F(TelemetryIdentityTest, ExperimentBitIdenticalWithTelemetryOnAndOff) {
  DiExperimentSummary off = RunOnce(/*telemetry=*/false);
  DiExperimentSummary on = RunOnce(/*telemetry=*/true);
  DiExperimentSummary off_again = RunOnce(/*telemetry=*/false);
  ExpectBitIdentical(off, on);
  ExpectBitIdentical(off, off_again);
}

TEST_F(TelemetryIdentityTest, InstrumentedRunPopulatesTheProfileTree) {
  RunOnce(/*telemetry=*/true);
  std::vector<obs::SpanRegistry::Stat> stats =
      obs::SpanRegistry::Global().Collect();
  auto has = [&stats](const std::string& path) {
    for (const auto& s : stats) {
      if (s.path == path) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("di_experiment"));
  EXPECT_TRUE(has("di_experiment/repetition"));
  EXPECT_TRUE(has("di_experiment/repetition/train_step"));
  EXPECT_TRUE(
      has("di_experiment/repetition/train_step/per_example_gradients"));
  EXPECT_TRUE(has("di_experiment/repetition/train_step/mechanism_perturb"));
  EXPECT_TRUE(has("di_experiment/repetition/train_step/adversary"));

  // The pipeline counters moved too.
  bool saw_steps = false;
  for (const auto& m : obs::MetricsRegistry::Global().Snapshot()) {
    if (m.name == "dpaudit_train_steps_total") {
      saw_steps = true;
      EXPECT_DOUBLE_EQ(m.value, 12.0 * 6.0);  // repetitions x epochs
    }
  }
  EXPECT_TRUE(saw_steps);
}

TEST_F(TelemetryIdentityTest, UninstrumentedRunLeavesRegistriesEmpty) {
  RunOnce(/*telemetry=*/false);
  EXPECT_TRUE(obs::SpanRegistry::Global().Collect().empty());
  // Only unconditional counters (trace cache, absent here) could appear; the
  // gated pipeline metrics must not.
  for (const auto& m : obs::MetricsRegistry::Global().Snapshot()) {
    EXPECT_EQ(m.name.find("dpaudit_train"), std::string::npos) << m.name;
  }
}

TEST_F(TelemetryIdentityTest, ProfileReportRendersTheTree) {
  RunOnce(/*telemetry=*/true);
  std::ostringstream os;
  obs::WriteProfileReport(os, obs::SpanRegistry::Global().RootTotalNs());
  const std::string report = os.str();
  EXPECT_NE(report.find("di_experiment"), std::string::npos);
  EXPECT_NE(report.find("train_step"), std::string::npos);
  EXPECT_NE(report.find("span coverage"), std::string::npos);
}

}  // namespace
}  // namespace dpaudit
