#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace dpaudit {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  DPAUDIT_CHECK(true);
  DPAUDIT_CHECK_EQ(1, 1);
  DPAUDIT_CHECK_NE(1, 2);
  DPAUDIT_CHECK_LT(1, 2);
  DPAUDIT_CHECK_LE(2, 2);
  DPAUDIT_CHECK_GT(3, 2);
  DPAUDIT_CHECK_GE(3, 3);
  DPAUDIT_CHECK_OK(Status::Ok());
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ DPAUDIT_CHECK(1 == 2) << "math broke"; }, "math broke");
}

TEST(CheckDeathTest, FailingCheckEqAborts) {
  int a = 3;
  int b = 4;
  EXPECT_DEATH({ DPAUDIT_CHECK_EQ(a, b); }, "CHECK failed");
}

TEST(CheckDeathTest, FailingCheckOkPrintsStatus) {
  EXPECT_DEATH({ DPAUDIT_CHECK_OK(Status::Internal("bad state")); },
               "bad state");
}

TEST(CheckTest, CheckDoesNotDoubleEvaluate) {
  int calls = 0;
  auto increment = [&calls] { return ++calls; };
  DPAUDIT_CHECK_GT(increment(), 0);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace dpaudit
