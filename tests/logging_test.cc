#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dpaudit {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  DPAUDIT_CHECK(true);
  DPAUDIT_CHECK_EQ(1, 1);
  DPAUDIT_CHECK_NE(1, 2);
  DPAUDIT_CHECK_LT(1, 2);
  DPAUDIT_CHECK_LE(2, 2);
  DPAUDIT_CHECK_GT(3, 2);
  DPAUDIT_CHECK_GE(3, 3);
  DPAUDIT_CHECK_OK(Status::Ok());
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ DPAUDIT_CHECK(1 == 2) << "math broke"; }, "math broke");
}

TEST(CheckDeathTest, FailingCheckEqAborts) {
  int a = 3;
  int b = 4;
  EXPECT_DEATH({ DPAUDIT_CHECK_EQ(a, b); }, "CHECK failed");
}

TEST(CheckDeathTest, FailingCheckOkPrintsStatus) {
  EXPECT_DEATH({ DPAUDIT_CHECK_OK(Status::Internal("bad state")); },
               "bad state");
}

TEST(CheckTest, CheckDoesNotDoubleEvaluate) {
  int calls = 0;
  auto increment = [&calls] { return ++calls; };
  DPAUDIT_CHECK_GT(increment(), 0);
  EXPECT_EQ(calls, 1);
}

// Captures emitted records through the process-wide sink.
struct SinkCapture {
  static std::vector<std::pair<LogLevel, std::string>>& Records() {
    static std::vector<std::pair<LogLevel, std::string>> records;
    return records;
  }
  static void Sink(LogLevel level, const char* /*file*/, int /*line*/,
                   const std::string& message) {
    Records().emplace_back(level, message);
  }
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SinkCapture::Records().clear();
    SetLogSink(&SinkCapture::Sink);
    SetMinLogLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetMinLogLevel(LogLevel::kInfo);
  }
};

TEST_F(LogTest, EmitsAtOrAboveThreshold) {
  DPAUDIT_LOG(INFO) << "hello " << 42;
  DPAUDIT_LOG(WARNING) << "careful";
  DPAUDIT_LOG(ERROR) << "broken";
  ASSERT_EQ(SinkCapture::Records().size(), 3u);
  EXPECT_EQ(SinkCapture::Records()[0].first, LogLevel::kInfo);
  EXPECT_EQ(SinkCapture::Records()[0].second, "hello 42");
  EXPECT_EQ(SinkCapture::Records()[1].first, LogLevel::kWarning);
  EXPECT_EQ(SinkCapture::Records()[2].first, LogLevel::kError);
}

TEST_F(LogTest, FiltersBelowThreshold) {
  SetMinLogLevel(LogLevel::kWarning);
  DPAUDIT_LOG(INFO) << "suppressed";
  DPAUDIT_LOG(WARNING) << "kept";
  ASSERT_EQ(SinkCapture::Records().size(), 1u);
  EXPECT_EQ(SinkCapture::Records()[0].second, "kept");
  SetMinLogLevel(LogLevel::kError);
  DPAUDIT_LOG(WARNING) << "also suppressed";
  EXPECT_EQ(SinkCapture::Records().size(), 1u);
}

TEST_F(LogTest, SuppressedMessagesSkipTheStreamChain) {
  SetMinLogLevel(LogLevel::kError);
  int calls = 0;
  auto side_effect = [&calls] { return ++calls; };
  DPAUDIT_LOG(INFO) << side_effect();
  EXPECT_EQ(calls, 0);
  DPAUDIT_LOG(ERROR) << side_effect();
  EXPECT_EQ(calls, 1);
}

TEST_F(LogTest, LogLevelEnabledMatchesThreshold) {
  SetMinLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(LogLevelEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogLevelEnabled(LogLevel::kWarning));
  EXPECT_TRUE(LogLevelEnabled(LogLevel::kError));
  EXPECT_EQ(MinLogLevel(), LogLevel::kWarning);
}

TEST_F(LogTest, RemovedSinkStopsReceiving) {
  SetLogSink(nullptr);
  DPAUDIT_LOG(ERROR) << "unseen";
  EXPECT_TRUE(SinkCapture::Records().empty());
}

}  // namespace
}  // namespace dpaudit
