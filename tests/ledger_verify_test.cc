// Tests for ledger-backed epsilon' verification: a ledger written by a real
// experiment run must pass `check` (digests, belief replay, all three
// estimators recomputed from rows alone), any tampering must be named, and
// trace-cache replayed runs must emit rows byte-identical to cold runs.

#include "core/ledger_verify.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/auditor.h"
#include "core/experiment.h"
#include "core/trace.h"
#include "obs/audit_ledger.h"
#include "tests/test_helpers.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;

constexpr double kTolerance = 1e-9;
constexpr double kDelta = 1e-3;

DiExperimentConfig FastExperiment() {
  DiExperimentConfig config;
  config.dpsgd.epochs = 4;
  config.dpsgd.learning_rate = 0.05;
  config.dpsgd.clip_norm = 1.0;
  config.dpsgd.noise_multiplier = 1.0;
  config.repetitions = 6;
  config.seed = 99;
  config.randomize_challenge_bit = true;
  return config;
}

struct Fixture {
  Fixture() : rng(1), net(TinyNetwork()) {
    net.Initialize(rng);
    d = BlobDataset(9, rng);
    d_prime = ExtremeBoundedNeighbor(d, 6.0f);
  }
  Rng rng;
  Network net;
  Dataset d;
  Dataset d_prime;
};

/// Runs one audited experiment with the ledger captured to `path`.
void WriteLedgerRun(const Fixture& f, const DiExperimentConfig& config,
                    const std::string& path) {
  std::filesystem::remove(path);
  obs::OpenAuditLedgerForTest(path);
  StatusOr<DiExperimentSummary> summary =
      RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(summary.ok()) << summary.status();
  StatusOr<AuditReport> report = AuditExperiment(*summary, kDelta);
  obs::CloseAuditLedgerForTest();
  ASSERT_TRUE(report.ok()) << report.status();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(LedgerVerify, RealRunPassesCheckAtTightTolerance) {
  Fixture f;
  const std::string path =
      ::testing::TempDir() + "/ledger_verify_pass.ledger.jsonl";
  WriteLedgerRun(f, FastExperiment(), path);

  std::ostringstream report;
  Status checked = CheckLedgerFile(path, kTolerance, report);
  EXPECT_TRUE(checked.ok()) << checked;
  EXPECT_NE(report.str().find("all checks passed"), std::string::npos)
      << report.str();
  EXPECT_NE(report.str().find("audit seq"), std::string::npos)
      << report.str();
  std::filesystem::remove(path);
}

TEST(LedgerVerify, LedgerValuesMatchInProcessAuditor) {
  // The ledger's audit row must carry the same values the in-process
  // auditor returned, not merely internally consistent ones.
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  const std::string path =
      ::testing::TempDir() + "/ledger_verify_match.ledger.jsonl";

  StatusOr<DiExperimentSummary> summary =
      RunDiExperiment(f.net, f.d, f.d_prime, config);
  ASSERT_TRUE(summary.ok()) << summary.status();
  StatusOr<AuditReport> expected = AuditExperiment(*summary, kDelta);
  ASSERT_TRUE(expected.ok()) << expected.status();

  WriteLedgerRun(f, config, path);
  StatusOr<obs::LedgerFile> ledger = obs::LoadLedgerFile(path);
  ASSERT_TRUE(ledger.ok()) << ledger.status();
  ASSERT_EQ(ledger->audits.size(), 1u);
  EXPECT_EQ(ledger->audits[0].epsilon_from_sensitivities,
            expected->epsilon_from_sensitivities);
  EXPECT_EQ(ledger->audits[0].epsilon_from_belief,
            expected->epsilon_from_belief);
  EXPECT_EQ(ledger->audits[0].epsilon_from_advantage,
            expected->epsilon_from_advantage);
  std::filesystem::remove(path);
}

TEST(LedgerVerify, TamperedBeliefFailsCheckNamingTheRow) {
  Fixture f;
  const std::string path =
      ::testing::TempDir() + "/ledger_verify_tamper.ledger.jsonl";
  WriteLedgerRun(f, FastExperiment(), path);

  StatusOr<obs::LedgerFile> ledger = obs::LoadLedgerFile(path);
  ASSERT_TRUE(ledger.ok()) << ledger.status();
  ASSERT_FALSE(ledger->experiments.empty());
  ledger->experiments[0].trials[0].final_belief_d += 1e-6;

  std::ostringstream report;
  Status checked = CheckLedger(*ledger, kTolerance, report);
  ASSERT_FALSE(checked.ok());
  // The digest covers final_belief_d, so the tamper surfaces there first.
  EXPECT_NE(checked.message().find("digest mismatch"), std::string::npos)
      << checked;
  std::filesystem::remove(path);
}

TEST(LedgerVerify, TamperedStepDensityFailsBeliefReplay) {
  Fixture f;
  const std::string path =
      ::testing::TempDir() + "/ledger_verify_density.ledger.jsonl";
  WriteLedgerRun(f, FastExperiment(), path);

  StatusOr<obs::LedgerFile> ledger = obs::LoadLedgerFile(path);
  ASSERT_TRUE(ledger.ok()) << ledger.status();
  // Step densities are outside the content digest; faking one must still be
  // caught, by the Lemma-1 trajectory replay.
  ledger->experiments[0].trials[0].steps[0].log_density_d += 0.5;

  std::ostringstream report;
  Status checked = CheckLedger(*ledger, kTolerance, report);
  ASSERT_FALSE(checked.ok());
  EXPECT_NE(checked.message().find("llr replay mismatch"),
            std::string::npos)
      << checked;
  std::filesystem::remove(path);
}

TEST(LedgerVerify, ReplayedRunEmitsByteIdenticalLedger) {
  Fixture f;
  DiExperimentConfig config = FastExperiment();
  const std::string cache =
      ::testing::TempDir() + "/ledger_verify_cache";
  std::filesystem::remove_all(cache);
  TraceStore store(cache);
  config.trace_store = &store;

  const std::string cold_path =
      ::testing::TempDir() + "/ledger_verify_cold.ledger.jsonl";
  const std::string warm_path =
      ::testing::TempDir() + "/ledger_verify_warm.ledger.jsonl";
  WriteLedgerRun(f, config, cold_path);   // trains, records the trace
  WriteLedgerRun(f, config, warm_path);   // replays it from the cache

  const std::string cold = ReadFile(cold_path);
  const std::string warm = ReadFile(warm_path);
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(cold, warm);

  // A partial replay (recording shorter than the request) must also land on
  // identical rows for the shared prefix: rerun with more repetitions, then
  // the original count again.
  DiExperimentConfig extended = config;
  extended.repetitions = config.repetitions + 2;
  const std::string extended_path =
      ::testing::TempDir() + "/ledger_verify_extended.ledger.jsonl";
  WriteLedgerRun(f, extended, extended_path);
  const std::string again_path =
      ::testing::TempDir() + "/ledger_verify_again.ledger.jsonl";
  WriteLedgerRun(f, config, again_path);
  EXPECT_EQ(cold, ReadFile(again_path));

  std::ostringstream report;
  EXPECT_TRUE(CheckLedgerFile(extended_path, kTolerance, report).ok());

  std::filesystem::remove_all(cache);
  std::filesystem::remove(cold_path);
  std::filesystem::remove(warm_path);
  std::filesystem::remove(extended_path);
  std::filesystem::remove(again_path);
}

}  // namespace
}  // namespace dpaudit
