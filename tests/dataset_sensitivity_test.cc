#include "data/dataset_sensitivity.h"

#include <gtest/gtest.h>

#include "data/dissimilarity.h"

namespace dpaudit {
namespace {

// Records on a line so L2 dissimilarities are easy to reason about.
Dataset LineDataset(std::vector<float> positions) {
  Dataset d;
  for (size_t i = 0; i < positions.size(); ++i) {
    d.Add(Tensor({1}, {positions[i]}), i);
  }
  return d;
}

TEST(RankBoundedCandidatesTest, SortedDescendingAndComplete) {
  Dataset d = LineDataset({0.0f, 1.0f});
  Dataset pool = LineDataset({5.0f, -3.0f, 0.5f});
  auto ranked = RankBoundedCandidates(d, pool, L2Dissimilarity);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 6u);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].dissimilarity, (*ranked)[i].dissimilarity);
  }
  // Max pair: record 1.0 in D against pool record -3.0 -> distance 4? No:
  // |0 - (-3)| = 3, |1 - (-3)| = 4, |0 - 5| = 5, |1 - 5| = 4. Max is (0, 5).
  EXPECT_EQ(ranked->front().index_in_d, 0u);
  EXPECT_EQ(ranked->front().index_in_pool, 0u);
  EXPECT_DOUBLE_EQ(ranked->front().dissimilarity, 5.0);
  // Min pair: |1 - 0.5| = 0.5.
  EXPECT_DOUBLE_EQ(ranked->back().dissimilarity, 0.5);
}

TEST(DatasetSensitivityTest, MatchesTopCandidate) {
  Dataset d = LineDataset({0.0f, 1.0f});
  Dataset pool = LineDataset({5.0f, -3.0f});
  EXPECT_DOUBLE_EQ(*DatasetSensitivity(d, pool, L2Dissimilarity), 5.0);
}

TEST(MakeBoundedNeighborTest, ReplacesExactlyOneRecord) {
  Dataset d = LineDataset({0.0f, 1.0f, 2.0f});
  Dataset pool = LineDataset({9.0f});
  BoundedCandidate candidate{1, 0, 8.0};
  Dataset neighbor = MakeBoundedNeighbor(d, pool, candidate);
  ASSERT_EQ(neighbor.size(), 3u);
  EXPECT_EQ(neighbor.inputs[1][0], 9.0f);
  EXPECT_EQ(neighbor.inputs[0][0], 0.0f);
  EXPECT_EQ(neighbor.inputs[2][0], 2.0f);
  // Label comes from the pool record.
  EXPECT_EQ(neighbor.labels[1], pool.labels[0]);
}

TEST(RankUnboundedCandidatesTest, OutlierRanksFirst) {
  // Records: cluster {0, 0.1, 0.2} plus outlier 10. Aggregate dissimilarity
  // of the outlier dominates.
  Dataset d = LineDataset({0.0f, 0.1f, 0.2f, 10.0f});
  auto ranked = RankUnboundedCandidates(d, L2Dissimilarity);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 4u);
  EXPECT_EQ(ranked->front().index_in_d, 3u);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].dissimilarity, (*ranked)[i].dissimilarity);
  }
}

TEST(RankUnboundedCandidatesTest, AggregateMatchesManualSum) {
  Dataset d = LineDataset({0.0f, 1.0f, 3.0f});
  auto ranked = RankUnboundedCandidates(d, L2Dissimilarity);
  ASSERT_TRUE(ranked.ok());
  // Aggregates: r0: 1+3=4, r1: 1+2=3, r2: 3+2=5.
  EXPECT_EQ(ranked->front().index_in_d, 2u);
  EXPECT_DOUBLE_EQ(ranked->front().dissimilarity, 5.0);
  EXPECT_DOUBLE_EQ(ranked->back().dissimilarity, 3.0);
}

TEST(MakeUnboundedNeighborTest, RemovesExactlyOneRecord) {
  Dataset d = LineDataset({0.0f, 1.0f, 2.0f});
  UnboundedCandidate candidate{1, 3.0};
  Dataset neighbor = MakeUnboundedNeighbor(d, candidate);
  ASSERT_EQ(neighbor.size(), 2u);
  EXPECT_EQ(neighbor.inputs[0][0], 0.0f);
  EXPECT_EQ(neighbor.inputs[1][0], 2.0f);
}

TEST(DatasetSensitivityTest, RejectsEmptyInputs) {
  Dataset d = LineDataset({0.0f});
  Dataset empty;
  EXPECT_FALSE(RankBoundedCandidates(empty, d, L2Dissimilarity).ok());
  EXPECT_FALSE(RankBoundedCandidates(d, empty, L2Dissimilarity).ok());
  EXPECT_FALSE(RankUnboundedCandidates(d, L2Dissimilarity).ok());  // |D| < 2
}

TEST(RankBoundedCandidatesTest, StableForTies) {
  Dataset d = LineDataset({0.0f});
  Dataset pool = LineDataset({1.0f, 1.0f});
  auto ranked = RankBoundedCandidates(d, pool, L2Dissimilarity);
  ASSERT_TRUE(ranked.ok());
  // Equal dissimilarities keep pool order (stable sort).
  EXPECT_EQ((*ranked)[0].index_in_pool, 0u);
  EXPECT_EQ((*ranked)[1].index_in_pool, 1u);
}

}  // namespace
}  // namespace dpaudit
