#include "util/table_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace dpaudit {
namespace {

TEST(TableWriterTest, CellFormatting) {
  EXPECT_EQ(TableWriter::Cell(1.23456, 2), "1.23");
  EXPECT_EQ(TableWriter::Cell(1.23456, 4), "1.2346");
  EXPECT_EQ(TableWriter::Cell(-0.5, 1), "-0.5");
  EXPECT_EQ(TableWriter::Cell(42), "42");
  EXPECT_EQ(TableWriter::Cell(size_t{7}), "7");
  EXPECT_EQ(TableWriter::Cell(std::nan(""), 3), "nan");
  EXPECT_EQ(TableWriter::Cell(INFINITY, 3), "inf");
  EXPECT_EQ(TableWriter::Cell(-INFINITY, 3), "-inf");
}

TEST(TableWriterTest, CsvOutput) {
  TableWriter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  std::ostringstream os;
  table.RenderCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TableWriterTest, TextOutputAligned) {
  TableWriter table({"metric", "v"});
  table.AddRow({"epsilon", "2.2"});
  std::ostringstream os;
  table.RenderText(os);
  std::string text = os.str();
  EXPECT_NE(text.find("| metric  | v   |"), std::string::npos);
  EXPECT_NE(text.find("| epsilon | 2.2 |"), std::string::npos);
}

TEST(TableWriterTest, RowCount) {
  TableWriter table({"x"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableWriterDeathTest, MismatchedRowDies) {
  TableWriter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "CHECK failed");
}

}  // namespace
}  // namespace dpaudit
