// RuntimeOptions: env defaults, flag overlay + stripping, precedence
// (flag > env > default), validation messages, help generation, and the
// push-down into the util layers.

#include "core/runtime_options.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace {

const char* const kVars[] = {
    "DPAUDIT_THREADS",        "DPAUDIT_BATCH_LANES",
    "DPAUDIT_TRACE_CACHE",    "DPAUDIT_TELEMETRY",
    "DPAUDIT_SWEEP_MODE",     "DPAUDIT_PROGRESS",
    "DPAUDIT_LOG_LEVEL",      "DPAUDIT_TRIAL_RETRIES",
    "DPAUDIT_RETRY_BACKOFF_MS", "DPAUDIT_SWEEP_CHECKPOINT",
    "DPAUDIT_FAULT_INJECT",   "DPAUDIT_VERBOSE",
};

class RuntimeOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* var : kVars) unsetenv(var);
  }
  void TearDown() override {
    for (const char* var : kVars) unsetenv(var);
  }
};

/// Runs FromEnvAndArgs over a mutable copy of `args` (argv[0] implied) and
/// returns the surviving arguments through `left`.
StatusOr<RuntimeOptions> ParseArgs(std::vector<std::string> args,
                                   std::vector<std::string>* left = nullptr) {
  std::vector<std::string> storage;
  storage.push_back("test_binary");
  for (const std::string& arg : args) storage.push_back(arg);
  std::vector<char*> argv;
  for (std::string& arg : storage) argv.push_back(arg.data());
  int argc = static_cast<int>(argv.size());
  StatusOr<RuntimeOptions> options =
      RuntimeOptions::FromEnvAndArgs(&argc, argv.data());
  if (left != nullptr) {
    left->clear();
    for (int i = 1; i < argc; ++i) left->push_back(argv[i]);
  }
  return options;
}

TEST_F(RuntimeOptionsTest, DefaultsWithNothingSet) {
  RuntimeOptions options = RuntimeOptions::FromEnv();
  EXPECT_EQ(options.threads, 0u);
  EXPECT_EQ(options.batch_lanes, -1);
  EXPECT_TRUE(options.trace_cache.empty());
  EXPECT_FALSE(options.telemetry_enabled);
  EXPECT_EQ(options.sweep_mode, SweepMode::kFlattened);
  EXPECT_EQ(options.progress_seconds, 0);
  EXPECT_TRUE(options.log_level.empty());
  EXPECT_EQ(options.trial_retries, 2u);
  EXPECT_EQ(options.retry_backoff_ms, 10u);
  EXPECT_TRUE(options.checkpoint.empty());
  EXPECT_TRUE(options.fault_spec.empty());
  EXPECT_FALSE(options.verbose);
  EXPECT_FALSE(options.help);
  EXPECT_TRUE(options.Validate().ok());
}

TEST_F(RuntimeOptionsTest, EnvironmentLayerOverridesDefaults) {
  setenv("DPAUDIT_THREADS", "7", 1);
  setenv("DPAUDIT_BATCH_LANES", "4", 1);
  setenv("DPAUDIT_TRACE_CACHE", "/tmp/traces", 1);
  setenv("DPAUDIT_TELEMETRY", "/tmp/tele", 1);
  setenv("DPAUDIT_SWEEP_MODE", "percell", 1);
  setenv("DPAUDIT_TRIAL_RETRIES", "5", 1);
  setenv("DPAUDIT_SWEEP_CHECKPOINT", "/tmp/run.sweep.jsonl", 1);
  setenv("DPAUDIT_VERBOSE", "1", 1);
  RuntimeOptions options = RuntimeOptions::FromEnv();
  EXPECT_EQ(options.threads, 7u);
  EXPECT_EQ(options.batch_lanes, 4);
  EXPECT_EQ(options.trace_cache, "/tmp/traces");
  EXPECT_TRUE(options.telemetry_enabled);
  EXPECT_EQ(options.telemetry_dir, "/tmp/tele");
  EXPECT_EQ(options.sweep_mode, SweepMode::kPerCell);
  EXPECT_EQ(options.trial_retries, 5u);
  EXPECT_EQ(options.checkpoint, "/tmp/run.sweep.jsonl");
  EXPECT_TRUE(options.verbose);
}

TEST_F(RuntimeOptionsTest, FlagBeatsEnvironment) {
  setenv("DPAUDIT_THREADS", "7", 1);
  setenv("DPAUDIT_SWEEP_MODE", "percell", 1);
  StatusOr<RuntimeOptions> options =
      ParseArgs({"--threads=3", "--sweep-mode=flattened"});
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_EQ(options->threads, 3u);
  EXPECT_EQ(options->sweep_mode, SweepMode::kFlattened);
}

TEST_F(RuntimeOptionsTest, RecognizedFlagsAreStrippedOthersPassThrough) {
  std::vector<std::string> left;
  StatusOr<RuntimeOptions> options = ParseArgs(
      {"positional", "--threads=2", "--unknown=x", "--retries=0",
       "--checkpoint=/tmp/j.jsonl", "--flag"},
      &left);
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_EQ(options->threads, 2u);
  EXPECT_EQ(options->trial_retries, 0u);
  EXPECT_EQ(options->checkpoint, "/tmp/j.jsonl");
  EXPECT_EQ(left,
            (std::vector<std::string>{"positional", "--unknown=x", "--flag"}));
}

TEST_F(RuntimeOptionsTest, SpaceSeparatedFormIsAccepted) {
  std::vector<std::string> left;
  StatusOr<RuntimeOptions> options =
      ParseArgs({"--threads", "4", "--telemetry", "/tmp/t", "keep"}, &left);
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_EQ(options->threads, 4u);
  EXPECT_TRUE(options->telemetry_enabled);
  EXPECT_EQ(options->telemetry_dir, "/tmp/t");
  EXPECT_EQ(left, std::vector<std::string>{"keep"});
}

TEST_F(RuntimeOptionsTest, HelpAndVerboseAreBareSwitches) {
  StatusOr<RuntimeOptions> options = ParseArgs({"--verbose", "--help"});
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_TRUE(options->verbose);
  EXPECT_TRUE(options->help);
}

TEST_F(RuntimeOptionsTest, MalformedFlagsFailWithActionableMessages) {
  EXPECT_FALSE(ParseArgs({"--threads=zero"}).ok());
  EXPECT_FALSE(ParseArgs({"--threads=0"}).ok());
  EXPECT_FALSE(ParseArgs({"--lanes=-2"}).ok());
  EXPECT_FALSE(ParseArgs({"--sweep-mode=diagonal"}).ok());
  EXPECT_FALSE(ParseArgs({"--log-level=LOUD"}).ok());
  EXPECT_FALSE(ParseArgs({"--retries=-1"}).ok());
  EXPECT_FALSE(ParseArgs({"--fault-inject=bogus"}).ok());
  Status status = ParseArgs({"--threads=zero"}).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--threads"), std::string::npos);
}

TEST_F(RuntimeOptionsTest, ValidateRejectsOutOfRangeValues) {
  RuntimeOptions options;
  options.threads = 257;
  EXPECT_FALSE(options.Validate().ok());
  options = RuntimeOptions();
  options.batch_lanes = static_cast<int64_t>(kMaxBatchLanes) + 1;
  EXPECT_FALSE(options.Validate().ok());
  options = RuntimeOptions();
  options.trial_retries = 101;
  EXPECT_FALSE(options.Validate().ok());
  options = RuntimeOptions();
  options.log_level = "SHOUTING";
  EXPECT_FALSE(options.Validate().ok());
  options = RuntimeOptions();
  options.fault_spec = "trial=";
  EXPECT_FALSE(options.Validate().ok());
}

TEST_F(RuntimeOptionsTest, HelpListsEveryKnobWithEnvAndDefault) {
  std::ostringstream out;
  PrintRuntimeOptionsHelp("bench_fig08", out);
  const std::string help = out.str();
  EXPECT_NE(help.find("bench_fig08"), std::string::npos);
  for (const RuntimeKnob& knob : RuntimeKnobTable()) {
    EXPECT_NE(help.find(knob.flag), std::string::npos) << knob.flag;
    EXPECT_NE(help.find(knob.env), std::string::npos) << knob.env;
  }
}

TEST_F(RuntimeOptionsTest, ApplyPushesOverridesIntoUtilLayers) {
  RuntimeOptions options;
  options.threads = 5;
  options.batch_lanes = 3;
  ASSERT_TRUE(ApplyRuntimeOptions(options).ok());
  EXPECT_EQ(DefaultThreadCount(), 5u);
  EXPECT_EQ(BatchLanesFromEnv(), 3);
  // Clear the overrides so later suites see env/default behavior again.
  SetDefaultThreadCountOverride(0);
  SetBatchLanesOverride(-1);
  EXPECT_NE(DefaultThreadCount(), 0u);
}

// Keep last in the file: InitRuntimeOptions publishes process-wide and the
// published options shadow the environment for the rest of the process.
TEST_F(RuntimeOptionsTest, ZPublishedOptionsShadowTheEnvironment) {
  setenv("DPAUDIT_TRIAL_RETRIES", "9", 1);
  EXPECT_EQ(CurrentRuntimeOptions().trial_retries, 9u);

  RuntimeOptions options;
  options.trial_retries = 4;
  options.checkpoint = "/tmp/published.sweep.jsonl";
  InitRuntimeOptions(options);
  setenv("DPAUDIT_TRIAL_RETRIES", "77", 1);
  EXPECT_EQ(CurrentRuntimeOptions().trial_retries, 4u);
  EXPECT_EQ(CurrentRuntimeOptions().checkpoint, "/tmp/published.sweep.jsonl");
}

}  // namespace
}  // namespace dpaudit
