// Sweep checkpoint journal: row encode/decode bit-exactness (NaN/Inf
// included), digest verification, manifest provenance, torn-tail recovery,
// duplicate-row semantics, and strict parsing after concurrent appends.

#include "core/sweep_journal.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "core/trace.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace dpaudit {
namespace {

void ExpectSameDouble(double a, double b, const std::string& what) {
  if (std::isnan(a) && std::isnan(b)) return;  // NaN payload may canonicalize
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b)) << what;
}

void ExpectTraceBitIdentical(const TrialTrace& a, const TrialTrace& b) {
  EXPECT_EQ(a.trained_on_d, b.trained_on_d);
  EXPECT_EQ(a.adversary_says_d, b.adversary_says_d);
  ExpectSameDouble(a.final_belief_d, b.final_belief_d, "final_belief_d");
  ExpectSameDouble(a.max_belief_d, b.max_belief_d, "max_belief_d");
  ExpectSameDouble(a.test_accuracy, b.test_accuracy, "test_accuracy");
  ASSERT_EQ(a.belief_history.size(), b.belief_history.size());
  for (size_t i = 0; i < a.belief_history.size(); ++i) {
    ExpectSameDouble(a.belief_history[i], b.belief_history[i],
                     "belief_history[" + std::to_string(i) + "]");
  }
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    const std::string at = "step " + std::to_string(i);
    ExpectSameDouble(a.steps[i].clip_norm, b.steps[i].clip_norm, at);
    ExpectSameDouble(a.steps[i].local_sensitivity,
                     b.steps[i].local_sensitivity, at);
    ExpectSameDouble(a.steps[i].sensitivity_used, b.steps[i].sensitivity_used,
                     at);
    ExpectSameDouble(a.steps[i].sigma, b.steps[i].sigma, at);
    ExpectSameDouble(a.steps[i].log_density_d, b.steps[i].log_density_d, at);
    ExpectSameDouble(a.steps[i].log_density_dprime,
                     b.steps[i].log_density_dprime, at);
    ExpectSameDouble(a.steps[i].belief_d, b.steps[i].belief_d, at);
  }
}

/// A trial trace with awkward doubles: denormals, negatives, NaN, ±inf, and
/// values that need all 17 significant digits.
TrialTrace AwkwardTrace(uint64_t salt) {
  TrialTrace trace;
  trace.trained_on_d = (salt % 2) == 0;
  trace.adversary_says_d = (salt % 3) == 0;
  trace.final_belief_d = 0.1 + 1e-17 * static_cast<double>(salt);
  trace.max_belief_d = 1.0 / 3.0 + static_cast<double>(salt);
  trace.test_accuracy = salt == 0 ? -1.0 : 0.5 + 1e-9;
  trace.belief_history = {0.5, std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          5e-324, -0.0};
  for (size_t i = 0; i < 3; ++i) {
    StepTraceRecord step;
    step.clip_norm = 3.0;
    step.local_sensitivity = 1e-300 * static_cast<double>(i + 1);
    step.sensitivity_used = 0.1234567890123456789;
    step.sigma = 1.772453850905516;
    step.log_density_d = -1234.5678901234567;
    step.log_density_dprime = -1234.5678901234568;
    step.belief_d = static_cast<double>(salt + i) / 7.0;
    trace.steps.push_back(step);
  }
  return trace;
}

TraceFingerprint Fp(const std::string& hex32) {
  StatusOr<TraceFingerprint> fp = TraceFingerprint::FromHex(hex32);
  EXPECT_TRUE(fp.ok()) << hex32;
  return *fp;
}

class SweepJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("DPAUDIT_FAULT_INJECT");
    fault::ClearFaultSpecForTest();
    dir_ = ::testing::TempDir() + "/dpaudit_sweep_journal";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::ClearFaultSpecForTest();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(SweepJournalTest, TrialRowRoundTripsBitExactly) {
  const TraceFingerprint key = Fp("0123456789abcdef0123456789abcdef");
  const TrialTrace trace = AwkwardTrace(1);
  const std::string row = EncodeJournalTrialRow(key, 7, 42, trace);

  std::string fp_hex;
  uint64_t rep = 0;
  uint64_t seed = 0;
  TrialTrace decoded;
  ASSERT_TRUE(DecodeJournalTrialRow(row, &fp_hex, &rep, &seed, &decoded));
  EXPECT_EQ(fp_hex, key.ToHex());
  EXPECT_EQ(rep, 7u);
  EXPECT_EQ(seed, 42u);
  ExpectTraceBitIdentical(trace, decoded);
}

TEST_F(SweepJournalTest, TamperedRowsFailTheDigest) {
  const TraceFingerprint key = Fp("0123456789abcdef0123456789abcdef");
  const std::string row = EncodeJournalTrialRow(key, 0, 1, AwkwardTrace(2));
  std::string fp_hex;
  uint64_t rep = 0;
  uint64_t seed = 0;
  TrialTrace decoded;
  ASSERT_TRUE(DecodeJournalTrialRow(row, &fp_hex, &rep, &seed, &decoded));

  // Flip one payload character: the digest must catch it.
  std::string tampered = row;
  const size_t where = row.find("\"rep\":0");
  ASSERT_NE(where, std::string::npos);
  tampered[where + 6] = '1';
  EXPECT_FALSE(
      DecodeJournalTrialRow(tampered, &fp_hex, &rep, &seed, &decoded));
  EXPECT_FALSE(DecodeJournalTrialRow("", &fp_hex, &rep, &seed, &decoded));
  EXPECT_FALSE(
      DecodeJournalTrialRow("{\"kind\":\"trial\"}", &fp_hex, &rep, &seed,
                            &decoded));
}

TEST_F(SweepJournalTest, OpenWritesTheManifestAndFindServesLoadedRows) {
  const std::string path = Path("run.sweep.jsonl");
  const char* argv[] = {"bench_fig08", "--telemetry=tele", "--threads=4"};
  RecordCommandLineForJournal(3, const_cast<char* const*>(argv));
  const TraceFingerprint key = Fp("00112233445566778899aabbccddeeff");
  const TrialTrace trace = AwkwardTrace(3);
  {
    StatusOr<std::unique_ptr<SweepJournal>> journal = SweepJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status();
    EXPECT_EQ((*journal)->loaded_trials(), 0u);
    EXPECT_EQ((*journal)->Find(key, 0), nullptr);
    (*journal)->AppendTrial(key, 0, 42, trace);
    (*journal)->AppendTrial(key, 3, 42, AwkwardTrace(4));
  }

  StatusOr<LoadedSweepJournal> loaded = LoadSweepJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->has_manifest);
  EXPECT_EQ(loaded->manifest.schema_version, kSweepJournalSchemaVersion);
  EXPECT_EQ(loaded->manifest.binary, "bench_fig08");
  EXPECT_EQ(loaded->manifest.args,
            (std::vector<std::string>{"--telemetry=tele", "--threads=4"}));
  EXPECT_FALSE(loaded->manifest.cwd.empty());
  EXPECT_EQ(loaded->trial_rows, 2u);
  EXPECT_EQ(loaded->dropped_rows, 0u);
  EXPECT_FALSE(loaded->torn_tail);
  ASSERT_EQ(loaded->trials.count(key.ToHex()), 1u);
  ExpectTraceBitIdentical(trace, loaded->trials[key.ToHex()][0]);

  // Re-open: the journal serves the recorded trials through Find.
  StatusOr<std::unique_ptr<SweepJournal>> reopened = SweepJournal::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->loaded_trials(), 2u);
  const TrialTrace* found = (*reopened)->Find(key, 0);
  ASSERT_NE(found, nullptr);
  ExpectTraceBitIdentical(trace, *found);
  EXPECT_EQ((*reopened)->Find(key, 1), nullptr);
}

TEST_F(SweepJournalTest, TornTailIsTruncatedOnReopen) {
  const std::string path = Path("torn.sweep.jsonl");
  const TraceFingerprint key = Fp("00112233445566778899aabbccddeeff");
  {
    StatusOr<std::unique_ptr<SweepJournal>> journal = SweepJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    (*journal)->AppendTrial(key, 0, 42, AwkwardTrace(5));
  }
  {
    // Crash mid-append: half a row, no newline.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "{\"kind\":\"trial\",\"fp\":\"0011";
    std::fwrite(torn, 1, sizeof(torn) - 1, f);
    std::fclose(f);
  }
  StatusOr<LoadedSweepJournal> before = LoadSweepJournal(path);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->torn_tail);
  EXPECT_EQ(before->trial_rows, 1u);

  {
    StatusOr<std::unique_ptr<SweepJournal>> journal = SweepJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ((*journal)->loaded_trials(), 1u);
    (*journal)->AppendTrial(key, 1, 42, AwkwardTrace(6));
  }
  StatusOr<LoadedSweepJournal> after = LoadSweepJournal(path);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->torn_tail);
  EXPECT_EQ(after->trial_rows, 2u);
  EXPECT_EQ(after->dropped_rows, 0u);
}

TEST_F(SweepJournalTest, CorruptMiddleRowIsDroppedNotFatal) {
  const std::string path = Path("corrupt.sweep.jsonl");
  const TraceFingerprint key = Fp("00112233445566778899aabbccddeeff");
  AppendLog log;
  ASSERT_TRUE(log.Open(path).ok());
  ASSERT_TRUE(log.Append(EncodeJournalTrialRow(key, 0, 1, AwkwardTrace(0)))
                  .ok());
  std::string bad = EncodeJournalTrialRow(key, 1, 1, AwkwardTrace(1));
  bad[bad.size() / 2] ^= 1;  // corrupt the middle of the payload
  ASSERT_TRUE(log.Append(bad).ok());
  ASSERT_TRUE(log.Append(EncodeJournalTrialRow(key, 2, 1, AwkwardTrace(2)))
                  .ok());
  log.Close();

  StatusOr<LoadedSweepJournal> loaded = LoadSweepJournal(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->trial_rows, 2u);
  EXPECT_EQ(loaded->dropped_rows, 1u);
  EXPECT_EQ(loaded->trials[key.ToHex()].count(0), 1u);
  EXPECT_EQ(loaded->trials[key.ToHex()].count(1), 0u);  // the corrupt row
  EXPECT_EQ(loaded->trials[key.ToHex()].count(2), 1u);
}

TEST_F(SweepJournalTest, LaterDuplicateRowsWin) {
  const std::string path = Path("dup.sweep.jsonl");
  const TraceFingerprint key = Fp("00112233445566778899aabbccddeeff");
  AppendLog log;
  ASSERT_TRUE(log.Open(path).ok());
  ASSERT_TRUE(log.Append(EncodeJournalTrialRow(key, 0, 1, AwkwardTrace(0)))
                  .ok());
  const TrialTrace winner = AwkwardTrace(9);
  ASSERT_TRUE(log.Append(EncodeJournalTrialRow(key, 0, 1, winner)).ok());
  log.Close();

  StatusOr<LoadedSweepJournal> loaded = LoadSweepJournal(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->trial_rows, 2u);
  ExpectTraceBitIdentical(winner, loaded->trials[key.ToHex()][0]);
}

TEST_F(SweepJournalTest, InjectedWriteFailureDisablesAppendsNotTheSweep) {
  const std::string path = Path("fail.sweep.jsonl");
  ASSERT_TRUE(fault::SetFaultSpec("journal-write=2").ok());
  const TraceFingerprint key = Fp("00112233445566778899aabbccddeeff");
  {
    StatusOr<std::unique_ptr<SweepJournal>> journal = SweepJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    (*journal)->AppendTrial(key, 0, 1, AwkwardTrace(0));  // lands
    (*journal)->AppendTrial(key, 1, 1, AwkwardTrace(1));  // injected failure
    (*journal)->AppendTrial(key, 2, 1, AwkwardTrace(2));  // appends disabled
  }
  StatusOr<LoadedSweepJournal> loaded = LoadSweepJournal(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->trial_rows, 1u);
  EXPECT_EQ(loaded->trials[key.ToHex()].count(0), 1u);
}

TEST_F(SweepJournalTest, ConcurrentAppendsSurviveStrictParsing) {
  const std::string path = Path("concurrent.sweep.jsonl");
  StatusOr<std::unique_ptr<SweepJournal>> journal = SweepJournal::Open(path);
  ASSERT_TRUE(journal.ok());
  // 13 workers appending full trial rows concurrently (the journal's real
  // write pattern: pool workers completing trials in any order). Every row
  // must re-parse under the strict digest check — one interleaved byte and
  // the digest fails.
  constexpr size_t kCells = 4;
  constexpr size_t kReps = 26;
  std::vector<TraceFingerprint> keys;
  for (size_t c = 0; c < kCells; ++c) {
    std::string hex = "00112233445566778899aabbccddeeff";
    hex[0] = static_cast<char>('0' + c);
    keys.push_back(Fp(hex));
  }
  ThreadPool::ParallelFor(kCells * kReps, 13, [&](size_t i) {
    const size_t cell = i / kReps;
    const uint64_t rep = i % kReps;
    (*journal)->AppendTrial(keys[cell], rep, 42, AwkwardTrace(i));
  });
  journal->reset();  // close the log

  StatusOr<LoadedSweepJournal> loaded = LoadSweepJournal(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dropped_rows, 0u);
  EXPECT_FALSE(loaded->torn_tail);
  EXPECT_EQ(loaded->trial_rows, kCells * kReps);
  for (size_t c = 0; c < kCells; ++c) {
    ASSERT_EQ(loaded->trials[keys[c].ToHex()].size(), kReps);
    for (uint64_t rep = 0; rep < kReps; ++rep) {
      ExpectTraceBitIdentical(AwkwardTrace(c * kReps + rep),
                              loaded->trials[keys[c].ToHex()][rep]);
    }
  }
}

}  // namespace
}  // namespace dpaudit
