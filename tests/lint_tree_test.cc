// Tests for the tree-wide half of dpaudit_lint: the graph rules against
// the synthetic mini-tree under tests/lint_fixtures/tree/, the pass-1
// fingerprint cache, the --fix rewriter's idempotency, the SARIF report
// shape, the layers.txt parser, and the pass-1 lexer underneath it all.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/cache.h"
#include "tools/lint/driver.h"
#include "tools/lint/fix.h"
#include "tools/lint/lexer.h"
#include "tools/lint/lint.h"
#include "tools/lint/model.h"

namespace dpaudit {
namespace lint {
namespace {

namespace fs = std::filesystem;

std::string FixtureTreeRoot() {
  return std::string(DPAUDIT_LINT_FIXTURES_DIR) + "/tree";
}

TreeLintOptions TreeOptions(const std::string& root) {
  TreeLintOptions options;
  options.root = root;
  options.layers_path = root + "/layers.txt";
  return options;
}

std::set<std::pair<std::string, std::string>> FileRulePairs(
    const std::vector<Finding>& findings) {
  std::set<std::pair<std::string, std::string>> pairs;
  for (const Finding& f : findings) pairs.insert({f.file, f.rule});
  return pairs;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Graph rules over the synthetic mini-tree.

TEST(TreeFixture, FlagsExactlyTheExpectedGraphFindings) {
  const TreeLintResult result =
      LintTree({"src"}, TreeOptions(FixtureTreeRoot()));
  ASSERT_TRUE(result.errors.empty()) << result.errors.front();
  const std::set<std::pair<std::string, std::string>> expected = {
      {"src/core/flow_bad.cc", "dpaudit-mechanism-flow"},
      {"src/core/ledger_naughty.cc", "dpaudit-layering"},
      {"src/core/literal_sigma.cc", "dpaudit-mechanism-flow"},
      {"src/core/missing_inc.cc", "dpaudit-missing-include"},
      {"src/core/raw_noise.cc", "dpaudit-mechanism-flow"},
      {"src/core/unused_inc.cc", "dpaudit-unused-include"},
      {"src/obs/cycle_a.h", "dpaudit-include-cycle"},
      {"src/util/layer_bad.h", "dpaudit-layering"},
  };
  std::ostringstream detail;
  WriteText(result.findings, detail);
  EXPECT_EQ(FileRulePairs(result.findings), expected) << detail.str();
  for (const Finding& f : result.findings) {
    EXPECT_GT(f.line, 0) << f.file;
    EXPECT_FALSE(f.message.empty()) << f.file;
  }
}

TEST(TreeFixture, RuleFilterRestrictsGraphRules) {
  TreeLintOptions options = TreeOptions(FixtureTreeRoot());
  options.rules = {"dpaudit-layering"};
  const TreeLintResult result = LintTree({"src"}, options);
  ASSERT_TRUE(result.errors.empty());
  const std::set<std::pair<std::string, std::string>> expected = {
      {"src/core/ledger_naughty.cc", "dpaudit-layering"},
      {"src/util/layer_bad.h", "dpaudit-layering"},
  };
  EXPECT_EQ(FileRulePairs(result.findings), expected);
}

TEST(TreeFixture, NoGraphRunsOnlyPerFileRules) {
  TreeLintOptions options = TreeOptions(FixtureTreeRoot());
  options.graph_rules = false;
  const TreeLintResult result = LintTree({"src"}, options);
  ASSERT_TRUE(result.errors.empty());
  std::ostringstream detail;
  WriteText(result.findings, detail);
  // The mini-tree is per-file clean; every finding is a graph finding.
  EXPECT_TRUE(result.findings.empty()) << detail.str();
}

// ---------------------------------------------------------------------------
// The pass-1 fingerprint cache.

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scratch_ = fs::temp_directory_path() / "dpaudit_lint_cache_test";
    fs::remove_all(scratch_);
    fs::create_directories(scratch_);
    fs::copy(FixtureTreeRoot(), scratch_ / "tree",
             fs::copy_options::recursive);
  }
  void TearDown() override { fs::remove_all(scratch_); }

  TreeLintOptions Options() const {
    TreeLintOptions options = TreeOptions((scratch_ / "tree").string());
    options.cache_path = (scratch_ / "cache.txt").string();
    return options;
  }

  fs::path scratch_;
};

TEST_F(CacheTest, WarmRunHitsEverythingAndAgreesWithCold) {
  const TreeLintResult cold = LintTree({"src"}, Options());
  ASSERT_TRUE(cold.errors.empty());
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, cold.files_scanned);
  EXPECT_GT(cold.files_scanned, 0u);

  const TreeLintResult warm = LintTree({"src"}, Options());
  ASSERT_TRUE(warm.errors.empty());
  EXPECT_EQ(warm.cache_hits, warm.files_scanned);
  EXPECT_EQ(warm.cache_misses, 0u);

  std::ostringstream cold_text, warm_text;
  WriteText(cold.findings, cold_text);
  WriteText(warm.findings, warm_text);
  EXPECT_EQ(cold_text.str(), warm_text.str());
}

TEST_F(CacheTest, TouchedFileIsTheOnlyMiss) {
  ASSERT_TRUE(LintTree({"src"}, Options()).errors.empty());
  {
    std::ofstream out(scratch_ / "tree" / "src" / "util" / "clip.h",
                      std::ios::app);
    out << "// touched\n";
  }
  const TreeLintResult result = LintTree({"src"}, Options());
  ASSERT_TRUE(result.errors.empty());
  EXPECT_EQ(result.cache_misses, 1u);
  EXPECT_EQ(result.cache_hits, result.files_scanned - 1);
}

TEST(CacheFormat, CorruptOrMissingFilesYieldAnEmptyCache) {
  EXPECT_EQ(ModelCache::Load("/nonexistent/dpaudit/cache").size(), 0u);
  const fs::path path =
      fs::temp_directory_path() / "dpaudit_lint_corrupt_cache.txt";
  {
    std::ofstream out(path);
    out << "not a dpaudit lint cache\n";
  }
  EXPECT_EQ(ModelCache::Load(path.string()).size(), 0u);
  fs::remove(path);
}

TEST(CacheFormat, ModelSurvivesARoundTrip) {
  const FileModel model = AnalyzeFile(
      "src/a.h",
      "#pragma once\n"
      "#include \"util/b.h\"\n"
      "struct Widget { void Grow(); };\n"
      "int Count(const Widget& w);  // NOLINT(dpaudit-missing-include)\n");
  std::string text;
  SerializeFileModel(model, &text);
  FileModel restored;
  size_t pos = 0;
  ASSERT_TRUE(DeserializeFileModel(text, &pos, &restored));
  EXPECT_EQ(restored.rel, model.rel);
  EXPECT_EQ(restored.fingerprint, model.fingerprint);
  EXPECT_EQ(restored.is_header, model.is_header);
  EXPECT_EQ(restored.includes.size(), model.includes.size());
  EXPECT_EQ(restored.decls.size(), model.decls.size());
  EXPECT_EQ(restored.refs.size(), model.refs.size());
  EXPECT_EQ(restored.suppressions.size(), model.suppressions.size());
}

// ---------------------------------------------------------------------------
// The --fix rewriter.

TEST(Fix, SortsIncludeBlocksAndIsIdempotent) {
  const std::string bad = ReadWholeFile(
      std::string(DPAUDIT_LINT_FIXTURES_DIR) + "/src/include_order_bad.cc");
  const std::string once = Canonicalize("src/include_order_bad.cc", bad);
  EXPECT_NE(once, bad);
  EXPECT_NE(once.find("#include <vector>\n#include \"util/helper.h\""),
            std::string::npos);
  EXPECT_EQ(Canonicalize("src/include_order_bad.cc", once), once);
}

TEST(Fix, LeavesCanonicalFilesAlone) {
  const std::string ok = ReadWholeFile(
      std::string(DPAUDIT_LINT_FIXTURES_DIR) + "/src/include_order_ok.cc");
  EXPECT_EQ(Canonicalize("src/include_order_ok.cc", ok), ok);
}

TEST(Fix, RenamesAMismatchedGuardEverywhere) {
  const std::string in =
      "#ifndef WRONG_GUARD_H\n"
      "#define WRONG_GUARD_H\n"
      "int F();\n"
      "#endif  // WRONG_GUARD_H\n";
  const std::string fixed = Canonicalize("src/util/thing.h", in);
  EXPECT_NE(fixed.find("#ifndef DPAUDIT_UTIL_THING_H_"), std::string::npos);
  EXPECT_NE(fixed.find("#define DPAUDIT_UTIL_THING_H_"), std::string::npos);
  EXPECT_EQ(fixed.find("WRONG_GUARD_H"), std::string::npos);
  EXPECT_EQ(Canonicalize("src/util/thing.h", fixed), fixed);
}

TEST(Fix, InsertsAGuardIntoAGuardlessHeader) {
  const std::string in =
      "// A comment prologue.\n"
      "\n"
      "int F();\n";
  const std::string fixed = Canonicalize("src/util/thing.h", in);
  EXPECT_NE(fixed.find("#ifndef DPAUDIT_UTIL_THING_H_"), std::string::npos);
  EXPECT_NE(fixed.find("#endif  // DPAUDIT_UTIL_THING_H_"),
            std::string::npos);
  EXPECT_EQ(Canonicalize("src/util/thing.h", fixed), fixed);
  // The fixed header passes the guard rule.
  std::vector<Finding> findings;
  LintFile(PrepareSource("src/util/thing.h", fixed), {}, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(Fix, DoesNotReorderAcrossPreprocessorBoundaries) {
  const std::string in =
      "#include \"b.h\"\n"
      "#ifdef SOME_FLAG\n"
      "#include \"a.h\"\n"
      "#endif\n";
  // The #ifdef splits the blocks; nothing is sorted across it.
  EXPECT_EQ(Canonicalize("src/x.cc", in), in);
}

// ---------------------------------------------------------------------------
// SARIF output.

TEST(Sarif, ShapeIsWellFormedAndCarriesTheFinding) {
  Finding f;
  f.file = "src/a.cc";
  f.line = 7;
  f.rule = "dpaudit-layering";
  f.message = "a \"quoted\" message";
  std::ostringstream out;
  WriteSarif({f}, out);
  const std::string sarif = out.str();
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"dpaudit_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"dpaudit-layering\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":7"), std::string::npos);
  EXPECT_NE(sarif.find("a \\\"quoted\\\" message"), std::string::npos);
  // Every registered rule is described in the tool metadata.
  for (const GraphRule& rule : AllGraphRules()) {
    EXPECT_NE(sarif.find("\"id\":\"" + rule.name + "\""), std::string::npos)
        << rule.name;
  }
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
            std::count(sarif.begin(), sarif.end(), '}'));
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '['),
            std::count(sarif.begin(), sarif.end(), ']'));
}

// ---------------------------------------------------------------------------
// layers.txt parsing.

TEST(LayerConfigParse, AcceptsTheDirectiveGrammar) {
  LayerConfig config;
  std::string error;
  ASSERT_TRUE(ParseLayerConfig(
      "# comment\n"
      "layer util src/util\n"
      "layer core src/core\n"
      "allow core util\n"
      "restrict src/util/secret.h src/core/bridge.\n",
      "layers.txt", &config, &error))
      << error;
  EXPECT_EQ(config.layers.size(), 2u);
  ASSERT_NE(config.LayerOf("src/util/x.h"), nullptr);
  EXPECT_EQ(config.LayerOf("src/util/x.h")->name, "util");
  EXPECT_EQ(config.LayerOf("bench/b.cc"), nullptr);
  EXPECT_EQ(config.restrictions.size(), 1u);
}

TEST(LayerConfigParse, RejectsUnknownLayersAndDirectives) {
  LayerConfig config;
  std::string error;
  EXPECT_FALSE(ParseLayerConfig("allow ghost util\n", "layers.txt", &config,
                                &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ParseLayerConfig("frobnicate a b\n", "layers.txt", &config,
                                &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// The pass-1 lexer.

TEST(Lexer, ExtractsIncludesDeclsAndRefs) {
  const FileModel model = AnalyzeFile(
      "src/core/thing.h",
      "#pragma once\n"
      "#include <vector>\n"
      "#include \"util/base.h\"\n"
      "#define THING_MAX 4\n"
      "struct Widget { void Grow(); };\n"
      "enum class Mode { kFast };\n"
      "using Alias = Widget;\n"
      "int FreeFn(const Widget& w);\n");
  ASSERT_EQ(model.includes.size(), 2u);
  EXPECT_TRUE(model.includes[0].angled);
  EXPECT_EQ(model.includes[1].spelled, "util/base.h");
  EXPECT_TRUE(model.is_header);

  std::set<std::string> decl_names;
  for (const SymbolDecl& d : model.decls) decl_names.insert(d.name);
  EXPECT_EQ(decl_names.count("THING_MAX"), 1u);
  EXPECT_EQ(decl_names.count("Widget"), 1u);
  EXPECT_EQ(decl_names.count("Mode"), 1u);
  EXPECT_EQ(decl_names.count("Alias"), 1u);
  EXPECT_EQ(decl_names.count("FreeFn"), 1u);
  EXPECT_TRUE(model.HasRef("Widget"));
}

TEST(Lexer, MemberAndQualifiedAccessesAreNotFreeRefs) {
  const FileModel model = AnalyzeFile(
      "src/a.cc",
      "void Run(Box* box) {\n"
      "  box->Open();\n"
      "  box.Close();\n"
      "  Registry::Lookup();\n"
      "}\n");
  ASSERT_NE(model.FindRef("Open"), nullptr);
  EXPECT_TRUE(model.FindRef("Open")->member_only);
  EXPECT_TRUE(model.FindRef("Close")->member_only);
  EXPECT_TRUE(model.FindRef("Lookup")->member_only);
  EXPECT_FALSE(model.FindRef("Box")->member_only);
  EXPECT_FALSE(model.FindRef("Registry")->member_only);
}

TEST(Lexer, ForwardDeclarationsSuppressButDoNotDeclare) {
  const FileModel model = AnalyzeFile("src/a.h",
                                      "#pragma once\n"
                                      "class TraceStore;\n"
                                      "TraceStore* Get();\n");
  bool found = false;
  for (const SymbolDecl& d : model.decls) {
    if (d.name == "TraceStore") {
      found = true;
      // kVariable entries join the file's own-name set but are skipped by
      // the cross-TU declarer index.
      EXPECT_EQ(d.kind, SymbolKind::kVariable);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lexer, IndentedMemberDeclarationsJoinTheOwnNameSet) {
  const FileModel model = AnalyzeFile("src/s.h",
                                      "#pragma once\n"
                                      "class RunningSummary {\n"
                                      " public:\n"
                                      "  void Add(double x);\n"
                                      "};\n");
  bool found = false;
  for (const SymbolDecl& d : model.decls) {
    if (d.name == "Add") {
      found = true;
      EXPECT_EQ(d.kind, SymbolKind::kVariable);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lexer, DetectsLiteralSigmaConstruction) {
  EXPECT_GT(AnalyzeFile("src/core/a.cc",
                        "#include \"dp/mechanism.h\"\n"
                        "GaussianMechanism Make() {\n"
                        "  return GaussianMechanism(1.5);\n"
                        "}\n")
                .gaussian_literal_line,
            0);
  EXPECT_EQ(AnalyzeFile("src/core/a.cc",
                        "#include \"dp/mechanism.h\"\n"
                        "GaussianMechanism Make(double sigma) {\n"
                        "  return GaussianMechanism(sigma);\n"
                        "}\n")
                .gaussian_literal_line,
            0);
}

TEST(Lexer, SuppressionsSurviveTheModel) {
  const FileModel model = AnalyzeFile(
      "src/a.cc",
      "#include \"b.h\"  // NOLINT(dpaudit-unused-include)\n"
      "// NOLINTNEXTLINE(dpaudit-layering, dpaudit-missing-include)\n"
      "#include \"c.h\"\n"
      "int x = 1;  // NOLINT\n");
  EXPECT_TRUE(IsSuppressedInModel(model, "dpaudit-unused-include", 1));
  EXPECT_FALSE(IsSuppressedInModel(model, "dpaudit-layering", 1));
  EXPECT_TRUE(IsSuppressedInModel(model, "dpaudit-layering", 3));
  EXPECT_TRUE(IsSuppressedInModel(model, "dpaudit-missing-include", 3));
  EXPECT_TRUE(IsSuppressedInModel(model, "dpaudit-anything", 4));
  EXPECT_FALSE(IsSuppressedInModel(model, "dpaudit-layering", 2));
}

TEST(Lexer, FingerprintTracksContent) {
  EXPECT_EQ(FingerprintContents("abc"), FingerprintContents("abc"));
  EXPECT_NE(FingerprintContents("abc"), FingerprintContents("abd"));
}

}  // namespace
}  // namespace lint
}  // namespace dpaudit
