// Shared fixtures for the DPSGD / adversary / experiment tests: a tiny
// two-class dense network and small synthetic datasets that keep per-test
// wall clock in the tens of milliseconds.

#ifndef DPAUDIT_TESTS_TEST_HELPERS_H_
#define DPAUDIT_TESTS_TEST_HELPERS_H_

#include <memory>

#include "data/dataset.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/network.h"
#include "util/random.h"

namespace dpaudit {
namespace testing_helpers {

constexpr size_t kFeatures = 8;
constexpr size_t kClasses = 3;

/// 8 -> 6 -> 3 dense network.
inline Network TinyNetwork() {
  Network net;
  net.Add(std::make_unique<Dense>(kFeatures, 6));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(6, kClasses));
  return net;
}

/// Gaussian blobs in distinct directions: coordinate j has mean 2 when
/// j % kClasses == label, else 0 — one-hot-style class centers that a small
/// dense net separates easily.
inline Dataset BlobDataset(size_t count, Rng& rng) {
  Dataset d;
  for (size_t i = 0; i < count; ++i) {
    size_t label = i % kClasses;
    Tensor x({kFeatures});
    for (size_t j = 0; j < kFeatures; ++j) {
      double mean = (j % kClasses == label) ? 2.0 : 0.0;
      x[j] = static_cast<float>(rng.Gaussian(mean, 0.5));
    }
    d.Add(std::move(x), label);
  }
  return d;
}

/// A bounded neighbor of `d`: record 0 replaced by an out-of-distribution
/// point (all coordinates at `value`).
inline Dataset ExtremeBoundedNeighbor(const Dataset& d, float value) {
  Tensor x({kFeatures});
  x.Fill(value);
  return d.WithRecordReplaced(0, std::move(x), kClasses - 1);
}

}  // namespace testing_helpers
}  // namespace dpaudit

#endif  // DPAUDIT_TESTS_TEST_HELPERS_H_
