#include "core/neighbor_sums.h"

#include <gtest/gtest.h>

#include <vector>

#include "nn/gradient_engine.h"
#include "tests/test_helpers.h"
#include "util/random.h"

namespace dpaudit {
namespace {

using testing_helpers::BlobDataset;
using testing_helpers::ExtremeBoundedNeighbor;
using testing_helpers::TinyNetwork;
using testing_helpers::kClasses;
using testing_helpers::kFeatures;

void ExpectSumsBitIdentical(const NeighborSums& a, const NeighborSums& b) {
  ASSERT_EQ(a.sum_d.size(), b.sum_d.size());
  for (size_t i = 0; i < a.sum_d.size(); ++i) {
    EXPECT_EQ(a.sum_d[i], b.sum_d[i]) << "sum_d[" << i << "]";
  }
  ASSERT_EQ(a.sum_dprime.size(), b.sum_dprime.size());
  for (size_t i = 0; i < a.sum_dprime.size(); ++i) {
    EXPECT_EQ(a.sum_dprime[i], b.sum_dprime[i]) << "sum_dprime[" << i << "]";
  }
  ASSERT_EQ(a.norms_d.size(), b.norms_d.size());
  for (size_t i = 0; i < a.norms_d.size(); ++i) {
    EXPECT_EQ(a.norms_d[i], b.norms_d[i]) << "norms_d[" << i << "]";
  }
  ASSERT_EQ(a.norms_dprime.size(), b.norms_dprime.size());
  for (size_t i = 0; i < a.norms_dprime.size(); ++i) {
    EXPECT_EQ(a.norms_dprime[i], b.norms_dprime[i])
        << "norms_dprime[" << i << "]";
  }
}

TEST(AnalyzeNeighborOverlapTest, BoundedSingleReplacement) {
  Rng rng(1);
  Dataset d = BlobDataset(8, rng);
  for (size_t k : {size_t{0}, size_t{3}, size_t{7}}) {
    Tensor x({kFeatures});
    x.Fill(9.0f);
    Dataset d_prime = d.WithRecordReplaced(k, std::move(x), kClasses - 1);
    NeighborOverlap overlap =
        AnalyzeNeighborOverlap(d, d_prime, NeighborMode::kBounded);
    EXPECT_TRUE(overlap.sharable);
    EXPECT_EQ(k, overlap.diff_index);
  }
}

TEST(AnalyzeNeighborOverlapTest, BoundedLabelOnlyDifferenceCounts) {
  Rng rng(2);
  Dataset d = BlobDataset(5, rng);
  Dataset d_prime = d.WithRecordReplaced(2, d.inputs[2],
                                         (d.labels[2] + 1) % kClasses);
  NeighborOverlap overlap =
      AnalyzeNeighborOverlap(d, d_prime, NeighborMode::kBounded);
  EXPECT_TRUE(overlap.sharable);
  EXPECT_EQ(2u, overlap.diff_index);
}

TEST(AnalyzeNeighborOverlapTest, BoundedIdenticalDatasets) {
  Rng rng(3);
  Dataset d = BlobDataset(4, rng);
  NeighborOverlap overlap = AnalyzeNeighborOverlap(d, d, NeighborMode::kBounded);
  EXPECT_TRUE(overlap.sharable);
  EXPECT_EQ(0u, overlap.diff_index);
}

TEST(AnalyzeNeighborOverlapTest, BoundedRejectsTwoDifferences) {
  Rng rng(4);
  Dataset d = BlobDataset(6, rng);
  Tensor x({kFeatures});
  x.Fill(9.0f);
  Dataset d_prime = d.WithRecordReplaced(1, x, 0);
  d_prime = d_prime.WithRecordReplaced(4, std::move(x), 0);
  EXPECT_FALSE(
      AnalyzeNeighborOverlap(d, d_prime, NeighborMode::kBounded).sharable);
}

TEST(AnalyzeNeighborOverlapTest, BoundedRejectsSizeMismatch) {
  Rng rng(5);
  Dataset d = BlobDataset(6, rng);
  EXPECT_FALSE(AnalyzeNeighborOverlap(d, d.WithRecordRemoved(0),
                                      NeighborMode::kBounded)
                   .sharable);
}

TEST(AnalyzeNeighborOverlapTest, UnboundedRemoval) {
  Rng rng(6);
  Dataset d = BlobDataset(7, rng);
  for (size_t k : {size_t{0}, size_t{4}, size_t{6}}) {
    NeighborOverlap overlap = AnalyzeNeighborOverlap(
        d, d.WithRecordRemoved(k), NeighborMode::kUnbounded);
    EXPECT_TRUE(overlap.sharable);
    EXPECT_EQ(k, overlap.diff_index);
  }
}

TEST(AnalyzeNeighborOverlapTest, UnboundedRejectsUnrelatedRemainder) {
  Rng rng(7);
  Dataset d = BlobDataset(6, rng);
  Dataset d_prime = d.WithRecordRemoved(2);
  Tensor x({kFeatures});
  x.Fill(9.0f);
  d_prime = d_prime.WithRecordReplaced(4, std::move(x), 0);
  EXPECT_FALSE(
      AnalyzeNeighborOverlap(d, d_prime, NeighborMode::kUnbounded).sharable);
}

struct SharingCase {
  NeighborMode mode;
  bool per_layer;
  size_t diff_index;
};

class NeighborSharingTest : public ::testing::TestWithParam<SharingCase> {};

TEST_P(NeighborSharingTest, SharedPathMatchesTwoPassBitwise) {
  const SharingCase& c = GetParam();
  Rng rng(31);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(12, rng);
  Dataset d_prime = c.mode == NeighborMode::kBounded
                        ? d.WithRecordReplaced(
                              c.diff_index,
                              [&] {
                                Tensor x({kFeatures});
                                x.Fill(4.0f);
                                return x;
                              }(),
                              kClasses - 1)
                        : d.WithRecordRemoved(c.diff_index);

  NeighborOverlap overlap = AnalyzeNeighborOverlap(d, d_prime, c.mode);
  ASSERT_TRUE(overlap.sharable);
  ASSERT_EQ(c.diff_index, overlap.diff_index);

  GradientEngine::Options options;
  options.threads = 2;
  options.chunk = 3;
  GradientEngine engine(net, options);
  engine.SyncParams(net);

  const double clip = 0.75;
  NeighborSums shared = ComputeClippedNeighborSums(engine, d, d_prime, overlap,
                                                   c.mode, clip, c.per_layer);
  NeighborSums two_pass =
      ComputeClippedNeighborSumsTwoPass(engine, d, d_prime, clip, c.per_layer);
  ExpectSumsBitIdentical(shared, two_pass);

  // The norm streams feed adaptive clipping; in per-layer mode clipping is
  // per layer and no whole-gradient stream is produced.
  if (c.per_layer) {
    EXPECT_TRUE(shared.norms_d.empty());
    EXPECT_TRUE(shared.norms_dprime.empty());
  } else {
    EXPECT_EQ(d.size(), shared.norms_d.size());
    EXPECT_EQ(d_prime.size(), shared.norms_dprime.size());
  }

  // And both must match the Network reference directly.
  std::vector<float> ref_d =
      c.per_layer ? net.PerLayerClippedGradientSum(d.inputs, d.labels, clip)
                  : net.ClippedGradientSum(d.inputs, d.labels, clip);
  std::vector<float> ref_dprime =
      c.per_layer
          ? net.PerLayerClippedGradientSum(d_prime.inputs, d_prime.labels, clip)
          : net.ClippedGradientSum(d_prime.inputs, d_prime.labels, clip);
  ASSERT_EQ(ref_d.size(), shared.sum_d.size());
  for (size_t i = 0; i < ref_d.size(); ++i) {
    EXPECT_EQ(ref_d[i], shared.sum_d[i]) << i;
  }
  ASSERT_EQ(ref_dprime.size(), shared.sum_dprime.size());
  for (size_t i = 0; i < ref_dprime.size(); ++i) {
    EXPECT_EQ(ref_dprime[i], shared.sum_dprime[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, NeighborSharingTest,
    ::testing::Values(SharingCase{NeighborMode::kBounded, false, 0},
                      SharingCase{NeighborMode::kBounded, false, 5},
                      SharingCase{NeighborMode::kBounded, false, 11},
                      SharingCase{NeighborMode::kBounded, true, 5},
                      SharingCase{NeighborMode::kUnbounded, false, 0},
                      SharingCase{NeighborMode::kUnbounded, false, 6},
                      SharingCase{NeighborMode::kUnbounded, false, 11},
                      SharingCase{NeighborMode::kUnbounded, true, 6}));

TEST(NeighborSharingTest, IdenticalDatasetsShareEverything) {
  Rng rng(37);
  Network net = TinyNetwork();
  net.Initialize(rng);
  Dataset d = BlobDataset(8, rng);

  NeighborOverlap overlap =
      AnalyzeNeighborOverlap(d, d, NeighborMode::kBounded);
  ASSERT_TRUE(overlap.sharable);

  GradientEngine engine(net);
  engine.SyncParams(net);
  NeighborSums shared = ComputeClippedNeighborSums(
      engine, d, d, overlap, NeighborMode::kBounded, 1.0, false);
  NeighborSums two_pass =
      ComputeClippedNeighborSumsTwoPass(engine, d, d, 1.0, false);
  ExpectSumsBitIdentical(shared, two_pass);
}

}  // namespace
}  // namespace dpaudit
