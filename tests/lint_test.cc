// Tests for tools/lint: each rule against its fixture pair under
// tests/lint_fixtures/, NOLINT suppression, the JSON report shape, and the
// comment/string-blanking scanner underneath the token matcher.

#include "tools/lint/lint.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dpaudit {
namespace lint {
namespace {

std::vector<Finding> LintSnippet(const std::string& rel,
                                 const std::string& code) {
  std::vector<Finding> findings;
  LintFile(PrepareSource(rel, code), {}, &findings);
  return findings;
}

std::vector<Finding> LintFixture(const std::string& name) {
  const std::string root = DPAUDIT_LINT_FIXTURES_DIR;
  std::vector<Finding> findings;
  EXPECT_TRUE(LintPath(root + "/src/" + name, root, {}, &findings))
      << "cannot read fixture " << name;
  return findings;
}

struct FixtureCase {
  const char* rule;
  const char* bad;  // must be flagged, and only by `rule`
  const char* ok;   // must be clean
};

const FixtureCase kFixtureCases[] = {
    {"dpaudit-rng", "rng_bad.cc", "rng_ok.cc"},
    {"dpaudit-stdout", "stdout_bad.cc", "stdout_ok.cc"},
    {"dpaudit-cerr", "cerr_bad.cc", "cerr_ok.cc"},
    {"dpaudit-unordered-float", "unordered_float_bad.cc",
     "unordered_float_ok.cc"},
    {"dpaudit-omp", "omp_bad.cc", "omp_ok.cc"},
    {"dpaudit-include-guard", "include_guard_bad.h", "include_guard_ok.h"},
    {"dpaudit-include-guard", "include_guard_mismatch.h",
     "include_guard_ok.h"},
    {"dpaudit-lane-alias", "lane_alias_bad.cc", "lane_alias_ok.cc"},
    {"dpaudit-ledger-write", "ledger_write_bad.cc", "ledger_write_ok.cc"},
    {"dpaudit-banned-fn", "banned_fn_bad.cc", "banned_fn_ok.cc"},
    {"dpaudit-raw-thread", "raw_thread_bad.cc", "raw_thread_ok.cc"},
    {"dpaudit-raw-pool", "raw_pool_bad.cc", "raw_pool_ok.cc"},
    {"dpaudit-raw-getenv", "raw_getenv_bad.cc", "raw_getenv_ok.cc"},
    {"dpaudit-include-order", "include_order_bad.cc",
     "include_order_ok.cc"},
};

TEST(LintFixtures, EveryBadFixtureIsFlaggedByExactlyItsRule) {
  for (const FixtureCase& c : kFixtureCases) {
    const std::vector<Finding> findings = LintFixture(c.bad);
    EXPECT_FALSE(findings.empty()) << c.bad << " produced no findings";
    for (const Finding& f : findings) {
      EXPECT_EQ(f.rule, c.rule) << c.bad << " line " << f.line;
      EXPECT_GT(f.line, 0);
      EXPECT_FALSE(f.message.empty());
    }
  }
}

TEST(LintFixtures, EveryOkFixtureIsClean) {
  std::set<std::string> ok_files;
  for (const FixtureCase& c : kFixtureCases) ok_files.insert(c.ok);
  ok_files.insert("nolint_ok.cc");
  for (const std::string& name : ok_files) {
    const std::vector<Finding> findings = LintFixture(name);
    std::ostringstream detail;
    WriteText(findings, detail);
    EXPECT_TRUE(findings.empty()) << name << ":\n" << detail.str();
  }
}

TEST(LintFixtures, DirectoryScanFlagsAllBadAndNoOkFiles) {
  const std::string root = DPAUDIT_LINT_FIXTURES_DIR;
  std::vector<Finding> findings;
  for (const std::string& file : CollectFiles(root + "/src")) {
    ASSERT_TRUE(LintPath(file, root, {}, &findings));
  }
  std::set<std::string> flagged;
  for (const Finding& f : findings) flagged.insert(f.file);
  std::set<std::string> expected;
  for (const FixtureCase& c : kFixtureCases) {
    expected.insert(std::string("src/") + c.bad);
  }
  EXPECT_EQ(flagged, expected);
}

TEST(LintFixtures, EveryRuleHasAFixture) {
  std::set<std::string> covered;
  for (const FixtureCase& c : kFixtureCases) covered.insert(c.rule);
  for (const Rule& rule : AllRules()) {
    EXPECT_EQ(covered.count(rule.name), 1u)
        << rule.name << " has no fixture pair";
  }
  EXPECT_EQ(AllRules().size(), 13u);
}

TEST(LintEngine, RuleFilterRunsOnlyRequestedRules) {
  const std::string root = DPAUDIT_LINT_FIXTURES_DIR;
  std::vector<Finding> findings;
  ASSERT_TRUE(LintPath(root + "/src/stdout_bad.cc", root,
                       {"dpaudit-banned-fn"}, &findings));
  EXPECT_TRUE(findings.empty());
}

TEST(LintEngine, TokensInsideCommentsAndStringsAreIgnored) {
  EXPECT_TRUE(LintSnippet("src/a.cc",
                          "// std::cout << 1; printf(\"x\");\n"
                          "const char* s = \"std::cout\";\n"
                          "/* std::cerr << 2; */\n")
                  .empty());
  EXPECT_TRUE(LintSnippet("src/a.cc",
                          "const char* s = R\"(std::cout << rand();)\";\n")
                  .empty());
}

TEST(LintEngine, ScopedRulesDoNotFireOutsideSrc) {
  EXPECT_TRUE(LintSnippet("bench/b.cc", "std::cout << 1;\n").empty());
  EXPECT_TRUE(LintSnippet("tools/t.cc", "std::cerr << 1;\n").empty());
  EXPECT_FALSE(LintSnippet("src/s.cc", "std::cout << 1;\n").empty());
  // dpaudit-rng applies everywhere outside util/random.
  EXPECT_FALSE(LintSnippet("bench/b.cc", "std::mt19937 rng(1);\n").empty());
  EXPECT_TRUE(
      LintSnippet("src/util/random.cc", "std::mt19937 rng(1);\n").empty());
}

TEST(LintEngine, NolintSuppressesOnlyTheListedRule) {
  EXPECT_TRUE(LintSnippet("src/a.cc",
                          "std::cout << 1;  // NOLINT(dpaudit-stdout)\n")
                  .empty());
  EXPECT_FALSE(LintSnippet("src/a.cc",
                           "std::cout << 1;  // NOLINT(dpaudit-rng)\n")
                   .empty());
  EXPECT_TRUE(LintSnippet("src/a.cc", "std::cout << 1;  // NOLINT\n")
                  .empty());
  EXPECT_TRUE(LintSnippet("src/a.cc",
                          "// NOLINTNEXTLINE(dpaudit-stdout)\n"
                          "std::cout << 1;\n")
                  .empty());
}

TEST(LintEngine, ExpectedGuardFollowsRepoConvention) {
  EXPECT_EQ(ExpectedGuard("src/util/logging.h"), "DPAUDIT_UTIL_LOGGING_H_");
  EXPECT_EQ(ExpectedGuard("bench/bench_common.h"),
            "DPAUDIT_BENCH_BENCH_COMMON_H_");
  EXPECT_EQ(ExpectedGuard("tests/test_helpers.h"),
            "DPAUDIT_TESTS_TEST_HELPERS_H_");
  EXPECT_EQ(ExpectedGuard("tools/lint/lint.h"),
            "DPAUDIT_TOOLS_LINT_LINT_H_");
}

TEST(LintEngine, PragmaOnceSatisfiesTheGuardRule) {
  EXPECT_TRUE(
      LintSnippet("src/h.h", "#pragma once\nint F();\n").empty());
  EXPECT_FALSE(LintSnippet("src/h.h", "int F();\n").empty());
}

TEST(LintReport, JsonShapeCarriesFindingsAndCounts) {
  const std::vector<Finding> findings = LintFixture("stdout_bad.cc");
  ASSERT_FALSE(findings.empty());
  std::ostringstream out;
  WriteJson(findings, 1, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("{\"findings\":["), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/stdout_bad.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"dpaudit-stdout\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":"), std::string::npos);
  EXPECT_NE(json.find("\"message\":\""), std::string::npos);
  EXPECT_NE(json.find("\"finding_count\":" +
                      std::to_string(findings.size())),
            std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos);
  // Well-formed: braces and brackets balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(LintReport, EmptyReportIsWellFormed) {
  std::ostringstream out;
  WriteJson({}, 42, out);
  EXPECT_EQ(out.str(),
            "{\"findings\":[],\"finding_count\":0,\"files_scanned\":42}\n");
}

}  // namespace
}  // namespace lint
}  // namespace dpaudit
