#include "nn/network.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/dense.h"
#include "util/math_util.h"
#include "util/random.h"

namespace dpaudit {
namespace {

Network SmallNet(Rng& rng) {
  Network net;
  net.Add(std::make_unique<Dense>(4, 6));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(6, 3));
  net.Initialize(rng);
  return net;
}

TEST(NetworkTest, NumParamsCountsEverything) {
  Rng rng(1);
  Network net = SmallNet(rng);
  EXPECT_EQ(net.NumParams(), 4u * 6 + 6 + 6 * 3 + 3);
}

TEST(NetworkTest, FlatParamRoundTrip) {
  Rng rng(2);
  Network net = SmallNet(rng);
  std::vector<float> params = net.FlatParams();
  ASSERT_EQ(params.size(), net.NumParams());
  std::vector<float> modified = params;
  for (float& p : modified) p += 0.5f;
  net.SetFlatParams(modified);
  EXPECT_EQ(net.FlatParams(), modified);
  net.SetFlatParams(params);
  EXPECT_EQ(net.FlatParams(), params);
}

TEST(NetworkTest, CloneIsDeepAndEqual) {
  Rng rng(3);
  Network net = SmallNet(rng);
  Network clone = net.Clone();
  EXPECT_EQ(clone.FlatParams(), net.FlatParams());
  std::vector<float> shifted = clone.FlatParams();
  shifted[0] += 1.0f;
  clone.SetFlatParams(shifted);
  EXPECT_NE(clone.FlatParams()[0], net.FlatParams()[0]);
}

TEST(NetworkTest, ApplyGradientStepMovesParams) {
  Rng rng(4);
  Network net = SmallNet(rng);
  std::vector<float> before = net.FlatParams();
  std::vector<float> grad(net.NumParams(), 1.0f);
  net.ApplyGradientStep(grad, 0.1);
  std::vector<float> after = net.FlatParams();
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] - 0.1f, 1e-6);
  }
}

TEST(NetworkTest, PerExampleGradientMatchesLossDecrease) {
  Rng rng(5);
  Network net = SmallNet(rng);
  Tensor x({4}, {0.5f, -0.3f, 0.8f, 0.1f});
  std::vector<float> grad = net.PerExampleGradient(x, 2);
  double loss_before = net.ExampleLoss(x, 2);
  net.ApplyGradientStep(grad, 0.05);
  double loss_after = net.ExampleLoss(x, 2);
  EXPECT_LT(loss_after, loss_before);
}

TEST(NetworkTest, ClippedGradientRespectsNorm) {
  Rng rng(6);
  Network net = SmallNet(rng);
  Tensor x({4}, {2.0f, -1.0f, 3.0f, 0.5f});
  const double clip = 0.01;  // force clipping
  std::vector<float> clipped = net.ClippedExampleGradient(x, 0, clip);
  EXPECT_NEAR(L2Norm(clipped), clip, 1e-6);
}

TEST(NetworkTest, ClippingIsNoOpBelowThreshold) {
  Rng rng(7);
  Network net = SmallNet(rng);
  Tensor x({4}, {0.1f, 0.0f, -0.1f, 0.2f});
  std::vector<float> raw = net.PerExampleGradient(x, 1);
  std::vector<float> clipped = net.ClippedExampleGradient(x, 1, 1e9);
  EXPECT_EQ(raw, clipped);
}

TEST(NetworkTest, ClippedGradientSumEqualsSumOfClippedGradients) {
  Rng rng(8);
  Network net = SmallNet(rng);
  std::vector<Tensor> inputs;
  std::vector<size_t> labels;
  Rng data_rng(9);
  for (int i = 0; i < 5; ++i) {
    Tensor x({4});
    for (float& v : x.vec()) v = static_cast<float>(data_rng.Gaussian());
    inputs.push_back(x);
    labels.push_back(static_cast<size_t>(i % 3));
  }
  const double clip = 0.5;
  std::vector<double> norms;
  std::vector<float> sum =
      net.ClippedGradientSum(inputs, labels, clip, &norms);
  ASSERT_EQ(norms.size(), 5u);
  std::vector<float> manual(net.NumParams(), 0.0f);
  for (int i = 0; i < 5; ++i) {
    std::vector<float> g =
        net.ClippedExampleGradient(inputs[i], labels[i], clip);
    for (size_t j = 0; j < manual.size(); ++j) manual[j] += g[j];
  }
  for (size_t j = 0; j < manual.size(); ++j) {
    EXPECT_NEAR(sum[j], manual[j], 1e-5);
  }
  // Sum of n clipped gradients has norm at most n * C.
  EXPECT_LE(L2Norm(sum), 5 * clip + 1e-6);
}

TEST(NetworkTest, PredictAndAccuracy) {
  // Identity weights: predicted class is the argmax input coordinate.
  Network fixed;
  auto dense = std::make_unique<Dense>(2, 2);
  *dense->Params()[0] = Tensor({2, 2}, {1, 0, 0, 1});
  *dense->Params()[1] = Tensor({2});
  fixed.Add(std::move(dense));
  EXPECT_EQ(fixed.Predict(Tensor({2}, {3.0f, 1.0f})), 0u);
  EXPECT_EQ(fixed.Predict(Tensor({2}, {1.0f, 3.0f})), 1u);
  std::vector<Tensor> inputs = {Tensor({2}, {3.0f, 1.0f}),
                                Tensor({2}, {1.0f, 3.0f})};
  std::vector<size_t> labels_right = {0, 1};
  std::vector<size_t> labels_half = {0, 0};
  EXPECT_DOUBLE_EQ(fixed.Accuracy(inputs, labels_right), 1.0);
  EXPECT_DOUBLE_EQ(fixed.Accuracy(inputs, labels_half), 0.5);
}

TEST(NetworkTest, LayerParamRangesTileTheFlatVector) {
  Rng rng(20);
  Network net = SmallNet(rng);  // dense + relu + dense
  std::vector<Network::ParamRange> ranges = net.LayerParamRanges();
  ASSERT_EQ(ranges.size(), 2u);  // relu has no parameters
  EXPECT_EQ(ranges[0].offset, 0u);
  EXPECT_EQ(ranges[0].size, 4u * 6 + 6);
  EXPECT_EQ(ranges[1].offset, 4u * 6 + 6);
  EXPECT_EQ(ranges[1].size, 6u * 3 + 3);
  EXPECT_EQ(ranges[0].size + ranges[1].size, net.NumParams());
}

TEST(NetworkTest, PerLayerClippingBoundsEachLayerSlice) {
  Rng rng(21);
  Network net = SmallNet(rng);
  std::vector<Tensor> inputs;
  std::vector<size_t> labels;
  Rng data_rng(22);
  for (int i = 0; i < 4; ++i) {
    Tensor x({4});
    for (float& v : x.vec()) v = static_cast<float>(data_rng.Gaussian(0, 2));
    inputs.push_back(x);
    labels.push_back(static_cast<size_t>(i % 3));
  }
  const double clip = 0.2;  // force clipping everywhere
  std::vector<float> sum = net.PerLayerClippedGradientSum(inputs, labels,
                                                          clip);
  // Each example contributes at most clip/sqrt(L) per layer slice, so the
  // sum's slice norms are bounded by n * clip / sqrt(L).
  std::vector<Network::ParamRange> ranges = net.LayerParamRanges();
  double per_layer = clip / std::sqrt(static_cast<double>(ranges.size()));
  for (const auto& range : ranges) {
    double sq = 0.0;
    for (size_t i = range.offset; i < range.offset + range.size; ++i) {
      sq += static_cast<double>(sum[i]) * sum[i];
    }
    EXPECT_LE(std::sqrt(sq), 4 * per_layer + 1e-6);
  }
  // And the total norm respects the whole-gradient bound n * C.
  EXPECT_LE(L2Norm(sum), 4 * clip + 1e-6);
}

TEST(NetworkTest, PerLayerClippingNoOpForSmallGradients) {
  Rng rng(23);
  Network net = SmallNet(rng);
  std::vector<Tensor> inputs = {Tensor({4}, {0.01f, 0.0f, 0.01f, 0.0f})};
  std::vector<size_t> labels = {1};
  std::vector<float> per_layer =
      net.PerLayerClippedGradientSum(inputs, labels, 1e9);
  std::vector<float> flat = net.ClippedGradientSum(inputs, labels, 1e9);
  EXPECT_EQ(per_layer, flat);
}

TEST(NetworkTest, MnistArchitectureShapes) {
  Network net = BuildMnistNetwork();
  Rng rng(10);
  net.Initialize(rng);
  Tensor image({1, 28, 28});
  Tensor logits = net.Forward(image);
  EXPECT_EQ(logits.size(), 10u);
  EXPECT_GT(net.NumParams(), 1000u);
  EXPECT_NE(net.Describe().find("conv2d"), std::string::npos);
  EXPECT_NE(net.Describe().find("channel_norm"), std::string::npos);
}

TEST(NetworkTest, PurchaseArchitectureShapes) {
  Network net = BuildPurchaseNetwork();
  Rng rng(11);
  net.Initialize(rng);
  Tensor record({600});
  Tensor logits = net.Forward(record);
  EXPECT_EQ(logits.size(), 100u);
  EXPECT_EQ(net.NumParams(), 600u * 128 + 128 + 128 * 100 + 100);
}

TEST(NetworkTest, SmallMnistVariant) {
  Network net = BuildMnistNetwork(/*image_size=*/14, /*conv1_filters=*/2,
                                  /*conv2_filters=*/4, /*num_classes=*/10);
  Rng rng(12);
  net.Initialize(rng);
  Tensor image({1, 14, 14});
  EXPECT_EQ(net.Forward(image).size(), 10u);
}

}  // namespace
}  // namespace dpaudit
